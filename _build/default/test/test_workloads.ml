(* Tests for the evaluation workloads and the experiment harness:
   PolyBench differential checks, the CVE suite's verdicts, the
   microbenchmark shapes (Table 1 / Fig. 4 / Fig. 15 / Fig. 16), tag
   collisions and the sandbox experiments. *)

let tc name f = Alcotest.test_case name f
let quick name f = tc name `Quick f
let slow name f = tc name `Slow f

(* ------------------------------------------------------------------ *)
(* PolyBench                                                           *)
(* ------------------------------------------------------------------ *)

let test_kernel_inventory () =
  Alcotest.(check int) "26 kernels" 26 (List.length Workloads.Polybench.all);
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " present") true
        (Workloads.Polybench.find name <> None))
    [ "2mm"; "3mm"; "gemm"; "lu"; "jacobi-2d"; "floyd-warshall" ]

let test_kernels_deterministic () =
  (* same kernel, two runs: identical checksum (no hidden nondeterminism) *)
  let k = Option.get (Workloads.Polybench.find "gemm") in
  let run () =
    Libc.Run.ret_i32 (Libc.Run.run ~cfg:Cage.Config.full k.k_source)
  in
  Alcotest.(check int32) "deterministic" (run ()) (run ())

let test_kernels_nonzero_checksums () =
  (* a zero checksum usually means the kernel silently computed nothing *)
  List.iter
    (fun (k : Workloads.Polybench.kernel) ->
      let v =
        Libc.Run.ret_i32 (Libc.Run.run ~cfg:Cage.Config.baseline_wasm64 k.k_source)
      in
      Alcotest.(check bool) (k.k_name ^ " nonzero") true (v <> 0l))
    Workloads.Polybench.all

let test_kernels_all_configs_agree () =
  (* the full differential sweep is the core soundness check of Fig. 14:
     run a representative subset across all six configurations *)
  List.iter
    (fun name ->
      let k = Option.get (Workloads.Polybench.find name) in
      let vals =
        List.map
          (fun cfg -> Libc.Run.ret_i32 (Libc.Run.run ~cfg k.k_source))
          Cage.Config.table3
      in
      match vals with
      | first :: rest ->
          List.iter
            (fun v -> Alcotest.(check int32) (name ^ " agrees") first v)
            rest
      | [] -> ())
    [ "atax"; "durbin"; "lu"; "floyd-warshall" ]

let test_kernel_meters_populated () =
  let k = Option.get (Workloads.Polybench.find "gemm") in
  let meter = Wasm.Meter.create () in
  ignore (Libc.Run.run ~cfg:Cage.Config.full ~meter k.k_source);
  Alcotest.(check bool) "loads recorded" true (meter.Wasm.Meter.loads > 1000);
  Alcotest.(check bool) "fmuls recorded" true (meter.Wasm.Meter.fmul > 1000);
  Alcotest.(check bool) "allocations recorded" true (meter.Wasm.Meter.seg_new >= 3)

(* ------------------------------------------------------------------ *)
(* CVE suite (Table 2)                                                 *)
(* ------------------------------------------------------------------ *)

let test_cve_suite_complete () =
  Alcotest.(check int) "8 CVEs" 8 (List.length Workloads.Cve_suite.entries);
  let causes =
    List.sort_uniq compare
      (List.map (fun (e : Workloads.Cve_suite.entry) -> e.cause)
         Workloads.Cve_suite.entries)
  in
  Alcotest.(check (list string)) "all three causes present"
    [ "Double-free"; "Out-of-bounds"; "Use-after-free" ]
    causes

let test_cve_all_caught () =
  List.iter
    (fun (v : Workloads.Cve_suite.verdict) ->
      Alcotest.(check bool) (v.v_entry.cve ^ " caught by Cage") true v.v_caught;
      Alcotest.(check bool)
        (v.v_entry.cve ^ " missed by baseline")
        true
        (Astring.String.is_infix ~affix:"ran to completion" v.v_baseline))
    (Workloads.Cve_suite.evaluate_all ())

(* ------------------------------------------------------------------ *)
(* Microbenchmarks                                                     *)
(* ------------------------------------------------------------------ *)

let test_table1_covers_all_insns () =
  let rows = Workloads.Microbench.table1 () in
  Alcotest.(check int) "16 instructions" 16 (List.length rows);
  List.iter
    (fun (r : Workloads.Microbench.insn_row) ->
      Alcotest.(check int) (r.ir_insn ^ " on 3 cores") 3
        (List.length r.ir_results);
      List.iter
        (fun (_, tp, _) ->
          Alcotest.(check bool) (r.ir_insn ^ " throughput positive") true
            (tp > 0.0))
        r.ir_results)
    rows

let test_fig4_ordering () =
  List.iter
    (fun (r : Workloads.Microbench.memset_row) ->
      Alcotest.(check bool) (r.ms_core ^ " sync slowest") true
        (r.ms_sync > r.ms_async && r.ms_async > r.ms_off))
    (Workloads.Microbench.fig4 ())

let test_fig15_shape () =
  List.iter
    (fun (r : Workloads.Microbench.fig15_row) ->
      let dyn = (r.f15_dynamic /. r.f15_static) -. 1.0 in
      let auth = (r.f15_dynamic_auth /. r.f15_dynamic) -. 1.0 in
      Alcotest.(check bool)
        (Printf.sprintf "%s dynamic overhead %.1f%% in [8, 30]" r.f15_core
           (100.0 *. dyn))
        true
        (dyn > 0.08 && dyn < 0.30);
      Alcotest.(check bool)
        (Printf.sprintf "%s auth overhead %.1f%% small" r.f15_core
           (100.0 *. auth))
        true
        (auth >= 0.0 && auth < 0.08))
    (Workloads.Microbench.fig15 ())

let test_fig16_shape () =
  List.iter
    (fun (r : Workloads.Microbench.fig16_row) ->
      let t name = List.assoc name r.f16_times in
      (* zeroing variants skip the tag check: never slower than memset *)
      Alcotest.(check bool) (r.f16_core ^ " stzg <= memset") true
        (t "stzg" <= t "memset");
      Alcotest.(check bool) (r.f16_core ^ " stgp <= memset") true
        (t "stgp" <= t "memset");
      (* tag-only passes touch 1/32 of the data: far faster *)
      Alcotest.(check bool) (r.f16_core ^ " stg < memset") true
        (t "stg" < t "memset");
      (* two passes cost more than one *)
      Alcotest.(check bool) (r.f16_core ^ " stg+memset > memset") true
        (t "stg+memset" > t "memset"))
    (Workloads.Microbench.fig16 ())

let test_startup_hidden () =
  List.iter
    (fun (r : Workloads.Microbench.startup_row) ->
      let d = (r.su_cage -. r.su_baseline) /. r.su_baseline in
      Alcotest.(check bool)
        (Printf.sprintf "%s startup delta %.1f%% hidden" r.su_core
           (100.0 *. d))
        true
        (d >= 0.0 && d < 0.10))
    (Workloads.Microbench.startup ())

(* ------------------------------------------------------------------ *)
(* Harness experiments                                                 *)
(* ------------------------------------------------------------------ *)

let test_collision_probabilities () =
  List.iter
    (fun (r : Harness.Experiment.collision_row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %.3f near %.3f" r.cr_label r.cr_measured
           r.cr_theory)
        true
        (Float.abs (r.cr_measured -. r.cr_theory) < 0.01))
    (Harness.Experiment.tag_collisions ~trials:50_000 ())

let test_escape_experiment () =
  match Harness.Experiment.sandbox_escape () with
  | [ sw; mte ] ->
      Alcotest.(check bool) "software bounds escape" true sw.er_escaped;
      Alcotest.(check bool) "mte stops it" false mte.er_escaped
  | _ -> Alcotest.fail "expected two strategies"

let test_capacity () =
  Alcotest.(check int) "15 sandboxes" 15 (Harness.Experiment.sandbox_capacity ())

let test_guard_slot_always_catches () =
  Alcotest.(check (float 0.01)) "100% caught" 1.0
    (Harness.Experiment.guard_slot_ablation ~seeds:16 ())

let test_mte_mode_matrix () =
  let rows = Harness.Experiment.mte_modes () in
  let find m =
    List.find (fun r -> r.Harness.Experiment.md_mode = m) rows
  in
  let sync = find Arch.Mte.Sync in
  let asymm = find Arch.Mte.Asymmetric in
  let async = find Arch.Mte.Async in
  let off = find Arch.Mte.Disabled in
  Alcotest.(check bool) "sync detects before damage" true
    (sync.md_detected && sync.md_before_damage);
  Alcotest.(check bool) "asymmetric write checked sync" true
    (asymm.md_detected && asymm.md_before_damage);
  Alcotest.(check bool) "async detects after the fact" true
    (async.md_detected && not async.md_before_damage);
  Alcotest.(check bool) "disabled misses it" false off.md_detected;
  Alcotest.(check bool) "async cheaper than sync" true
    (async.md_polybench_cost < 0.0)

let test_fig14_small_subset () =
  (* a 2-kernel fig14 run: shapes must hold even on the subset *)
  let kernels =
    List.filter
      (fun (k : Workloads.Polybench.kernel) ->
        List.mem k.k_name [ "atax"; "bicg" ])
      Workloads.Polybench.all
  in
  let cells, detail = Harness.Experiment.fig14 ~kernels () in
  Alcotest.(check int) "5 configs x 3 cores" 15 (List.length cells);
  Alcotest.(check bool) "detail populated" true (List.length detail > 0);
  (* mem-safety slower than wasm64, sandboxing faster, on every core *)
  List.iter
    (fun (c : Harness.Experiment.fig14_cell) ->
      match c.fc_config with
      | "Cage-mem-safety" ->
          Alcotest.(check bool) (c.fc_core ^ " mem-safety overhead > 0") true
            (c.fc_mean > 0.0)
      | "Cage-sandboxing" ->
          Alcotest.(check bool) (c.fc_core ^ " sandboxing speedup") true
            (c.fc_mean < 0.0)
      | _ -> ())
    cells

(* ------------------------------------------------------------------ *)
(* Fuzz generator sanity                                               *)
(* ------------------------------------------------------------------ *)

let test_fuzzgen_deterministic () =
  let a = Workloads.Fuzzgen.generate ~seed:123 in
  let b = Workloads.Fuzzgen.generate ~seed:123 in
  Alcotest.(check string) "same source" (Workloads.Fuzzgen.render a)
    (Workloads.Fuzzgen.render b);
  Alcotest.(check int32) "same reference"
    (Workloads.Fuzzgen.reference a)
    (Workloads.Fuzzgen.reference b)

let test_fuzzgen_varied () =
  let srcs =
    List.init 10 (fun s ->
        Workloads.Fuzzgen.render (Workloads.Fuzzgen.generate ~seed:s))
  in
  Alcotest.(check bool) "programs differ" true
    (List.length (List.sort_uniq compare srcs) > 5)

let () =
  Alcotest.run "workloads"
    [
      ( "polybench",
        [
          quick "inventory" test_kernel_inventory;
          quick "deterministic" test_kernels_deterministic;
          slow "nonzero checksums" test_kernels_nonzero_checksums;
          slow "configs agree" test_kernels_all_configs_agree;
          quick "meters populated" test_kernel_meters_populated;
        ] );
      ( "cve-suite",
        [
          quick "complete" test_cve_suite_complete;
          slow "all caught" test_cve_all_caught;
        ] );
      ( "microbench",
        [
          quick "table1 coverage" test_table1_covers_all_insns;
          quick "fig4 ordering" test_fig4_ordering;
          slow "fig15 shape" test_fig15_shape;
          quick "fig16 shape" test_fig16_shape;
          quick "startup hidden" test_startup_hidden;
        ] );
      ( "harness",
        [
          quick "collision probabilities" test_collision_probabilities;
          quick "escape experiment" test_escape_experiment;
          quick "capacity" test_capacity;
          quick "guard slots" test_guard_slot_always_catches;
          quick "mte mode matrix" test_mte_mode_matrix;
          slow "fig14 subset" test_fig14_small_subset;
        ] );
      ( "fuzzgen",
        [
          quick "deterministic" test_fuzzgen_deterministic;
          quick "varied" test_fuzzgen_varied;
        ] );
    ]
