test/test_wasm.ml: Alcotest Array Ast Astring Exec Float Instance Int32 Int64 List Meter Printf QCheck QCheck_alcotest Random Types Validate Values Wasm
