test/test_arch.ml: Alcotest Arch Cpu_model Float Insn Int64 List Mte Pac Printf Ptr QCheck QCheck_alcotest Random Tag Tag_memory Timing
