test/test_minic.ml: Alcotest Astring Cage Int32 Libc List Minic Printf QCheck QCheck_alcotest Wasm Workloads
