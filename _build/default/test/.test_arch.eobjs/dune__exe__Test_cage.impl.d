test/test_cage.ml: Alcotest Arch Array Cage Config Float Int64 List Lowering Printf Process QCheck QCheck_alcotest Sandbox Wasm
