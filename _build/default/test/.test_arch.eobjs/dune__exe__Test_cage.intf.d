test/test_cage.mli:
