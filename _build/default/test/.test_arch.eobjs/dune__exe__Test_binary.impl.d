test/test_binary.ml: Alcotest Ast Astring Binary Cage Exec Float Int64 Libc List Minic QCheck QCheck_alcotest String Text Types Validate Values Wasm Workloads
