test/test_wasm.mli:
