test/test_workloads.ml: Alcotest Arch Astring Cage Float Harness Libc List Option Printf Wasm Workloads
