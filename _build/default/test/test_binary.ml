(* Tests for the wasm binary encoder/decoder (including the Cage opcode
   prefix) and the text printer. *)

open Wasm

let tc name f = Alcotest.test_case name `Quick f

(* function names are not preserved by the binary format *)
let strip_names (m : Ast.module_) =
  { m with Ast.funcs = List.map (fun f -> { f with Ast.fname = None }) m.funcs }

let roundtrip m = Binary.decode (Binary.encode m)

let check_roundtrip name m =
  let m' = roundtrip m in
  if strip_names m <> m' then Alcotest.failf "%s: roundtrip mismatch" name

let ft params results = { Types.params; results }

let mem64 =
  { Types.mem_idx = Types.Idx64;
    mem_limits = { Types.min = 1L; max = Some 16L } }

let simple_module body =
  {
    Ast.empty_module with
    types = [ ft [] [ Types.I64 ] ];
    funcs = [ { Ast.ftype = 0; locals = [ Types.I64 ]; body; fname = None } ];
    memory = Some mem64;
    exports = [ { Ast.ex_name = "f"; ex_desc = Ast.Func_export 0 } ];
  }

let test_roundtrip_minimal () =
  check_roundtrip "minimal" (simple_module [ Ast.I64Const 42L ])

let test_roundtrip_control_flow () =
  check_roundtrip "control flow"
    (simple_module
       [
         Ast.Block
           (Ast.ValBlock (Some Types.I64),
            [
              Ast.I32Const 1l;
              Ast.If
                (Ast.ValBlock (Some Types.I64),
                 [ Ast.I64Const 1L ],
                 [
                   Ast.Loop
                     (Ast.ValBlock None,
                      [ Ast.I32Const 0l; Ast.BrIf 0 ]);
                   Ast.I64Const 2L;
                 ]);
              Ast.Br 0;
            ]);
       ])

let test_roundtrip_br_table () =
  check_roundtrip "br_table"
    (simple_module
       [
         Ast.Block
           (Ast.ValBlock None,
            [ Ast.I32Const 2l; Ast.BrTable ([ 0; 0 ], 0) ]);
         Ast.I64Const 9L;
       ])

let test_roundtrip_memory_ops () =
  check_roundtrip "memory ops"
    (simple_module
       [
         Ast.I64Const 8L;
         Ast.I64Const (-1L);
         Ast.Store (Types.I64, Some Ast.Pack16,
                    { Ast.offset = 123456789L; align = 1 });
         Ast.I64Const 8L;
         Ast.Load (Types.I64, Some (Ast.Pack16, Ast.SX),
                   { Ast.offset = 123456789L; align = 1 });
       ])

let test_roundtrip_cage_instrs () =
  check_roundtrip "cage instructions"
    (simple_module
       [
         Ast.I64Const 1024L; Ast.I64Const 32L; Ast.SegmentNew 16L;
         Ast.LocalSet 0;
         Ast.I64Const 1024L; Ast.LocalGet 0; Ast.I64Const 16L;
         Ast.SegmentSetTag 0L;
         Ast.LocalGet 0; Ast.I64Const 32L; Ast.SegmentFree 0L;
         Ast.I64Const 7L; Ast.PointerSign; Ast.PointerAuth;
       ])

let test_roundtrip_full_module () =
  let m =
    {
      Ast.types = [ ft [] []; ft [ Types.I32; Types.F64 ] [ Types.F32 ] ];
      imports =
        [ { Ast.im_module = "env"; im_name = "host"; im_type = 0 } ];
      funcs =
        [
          { Ast.ftype = 1;
            locals = [ Types.I32; Types.I32; Types.F64 ];
            body =
              [ Ast.LocalGet 0; Ast.Drop; Ast.LocalGet 1;
                Ast.Cvtop Ast.F32DemoteF64 ];
            fname = None };
        ];
      table = Some { Types.tbl_limits = { Types.min = 3L; max = Some 3L } };
      memory = Some mem64;
      globals =
        [
          { Ast.g_type = { Types.mut = true; g_type = Types.I64 };
            g_init = Values.I64 99L };
          { Ast.g_type = { Types.mut = false; g_type = Types.F64 };
            g_init = Values.F64 2.5 };
        ];
      exports =
        [
          { Ast.ex_name = "f"; ex_desc = Ast.Func_export 1 };
          { Ast.ex_name = "memory"; ex_desc = Ast.Mem_export 0 };
        ];
      elems = [ { Ast.e_offset = 1L; e_funcs = [ 0; 1 ] } ];
      datas = [ { Ast.d_offset = 64L; d_bytes = "hello\x00\xff" } ];
      start = None;
    }
  in
  check_roundtrip "full module" m

let test_decode_rejects_garbage () =
  (match Binary.decode "not a wasm module" with
  | _ -> Alcotest.fail "garbage accepted"
  | exception Binary.Decode_error _ -> ());
  match Binary.decode "\x00asm\x02\x00\x00\x00" with
  | _ -> Alcotest.fail "bad version accepted"
  | exception Binary.Decode_error _ -> ()

let test_decode_truncated () =
  let bytes = Binary.encode (simple_module [ Ast.I64Const 42L ]) in
  let truncated = String.sub bytes 0 (String.length bytes - 3) in
  match Binary.decode truncated with
  | _ -> Alcotest.fail "truncated module accepted"
  | exception Binary.Decode_error _ -> ()

let test_compiled_module_roundtrips () =
  (* compile a real kernel, encode, decode, re-run: same checksum *)
  let kernel =
    match Workloads.Polybench.find "atax" with
    | Some k -> k
    | None -> Alcotest.fail "no atax"
  in
  let cfg = Cage.Config.full in
  let opts = Minic.Driver.options_of_config cfg in
  let prelude = Libc.Source.prelude_of_config cfg in
  let compiled = Minic.Driver.compile ~opts ~prelude kernel.k_source in
  let m' = roundtrip compiled.co_module in
  (match Validate.validate m' with
  | Ok () -> ()
  | Error e -> Alcotest.failf "decoded module invalid: %s" e);
  let run m =
    let wasi = Libc.Wasi.create () in
    let inst =
      Exec.instantiate
        ~config:(Cage.Config.instance_config cfg)
        ~imports:(Libc.Wasi.imports wasi) m
    in
    Exec.invoke inst "main" []
  in
  match (run compiled.co_module, run m') with
  | [ Values.I32 a ], [ Values.I32 b ] ->
      Alcotest.(check int32) "same checksum after roundtrip" a b
  | _ -> Alcotest.fail "kernel did not return a single i32"

let check_text_roundtrip name m =
  let m' = Text.parse (Text.to_string m) in
  if strip_names m <> strip_names m' then
    Alcotest.failf "%s: text roundtrip mismatch" name

let test_text_roundtrip_cases () =
  check_text_roundtrip "minimal" (simple_module [ Ast.I64Const 42L ]);
  check_text_roundtrip "cage"
    (simple_module
       [ Ast.I64Const 1024L; Ast.I64Const 32L; Ast.SegmentNew 16L;
         Ast.LocalSet 0; Ast.LocalGet 0; Ast.I64Const 32L;
         Ast.SegmentFree 0L; Ast.I64Const 7L; Ast.PointerSign;
         Ast.PointerAuth ]);
  check_text_roundtrip "control"
    (simple_module
       [ Ast.Block
           (Ast.ValBlock (Some Types.I64),
            [ Ast.I32Const 1l;
              Ast.If (Ast.ValBlock (Some Types.I64),
                      [ Ast.I64Const 1L ], [ Ast.I64Const 2L ]);
              Ast.Br 0 ]) ])

let test_text_roundtrip_compiled () =
  let kernel =
    match Workloads.Polybench.find "bicg" with
    | Some k -> k
    | None -> Alcotest.fail "no bicg"
  in
  let cfg = Cage.Config.full in
  let opts = Minic.Driver.options_of_config cfg in
  let prelude = Libc.Source.prelude_of_config cfg in
  let compiled = Minic.Driver.compile ~opts ~prelude kernel.k_source in
  check_text_roundtrip "compiled bicg" compiled.co_module

let prop_text_const_roundtrip =
  QCheck.Test.make ~name:"text consts roundtrip (incl. hex floats)"
    ~count:300
    QCheck.(triple int64 int32 float)
    (fun (a, b, c) ->
      QCheck.assume (Float.is_finite c || Float.is_nan c || c = infinity);
      let m =
        simple_module
          [ Ast.I64Const a; Ast.Drop; Ast.I32Const b; Ast.Drop;
            Ast.F64Const c; Ast.Drop; Ast.I64Const 0L ]
      in
      strip_names m = strip_names (Text.parse (Text.to_string m)))

let test_text_printer_mentions_cage () =
  let m =
    simple_module
      [ Ast.I64Const 1024L; Ast.I64Const 32L; Ast.SegmentNew 0L;
        Ast.PointerSign; Ast.PointerAuth ]
  in
  let s = Text.to_string m in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("prints " ^ needle) true
        (Astring.String.is_infix ~affix:needle s))
    [ "segment.new"; "i64.pointer_sign"; "i64.pointer_auth"; "(module";
      "memory i64" ]

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_const_roundtrip =
  QCheck.Test.make ~name:"i64/i32/f64 consts roundtrip (LEB + IEEE)"
    ~count:500
    QCheck.(triple int64 int32 float)
    (fun (a, b, c) ->
      let m =
        simple_module
          [
            Ast.I64Const a; Ast.Drop; Ast.I32Const b; Ast.Drop;
            Ast.F64Const c; Ast.Drop; Ast.F32Const (Values.to_f32 c);
            Ast.Drop; Ast.I64Const 0L;
          ]
      in
      strip_names m = roundtrip m)

let prop_leb_edge_values =
  QCheck.Test.make ~name:"LEB encodes extremes" ~count:50
    (QCheck.oneofl
       [ Int64.min_int; Int64.max_int; 0L; -1L; 1L; 0x7fL; 0x80L; -64L;
         -65L; 0x3fffffffffffffffL ])
    (fun v ->
      let m = simple_module [ Ast.I64Const v ] in
      strip_names m = roundtrip m)

let prop_memarg_roundtrip =
  QCheck.Test.make ~name:"memarg offsets roundtrip" ~count:300
    QCheck.(pair (int_bound 0x7fffffff) (int_bound 3))
    (fun (off, align) ->
      let m =
        simple_module
          [
            Ast.I64Const 0L;
            Ast.Load (Types.I64, None,
                      { Ast.offset = Int64.of_int off; align });
          ]
      in
      strip_names m = roundtrip m)

let all_numeric_instrs =
  let widths = [ Ast.W32; Ast.W64 ] in
  List.concat_map
    (fun w ->
      List.map (fun op -> Ast.IBinop (w, op))
        [ Ast.Add; Ast.Sub; Ast.Mul; Ast.DivS; Ast.DivU; Ast.RemS;
          Ast.RemU; Ast.And; Ast.Or; Ast.Xor; Ast.Shl; Ast.ShrS; Ast.ShrU;
          Ast.Rotl; Ast.Rotr ]
      @ List.map (fun op -> Ast.IRelop (w, op))
          [ Ast.Eq; Ast.Ne; Ast.LtS; Ast.LtU; Ast.GtS; Ast.GtU; Ast.LeS;
            Ast.LeU; Ast.GeS; Ast.GeU ]
      @ List.map (fun op -> Ast.IUnop (w, op)) [ Ast.Clz; Ast.Ctz; Ast.Popcnt ]
      @ List.map (fun op -> Ast.FBinop (w, op))
          [ Ast.FAdd; Ast.FSub; Ast.FMul; Ast.FDiv; Ast.FMin; Ast.FMax;
            Ast.Copysign ]
      @ List.map (fun op -> Ast.FUnop (w, op))
          [ Ast.Neg; Ast.Abs; Ast.Ceil; Ast.Floor; Ast.Trunc; Ast.Nearest;
            Ast.Sqrt ]
      @ List.map (fun op -> Ast.FRelop (w, op))
          [ Ast.FEq; Ast.FNe; Ast.FLt; Ast.FGt; Ast.FLe; Ast.FGe ])
    widths
  @ List.map (fun c -> Ast.Cvtop c)
      [ Ast.I32WrapI64; Ast.I64ExtendI32S; Ast.I64ExtendI32U;
        Ast.I32TruncF64S; Ast.I64TruncF64U; Ast.F32ConvertI32S;
        Ast.F64ConvertI64U; Ast.F32DemoteF64; Ast.F64PromoteF32;
        Ast.I32ReinterpretF32; Ast.I64ReinterpretF64; Ast.F32ReinterpretI32;
        Ast.F64ReinterpretI64 ]

let test_every_numeric_opcode_roundtrips () =
  (* not type-correct wasm (never validated or run); only the
     encode/decode tables are exercised *)
  List.iter
    (fun ins ->
      let m =
        { Ast.empty_module with
          types = [ ft [] [] ];
          funcs =
            [ { Ast.ftype = 0; locals = []; body = [ ins ]; fname = None } ] }
      in
      if strip_names m <> roundtrip m then
        Alcotest.failf "opcode table mismatch for some instruction")
    all_numeric_instrs

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_const_roundtrip; prop_leb_edge_values; prop_memarg_roundtrip;
      prop_text_const_roundtrip ]

let () =
  Alcotest.run "binary"
    [
      ( "roundtrip",
        [
          tc "minimal" test_roundtrip_minimal;
          tc "control flow" test_roundtrip_control_flow;
          tc "br_table" test_roundtrip_br_table;
          tc "memory ops" test_roundtrip_memory_ops;
          tc "cage instructions" test_roundtrip_cage_instrs;
          tc "full module" test_roundtrip_full_module;
          tc "compiled kernel" test_compiled_module_roundtrips;
          tc "every numeric opcode" test_every_numeric_opcode_roundtrips;
        ] );
      ( "robustness",
        [
          tc "rejects garbage" test_decode_rejects_garbage;
          tc "rejects truncation" test_decode_truncated;
        ] );
      ( "text",
        [
          tc "printer mentions cage" test_text_printer_mentions_cage;
          tc "roundtrip cases" test_text_roundtrip_cases;
          tc "roundtrip compiled kernel" test_text_roundtrip_compiled;
        ] );
      ("binary-properties", qtests);
    ]
