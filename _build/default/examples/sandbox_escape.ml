(* External memory safety: a CVE-2023-26489-style sandbox escape.

   In 2023, a wasmtime lowering bug dropped the bounds check for
   certain address patterns, letting hostile wasm read other memory in
   the host process. Cage's MTE sandboxing (paper §6.4, Fig. 12b/13)
   makes the *hardware* check every access against the instance's tag,
   so the same miscompilation becomes harmless.

     dune exec examples/sandbox_escape.exe *)

let () =
  print_endline
    "Two instances share a host process. The victim holds a secret; the\n\
     attacker's module was compiled by a buggy backend that forgot the\n\
     bounds check on one load.\n";
  List.iter
    (fun (cfg, label) ->
      Printf.printf "--- %s ---\n" label;
      let host = Cage.Sandbox.create ~config:cfg ~size:(1 lsl 20) () in
      let victim = Cage.Sandbox.add_instance host ~size:65536 in
      let attacker = Cage.Sandbox.add_instance host ~size:65536 in
      (* the victim stores a secret inside its own linear memory *)
      Cage.Sandbox.poke host victim ~index:512L 0x5ec2e7L;
      (* the attacker crafts an index that, relative to its own heap
         base, lands inside the victim's region *)
      let evil_index =
        Int64.add
          (Int64.sub victim.Cage.Sandbox.base attacker.Cage.Sandbox.base)
          512L
      in
      Printf.printf "  attacker issues load at out-of-range index 0x%Lx\n"
        evil_index;
      (match
         Cage.Sandbox.guest_load ~buggy_lowering:true host attacker
           ~index:evil_index
       with
      | Cage.Sandbox.Value v when Int64.equal v 0x5ec2e7L ->
          Printf.printf
            "  -> read 0x%Lx: THE SECRET LEAKED (sandbox escape)\n" v
      | Cage.Sandbox.Value v -> Printf.printf "  -> read 0x%Lx\n" v
      | Cage.Sandbox.Bounds_trap -> print_endline "  -> bounds check trapped"
      | Cage.Sandbox.Segfault -> print_endline "  -> guard page fault"
      | Cage.Sandbox.Tag_fault f ->
          Format.printf "  -> hardware stopped it: %a@." Arch.Mte.pp_fault f);
      (* also show that a *forged tag* cannot escape: Fig. 13 masking *)
      (match cfg.Cage.Config.sandbox with
      | Cage.Config.Mte_sandbox ->
          let forged =
            Arch.Ptr.with_tag evil_index (Arch.Tag.of_int 1)
            (* guess the victim's tag *)
          in
          (match
             Cage.Sandbox.guest_load ~buggy_lowering:true host attacker
               ~index:forged
           with
          | Cage.Sandbox.Value v when Int64.equal v 0x5ec2e7L ->
              print_endline "  forged-tag attempt: LEAKED (mask missing?)"
          | Cage.Sandbox.Tag_fault _ ->
              print_endline
                "  forged-tag attempt: masked out before address \
                 computation (Fig. 13), tag fault"
          | _ -> print_endline "  forged-tag attempt: stopped")
      | _ -> ());
      print_newline ())
    [
      (Cage.Config.baseline_wasm64, "software bounds checks, buggy lowering");
      (Cage.Config.sandboxing, "MTE sandboxing, same buggy lowering");
    ];
  (* §6.4 capacity limit *)
  let host =
    Cage.Sandbox.create ~config:Cage.Config.sandboxing ~size:(1 lsl 21) ()
  in
  let rec fill n =
    match Cage.Sandbox.add_instance host ~size:4096 with
    | (_ : Cage.Sandbox.instance_region) -> fill (n + 1)
    | exception Cage.Sandbox.Too_many_sandboxes -> n
  in
  Printf.printf
    "Capacity: %d sandboxes fit in one process (15 guest tags + tag 0 \
     for the runtime, paper Sec 6.4).\n"
    (fill 0)
