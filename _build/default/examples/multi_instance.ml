(* Pointer authentication across instances: the WebOS scenario of
   paper §3/§6.3. Several WASM instances share one process (and
   therefore one PAC key); Cage gives each a random modifier, so a
   function pointer leaked from one instance will not authenticate in
   another.

     dune exec examples/multi_instance.exe *)

let plugin_source = {|
  /* a "plugin" that registers a callback and invokes callbacks */
  long handler() { return 7001; }

  long make_callback() {
    long (*f)() = handler;        /* signed on creation (Fig. 9) */
    return (long)f;               /* leaks the signed pointer */
  }

  long invoke_callback(long fp) {
    long (*f)() = (long (*)())fp; /* authenticated at the call */
    return f();
  }

  int main() { return 0; }
|}

let () =
  print_endline
    "One process, two instances of the same plugin, shared PAC key,\n\
     per-instance modifiers.\n";
  (* WebOS-style hosting: MTE sandboxing isolates up to 15 instances
     (§6.4), PAC isolates their function pointers. The combined
     internal+external tag split (Config.full) would leave room for
     only one sandbox, so this deployment keeps internal safety off. *)
  let config =
    { Cage.Config.sandboxing with
      Cage.Config.name = "webos";
      ptr_auth = true }
  in
  let process = Cage.Process.create ~config () in
  let opts = Minic.Driver.options_of_config config in
  let prelude = Libc.Source.prelude_of_config config in
  let m = (Minic.Driver.compile ~opts ~prelude plugin_source).co_module in
  let wasi = Libc.Wasi.create () in
  let a = Cage.Process.spawn ~imports:(Libc.Wasi.imports wasi) process m in
  let b = Cage.Process.spawn ~imports:(Libc.Wasi.imports wasi) process m in
  Printf.printf "spawned %d instances\n\n" (Cage.Process.instance_count process);

  (* instance A creates (and signs) a callback pointer *)
  let signed =
    match Wasm.Exec.invoke a "make_callback" [] with
    | [ Wasm.Values.I64 p ] -> p
    | _ -> failwith "make_callback returned nothing"
  in
  Format.printf "instance A leaked its signed function pointer: %a@."
    Arch.Ptr.pp signed;
  Printf.printf "  (signature bits live in the pointer's upper bits)\n\n";

  (* A can use its own pointer *)
  (match Wasm.Exec.invoke a "invoke_callback" [ Wasm.Values.I64 signed ] with
  | [ Wasm.Values.I64 v ] ->
      Printf.printf "instance A invokes it:   handler() = %Ld (works)\n" v
  | _ -> print_endline "unexpected result");

  (* B replays the leaked pointer: the modifier differs, auth traps *)
  (match Wasm.Exec.invoke b "invoke_callback" [ Wasm.Values.I64 signed ] with
  | [ Wasm.Values.I64 v ] ->
      Printf.printf "instance B replays it:   handler() = %Ld (NOT STOPPED)\n" v
  | _ -> print_endline "unexpected result"
  | exception Wasm.Instance.Trap msg ->
      Printf.printf "instance B replays it:   TRAPPED - %s\n" msg);

  (* and a forged pointer (guessed table index, no signature) fails too *)
  (match Wasm.Exec.invoke a "invoke_callback" [ Wasm.Values.I64 1L ] with
  | [ Wasm.Values.I64 v ] ->
      Printf.printf "forged raw index 1:      handler() = %Ld (NOT STOPPED)\n" v
  | _ -> print_endline "unexpected result"
  | exception Wasm.Instance.Trap msg ->
      Printf.printf "forged raw index 1:      TRAPPED - %s\n" msg);

  print_newline ();
  print_endline
    "Within an instance, reuse of *other signed pointers of the same\n\
     instance* remains possible (paper: Cage prevents cross-instance\n\
     reuse; same-signature-scheme reuse inside one instance is out of\n\
     scope)."
