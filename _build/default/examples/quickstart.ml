(* Quickstart: compile a buggy C program with the Cage toolchain and
   watch MTE-backed segments catch the overflow that plain WebAssembly
   lets through.

     dune exec examples/quickstart.exe *)

let buggy_program = {|
  /* A parser with a classic off-by-one: the buffer holds 16 bytes but
     the loop writes 17. */
  int parse(char *input, int len) {
    char field[16];
    for (int i = 0; i <= len; i++) {   /* <= should be < */
      field[i % 32] = input[i % 8];    /* dynamic index: instrumented */
    }
    return (int)field[0];
  }

  int main() {
    char *input = (char *)malloc(8);
    for (int i = 0; i < 8; i++) { input[i] = (char)(65 + i); }
    return parse(input, 16);
  }
|}

let run_under name cfg =
  Printf.printf "--- %s ---\n" name;
  match Libc.Run.run ~cfg buggy_program with
  | r ->
      Printf.printf "ran to completion, returned %ld\n"
        (Libc.Run.ret_i32 r);
      Printf.printf "(the overflow silently corrupted the stack)\n\n"
  | exception Wasm.Instance.Trap msg ->
      Printf.printf "TRAPPED: %s\n" msg;
      Printf.printf "(the out-of-bounds write never took effect)\n\n"

let () =
  print_endline "Cage quickstart: one buggy program, two runtimes.\n";
  (* 1. Plain 64-bit WebAssembly: sandboxed, but unsafe inside. *)
  run_under "baseline wasm64 (plain WebAssembly)" Cage.Config.baseline_wasm64;
  (* 2. Full Cage: the stack sanitizer wrapped `field` in a memory
        segment, so the 17th write hits a differently-tagged granule. *)
  run_under "CAGE (MTE segments + PAC + MTE sandboxing)" Cage.Config.full;
  (* Show what the compiler actually did. *)
  let opts = Minic.Driver.options_of_config Cage.Config.full in
  let prelude = Libc.Source.prelude_of_config Cage.Config.full in
  let compiled = Minic.Driver.compile ~opts ~prelude buggy_program in
  Format.printf "What the stack sanitizer decided (paper Algorithm 1):@.  %a@."
    Minic.Stack_sanitizer.pp_stats compiled.co_sanitizer;
  print_endline
    "\nTry it yourself:\n\
    \  dune exec bin/cagec.exe -- prog.c --config CAGE -o prog.wasm\n\
    \  dune exec bin/cage_run.exe -- prog.wasm --config CAGE"
