(* The Table 2 gallery: eight real CVE root causes re-created in MiniC,
   run under plain WebAssembly and under Cage.

     dune exec examples/cve_gallery.exe *)

let () =
  print_endline
    "Paper Table 2: memory-safety CVEs remain exploitable inside plain\n\
     WebAssembly's sandbox. Cage's segments catch every one of them.\n";
  let verdicts = Workloads.Cve_suite.evaluate_all () in
  List.iter
    (fun (v : Workloads.Cve_suite.verdict) ->
      Printf.printf "%s (%s)\n" v.v_entry.cve v.v_entry.cause;
      Printf.printf "  %s\n" v.v_entry.description;
      Printf.printf "  plain wasm64 : %s\n" v.v_baseline;
      Printf.printf "  CAGE         : %s\n\n" v.v_cage)
    verdicts;
  let caught =
    List.length (List.filter (fun v -> v.Workloads.Cve_suite.v_caught) verdicts)
  in
  Printf.printf "caught by Cage: %d/%d\n" caught (List.length verdicts)
