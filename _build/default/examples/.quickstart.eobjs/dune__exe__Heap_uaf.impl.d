examples/heap_uaf.ml: Arch Cage Format Int64 Libc Printf Wasm
