examples/custom_allocator.ml: Cage Libc Minic Printf Wasm
