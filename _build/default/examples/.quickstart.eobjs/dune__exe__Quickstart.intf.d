examples/quickstart.mli:
