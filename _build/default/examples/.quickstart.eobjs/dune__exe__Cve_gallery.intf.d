examples/cve_gallery.mli:
