examples/cve_gallery.ml: List Printf Workloads
