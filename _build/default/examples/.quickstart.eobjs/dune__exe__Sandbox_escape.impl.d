examples/sandbox_escape.ml: Arch Cage Format Int64 List Printf
