examples/multi_instance.ml: Arch Cage Format Libc Minic Printf Wasm
