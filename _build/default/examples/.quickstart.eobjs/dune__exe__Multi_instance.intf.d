examples/multi_instance.mli:
