examples/quickstart.ml: Cage Format Libc Minic Printf Wasm
