examples/heap_uaf.mli:
