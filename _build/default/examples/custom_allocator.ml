(* The §4.1 programming model: "For applications using their own
   allocator, we expose Cage's memory safety primitives to C, enabling
   programmers to implement the same security guarantees."

   This example builds a bump/arena allocator in MiniC directly on the
   __builtin_segment_* intrinsics — no libc malloc involved — and shows
   it gets the same spatial and temporal protection as the hardened
   dlmalloc.

     dune exec examples/custom_allocator.exe *)

let arena_source = {|
  /* A tiny arena allocator on top of the Cage primitives.

     Layout: [16-byte header: bump offset][objects...]
     Every object is 16-aligned, claimed with segment.new (random tag,
     zeroed), and released with segment.free on arena reset. The header
     stays untagged, so adjacent objects never collide with it. */

  long arena_base;     /* untagged base address */
  long arena_cap;

  void arena_init(long base, long cap) {
    arena_base = base;
    arena_cap = cap;
    long *hdr = (long *)base;
    hdr[0] = 16;       /* first free offset, after the header */
  }

  void *arena_alloc(long n) {
    long *hdr = (long *)arena_base;
    long need = (n + 15) & ~15;
    if (hdr[0] + need > arena_cap) { return (void *)0; }
    long payload = arena_base + hdr[0];
    hdr[0] += need;
    /* the Cage primitive: tag + zero + return the tagged pointer */
    return (void *)__builtin_segment_new(payload, need);
  }

  void arena_reset_object(void *p, long n) {
    /* temporal safety for individual objects: retag so stale pointers
       trap, exactly like free() in the hardened libc */
    __builtin_segment_free((long)p, (n + 15) & ~15);
  }

  /* --- a small workload on the arena --- */

  int use_after_reset() {
    long *obj = (long *)arena_alloc(32);
    obj[0] = 1234;
    arena_reset_object(obj, 32);
    return (int)obj[0];             /* stale pointer */
  }

  int overflow_into_neighbour() {
    char *a = (char *)arena_alloc(16);
    char *b = (char *)arena_alloc(16);
    b[0] = 55;
    a[16] = 99;                     /* one past the end of a */
    return b[0];
  }

  int well_behaved() {
    long *v = (long *)arena_alloc(64);
    for (int i = 0; i < 8; i++) { v[i] = (long)(i * i); }
    long s = 0;
    for (int i = 0; i < 8; i++) { s += v[i]; }
    return (int)s;                  /* 0+1+4+...+49 = 140 */
  }

  int main() { return 0; }
|}

let () =
  print_endline
    "A custom arena allocator built directly on the Cage C intrinsics\n\
     (__builtin_segment_new / __builtin_segment_free), paper Sec 4.1.\n";
  let cfg = Cage.Config.mem_safety in
  let opts = Minic.Driver.options_of_config cfg in
  let prelude = Libc.Source.prelude_of_config cfg in
  let compiled = Minic.Driver.compile ~opts ~prelude arena_source in
  let run entry =
    (* fresh instance per scenario; carve the arena out of the heap *)
    let wasi = Libc.Wasi.create () in
    let inst =
      Wasm.Exec.instantiate
        ~config:(Cage.Config.instance_config cfg)
        ~imports:(Libc.Wasi.imports wasi) compiled.co_module
    in
    let heap_base, _ = Minic.Codegen.heap_layout compiled.co_ir in
    ignore
      (Wasm.Exec.invoke inst "arena_init"
         [ Wasm.Values.I64 heap_base; Wasm.Values.I64 65536L ]);
    match Wasm.Exec.invoke inst entry [] with
    | [ Wasm.Values.I32 v ] -> Printf.sprintf "returned %ld" v
    | _ -> "returned nothing"
    | exception Wasm.Instance.Trap msg -> "TRAPPED - " ^ msg
  in
  Printf.printf "well-behaved code      : %s (expected 140)\n"
    (run "well_behaved");
  Printf.printf "use after reset        : %s\n" (run "use_after_reset");
  Printf.printf "overflow into neighbour: %s\n"
    (run "overflow_into_neighbour");
  print_endline
    "\nThe same guarantees as the hardened libc allocator, from ~20 lines\n\
     of allocator code: segment.new gives each object its own tag, and\n\
     segment.free retags on release."
