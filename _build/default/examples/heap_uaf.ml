(* Temporal heap safety: use-after-free and double-free, caught by the
   hardened allocator's segment.free retagging (paper §4.2, Fig. 2).

     dune exec examples/heap_uaf.exe *)

let uaf_program = {|
  struct Message { long id; long body[7]; };

  int main() {
    /* a "connection" holding a message buffer */
    struct Message *msg = (struct Message *)malloc(sizeof(struct Message));
    msg->id = 4242;
    msg->body[0] = 111;

    /* the connection closes: buffer released */
    free(msg);

    /* the allocator hands the same memory to another user... */
    long *fresh = (long *)malloc(sizeof(struct Message));
    fresh[0] = 999999;   /* attacker-controlled content */

    /* ...and stale code touches the dangling pointer */
    return (int)msg->id;
  }
|}

let double_free_program = {|
  int main() {
    char *frame = (char *)malloc(64);
    free(frame);
    /* error path frees again: classic allocator corruption primitive */
    free(frame);
    return 0;
  }
|}

let show title program =
  Printf.printf "=== %s ===\n" title;
  (match Libc.Run.run ~cfg:Cage.Config.baseline_wasm64 program with
  | r ->
      Printf.printf "  baseline wasm64 : returned %ld (bug invisible)\n"
        (Libc.Run.ret_i32 r)
  | exception Wasm.Instance.Trap msg ->
      Printf.printf "  baseline wasm64 : trapped?! %s\n" msg);
  (match Libc.Run.run ~cfg:Cage.Config.mem_safety program with
  | r ->
      Printf.printf "  Cage-mem-safety : returned %ld (MISSED)\n"
        (Libc.Run.ret_i32 r)
  | exception Wasm.Instance.Trap msg ->
      Printf.printf "  Cage-mem-safety : TRAPPED - %s\n" msg);
  print_newline ()

let () =
  print_endline
    "Temporal heap safety: segment.free retags released memory, so\n\
     dangling pointers carry a stale tag and the hardware refuses them.\n";
  show "use-after-free (dangling read sees attacker data)" uaf_program;
  show "double-free (allocator free-list corruption)" double_free_program;
  (* peek under the hood: watch the tags move *)
  let source = {|
    long probe() {
      long *p = (long *)malloc(16);
      p[0] = 1;
      return (long)p;
    }
    int main() { return 0; }
  |} in
  let r = Libc.Run.run ~cfg:Cage.Config.mem_safety ~entry:"probe" source in
  match r.Libc.Run.values with
  | [ Wasm.Values.I64 tagged ] ->
      Format.printf
        "Under the hood: malloc returned %a - note the non-zero tag in \
         bits 56-59.@."
        Arch.Ptr.pp tagged;
      let inst = r.Libc.Run.instance in
      let addr = Arch.Ptr.address tagged in
      Format.printf
        "The allocation's granules carry the matching allocation tag %a;@."
        Arch.Tag.pp
        (Wasm.Instance.tag_of_addr inst addr);
      Format.printf
        "the metadata header before it stays untagged (%a) - the Fig. 8a \
         guard.@."
        Arch.Tag.pp
        (Wasm.Instance.tag_of_addr inst (Int64.sub addr 16L))
  | _ -> print_endline "unexpected probe result"
