bin/cagec.mli:
