bin/cage_run.mli:
