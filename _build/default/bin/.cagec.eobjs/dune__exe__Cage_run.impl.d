bin/cage_run.ml: Arg Cage Cmd Cmdliner Filename Format In_channel Int32 Int64 Libc List Minic Printf String Term Wasm
