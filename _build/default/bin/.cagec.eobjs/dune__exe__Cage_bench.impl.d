bin/cage_bench.ml: Arch Arg Cage Cmd Cmdliner Format Harness Hashtbl Libc List Printf String Term Wasm Workloads
