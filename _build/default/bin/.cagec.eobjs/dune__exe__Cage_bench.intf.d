bin/cage_bench.mli:
