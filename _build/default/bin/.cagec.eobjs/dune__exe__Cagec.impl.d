bin/cagec.ml: Arg Cage Cmd Cmdliner Filename Format In_channel Libc List Minic Printf String Term Wasm
