(* cage_run: execute a .wasm file (or compile-and-run a .c file) under a
   chosen Cage runtime configuration — the analogue of the paper's
   modified wasmtime.

     cage_run module.wasm                   run exported "main"
     cage_run module.wat                    text-format module
     cage_run program.c --config CAGE       compile + run
     cage_run module.wasm --invoke f 1 2    call f(1, 2) *)

open Cmdliner

let config_conv =
  let parse s =
    match
      List.find_opt
        (fun c -> String.equal c.Cage.Config.name s)
        Cage.Config.table3
    with
    | Some c -> Ok c
    | None -> Error (`Msg (Printf.sprintf "unknown config %S" s))
  in
  let print ppf c = Format.pp_print_string ppf c.Cage.Config.name in
  Arg.conv (parse, print)

let input =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"MODULE"
         ~doc:"A .wasm binary or a MiniC .c source file.")

let config =
  Arg.(value & opt config_conv Cage.Config.full
         & info [ "config" ] ~docv:"CONFIG"
             ~doc:"Runtime configuration (Table 3 variant name).")

let entry =
  Arg.(value & opt string "main" & info [ "invoke" ] ~docv:"FUNC"
         ~doc:"Exported function to call.")

let args =
  Arg.(value & pos_right 0 string [] & info [] ~docv:"ARGS"
         ~doc:"Integer arguments for the entry point.")

let show_meter =
  Arg.(value & flag & info [ "meter" ]
         ~doc:"Print the execution-event counts after the run.")

let run input config entry args show_meter =
  let meter = Wasm.Meter.create () in
  let wasi = Libc.Wasi.create () in
  let result =
    try
      let values =
        if Filename.check_suffix input ".wasm"
           || Filename.check_suffix input ".wat" then begin
          let m =
            if Filename.check_suffix input ".wat" then
              Wasm.Text.parse
                (In_channel.with_open_text input In_channel.input_all)
            else Wasm.Binary.read_file input
          in
          (match Wasm.Validate.validate m with
          | Ok () -> ()
          | Error e -> failwith ("invalid module: " ^ e));
          let iconfig = Cage.Config.instance_config ~meter config in
          let inst =
            Wasm.Exec.instantiate ~config:iconfig
              ~imports:(Libc.Wasi.imports wasi) m
          in
          let vargs =
            List.map (fun a -> Wasm.Values.I64 (Int64.of_string a)) args
          in
          Wasm.Exec.invoke inst entry vargs
        end
        else begin
          let source = In_channel.with_open_text input In_channel.input_all in
          let r = Libc.Run.run ~cfg:config ~meter ~entry source in
          r.Libc.Run.values
        end
      in
      Ok values
    with
    | Wasm.Instance.Trap msg -> Error ("trap: " ^ msg)
    | Libc.Wasi.Proc_exit code -> Ok [ Wasm.Values.I32 (Int32.of_int code) ]
    | Minic.Driver.Compile_error msg -> Error msg
    | Wasm.Text.Parse_error msg -> Error ("wat parse error: " ^ msg)
    | Wasm.Binary.Decode_error msg -> Error ("decode error: " ^ msg)
    | Failure msg -> Error msg
  in
  print_string (Libc.Wasi.output wasi);
  (match result with
  | Ok values ->
      List.iter
        (fun v -> Format.printf "%s() -> %a@." entry Wasm.Values.pp v)
        values
  | Error msg ->
      Format.printf "%s@." msg);
  if show_meter then Format.eprintf "%a@." Wasm.Meter.pp meter;
  match result with Ok _ -> 0 | Error _ -> 1

let cmd =
  let doc = "run WebAssembly under a Cage runtime configuration" in
  Cmd.v
    (Cmd.info "cage_run" ~doc)
    Term.(const run $ input $ config $ entry $ args $ show_meter)

let () = exit (Cmd.eval' cmd)
