(* cage_bench: run a single PolyBench kernel under every Table 3
   configuration and print per-core simulated times — a focused view of
   one Fig. 14 column.

     cage_bench gemm
     cage_bench --list *)

open Cmdliner

let kernel_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"KERNEL"
         ~doc:"PolyBench kernel name (see --list).")

let list_flag =
  Arg.(value & flag & info [ "list" ] ~doc:"List available kernels.")

let run kernel list_flag =
  if list_flag then begin
    List.iter print_endline Workloads.Polybench.names;
    0
  end
  else
    match kernel with
    | None ->
        prerr_endline "cage_bench: a kernel name (or --list) is required";
        1
    | Some name -> (
        match Workloads.Polybench.find name with
        | None ->
            Printf.eprintf "unknown kernel %S (try --list)\n" name;
            1
        | Some kernel ->
            Format.printf "%s: simulated runtime per configuration@."
              kernel.k_name;
            let base = Hashtbl.create 4 in
            List.iter
              (fun cfg ->
                let meter = Wasm.Meter.create () in
                let r = Libc.Run.run ~cfg ~meter kernel.k_source in
                Format.printf "  %-18s checksum=%ld@." cfg.Cage.Config.name
                  (Libc.Run.ret_i32 r);
                List.iter
                  (fun core ->
                    let t = Cage.Lowering.seconds core cfg meter in
                    if String.equal cfg.Cage.Config.name "baseline wasm64"
                    then Hashtbl.replace base core.Arch.Cpu_model.name t;
                    let rel =
                      match Hashtbl.find_opt base core.Arch.Cpu_model.name with
                      | Some b -> Printf.sprintf " (%+.1f%% vs wasm64)"
                                    (100.0 *. ((t /. b) -. 1.0))
                      | None -> ""
                    in
                    Format.printf "      %-12s %s%s@." core.Arch.Cpu_model.name
                      (Harness.Report.seconds t) rel)
                  Arch.Cpu_model.tensor_g3)
              Cage.Config.table3;
            0)

let cmd =
  let doc = "benchmark one PolyBench kernel across Cage configurations" in
  Cmd.v (Cmd.info "cage_bench" ~doc) Term.(const run $ kernel_arg $ list_flag)

let () = exit (Cmd.eval' cmd)
