(** PolyBench/C 3.2 kernels in MiniC — the paper's Fig. 14 workload.

    Each kernel is a faithful translation of the PolyBench reference
    code at a reduced ("mini") problem size, with matrices allocated
    through the libc allocator (so the Cage configurations exercise the
    hardened heap) and flattened to 1-D with explicit index arithmetic
    (MiniC has no variable-length arrays). Every kernel returns a
    checksum so the differential tests can confirm all six Table 3
    configurations compute identical results. *)

type kernel = {
  k_name : string;
  k_source : string;
  k_flops : string;  (** dominant operation mix, for documentation *)
}

(* Common helpers embedded in every kernel. *)
let common = {|
double *dalloc(long n) { return (double *)malloc(n * 8); }

int checksum(double *a, long n) {
  double s = 0.0;
  for (long i = 0; i < n; i++) {
    double v = a[i];
    if (v != v) { v = 0.5; }  /* NaN-safe */
    if (v < 0.0) { v = 0.0 - v; }
    /* keep the magnitude bounded so all configs agree bit-for-bit */
    while (v > 1000000.0) { v = v / 1000000.0; }
    s = s + v;
  }
  long bits = (long)(s * 1048576.0);
  return (int)(bits % 1000003);
}
|}

let k name ?(flops = "fp-mul/add") body =
  { k_name = name; k_source = common ^ body; k_flops = flops }

let n = 20 (* mini problem size *)
let tsteps = 6

let def_n = Printf.sprintf "int n = %d;\n" n
let def_t = Printf.sprintf "int tsteps = %d;\n" tsteps

(* ------------------------------------------------------------- *)

let gemm = k "gemm" ({|
int main() {
|} ^ def_n ^ {|
  double *a = dalloc((long)n * n);
  double *b = dalloc((long)n * n);
  double *c = dalloc((long)n * n);
  double alpha = 1.5; double beta = 1.2;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      a[i * n + j] = (double)(i * j % 7) / 7.0;
      b[i * n + j] = (double)((i + j) % 13) / 13.0;
      c[i * n + j] = (double)((i - j) % 5) / 5.0;
    }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      c[i * n + j] *= beta;
      for (int kk = 0; kk < n; kk++)
        c[i * n + j] += alpha * a[i * n + kk] * b[kk * n + j];
    }
  int r = checksum(c, (long)n * n);
  free(a); free(b); free(c);
  return r;
}
|})

let two_mm = k "2mm" ({|
int main() {
|} ^ def_n ^ {|
  double *a = dalloc((long)n * n);
  double *b = dalloc((long)n * n);
  double *c = dalloc((long)n * n);
  double *d = dalloc((long)n * n);
  double *tmp = dalloc((long)n * n);
  double alpha = 1.5; double beta = 1.2;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      a[i * n + j] = (double)(i * j % 9) / 9.0;
      b[i * n + j] = (double)(i + j) / (double)n;
      c[i * n + j] = (double)(i * (j + 3) % 11) / 11.0;
      d[i * n + j] = (double)(i - j) / (double)n;
      tmp[i * n + j] = 0.0;
    }
  /* tmp = alpha * A * B */
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      for (int kk = 0; kk < n; kk++)
        tmp[i * n + j] += alpha * a[i * n + kk] * b[kk * n + j];
  /* D = tmp * C + beta * D */
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      d[i * n + j] *= beta;
      for (int kk = 0; kk < n; kk++)
        d[i * n + j] += tmp[i * n + kk] * c[kk * n + j];
    }
  int r = checksum(d, (long)n * n);
  free(a); free(b); free(c); free(d); free(tmp);
  return r;
}
|})

let three_mm = k "3mm" ({|
int main() {
|} ^ def_n ^ {|
  double *a = dalloc((long)n * n);
  double *b = dalloc((long)n * n);
  double *c = dalloc((long)n * n);
  double *d = dalloc((long)n * n);
  double *e = dalloc((long)n * n);
  double *f = dalloc((long)n * n);
  double *g = dalloc((long)n * n);
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      a[i * n + j] = (double)(i * j % 5) / 5.0;
      b[i * n + j] = (double)(i + j + 1) / (double)n;
      c[i * n + j] = (double)(i * (j + 2) % 7) / 7.0;
      d[i * n + j] = (double)(i - j) / (double)n;
      e[i * n + j] = 0.0;
      f[i * n + j] = 0.0;
      g[i * n + j] = 0.0;
    }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      for (int kk = 0; kk < n; kk++)
        e[i * n + j] += a[i * n + kk] * b[kk * n + j];
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      for (int kk = 0; kk < n; kk++)
        f[i * n + j] += c[i * n + kk] * d[kk * n + j];
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      for (int kk = 0; kk < n; kk++)
        g[i * n + j] += e[i * n + kk] * f[kk * n + j];
  int r = checksum(g, (long)n * n);
  free(a); free(b); free(c); free(d); free(e); free(f); free(g);
  return r;
}
|})

let atax = k "atax" ({|
int main() {
|} ^ def_n ^ {|
  double *a = dalloc((long)n * n);
  double *x = dalloc(n);
  double *y = dalloc(n);
  double *tmp = dalloc(n);
  for (int i = 0; i < n; i++) {
    x[i] = 1.0 + (double)i / (double)n;
    y[i] = 0.0;
    tmp[i] = 0.0;
    for (int j = 0; j < n; j++)
      a[i * n + j] = (double)((i + j) % 11) / 11.0;
  }
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++)
      tmp[i] += a[i * n + j] * x[j];
    for (int j = 0; j < n; j++)
      y[j] += a[i * n + j] * tmp[i];
  }
  int r = checksum(y, n);
  free(a); free(x); free(y); free(tmp);
  return r;
}
|})

let bicg = k "bicg" ({|
int main() {
|} ^ def_n ^ {|
  double *a = dalloc((long)n * n);
  double *s = dalloc(n);
  double *q = dalloc(n);
  double *p = dalloc(n);
  double *r = dalloc(n);
  for (int i = 0; i < n; i++) {
    p[i] = (double)(i % 7) / 7.0;
    r[i] = (double)(i % 5) / 5.0;
    s[i] = 0.0;
    q[i] = 0.0;
    for (int j = 0; j < n; j++)
      a[i * n + j] = (double)(i * (j + 1) % 9) / 9.0;
  }
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++) {
      s[j] += r[i] * a[i * n + j];
      q[i] += a[i * n + j] * p[j];
    }
  }
  int res = checksum(s, n) + checksum(q, n);
  free(a); free(s); free(q); free(p); free(r);
  return res;
}
|})

let mvt = k "mvt" ({|
int main() {
|} ^ def_n ^ {|
  double *a = dalloc((long)n * n);
  double *x1 = dalloc(n);
  double *x2 = dalloc(n);
  double *y1 = dalloc(n);
  double *y2 = dalloc(n);
  for (int i = 0; i < n; i++) {
    x1[i] = (double)(i % 3) / 3.0;
    x2[i] = (double)(i % 4) / 4.0;
    y1[i] = (double)(i % 5) / 5.0;
    y2[i] = (double)(i % 6) / 6.0;
    for (int j = 0; j < n; j++)
      a[i * n + j] = (double)(i * j % 13) / 13.0;
  }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      x1[i] += a[i * n + j] * y1[j];
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      x2[i] += a[j * n + i] * y2[j];
  int r = checksum(x1, n) + checksum(x2, n);
  free(a); free(x1); free(x2); free(y1); free(y2);
  return r;
}
|})

let gesummv = k "gesummv" ({|
int main() {
|} ^ def_n ^ {|
  double *a = dalloc((long)n * n);
  double *b = dalloc((long)n * n);
  double *x = dalloc(n);
  double *y = dalloc(n);
  double *tmp = dalloc(n);
  double alpha = 1.3; double beta = 0.7;
  for (int i = 0; i < n; i++) {
    x[i] = (double)(i % 9) / 9.0;
    for (int j = 0; j < n; j++) {
      a[i * n + j] = (double)(i * j % 7) / 7.0;
      b[i * n + j] = (double)((i + 2 * j) % 5) / 5.0;
    }
  }
  for (int i = 0; i < n; i++) {
    tmp[i] = 0.0;
    y[i] = 0.0;
    for (int j = 0; j < n; j++) {
      tmp[i] += a[i * n + j] * x[j];
      y[i] += b[i * n + j] * x[j];
    }
    y[i] = alpha * tmp[i] + beta * y[i];
  }
  int r = checksum(y, n);
  free(a); free(b); free(x); free(y); free(tmp);
  return r;
}
|})

let gemver = k "gemver" ({|
int main() {
|} ^ def_n ^ {|
  double *a = dalloc((long)n * n);
  double *u1 = dalloc(n); double *v1 = dalloc(n);
  double *u2 = dalloc(n); double *v2 = dalloc(n);
  double *w = dalloc(n); double *x = dalloc(n);
  double *y = dalloc(n); double *z = dalloc(n);
  double alpha = 1.5; double beta = 1.2;
  for (int i = 0; i < n; i++) {
    u1[i] = (double)i / (double)n;
    u2[i] = (double)(i + 1) / (double)n / 2.0;
    v1[i] = (double)(i + 2) / (double)n / 4.0;
    v2[i] = (double)(i + 3) / (double)n / 6.0;
    y[i] = (double)(i + 4) / (double)n / 8.0;
    z[i] = (double)(i + 5) / (double)n / 9.0;
    x[i] = 0.0; w[i] = 0.0;
    for (int j = 0; j < n; j++)
      a[i * n + j] = (double)(i * j % 11) / 11.0;
  }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      a[i * n + j] += u1[i] * v1[j] + u2[i] * v2[j];
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      x[i] += beta * a[j * n + i] * y[j];
  for (int i = 0; i < n; i++)
    x[i] += z[i];
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      w[i] += alpha * a[i * n + j] * x[j];
  int r = checksum(w, n);
  free(a); free(u1); free(v1); free(u2); free(v2);
  free(w); free(x); free(y); free(z);
  return r;
}
|})

let syrk = k "syrk" ({|
int main() {
|} ^ def_n ^ {|
  double *a = dalloc((long)n * n);
  double *c = dalloc((long)n * n);
  double alpha = 1.5; double beta = 1.2;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      a[i * n + j] = (double)(i * j % 9) / 9.0;
      c[i * n + j] = (double)((i + j) % 7) / 7.0;
    }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      c[i * n + j] *= beta;
      for (int kk = 0; kk < n; kk++)
        c[i * n + j] += alpha * a[i * n + kk] * a[j * n + kk];
    }
  int r = checksum(c, (long)n * n);
  free(a); free(c);
  return r;
}
|})

let syr2k = k "syr2k" ({|
int main() {
|} ^ def_n ^ {|
  double *a = dalloc((long)n * n);
  double *b = dalloc((long)n * n);
  double *c = dalloc((long)n * n);
  double alpha = 1.5; double beta = 1.2;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      a[i * n + j] = (double)(i * j % 9) / 9.0;
      b[i * n + j] = (double)((i + j) % 11) / 11.0;
      c[i * n + j] = (double)((2 * i + j) % 7) / 7.0;
    }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      c[i * n + j] *= beta;
      for (int kk = 0; kk < n; kk++)
        c[i * n + j] += alpha * a[i * n + kk] * b[j * n + kk]
                      + alpha * b[i * n + kk] * a[j * n + kk];
    }
  int r = checksum(c, (long)n * n);
  free(a); free(b); free(c);
  return r;
}
|})

let trmm = k "trmm" ({|
int main() {
|} ^ def_n ^ {|
  double *a = dalloc((long)n * n);
  double *b = dalloc((long)n * n);
  double alpha = 1.5;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      a[i * n + j] = (double)(i * j % 9) / 9.0;
      b[i * n + j] = (double)((i + j) % 13) / 13.0;
    }
  for (int i = 1; i < n; i++)
    for (int j = 0; j < n; j++)
      for (int kk = 0; kk < i; kk++)
        b[i * n + j] += alpha * a[i * n + kk] * b[j * n + kk];
  int r = checksum(b, (long)n * n);
  free(a); free(b);
  return r;
}
|})

let symm = k "symm" ({|
int main() {
|} ^ def_n ^ {|
  double *a = dalloc((long)n * n);
  double *b = dalloc((long)n * n);
  double *c = dalloc((long)n * n);
  double alpha = 1.5; double beta = 1.2;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      a[i * n + j] = (double)(i * j % 9) / 9.0;
      b[i * n + j] = (double)((i + j) % 11) / 11.0;
      c[i * n + j] = (double)((i - j) % 7) / 7.0;
    }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      double acc = 0.0;
      for (int kk = 0; kk < i; kk++) {
        c[kk * n + j] += alpha * a[i * n + kk] * b[i * n + j];
        acc += b[kk * n + j] * a[i * n + kk];
      }
      c[i * n + j] = beta * c[i * n + j]
                   + alpha * a[i * n + i] * b[i * n + j] + alpha * acc;
    }
  int r = checksum(c, (long)n * n);
  free(a); free(b); free(c);
  return r;
}
|})

let cholesky = k "cholesky" ~flops:"fp-div/sqrt" ({|
double my_sqrt(double x) {
  if (x <= 0.0) { return 0.0; }
  double g = x;
  for (int it = 0; it < 30; it++) { g = 0.5 * (g + x / g); }
  return g;
}
int main() {
|} ^ def_n ^ {|
  double *a = dalloc((long)n * n);
  double *p = dalloc(n);
  /* symmetric positive definite-ish input */
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++)
      a[i * n + j] = (double)((i * j) % 7) / 70.0;
    a[i * n + i] = (double)n;
  }
  for (int i = 0; i < n; i++) {
    double x = a[i * n + i];
    for (int j = 0; j <= i - 1; j++)
      x = x - a[i * n + j] * a[i * n + j];
    p[i] = 1.0 / my_sqrt(x);
    for (int j = i + 1; j < n; j++) {
      double y = a[i * n + j];
      for (int kk = 0; kk <= i - 1; kk++)
        y = y - a[j * n + kk] * a[i * n + kk];
      a[j * n + i] = y * p[i];
    }
  }
  int r = checksum(a, (long)n * n) + checksum(p, n);
  free(a); free(p);
  return r;
}
|})

let lu = k "lu" ~flops:"fp-div" ({|
int main() {
|} ^ def_n ^ {|
  double *a = dalloc((long)n * n);
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++)
      a[i * n + j] = (double)((i * j) % 13) / 13.0 + 0.1;
    a[i * n + i] += (double)n;
  }
  for (int kk = 0; kk < n; kk++) {
    for (int j = kk + 1; j < n; j++)
      a[kk * n + j] = a[kk * n + j] / a[kk * n + kk];
    for (int i = kk + 1; i < n; i++)
      for (int j = kk + 1; j < n; j++)
        a[i * n + j] -= a[i * n + kk] * a[kk * n + j];
  }
  int r = checksum(a, (long)n * n);
  free(a);
  return r;
}
|})

let trisolv = k "trisolv" ~flops:"fp-div" ({|
int main() {
|} ^ def_n ^ {|
  double *a = dalloc((long)n * n);
  double *x = dalloc(n);
  double *c = dalloc(n);
  for (int i = 0; i < n; i++) {
    c[i] = (double)(i % 9) / 9.0 + 1.0;
    x[i] = 0.0;
    for (int j = 0; j < n; j++)
      a[i * n + j] = (double)((i + j) % 5) / 5.0 + 0.01;
    a[i * n + i] = (double)n;
  }
  for (int i = 0; i < n; i++) {
    x[i] = c[i];
    for (int j = 0; j < i; j++)
      x[i] -= a[i * n + j] * x[j];
    x[i] = x[i] / a[i * n + i];
  }
  int r = checksum(x, n);
  free(a); free(x); free(c);
  return r;
}
|})

let durbin = k "durbin" ({|
int main() {
|} ^ def_n ^ {|
  double *r = dalloc(n);
  double *y = dalloc(n);
  double *z = dalloc(n);
  for (int i = 0; i < n; i++) { r[i] = 1.0 / (double)(i + 2); }
  y[0] = 0.0 - r[0];
  double beta = 1.0;
  double alpha = 0.0 - r[0];
  for (int kk = 1; kk < n; kk++) {
    beta = (1.0 - alpha * alpha) * beta;
    double sum = 0.0;
    for (int i = 0; i < kk; i++)
      sum += r[kk - i - 1] * y[i];
    alpha = 0.0 - (r[kk] + sum) / beta;
    for (int i = 0; i < kk; i++)
      z[i] = y[i] + alpha * y[kk - i - 1];
    for (int i = 0; i < kk; i++)
      y[i] = z[i];
    y[kk] = alpha;
  }
  int res = checksum(y, n);
  free(r); free(y); free(z);
  return res;
}
|})

let jacobi_1d = k "jacobi-1d" ({|
int main() {
|} ^ def_n ^ def_t ^ {|
  int big = n * 8;
  double *a = dalloc(big);
  double *b = dalloc(big);
  for (int i = 0; i < big; i++) {
    a[i] = ((double)i + 2.0) / (double)big;
    b[i] = ((double)i + 3.0) / (double)big;
  }
  for (int t = 0; t < tsteps; t++) {
    for (int i = 1; i < big - 1; i++)
      b[i] = 0.33333 * (a[i - 1] + a[i] + a[i + 1]);
    for (int i = 1; i < big - 1; i++)
      a[i] = b[i];
  }
  int r = checksum(a, big);
  free(a); free(b);
  return r;
}
|})

let jacobi_2d = k "jacobi-2d" ({|
int main() {
|} ^ def_n ^ def_t ^ {|
  double *a = dalloc((long)n * n);
  double *b = dalloc((long)n * n);
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      a[i * n + j] = ((double)i * (j + 2) + 2.0) / (double)n;
      b[i * n + j] = ((double)i * (j + 3) + 3.0) / (double)n;
    }
  for (int t = 0; t < tsteps; t++) {
    for (int i = 1; i < n - 1; i++)
      for (int j = 1; j < n - 1; j++)
        b[i * n + j] = 0.2 * (a[i * n + j] + a[i * n + j - 1]
                              + a[i * n + j + 1] + a[(i + 1) * n + j]
                              + a[(i - 1) * n + j]);
    for (int i = 1; i < n - 1; i++)
      for (int j = 1; j < n - 1; j++)
        a[i * n + j] = b[i * n + j];
  }
  int r = checksum(a, (long)n * n);
  free(a); free(b);
  return r;
}
|})

let seidel_2d = k "seidel-2d" ({|
int main() {
|} ^ def_n ^ def_t ^ {|
  double *a = dalloc((long)n * n);
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      a[i * n + j] = ((double)i * (j + 2) + 2.0) / (double)n;
  for (int t = 0; t < tsteps; t++)
    for (int i = 1; i < n - 1; i++)
      for (int j = 1; j < n - 1; j++)
        a[i * n + j] = (a[(i - 1) * n + j - 1] + a[(i - 1) * n + j]
                        + a[(i - 1) * n + j + 1] + a[i * n + j - 1]
                        + a[i * n + j] + a[i * n + j + 1]
                        + a[(i + 1) * n + j - 1] + a[(i + 1) * n + j]
                        + a[(i + 1) * n + j + 1]) / 9.0;
  int r = checksum(a, (long)n * n);
  free(a);
  return r;
}
|})

let fdtd_2d = k "fdtd-2d" ({|
int main() {
|} ^ def_n ^ def_t ^ {|
  double *ex = dalloc((long)n * n);
  double *ey = dalloc((long)n * n);
  double *hz = dalloc((long)n * n);
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      ex[i * n + j] = ((double)i * (j + 1)) / (double)n;
      ey[i * n + j] = ((double)i * (j + 2)) / (double)n;
      hz[i * n + j] = ((double)i * (j + 3)) / (double)n;
    }
  for (int t = 0; t < tsteps; t++) {
    for (int j = 0; j < n; j++)
      ey[j] = (double)t;
    for (int i = 1; i < n; i++)
      for (int j = 0; j < n; j++)
        ey[i * n + j] -= 0.5 * (hz[i * n + j] - hz[(i - 1) * n + j]);
    for (int i = 0; i < n; i++)
      for (int j = 1; j < n; j++)
        ex[i * n + j] -= 0.5 * (hz[i * n + j] - hz[i * n + j - 1]);
    for (int i = 0; i < n - 1; i++)
      for (int j = 0; j < n - 1; j++)
        hz[i * n + j] -= 0.7 * (ex[i * n + j + 1] - ex[i * n + j]
                                + ey[(i + 1) * n + j] - ey[i * n + j]);
  }
  int r = checksum(hz, (long)n * n);
  free(ex); free(ey); free(hz);
  return r;
}
|})

let floyd_warshall = k "floyd-warshall" ~flops:"int-add/cmp" ({|
int main() {
|} ^ def_n ^ {|
  long *path = (long *)malloc((long)n * n * 8);
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      path[i * n + j] = (long)((i * j) % 7 + 1) + (i == j ? 0 : 11);
  for (int kk = 0; kk < n; kk++)
    for (int i = 0; i < n; i++)
      for (int j = 0; j < n; j++) {
        long via = path[i * n + kk] + path[kk * n + j];
        if (via < path[i * n + j]) { path[i * n + j] = via; }
      }
  long s = 0;
  for (int i = 0; i < n * n; i++) { s += path[i]; }
  free(path);
  return (int)(s % 100003);
}
|})

let doitgen = k "doitgen" ({|
int main() {
  int nr = 8; int nq = 8; int np = 8;
  double *a = dalloc((long)nr * nq * np);
  double *c4 = dalloc((long)np * np);
  double *sum = dalloc((long)nr * nq * np);
  for (int i = 0; i < nr; i++)
    for (int j = 0; j < nq; j++)
      for (int p = 0; p < np; p++)
        a[(i * nq + j) * np + p] = (double)((i * j + p) % 7) / 7.0;
  for (int i = 0; i < np; i++)
    for (int j = 0; j < np; j++)
      c4[i * np + j] = (double)(i * j % 5) / 5.0;
  for (int r = 0; r < nr; r++)
    for (int q = 0; q < nq; q++) {
      for (int p = 0; p < np; p++) {
        sum[(r * nq + q) * np + p] = 0.0;
        for (int s = 0; s < np; s++)
          sum[(r * nq + q) * np + p] += a[(r * nq + q) * np + s] * c4[s * np + p];
      }
      for (int p = 0; p < np; p++)
        a[(r * nq + q) * np + p] = sum[(r * nq + q) * np + p];
    }
  int res = checksum(a, (long)nr * nq * np);
  free(a); free(c4); free(sum);
  return res;
}
|})

let covariance = k "covariance" ({|
int main() {
|} ^ def_n ^ {|
  int m = n;
  double *data = dalloc((long)n * m);
  double *cov = dalloc((long)m * m);
  double *mean = dalloc(m);
  for (int i = 0; i < n; i++)
    for (int j = 0; j < m; j++)
      data[i * m + j] = (double)(i * j % 17) / 17.0;
  for (int j = 0; j < m; j++) {
    mean[j] = 0.0;
    for (int i = 0; i < n; i++)
      mean[j] += data[i * m + j];
    mean[j] = mean[j] / (double)n;
  }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < m; j++)
      data[i * m + j] -= mean[j];
  for (int i = 0; i < m; i++)
    for (int j = i; j < m; j++) {
      double acc = 0.0;
      for (int kk = 0; kk < n; kk++)
        acc += data[kk * m + i] * data[kk * m + j];
      acc = acc / (double)(n - 1);
      cov[i * m + j] = acc;
      cov[j * m + i] = acc;
    }
  int r = checksum(cov, (long)m * m);
  free(data); free(cov); free(mean);
  return r;
}
|})

let gramschmidt = k "gramschmidt" ~flops:"fp-div/sqrt" ({|
double gs_sqrt(double x) {
  if (x <= 0.0) { return 0.0; }
  double g = x;
  for (int it = 0; it < 30; it++) { g = 0.5 * (g + x / g); }
  return g;
}
int main() {
|} ^ def_n ^ {|
  double *a = dalloc((long)n * n);
  double *r = dalloc((long)n * n);
  double *q = dalloc((long)n * n);
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      a[i * n + j] = (double)((i * 37 + j * 53) % 23) / 23.0
                   + (i == j ? 2.0 : 0.0);
      r[i * n + j] = 0.0;
      q[i * n + j] = 0.0;
    }
  for (int kk = 0; kk < n; kk++) {
    double nrm = 0.0;
    for (int i = 0; i < n; i++)
      nrm += a[i * n + kk] * a[i * n + kk];
    r[kk * n + kk] = gs_sqrt(nrm);
    for (int i = 0; i < n; i++)
      q[i * n + kk] = a[i * n + kk] / r[kk * n + kk];
    for (int j = kk + 1; j < n; j++) {
      r[kk * n + j] = 0.0;
      for (int i = 0; i < n; i++)
        r[kk * n + j] += q[i * n + kk] * a[i * n + j];
      for (int i = 0; i < n; i++)
        a[i * n + j] -= q[i * n + kk] * r[kk * n + j];
    }
  }
  int res = checksum(r, (long)n * n) + checksum(q, (long)n * n);
  free(a); free(r); free(q);
  return res;
}
|})

let adi = k "adi" ~flops:"fp-div" ({|
int main() {
|} ^ def_n ^ def_t ^ {|
  double *x = dalloc((long)n * n);
  double *a = dalloc((long)n * n);
  double *b = dalloc((long)n * n);
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      x[i * n + j] = ((double)i * (j + 1) + 1.0) / (double)n;
      a[i * n + j] = ((double)(i + n) * (j + 2) + 2.0) / (double)n / 10.0;
      b[i * n + j] = 1.0 + ((double)i * (j + 3) + 3.0) / (double)n / 10.0;
    }
  for (int t = 0; t < tsteps; t++) {
    /* column sweep */
    for (int i1 = 0; i1 < n; i1++)
      for (int i2 = 1; i2 < n; i2++) {
        x[i1 * n + i2] = x[i1 * n + i2]
          - x[i1 * n + i2 - 1] * a[i1 * n + i2] / b[i1 * n + i2 - 1];
        b[i1 * n + i2] = b[i1 * n + i2]
          - a[i1 * n + i2] * a[i1 * n + i2] / b[i1 * n + i2 - 1];
      }
    /* back substitution */
    for (int i1 = 0; i1 < n; i1++)
      for (int i2 = 0; i2 < n - 2; i2++)
        x[i1 * n + n - i2 - 2] = (x[i1 * n + n - 2 - i2]
          - x[i1 * n + n - 2 - i2 - 1] * a[i1 * n + n - i2 - 3])
          / b[i1 * n + n - 3 - i2];
    /* row sweep */
    for (int i1 = 1; i1 < n; i1++)
      for (int i2 = 0; i2 < n; i2++) {
        x[i1 * n + i2] = x[i1 * n + i2]
          - x[(i1 - 1) * n + i2] * a[i1 * n + i2] / b[(i1 - 1) * n + i2];
        b[i1 * n + i2] = b[i1 * n + i2]
          - a[i1 * n + i2] * a[i1 * n + i2] / b[(i1 - 1) * n + i2];
      }
    for (int i1 = 0; i1 < n - 2; i1++)
      for (int i2 = 0; i2 < n; i2++)
        x[(n - 2 - i1) * n + i2] = (x[(n - 2 - i1) * n + i2]
          - x[(n - i1 - 3) * n + i2] * a[(n - 3 - i1) * n + i2])
          / b[(n - 2 - i1) * n + i2];
  }
  int r = checksum(x, (long)n * n);
  free(x); free(a); free(b);
  return r;
}
|})

let dynprog = k "dynprog" ~flops:"int/fp-add" ({|
int main() {
  int len = 12;
  double *c = dalloc((long)len * len);
  double *w = dalloc((long)len * len);
  double *sum_c = dalloc((long)len * len * len);
  double out = 0.0;
  for (int i = 0; i < len; i++)
    for (int j = 0; j < len; j++)
      w[i * len + j] = (double)((i + j) % 9) / 9.0;
  for (int iter = 0; iter < 4; iter++) {
    for (int i = 0; i <= len - 1; i++)
      for (int j = 0; j <= len - 1; j++)
        c[i * len + j] = 0.0;
    for (int i = 0; i <= len - 2; i++) {
      for (int j = i + 1; j <= len - 1; j++) {
        sum_c[(i * len + j) * len + i] = 0.0;
        for (int kk = i + 1; kk <= j - 1; kk++)
          sum_c[(i * len + j) * len + kk] =
            sum_c[(i * len + j) * len + kk - 1]
            + c[i * len + kk] + c[kk * len + j];
        if (j - 1 >= i + 1) {
          c[i * len + j] = sum_c[(i * len + j) * len + j - 1] + w[i * len + j];
        } else {
          c[i * len + j] = w[i * len + j];
        }
      }
    }
    out += c[0 * len + len - 1];
  }
  double digest[1];
  digest[0] = out;
  int r = checksum(digest, 1);
  free(c); free(w); free(sum_c);
  return r;
}
|})

(** The benchmark suite, in a stable reporting order. *)
let all : kernel list =
  [
    two_mm; three_mm; adi; atax; bicg; cholesky; covariance; doitgen;
    durbin; dynprog; fdtd_2d; floyd_warshall; gemm; gemver; gesummv;
    gramschmidt; jacobi_1d; jacobi_2d; lu; mvt; seidel_2d; symm; syr2k;
    syrk; trisolv; trmm;
  ]

let find name = List.find_opt (fun x -> String.equal x.k_name name) all
let names = List.map (fun x -> x.k_name) all
