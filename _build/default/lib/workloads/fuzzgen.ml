(** Random-program generation for differential compiler testing.

    A generator builds a small typed program description, renders it to
    MiniC source, and {e independently} evaluates it with a reference
    interpreter written directly over the description. Any divergence
    between the reference value and what the compiled program computes
    under any Table 3 configuration is a toolchain bug.

    The subset is 64-bit integer arithmetic (two's-complement wrap,
    matching the compiler's semantics), fixed-size arrays indexed
    in-bounds via [% N], bounded counted loops, and branches — enough to
    stress expression lowering, register/slot allocation, the optimiser
    and the sanitizers, while staying trivially terminating. *)

let array_size = 16
let max_depth = 4

type expr =
  | Const of int64
  | Var of int           (* scalar variable index *)
  | ArrGet of int * expr (* array index, index expr taken mod N *)
  | Bin of binop * expr * expr

and binop = Add | Sub | Mul | And | Or | Xor | ShrMask | ModSmall

type stmt =
  | Assign of int * expr
  | ArrSet of int * expr * expr  (* arr, index expr, value *)
  | For of int * int * stmt list (* loop var, count, body *)
  | IfPos of expr * stmt list * stmt list
  | SwitchMod of expr * stmt list list
      (* switch on (expr mod ncases): case i runs the i-th body;
         implicit break, no default needed (always in range) *)

type prog = {
  nvars : int;
  narrs : int;
  body : stmt list;
}

(* ---------------------------------------------------------------- *)
(* Generation                                                        *)
(* ---------------------------------------------------------------- *)

type gctx = { rng : Random.State.t; nvars : int; narrs : int }

let rec gen_expr g depth : expr =
  if depth >= max_depth || Random.State.int g.rng 100 < 25 then
    match Random.State.int g.rng 3 with
    | 0 -> Const (Random.State.int64 g.rng 1000L)
    | 1 -> Var (Random.State.int g.rng g.nvars)
    | _ ->
        if g.narrs > 0 then
          ArrGet
            (Random.State.int g.rng g.narrs,
             Const (Int64.of_int (Random.State.int g.rng array_size)))
        else Var (Random.State.int g.rng g.nvars)
  else
    let op =
      match Random.State.int g.rng 8 with
      | 0 -> Add
      | 1 -> Sub
      | 2 -> Mul
      | 3 -> And
      | 4 -> Or
      | 5 -> Xor
      | 6 -> ShrMask
      | _ -> ModSmall
    in
    Bin (op, gen_expr g (depth + 1), gen_expr g (depth + 1))

let rec gen_stmt g depth : stmt =
  match Random.State.int g.rng (if depth >= 2 then 2 else 5) with
  | 0 -> Assign (Random.State.int g.rng g.nvars, gen_expr g 0)
  | 1 when g.narrs > 0 ->
      ArrSet
        (Random.State.int g.rng g.narrs, gen_expr g 1, gen_expr g 0)
  | 1 -> Assign (Random.State.int g.rng g.nvars, gen_expr g 0)
  | 2 ->
      For
        (Random.State.int g.rng g.nvars,
         1 + Random.State.int g.rng 8,
         gen_stmts g (depth + 1) (1 + Random.State.int g.rng 3))
  | 3 ->
      IfPos
        (gen_expr g 1,
         gen_stmts g (depth + 1) (1 + Random.State.int g.rng 2),
         gen_stmts g (depth + 1) (Random.State.int g.rng 2))
  | _ ->
      let ncases = 2 + Random.State.int g.rng 3 in
      SwitchMod
        (gen_expr g 1,
         List.init ncases (fun _ -> gen_stmts g (depth + 1) 1))

and gen_stmts g depth n = List.init n (fun _ -> gen_stmt g depth)

(** Generate a program from a seed. *)
let generate ~seed : prog =
  let rng = Random.State.make [| seed; 0x5eed |] in
  let g =
    { rng; nvars = 2 + Random.State.int rng 4;
      narrs = 1 + Random.State.int rng 2 }
  in
  { nvars = g.nvars; narrs = g.narrs;
    body = gen_stmts g 0 (3 + Random.State.int rng 6) }

(* ---------------------------------------------------------------- *)
(* Rendering to MiniC                                                *)
(* ---------------------------------------------------------------- *)

let rec render_expr = function
  | Const v -> Printf.sprintf "%Ld" v
  | Var i -> Printf.sprintf "v%d" i
  | ArrGet (a, i) ->
      Printf.sprintf "a%d[(int)(((unsigned long)(%s)) %% %d)]" a
        (render_expr i) array_size
  | Bin (op, x, y) -> (
      let xs = render_expr x and ys = render_expr y in
      match op with
      | Add -> Printf.sprintf "(%s + %s)" xs ys
      | Sub -> Printf.sprintf "(%s - %s)" xs ys
      | Mul -> Printf.sprintf "(%s * %s)" xs ys
      | And -> Printf.sprintf "(%s & %s)" xs ys
      | Or -> Printf.sprintf "(%s | %s)" xs ys
      | Xor -> Printf.sprintf "(%s ^ %s)" xs ys
      | ShrMask ->
          (* force a signed lhs: sub-expressions of unsigned type (the
             % results) would otherwise make C shift logically while the
             reference shifts arithmetically *)
          Printf.sprintf "(((long)(%s)) >> ((%s) & 7))" xs ys
      | ModSmall ->
          Printf.sprintf "(((unsigned long)(%s)) %% (((unsigned long)(%s) & 7) + 1))" xs ys)

let rec render_stmt buf indent = function
  | Assign (v, e) ->
      Buffer.add_string buf
        (Printf.sprintf "%sv%d = %s;\n" indent v (render_expr e))
  | ArrSet (a, i, e) ->
      Buffer.add_string buf
        (Printf.sprintf "%sa%d[(int)(((unsigned long)(%s)) %% %d)] = %s;\n"
           indent a (render_expr i) array_size (render_expr e))
  | For (v, n, body) ->
      Buffer.add_string buf
        (Printf.sprintf "%sfor (int it%d = 0; it%d < %d; it%d++) {\n" indent
           v v n v);
      Buffer.add_string buf
        (Printf.sprintf "%s  v%d = v%d + 1;\n" indent v v);
      List.iter (render_stmt buf (indent ^ "  ")) body;
      Buffer.add_string buf (indent ^ "}\n")
  | IfPos (c, t, e) ->
      (* cast to long: an unsigned sub-expression type must not turn the
         signed comparison the reference performs into an unsigned one *)
      Buffer.add_string buf
        (Printf.sprintf "%sif (((long)(%s)) > 0) {\n" indent (render_expr c));
      List.iter (render_stmt buf (indent ^ "  ")) t;
      if e <> [] then begin
        Buffer.add_string buf (indent ^ "} else {\n");
        List.iter (render_stmt buf (indent ^ "  ")) e
      end;
      Buffer.add_string buf (indent ^ "}\n")
  | SwitchMod (e, bodies) ->
      let n = List.length bodies in
      Buffer.add_string buf
        (Printf.sprintf "%sswitch (((unsigned long)(%s)) %% %d) {\n" indent
           (render_expr e) n);
      List.iteri
        (fun i body ->
          Buffer.add_string buf (Printf.sprintf "%s  case %d: {\n" indent i);
          List.iter (render_stmt buf (indent ^ "    ")) body;
          Buffer.add_string buf (indent ^ "  }\n"))
        bodies;
      Buffer.add_string buf (indent ^ "}\n")

(** Render the program as a complete MiniC translation unit whose main
    returns a 16-bit digest of the final state. *)
let render (p : prog) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "int main() {\n";
  for v = 0 to p.nvars - 1 do
    Buffer.add_string buf (Printf.sprintf "  long v%d = %d;\n" v (v + 1))
  done;
  for a = 0 to p.narrs - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  long a%d[%d];\n" a array_size);
    Buffer.add_string buf
      (Printf.sprintf
         "  for (int i = 0; i < %d; i++) { a%d[i] = i * %d; }\n" array_size a
         (a + 3))
  done;
  List.iter (render_stmt buf "  ") p.body;
  Buffer.add_string buf "  long h = 0;\n";
  for v = 0 to p.nvars - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  h = h * 31 + v%d;\n" v)
  done;
  for a = 0 to p.narrs - 1 do
    Buffer.add_string buf
      (Printf.sprintf
         "  for (int i = 0; i < %d; i++) { h = h * 31 + a%d[i]; }\n"
         array_size a)
  done;
  Buffer.add_string buf "  return (int)(((unsigned long)h) % 65521);\n";
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ---------------------------------------------------------------- *)
(* Reference evaluation                                              *)
(* ---------------------------------------------------------------- *)

type state = { vars : int64 array; arrs : int64 array array }

let idx_of v = Int64.to_int (Int64.unsigned_rem v (Int64.of_int array_size))

let rec eval_expr st = function
  | Const v -> v
  | Var i -> st.vars.(i)
  | ArrGet (a, i) -> st.arrs.(a).(idx_of (eval_expr st i))
  | Bin (op, x, y) -> (
      let xv = eval_expr st x and yv = eval_expr st y in
      match op with
      | Add -> Int64.add xv yv
      | Sub -> Int64.sub xv yv
      | Mul -> Int64.mul xv yv
      | And -> Int64.logand xv yv
      | Or -> Int64.logor xv yv
      | Xor -> Int64.logxor xv yv
      | ShrMask ->
          Int64.shift_right xv (Int64.to_int (Int64.logand yv 7L))
      | ModSmall ->
          Int64.unsigned_rem xv
            (Int64.add (Int64.logand yv 7L) 1L))

let rec eval_stmt st = function
  | Assign (v, e) -> st.vars.(v) <- eval_expr st e
  | ArrSet (a, i, e) ->
      let idx = idx_of (eval_expr st i) in
      st.arrs.(a).(idx) <- eval_expr st e
  | For (v, n, body) ->
      for _ = 1 to n do
        st.vars.(v) <- Int64.add st.vars.(v) 1L;
        List.iter (eval_stmt st) body
      done
  | IfPos (c, t, e) ->
      if Int64.compare (eval_expr st c) 0L > 0 then List.iter (eval_stmt st) t
      else List.iter (eval_stmt st) e
  | SwitchMod (e, bodies) ->
      let n = Int64.of_int (List.length bodies) in
      let i = Int64.to_int (Int64.unsigned_rem (eval_expr st e) n) in
      List.iter (eval_stmt st) (List.nth bodies i)

(** The reference result the compiled program must reproduce. *)
let reference (p : prog) : int32 =
  let st =
    {
      vars = Array.init p.nvars (fun v -> Int64.of_int (v + 1));
      arrs =
        Array.init p.narrs (fun a ->
            Array.init array_size (fun i -> Int64.of_int (i * (a + 3))));
    }
  in
  List.iter (eval_stmt st) p.body;
  let h = ref 0L in
  Array.iter (fun v -> h := Int64.add (Int64.mul !h 31L) v) st.vars;
  Array.iter
    (fun arr -> Array.iter (fun v -> h := Int64.add (Int64.mul !h 31L) v) arr)
    st.arrs;
  Int64.to_int32 (Int64.unsigned_rem !h 65521L)
