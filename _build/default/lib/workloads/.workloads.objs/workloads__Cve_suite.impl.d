lib/workloads/cve_suite.ml: Cage Libc List Printf Wasm
