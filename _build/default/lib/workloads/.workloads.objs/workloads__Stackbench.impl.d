lib/workloads/stackbench.ml: List String
