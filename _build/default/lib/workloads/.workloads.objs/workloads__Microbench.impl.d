lib/workloads/microbench.ml: Arch Cage Cpu_model Insn Libc List Mte Printf Timing Wasm
