lib/workloads/polybench.ml: List Printf String
