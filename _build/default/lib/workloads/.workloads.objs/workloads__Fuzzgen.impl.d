lib/workloads/fuzzgen.ml: Array Buffer Int64 List Printf Random
