(** Stack-allocation-heavy workloads for the stack-sanitizer ablation.

    PolyBench keeps its data on the heap, so Algorithm 1 has nothing to
    decide there. These programs exercise the interesting cases: local
    buffers indexed only by constants (safe — never instrumented),
    dynamically indexed buffers (unsafe GEP), buffers whose address
    escapes into callees, and hot small frames where blanket
    instrumentation hurts. *)

type program = { s_name : string; s_source : string }

let programs : program list =
  [
    {
      s_name = "const-index";
      (* all indices statically in bounds: Algorithm 1 instruments 0 *)
      s_source =
        {|
          int rotate(int x) {
            int tmp[4];
            tmp[0] = x; tmp[1] = x + 1; tmp[2] = x + 2; tmp[3] = x + 3;
            return tmp[0] + tmp[3];
          }
          int main() {
            int s = 0;
            for (int i = 0; i < 20000; i++) { s += rotate(i); }
            return s % 65536;
          }
        |};
    };
    {
      s_name = "dyn-index";
      (* dynamic indexing: the buffer must be instrumented *)
      s_source =
        {|
          int histogram(int seed) {
            int bins[16];
            for (int i = 0; i < 16; i++) { bins[i] = 0; }
            int x = seed;
            for (int i = 0; i < 32; i++) {
              x = (x * 1103515245 + 12345) & 0x7fffffff;
              bins[x % 16] += 1;
            }
            int best = 0;
            for (int i = 0; i < 16; i++) {
              if (bins[i] > best) { best = bins[i]; }
            }
            return best;
          }
          int main() {
            int s = 0;
            for (int i = 0; i < 2000; i++) { s += histogram(i); }
            return s % 65536;
          }
        |};
    };
    {
      s_name = "escaping";
      (* the buffer address is passed to a callee: escapes *)
      s_source =
        {|
          void fill(int *dst, int n, int seed) {
            for (int i = 0; i < n; i++) { dst[i] = seed + i; }
          }
          int reduce(int *src, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) { s += src[i]; }
            return s;
          }
          int main() {
            int total = 0;
            for (int rep = 0; rep < 2000; rep++) {
              int buf[8];
              fill(buf, 8, rep);
              total += reduce(buf, 8);
            }
            return total % 65536;
          }
        |};
    };
    {
      s_name = "mixed-frames";
      (* one safe and one unsafe slot per frame: tests the guard-slot
         decision and per-slot selectivity *)
      s_source =
        {|
          int work(int seed) {
            int safe[2];
            int risky[8];
            safe[0] = seed; safe[1] = seed * 2;
            for (int i = 0; i < 8; i++) { risky[i] = 0; }
            int x = seed;
            for (int i = 0; i < 16; i++) {
              x = (x * 75 + 74) % 65537;
              risky[x % 8] += 1;
            }
            return safe[0] + safe[1] + risky[seed % 8];
          }
          int main() {
            int s = 0;
            for (int i = 0; i < 3000; i++) { s += work(i); }
            return s % 65536;
          }
        |};
    };
    {
      s_name = "string-stack";
      (* byte buffers + libc string routines on the stack *)
      s_source =
        {|
          int render(int id) {
            char name[24];
            char buf[40];
            name[0] = (char)(65 + id % 26);
            name[1] = 0;
            strcpy(buf, "item-");
            long n = strlen(buf);
            strcpy(buf + n, name);
            return (int)strlen(buf);
          }
          int main() {
            int s = 0;
            for (int i = 0; i < 3000; i++) { s += render(i); }
            return s % 65536;
          }
        |};
    };
    {
      s_name = "deep-recursion";
      (* many small live frames at once *)
      s_source =
        {|
          int descend(int depth, int seed) {
            int scratch[4];
            scratch[0] = seed;
            scratch[1] = seed ^ depth;
            scratch[2] = 0; scratch[3] = 0;
            if (depth == 0) { return scratch[0] + scratch[1]; }
            scratch[2] = descend(depth - 1, seed + 1);
            return scratch[1] + scratch[2];
          }
          int main() {
            int s = 0;
            for (int i = 0; i < 300; i++) { s += descend(40, i); }
            return s % 65536;
          }
        |};
    };
  ]

let dead_buffer : program =
  {
    s_name = "dead-buffer";
    (* a scratch buffer the optimiser deletes entirely: running the
       sanitizer before optimisation (the §6.1 ordering ablation)
       instruments a slot that should not even exist *)
    s_source =
      {|
        int work(int seed) {
          int scratch[32];
          for (int i = 0; i < 32; i++) { scratch[i] = seed + i; }
          if (0) { return scratch[seed % 32]; }  /* never taken */
          return seed * 3;
        }
        int main() {
          int s = 0;
          for (int i = 0; i < 5000; i++) { s += work(i); }
          return s % 65536;
        }
      |};
  }

let programs = programs @ [ dead_buffer ]
let find name = List.find_opt (fun p -> String.equal p.s_name name) programs
