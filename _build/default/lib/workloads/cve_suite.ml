(** Table 2: re-creations of real memory-safety CVEs.

    Each entry distils the root cause of a published CVE into a MiniC
    program whose bug fires deterministically. The paper's point (§3)
    is that WASM's sandbox does {e not} stop these — they corrupt or
    leak data inside the instance — while Cage's segments do. The suite
    runs every program under baseline wasm64 (expected: silent
    corruption or leak) and under Cage-mem-safety (expected: trap). *)

type entry = {
  cve : string;
  cause : string;            (** Table 2 "Cause" column *)
  wasm_mitigated : string;   (** Table 2 "Mitigated in WASM" column *)
  description : string;
  source : string;
  expect_baseline : [ `Returns of int32 | `Corrupts ];
      (** what the unprotected run does *)
}

let entries : entry list =
  [
    {
      cve = "CVE-2023-4863";
      cause = "Out-of-bounds";
      wasm_mitigated = "No";
      description =
        "libwebp: Huffman table overflow — attacker-controlled loop \
         writes past a heap buffer, corrupting the adjacent allocation.";
      source =
        {|
          int main() {
            char *table = (char *)malloc(32);
            char *secret = (char *)malloc(16);
            secret[0] = 42;
            int attacker_len = 52;   /* crafted header claims more codes */
            for (int i = 0; i < attacker_len; i++) { table[i] = 7; }
            return secret[0];        /* 42 if intact, 7 if corrupted */
          }
        |};
      expect_baseline = `Corrupts;
    };
    {
      cve = "CVE-2014-0160";
      cause = "Out-of-bounds";
      wasm_mitigated = "No";
      description =
        "Heartbleed: attacker-controlled length makes the reply copy \
         read far past the request buffer, leaking adjacent heap data.";
      source =
        {|
          int main() {
            char *request = (char *)malloc(16);
            char *key = (char *)malloc(32);
            for (int i = 0; i < 16; i++) { request[i] = 1; }
            for (int i = 0; i < 32; i++) { key[i] = 77; }
            int claimed_len = 64;    /* the lie in the heartbeat header */
            char *reply = (char *)malloc(64);
            for (int i = 0; i < claimed_len; i++) {
              reply[i] = request[i]; /* reads beyond the request */
            }
            int leaked = 0;
            for (int i = 16; i < claimed_len; i++) {
              if (reply[i] == 77) { leaked = 1; }
            }
            return leaked;           /* 1: secret bytes leaked */
          }
        |};
      expect_baseline = `Corrupts;
    };
    {
      cve = "CVE-2021-3999";
      cause = "Out-of-bounds";
      wasm_mitigated = "Partially";
      description =
        "glibc getcwd: off-by-one buffer underflow — a write at index \
         -1 lands in the allocator metadata just before the chunk.";
      source =
        {|
          int main() {
            char *buf = (char *)malloc(16);
            buf[-1] = 0;             /* the off-by-one underflow */
            return (int)buf[-1];
          }
        |};
      expect_baseline = `Corrupts;
    };
    {
      cve = "CVE-2018-14550";
      cause = "Out-of-bounds";
      wasm_mitigated = "No";
      description =
        "libpng pnm2png: unbounded string copy into a fixed stack \
         buffer — the classic stack smash.";
      source =
        {|
          int main() {
            char token[16];
            char header[64];
            for (int i = 0; i < 64; i++) { header[i] = 99; }
            /* the "file" provides a longer token than the buffer */
            char *input = "this-token-is-way-longer-than-sixteen-bytes";
            strcpy(token, input);
            return header[0];        /* stomped on overflow */
          }
        |};
      expect_baseline = `Corrupts;
    };
    {
      cve = "CVE-2021-22940";
      cause = "Use-after-free";
      wasm_mitigated = "No";
      description =
        "Node.js TLS: a session object is used after its buffer was \
         released and reallocated for attacker data.";
      source =
        {|
          struct Session { long id; long secret; };
          int main() {
            struct Session *s = (struct Session *)malloc(16);
            s->id = 1; s->secret = 1234;
            free(s);
            /* allocator reuses the chunk for attacker-controlled data */
            long *attacker = (long *)malloc(16);
            attacker[0] = 666; attacker[1] = 666;
            return (int)s->secret;   /* dangling read sees 666 */
          }
        |};
      expect_baseline = `Corrupts;
    };
    {
      cve = "CVE-2021-33574";
      cause = "Use-after-free";
      wasm_mitigated = "No";
      description =
        "glibc mq_notify: the notification thread dereferences a \
         message-queue attribute structure freed by the caller.";
      source =
        {|
          struct Attr { long flags; long (*handler)(); };
          long safe_handler() { return 1; }
          int main() {
            struct Attr *a = (struct Attr *)malloc(16);
            a->flags = 0;
            a->handler = safe_handler;
            free(a);
            long f = a->flags;       /* use after free */
            return (int)f;
          }
        |};
      expect_baseline = `Corrupts;
    };
    {
      cve = "CVE-2020-1752";
      cause = "Use-after-free";
      wasm_mitigated = "No";
      description =
        "glibc glob: a directory-entry string is referenced after the \
         backing buffer was freed during error handling.";
      source =
        {|
          int main() {
            char *name = (char *)malloc(24);
            strcpy(name, "entry");
            char *alias = name;      /* second reference */
            free(name);
            return (int)alias[0];    /* dangling read */
          }
        |};
      expect_baseline = `Corrupts;
    };
    {
      cve = "CVE-2019-11932";
      cause = "Double-free";
      wasm_mitigated = "Partially";
      description =
        "WhatsApp GIF parser: rewinding the decoder frees the same \
         frame buffer twice, corrupting the allocator free list.";
      source =
        {|
          int main() {
            char *frame = (char *)malloc(128);
            free(frame);
            free(frame);             /* the double free */
            return 0;
          }
        |};
      expect_baseline = `Corrupts;
    };
  ]

type verdict = {
  v_entry : entry;
  v_baseline : string;  (** observed behaviour without Cage *)
  v_cage : string;      (** observed behaviour with Cage *)
  v_caught : bool;      (** Cage trapped the bug *)
}

(** Execute one entry under both configurations. *)
let evaluate (e : entry) : verdict =
  let run cfg =
    match Libc.Run.run ~cfg e.source with
    | r -> `Ret (Libc.Run.ret_i32 r)
    | exception Wasm.Instance.Trap msg -> `Trap msg
  in
  let baseline = run Cage.Config.baseline_wasm64 in
  let cage = run Cage.Config.mem_safety in
  let show = function
    | `Ret v -> Printf.sprintf "ran to completion (returned %ld)" v
    | `Trap m -> Printf.sprintf "trapped: %s" m
  in
  {
    v_entry = e;
    v_baseline = show baseline;
    v_cage = show cage;
    v_caught = (match cage with `Trap _ -> true | `Ret _ -> false);
  }

let evaluate_all () = List.map evaluate entries
