(** Microbenchmarks backing the paper's architectural analysis:
    Table 1 (instruction throughput/latency), Fig. 4 (MTE mode overhead
    on memset), Table 4 / Fig. 16 (tagged-memory initialisation
    variants), Fig. 15 (static vs dynamic vs authenticated calls) and
    the §7.2 startup experiment. *)

open Arch

let mib = 1024.0 *. 1024.0
let memset_bytes = 128.0 *. mib

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

type insn_row = {
  ir_insn : string;
  ir_results : (string * float * float option) list;
      (** core name, throughput, latency (None for tag stores) *)
}

(** Measure every Table 1 instruction on every core through the pipeline
    simulator, exactly as the paper does (independent stream for
    throughput, dependent chain for latency). *)
let table1 () : insn_row list =
  List.map
    (fun kind ->
      {
        ir_insn = Insn.kind_to_string kind;
        ir_results =
          List.map
            (fun cpu ->
              let tp = Timing.measured_throughput cpu kind in
              let lat =
                if Insn.has_latency kind then
                  Some (Timing.measured_latency cpu kind)
                else None
              in
              (cpu.Cpu_model.name, tp, lat))
            Cpu_model.tensor_g3;
      })
    Insn.table1_kinds

(* ------------------------------------------------------------------ *)
(* Fig. 4: memset under MTE modes                                      *)
(* ------------------------------------------------------------------ *)

type memset_row = {
  ms_core : string;
  ms_off : float;    (** seconds, MTE disabled *)
  ms_sync : float;
  ms_async : float;
}

let fig4 () : memset_row list =
  List.map
    (fun cpu ->
      let t mode = Timing.memset_seconds cpu ~mode ~bytes:memset_bytes in
      {
        ms_core = cpu.Cpu_model.name;
        ms_off = t Mte.Disabled;
        ms_sync = t Mte.Sync;
        ms_async = t Mte.Async;
      })
    Cpu_model.tensor_g3

(* ------------------------------------------------------------------ *)
(* Table 4 / Fig. 16: initialising tagged memory                       *)
(* ------------------------------------------------------------------ *)

type tag_variant = {
  tv_name : string;
  tv_granule : int;     (** bytes per instruction *)
  tv_sets_zero : bool;
  tv_memset : bool;     (** followed by a separate memset pass *)
  tv_insn : Insn.kind option;  (** tag-store instruction, None = memset only *)
}

(** The Table 4 variants, in the paper's order. *)
let table4_variants =
  [
    { tv_name = "memset"; tv_granule = 16; tv_sets_zero = false;
      tv_memset = true; tv_insn = None };
    { tv_name = "stg"; tv_granule = 16; tv_sets_zero = false;
      tv_memset = false; tv_insn = Some Insn.Stg };
    { tv_name = "st2g"; tv_granule = 32; tv_sets_zero = false;
      tv_memset = false; tv_insn = Some Insn.St2g };
    { tv_name = "stgp"; tv_granule = 16; tv_sets_zero = true;
      tv_memset = false; tv_insn = Some Insn.Stgp };
    { tv_name = "stzg"; tv_granule = 16; tv_sets_zero = true;
      tv_memset = false; tv_insn = Some Insn.Stzg };
    { tv_name = "st2zg"; tv_granule = 32; tv_sets_zero = true;
      tv_memset = false; tv_insn = Some Insn.St2zg };
    { tv_name = "stg+memset"; tv_granule = 16; tv_sets_zero = true;
      tv_memset = true; tv_insn = Some Insn.Stg };
    { tv_name = "st2g+memset"; tv_granule = 32; tv_sets_zero = true;
      tv_memset = true; tv_insn = Some Insn.St2g };
  ]

(** Time one variant over [bytes] of cold memory with synchronous MTE,
    as in Fig. 16. Tag-setting stores are exempt from tag checks (the
    paper's explanation for stzg beating memset); a separate memset pass
    pays the checked-store penalty. *)
let variant_seconds cpu (v : tag_variant) ~bytes =
  let tag_pass =
    match v.tv_insn with
    | None -> 0.0
    | Some kind ->
        let insns = bytes /. float_of_int v.tv_granule in
        let data =
          float_of_int (Insn.data_bytes_written kind) *. insns
        in
        Timing.stream_seconds cpu ~mode:Mte.Sync ~unchecked_bytes:data
          ~tag_granules:(bytes /. 16.0)
          ~insn_mix:[ (kind, insns) ]
          ()
  in
  let memset_pass =
    if v.tv_memset then Timing.memset_seconds cpu ~mode:Mte.Sync ~bytes
    else 0.0
  in
  tag_pass +. memset_pass

type fig16_row = { f16_core : string; f16_times : (string * float) list }

let fig16 () : fig16_row list =
  List.map
    (fun cpu ->
      {
        f16_core = cpu.Cpu_model.name;
        f16_times =
          List.map
            (fun v -> (v.tv_name, variant_seconds cpu v ~bytes:memset_bytes))
            table4_variants;
      })
    Cpu_model.tensor_g3

(* ------------------------------------------------------------------ *)
(* Fig. 15: static vs dynamic vs authenticated calls                   *)
(* ------------------------------------------------------------------ *)

(* The paper's modified 2mm: the innermost multiply-accumulate is moved
   into a function invoked statically or through a vtable-style
   pointer, so the call/dispatch cost is visible against the tiny
   callee (the paper measures 15-22 % for dynamic dispatch). *)
let call_bench ~dynamic =
  let n = 16 in
  Printf.sprintf
    {|
double *dalloc(long n) { return (double *)malloc(n * 8); }

double *g_a; double *g_b; double *g_c;
int g_n = %d;

double mac(double acc, double x, double y) { return acc + x * y; }

int main() {
  int n = g_n;
  g_a = dalloc((long)n * n);
  g_b = dalloc((long)n * n);
  g_c = dalloc((long)n * n);
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      g_a[i * n + j] = (double)(i * j %% 7) / 7.0;
      g_b[i * n + j] = (double)((i + j) %% 5) / 5.0;
      g_c[i * n + j] = 0.0;
    }
%s
  for (int rep = 0; rep < 2; rep++)
    for (int i = 0; i < n; i++)
      for (int j = 0; j < n; j++) {
        double acc = 0.0;
        for (int kk = 0; kk < n; kk++)
          acc = %s;
        g_c[i * n + j] += acc;
      }
  double s = 0.0;
  for (int i = 0; i < n * n; i++) { s += g_c[i]; }
  return (int)s;
}
|}
    n
    (if dynamic then
       "  double (*step)(double, double, double) = mac;"
     else "")
    (if dynamic then "step(acc, g_a[i * g_n + kk], g_b[kk * g_n + j])"
     else "mac(acc, g_a[i * g_n + kk], g_b[kk * g_n + j])")

type fig15_row = {
  f15_core : string;
  f15_static : float;
  f15_dynamic : float;
  f15_dynamic_auth : float;
}

let fig15 () : fig15_row list =
  let measure ~dynamic ~cfg =
    let meter = Wasm.Meter.create () in
    let src = call_bench ~dynamic in
    let r = Libc.Run.run ~cfg ~meter src in
    ignore r.Libc.Run.values;
    meter
  in
  let m_static = measure ~dynamic:false ~cfg:Cage.Config.baseline_wasm64 in
  let m_dynamic = measure ~dynamic:true ~cfg:Cage.Config.baseline_wasm64 in
  let m_auth = measure ~dynamic:true ~cfg:Cage.Config.ptr_auth in
  List.map
    (fun cpu ->
      {
        f15_core = cpu.Cpu_model.name;
        f15_static =
          Cage.Lowering.seconds cpu Cage.Config.baseline_wasm64 m_static;
        f15_dynamic =
          Cage.Lowering.seconds cpu Cage.Config.baseline_wasm64 m_dynamic;
        f15_dynamic_auth =
          Cage.Lowering.seconds cpu Cage.Config.ptr_auth m_auth;
      })
    Cpu_model.tensor_g3

(* ------------------------------------------------------------------ *)
(* §7.2 startup                                                        *)
(* ------------------------------------------------------------------ *)

type startup_row = {
  su_core : string;
  su_baseline : float;  (** instantiate 128 MiB + call empty export *)
  su_cage : float;      (** same with MTE sandboxing (memory tagging) *)
}

let startup () : startup_row list =
  List.map
    (fun cpu ->
      {
        su_core = cpu.Cpu_model.name;
        su_baseline =
          Cage.Lowering.startup_seconds cpu Cage.Config.baseline_wasm64
            ~mem_bytes:memset_bytes;
        su_cage =
          Cage.Lowering.startup_seconds cpu Cage.Config.full
            ~mem_bytes:memset_bytes;
      })
    Cpu_model.tensor_g3
