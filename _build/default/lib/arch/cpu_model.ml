(** Core models for the Tensor G3 (Google Pixel 8), the paper's
    evaluation platform: one Cortex-X3, four Cortex-A715 and four
    Cortex-A510.

    The MTE/PAC per-instruction throughput and latency figures are the
    microarchitectural ground truth measured by the paper itself
    (Table 1); generic-instruction figures come from public Arm
    optimisation guides. The memory-system constants (stream bandwidth,
    MTE check penalties) are calibrated so the raw-hardware experiments
    (paper Fig. 4) reproduce, and are then {e reused unchanged} by every
    higher-level experiment. *)

type perf = {
  tp : float;   (** sustained throughput, instructions/cycle *)
  lat : float;  (** result latency, cycles *)
}

type t = {
  name : string;
  freq_ghz : float;
  inorder : bool;
  issue_width : float;   (** max instructions issued per cycle *)
  perf : Insn.kind -> perf;
  stream_bw : float;
      (** sustained streaming-store bandwidth, bytes/cycle (DRAM-bound,
          cold cache) *)
  mte_sync_store_penalty : float;
      (** fractional slowdown of checked stores under synchronous MTE
          (tag fetch serialised with the access) *)
  mte_async_store_penalty : float;
      (** fractional slowdown under asynchronous MTE (tag fetch
          off the critical path, bandwidth cost only) *)
  bounds_check_cost : float;
      (** average extra cycles per memory access for a software bounds
          check (cmp+branch); near-free on out-of-order cores that
          speculate through it, expensive in order *)
  mte_check_cost : float;
      (** average extra cycles per access for an MTE tag check on
          cache-resident data (Fig. 14 workloads), far below the
          bandwidth-bound penalty of Fig. 4 *)
  base_cpi : float;
      (** average cycles per native instruction on compiled wasm code,
          capturing the core's exploitable ILP *)
  indirect_call_cost : float;
      (** extra cycles per indirect call beyond the issued instructions:
          dispatch serialisation through the loaded, signature-checked
          target (Fig. 15's 15-22 % dynamic-dispatch cost) *)
}

let p tp lat = { tp; lat }

(* Table 1, Cortex-X3 column. *)
let x3_perf : Insn.kind -> perf = function
  | Irg -> p 1.34 1.99
  | Addg -> p 2.01 1.99
  | Subg -> p 2.01 1.99
  | Subp -> p 3.49 0.99
  | Subps -> p 2.88 0.99
  | Stg -> p 1.00 1.0
  | St2g -> p 1.00 1.0
  | Stzg -> p 1.00 1.0
  | St2zg -> p 0.34 1.0
  | Stgp -> p 1.00 1.0
  | Ldg -> p 2.92 4.0
  | Pacdza -> p 1.01 4.97
  | Pacda -> p 1.01 4.97
  | Autdza -> p 1.01 4.97
  | Autda -> p 1.01 4.97
  | Xpacd -> p 1.01 1.99
  | Alu -> p 6.0 1.0
  | Mul -> p 2.0 3.0
  | IDiv -> p 0.25 9.0
  | FAlu -> p 4.0 2.0
  | FMul -> p 4.0 4.0
  | FDiv -> p 0.25 10.0
  | Load -> p 3.0 4.0
  | Store -> p 2.0 1.0
  | Branch -> p 2.0 1.0
  | BranchIndirect -> p 1.0 2.0
  | Cmp -> p 6.0 1.0
  | Csel -> p 4.0 1.0
  | Nop -> p 8.0 0.1

(* Table 1, Cortex-A715 column. *)
let a715_perf : Insn.kind -> perf = function
  | Irg -> p 1.00 2.00
  | Addg -> p 3.81 1.00
  | Subg -> p 3.81 1.00
  | Subp -> p 3.81 1.00
  | Subps -> p 3.80 1.00
  | Stg -> p 1.81 1.0
  | St2g -> p 1.84 1.0
  | Stzg -> p 1.84 1.0
  | St2zg -> p 1.79 1.0
  | Stgp -> p 1.69 1.0
  | Ldg -> p 1.91 4.0
  | Pacdza -> p 1.51 5.00
  | Pacda -> p 1.42 5.00
  | Autdza -> p 1.51 5.00
  | Autda -> p 1.43 5.00
  | Xpacd -> p 1.56 2.00
  | Alu -> p 4.0 1.0
  | Mul -> p 2.0 3.0
  | IDiv -> p 0.2 10.0
  | FAlu -> p 2.0 2.0
  | FMul -> p 2.0 4.0
  | FDiv -> p 0.2 12.0
  | Load -> p 2.0 4.0
  | Store -> p 1.0 1.0
  | Branch -> p 1.0 1.0
  | BranchIndirect -> p 1.0 2.0
  | Cmp -> p 4.0 1.0
  | Csel -> p 2.0 1.0
  | Nop -> p 5.0 0.1

(* Table 1, Cortex-A510 column. *)
let a510_perf : Insn.kind -> perf = function
  | Irg -> p 0.50 3.00
  | Addg -> p 2.22 2.00
  | Subg -> p 2.22 2.00
  | Subp -> p 2.50 2.00
  | Subps -> p 2.50 2.00
  | Stg -> p 1.00 1.0
  | St2g -> p 0.46 1.0
  | Stzg -> p 0.98 1.0
  | St2zg -> p 0.45 1.0
  | Stgp -> p 0.98 1.0
  | Ldg -> p 0.93 4.0
  | Pacdza -> p 0.20 4.99
  | Pacda -> p 0.20 5.00
  | Autdza -> p 0.20 7.99
  | Autda -> p 0.20 7.99
  | Xpacd -> p 0.20 4.99
  | Alu -> p 2.0 1.0
  | Mul -> p 1.0 3.0
  | IDiv -> p 0.1 12.0
  | FAlu -> p 1.0 3.0
  | FMul -> p 1.0 4.0
  | FDiv -> p 0.1 14.0
  | Load -> p 1.0 3.0
  | Store -> p 1.0 1.0
  | Branch -> p 1.0 1.0
  | BranchIndirect -> p 0.5 3.0
  | Cmp -> p 2.0 1.0
  | Csel -> p 1.0 1.0
  | Nop -> p 3.0 0.1

let cortex_x3 = {
  name = "Cortex-X3";
  freq_ghz = 2.91;
  inorder = false;
  issue_width = 8.0;
  perf = x3_perf;
  stream_bw = 12.0;
  (* Fig. 4: sync memset 19.1 % slower, async 2.6 % slower. *)
  mte_sync_store_penalty = 0.191;
  mte_async_store_penalty = 0.026;
  (* §3: 6-8 % wasm64 overhead on out-of-order cores: the cmp+branch
     speculates away to a fraction of a cycle per checked access. *)
  bounds_check_cost = 0.33;
  mte_check_cost = 0.13;
  base_cpi = 0.36;
  indirect_call_cost = 2.4;
}

let cortex_a715 = {
  name = "Cortex-A715";
  freq_ghz = 2.37;
  inorder = false;
  issue_width = 5.0;
  perf = a715_perf;
  stream_bw = 10.0;
  (* Fig. 4: sync 14.4 %, async 3.3 %. *)
  mte_sync_store_penalty = 0.144;
  mte_async_store_penalty = 0.033;
  bounds_check_cost = 0.50;
  mte_check_cost = 0.13;
  base_cpi = 0.48;
  indirect_call_cost = 4.7;
}

let cortex_a510 = {
  name = "Cortex-A510";
  freq_ghz = 1.70;
  inorder = true;
  (* nominally 2-wide, but tag ops dual-issue with their address ALU
     halves, sustaining up to ~2.5/cycle (Table 1) *)
  issue_width = 2.6;
  perf = a510_perf;
  stream_bw = 8.0;
  (* Fig. 4: sync 29.9 %, async 11.3 %. *)
  mte_sync_store_penalty = 0.299;
  mte_async_store_penalty = 0.113;
  (* §3: 52 % wasm64 overhead on the in-order core — the cmp+branch
     serialises with every access. *)
  bounds_check_cost = 6.23;
  mte_check_cost = 0.22;
  base_cpi = 0.95;
  indirect_call_cost = 13.3;
}

(** The Tensor G3's three core types, in the paper's reporting order. *)
let tensor_g3 = [ cortex_x3; cortex_a715; cortex_a510 ]

let by_name name =
  List.find_opt (fun c -> String.equal c.name name) tensor_g3

let pp ppf c = Format.fprintf ppf "%s@%.2fGHz" c.name c.freq_ghz
