(** Pointer Authentication (PAC).

    Models Arm PAC (paper §2.3): a keyed MAC over a pointer and a
    64-bit modifier is truncated into the pointer's unused upper bits
    ({!Ptr.pac_field}). Authentication recomputes the MAC; on success the
    signature is stripped, on failure the behaviour depends on
    [FEAT_FPAC]: trap immediately, or produce a poisoned pointer that
    faults on dereference.

    The real hardware uses QARMA; any preimage-resistant keyed function
    with the same truncation preserves every property the paper relies
    on (unforgeability up to the signature width, per-key isolation), so
    we use a SipHash-style ARX construction. *)

type key
(** A 128-bit signing key (e.g. APDAKey). Inaccessible to guest code. *)

val key_of_int64s : int64 -> int64 -> key
val random_key : rng:(unit -> int64) -> key
val key_equal : key -> key -> bool

val mac : key -> modifier:int64 -> int64 -> int64
(** The full 64-bit MAC of a value under [key] and [modifier]; exposed
    for testing and for the signature-collision analysis. *)

type config = {
  layout : Ptr.pac_layout;
  fpac : bool;  (** [FEAT_FPAC]: trap at [aut*] on failure (true on the
                    Tensor G3 used in the paper). *)
}

val default_config : config
(** MTE enabled (10 signature bits) and [FEAT_FPAC] on — the paper's
    evaluation platform. *)

val sign : config -> key -> modifier:int64 -> Ptr.t -> Ptr.t
(** [pacda]-style signing: compute the truncated MAC of the pointer's
    canonical bits under [key]/[modifier] and install it in the PAC
    field. Signing an already-signed (non-canonical) pointer signs its
    stripped value, as the hardware effectively does for userspace
    pointers. *)

type auth_result =
  | Valid of Ptr.t          (** Signature correct; PAC field stripped. *)
  | Invalid_trap            (** FEAT_FPAC: immediate fault. *)
  | Invalid_poisoned of Ptr.t
      (** No FEAT_FPAC: canonical-breaking bit flipped so any
          dereference faults. *)

val auth : config -> key -> modifier:int64 -> Ptr.t -> auth_result
(** [autda]-style authentication. *)

val strip : config -> Ptr.t -> Ptr.t
(** [xpacd]: remove the signature without authenticating. *)

val is_poisoned : config -> Ptr.t -> bool
(** Whether a pointer carries the poison marker produced by a failed
    non-FPAC authentication. *)
