(** MTE allocation tags.

    Arm's Memory Tagging Extension associates a 4-bit {e allocation tag}
    with every 16-byte granule of memory, and a {e logical tag} with every
    pointer (stored in address bits 56-59). A memory access is permitted
    only when the two match. This module implements the tag domain: the 16
    tag values, tag arithmetic as performed by the [addg]/[subg]
    instructions, and the tag-exclusion mechanism ([GCR_EL1.Exclude],
    surfaced to userspace via [prctl(PR_SET_TAGGED_ADDR_CTRL)]) that
    restricts which tags [irg] may generate. *)

type t = private int
(** A 4-bit tag in the range [0, 15]. *)

val zero : t
(** The zero tag: memory tagged [zero] matches untagged pointers. Cage
    reserves it for the runtime, guard slots and untagged segments. *)

val of_int : int -> t
(** [of_int n] is the tag with value [n land 0xf]. *)

val of_int_exn : int -> t
(** [of_int_exn n] is the tag [n]. @raise Invalid_argument unless
    [0 <= n <= 15]. *)

val to_int : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val is_zero : t -> bool

val add : t -> int -> t
(** [add t n] is the [addg]-style tag increment: [(t + n) mod 16],
    ignoring any exclusion mask (matching the hardware, which excludes
    tags only in [irg]). *)

val all : t list
(** All sixteen tags, in increasing order. *)

val pp : Format.formatter -> t -> unit

(** {1 Exclusion masks}

    An exclusion mask is a 16-bit set of tags that [irg] must not
    generate. Excluding all 16 tags makes [irg] return {!zero}
    (architected behaviour). *)

module Exclude : sig
  type tag := t

  type t
  (** A set of excluded tags. *)

  val none : t
  (** Nothing excluded: [irg] may generate any of the 16 tags. *)

  val all : t
  (** Everything excluded: [irg] generates only {!zero}. *)

  val of_mask : int -> t
  (** [of_mask m] excludes tag [i] iff bit [i] of [m] is set. Only the low
      16 bits are considered. *)

  val to_mask : t -> int

  val of_list : tag list -> t
  val add : t -> tag -> t
  val mem : t -> tag -> bool

  val allowed : t -> tag list
  (** Tags not excluded, in increasing order. *)

  val count_allowed : t -> int
  val pp : Format.formatter -> t -> unit
end

val next_allowed : Exclude.t -> t -> t
(** [next_allowed ex t] is the smallest increment of [t] (mod 16) that is
    not excluded by [ex]; [t] itself is a candidate only after wrapping
    all the way around. Used by Cage's stack tagging, where successive
    stack slots get successive tags. If every tag is excluded the result
    is {!zero}. *)

val irg : Exclude.t -> rng:(int -> int) -> t
(** [irg ex ~rng] models the [irg] instruction: a uniformly random tag
    drawn from the allowed set of [ex] using [rng] ([rng n] must return a
    uniform value in [\[0, n)]). Returns {!zero} when all tags are
    excluded. *)
