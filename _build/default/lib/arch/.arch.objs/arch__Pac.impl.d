lib/arch/pac.ml: Int64 Ptr
