lib/arch/pac.mli: Ptr
