lib/arch/tag.ml: Format Fun Int List
