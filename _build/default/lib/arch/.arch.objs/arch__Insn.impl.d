lib/arch/insn.ml: Format List
