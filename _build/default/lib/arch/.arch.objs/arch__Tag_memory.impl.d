lib/arch/tag_memory.ml: Bytes Char Int64 Tag
