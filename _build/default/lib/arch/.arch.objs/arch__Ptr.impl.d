lib/arch/ptr.ml: Format Int64 List Tag
