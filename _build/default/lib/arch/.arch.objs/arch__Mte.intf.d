lib/arch/mte.mli: Format Ptr Tag Tag_memory
