lib/arch/tag_memory.mli: Tag
