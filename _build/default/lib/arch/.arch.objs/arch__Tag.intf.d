lib/arch/tag.mli: Format
