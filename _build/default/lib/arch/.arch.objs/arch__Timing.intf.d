lib/arch/timing.mli: Cpu_model Insn Mte
