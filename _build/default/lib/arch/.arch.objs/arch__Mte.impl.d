lib/arch/mte.ml: Format Int64 Ptr Tag Tag_memory
