lib/arch/timing.ml: Array Cpu_model Float Fun Hashtbl Insn List Mte Option
