lib/arch/ptr.mli: Format Tag
