lib/arch/cpu_model.ml: Format Insn List String
