type t = int64

let addr_bits = 48
let addr_mask = 0xffff_ffff_ffffL
let tag_shift = 56
let tag_mask = Int64.shift_left 0xfL tag_shift
let kernel_bit = Int64.shift_left 1L 55

let address p = Int64.logand p addr_mask

let offset p n =
  let addr = Int64.logand (Int64.add (address p) n) addr_mask in
  Int64.logor addr (Int64.logand p (Int64.lognot addr_mask))

let tag p =
  Tag.of_int (Int64.to_int (Int64.logand (Int64.shift_right_logical p tag_shift) 0xfL))

let with_tag p t =
  Int64.logor
    (Int64.logand p (Int64.lognot tag_mask))
    (Int64.shift_left (Int64.of_int (Tag.to_int t)) tag_shift)

let untagged p = with_tag p Tag.zero
let is_kernel p = Int64.logand p kernel_bit <> 0L

type pac_layout = { mte_enabled : bool }

(* Signature bit positions, low to high. Bits 49-54 are always part of the
   signature; the top field is 60-63 with MTE and 56-63 without. *)
let pac_positions layout =
  let low = [ 49; 50; 51; 52; 53; 54 ] in
  let high =
    if layout.mte_enabled then [ 60; 61; 62; 63 ]
    else [ 56; 57; 58; 59; 60; 61; 62; 63 ]
  in
  low @ high

let pac_bits layout = List.length (pac_positions layout)

let pac_field layout p =
  List.fold_left
    (fun (acc, i) pos ->
      let bit = Int64.to_int (Int64.logand (Int64.shift_right_logical p pos) 1L) in
      (acc lor (bit lsl i), i + 1))
    (0, 0) (pac_positions layout)
  |> fst

let with_pac_field layout p v =
  List.fold_left
    (fun (p, i) pos ->
      let bit = (v lsr i) land 1 in
      let cleared = Int64.logand p (Int64.lognot (Int64.shift_left 1L pos)) in
      (Int64.logor cleared (Int64.shift_left (Int64.of_int bit) pos), i + 1))
    (p, 0) (pac_positions layout)
  |> fst

let clear_pac_field layout p = with_pac_field layout p 0

let mask_external_only p = Int64.logand p (Int64.lognot tag_mask)

let mask_combined p =
  Int64.logand p (Int64.lognot (Int64.shift_left 1L tag_shift))

let pp ppf p =
  Format.fprintf ppf "0x%012Lx[%a]" (address p) Tag.pp (tag p)
