(** AArch64 pointer layout (paper Fig. 3).

    On aarch64 Linux only bits 0-47 of a pointer address memory; bit 55
    selects the kernel/user half, and the remaining upper bits are free
    for metadata:

    - with MTE enabled, bits 56-59 carry the MTE logical tag;
    - with PAC enabled, the signature occupies bits 63-60 and 54-49 when
      MTE is on, or bits 63-56 and 54-49 when it is off.

    This module packs and unpacks those fields and implements the
    pointer-masking used by Cage's sandboxing (paper Fig. 13) to stop a
    guest from forging tag bits before effective-address computation. *)

type t = int64
(** A raw 64-bit pointer value. *)

val addr_bits : int
(** Number of address bits (48). *)

val address : t -> int64
(** [address p] is [p] with all metadata bits (48-63) cleared. *)

val offset : t -> int64 -> t
(** [offset p n] adds [n] to the address bits, preserving metadata.
    Wraps within the 48-bit address space, as [addg]-style arithmetic
    does. *)

val tag : t -> Tag.t
(** The MTE logical tag held in bits 56-59. *)

val with_tag : t -> Tag.t -> t
(** [with_tag p t] replaces bits 56-59 of [p] with [t]. *)

val untagged : t -> t
(** [p] with the MTE tag field cleared (logical tag 0). *)

val is_kernel : t -> bool
(** Whether bit 55 is set. *)

(** {1 PAC signature fields} *)

type pac_layout = {
  mte_enabled : bool;  (** MTE reserves bits 56-59 when enabled. *)
}

val pac_bits : pac_layout -> int
(** Width of the signature field: 10 bits with MTE, 14 without
    (bits 63-60/63-56 plus 54-49). *)

val pac_field : pac_layout -> t -> int
(** Extract the PAC signature bits as an integer. *)

val with_pac_field : pac_layout -> t -> int -> t
(** Insert a signature value into the PAC bits; extra high bits of the
    value are discarded. *)

val clear_pac_field : pac_layout -> t -> t
(** Zero the PAC bits, i.e. the effect of a successful [aut*] or of
    [xpacd]. *)

(** {1 Sandbox masking (paper Fig. 13)} *)

val mask_external_only : t -> t
(** Clear bits 56-59 of an untrusted WASM index: used when only
    MTE-based sandboxing is active, so the guest cannot smuggle any tag
    bits into the effective address (Fig. 13a). *)

val mask_combined : t -> t
(** Clear bit 56 only: used when internal memory safety (bits 57-59) and
    sandboxing (bit 56) are combined, leaving the guest its three
    internal-safety tag bits (Fig. 13b). *)

val pp : Format.formatter -> t -> unit
(** Hex rendering with the tag field highlighted. *)
