type t = int

let zero = 0
let of_int n = n land 0xf

let of_int_exn n =
  if n < 0 || n > 15 then invalid_arg "Tag.of_int_exn: tag out of range"
  else n

let to_int t = t
let equal = Int.equal
let compare = Int.compare
let is_zero t = t = 0
let add t n = (t + n) land 0xf
let all = List.init 16 Fun.id
let pp ppf t = Format.fprintf ppf "#%d" t

module Exclude = struct
  type t = int

  let none = 0
  let all = 0xffff
  let of_mask m = m land 0xffff
  let to_mask t = t
  let of_list tags = List.fold_left (fun m tag -> m lor (1 lsl tag)) 0 tags
  let add t tag = t lor (1 lsl tag)
  let mem t tag = t land (1 lsl tag) <> 0

  let allowed t =
    List.filter (fun tag -> not (mem t tag)) (List.init 16 Fun.id)

  let count_allowed t = List.length (allowed t)

  let pp ppf t =
    Format.fprintf ppf "{excluded:%a}"
      Format.(pp_print_list ~pp_sep:(fun ppf () -> pp_print_string ppf ",")
                pp_print_int)
      (List.filter (fun tag -> mem t tag) (List.init 16 Fun.id))
end

let next_allowed ex t =
  let rec go i =
    if i > 16 then zero
    else
      let candidate = add t i in
      if Exclude.mem ex candidate then go (i + 1) else candidate
  in
  go 1

let irg ex ~rng =
  match Exclude.allowed ex with
  | [] -> zero
  | allowed -> List.nth allowed (rng (List.length allowed))
