type stats = { cycles : float; instructions : int }

let reg_count = 64

let perf (cpu : Cpu_model.t) kind = cpu.Cpu_model.perf kind

(* Sequential issue model for in-order cores: each instruction issues no
   earlier than the previous one, when its operands are ready and its
   execution resource is free. *)
let run_inorder (cpu : Cpu_model.t) insns =
  let regs = Array.make reg_count 0.0 in
  let ports = Hashtbl.create 16 in
  let issue_clock = ref 0.0 in
  let n = ref 0 in
  List.iter
    (fun { Insn.kind; dst; srcs } ->
      incr n;
      let { Cpu_model.tp; lat } = perf cpu kind in
      let deps =
        List.fold_left (fun acc r -> Float.max acc regs.(r mod reg_count)) 0.0 srcs
      in
      let port = Option.value (Hashtbl.find_opt ports kind) ~default:0.0 in
      let t = Float.max (Float.max deps port) !issue_clock in
      Hashtbl.replace ports kind (t +. (1.0 /. tp));
      issue_clock := t +. (1.0 /. cpu.issue_width);
      Option.iter (fun d -> regs.(d mod reg_count) <- t +. lat) dst)
    insns;
  let finish =
    Array.fold_left Float.max !issue_clock regs
    |> Fun.flip Float.max
         (Hashtbl.fold (fun _ v acc -> Float.max v acc) ports 0.0)
  in
  { cycles = finish; instructions = !n }

(* Bound-based model for out-of-order cores: the stream takes the max of
   the issue-width bound, each execution resource's throughput bound and
   the dependency critical path. *)
let run_ooo (cpu : Cpu_model.t) insns =
  let regs = Array.make reg_count 0.0 in
  let kind_counts = Hashtbl.create 16 in
  let n = ref 0 in
  let critical = ref 0.0 in
  List.iter
    (fun { Insn.kind; dst; srcs } ->
      incr n;
      let { Cpu_model.lat; _ } = perf cpu kind in
      Hashtbl.replace kind_counts kind
        (1 + Option.value (Hashtbl.find_opt kind_counts kind) ~default:0);
      let deps =
        List.fold_left (fun acc r -> Float.max acc regs.(r mod reg_count)) 0.0 srcs
      in
      let finish = deps +. lat in
      critical := Float.max !critical finish;
      Option.iter (fun d -> regs.(d mod reg_count) <- finish) dst)
    insns;
  let width_bound = float_of_int !n /. cpu.issue_width in
  let tp_bound =
    Hashtbl.fold
      (fun kind count acc ->
        Float.max acc (float_of_int count /. (perf cpu kind).tp))
      kind_counts 0.0
  in
  { cycles = Float.max (Float.max width_bound tp_bound) !critical;
    instructions = !n }

let run cpu insns =
  if cpu.Cpu_model.inorder then run_inorder cpu insns else run_ooo cpu insns

let sample_size = 4096

let measured_throughput cpu kind =
  let { cycles; instructions } = run cpu (Insn.independent kind sample_size) in
  float_of_int instructions /. cycles

let measured_latency cpu kind =
  let { cycles; instructions } = run cpu (Insn.dependent kind sample_size) in
  cycles /. float_of_int instructions

let seconds (cpu : Cpu_model.t) cycles = cycles /. (cpu.freq_ghz *. 1e9)

let check_penalty (cpu : Cpu_model.t) = function
  | Mte.Disabled -> 0.0
  | Mte.Sync | Mte.Asymmetric -> cpu.mte_sync_store_penalty
  | Mte.Async -> cpu.mte_async_store_penalty

let stream_seconds cpu ~mode ?(checked_bytes = 0.0) ?(unchecked_bytes = 0.0)
    ?(tag_granules = 0.0) ~insn_mix () =
  let total_insns = List.fold_left (fun acc (_, c) -> acc +. c) 0.0 insn_mix in
  let pipeline =
    List.fold_left
      (fun acc (kind, count) -> Float.max acc (count /. (perf cpu kind).tp))
      (total_insns /. cpu.Cpu_model.issue_width)
      insn_mix
  in
  let traffic =
    (checked_bytes *. (1.0 +. check_penalty cpu mode))
    +. unchecked_bytes
    +. (tag_granules *. 0.5)
  in
  let bandwidth = traffic /. cpu.stream_bw in
  seconds cpu (Float.max pipeline bandwidth)

let memset_seconds cpu ~mode ~bytes =
  (* A memset loop issues one 16-byte store plus loop overhead per
     iteration; the stores go through MTE checks. *)
  let stores = bytes /. 16.0 in
  stream_seconds cpu ~mode ~checked_bytes:bytes
    ~insn_mix:[ (Insn.Store, stores); (Insn.Alu, stores /. 4.0);
                (Insn.Branch, stores /. 4.0) ]
    ()
