(** The native-instruction vocabulary used for cost accounting.

    The Cage lowering layer ({!Cage.Lowering} in the paper's wasmtime
    backend) turns wasm operations into AArch64 instruction mixes; the
    timing model ({!Timing}) prices those mixes using the per-core
    throughput/latency parameters in {!Cpu_model}. Only the instruction
    {e kinds} matter for pricing, plus register dependencies for
    latency-bound streams. *)

(** Instruction kinds. The MTE and PAC kinds correspond one-to-one to the
    rows of the paper's Table 1. *)
type kind =
  (* MTE *)
  | Irg      (** insert random tag *)
  | Addg     (** add to address and tag *)
  | Subg     (** subtract from address and tag *)
  | Subp     (** subtract pointers *)
  | Subps    (** subtract pointers, setting flags *)
  | Stg      (** store allocation tag (16-byte granule) *)
  | St2g     (** store allocation tag, two granules *)
  | Stzg     (** store tag and zero data *)
  | St2zg    (** store tag and zero data, two granules *)
  | Stgp     (** store tag and pair of registers *)
  | Ldg      (** load allocation tag *)
  (* PAC *)
  | Pacdza   (** sign data pointer, zero modifier *)
  | Pacda    (** sign data pointer, register modifier *)
  | Autdza   (** authenticate data pointer, zero modifier *)
  | Autda    (** authenticate data pointer, register modifier *)
  | Xpacd    (** strip signature *)
  (* Generic AArch64 *)
  | Alu      (** simple integer op: add/sub/logical/mov *)
  | Mul      (** integer multiply *)
  | IDiv     (** integer divide *)
  | FAlu     (** FP add/sub *)
  | FMul     (** FP multiply / fused multiply-add *)
  | FDiv     (** FP divide *)
  | Load     (** load from memory *)
  | Store    (** store to memory *)
  | Branch   (** conditional/unconditional branch *)
  | BranchIndirect (** indirect branch (blr) *)
  | Cmp      (** compare *)
  | Csel     (** conditional select *)
  | Nop

let kind_to_string = function
  | Irg -> "irg" | Addg -> "addg" | Subg -> "subg" | Subp -> "subp"
  | Subps -> "subps" | Stg -> "stg" | St2g -> "st2g" | Stzg -> "stzg"
  | St2zg -> "st2zg" | Stgp -> "stgp" | Ldg -> "ldg"
  | Pacdza -> "pacdza" | Pacda -> "pacda" | Autdza -> "autdza"
  | Autda -> "autda" | Xpacd -> "xpacd"
  | Alu -> "alu" | Mul -> "mul" | IDiv -> "idiv" | FAlu -> "falu"
  | FMul -> "fmul"
  | FDiv -> "fdiv" | Load -> "load" | Store -> "store"
  | Branch -> "branch" | BranchIndirect -> "br-ind" | Cmp -> "cmp"
  | Csel -> "csel" | Nop -> "nop"

let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)

(** All Table 1 instruction kinds, in the paper's row order. *)
let table1_kinds =
  [ Irg; Addg; Subg; Subp; Subps; Stg; St2g; Stzg; St2zg; Stgp; Ldg;
    Pacdza; Pacda; Autdza; Autda; Xpacd ]

(** Whether the kind has a measurable result latency in Table 1 (tag
    stores are throughput-only in the paper). *)
let has_latency = function
  | Stg | St2g | Stzg | St2zg | Stgp | Ldg | Store -> false
  | _ -> true

(** An instruction for the timing simulator: a kind plus register
    dependencies. Registers are small integers; [dst = None] for
    instructions producing no register result. *)
type t = { kind : kind; dst : int option; srcs : int list }

let make ?dst ?(srcs = []) kind = { kind; dst; srcs }

(** [independent kind n] is a stream of [n] instructions with no
    data dependencies — the paper's throughput microbenchmark. *)
let independent kind n =
  List.init n (fun i -> { kind; dst = Some (i mod 24); srcs = [] })

(** [dependent kind n] chains each instruction's source to the previous
    destination — the paper's latency microbenchmark. *)
let dependent kind n =
  List.init n (fun i ->
      { kind; dst = Some ((i + 1) mod 2); srcs = [ i mod 2 ] })

(** Bytes of data written to memory by one instruction of this kind
    (for bandwidth modelling); tag-only stores write to the tag PA
    space instead, see {!tag_bytes_written}. *)
let data_bytes_written = function
  | Store -> 16 (* modelled as a 128-bit stp, as memset loops use *)
  | Stzg -> 16
  | St2zg -> 32
  | Stgp -> 16
  | _ -> 0

(** Granules whose allocation tag this instruction writes; each granule
    costs 4 bits (1/2 byte) of tag PA-space traffic. *)
let tag_granules_written = function
  | Stg | Stzg | Stgp -> 1
  | St2g | St2zg -> 2
  | _ -> 0
