(** Cycle-accounting simulator.

    Prices instruction streams on a {!Cpu_model.t}. Two regimes:

    - {e short streams} ({!run}): a scoreboard model tracking register
      dependencies, per-kind issue throughput and overall issue width —
      enough to recover each instruction's throughput (independent
      stream) and latency (dependent chain), reproducing the paper's
      Table 1 microbenchmarks.
    - {e long memory streams} ({!stream_seconds}): a steady-state model
      combining pipeline bounds with a streaming-bandwidth bound and the
      MTE tag-check penalty, reproducing the memset experiments of
      Fig. 4 and Fig. 16. *)

type stats = {
  cycles : float;
  instructions : int;
}

val run : Cpu_model.t -> Insn.t list -> stats
(** Simulate a short instruction stream. In-order cores issue strictly
    in program order; out-of-order cores are limited only by issue
    width, per-kind throughput and the dependency critical path. *)

val measured_throughput : Cpu_model.t -> Insn.kind -> float
(** Instructions/cycle sustained by an independent stream of the kind —
    the paper's Table 1 "Tp" methodology. *)

val measured_latency : Cpu_model.t -> Insn.kind -> float
(** Cycles/instruction of a dependent chain — Table 1 "Lat". *)

val seconds : Cpu_model.t -> float -> float
(** Convert cycles to seconds at the core's clock. *)

(** {1 Long memory streams} *)

val stream_seconds :
  Cpu_model.t ->
  mode:Mte.mode ->
  ?checked_bytes:float ->
  ?unchecked_bytes:float ->
  ?tag_granules:float ->
  insn_mix:(Insn.kind * float) list ->
  unit ->
  float
(** Steady-state time of a long straight-line memory loop.
    [checked_bytes] flow through MTE tag checks (and pay the mode's
    penalty), [unchecked_bytes] are written by tag-setting stores that
    skip the check, and [tag_granules] granules of allocation-tag
    traffic hit the tag PA space (4 bits each). [insn_mix] lists
    instruction kinds and counts for the pipeline bound. *)

val memset_seconds : Cpu_model.t -> mode:Mte.mode -> bytes:float -> float
(** Time to [memset] a cold region under the given MTE mode — the
    paper's Fig. 4 experiment. *)
