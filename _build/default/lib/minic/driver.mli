(** The compiler driver — the MiniC analogue of the paper's clang +
    wasi-sdk pipeline (§6.1).

    Pipeline: parse → elaborate (typecheck + mem2reg-style register
    promotion) → optimise → Cage sanitizer passes → code generation →
    validate. The sanitizers run {e after} the optimiser, as the paper
    requires, so stack allocations removed by promotion or dead-store
    elimination are never instrumented. *)

type options = {
  ptr64 : bool;          (** memory64 target *)
  memsafety : bool;      (** stack sanitizer + segment emission *)
  pauth : bool;          (** pointer-authentication pass (Fig. 9) *)
  optimize : bool;       (** run the middle-end pipeline *)
  instrument_all : bool; (** ablation: skip Algorithm 1's filtering *)
  mem_pages : int64;     (** linear memory size, 64 KiB pages *)
  stack_bytes : int;     (** shadow-stack reservation *)
}

val default_options : options
(** wasm64, no hardening, optimised — the baseline wasm64 target. *)

val options_of_config : Cage.Config.t -> options
(** Compile options matching a Table 3 runtime configuration. *)

type compiled = {
  co_module : Wasm.Ast.module_;   (** validated output module *)
  co_ir : Ir.program;             (** post-pass IR (for inspection) *)
  co_sanitizer : Stack_sanitizer.stats;
  co_options : options;
}

exception Compile_error of string
(** Any front-end failure, with a line-located message. *)

val compile : ?opts:options -> ?prelude:string -> string -> compiled
(** Compile MiniC source text; [prelude] (the libc) is prepended.
    The result module has passed {!Wasm.Validate.validate}.
    @raise Compile_error on lex/parse/type/codegen errors. *)

val load :
  ?opts:options ->
  ?prelude:string ->
  ?config:Wasm.Instance.config ->
  ?imports:(string * string * Wasm.Instance.host_func) list ->
  string ->
  Wasm.Instance.t
(** Convenience: compile and instantiate in one step. *)
