(** The compiler driver — the MiniC analogue of the paper's clang +
    wasi-sdk pipeline (§6.1).

    Pipeline: parse → elaborate → optimise → Cage sanitizer passes →
    code generation. The sanitizers run {e after} the optimiser, as the
    paper requires, so stack allocations removed by promotion are never
    instrumented. *)

type options = {
  ptr64 : bool;          (** memory64 target *)
  memsafety : bool;      (** stack sanitizer + segment emission *)
  pauth : bool;          (** pointer-authentication pass *)
  optimize : bool;       (** run the middle-end pipeline *)
  instrument_all : bool; (** ablation: skip Algorithm 1's filtering *)
  mem_pages : int64;
  stack_bytes : int;
}

let default_options = {
  ptr64 = true;
  memsafety = false;
  pauth = false;
  optimize = true;
  instrument_all = false;
  mem_pages = 80L;
  stack_bytes = 65536;
}

(** Options matching a Cage runtime configuration (Table 3). *)
let options_of_config (cfg : Cage.Config.t) = {
  default_options with
  ptr64 = cfg.ptr64;
  memsafety = cfg.internal_safety;
  pauth = cfg.ptr_auth && cfg.ptr64;
}

type compiled = {
  co_module : Wasm.Ast.module_;
  co_ir : Ir.program;
  co_sanitizer : Stack_sanitizer.stats;
  co_options : options;
}

exception Compile_error of string

(** Compile MiniC source text. [prelude] is prepended (the libc).
    Raises {!Compile_error} with a located message on any front-end
    failure. *)
let compile ?(opts = default_options) ?(prelude = "") source : compiled =
  let full = prelude ^ "\n" ^ source in
  let cst =
    try Parser.parse full with
    | Lexer.Lex_error (msg, line) ->
        raise (Compile_error (Printf.sprintf "lex error (line %d): %s" line msg))
    | Parser.Parse_error (msg, line) ->
        raise
          (Compile_error (Printf.sprintf "parse error (line %d): %s" line msg))
  in
  let ir =
    try Elab.program ~ptr64:opts.ptr64 cst
    with Elab.Type_error (msg, line) ->
      raise (Compile_error (Printf.sprintf "type error (line %d): %s" line msg))
  in
  if opts.optimize then Opt.run ir;
  let stats =
    if opts.memsafety then
      Stack_sanitizer.run ~instrument_all:opts.instrument_all ir
    else Stack_sanitizer.empty_stats
  in
  let m =
    try
      Codegen.compile
        ~opts:
          {
            Codegen.memsafety = opts.memsafety;
            pauth = opts.pauth;
            mem_pages = opts.mem_pages;
            stack_bytes = opts.stack_bytes;
          }
        ir
    with Codegen.Codegen_error msg ->
      raise (Compile_error ("codegen: " ^ msg))
  in
  (match Wasm.Validate.validate ~cage:true m with
  | Ok () -> ()
  | Error e ->
      raise (Compile_error ("internal error: generated invalid wasm: " ^ e)));
  { co_module = m; co_ir = ir; co_sanitizer = stats; co_options = opts }

(** Convenience: compile and instantiate under a runtime config. *)
let load ?opts ?prelude ?(config = Wasm.Instance.default_config)
    ?(imports = []) source : Wasm.Instance.t =
  let c = compile ?opts ?prelude source in
  Wasm.Exec.instantiate ~config ~imports c.co_module
