(** Lexical tokens of MiniC, the C subset our toolchain compiles.

    MiniC stands in for the paper's clang/LLVM frontend: enough C to
    express the PolyBench kernels, the hardened allocator, and the
    vulnerable programs of the motivation section (Listing 1 / Table 2). *)

type t =
  (* literals and names *)
  | Int_lit of int64
  | Float_lit of float
  | String_lit of string
  | Char_lit of char
  | Ident of string
  (* keywords *)
  | KW_int | KW_long | KW_char | KW_float | KW_double | KW_void
  | KW_unsigned | KW_struct | KW_if | KW_else | KW_while | KW_for
  | KW_do | KW_return | KW_break | KW_continue | KW_sizeof | KW_static
  | KW_const | KW_extern | KW_switch | KW_case | KW_default
  (* punctuation *)
  | LParen | RParen | LBrace | RBrace | LBracket | RBracket
  | Semi | Comma | Dot | Arrow | Question | Colon
  (* operators *)
  | Plus | Minus | Star | Slash | Percent
  | Amp | Pipe | Caret | Tilde | Bang
  | AmpAmp | PipePipe
  | Shl | Shr
  | Lt | Gt | Le | Ge | EqEq | NotEq
  | Assign
  | PlusEq | MinusEq | StarEq | SlashEq | PercentEq
  | AmpEq | PipeEq | CaretEq | ShlEq | ShrEq
  | PlusPlus | MinusMinus
  | Eof

let keyword_of_string = function
  | "int" -> Some KW_int
  | "long" -> Some KW_long
  | "char" -> Some KW_char
  | "float" -> Some KW_float
  | "double" -> Some KW_double
  | "void" -> Some KW_void
  | "unsigned" -> Some KW_unsigned
  | "struct" -> Some KW_struct
  | "if" -> Some KW_if
  | "else" -> Some KW_else
  | "while" -> Some KW_while
  | "for" -> Some KW_for
  | "do" -> Some KW_do
  | "return" -> Some KW_return
  | "break" -> Some KW_break
  | "continue" -> Some KW_continue
  | "sizeof" -> Some KW_sizeof
  | "static" -> Some KW_static
  | "const" -> Some KW_const
  | "extern" -> Some KW_extern
  | "switch" -> Some KW_switch
  | "case" -> Some KW_case
  | "default" -> Some KW_default
  | _ -> None

let to_string = function
  | Int_lit v -> Int64.to_string v
  | Float_lit v -> string_of_float v
  | String_lit s -> Printf.sprintf "%S" s
  | Char_lit c -> Printf.sprintf "%C" c
  | Ident s -> s
  | KW_int -> "int" | KW_long -> "long" | KW_char -> "char"
  | KW_float -> "float" | KW_double -> "double" | KW_void -> "void"
  | KW_unsigned -> "unsigned" | KW_struct -> "struct" | KW_if -> "if"
  | KW_else -> "else" | KW_while -> "while" | KW_for -> "for"
  | KW_do -> "do" | KW_return -> "return" | KW_break -> "break"
  | KW_continue -> "continue" | KW_sizeof -> "sizeof"
  | KW_static -> "static" | KW_const -> "const" | KW_extern -> "extern"
  | KW_switch -> "switch" | KW_case -> "case" | KW_default -> "default"
  | LParen -> "(" | RParen -> ")" | LBrace -> "{" | RBrace -> "}"
  | LBracket -> "[" | RBracket -> "]" | Semi -> ";" | Comma -> ","
  | Dot -> "." | Arrow -> "->" | Question -> "?" | Colon -> ":"
  | Plus -> "+" | Minus -> "-" | Star -> "*" | Slash -> "/"
  | Percent -> "%" | Amp -> "&" | Pipe -> "|" | Caret -> "^"
  | Tilde -> "~" | Bang -> "!" | AmpAmp -> "&&" | PipePipe -> "||"
  | Shl -> "<<" | Shr -> ">>" | Lt -> "<" | Gt -> ">" | Le -> "<="
  | Ge -> ">=" | EqEq -> "==" | NotEq -> "!=" | Assign -> "="
  | PlusEq -> "+=" | MinusEq -> "-=" | StarEq -> "*=" | SlashEq -> "/="
  | PercentEq -> "%=" | AmpEq -> "&=" | PipeEq -> "|=" | CaretEq -> "^="
  | ShlEq -> "<<=" | ShrEq -> ">>=" | PlusPlus -> "++" | MinusMinus -> "--"
  | Eof -> "<eof>"
