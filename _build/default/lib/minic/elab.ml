(** Elaboration: type checking and lowering of the C syntax tree to the
    typed IR.

    Scalar locals whose address is never taken become virtual registers
    (the effect LLVM's mem2reg has before the Cage sanitizers run,
    §6.1); everything else — arrays, structs, address-taken scalars —
    becomes a stack {e slot}, the unit Algorithm 1 instruments.

    Elaboration is parameterised on the pointer width so the same
    source builds as wasm32 and wasm64 (memory64), mirroring the
    paper's wasi-sdk configurations. *)

exception Type_error of string * int

let err line fmt =
  Format.kasprintf (fun s -> raise (Type_error (s, line))) fmt

(* --------------------------------------------------------------- *)
(* Layout                                                           *)
(* --------------------------------------------------------------- *)

type struct_layout = {
  sl_fields : (string * Cst.ty * int) list;  (** name, type, offset *)
  sl_size : int;
  sl_align : int;
}

type env = {
  ptr64 : bool;
  structs : (string, struct_layout) Hashtbl.t;
  funcs : (string, Cst.ty * Cst.ty list) Hashtbl.t;  (** ret, params *)
  defined : (string, unit) Hashtbl.t;  (** names with bodies *)
  globals : (string, int64 * Cst.ty) Hashtbl.t;
  mutable data : (int64 * string) list;
  mutable data_end : int64;
  mutable strings : (string * int64) list;  (** interned literals *)
  mutable table : string list;  (** address-taken functions *)
}

let ptr_bytes env = if env.ptr64 then 8 else 4
let ptr_ir env : Ir.ty = if env.ptr64 then Ir.I64 else Ir.I32

let rec sizeof env (t : Cst.ty) : int =
  match t with
  | TVoid -> err 0 "sizeof(void)"
  | TChar -> 1
  | TInt | TUInt -> 4
  | TLong | TULong -> 8
  | TFloat -> 4
  | TDouble -> 8
  | TPtr _ -> ptr_bytes env
  | TArray (el, n) -> n * sizeof env el
  | TStruct s -> (layout_of env s 0).sl_size
  | TFunc _ -> err 0 "sizeof(function)"

and alignof env (t : Cst.ty) : int =
  match t with
  | TArray (el, _) -> alignof env el
  | TStruct s -> (layout_of env s 0).sl_align
  | TVoid | TFunc _ -> 1
  | t -> sizeof env t

and layout_of env name line =
  match Hashtbl.find_opt env.structs name with
  | Some l -> l
  | None -> err line "unknown struct %s" name

let align_up n a = (n + a - 1) / a * a

let compute_layout env (sd : Cst.struct_def) : struct_layout =
  let fields, size, align =
    List.fold_left
      (fun (fs, off, al) (ty, name) ->
        let a = alignof env ty in
        let off = align_up off a in
        ((name, ty, off) :: fs, off + sizeof env ty, max al a))
      ([], 0, 1) sd.sd_fields
  in
  { sl_fields = List.rev fields; sl_size = align_up size align;
    sl_align = align }

(* --------------------------------------------------------------- *)
(* C-type utilities                                                 *)
(* --------------------------------------------------------------- *)

let ir_of_cty env : Cst.ty -> Ir.ty = function
  | TChar | TInt | TUInt -> Ir.I32
  | TLong | TULong -> Ir.I64
  | TFloat -> Ir.F32
  | TDouble -> Ir.F64
  | TPtr _ | TArray _ -> ptr_ir env
  | TVoid -> Ir.I32 (* void values never materialise *)
  | TStruct _ -> ptr_ir env (* structs are manipulated by address *)
  | TFunc _ -> ptr_ir env

let mem_of_cty env line : Cst.ty -> Ir.mem_ty = function
  | TChar -> Ir.M8
  | TInt | TUInt -> Ir.M32
  | TLong | TULong -> Ir.M64
  | TFloat -> Ir.MF32
  | TDouble -> Ir.MF64
  | TPtr _ | TFunc _ -> if env.ptr64 then Ir.M64 else Ir.M32
  | TArray _ | TStruct _ | TVoid ->
      err line "cannot load/store aggregate directly"

let mem_of_ptr env : Ir.mem_ty = if env.ptr64 then Ir.M64 else Ir.M32

let is_integer = function
  | Cst.TChar | TInt | TUInt | TLong | TULong -> true
  | _ -> false

let is_float = function Cst.TFloat | TDouble -> true | _ -> false
let is_arith t = is_integer t || is_float t
let is_ptr = function Cst.TPtr _ | TArray _ -> true | _ -> false

let is_unsigned = function
  | Cst.TChar | TUInt | TULong -> true
  | Cst.TPtr _ | TArray _ -> true
  | _ -> false

let elem_ty line = function
  | Cst.TPtr t | Cst.TArray (t, _) -> t
  | t -> err line "cannot index non-pointer type %s" (Cst.ty_to_string t)

(* Usual arithmetic conversions: the common type of two operands. *)
let common_ty line a b =
  let rank = function
    | Cst.TDouble -> 6
    | TFloat -> 5
    | TULong -> 4
    | TLong -> 3
    | TUInt -> 2
    | TInt -> 1
    | TChar -> 0
    | t -> err line "non-arithmetic operand %s" (Cst.ty_to_string t)
  in
  let promote = function Cst.TChar -> Cst.TInt | t -> t in
  let a = promote a and b = promote b in
  if rank a >= rank b then a else b

(* --------------------------------------------------------------- *)
(* Conversions                                                      *)
(* --------------------------------------------------------------- *)

(* Convert an IR value of C type [src] to C type [dst]. *)
let convert env line (e : Ir.exp) (src : Cst.ty) (dst : Cst.ty) : Ir.exp =
  let open Ir in
  if src = dst then e
  else
    let s = ir_of_cty env src and d = ir_of_cty env dst in
    match (s, d) with
    | a, b when a = b ->
        (* same machine type: chars narrow on store; mask when narrowing
           to char so the value is canonical *)
        if dst = Cst.TChar && src <> Cst.TChar then
          Bin (Ibin Wasm.Ast.And, I32, e, Const (Wasm.Values.I32 0xffl))
        else e
    | I32, I64 ->
        if is_unsigned src then Cvt (Wasm.Ast.I64ExtendI32U, e)
        else Cvt (Wasm.Ast.I64ExtendI32S, e)
    | I64, I32 ->
        let w = Cvt (Wasm.Ast.I32WrapI64, e) in
        if dst = Cst.TChar then
          Bin (Ibin Wasm.Ast.And, I32, w, Const (Wasm.Values.I32 0xffl))
        else w
    | I32, F32 ->
        Cvt ((if is_unsigned src then Wasm.Ast.F32ConvertI32U
              else Wasm.Ast.F32ConvertI32S), e)
    | I32, F64 ->
        Cvt ((if is_unsigned src then Wasm.Ast.F64ConvertI32U
              else Wasm.Ast.F64ConvertI32S), e)
    | I64, F32 ->
        Cvt ((if is_unsigned src then Wasm.Ast.F32ConvertI64U
              else Wasm.Ast.F32ConvertI64S), e)
    | I64, F64 ->
        Cvt ((if is_unsigned src then Wasm.Ast.F64ConvertI64U
              else Wasm.Ast.F64ConvertI64S), e)
    | F32, I32 ->
        Cvt ((if is_unsigned dst then Wasm.Ast.I32TruncF32U
              else Wasm.Ast.I32TruncF32S), e)
    | F64, I32 ->
        Cvt ((if is_unsigned dst then Wasm.Ast.I32TruncF64U
              else Wasm.Ast.I32TruncF64S), e)
    | F32, I64 ->
        Cvt ((if is_unsigned dst then Wasm.Ast.I64TruncF32U
              else Wasm.Ast.I64TruncF32S), e)
    | F64, I64 ->
        Cvt ((if is_unsigned dst then Wasm.Ast.I64TruncF64U
              else Wasm.Ast.I64TruncF64S), e)
    | F32, F64 -> Cvt (Wasm.Ast.F64PromoteF32, e)
    | F64, F32 -> Cvt (Wasm.Ast.F32DemoteF64, e)
    | _ -> err line "cannot convert %s to %s" (Cst.ty_to_string src)
             (Cst.ty_to_string dst)

(* --------------------------------------------------------------- *)
(* Function contexts                                                *)
(* --------------------------------------------------------------- *)

type location =
  | Loc_temp of Ir.temp
  | Loc_slot of Ir.slot

type fctx = {
  env : env;
  fname : string;
  ret_ty : Cst.ty;
  mutable scopes : (string, location * Cst.ty) Hashtbl.t list;
  mutable ntemps : int;
  mutable slots : Ir.slot list;
  mutable nslots : int;
}

let fresh_temp fc =
  let t = fc.ntemps in
  fc.ntemps <- fc.ntemps + 1;
  t

let fresh_slot fc name size align =
  let s =
    { Ir.slot_id = fc.nslots; slot_name = name; slot_size = size;
      slot_align = align; escapes = false; unsafe_gep = false;
      instrument = false }
  in
  fc.nslots <- fc.nslots + 1;
  fc.slots <- fc.slots @ [ s ];
  s

let push_scope fc = fc.scopes <- Hashtbl.create 8 :: fc.scopes
let pop_scope fc = fc.scopes <- List.tl fc.scopes

let bind fc name loc ty =
  match fc.scopes with
  | tbl :: _ -> Hashtbl.replace tbl name (loc, ty)
  | [] -> assert false

let lookup_var fc name =
  List.find_map (fun tbl -> Hashtbl.find_opt tbl name) fc.scopes

(* Whether a variable of this C type can live in a register. *)
let registerable = function
  | Cst.TArray _ | Cst.TStruct _ -> false
  | Cst.TVoid -> false
  | _ -> true

(* Pre-scan a function body for address-taken variable names. *)
let addr_taken_names (body : Cst.stmt list) : (string, unit) Hashtbl.t =
  let taken = Hashtbl.create 8 in
  let rec scan_lv (e : Cst.expr) =
    (* the variable at the base of an lvalue path *)
    match e.e with
    | Cst.Var n -> Hashtbl.replace taken n ()
    | Cst.Index (a, i) -> scan_lv a; scan_e i
    | Cst.Member (a, _) -> scan_lv a
    | Cst.Deref a -> scan_e a
    | Cst.Arrow (a, _) -> scan_e a
    | _ -> scan_e e
  and scan_e (e : Cst.expr) =
    match e.e with
    | Cst.AddrOf lv -> scan_lv lv
    | Cst.IntLit _ | FloatLit _ | StrLit _ | Var _ -> ()
    | Cst.Bin (_, a, b) | Cst.Assign (a, b) | Cst.Index (a, b) ->
        scan_e a; scan_e b
    | Cst.Un (_, a) | Cst.Deref a | Cst.Cast (_, a) | Cst.SizeofE a
    | Cst.Member (a, _) | Cst.Arrow (a, _)
    | Cst.PreIncr a | Cst.PreDecr a | Cst.PostIncr a | Cst.PostDecr a ->
        scan_e a
    | Cst.Cond (a, b, c) -> scan_e a; scan_e b; scan_e c
    | Cst.Call (f, args) -> scan_e f; List.iter scan_e args
    | Cst.SizeofT _ -> ()
  and scan_s (s : Cst.stmt) =
    match s.s with
    | Cst.SExpr e -> scan_e e
    | Cst.SDecl (_, _, init) -> Option.iter scan_init init
    | Cst.SIf (c, a, b) -> scan_e c; List.iter scan_s a; List.iter scan_s b
    | Cst.SWhile (c, b) -> scan_e c; List.iter scan_s b
    | Cst.SDoWhile (b, c) -> List.iter scan_s b; scan_e c
    | Cst.SFor (i, c, st, b) ->
        Option.iter scan_s i;
        Option.iter scan_e c;
        Option.iter scan_e st;
        List.iter scan_s b
    | Cst.SSwitch (scrut, cases, default) ->
        scan_e scrut;
        List.iter (fun (_, b) -> List.iter scan_s b) cases;
        List.iter scan_s default
    | Cst.SReturn e -> Option.iter scan_e e
    | Cst.SBreak | SContinue -> ()
    | Cst.SBlock b -> List.iter scan_s b
  and scan_init = function
    | Cst.IExpr e -> scan_e e
    | Cst.IList l -> List.iter (fun (_, i) -> scan_init i) l
  in
  List.iter scan_s body;
  taken

(* --------------------------------------------------------------- *)
(* String interning                                                 *)
(* --------------------------------------------------------------- *)

let align_up_64 n a = Int64.mul (Int64.div (Int64.add n (Int64.sub a 1L)) a) a

let intern_string env s =
  match List.assoc_opt s env.strings with
  | Some addr -> addr
  | None ->
      let addr = env.data_end in
      let bytes = s ^ "\000" in
      env.data <- (addr, bytes) :: env.data;
      env.data_end <-
        align_up_64 (Int64.add addr (Int64.of_int (String.length bytes))) 8L;
      env.strings <- (s, addr) :: env.strings;
      addr

(* --------------------------------------------------------------- *)
(* Expression elaboration                                           *)
(* --------------------------------------------------------------- *)

(* An elaborated rvalue: prefix statements, a pure expression, its
   C type. Arrays and structs evaluate to their address. *)
type eexp = Ir.stmt list * Ir.exp * Cst.ty

(* An elaborated lvalue. *)
type lv =
  | LV_temp of Ir.temp * Cst.ty
  | LV_mem of Ir.exp * int64 * Cst.ty  (* base, const offset, pointee *)

let const_i fc ty v : Ir.exp =
  ignore fc;
  match ty with
  | Ir.I32 -> Ir.Const (Wasm.Values.I32 (Int64.to_int32 v))
  | Ir.I64 -> Ir.Const (Wasm.Values.I64 v)
  | _ -> assert false

let ptr_const fc v = const_i fc (ptr_ir fc.env) v

(* Fold [base + off] into a single expression when needed. *)
let addr_plus fc base off =
  if Int64.equal off 0L then base
  else Ir.Bin (Ir.Ibin Wasm.Ast.Add, ptr_ir fc.env, base, ptr_const fc off)

(* Root slot of an address expression (for GEP-safety marking). *)
let rec root_slot fc = function
  | Ir.SlotAddr id -> List.find_opt (fun s -> s.Ir.slot_id = id) fc.slots
  | Ir.Bin (_, _, a, b) -> (
      match root_slot fc a with Some s -> Some s | None -> root_slot fc b)
  | _ -> None

let as_const = function
  | Ir.Const (Wasm.Values.I32 v) -> Some (Int64.of_int32 v)
  | Ir.Const (Wasm.Values.I64 v) -> Some v
  | _ -> None

let rec elab_expr fc (e : Cst.expr) : eexp =
  let ln = e.eline in
  match e.e with
  | Cst.IntLit v ->
      if v >= -2147483648L && v <= 2147483647L then
        ([], Ir.Const (Wasm.Values.I32 (Int64.to_int32 v)), Cst.TInt)
      else ([], Ir.Const (Wasm.Values.I64 v), Cst.TLong)
  | Cst.FloatLit v -> ([], Ir.Const (Wasm.Values.F64 v), Cst.TDouble)
  | Cst.StrLit s ->
      let addr = intern_string fc.env s in
      ([], Ir.GlobalAddr addr, Cst.TPtr Cst.TChar)
  | Cst.Var n -> (
      match lookup_var fc n with
      | Some (Loc_temp t, ty) -> ([], Ir.Temp (t, ir_of_cty fc.env ty), ty)
      | Some (Loc_slot s, ty) -> load_place fc ln (Ir.SlotAddr s.Ir.slot_id) 0L ty
      | None -> (
          match Hashtbl.find_opt fc.env.globals n with
          | Some (addr, ty) -> load_place fc ln (Ir.GlobalAddr addr) 0L ty
          | None -> (
              match Hashtbl.find_opt fc.env.funcs n with
              | Some (ret, params) ->
                  fc.env.table <-
                    (if List.mem n fc.env.table then fc.env.table
                     else fc.env.table @ [ n ]);
                  ([], Ir.FuncRef n, Cst.TPtr (Cst.TFunc (ret, params)))
              | None -> err ln "unknown identifier %s" n)))
  | Cst.Bin (op, a, b) -> elab_binop fc ln op a b
  | Cst.Un (op, a) -> (
      let sa, ea, ta = elab_expr fc a in
      match op with
      | Cst.Neg ->
          if is_float ta then
            (sa, Ir.Bin (Ir.Fbin Wasm.Ast.FSub, ir_of_cty fc.env ta,
                         Ir.Const (if ta = Cst.TFloat then Wasm.Values.F32 0.0
                                   else Wasm.Values.F64 0.0), ea), ta)
          else
            let ty = common_ty ln ta Cst.TInt in
            let ea = convert fc.env ln ea ta ty in
            (sa, Ir.Bin (Ir.Ibin Wasm.Ast.Sub, ir_of_cty fc.env ty,
                         const_i fc (ir_of_cty fc.env ty) 0L, ea), ty)
      | Cst.BNot ->
          let ty = common_ty ln ta Cst.TInt in
          let ea = convert fc.env ln ea ta ty in
          (sa, Ir.Bin (Ir.Ibin Wasm.Ast.Xor, ir_of_cty fc.env ty, ea,
                       const_i fc (ir_of_cty fc.env ty) (-1L)), ty)
      | Cst.LNot ->
          let sa, c = elab_cond fc a in
          (sa, Ir.Eqz (Ir.I32, c), Cst.TInt))
  | Cst.Assign (lhs, rhs) ->
      let stmts, value, ty = elab_assign fc ln lhs rhs in
      (stmts, value, ty)
  | Cst.Cond (c, a, b) ->
      let sc, ec = elab_cond fc c in
      let sa, ea, ta = elab_expr fc a in
      let sb, eb, tb = elab_expr fc b in
      let ty =
        if is_arith ta && is_arith tb then common_ty ln ta tb
        else if ta = tb then ta
        else if is_ptr ta && is_ptr tb then ta
        else err ln "incompatible ?: branches"
      in
      let t = fresh_temp fc in
      let irty = ir_of_cty fc.env ty in
      ( sc
        @ [ Ir.If
              ( ec,
                sa @ [ Ir.Set (t, irty, convert fc.env ln ea ta ty) ],
                sb @ [ Ir.Set (t, irty, convert fc.env ln eb tb ty) ] ) ],
        Ir.Temp (t, irty), ty )
  | Cst.Call (f, args) -> elab_call fc ln f args
  | Cst.Index _ | Cst.Member _ | Cst.Arrow _ | Cst.Deref _ ->
      let stmts, lv = elab_lval fc e in
      load_lv fc ln stmts lv
  | Cst.AddrOf inner -> (
      match inner.e with
      | Cst.Var n when lookup_var fc n = None
                       && Hashtbl.find_opt fc.env.globals n = None -> (
          (* address of a function *)
          match Hashtbl.find_opt fc.env.funcs n with
          | Some (ret, params) ->
              fc.env.table <-
                (if List.mem n fc.env.table then fc.env.table
                 else fc.env.table @ [ n ]);
              ([], Ir.FuncRef n, Cst.TPtr (Cst.TFunc (ret, params)))
          | None -> err ln "unknown identifier %s" n)
      | _ -> (
          let stmts, lv = elab_lval fc inner in
          match lv with
          | LV_mem (base, off, ty) ->
              (stmts, addr_plus fc base off, Cst.TPtr ty)
          | LV_temp _ ->
              err ln "cannot take the address of a register variable"))
  | Cst.Cast (ty, a) ->
      let sa, ea, ta = elab_expr fc a in
      let ea = elab_cast fc ln ea ta ty in
      (sa, ea, ty)
  | Cst.SizeofT t ->
      ([], Ir.Const (Wasm.Values.I64 (Int64.of_int (sizeof fc.env t))),
       Cst.TLong)
  | Cst.SizeofE a ->
      let ty = type_of_expr fc a in
      ([], Ir.Const (Wasm.Values.I64 (Int64.of_int (sizeof fc.env ty))),
       Cst.TLong)
  | Cst.PreIncr a -> elab_incr fc ln a 1L `Pre
  | Cst.PreDecr a -> elab_incr fc ln a (-1L) `Pre
  | Cst.PostIncr a -> elab_incr fc ln a 1L `Post
  | Cst.PostDecr a -> elab_incr fc ln a (-1L) `Post

(* Load (or decay) the value at a place. Arrays and structs decay to
   their address. *)
and load_place fc ln base off (ty : Cst.ty) : eexp =
  match ty with
  | Cst.TArray (el, _) -> ([], addr_plus fc base off, Cst.TPtr el)
  | Cst.TStruct _ -> ([], addr_plus fc base off, Cst.TPtr ty)
  | _ ->
      let mem = mem_of_cty fc.env ln ty in
      let res = ir_of_cty fc.env ty in
      let ext = if is_unsigned ty then Wasm.Ast.ZX else Wasm.Ast.SX in
      ([], Ir.Load { mem; ext; res; addr = base; off }, ty)

and load_lv fc ln stmts = function
  | LV_temp (t, ty) -> (stmts, Ir.Temp (t, ir_of_cty fc.env ty), ty)
  | LV_mem (base, off, ty) ->
      let s2, e, t = load_place fc ln base off ty in
      (stmts @ s2, e, t)

(* Elaborate an expression as an lvalue. *)
and elab_lval fc (e : Cst.expr) : Ir.stmt list * lv =
  let ln = e.eline in
  match e.e with
  | Cst.Var n -> (
      match lookup_var fc n with
      | Some (Loc_temp t, ty) -> ([], LV_temp (t, ty))
      | Some (Loc_slot s, ty) -> ([], LV_mem (Ir.SlotAddr s.Ir.slot_id, 0L, ty))
      | None -> (
          match Hashtbl.find_opt fc.env.globals n with
          | Some (addr, ty) -> ([], LV_mem (Ir.GlobalAddr addr, 0L, ty))
          | None -> err ln "unknown identifier %s" n))
  | Cst.Deref p ->
      let sp, ep, tp = elab_expr fc p in
      (sp, LV_mem (ep, 0L, elem_ty ln tp))
  | Cst.Index (a, i) ->
      let sa, base, off, elty = elab_index fc ln a i in
      (sa, LV_mem (base, off, elty))
  | Cst.Member (a, f) -> (
      let sa, lv = elab_lval fc a in
      match lv with
      | LV_mem (base, off, Cst.TStruct sname) ->
          let l = layout_of fc.env sname ln in
          let fname, fty, foff =
            match
              List.find_opt (fun (n, _, _) -> String.equal n f) l.sl_fields
            with
            | Some x -> x
            | None -> err ln "struct %s has no member %s" sname f
          in
          ignore fname;
          (sa, LV_mem (base, Int64.add off (Int64.of_int foff), fty))
      | _ -> err ln "member access on non-struct lvalue")
  | Cst.Arrow (a, f) -> (
      let sa, ea, ta = elab_expr fc a in
      match ta with
      | Cst.TPtr (Cst.TStruct sname) ->
          let l = layout_of fc.env sname ln in
          let _, fty, foff =
            match
              List.find_opt (fun (n, _, _) -> String.equal n f) l.sl_fields
            with
            | Some x -> x
            | None -> err ln "struct %s has no member %s" sname f
          in
          (sa, LV_mem (ea, Int64.of_int foff, fty))
      | t -> err ln "-> on non-struct-pointer %s" (Cst.ty_to_string t))
  | _ -> err ln "expression is not an lvalue"

(* a[i]: returns (stmts, base, const_off, element type) *)
and elab_index fc ln a i : Ir.stmt list * Ir.exp * int64 * Cst.ty =
  let sa, ea, ta = elab_expr fc a in
  let elty = elem_ty ln ta in
  let elsize = Int64.of_int (sizeof fc.env elty) in
  let si, ei, ti = elab_expr fc i in
  if not (is_integer ti) then err ln "array index is not an integer";
  let stmts = sa @ si in
  (* GEP safety (Algorithm 1): a statically verifiable index into a
     stack slot keeps the slot un-instrumented. *)
  let root = root_slot fc ea in
  match as_const ei with
  | Some iv ->
      let off = Int64.mul iv elsize in
      (match root with
      | Some s ->
          let arr_size =
            (* bounds known only for direct slot bases *)
            match ea with
            | Ir.SlotAddr _ -> Some s.Ir.slot_size
            | _ -> None
          in
          let inb =
            match arr_size with
            | Some sz ->
                off >= 0L
                && Int64.add off elsize <= Int64.of_int sz
            | None -> false
          in
          if not inb then s.Ir.unsafe_gep <- true
      | None -> ());
      (stmts, ea, off, elty)
  | None ->
      (match root with Some s -> s.Ir.unsafe_gep <- true | None -> ());
      let ei = convert fc.env ln ei ti (if fc.env.ptr64 then Cst.TLong else Cst.TInt) in
      let scaled =
        if Int64.equal elsize 1L then ei
        else
          Ir.Bin (Ir.Ibin Wasm.Ast.Mul, ptr_ir fc.env, ei,
                  ptr_const fc elsize)
      in
      (stmts, Ir.Bin (Ir.Ibin Wasm.Ast.Add, ptr_ir fc.env, ea, scaled), 0L,
       elty)

(* Condition: non-zero test producing an i32. *)
and elab_cond fc (e : Cst.expr) : Ir.stmt list * Ir.exp =
  let ln = e.eline in
  let s, v, ty = elab_expr fc e in
  if is_float ty then
    let w = ir_of_cty fc.env ty in
    let zero = if ty = Cst.TFloat then Wasm.Values.F32 0.0 else Wasm.Values.F64 0.0 in
    (s, Ir.Bin (Ir.Frel Wasm.Ast.FNe, w, v, Ir.Const zero))
  else
    let w = ir_of_cty fc.env ty in
    ignore ln;
    (s, Ir.Eqz (w, Ir.Eqz (w, v)))

and elab_binop fc ln op a b : eexp =
  match op with
  | Cst.LAnd ->
      let sa, ca = elab_cond fc a in
      let sb, cb = elab_cond fc b in
      let t = fresh_temp fc in
      ( sa
        @ [ Ir.If
              ( ca,
                sb @ [ Ir.Set (t, Ir.I32, cb) ],
                [ Ir.Set (t, Ir.I32, Ir.Const (Wasm.Values.I32 0l)) ] ) ],
        Ir.Temp (t, Ir.I32), Cst.TInt )
  | Cst.LOr ->
      let sa, ca = elab_cond fc a in
      let sb, cb = elab_cond fc b in
      let t = fresh_temp fc in
      ( sa
        @ [ Ir.If
              ( ca,
                [ Ir.Set (t, Ir.I32, Ir.Const (Wasm.Values.I32 1l)) ],
                sb @ [ Ir.Set (t, Ir.I32, cb) ] ) ],
        Ir.Temp (t, Ir.I32), Cst.TInt )
  | _ -> (
      let sa, ea, ta = elab_expr fc a in
      let sb, eb, tb = elab_expr fc b in
      let stmts = sa @ sb in
      match (op, is_ptr ta, is_ptr tb) with
      | Cst.Add, true, false | Cst.Sub, true, false ->
          let elty = elem_ty ln ta in
          let elsize = Int64.of_int (sizeof fc.env elty) in
          let eb =
            convert fc.env ln eb tb
              (if fc.env.ptr64 then Cst.TLong else Cst.TInt)
          in
          let scaled =
            if Int64.equal elsize 1L then eb
            else
              Ir.Bin (Ir.Ibin Wasm.Ast.Mul, ptr_ir fc.env, eb,
                      ptr_const fc elsize)
          in
          let wop = if op = Cst.Add then Wasm.Ast.Add else Wasm.Ast.Sub in
          (stmts, Ir.Bin (Ir.Ibin wop, ptr_ir fc.env, ea, scaled),
           (match ta with Cst.TArray (el, _) -> Cst.TPtr el | t -> t))
      | Cst.Add, false, true ->
          let elty = elem_ty ln tb in
          let elsize = Int64.of_int (sizeof fc.env elty) in
          let ea =
            convert fc.env ln ea ta
              (if fc.env.ptr64 then Cst.TLong else Cst.TInt)
          in
          let scaled =
            if Int64.equal elsize 1L then ea
            else
              Ir.Bin (Ir.Ibin Wasm.Ast.Mul, ptr_ir fc.env, ea,
                      ptr_const fc elsize)
          in
          (stmts, Ir.Bin (Ir.Ibin Wasm.Ast.Add, ptr_ir fc.env, eb, scaled),
           (match tb with Cst.TArray (el, _) -> Cst.TPtr el | t -> t))
      | Cst.Sub, true, true ->
          let elty = elem_ty ln ta in
          let elsize = Int64.of_int (sizeof fc.env elty) in
          let diff = Ir.Bin (Ir.Ibin Wasm.Ast.Sub, ptr_ir fc.env, ea, eb) in
          let v =
            if Int64.equal elsize 1L then diff
            else
              Ir.Bin (Ir.Ibin Wasm.Ast.DivS, ptr_ir fc.env, diff,
                      ptr_const fc elsize)
          in
          let v = if fc.env.ptr64 then v else Cvt (Wasm.Ast.I64ExtendI32S, v) in
          (stmts, v, Cst.TLong)
      | (Cst.Eq | Cst.Ne | Cst.Lt | Cst.Gt | Cst.Le | Cst.Ge), _, _
        when is_ptr ta || is_ptr tb ->
          let w = ptr_ir fc.env in
          let pty = if fc.env.ptr64 then Cst.TLong else Cst.TInt in
          let ea = if is_ptr ta then ea else convert fc.env ln ea ta pty in
          let eb = if is_ptr tb then eb else convert fc.env ln eb tb pty in
          let rel =
            match op with
            | Cst.Eq -> Wasm.Ast.Eq
            | Cst.Ne -> Wasm.Ast.Ne
            | Cst.Lt -> Wasm.Ast.LtU
            | Cst.Gt -> Wasm.Ast.GtU
            | Cst.Le -> Wasm.Ast.LeU
            | Cst.Ge -> Wasm.Ast.GeU
            | _ -> assert false
          in
          (stmts, Ir.Bin (Ir.Irel rel, w, ea, eb), Cst.TInt)
      | (Cst.Shl | Cst.Shr), _, _ ->
          (* C11 6.5.7: shifts promote each operand independently; the
             result type (and the shift's signedness) comes from the
             LEFT operand only *)
          let ty = common_ty ln ta Cst.TInt in
          let w = ir_of_cty fc.env ty in
          let ea = convert fc.env ln ea ta ty in
          let eb = convert fc.env ln eb tb ty in
          let op =
            match op with
            | Cst.Shl -> Wasm.Ast.Shl
            | _ -> if is_unsigned ty then Wasm.Ast.ShrU else Wasm.Ast.ShrS
          in
          (stmts, Ir.Bin (Ir.Ibin op, w, ea, eb), ty)
      | _ ->
          let ty = common_ty ln ta tb in
          let w = ir_of_cty fc.env ty in
          let ea = convert fc.env ln ea ta ty in
          let eb = convert fc.env ln eb tb ty in
          let unsigned = is_unsigned ty in
          if is_float ty then
            let v, rty =
              match op with
              | Cst.Add -> (Ir.Bin (Ir.Fbin Wasm.Ast.FAdd, w, ea, eb), ty)
              | Cst.Sub -> (Ir.Bin (Ir.Fbin Wasm.Ast.FSub, w, ea, eb), ty)
              | Cst.Mul -> (Ir.Bin (Ir.Fbin Wasm.Ast.FMul, w, ea, eb), ty)
              | Cst.Div -> (Ir.Bin (Ir.Fbin Wasm.Ast.FDiv, w, ea, eb), ty)
              | Cst.Lt -> (Ir.Bin (Ir.Frel Wasm.Ast.FLt, w, ea, eb), Cst.TInt)
              | Cst.Gt -> (Ir.Bin (Ir.Frel Wasm.Ast.FGt, w, ea, eb), Cst.TInt)
              | Cst.Le -> (Ir.Bin (Ir.Frel Wasm.Ast.FLe, w, ea, eb), Cst.TInt)
              | Cst.Ge -> (Ir.Bin (Ir.Frel Wasm.Ast.FGe, w, ea, eb), Cst.TInt)
              | Cst.Eq -> (Ir.Bin (Ir.Frel Wasm.Ast.FEq, w, ea, eb), Cst.TInt)
              | Cst.Ne -> (Ir.Bin (Ir.Frel Wasm.Ast.FNe, w, ea, eb), Cst.TInt)
              | _ -> err ln "invalid float operation"
            in
            (stmts, v, rty)
          else
            let ib o = Ir.Bin (Ir.Ibin o, w, ea, eb) in
            let ir o = Ir.Bin (Ir.Irel o, w, ea, eb) in
            let v, rty =
              match op with
              | Cst.Add -> (ib Wasm.Ast.Add, ty)
              | Cst.Sub -> (ib Wasm.Ast.Sub, ty)
              | Cst.Mul -> (ib Wasm.Ast.Mul, ty)
              | Cst.Div ->
                  ((if unsigned then ib Wasm.Ast.DivU else ib Wasm.Ast.DivS), ty)
              | Cst.Mod ->
                  ((if unsigned then ib Wasm.Ast.RemU else ib Wasm.Ast.RemS), ty)
              | Cst.BAnd -> (ib Wasm.Ast.And, ty)
              | Cst.BOr -> (ib Wasm.Ast.Or, ty)
              | Cst.BXor -> (ib Wasm.Ast.Xor, ty)
              | Cst.Shl -> (ib Wasm.Ast.Shl, ty)
              | Cst.Shr ->
                  ((if unsigned then ib Wasm.Ast.ShrU else ib Wasm.Ast.ShrS), ty)
              | Cst.Lt ->
                  ((if unsigned then ir Wasm.Ast.LtU else ir Wasm.Ast.LtS),
                   Cst.TInt)
              | Cst.Gt ->
                  ((if unsigned then ir Wasm.Ast.GtU else ir Wasm.Ast.GtS),
                   Cst.TInt)
              | Cst.Le ->
                  ((if unsigned then ir Wasm.Ast.LeU else ir Wasm.Ast.LeS),
                   Cst.TInt)
              | Cst.Ge ->
                  ((if unsigned then ir Wasm.Ast.GeU else ir Wasm.Ast.GeS),
                   Cst.TInt)
              | Cst.Eq -> (ir Wasm.Ast.Eq, Cst.TInt)
              | Cst.Ne -> (ir Wasm.Ast.Ne, Cst.TInt)
              | Cst.LAnd | Cst.LOr -> assert false
            in
            (stmts, v, rty))

and elab_cast fc ln e src dst : Ir.exp =
  match (src, dst) with
  | src, dst when is_arith src && is_arith dst -> convert fc.env ln e src dst
  | (Cst.TPtr _ | Cst.TArray _), (Cst.TPtr _) -> e
  | (Cst.TPtr _ | Cst.TArray _), t when is_integer t ->
      convert fc.env ln e (if fc.env.ptr64 then Cst.TLong else Cst.TInt) t
  | t, Cst.TPtr _ when is_integer t ->
      convert fc.env ln e t (if fc.env.ptr64 then Cst.TLong else Cst.TInt)
  | _, Cst.TVoid -> e
  | _ ->
      err ln "invalid cast from %s to %s" (Cst.ty_to_string src)
        (Cst.ty_to_string dst)

(* Static type of an expression (for sizeof). *)
and type_of_expr fc (e : Cst.expr) : Cst.ty =
  (* Elaborate into a throwaway context (no side effects on slots). *)
  let snapshot = List.map (fun s -> (s, s.Ir.unsafe_gep, s.Ir.escapes)) fc.slots in
  let _, _, ty = elab_expr fc e in
  List.iter
    (fun (s, g, esc) ->
      s.Ir.unsafe_gep <- g;
      s.Ir.escapes <- esc)
    snapshot;
  ty

and elab_assign fc ln lhs rhs : Ir.stmt list * Ir.exp * Cst.ty =
  let srhs, erhs, trhs = elab_expr fc rhs in
  let slhs, lv = elab_lval fc lhs in
  match lv with
  | LV_temp (t, ty) ->
      let v = convert fc.env ln erhs trhs ty in
      let irty = ir_of_cty fc.env ty in
      let tmp = fresh_temp fc in
      ( srhs @ slhs
        @ [ Ir.Set (tmp, irty, v); Ir.Set (t, irty, Ir.Temp (tmp, irty)) ],
        Ir.Temp (tmp, irty), ty )
  | LV_mem (base, off, ty) ->
      let v = convert fc.env ln erhs trhs ty in
      let irty = ir_of_cty fc.env ty in
      let tmp = fresh_temp fc in
      ( srhs @ slhs
        @ [ Ir.Set (tmp, irty, v);
            Ir.Store
              { mem = mem_of_cty fc.env ln ty; addr = base; off;
                value = Ir.Temp (tmp, irty) } ],
        Ir.Temp (tmp, irty), ty )

and elab_incr fc ln a delta order : eexp =
  let slhs, lv = elab_lval fc a in
  let stmts0, old_v, ty = load_lv fc ln slhs lv in
  let step =
    match ty with
    | Cst.TPtr el -> Int64.mul delta (Int64.of_int (sizeof fc.env el))
    | t when is_integer t -> delta
    | t when is_float t -> delta
    | t -> err ln "cannot increment %s" (Cst.ty_to_string t)
  in
  let irty = ir_of_cty fc.env ty in
  let t_old = fresh_temp fc in
  let incremented =
    if is_float ty then
      Ir.Bin (Ir.Fbin Wasm.Ast.FAdd, irty, Ir.Temp (t_old, irty),
              Ir.Const (if ty = Cst.TFloat then
                          Wasm.Values.F32 (Int64.to_float step)
                        else Wasm.Values.F64 (Int64.to_float step)))
    else
      Ir.Bin (Ir.Ibin Wasm.Ast.Add, irty, Ir.Temp (t_old, irty),
              const_i fc irty step)
  in
  let t_new = fresh_temp fc in
  let write =
    match lv with
    | LV_temp (t, _) -> [ Ir.Set (t, irty, Ir.Temp (t_new, irty)) ]
    | LV_mem (base, off, _) ->
        [ Ir.Store
            { mem = mem_of_cty fc.env ln ty; addr = base; off;
              value = Ir.Temp (t_new, irty) } ]
  in
  let stmts =
    stmts0
    @ [ Ir.Set (t_old, irty, old_v); Ir.Set (t_new, irty, incremented) ]
    @ write
  in
  match order with
  | `Pre -> (stmts, Ir.Temp (t_new, irty), ty)
  | `Post -> (stmts, Ir.Temp (t_old, irty), ty)

and elab_call fc ln f args : eexp =
  let elab_args params args =
    List.fold_left2
      (fun (stmts, acc) pty arg ->
        let s, e, t = elab_expr fc arg in
        let t = match t with Cst.TArray (el, _) -> Cst.TPtr el | t -> t in
        let e =
          match (pty, t) with
          | Cst.TPtr _, Cst.TPtr _ -> e
          | Cst.TPtr (Cst.TFunc _), _ -> e
          | _ -> convert fc.env ln e t pty
        in
        (stmts @ s, acc @ [ e ]))
      ([], []) params args
  in
  match f.e with
  | Cst.Var name when lookup_var fc name = None
                      && Hashtbl.mem fc.env.funcs name -> (
      let ret, params = Hashtbl.find fc.env.funcs name in
      if List.length params <> List.length args then
        err ln "%s expects %d arguments, got %d" name (List.length params)
          (List.length args);
      let stmts, eargs = elab_args params args in
      (* builtins *)
      match (name, eargs) with
      | "__builtin_segment_new", [ p; l ] ->
          let t = fresh_temp fc in
          (stmts @ [ Ir.SegmentNew { dst = t; ptr = p; len = l } ],
           Ir.Temp (t, Ir.I64), Cst.TLong)
      | "__builtin_segment_set_tag", [ p; tg; l ] ->
          (stmts @ [ Ir.SegmentSetTag { ptr = p; tagged = tg; len = l } ],
           Ir.Const (Wasm.Values.I32 0l), Cst.TVoid)
      | "__builtin_segment_free", [ tg; l ] ->
          (stmts @ [ Ir.SegmentFree { tagged = tg; len = l } ],
           Ir.Const (Wasm.Values.I32 0l), Cst.TVoid)
      | "__builtin_pointer_sign", [ p ] ->
          let t = fresh_temp fc in
          (stmts @ [ Ir.PointerSign { dst = t; ptr = p } ],
           Ir.Temp (t, Ir.I64), Cst.TLong)
      | "__builtin_pointer_auth", [ p ] ->
          let t = fresh_temp fc in
          (stmts @ [ Ir.PointerAuth { dst = t; ptr = p } ],
           Ir.Temp (t, Ir.I64), Cst.TLong)
      | "__builtin_memset", [ d; v; l ] ->
          (* bulk-memory ops take pointer-width operands *)
          let pty = if fc.env.ptr64 then Cst.TLong else Cst.TInt in
          let d = convert fc.env ln d Cst.TLong pty in
          let l = convert fc.env ln l Cst.TLong pty in
          (stmts @ [ Ir.MemFill { dst = d; byte = v; len = l } ],
           Ir.Const (Wasm.Values.I32 0l), Cst.TVoid)
      | "__builtin_memcpy", [ d; s; l ] ->
          let pty = if fc.env.ptr64 then Cst.TLong else Cst.TInt in
          let d = convert fc.env ln d Cst.TLong pty in
          let s = convert fc.env ln s Cst.TLong pty in
          let l = convert fc.env ln l Cst.TLong pty in
          (stmts @ [ Ir.MemCopy { dst = d; src = s; len = l } ],
           Ir.Const (Wasm.Values.I32 0l), Cst.TVoid)
      | "__builtin_trap", [] ->
          (stmts @ [ Ir.Trap ], Ir.Const (Wasm.Values.I32 0l), Cst.TVoid)
      | _ ->
          let dst =
            if ret = Cst.TVoid then None
            else Some (fresh_temp fc, ir_of_cty fc.env ret)
          in
          let call = Ir.Call { dst; callee = Ir.Direct name; args = eargs } in
          let v =
            match dst with
            | None -> Ir.Const (Wasm.Values.I32 0l)
            | Some (t, ty) -> Ir.Temp (t, ty)
          in
          (stmts @ [ call ], v, ret))
  | _ -> (
      (* call through a function pointer *)
      let sf, ef, tf = elab_expr fc f in
      match tf with
      | Cst.TPtr (Cst.TFunc (ret, params)) | Cst.TFunc (ret, params) ->
          if List.length params <> List.length args then
            err ln "function pointer expects %d arguments, got %d"
              (List.length params) (List.length args);
          let stmts, eargs = elab_args params args in
          let dst =
            if ret = Cst.TVoid then None
            else Some (fresh_temp fc, ir_of_cty fc.env ret)
          in
          let callee =
            Ir.Indirect
              {
                sig_params = List.map (ir_of_cty fc.env) params;
                sig_ret =
                  (if ret = Cst.TVoid then None
                   else Some (ir_of_cty fc.env ret));
                fptr = ef;
              }
          in
          let v =
            match dst with
            | None -> Ir.Const (Wasm.Values.I32 0l)
            | Some (t, ty) -> Ir.Temp (t, ty)
          in
          (sf @ stmts @ [ Ir.Call { dst; callee; args = eargs } ], v, ret)
      | t -> err ln "cannot call value of type %s" (Cst.ty_to_string t))

(* --------------------------------------------------------------- *)
(* Statement elaboration                                            *)
(* --------------------------------------------------------------- *)

let rec elab_stmt fc (st : Cst.stmt) : Ir.stmt list =
  let ln = st.sline in
  match st.s with
  | Cst.SExpr e ->
      let stmts, _, _ = elab_expr fc e in
      stmts
  | Cst.SDecl (ty, name, init) -> elab_decl fc ln ty name init
  | Cst.SIf (c, a, b) ->
      let sc, ec = elab_cond fc c in
      push_scope fc;
      let sa = List.concat_map (elab_stmt fc) a in
      pop_scope fc;
      push_scope fc;
      let sb = List.concat_map (elab_stmt fc) b in
      pop_scope fc;
      sc @ [ Ir.If (ec, sa, sb) ]
  | Cst.SWhile (c, body) ->
      let sc, ec = elab_cond fc c in
      push_scope fc;
      let sbody = List.concat_map (elab_stmt fc) body in
      pop_scope fc;
      (* condition side effects must re-run each iteration *)
      if sc = [] then
        [ Ir.ForLoop { cond = Some ec; step = []; body = sbody;
                       post_test = false } ]
      else
        [ Ir.ForLoop
            { cond = None; step = [];
              body = sc @ [ Ir.If (ec, [], [ Ir.Break ]) ] @ sbody;
              post_test = false } ]
  | Cst.SDoWhile (body, c) ->
      push_scope fc;
      let sbody = List.concat_map (elab_stmt fc) body in
      pop_scope fc;
      let sc, ec = elab_cond fc c in
      [ Ir.ForLoop
          { cond = Some ec; step = sc; body = sbody; post_test = true } ]
  | Cst.SFor (init, cond, step, body) ->
      push_scope fc;
      let sinit = match init with None -> [] | Some s -> elab_stmt fc s in
      let scond, econd =
        match cond with
        | None -> ([], None)
        | Some c ->
            let s, e = elab_cond fc c in
            (s, Some e)
      in
      let sstep =
        match step with
        | None -> []
        | Some e ->
            let s, _, _ = elab_expr fc e in
            s
      in
      push_scope fc;
      let sbody = List.concat_map (elab_stmt fc) body in
      pop_scope fc;
      pop_scope fc;
      if scond = [] then
        sinit
        @ [ Ir.ForLoop { cond = econd; step = sstep; body = sbody;
                         post_test = false } ]
      else
        (* condition with side effects: evaluate inside the loop *)
        let cond_check =
          scond
          @
          match econd with
          | Some e -> [ Ir.If (e, [], [ Ir.Break ]) ]
          | None -> []
        in
        sinit
        @ [ Ir.ForLoop { cond = None; step = sstep;
                         body = cond_check @ sbody; post_test = false } ]
  | Cst.SSwitch (scrut, cases, default) ->
      let ss, es, ts = elab_expr fc scrut in
      if not (is_integer ts) then err ln "switch scrutinee must be integer";
      let es = convert fc.env ln es ts Cst.TLong in
      (* duplicate case values are a bug in the source *)
      let values = List.map fst cases in
      if List.length (List.sort_uniq Int64.compare values)
         <> List.length values
      then err ln "duplicate case value in switch";
      (* materialise the scrutinee once *)
      let t = fresh_temp fc in
      let elab_body b =
        push_scope fc;
        let r = List.concat_map (elab_stmt fc) b in
        pop_scope fc;
        r
      in
      ss
      @ [ Ir.Set (t, Ir.I64, es);
          Ir.Switch
            { scrut = Ir.Temp (t, Ir.I64);
              cases = List.map (fun (v, b) -> (v, elab_body b)) cases;
              default = elab_body default } ]
  | Cst.SReturn None ->
      if fc.ret_ty <> Cst.TVoid then err ln "missing return value";
      [ Ir.Return None ]
  | Cst.SReturn (Some e) ->
      let s, v, t = elab_expr fc e in
      if fc.ret_ty = Cst.TVoid then err ln "returning a value from void";
      s @ [ Ir.Return (Some (convert fc.env ln v t fc.ret_ty)) ]
  | Cst.SBreak -> [ Ir.Break ]
  | Cst.SContinue -> [ Ir.Continue ]
  | Cst.SBlock body ->
      push_scope fc;
      let s = List.concat_map (elab_stmt fc) body in
      pop_scope fc;
      s

and elab_decl fc ln ty name init : Ir.stmt list =
  match ty with
  | Cst.TVoid -> err ln "cannot declare a void variable"
  | _ ->
      let taken =
        (* computed once per function; see elab_func *)
        Hashtbl.mem fc.env.defined ("addr_taken$" ^ fc.fname ^ "$" ^ name)
      in
      if registerable ty && not taken then begin
        let t = fresh_temp fc in
        bind fc name (Loc_temp t) ty;
        match init with
        | None ->
            [ Ir.Set (t, ir_of_cty fc.env ty,
                      Ir.Const (Wasm.Values.default
                                  (Ir.ty_to_wasm (ir_of_cty fc.env ty)))) ]
        | Some (Cst.IExpr e) ->
            let s, v, tv = elab_expr fc e in
            let tv = match tv with Cst.TArray (el, _) -> Cst.TPtr el | x -> x in
            let v =
              match (ty, tv) with
              | Cst.TPtr _, Cst.TPtr _ -> v
              | _ -> convert fc.env ln v tv ty
            in
            s @ [ Ir.Set (t, ir_of_cty fc.env ty, v) ]
        | Some (Cst.IList _) -> err ln "brace initialiser on scalar"
      end
      else begin
        let size = sizeof fc.env ty in
        let slot = fresh_slot fc name size (alignof fc.env ty) in
        bind fc name (Loc_slot slot) ty;
        let base = Ir.SlotAddr slot.Ir.slot_id in
        match init with
        | None -> []
        | Some (Cst.IExpr e) ->
            let s, v, tv = elab_expr fc e in
            s
            @ [ Ir.Store
                  { mem = mem_of_cty fc.env ln ty; addr = base; off = 0L;
                    value = convert fc.env ln v tv ty } ]
        | Some (Cst.IList items) -> elab_init_list fc ln base 0L ty items
      end

(* Brace initialisers for arrays and structs. *)
and elab_init_list fc ln base off ty items : Ir.stmt list =
  match ty with
  | Cst.TArray (el, n) ->
      let elsize = Int64.of_int (sizeof fc.env el) in
      List.concat
        (List.mapi
           (fun i (field, init) ->
             if field <> None then err ln "designator in array initialiser";
             if i >= n then err ln "too many array initialisers";
             let off = Int64.add off (Int64.mul (Int64.of_int i) elsize) in
             match init with
             | Cst.IExpr e ->
                 let s, v, tv = elab_expr fc e in
                 s
                 @ [ Ir.Store
                       { mem = mem_of_cty fc.env ln el; addr = base; off;
                         value = convert fc.env ln v tv el } ]
             | Cst.IList sub -> elab_init_list fc ln base off el sub)
           items)
  | Cst.TStruct sname ->
      let l = layout_of fc.env sname ln in
      List.concat
        (List.mapi
           (fun i (field, init) ->
             let fname, fty, foff =
               match field with
               | Some f -> (
                   match
                     List.find_opt
                       (fun (n, _, _) -> String.equal n f)
                       l.sl_fields
                   with
                   | Some x -> x
                   | None -> err ln "struct %s has no member %s" sname f)
               | None -> (
                   match List.nth_opt l.sl_fields i with
                   | Some x -> x
                   | None -> err ln "too many struct initialisers")
             in
             ignore fname;
             let off = Int64.add off (Int64.of_int foff) in
             match init with
             | Cst.IExpr e ->
                 let s, v, tv = elab_expr fc e in
                 let v =
                   match (fty, tv) with
                   | Cst.TPtr _, (Cst.TPtr _ | Cst.TArray _) -> v
                   | _ -> convert fc.env ln v tv fty
                 in
                 s
                 @ [ Ir.Store
                       { mem = mem_of_cty fc.env ln fty; addr = base; off;
                         value = v } ]
             | Cst.IList sub -> elab_init_list fc ln base off fty sub)
           items)
  | _ -> err ln "brace initialiser on scalar type"

(* --------------------------------------------------------------- *)
(* Functions and programs                                           *)
(* --------------------------------------------------------------- *)

let elab_func env (fd : Cst.func_def) : Ir.func =
  let fc =
    { env; fname = fd.fd_name; ret_ty = fd.fd_ret; scopes = [];
      ntemps = 0; slots = []; nslots = 0 }
  in
  (* record address-taken variable names where elab_decl can see them *)
  let taken = addr_taken_names fd.fd_body in
  Hashtbl.iter
    (fun n () ->
      Hashtbl.replace env.defined ("addr_taken$" ^ fd.fd_name ^ "$" ^ n) ())
    taken;
  push_scope fc;
  (* parameters are temps; address-taken parameters are copied into a
     slot at entry *)
  let params =
    List.map
      (fun (p : Cst.param) ->
        let t = fresh_temp fc in
        (t, p.p_name, p.p_ty))
      fd.fd_params
  in
  let param_copies =
    List.concat_map
      (fun (t, name, ty) ->
        if Hashtbl.mem taken name && registerable ty then begin
          let slot = fresh_slot fc name (sizeof env ty) (alignof env ty) in
          bind fc name (Loc_slot slot) ty;
          [ Ir.Store
              { mem = mem_of_cty env 0 ty; addr = Ir.SlotAddr slot.Ir.slot_id;
                off = 0L; value = Ir.Temp (t, ir_of_cty env ty) } ]
        end
        else begin
          bind fc name (Loc_temp t) ty;
          []
        end)
      params
  in
  let body = List.concat_map (elab_stmt fc) fd.fd_body in
  pop_scope fc;
  (* implicit return for main-style functions falling off the end *)
  let body =
    let rec ends_in_return = function
      | [] -> false
      | [ Ir.Return _ ] | [ Ir.Trap ] -> true
      | [ _ ] -> false
      | _ :: tl -> ends_in_return tl
    in
    if fd.fd_ret = Cst.TVoid || ends_in_return body then body
    else
      body
      @ [ Ir.Return
            (Some
               (Ir.Const
                  (Wasm.Values.default
                     (Ir.ty_to_wasm (ir_of_cty env fd.fd_ret))))) ]
  in
  {
    Ir.fn_name = fd.fd_name;
    fn_params = List.map (fun (t, _, ty) -> (t, ir_of_cty env ty)) params;
    fn_ret = (if fd.fd_ret = Cst.TVoid then None
              else Some (ir_of_cty env fd.fd_ret));
    fn_ntemps = fc.ntemps;
    fn_slots = fc.slots;
    fn_body = param_copies @ body;
    fn_needs_guard = false;
    fn_export = true;
  }

let builtin_names =
  [ "__builtin_segment_new"; "__builtin_segment_set_tag";
    "__builtin_segment_free"; "__builtin_pointer_sign";
    "__builtin_pointer_auth"; "__builtin_memset"; "__builtin_memcpy";
    "__builtin_trap" ]

let builtin_sigs : (string * (Cst.ty * Cst.ty list)) list =
  [
    ("__builtin_segment_new", (Cst.TLong, [ Cst.TLong; Cst.TLong ]));
    ("__builtin_segment_set_tag",
     (Cst.TVoid, [ Cst.TLong; Cst.TLong; Cst.TLong ]));
    ("__builtin_segment_free", (Cst.TVoid, [ Cst.TLong; Cst.TLong ]));
    ("__builtin_pointer_sign", (Cst.TLong, [ Cst.TLong ]));
    ("__builtin_pointer_auth", (Cst.TLong, [ Cst.TLong ]));
    ("__builtin_memset", (Cst.TVoid, [ Cst.TLong; Cst.TInt; Cst.TLong ]));
    ("__builtin_memcpy", (Cst.TVoid, [ Cst.TLong; Cst.TLong; Cst.TLong ]));
    ("__builtin_trap", (Cst.TVoid, []));
  ]

(* Encode a constant initialiser into little-endian bytes. *)
let rec encode_init env line buf off (ty : Cst.ty) (init : Cst.init) =
  match (ty, init) with
  | _, Cst.IExpr e -> (
      let set_i64 n v =
        for i = 0 to n - 1 do
          Bytes.set buf (off + i)
            (Char.chr
               (Int64.to_int
                  (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL)))
        done
      in
      match (ty, e.e) with
      | t, Cst.IntLit v when is_integer t -> set_i64 (sizeof env t) v
      | t, Cst.Un (Cst.Neg, { e = Cst.IntLit v; _ }) when is_integer t ->
          set_i64 (sizeof env t) (Int64.neg v)
      | Cst.TFloat, Cst.FloatLit v ->
          set_i64 4 (Int64.of_int32 (Int32.bits_of_float v))
      | Cst.TFloat, Cst.IntLit v -> 
          set_i64 4 (Int64.of_int32 (Int32.bits_of_float (Int64.to_float v)))
      | Cst.TDouble, Cst.FloatLit v -> set_i64 8 (Int64.bits_of_float v)
      | Cst.TDouble, Cst.IntLit v ->
          set_i64 8 (Int64.bits_of_float (Int64.to_float v))
      | _ -> err line "global initialiser must be a literal")
  | Cst.TArray (el, n), Cst.IList items ->
      if List.length items > n then err line "too many array initialisers";
      List.iteri
        (fun i (field, init) ->
          if field <> None then err line "designator in array initialiser";
          encode_init env line buf (off + (i * sizeof env el)) el init)
        items
  | _, Cst.IList _ -> err line "unsupported global aggregate initialiser"

(** Elaborate a whole program. [ptr64] selects wasm64 (memory64). *)
let program ?(ptr64 = true) (prog : Cst.program) : Ir.program =
  let env =
    {
      ptr64;
      structs = Hashtbl.create 16;
      funcs = Hashtbl.create 32;
      defined = Hashtbl.create 32;
      globals = Hashtbl.create 16;
      data = [];
      data_end = 1024L;
      strings = [];
      table = [];
    }
  in
  List.iter (fun (n, s) -> Hashtbl.replace env.funcs n s) builtin_sigs;
  (* pass 1: structs, function signatures, globals *)
  List.iter
    (fun (d : Cst.decl) ->
      match d with
      | Cst.DStruct sd ->
          Hashtbl.replace env.structs sd.sd_name (compute_layout env sd)
      | Cst.DFunc fd ->
          Hashtbl.replace env.funcs fd.fd_name
            (fd.fd_ret, List.map (fun (p : Cst.param) -> p.p_ty) fd.fd_params);
          Hashtbl.replace env.defined fd.fd_name ()
      | Cst.DExtern (ret, name, params) ->
          if not (Hashtbl.mem env.funcs name) then
            Hashtbl.replace env.funcs name (ret, params)
      | Cst.DGlobal gd ->
          let size = sizeof env gd.gd_ty in
          let align = max (alignof env gd.gd_ty) 8 in
          let addr = align_up_64 env.data_end (Int64.of_int align) in
          Hashtbl.replace env.globals gd.gd_name (addr, gd.gd_ty);
          env.data_end <- Int64.add addr (Int64.of_int size);
          (match gd.gd_init with
          | None -> ()
          | Some init ->
              let buf = Bytes.make size '\000' in
              encode_init env 0 buf 0 gd.gd_ty init;
              env.data <- (addr, Bytes.to_string buf) :: env.data))
    prog;
  env.data_end <- align_up_64 env.data_end 16L;
  (* pass 2: function bodies *)
  let funcs =
    List.filter_map
      (fun (d : Cst.decl) ->
        match d with Cst.DFunc fd -> Some (elab_func env fd) | _ -> None)
      prog
  in
  (* externs that are not defined and not builtins become host imports *)
  let externs =
    Hashtbl.fold
      (fun name (ret, params) acc ->
        if Hashtbl.mem env.defined name || List.mem name builtin_names then acc
        else
          {
            Ir.ef_name = name;
            ef_params = List.map (ir_of_cty env) params;
            ef_ret =
              (if ret = Cst.TVoid then None else Some (ir_of_cty env ret));
          }
          :: acc)
      env.funcs []
    |> List.sort (fun a b -> String.compare a.Ir.ef_name b.Ir.ef_name)
  in
  {
    Ir.pr_funcs = funcs;
    pr_externs = externs;
    pr_globals =
      Hashtbl.fold
        (fun name (addr, ty) acc ->
          { Ir.gv_name = name; gv_addr = addr; gv_size = sizeof env ty } :: acc)
        env.globals []
      |> List.sort (fun a b -> Int64.compare a.Ir.gv_addr b.Ir.gv_addr);
    pr_data = List.rev env.data;
    pr_table = env.table;
    pr_data_end = env.data_end;
    pr_ptr64 = ptr64;
  }
