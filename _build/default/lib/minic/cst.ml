(** MiniC abstract syntax, as produced by the parser.

    Types are resolved later by {!Typecheck}; here struct references are
    by name and array sizes are constant expressions already folded by
    the parser. *)

type ty =
  | TVoid
  | TChar          (** 1 byte, unsigned in MiniC *)
  | TInt           (** 32-bit signed *)
  | TUInt          (** 32-bit unsigned *)
  | TLong          (** 64-bit signed *)
  | TULong         (** 64-bit unsigned *)
  | TFloat
  | TDouble
  | TPtr of ty
  | TArray of ty * int
  | TStruct of string
  | TFunc of ty * ty list  (** function type (for function pointers) *)

let rec ty_to_string = function
  | TVoid -> "void"
  | TChar -> "char"
  | TInt -> "int"
  | TUInt -> "unsigned int"
  | TLong -> "long"
  | TULong -> "unsigned long"
  | TFloat -> "float"
  | TDouble -> "double"
  | TPtr t -> ty_to_string t ^ "*"
  | TArray (t, n) -> Printf.sprintf "%s[%d]" (ty_to_string t) n
  | TStruct s -> "struct " ^ s
  | TFunc (r, args) ->
      Printf.sprintf "%s(*)(%s)" (ty_to_string r)
        (String.concat ", " (List.map ty_to_string args))

type binop =
  | Add | Sub | Mul | Div | Mod
  | BAnd | BOr | BXor | Shl | Shr
  | Lt | Gt | Le | Ge | Eq | Ne
  | LAnd | LOr

type unop = Neg | BNot | LNot

type expr = { e : expr_desc; eline : int }

and expr_desc =
  | IntLit of int64
  | FloatLit of float
  | StrLit of string
  | Var of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Assign of expr * expr          (** lvalue = rvalue *)
  | Cond of expr * expr * expr     (** ?: *)
  | Call of expr * expr list       (** callee may be name or fn pointer *)
  | Index of expr * expr           (** a[i] *)
  | Member of expr * string        (** s.f *)
  | Arrow of expr * string         (** p->f *)
  | Deref of expr                  (** *p *)
  | AddrOf of expr                 (** &lv *)
  | Cast of ty * expr
  | SizeofT of ty
  | SizeofE of expr
  | PreIncr of expr | PreDecr of expr
  | PostIncr of expr | PostDecr of expr

type init =
  | IExpr of expr
  | IList of (string option * init) list
      (** brace initialiser; [Some f] for designated [.f = ...] *)

type stmt = { s : stmt_desc; sline : int }

and stmt_desc =
  | SExpr of expr
  | SDecl of ty * string * init option
  | SIf of expr * stmt list * stmt list
  | SWhile of expr * stmt list
  | SDoWhile of stmt list * expr
  | SFor of stmt option * expr option * expr option * stmt list
  | SSwitch of expr * (int64 * stmt list) list * stmt list
      (** scrutinee, cases (constant value, body), default body. MiniC
          switch has implicit break between cases (no fallthrough). *)
  | SReturn of expr option
  | SBreak
  | SContinue
  | SBlock of stmt list

type param = { p_ty : ty; p_name : string }

type func_def = {
  fd_ret : ty;
  fd_name : string;
  fd_params : param list;
  fd_body : stmt list;
}

type struct_def = { sd_name : string; sd_fields : (ty * string) list }

type global_def = {
  gd_ty : ty;
  gd_name : string;
  gd_init : init option;
}

type decl =
  | DFunc of func_def
  | DStruct of struct_def
  | DGlobal of global_def
  | DExtern of ty * string * ty list  (** extern function declaration *)

type program = decl list
