(** Escape analysis over the IR — the [escapes(alloc)] predicate of
    paper Algorithm 1.

    A stack slot escapes when its address flows anywhere except directly
    into the addressing expression of a load or store in the same
    function: passed to a call, stored to memory, returned, assigned to
    a variable, or mixed into arbitrary arithmetic that is then used as
    a value. The analysis is syntactic and conservative — exactly the
    cheap verdict an LLVM pass gets from [PointerMayBeCaptured]. *)

open Ir

(* Walk an expression; [in_addr] is true while we are inside the
   addressing operand of a load/store, where slot addresses are safe. *)
let rec walk_exp ~mark ~in_addr (e : exp) =
  match e with
  | SlotAddr id -> if not in_addr then mark id
  | Const _ | Temp _ | GlobalAddr _ | FuncRef _ -> ()
  | Bin (_, _, a, b) ->
      (* address arithmetic below a load/store stays an address *)
      walk_exp ~mark ~in_addr a;
      walk_exp ~mark ~in_addr b
  | Eqz (_, a) | Cvt (_, a) -> walk_exp ~mark ~in_addr:false a
  | Load { addr; _ } -> walk_exp ~mark ~in_addr:true addr

let rec walk_stmt ~mark (s : stmt) =
  match s with
  | Set (_, _, e) -> walk_exp ~mark ~in_addr:false e
  | Store { addr; value; _ } ->
      walk_exp ~mark ~in_addr:true addr;
      walk_exp ~mark ~in_addr:false value
  | If (c, a, b) ->
      walk_exp ~mark ~in_addr:false c;
      List.iter (walk_stmt ~mark) a;
      List.iter (walk_stmt ~mark) b
  | ForLoop { cond; step; body; _ } ->
      Option.iter (walk_exp ~mark ~in_addr:false) cond;
      List.iter (walk_stmt ~mark) step;
      List.iter (walk_stmt ~mark) body
  | Return e -> Option.iter (walk_exp ~mark ~in_addr:false) e
  | Call { callee; args; _ } ->
      (match callee with
      | Direct _ -> ()
      | Indirect { fptr; _ } -> walk_exp ~mark ~in_addr:false fptr);
      List.iter (walk_exp ~mark ~in_addr:false) args
  | SegmentNew { ptr; len; _ } ->
      (* the slot address given to segment.new is not an escape: the
         segment instruction is the protection itself *)
      walk_exp ~mark ~in_addr:true ptr;
      walk_exp ~mark ~in_addr:false len
  | SegmentSetTag { ptr; tagged; len } ->
      walk_exp ~mark ~in_addr:true ptr;
      walk_exp ~mark ~in_addr:false tagged;
      walk_exp ~mark ~in_addr:false len
  | SegmentFree { tagged; len } ->
      walk_exp ~mark ~in_addr:true tagged;
      walk_exp ~mark ~in_addr:false len
  | PointerSign { ptr; _ } | PointerAuth { ptr; _ } ->
      walk_exp ~mark ~in_addr:false ptr
  | MemFill { dst; byte; len } ->
      walk_exp ~mark ~in_addr:true dst;
      walk_exp ~mark ~in_addr:false byte;
      walk_exp ~mark ~in_addr:false len
  | MemCopy { dst; src; len } ->
      walk_exp ~mark ~in_addr:true dst;
      walk_exp ~mark ~in_addr:true src;
      walk_exp ~mark ~in_addr:false len
  | Switch { scrut; cases; default } ->
      walk_exp ~mark ~in_addr:false scrut;
      List.iter (fun (_, b) -> List.iter (walk_stmt ~mark) b) cases;
      List.iter (walk_stmt ~mark) default
  | Break | Continue | Trap | Nop_stmt -> ()

(** Set [escapes] on every slot of [f] whose address leaks. *)
let analyse_func (f : func) =
  let mark id =
    match List.find_opt (fun s -> s.slot_id = id) f.fn_slots with
    | Some s -> s.escapes <- true
    | None -> ()
  in
  List.iter (walk_stmt ~mark) f.fn_body

let analyse (p : program) = List.iter analyse_func p.pr_funcs
