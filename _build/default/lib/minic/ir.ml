(** MiniC intermediate representation.

    A typed, structured IR sitting between the C syntax tree and wasm:
    expressions are pure trees over virtual registers ({e temps}); calls
    and stores are statements; control flow stays structured (wasm has
    no goto anyway). Stack allocations are explicit {e slots} — the
    analogue of LLVM allocas — which is what the Cage stack sanitizer
    (paper Algorithm 1) reasons about. *)

type ty = I32 | I64 | F32 | F64

let ty_to_wasm : ty -> Wasm.Types.val_type = function
  | I32 -> Wasm.Types.I32
  | I64 -> Wasm.Types.I64
  | F32 -> Wasm.Types.F32
  | F64 -> Wasm.Types.F64

let ty_to_string = function
  | I32 -> "i32"
  | I64 -> "i64"
  | F32 -> "f32"
  | F64 -> "f64"

(** Memory access granularity. Sub-word integer accesses carry an
    extension mode on load. *)
type mem_ty = M8 | M16 | M32 | M64 | MF32 | MF64

let mem_bytes = function
  | M8 -> 1
  | M16 -> 2
  | M32 | MF32 -> 4
  | M64 | MF64 -> 8

type temp = int

type op =
  | Ibin of Wasm.Ast.ibinop
  | Irel of Wasm.Ast.irelop
  | Fbin of Wasm.Ast.fbinop
  | Frel of Wasm.Ast.frelop

type exp =
  | Const of Wasm.Values.t
  | Temp of temp * ty
  | Bin of op * ty * exp * exp
      (** [ty] is the {e operand} width; relops produce I32 *)
  | Eqz of ty * exp
  | Cvt of Wasm.Ast.cvtop * exp
  | Load of { mem : mem_ty; ext : Wasm.Ast.extension; res : ty; addr : exp;
              off : int64 }
  | SlotAddr of int  (** pointer to a stack slot (tagged when hardened) *)
  | GlobalAddr of int64  (** absolute address of a global/string *)
  | FuncRef of string
      (** function pointer value: its table index (signing is applied by
          the pointer-auth pass) *)

type callee =
  | Direct of string
  | Indirect of { sig_params : ty list; sig_ret : ty option; fptr : exp }

type stmt =
  | Set of temp * ty * exp
  | Store of { mem : mem_ty; addr : exp; off : int64; value : exp }
  | If of exp * stmt list * stmt list
  | ForLoop of { cond : exp option; step : stmt list; body : stmt list;
                 post_test : bool }
      (** [continue] jumps to [step]; [break] exits. [cond = None] loops
          until break; [post_test] checks the condition after body+step
          (do-while). *)
  | Switch of { scrut : exp; cases : (int64 * stmt list) list;
                default : stmt list }
      (** no fallthrough: each case exits after its body; [Break] inside
          a case also exits the switch (C semantics) *)
  | Break
  | Continue
  | Trap  (** __builtin_trap: wasm unreachable *)
  | Return of exp option
  | Call of { dst : (temp * ty) option; callee : callee; args : exp list }
  | SegmentNew of { dst : temp; ptr : exp; len : exp }
  | SegmentSetTag of { ptr : exp; tagged : exp; len : exp }
  | SegmentFree of { tagged : exp; len : exp }
  | PointerSign of { dst : temp; ptr : exp }
  | PointerAuth of { dst : temp; ptr : exp }
  | MemFill of { dst : exp; byte : exp; len : exp }
  | MemCopy of { dst : exp; src : exp; len : exp }
  | Nop_stmt

(** A stack allocation — LLVM's [alloca]. The sanitizer flags are
    filled in by {!Escape} / {!Stack_sanitizer}. *)
type slot = {
  slot_id : int;
  slot_name : string;
  slot_size : int;  (** unpadded size in bytes *)
  slot_align : int;
  mutable escapes : bool;
      (** address flows out: call argument, stored to memory, returned *)
  mutable unsafe_gep : bool;
      (** indexed with a non-constant or not-statically-in-bounds
          offset *)
  mutable instrument : bool;  (** Algorithm 1 verdict *)
}

type func = {
  fn_name : string;
  fn_params : (temp * ty) list;
  fn_ret : ty option;
  mutable fn_ntemps : int;
  mutable fn_slots : slot list;
  mutable fn_body : stmt list;
  mutable fn_needs_guard : bool;
      (** insert an untagged guard slot at the frame start (Fig. 8b) *)
  fn_export : bool;
}

type global_var = {
  gv_name : string;
  gv_addr : int64;
  gv_size : int;
}

type extern_func = {
  ef_name : string;
  ef_params : ty list;
  ef_ret : ty option;
}

type program = {
  pr_funcs : func list;
  pr_externs : extern_func list;  (** resolved as host imports *)
  pr_globals : global_var list;
  pr_data : (int64 * string) list;  (** initialised data segments *)
  pr_table : string list;
      (** functions whose address is taken; position = table index.
          Index 0 is a reserved null entry. *)
  pr_data_end : int64;  (** first free address after globals/data *)
  pr_ptr64 : bool;
}

(** The pointer value type of a program. *)
let ptr_ty (p : program) = if p.pr_ptr64 then I64 else I32

let find_func p name =
  List.find_opt (fun f -> String.equal f.fn_name name) p.pr_funcs

let table_index p name =
  let rec go i = function
    | [] -> None
    | n :: _ when String.equal n name -> Some i
    | _ :: tl -> go (i + 1) tl
  in
  go 1 p.pr_table  (* index 0 is the null entry *)

(* ------------------------------------------------------------------ *)
(* Traversal helpers used by the analyses and passes                   *)
(* ------------------------------------------------------------------ *)

(** Fold over every expression in a statement list (pre-order, including
    sub-expressions). *)
let rec fold_exps f acc (stmts : stmt list) =
  List.fold_left (fold_exps_stmt f) acc stmts

and fold_exps_stmt f acc = function
  | Set (_, _, e) -> fold_exp f acc e
  | Store { addr; value; _ } -> fold_exp f (fold_exp f acc addr) value
  | If (c, a, b) -> fold_exps f (fold_exps f (fold_exp f acc c) a) b
  | ForLoop { cond; step; body; _ } ->
      let acc = Option.fold ~none:acc ~some:(fold_exp f acc) cond in
      fold_exps f (fold_exps f acc step) body
  | Switch { scrut; cases; default } ->
      let acc = fold_exp f acc scrut in
      let acc =
        List.fold_left (fun acc (_, body) -> fold_exps f acc body) acc cases
      in
      fold_exps f acc default
  | Break | Continue | Nop_stmt | Trap -> acc
  | Return e -> Option.fold ~none:acc ~some:(fold_exp f acc) e
  | Call { args; callee; _ } ->
      let acc =
        match callee with
        | Direct _ -> acc
        | Indirect { fptr; _ } -> fold_exp f acc fptr
      in
      List.fold_left (fold_exp f) acc args
  | SegmentNew { ptr; len; _ } -> fold_exp f (fold_exp f acc ptr) len
  | SegmentSetTag { ptr; tagged; len } ->
      fold_exp f (fold_exp f (fold_exp f acc ptr) tagged) len
  | SegmentFree { tagged; len } -> fold_exp f (fold_exp f acc tagged) len
  | PointerSign { ptr; _ } | PointerAuth { ptr; _ } -> fold_exp f acc ptr
  | MemFill { dst; byte; len } ->
      fold_exp f (fold_exp f (fold_exp f acc dst) byte) len
  | MemCopy { dst; src; len } ->
      fold_exp f (fold_exp f (fold_exp f acc dst) src) len

and fold_exp f acc e =
  let acc = f acc e in
  match e with
  | Const _ | Temp _ | SlotAddr _ | GlobalAddr _ | FuncRef _ -> acc
  | Bin (_, _, a, b) -> fold_exp f (fold_exp f acc a) b
  | Eqz (_, a) | Cvt (_, a) -> fold_exp f acc a
  | Load { addr; _ } -> fold_exp f acc addr

(** Map statements bottom-up (for rewriting passes). *)
let rec map_stmts f (stmts : stmt list) : stmt list =
  List.concat_map
    (fun s ->
      let s' =
        match s with
        | If (c, a, b) -> If (c, map_stmts f a, map_stmts f b)
        | ForLoop { cond; step; body; post_test } ->
            ForLoop
              { cond; step = map_stmts f step; body = map_stmts f body;
                post_test }
        | Switch { scrut; cases; default } ->
            Switch
              { scrut;
                cases = List.map (fun (v, b) -> (v, map_stmts f b)) cases;
                default = map_stmts f default }
        | s -> s
      in
      f s')
    stmts
