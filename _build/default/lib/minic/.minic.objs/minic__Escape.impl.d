lib/minic/escape.ml: Ir List Option
