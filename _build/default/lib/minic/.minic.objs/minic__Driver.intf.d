lib/minic/driver.mli: Cage Ir Stack_sanitizer Wasm
