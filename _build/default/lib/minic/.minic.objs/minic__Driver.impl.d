lib/minic/driver.ml: Cage Codegen Elab Ir Lexer Opt Parser Printf Stack_sanitizer Wasm
