lib/minic/opt.ml: Hashtbl Int32 Int64 Ir List Option Wasm
