lib/minic/parser.ml: Array Char Cst Format Int64 Lexer List Token
