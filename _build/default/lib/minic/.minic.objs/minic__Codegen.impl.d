lib/minic/codegen.ml: Array Char Format Int32 Int64 Ir List Option String Wasm
