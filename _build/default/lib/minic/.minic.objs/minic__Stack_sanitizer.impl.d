lib/minic/stack_sanitizer.ml: Escape Format Ir List
