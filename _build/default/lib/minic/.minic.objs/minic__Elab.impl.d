lib/minic/elab.ml: Bytes Char Cst Format Hashtbl Int32 Int64 Ir List Option String Wasm
