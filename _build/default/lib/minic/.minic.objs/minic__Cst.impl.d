lib/minic/cst.ml: List Printf String
