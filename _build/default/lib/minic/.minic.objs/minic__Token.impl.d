lib/minic/token.ml: Int64 Printf
