lib/minic/lexer.ml: Buffer Format Int64 List String Token
