lib/minic/ir.ml: List Option String Wasm
