(** Hand-rolled lexer for MiniC. Tracks line numbers for diagnostics and
    supports C and C++ comments, character/string escapes, hex literals
    and float literals. *)

exception Lex_error of string * int  (** message, line *)

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
}

let create src = { src; pos = 0; line = 1 }

let peek_char lx =
  if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let peek2_char lx =
  if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1] else None

let advance lx =
  (match peek_char lx with Some '\n' -> lx.line <- lx.line + 1 | _ -> ());
  lx.pos <- lx.pos + 1

let error lx fmt =
  Format.kasprintf (fun s -> raise (Lex_error (s, lx.line))) fmt

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let rec skip_ws lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_ws lx
  | Some '/' when peek2_char lx = Some '/' ->
      let rec to_eol () =
        match peek_char lx with
        | Some '\n' | None -> ()
        | Some _ ->
            advance lx;
            to_eol ()
      in
      to_eol ();
      skip_ws lx
  | Some '/' when peek2_char lx = Some '*' ->
      advance lx;
      advance lx;
      let rec to_close () =
        match (peek_char lx, peek2_char lx) with
        | Some '*', Some '/' ->
            advance lx;
            advance lx
        | None, _ -> error lx "unterminated comment"
        | _ ->
            advance lx;
            to_close ()
      in
      to_close ();
      skip_ws lx
  | Some '#' ->
      (* preprocessor lines (e.g. #include) are ignored: MiniC sources
         are self-contained *)
      let rec to_eol () =
        match peek_char lx with
        | Some '\n' | None -> ()
        | Some _ ->
            advance lx;
            to_eol ()
      in
      to_eol ();
      skip_ws lx
  | _ -> ()

let lex_escape lx =
  advance lx;
  match peek_char lx with
  | Some 'n' -> advance lx; '\n'
  | Some 't' -> advance lx; '\t'
  | Some 'r' -> advance lx; '\r'
  | Some '0' -> advance lx; '\000'
  | Some '\\' -> advance lx; '\\'
  | Some '\'' -> advance lx; '\''
  | Some '"' -> advance lx; '"'
  | Some c -> error lx "unknown escape \\%c" c
  | None -> error lx "unterminated escape"

let lex_number lx =
  let start = lx.pos in
  if peek_char lx = Some '0' && (peek2_char lx = Some 'x' || peek2_char lx = Some 'X')
  then begin
    advance lx;
    advance lx;
    while (match peek_char lx with Some c -> is_hex c | None -> false) do
      advance lx
    done;
    let s = String.sub lx.src start (lx.pos - start) in
    Token.Int_lit (Int64.of_string s)
  end
  else begin
    while (match peek_char lx with Some c -> is_digit c | None -> false) do
      advance lx
    done;
    let is_float =
      match (peek_char lx, peek2_char lx) with
      | Some '.', Some c when is_digit c -> true
      | Some '.', (Some (' ' | ';' | ')' | ',' | '/' | '*' | '+' | '-') | None)
        -> true
      | Some ('e' | 'E'), _ -> true
      | _ -> false
    in
    if is_float then begin
      (match peek_char lx with
      | Some '.' ->
          advance lx;
          while (match peek_char lx with Some c -> is_digit c | None -> false) do
            advance lx
          done
      | _ -> ());
      (match peek_char lx with
      | Some ('e' | 'E') ->
          advance lx;
          (match peek_char lx with
          | Some ('+' | '-') -> advance lx
          | _ -> ());
          while (match peek_char lx with Some c -> is_digit c | None -> false) do
            advance lx
          done
      | _ -> ());
      (* optional f suffix *)
      (match peek_char lx with Some ('f' | 'F') -> advance lx | _ -> ());
      Token.Float_lit (float_of_string
                         (let s = String.sub lx.src start (lx.pos - start) in
                          if s.[String.length s - 1] = 'f'
                             || s.[String.length s - 1] = 'F'
                          then String.sub s 0 (String.length s - 1)
                          else s))
    end
    else begin
      (* optional L/u suffixes *)
      let s = String.sub lx.src start (lx.pos - start) in
      while (match peek_char lx with
            | Some ('l' | 'L' | 'u' | 'U') -> true
            | _ -> false) do
        advance lx
      done;
      Token.Int_lit (Int64.of_string s)
    end
  end

let next_token lx : Token.t * int =
  skip_ws lx;
  let line = lx.line in
  let tok =
    match peek_char lx with
    | None -> Token.Eof
    | Some c when is_digit c -> lex_number lx
    | Some c when is_ident_start c ->
        let start = lx.pos in
        while (match peek_char lx with Some c -> is_ident c | None -> false) do
          advance lx
        done;
        let s = String.sub lx.src start (lx.pos - start) in
        (match Token.keyword_of_string s with
        | Some kw -> kw
        | None -> Token.Ident s)
    | Some '"' ->
        advance lx;
        let buf = Buffer.create 16 in
        let rec go () =
          match peek_char lx with
          | Some '"' -> advance lx
          | Some '\\' -> Buffer.add_char buf (lex_escape lx); go ()
          | Some c -> advance lx; Buffer.add_char buf c; go ()
          | None -> error lx "unterminated string"
        in
        go ();
        Token.String_lit (Buffer.contents buf)
    | Some '\'' ->
        advance lx;
        let c =
          match peek_char lx with
          | Some '\\' -> lex_escape lx
          | Some c -> advance lx; c
          | None -> error lx "unterminated char literal"
        in
        (match peek_char lx with
        | Some '\'' -> advance lx
        | _ -> error lx "unterminated char literal");
        Token.Char_lit c
    | Some c ->
        advance lx;
        let two expect tok1 tok0 =
          if peek_char lx = Some expect then (advance lx; tok1) else tok0
        in
        (match c with
        | '(' -> Token.LParen
        | ')' -> Token.RParen
        | '{' -> Token.LBrace
        | '}' -> Token.RBrace
        | '[' -> Token.LBracket
        | ']' -> Token.RBracket
        | ';' -> Token.Semi
        | ',' -> Token.Comma
        | '.' -> Token.Dot
        | '?' -> Token.Question
        | ':' -> Token.Colon
        | '~' -> Token.Tilde
        | '+' ->
            (match peek_char lx with
            | Some '+' -> advance lx; Token.PlusPlus
            | Some '=' -> advance lx; Token.PlusEq
            | _ -> Token.Plus)
        | '-' ->
            (match peek_char lx with
            | Some '-' -> advance lx; Token.MinusMinus
            | Some '=' -> advance lx; Token.MinusEq
            | Some '>' -> advance lx; Token.Arrow
            | _ -> Token.Minus)
        | '*' -> two '=' Token.StarEq Token.Star
        | '/' -> two '=' Token.SlashEq Token.Slash
        | '%' -> two '=' Token.PercentEq Token.Percent
        | '^' -> two '=' Token.CaretEq Token.Caret
        | '!' -> two '=' Token.NotEq Token.Bang
        | '=' -> two '=' Token.EqEq Token.Assign
        | '&' ->
            (match peek_char lx with
            | Some '&' -> advance lx; Token.AmpAmp
            | Some '=' -> advance lx; Token.AmpEq
            | _ -> Token.Amp)
        | '|' ->
            (match peek_char lx with
            | Some '|' -> advance lx; Token.PipePipe
            | Some '=' -> advance lx; Token.PipeEq
            | _ -> Token.Pipe)
        | '<' ->
            (match peek_char lx with
            | Some '<' ->
                advance lx;
                two '=' Token.ShlEq Token.Shl
            | Some '=' -> advance lx; Token.Le
            | _ -> Token.Lt)
        | '>' ->
            (match peek_char lx with
            | Some '>' ->
                advance lx;
                two '=' Token.ShrEq Token.Shr
            | Some '=' -> advance lx; Token.Ge
            | _ -> Token.Gt)
        | c -> error lx "unexpected character %C" c)
  in
  (tok, line)

(** Tokenise a whole source string. *)
let tokenize src =
  let lx = create src in
  let rec go acc =
    match next_token lx with
    | Token.Eof, line -> List.rev ((Token.Eof, line) :: acc)
    | tok -> go (tok :: acc)
  in
  go []
