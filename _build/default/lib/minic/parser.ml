(** Recursive-descent parser for MiniC.

    Implements the usual C precedence levels. MiniC has no typedefs, so
    a statement starting with a type keyword (or [struct N] followed by
    an identifier or [*]) is a declaration; anything else is an
    expression statement. *)

exception Parse_error of string * int

type t = {
  toks : (Token.t * int) array;
  mutable pos : int;
}

let error p fmt =
  let line = snd p.toks.(min p.pos (Array.length p.toks - 1)) in
  Format.kasprintf (fun s -> raise (Parse_error (s, line))) fmt

let peek p = fst p.toks.(p.pos)
let peek2 p =
  if p.pos + 1 < Array.length p.toks then fst p.toks.(p.pos + 1) else Token.Eof
let line p = snd p.toks.(p.pos)

let advance p = if p.pos < Array.length p.toks - 1 then p.pos <- p.pos + 1

let eat p tok =
  if peek p = tok then advance p
  else error p "expected %s, found %s" (Token.to_string tok)
         (Token.to_string (peek p))

let eat_ident p =
  match peek p with
  | Token.Ident s ->
      advance p;
      s
  | t -> error p "expected identifier, found %s" (Token.to_string t)

(* --------------------------------------------------------------- *)
(* Types                                                            *)
(* --------------------------------------------------------------- *)

let starts_type p =
  match peek p with
  | Token.KW_int | KW_long | KW_char | KW_float | KW_double | KW_void
  | KW_unsigned | KW_const | KW_static ->
      true
  | KW_struct -> ( match peek2 p with Token.Ident _ -> true | _ -> false)
  | _ -> false

(* Base type: [unsigned] (int|long|char) | float | double | void |
   struct N.  Ignores const/static qualifiers. *)
let rec parse_base_ty p : Cst.ty =
  match peek p with
  | Token.KW_const | Token.KW_static ->
      advance p;
      parse_base_ty p
  | Token.KW_unsigned ->
      advance p;
      (match peek p with
      | Token.KW_int -> advance p; Cst.TUInt
      | Token.KW_long -> advance p; Cst.TULong
      | Token.KW_char -> advance p; Cst.TChar
      | _ -> Cst.TUInt)
  | Token.KW_int -> advance p; Cst.TInt
  | Token.KW_long ->
      advance p;
      (* accept "long long" and "long int" *)
      (match peek p with
      | Token.KW_long | Token.KW_int -> advance p
      | _ -> ());
      Cst.TLong
  | Token.KW_char -> advance p; Cst.TChar
  | Token.KW_float -> advance p; Cst.TFloat
  | Token.KW_double -> advance p; Cst.TDouble
  | Token.KW_void -> advance p; Cst.TVoid
  | Token.KW_struct ->
      advance p;
      Cst.TStruct (eat_ident p)
  | t -> error p "expected a type, found %s" (Token.to_string t)

(* Pointer stars after a base type. *)
let parse_ptr_suffix p ty =
  let ty = ref ty in
  while peek p = Token.Star do
    advance p;
    (* skip const in e.g. `char *const` *)
    (match peek p with Token.KW_const -> advance p | _ -> ());
    ty := Cst.TPtr !ty
  done;
  !ty

(* Forward declaration: filled below (param lists need full types). *)
let parse_abstract_fnptr_hook :
    (t -> Cst.ty -> Cst.ty) ref =
  ref (fun _ ty -> ty)

(* An abstract declarator after a base type, as used in casts:
   stars, optionally followed by the function-pointer form
   "( star ) ( params )". *)
let parse_abstract_ty p base =
  let ty = parse_ptr_suffix p base in
  if peek p = Token.LParen && peek2 p = Token.Star then
    !parse_abstract_fnptr_hook p ty
  else ty

(* --------------------------------------------------------------- *)
(* Expressions (precedence climbing)                                *)
(* --------------------------------------------------------------- *)

let mk e eline : Cst.expr = { e; eline }

let rec parse_expr p = parse_assign p

and parse_assign p : Cst.expr =
  let lhs = parse_cond p in
  let ln = line p in
  let compound op =
    advance p;
    let rhs = parse_assign p in
    mk (Cst.Assign (lhs, mk (Cst.Bin (op, lhs, rhs)) ln)) ln
  in
  match peek p with
  | Token.Assign ->
      advance p;
      let rhs = parse_assign p in
      mk (Cst.Assign (lhs, rhs)) ln
  | Token.PlusEq -> compound Cst.Add
  | Token.MinusEq -> compound Cst.Sub
  | Token.StarEq -> compound Cst.Mul
  | Token.SlashEq -> compound Cst.Div
  | Token.PercentEq -> compound Cst.Mod
  | Token.AmpEq -> compound Cst.BAnd
  | Token.PipeEq -> compound Cst.BOr
  | Token.CaretEq -> compound Cst.BXor
  | Token.ShlEq -> compound Cst.Shl
  | Token.ShrEq -> compound Cst.Shr
  | _ -> lhs

and parse_cond p =
  let c = parse_lor p in
  if peek p = Token.Question then begin
    let ln = line p in
    advance p;
    let t = parse_assign p in
    eat p Token.Colon;
    let f = parse_cond p in
    mk (Cst.Cond (c, t, f)) ln
  end
  else c

and parse_binary p ~ops ~next =
  let lhs = ref (next p) in
  let rec go () =
    match List.assoc_opt (peek p) ops with
    | Some op ->
        let ln = line p in
        advance p;
        let rhs = next p in
        lhs := mk (Cst.Bin (op, !lhs, rhs)) ln;
        go ()
    | None -> ()
  in
  go ();
  !lhs

and parse_lor p =
  parse_binary p ~ops:[ (Token.PipePipe, Cst.LOr) ] ~next:parse_land

and parse_land p =
  parse_binary p ~ops:[ (Token.AmpAmp, Cst.LAnd) ] ~next:parse_bor

and parse_bor p = parse_binary p ~ops:[ (Token.Pipe, Cst.BOr) ] ~next:parse_bxor

and parse_bxor p =
  parse_binary p ~ops:[ (Token.Caret, Cst.BXor) ] ~next:parse_band

and parse_band p = parse_binary p ~ops:[ (Token.Amp, Cst.BAnd) ] ~next:parse_eq

and parse_eq p =
  parse_binary p
    ~ops:[ (Token.EqEq, Cst.Eq); (Token.NotEq, Cst.Ne) ]
    ~next:parse_rel

and parse_rel p =
  parse_binary p
    ~ops:
      [ (Token.Lt, Cst.Lt); (Token.Gt, Cst.Gt); (Token.Le, Cst.Le);
        (Token.Ge, Cst.Ge) ]
    ~next:parse_shift

and parse_shift p =
  parse_binary p
    ~ops:[ (Token.Shl, Cst.Shl); (Token.Shr, Cst.Shr) ]
    ~next:parse_addsub

and parse_addsub p =
  parse_binary p
    ~ops:[ (Token.Plus, Cst.Add); (Token.Minus, Cst.Sub) ]
    ~next:parse_muldiv

and parse_muldiv p =
  parse_binary p
    ~ops:
      [ (Token.Star, Cst.Mul); (Token.Slash, Cst.Div);
        (Token.Percent, Cst.Mod) ]
    ~next:parse_unary

and parse_unary p : Cst.expr =
  let ln = line p in
  match peek p with
  | Token.Minus ->
      advance p;
      mk (Cst.Un (Cst.Neg, parse_unary p)) ln
  | Token.Tilde ->
      advance p;
      mk (Cst.Un (Cst.BNot, parse_unary p)) ln
  | Token.Bang ->
      advance p;
      mk (Cst.Un (Cst.LNot, parse_unary p)) ln
  | Token.Star ->
      advance p;
      mk (Cst.Deref (parse_unary p)) ln
  | Token.Amp ->
      advance p;
      mk (Cst.AddrOf (parse_unary p)) ln
  | Token.PlusPlus ->
      advance p;
      mk (Cst.PreIncr (parse_unary p)) ln
  | Token.MinusMinus ->
      advance p;
      mk (Cst.PreDecr (parse_unary p)) ln
  | Token.KW_sizeof ->
      advance p;
      if peek p = Token.LParen && starts_type { p with pos = p.pos + 1 } then begin
        (* hack: probe one token ahead for a type *)
        eat p Token.LParen;
        let ty = parse_abstract_ty p (parse_base_ty p) in
        eat p Token.RParen;
        mk (Cst.SizeofT ty) ln
      end
      else mk (Cst.SizeofE (parse_unary p)) ln
  | Token.LParen when starts_type { p with pos = p.pos + 1 } ->
      (* cast *)
      eat p Token.LParen;
      let ty = parse_abstract_ty p (parse_base_ty p) in
      eat p Token.RParen;
      mk (Cst.Cast (ty, parse_unary p)) ln
  | _ -> parse_postfix p

and parse_postfix p =
  let e = ref (parse_primary p) in
  let rec go () =
    let ln = line p in
    match peek p with
    | Token.LParen ->
        advance p;
        let args = parse_args p in
        eat p Token.RParen;
        e := mk (Cst.Call (!e, args)) ln;
        go ()
    | Token.LBracket ->
        advance p;
        let i = parse_expr p in
        eat p Token.RBracket;
        e := mk (Cst.Index (!e, i)) ln;
        go ()
    | Token.Dot ->
        advance p;
        e := mk (Cst.Member (!e, eat_ident p)) ln;
        go ()
    | Token.Arrow ->
        advance p;
        e := mk (Cst.Arrow (!e, eat_ident p)) ln;
        go ()
    | Token.PlusPlus ->
        advance p;
        e := mk (Cst.PostIncr !e) ln;
        go ()
    | Token.MinusMinus ->
        advance p;
        e := mk (Cst.PostDecr !e) ln;
        go ()
    | _ -> ()
  in
  go ();
  !e

and parse_args p =
  if peek p = Token.RParen then []
  else
    let rec go acc =
      let a = parse_assign p in
      if peek p = Token.Comma then begin
        advance p;
        go (a :: acc)
      end
      else List.rev (a :: acc)
    in
    go []

and parse_primary p : Cst.expr =
  let ln = line p in
  match peek p with
  | Token.Int_lit v ->
      advance p;
      mk (Cst.IntLit v) ln
  | Token.Float_lit v ->
      advance p;
      mk (Cst.FloatLit v) ln
  | Token.String_lit s ->
      advance p;
      mk (Cst.StrLit s) ln
  | Token.Char_lit c ->
      advance p;
      mk (Cst.IntLit (Int64.of_int (Char.code c))) ln
  | Token.Ident s ->
      advance p;
      mk (Cst.Var s) ln
  | Token.LParen ->
      advance p;
      let e = parse_expr p in
      eat p Token.RParen;
      e
  | t -> error p "unexpected token %s in expression" (Token.to_string t)

(* Constant folding for array sizes. *)
let rec const_eval (e : Cst.expr) : int64 =
  match e.e with
  | Cst.IntLit v -> v
  | Cst.Bin (op, a, b) -> (
      let a = const_eval a and b = const_eval b in
      match op with
      | Cst.Add -> Int64.add a b
      | Cst.Sub -> Int64.sub a b
      | Cst.Mul -> Int64.mul a b
      | Cst.Div -> Int64.div a b
      | Cst.Mod -> Int64.rem a b
      | Cst.Shl -> Int64.shift_left a (Int64.to_int b)
      | Cst.Shr -> Int64.shift_right a (Int64.to_int b)
      | _ -> raise (Parse_error ("non-constant array size", e.eline)))
  | Cst.Un (Cst.Neg, a) -> Int64.neg (const_eval a)
  | _ -> raise (Parse_error ("non-constant array size", e.eline))

(* --------------------------------------------------------------- *)
(* Declarators                                                      *)
(* --------------------------------------------------------------- *)

(* After the base type, parse one declarator:
   name, star-name, name[N]..., or the function-pointer form
   "( star name ) ( params )". Returns (full type, name). *)
let rec parse_declarator p base : Cst.ty * string =
  let base = parse_ptr_suffix p base in
  if peek p = Token.LParen then begin
    (* function pointer: ( * name ) ( params ) *)
    eat p Token.LParen;
    eat p Token.Star;
    let name = eat_ident p in
    eat p Token.RParen;
    eat p Token.LParen;
    let params = parse_param_types p in
    eat p Token.RParen;
    (Cst.TPtr (Cst.TFunc (base, params)), name)
  end
  else begin
    let name = eat_ident p in
    let rec arrays () =
      if peek p = Token.LBracket then begin
        advance p;
        let n = Int64.to_int (const_eval (parse_cond p)) in
        eat p Token.RBracket;
        let inner = arrays () in
        Cst.TArray (inner, n)
      end
      else base
    in
    (arrays (), name)
  end

and parse_param_types p =
  if peek p = Token.RParen then []
  else if peek p = Token.KW_void && peek2 p = Token.RParen then begin
    advance p;
    []
  end
  else
    let rec go acc =
      let base = parse_base_ty p in
      let ty = parse_ptr_suffix p base in
      (* optional name, ignored *)
      (match peek p with Token.Ident _ -> advance p | _ -> ());
      if peek p = Token.Comma then begin
        advance p;
        go (ty :: acc)
      end
      else List.rev (ty :: acc)
    in
    go []

let () =
  parse_abstract_fnptr_hook :=
    fun p base ->
      (* "( star ) ( params )": an abstract function-pointer type *)
      eat p Token.LParen;
      eat p Token.Star;
      eat p Token.RParen;
      eat p Token.LParen;
      let params = parse_param_types p in
      eat p Token.RParen;
      Cst.TPtr (Cst.TFunc (base, params))

(* A function parameter: T name, T *name, T name[] (decays), or a
   function pointer. *)
let parse_param p : Cst.param =
  let base = parse_base_ty p in
  let ty, name = parse_declarator p base in
  let ty = match ty with Cst.TArray (t, _) -> Cst.TPtr t | t -> t in
  { Cst.p_ty = ty; p_name = name }

(* --------------------------------------------------------------- *)
(* Initialisers                                                     *)
(* --------------------------------------------------------------- *)

let rec parse_init p : Cst.init =
  if peek p = Token.LBrace then begin
    advance p;
    let rec go acc =
      if peek p = Token.RBrace then begin
        advance p;
        List.rev acc
      end
      else begin
        let field =
          if peek p = Token.Dot then begin
            advance p;
            let f = eat_ident p in
            eat p Token.Assign;
            Some f
          end
          else None
        in
        let init = parse_init p in
        let acc = (field, init) :: acc in
        if peek p = Token.Comma then begin
          advance p;
          go acc
        end
        else begin
          eat p Token.RBrace;
          List.rev acc
        end
      end
    in
    Cst.IList (go [])
  end
  else Cst.IExpr (parse_assign p)

(* --------------------------------------------------------------- *)
(* Statements                                                       *)
(* --------------------------------------------------------------- *)

let rec parse_stmt p : Cst.stmt =
  let ln = line p in
  let s d : Cst.stmt = { s = d; sline = ln } in
  match peek p with
  | Token.LBrace ->
      advance p;
      let body = parse_stmts p in
      eat p Token.RBrace;
      s (Cst.SBlock body)
  | Token.KW_if ->
      advance p;
      eat p Token.LParen;
      let c = parse_expr p in
      eat p Token.RParen;
      let then_ = block_of (parse_stmt p) in
      let else_ =
        if peek p = Token.KW_else then begin
          advance p;
          block_of (parse_stmt p)
        end
        else []
      in
      s (Cst.SIf (c, then_, else_))
  | Token.KW_while ->
      advance p;
      eat p Token.LParen;
      let c = parse_expr p in
      eat p Token.RParen;
      s (Cst.SWhile (c, block_of (parse_stmt p)))
  | Token.KW_do ->
      advance p;
      let body = block_of (parse_stmt p) in
      eat p Token.KW_while;
      eat p Token.LParen;
      let c = parse_expr p in
      eat p Token.RParen;
      eat p Token.Semi;
      s (Cst.SDoWhile (body, c))
  | Token.KW_for ->
      advance p;
      eat p Token.LParen;
      let init =
        if peek p = Token.Semi then begin
          advance p;
          None
        end
        else if starts_type p then begin
          let st = parse_decl_stmt p in
          Some st
        end
        else begin
          let e = parse_expr p in
          eat p Token.Semi;
          Some { Cst.s = Cst.SExpr e; sline = ln }
        end
      in
      let cond =
        if peek p = Token.Semi then None else Some (parse_expr p)
      in
      eat p Token.Semi;
      let step =
        if peek p = Token.RParen then None else Some (parse_expr p)
      in
      eat p Token.RParen;
      s (Cst.SFor (init, cond, step, block_of (parse_stmt p)))
  | Token.KW_switch ->
      advance p;
      eat p Token.LParen;
      let scrut = parse_expr p in
      eat p Token.RParen;
      eat p Token.LBrace;
      let cases = ref [] in
      let default = ref [] in
      let rec case_body acc =
        match peek p with
        | Token.KW_case | Token.KW_default | Token.RBrace -> List.rev acc
        | _ -> case_body (parse_stmt p :: acc)
      in
      let rec clauses () =
        match peek p with
        | Token.KW_case ->
            advance p;
            let v = const_eval (parse_cond p) in
            eat p Token.Colon;
            let body = case_body [] in
            (* drop a redundant trailing break: cases break implicitly *)
            let body =
              match List.rev body with
              | { Cst.s = Cst.SBreak; _ } :: rest -> List.rev rest
              | _ -> body
            in
            cases := (v, body) :: !cases;
            clauses ()
        | Token.KW_default ->
            advance p;
            eat p Token.Colon;
            let body = case_body [] in
            let body =
              match List.rev body with
              | { Cst.s = Cst.SBreak; _ } :: rest -> List.rev rest
              | _ -> body
            in
            default := body;
            clauses ()
        | Token.RBrace -> advance p
        | t -> error p "expected case/default/}, found %s" (Token.to_string t)
      in
      clauses ();
      s (Cst.SSwitch (scrut, List.rev !cases, !default))
  | Token.KW_return ->
      advance p;
      if peek p = Token.Semi then begin
        advance p;
        s (Cst.SReturn None)
      end
      else begin
        let e = parse_expr p in
        eat p Token.Semi;
        s (Cst.SReturn (Some e))
      end
  | Token.KW_break ->
      advance p;
      eat p Token.Semi;
      s Cst.SBreak
  | Token.KW_continue ->
      advance p;
      eat p Token.Semi;
      s Cst.SContinue
  | Token.Semi ->
      advance p;
      s (Cst.SBlock [])
  | _ when starts_type p -> parse_decl_stmt p
  | _ ->
      let e = parse_expr p in
      eat p Token.Semi;
      s (Cst.SExpr e)

and block_of (st : Cst.stmt) =
  match st.s with Cst.SBlock b -> b | _ -> [ st ]

(* One or more comma-separated declarations sharing a base type. *)
and parse_decl_stmt p : Cst.stmt =
  let ln = line p in
  let base = parse_base_ty p in
  let rec go acc =
    let ty, name = parse_declarator p base in
    let init =
      if peek p = Token.Assign then begin
        advance p;
        Some (parse_init p)
      end
      else None
    in
    let decl : Cst.stmt = { s = Cst.SDecl (ty, name, init); sline = ln } in
    if peek p = Token.Comma then begin
      advance p;
      go (decl :: acc)
    end
    else begin
      eat p Token.Semi;
      List.rev (decl :: acc)
    end
  in
  match go [] with
  | [ single ] -> single
  | many -> { s = Cst.SBlock many; sline = ln }

and parse_stmts p =
  let rec go acc =
    if peek p = Token.RBrace || peek p = Token.Eof then List.rev acc
    else go (parse_stmt p :: acc)
  in
  go []

(* --------------------------------------------------------------- *)
(* Top level                                                        *)
(* --------------------------------------------------------------- *)

let parse_decl p : Cst.decl =
  match peek p with
  | Token.KW_struct when peek2 p <> Token.Eof && (
      match (peek2 p, fst p.toks.(min (p.pos + 2) (Array.length p.toks - 1))) with
      | Token.Ident _, Token.LBrace -> true
      | _ -> false) ->
      advance p;
      let name = eat_ident p in
      eat p Token.LBrace;
      let rec fields acc =
        if peek p = Token.RBrace then List.rev acc
        else begin
          let base = parse_base_ty p in
          let ty, fname = parse_declarator p base in
          eat p Token.Semi;
          fields ((ty, fname) :: acc)
        end
      in
      let fs = fields [] in
      eat p Token.RBrace;
      eat p Token.Semi;
      Cst.DStruct { sd_name = name; sd_fields = fs }
  | Token.KW_extern ->
      advance p;
      let base = parse_base_ty p in
      let ret = parse_ptr_suffix p base in
      let name = eat_ident p in
      eat p Token.LParen;
      let params = parse_param_types p in
      eat p Token.RParen;
      eat p Token.Semi;
      Cst.DExtern (ret, name, params)
  | _ ->
      let base = parse_base_ty p in
      let ty, name = parse_declarator p base in
      if peek p = Token.LParen then begin
        (* function definition *)
        advance p;
        let params =
          if peek p = Token.RParen then []
          else if peek p = Token.KW_void && peek2 p = Token.RParen then begin
            advance p;
            []
          end
          else
            let rec go acc =
              let prm = parse_param p in
              if peek p = Token.Comma then begin
                advance p;
                go (prm :: acc)
              end
              else List.rev (prm :: acc)
            in
            go []
        in
        eat p Token.RParen;
        if peek p = Token.Semi then begin
          (* forward declaration *)
          advance p;
          Cst.DExtern (ty, name, List.map (fun pr -> pr.Cst.p_ty) params)
        end
        else begin
          eat p Token.LBrace;
          let body = parse_stmts p in
          eat p Token.RBrace;
          Cst.DFunc { fd_ret = ty; fd_name = name; fd_params = params;
                      fd_body = body }
        end
      end
      else begin
        let init =
          if peek p = Token.Assign then begin
            advance p;
            Some (parse_init p)
          end
          else None
        in
        eat p Token.Semi;
        Cst.DGlobal { gd_ty = ty; gd_name = name; gd_init = init }
      end

(** Parse a full translation unit. *)
let parse src : Cst.program =
  let toks = Array.of_list (Lexer.tokenize src) in
  let p = { toks; pos = 0 } in
  let rec go acc =
    if peek p = Token.Eof then List.rev acc else go (parse_decl p :: acc)
  in
  go []
