(** Code generation: IR → (extended) WebAssembly.

    The backend owns the linear-memory layout:

    {v
    0     .. 1024        reserved (null page)
    1024  .. data_end    globals, string literals, static data
    stack_base .. stack_top   shadow stack (grows downward)
    stack_top  .. end         heap (handed to the allocator via the
                               __heap_base / __heap_end globals)
    v}

    When [memsafety] is on, instrumented stack slots are 16-byte
    aligned and tagged on function entry exactly as §4.2 describes: the
    first instrumented slot draws a random tag with [segment.new],
    subsequent slots increment the tag (wrapping in the 4-bit field) and
    claim their memory with [segment.set_tag]; every instrumented slot
    is untagged again before return. A 16-byte untagged guard slot leads
    the frame when the sanitizer asked for one (Fig. 8b).

    When [pauth] is on, taking a function's address emits the Fig. 9
    signing sequence and indirect calls authenticate before truncating
    to a 32-bit table index. *)

open Ir

exception Codegen_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Codegen_error s)) fmt

type options = {
  memsafety : bool;  (** emit segment instructions for sanitised slots *)
  pauth : bool;      (** sign/authenticate function pointers *)
  mem_pages : int64; (** linear memory size *)
  stack_bytes : int; (** shadow-stack reservation *)
}

let default_options =
  { memsafety = false; pauth = false; mem_pages = 80L; stack_bytes = 65536 }

let align_up n a = Int64.mul (Int64.div (Int64.add n (Int64.of_int (a - 1))) (Int64.of_int a)) (Int64.of_int a)

(* Tag field manipulation constants (bits 56-59). *)
let tag_increment = 0x0100_0000_0000_0000L
let tag_field_mask = 0x0f00_0000_0000_0000L

type fn_ctx = {
  prog : program;
  opts : options;
  width : Wasm.Ast.width;           (* pointer width *)
  addr_vt : Wasm.Types.val_type;    (* i32 or i64 *)
  func_index : string -> int;
  type_index : Wasm.Types.func_type -> int;
  (* per-function *)
  fp_local : int;
  slot_offsets : (int * int64) list;    (* slot_id -> frame offset *)
  slot_ptr_locals : (int * int) list;   (* slot_id -> local holding the
                                           tagged pointer *)
  frame_size : int64;
  has_frame : bool;
}

let ptr_const ctx v : Wasm.Ast.instr =
  match ctx.width with
  | Wasm.Ast.W32 -> Wasm.Ast.I32Const (Int64.to_int32 v)
  | Wasm.Ast.W64 -> Wasm.Ast.I64Const v

let slot_offset ctx id =
  match List.assoc_opt id ctx.slot_offsets with
  | Some off -> off
  | None -> fail "unknown slot %d" id

(* Address of a slot's raw frame storage: fp + offset. *)
let raw_slot_addr ctx id =
  let off = slot_offset ctx id in
  if Int64.equal off 0L then [ Wasm.Ast.LocalGet ctx.fp_local ]
  else
    [ Wasm.Ast.LocalGet ctx.fp_local; ptr_const ctx off;
      Wasm.Ast.IBinop (ctx.width, Wasm.Ast.Add) ]

(* Address used by program accesses: the tagged pointer local when the
   slot is instrumented, plain frame storage otherwise. *)
let slot_addr ctx id =
  match List.assoc_opt id ctx.slot_ptr_locals with
  | Some l -> [ Wasm.Ast.LocalGet l ]
  | None -> raw_slot_addr ctx id

let load_instr (mem : mem_ty) (ext : Wasm.Ast.extension) (res : ty) off :
    Wasm.Ast.instr =
  let ma = { Wasm.Ast.offset = off; align = 0 } in
  match (mem, res) with
  | M8, I32 -> Wasm.Ast.Load (Wasm.Types.I32, Some (Wasm.Ast.Pack8, ext), ma)
  | M16, I32 -> Wasm.Ast.Load (Wasm.Types.I32, Some (Wasm.Ast.Pack16, ext), ma)
  | M32, I32 -> Wasm.Ast.Load (Wasm.Types.I32, None, ma)
  | M8, I64 -> Wasm.Ast.Load (Wasm.Types.I64, Some (Wasm.Ast.Pack8, ext), ma)
  | M16, I64 -> Wasm.Ast.Load (Wasm.Types.I64, Some (Wasm.Ast.Pack16, ext), ma)
  | M32, I64 -> Wasm.Ast.Load (Wasm.Types.I64, Some (Wasm.Ast.Pack32, ext), ma)
  | M64, I64 -> Wasm.Ast.Load (Wasm.Types.I64, None, ma)
  | MF32, F32 -> Wasm.Ast.Load (Wasm.Types.F32, None, ma)
  | MF64, F64 -> Wasm.Ast.Load (Wasm.Types.F64, None, ma)
  | _ -> fail "invalid load combination"

let store_instr (mem : mem_ty) (vty : ty) off : Wasm.Ast.instr =
  let ma = { Wasm.Ast.offset = off; align = 0 } in
  match (mem, vty) with
  | M8, I32 -> Wasm.Ast.Store (Wasm.Types.I32, Some Wasm.Ast.Pack8, ma)
  | M16, I32 -> Wasm.Ast.Store (Wasm.Types.I32, Some Wasm.Ast.Pack16, ma)
  | M32, I32 -> Wasm.Ast.Store (Wasm.Types.I32, None, ma)
  | M8, I64 -> Wasm.Ast.Store (Wasm.Types.I64, Some Wasm.Ast.Pack8, ma)
  | M16, I64 -> Wasm.Ast.Store (Wasm.Types.I64, Some Wasm.Ast.Pack16, ma)
  | M32, I64 -> Wasm.Ast.Store (Wasm.Types.I64, Some Wasm.Ast.Pack32, ma)
  | M64, I64 -> Wasm.Ast.Store (Wasm.Types.I64, None, ma)
  | MF32, F32 -> Wasm.Ast.Store (Wasm.Types.F32, None, ma)
  | MF64, F64 -> Wasm.Ast.Store (Wasm.Types.F64, None, ma)
  | _ -> fail "invalid store combination"

let width_of : ty -> Wasm.Ast.width = function
  | I32 | F32 -> Wasm.Ast.W32
  | I64 | F64 -> Wasm.Ast.W64

let table_idx_of ctx name =
  match Ir.table_index ctx.prog name with
  | Some i -> i
  | None -> fail "function %s is not in the table" name

let rec compile_exp ctx (e : exp) : Wasm.Ast.instr list =
  match e with
  | Const (Wasm.Values.I32 v) -> [ Wasm.Ast.I32Const v ]
  | Const (Wasm.Values.I64 v) -> [ Wasm.Ast.I64Const v ]
  | Const (Wasm.Values.F32 v) -> [ Wasm.Ast.F32Const v ]
  | Const (Wasm.Values.F64 v) -> [ Wasm.Ast.F64Const v ]
  | Temp (t, _) -> [ Wasm.Ast.LocalGet t ]
  | Bin (op, ty, a, b) ->
      let w = width_of ty in
      compile_exp ctx a @ compile_exp ctx b
      @ [
          (match op with
          | Ibin o -> Wasm.Ast.IBinop (w, o)
          | Irel o -> Wasm.Ast.IRelop (w, o)
          | Fbin o -> Wasm.Ast.FBinop (w, o)
          | Frel o -> Wasm.Ast.FRelop (w, o));
        ]
  | Eqz (ty, a) -> compile_exp ctx a @ [ Wasm.Ast.ITestop (width_of ty) ]
  | Cvt (op, a) -> compile_exp ctx a @ [ Wasm.Ast.Cvtop op ]
  | Load { mem; ext; res; addr; off } ->
      compile_exp ctx addr @ [ load_instr mem ext res off ]
  | SlotAddr id -> slot_addr ctx id
  | GlobalAddr a -> [ ptr_const ctx a ]
  | FuncRef name ->
      let idx = Int64.of_int (table_idx_of ctx name) in
      if ctx.width = Wasm.Ast.W64 then
        (* Fig. 9: zero-extend the table index to 64 bits, then sign *)
        Wasm.Ast.I64Const idx
        :: (if ctx.opts.pauth then [ Wasm.Ast.PointerSign ] else [])
      else [ Wasm.Ast.I32Const (Int64.to_int32 idx) ]

(* --------------------------------------------------------------- *)
(* Frame prologue / epilogue                                        *)
(* --------------------------------------------------------------- *)

(* Tagging sequence for instrumented slots (§4.2): random tag for the
   first, increment-and-wrap for the rest. [prev_local] holds the last
   tagged pointer. *)
let tag_slots ctx (slots : slot list) ~slot16 : Wasm.Ast.instr list =
  let instrumented = List.filter (fun s -> s.instrument) slots in
  let prev = ref None in
  List.concat_map
    (fun s ->
      let size = Int64.of_int (slot16 s) in
      let ptr_local = List.assoc s.slot_id ctx.slot_ptr_locals in
      let code =
        match !prev with
        | None ->
            (* first slot: segment.new draws a random tag *)
            raw_slot_addr ctx s.slot_id
            @ [ Wasm.Ast.I64Const size; Wasm.Ast.SegmentNew 0L;
                Wasm.Ast.LocalSet ptr_local ]
        | Some prev_local ->
            (* tag = (prev.tag + 1) mod 16; claim via segment.set_tag *)
            [ Wasm.Ast.LocalGet prev_local;
              Wasm.Ast.I64Const tag_increment;
              Wasm.Ast.IBinop (Wasm.Ast.W64, Wasm.Ast.Add);
              Wasm.Ast.I64Const tag_field_mask;
              Wasm.Ast.IBinop (Wasm.Ast.W64, Wasm.Ast.And) ]
            @ raw_slot_addr ctx s.slot_id
            @ [ Wasm.Ast.IBinop (Wasm.Ast.W64, Wasm.Ast.Or);
                Wasm.Ast.LocalSet ptr_local ]
            @ raw_slot_addr ctx s.slot_id
            @ [ Wasm.Ast.LocalGet ptr_local; Wasm.Ast.I64Const size;
                Wasm.Ast.SegmentSetTag 0L ]
      in
      prev := Some ptr_local;
      code)
    instrumented

(* Untag all instrumented slots and return them to the frame
   (segment.set_tag with an untagged pointer). *)
let untag_slots ctx (slots : slot list) ~slot16 : Wasm.Ast.instr list =
  List.concat_map
    (fun s ->
      if not s.instrument then []
      else
        let size = Int64.of_int (slot16 s) in
        raw_slot_addr ctx s.slot_id
        @ raw_slot_addr ctx s.slot_id
        @ [ Wasm.Ast.I64Const size; Wasm.Ast.SegmentSetTag 0L ])
    slots

let sp_global = 0

let prologue ctx (f : func) ~slot16 : Wasm.Ast.instr list =
  if not ctx.has_frame then []
  else
    [ Wasm.Ast.GlobalGet sp_global; ptr_const ctx ctx.frame_size;
      Wasm.Ast.IBinop (ctx.width, Wasm.Ast.Sub);
      Wasm.Ast.LocalTee ctx.fp_local; Wasm.Ast.GlobalSet sp_global ]
    @
    if ctx.opts.memsafety then tag_slots ctx f.fn_slots ~slot16 else []

let epilogue ctx (f : func) ~slot16 : Wasm.Ast.instr list =
  if not ctx.has_frame then []
  else
    (if ctx.opts.memsafety then untag_slots ctx f.fn_slots ~slot16 else [])
    @ [ Wasm.Ast.LocalGet ctx.fp_local; ptr_const ctx ctx.frame_size;
        Wasm.Ast.IBinop (ctx.width, Wasm.Ast.Add);
        Wasm.Ast.GlobalSet sp_global ]

(* --------------------------------------------------------------- *)
(* Statements                                                       *)
(* --------------------------------------------------------------- *)

type label = L_exit | L_cont | L_anon

let break_depth labels =
  let rec go i = function
    | [] -> fail "break outside a loop"
    | L_exit :: _ -> i
    | _ :: tl -> go (i + 1) tl
  in
  go 0 labels

let cont_depth labels =
  let rec go i = function
    | [] -> fail "continue outside a loop"
    | L_cont :: _ -> i
    | _ :: tl -> go (i + 1) tl
  in
  go 0 labels

let rec compile_stmts ctx f ~slot16 ~labels (stmts : stmt list) :
    Wasm.Ast.instr list =
  List.concat_map (compile_stmt ctx f ~slot16 ~labels) stmts

and compile_stmt ctx f ~slot16 ~labels (s : stmt) : Wasm.Ast.instr list =
  match s with
  | Nop_stmt -> []
  | Trap -> [ Wasm.Ast.Unreachable ]
  | Set (t, _, e) -> compile_exp ctx e @ [ Wasm.Ast.LocalSet t ]
  | Store { mem; addr; off; value } ->
      let vty =
        match mem with
        | M8 | M16 | M32 -> (
            (* value width given by the expression *)
            match exp_ty ctx value with I64 -> I64 | _ -> I32)
        | M64 -> I64
        | MF32 -> F32
        | MF64 -> F64
      in
      compile_exp ctx addr @ compile_exp ctx value
      @ [ store_instr mem vty off ]
  | If (c, a, b) ->
      compile_exp ctx c
      @ [ Wasm.Ast.If
            (Wasm.Ast.ValBlock None,
             compile_stmts ctx f ~slot16 ~labels:(L_anon :: labels) a,
             compile_stmts ctx f ~slot16 ~labels:(L_anon :: labels) b) ]
  | ForLoop { cond; step; body; post_test } ->
      let body_labels = L_cont :: L_anon :: L_exit :: labels in
      let body' =
        [ Wasm.Ast.Block
            (Wasm.Ast.ValBlock None,
             compile_stmts ctx f ~slot16 ~labels:body_labels body) ]
      in
      let step_labels = L_anon :: L_exit :: labels in
      let step' = compile_stmts ctx f ~slot16 ~labels:step_labels step in
      let loop_body =
        if post_test then
          body' @ step'
          @ (match cond with
            | Some c ->
                compile_exp ctx c @ [ Wasm.Ast.BrIf 0 ]
            | None -> [ Wasm.Ast.Br 0 ])
        else
          (match cond with
          | Some c ->
              compile_exp ctx c
              @ [ Wasm.Ast.ITestop Wasm.Ast.W32; Wasm.Ast.BrIf 1 ]
          | None -> [])
          @ body' @ step' @ [ Wasm.Ast.Br 0 ]
      in
      [ Wasm.Ast.Block
          (Wasm.Ast.ValBlock None,
           [ Wasm.Ast.Loop (Wasm.Ast.ValBlock None, loop_body) ]) ]
  | Switch { scrut; cases; default } ->
      (* Lowered to the textbook nested-block shape:

           block $exit              ; Break target
             block $default
               block $c_{n-1} ... block $c_0
                 <selector>         ; br_table (dense) or cmp chain
               end ; c_0
               body_0 ; br $exit
               ...
             end ; default block
             default_body
           end ; exit

         Dense case values dispatch through a single br_table — the
         same lowering wasm compilers use for C switches; sparse values
         fall back to a compare chain. *)
      let n = List.length cases in
      let values = List.map fst cases in
      let scrut_i = compile_exp ctx scrut in
      let dense_selector () =
        let vmin = List.fold_left Int64.min (List.hd values) values in
        let vmax = List.fold_left Int64.max (List.hd values) values in
        let range = Int64.to_int (Int64.sub vmax vmin) + 1 in
        if n >= 2 && range <= 4 * n && range <= 256 then
          let slot s =
            let v = Int64.add vmin (Int64.of_int s) in
            let rec idx i = function
              | [] -> n (* default *)
              | v' :: _ when Int64.equal v' v -> i
              | _ :: tl -> idx (i + 1) tl
            in
            idx 0 values
          in
          let d =
            scrut_i
            @ [ Wasm.Ast.I64Const vmin;
                Wasm.Ast.IBinop (Wasm.Ast.W64, Wasm.Ast.Sub) ]
          in
          (* index = d if d <u range else range (the br_table default);
             the scrutinee is a temp, so recomputing d is two cheap
             instructions *)
          Some
            ([ Wasm.Ast.I32Const (Int32.of_int range) ]
            @ d
            @ [ Wasm.Ast.Cvtop Wasm.Ast.I32WrapI64 ]
            @ d
            @ [ Wasm.Ast.I64Const (Int64.of_int range);
                Wasm.Ast.IRelop (Wasm.Ast.W64, Wasm.Ast.GeU);
                Wasm.Ast.Select ]
            @ [ Wasm.Ast.BrTable (List.init range slot, n) ])
        else None
      in
      let selector =
        match (values, dense_selector ()) with
        | _ :: _, Some s -> s
        | _ ->
            (* compare chain: one eq + br_if per case *)
            List.concat
              (List.mapi
                 (fun j v ->
                   scrut_i
                   @ [ Wasm.Ast.I64Const v;
                       Wasm.Ast.IRelop (Wasm.Ast.W64, Wasm.Ast.Eq);
                       Wasm.Ast.BrIf j ])
                 values)
            @ [ Wasm.Ast.Br n ]
      in
      (* build from the inside out *)
      let default_labels = L_exit :: labels in
      let inner = ref selector in
      List.iteri
        (fun j (_, body) ->
          let body_labels =
            List.init (n - 1 - j) (fun _ -> L_anon)
            @ [ L_anon (* default block *) ] @ default_labels
          in
          inner :=
            [ Wasm.Ast.Block (Wasm.Ast.ValBlock None, !inner) ]
            @ compile_stmts ctx f ~slot16 ~labels:body_labels body
            @ [ Wasm.Ast.Br (n - j) ])
        cases;
      [ Wasm.Ast.Block
          (Wasm.Ast.ValBlock None,
           [ Wasm.Ast.Block (Wasm.Ast.ValBlock None, !inner) ]
           @ compile_stmts ctx f ~slot16 ~labels:default_labels default) ]
  | Break -> [ Wasm.Ast.Br (break_depth labels) ]
  | Continue -> [ Wasm.Ast.Br (cont_depth labels) ]
  | Return e ->
      Option.fold ~none:[] ~some:(compile_exp ctx) e
      @ epilogue ctx f ~slot16
      @ [ Wasm.Ast.Return ]
  | Call { dst; callee; args } -> (
      let args' = List.concat_map (compile_exp ctx) args in
      let set_dst =
        match dst with
        | None -> []
        | Some (t, _) -> [ Wasm.Ast.LocalSet t ]
      in
      match callee with
      | Direct name -> args' @ [ Wasm.Ast.Call (ctx.func_index name) ] @ set_dst
      | Indirect { sig_params; sig_ret; fptr } ->
          let ft =
            {
              Wasm.Types.params = List.map ty_to_wasm sig_params;
              results =
                (match sig_ret with None -> [] | Some t -> [ ty_to_wasm t ]);
            }
          in
          let auth =
            if ctx.width = Wasm.Ast.W64 then
              (* Fig. 9: authenticate (strips the signature or traps),
                 then truncate to the 32-bit table index *)
              (if ctx.opts.pauth then [ Wasm.Ast.PointerAuth ] else [])
              @ [ Wasm.Ast.Cvtop Wasm.Ast.I32WrapI64 ]
            else []
          in
          args' @ compile_exp ctx fptr @ auth
          @ [ Wasm.Ast.CallIndirect (ctx.type_index ft) ]
          @ set_dst)
  | SegmentNew { dst; ptr; len } ->
      compile_exp ctx ptr @ compile_exp ctx len
      @ [ Wasm.Ast.SegmentNew 0L; Wasm.Ast.LocalSet dst ]
  | SegmentSetTag { ptr; tagged; len } ->
      compile_exp ctx ptr @ compile_exp ctx tagged @ compile_exp ctx len
      @ [ Wasm.Ast.SegmentSetTag 0L ]
  | SegmentFree { tagged; len } ->
      compile_exp ctx tagged @ compile_exp ctx len
      @ [ Wasm.Ast.SegmentFree 0L ]
  | PointerSign { dst; ptr } ->
      compile_exp ctx ptr @ [ Wasm.Ast.PointerSign; Wasm.Ast.LocalSet dst ]
  | PointerAuth { dst; ptr } ->
      compile_exp ctx ptr @ [ Wasm.Ast.PointerAuth; Wasm.Ast.LocalSet dst ]
  | MemFill { dst; byte; len } ->
      compile_exp ctx dst @ compile_exp ctx byte @ compile_exp ctx len
      @ [ Wasm.Ast.MemoryFill ]
  | MemCopy { dst; src; len } ->
      compile_exp ctx dst @ compile_exp ctx src @ compile_exp ctx len
      @ [ Wasm.Ast.MemoryCopy ]

(* Crude expression typing for store-width selection. *)
and exp_ty ctx : exp -> ty = function
  | Const (Wasm.Values.I32 _) -> I32
  | Const (Wasm.Values.I64 _) -> I64
  | Const (Wasm.Values.F32 _) -> F32
  | Const (Wasm.Values.F64 _) -> F64
  | Temp (_, ty) -> ty
  | Bin ((Irel _ | Frel _), _, _, _) -> I32
  | Bin (_, ty, _, _) -> ty
  | Eqz _ -> I32
  | Cvt (op, _) -> (
      match op with
      | Wasm.Ast.I32WrapI64 | Wasm.Ast.I32TruncF32S | Wasm.Ast.I32TruncF32U
      | Wasm.Ast.I32TruncF64S | Wasm.Ast.I32TruncF64U
      | Wasm.Ast.I32ReinterpretF32 ->
          I32
      | Wasm.Ast.I64ExtendI32S | Wasm.Ast.I64ExtendI32U
      | Wasm.Ast.I64TruncF32S | Wasm.Ast.I64TruncF32U
      | Wasm.Ast.I64TruncF64S | Wasm.Ast.I64TruncF64U
      | Wasm.Ast.I64ReinterpretF64 ->
          I64
      | Wasm.Ast.F32ConvertI32S | Wasm.Ast.F32ConvertI32U
      | Wasm.Ast.F32ConvertI64S | Wasm.Ast.F32ConvertI64U
      | Wasm.Ast.F32DemoteF64 | Wasm.Ast.F32ReinterpretI32 ->
          F32
      | _ -> F64)
  | Load { res; _ } -> res
  | SlotAddr _ | GlobalAddr _ | FuncRef _ ->
      if ctx.width = Wasm.Ast.W64 then I64 else I32

(* --------------------------------------------------------------- *)
(* Temp typing                                                      *)
(* --------------------------------------------------------------- *)

(* Infer each temp's wasm type from its definitions and uses. *)
let temp_types (f : func) : ty array =
  let tys = Array.make (max f.fn_ntemps 1) I32 in
  List.iteri (fun _ (t, ty) -> tys.(t) <- ty) f.fn_params;
  let note () e = match e with Temp (t, ty) -> tys.(t) <- ty | _ -> () in
  ignore (fold_exps note () f.fn_body);
  let rec scan (s : stmt) =
    match s with
    | Set (t, ty, _) -> tys.(t) <- ty
    | Call { dst = Some (t, ty); _ } -> tys.(t) <- ty
    | SegmentNew { dst; _ } | PointerSign { dst; _ } | PointerAuth { dst; _ }
      ->
        tys.(dst) <- I64
    | If (_, a, b) ->
        List.iter scan a;
        List.iter scan b
    | ForLoop { step; body; _ } ->
        List.iter scan step;
        List.iter scan body
    | _ -> ()
  in
  List.iter scan f.fn_body;
  tys

(* --------------------------------------------------------------- *)
(* Module assembly                                                  *)
(* --------------------------------------------------------------- *)

(** Compile an IR program to a wasm module under the given options. *)
let compile ?(opts = default_options) (p : program) : Wasm.Ast.module_ =
  let width = if p.pr_ptr64 then Wasm.Ast.W64 else Wasm.Ast.W32 in
  let addr_vt = if p.pr_ptr64 then Wasm.Types.I64 else Wasm.Types.I32 in
  if opts.memsafety && not p.pr_ptr64 then
    fail "memory safety requires 64-bit pointers (memory64)";
  (* layout *)
  let stack_base = align_up p.pr_data_end 16 in
  let stack_top = Int64.add stack_base (Int64.of_int opts.stack_bytes) in
  let heap_base = stack_top in
  let mem_bytes = Int64.mul opts.mem_pages 65536L in
  if heap_base >= mem_bytes then fail "memory too small for stack layout";
  (* type table *)
  let types = ref [] in
  let type_index ft =
    let rec idx i = function
      | [] ->
          types := !types @ [ ft ];
          i
      | ft' :: _ when Wasm.Types.func_type_equal ft ft' -> i
      | _ :: tl -> idx (i + 1) tl
    in
    idx 0 !types
  in
  (* function indexing: imports first *)
  let externs = p.pr_externs in
  let func_names =
    List.map (fun e -> e.ef_name) externs
    @ List.map (fun f -> f.fn_name) p.pr_funcs
  in
  let func_index name =
    let rec go i = function
      | [] -> fail "unknown function %s" name
      | n :: _ when String.equal n name -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 func_names
  in
  let ft_of_sig params ret =
    {
      Wasm.Types.params = List.map ty_to_wasm params;
      results = (match ret with None -> [] | Some t -> [ ty_to_wasm t ]);
    }
  in
  let imports =
    List.map
      (fun e ->
        {
          Wasm.Ast.im_module = "env";
          im_name = e.ef_name;
          im_type = type_index (ft_of_sig e.ef_params e.ef_ret);
        })
      externs
  in
  (* compile each function *)
  let compile_func (f : func) : Wasm.Ast.func =
    let tys = temp_types f in
    (* frame layout *)
    let slot16 (s : slot) = (s.slot_size + 15) / 16 * 16 in
    let guard = if opts.memsafety && f.fn_needs_guard then 16L else 0L in
    let offsets, frame_end =
      List.fold_left
        (fun (acc, off) (s : slot) ->
          if opts.memsafety then
            let off = align_up off 16 in
            ((s.slot_id, off) :: acc, Int64.add off (Int64.of_int (slot16 s)))
          else
            let a = max s.slot_align 1 in
            let off = align_up off a in
            ((s.slot_id, off) :: acc, Int64.add off (Int64.of_int s.slot_size)))
        ([], guard) f.fn_slots
    in
    let frame_size = align_up frame_end 16 in
    let has_frame = f.fn_slots <> [] in
    (* locals: temps, then fp, then slot-pointer locals *)
    let nparams = List.length f.fn_params in
    let fp_local = f.fn_ntemps in
    let slot_ptr_locals, extra_count =
      if opts.memsafety then
        List.fold_left
          (fun (acc, n) (s : slot) ->
            if s.instrument then ((s.slot_id, f.fn_ntemps + 1 + n) :: acc, n + 1)
            else (acc, n))
          ([], 0) f.fn_slots
      else ([], 0)
    in
    let ctx =
      {
        prog = p;
        opts;
        width;
        addr_vt;
        func_index;
        type_index;
        fp_local;
        slot_offsets = offsets;
        slot_ptr_locals;
        frame_size;
        has_frame;
      }
    in
    let slot16 s = slot16 s in
    let body =
      prologue ctx f ~slot16
      @ compile_stmts ctx f ~slot16 ~labels:[] f.fn_body
      @
      (* fall-through end for void functions *)
      match f.fn_ret with None -> epilogue ctx f ~slot16 | Some _ -> []
    in
    let locals =
      List.init (f.fn_ntemps - nparams) (fun i ->
          ty_to_wasm tys.(nparams + i))
      @ [ addr_vt ] (* fp *)
      @ List.init extra_count (fun _ -> Wasm.Types.I64)
    in
    {
      Wasm.Ast.ftype =
        type_index (ft_of_sig (List.map snd f.fn_params) f.fn_ret);
      locals;
      body;
      fname = Some f.fn_name;
    }
  in
  let funcs = List.map compile_func p.pr_funcs in
  (* data segments, plus the patched heap globals *)
  let extra_data =
    List.filter_map
      (fun (g : global_var) ->
        let le64 v =
          String.init 8 (fun i ->
              Char.chr
                (Int64.to_int
                   (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL)))
        in
        match g.gv_name with
        | "__heap_base" -> Some (g.gv_addr, le64 heap_base)
        | "__heap_end" -> Some (g.gv_addr, le64 mem_bytes)
        | "__stack_top" -> Some (g.gv_addr, le64 stack_top)
        | _ -> None)
      p.pr_globals
  in
  let datas =
    List.map
      (fun (addr, bytes) -> { Wasm.Ast.d_offset = addr; d_bytes = bytes })
      (p.pr_data @ extra_data)
  in
  let table_size = List.length p.pr_table + 1 in
  {
    Wasm.Ast.types = !types;
    imports;
    funcs;
    table =
      Some
        {
          Wasm.Types.tbl_limits =
            { Wasm.Types.min = Int64.of_int table_size;
              max = Some (Int64.of_int table_size) };
        };
    memory =
      Some
        {
          Wasm.Types.mem_idx = (if p.pr_ptr64 then Wasm.Types.Idx64
                                else Wasm.Types.Idx32);
          mem_limits =
            { Wasm.Types.min = opts.mem_pages; max = Some 16384L };
        };
    globals =
      [ { Wasm.Ast.g_type = { Wasm.Types.mut = true; g_type = addr_vt };
          g_init =
            (if p.pr_ptr64 then Wasm.Values.I64 stack_top
             else Wasm.Values.I32 (Int64.to_int32 stack_top)) } ];
    exports =
      List.map
        (fun (f : func) ->
          { Wasm.Ast.ex_name = f.fn_name;
            ex_desc = Wasm.Ast.Func_export (func_index f.fn_name) })
        (List.filter (fun f -> f.fn_export) p.pr_funcs)
      @ [ { Wasm.Ast.ex_name = "memory"; ex_desc = Wasm.Ast.Mem_export 0 } ];
    elems =
      (if p.pr_table = [] then []
       else
         [ { Wasm.Ast.e_offset = 1L;
             e_funcs = List.map func_index p.pr_table } ]);
    datas;
    start = None;
  }

(** The heap region the compiled module's allocator will manage
    (needed by tests and the startup experiment). *)
let heap_layout ?(opts = default_options) (p : program) =
  let stack_base = align_up p.pr_data_end 16 in
  let stack_top = Int64.add stack_base (Int64.of_int opts.stack_bytes) in
  (stack_top, Int64.mul opts.mem_pages 65536L)
