(** The Cage stack sanitizer — paper Algorithm 1.

    Decides, per function, which stack slots must be protected with
    memory segments: those that escape the function plus those indexed
    with a non-statically-verifiable offset. Everything else keeps
    plain, untagged frame storage — the optimisation that keeps the
    paper's stack-safety overhead low.

    Also decides whether the frame needs a leading untagged {e guard
    slot} (paper Fig. 8b): if the slot adjacent to the previous frame is
    itself tagged, two adjacent frames could otherwise draw colliding
    tags, hiding an inter-frame overflow.

    The actual tagging code (a [segment.new] for the first instrumented
    slot, tag-increment + [segment.set_tag] for the rest, and the
    untagging epilogue) is emitted by {!Codegen} for slots this pass
    marked. Running this pass {e after} the optimiser mirrors §6.1: a
    slot deleted by mem2reg-style promotion is never instrumented. *)

open Ir

type stats = {
  total_slots : int;
  instrumented : int;
  escaping : int;
  unsafe_gep : int;
  guards : int;
}

let empty_stats =
  { total_slots = 0; instrumented = 0; escaping = 0; unsafe_gep = 0;
    guards = 0 }

let add a b =
  {
    total_slots = a.total_slots + b.total_slots;
    instrumented = a.instrumented + b.instrumented;
    escaping = a.escaping + b.escaping;
    unsafe_gep = a.unsafe_gep + b.unsafe_gep;
    guards = a.guards + b.guards;
  }

(** Algorithm 1 on one function. [instrument_all] is the ablation knob:
    instrument every slot regardless of the analysis (what a sanitizer
    without the escape/GEP filter would do). *)
let run_func ?(instrument_all = false) (f : func) : stats =
  Escape.analyse_func f;
  List.iter
    (fun s -> s.instrument <- instrument_all || s.escapes || s.unsafe_gep)
    f.fn_slots;
  let instrumented = List.filter (fun s -> s.instrument) f.fn_slots in
  (* Guard needed if the first slot of the frame is tagged (Fig. 8b):
     an untagged first slot already separates this frame from the
     previous one. *)
  f.fn_needs_guard <-
    (match f.fn_slots with
    | first :: _ -> instrumented <> [] && first.instrument
    | [] -> false);
  {
    total_slots = List.length f.fn_slots;
    instrumented = List.length instrumented;
    escaping =
      List.length (List.filter (fun (s : slot) -> s.escapes) f.fn_slots);
    unsafe_gep =
      List.length (List.filter (fun (s : slot) -> s.unsafe_gep) f.fn_slots);
    guards = (if f.fn_needs_guard then 1 else 0);
  }

(** Run over a whole program, returning aggregate statistics. *)
let run ?instrument_all (p : program) : stats =
  List.fold_left
    (fun acc f -> add acc (run_func ?instrument_all f))
    empty_stats p.pr_funcs

let pp_stats ppf s =
  Format.fprintf ppf
    "slots: %d, instrumented: %d (escaping %d, unsafe-GEP %d), guards: %d"
    s.total_slots s.instrumented s.escaping s.unsafe_gep s.guards
