(** Middle-end optimisations.

    These play the role the LLVM pipeline plays in the paper (§6.1): the
    Cage sanitizers run {e after} them, so an allocation the optimiser
    removes is never instrumented. Implemented: constant folding,
    algebraic simplification, branch folding, dead-temp elimination and
    dead-slot elimination. *)

open Ir

let is_zero = function
  | Const (Wasm.Values.I32 0l) | Const (Wasm.Values.I64 0L) -> true
  | _ -> false

let is_one = function
  | Const (Wasm.Values.I32 1l) | Const (Wasm.Values.I64 1L) -> true
  | _ -> false

let fold_ibin op ty a b =
  let open Wasm.Ast in
  let wrap32 f a b = Wasm.Values.I32 (f (Int64.to_int32 a) (Int64.to_int32 b)) in
  match (ty, op) with
  | _, (DivS | DivU | RemS | RemU) when Int64.equal b 0L -> None
  | I32, Add -> Some (wrap32 Int32.add a b)
  | I32, Sub -> Some (wrap32 Int32.sub a b)
  | I32, Mul -> Some (wrap32 Int32.mul a b)
  | I32, And -> Some (wrap32 Int32.logand a b)
  | I32, Or -> Some (wrap32 Int32.logor a b)
  | I32, Xor -> Some (wrap32 Int32.logxor a b)
  | I32, Shl ->
      Some (Wasm.Values.I32
              (Int32.shift_left (Int64.to_int32 a)
                 (Int64.to_int (Int64.logand b 31L))))
  | I64, Add -> Some (Wasm.Values.I64 (Int64.add a b))
  | I64, Sub -> Some (Wasm.Values.I64 (Int64.sub a b))
  | I64, Mul -> Some (Wasm.Values.I64 (Int64.mul a b))
  | I64, And -> Some (Wasm.Values.I64 (Int64.logand a b))
  | I64, Or -> Some (Wasm.Values.I64 (Int64.logor a b))
  | I64, Xor -> Some (Wasm.Values.I64 (Int64.logxor a b))
  | I64, Shl ->
      Some (Wasm.Values.I64
              (Int64.shift_left a (Int64.to_int (Int64.logand b 63L))))
  | _ -> None

let const_bits = function
  | Const (Wasm.Values.I32 v) -> Some (Int64.of_int32 v)
  | Const (Wasm.Values.I64 v) -> Some v
  | _ -> None

(** Bottom-up constant folding and algebraic simplification. *)
let rec fold_exp (e : exp) : exp =
  match e with
  | Const _ | Temp _ | SlotAddr _ | GlobalAddr _ | FuncRef _ -> e
  | Eqz (ty, a) -> (
      let a = fold_exp a in
      match const_bits a with
      | Some v ->
          Const (Wasm.Values.I32 (if Int64.equal v 0L then 1l else 0l))
      | None -> (
          (* eqz(eqz(relop)) is the relop itself: relops are 0/1 *)
          match a with
          | Eqz (_, (Bin ((Irel _ | Frel _), _, _, _) as inner)) -> inner
          | Eqz (_, (Eqz _ as inner)) -> inner
          | _ -> Eqz (ty, a)))
  | Cvt (op, a) -> (
      let a = fold_exp a in
      match (op, a) with
      | Wasm.Ast.I64ExtendI32S, Const (Wasm.Values.I32 v) ->
          Const (Wasm.Values.I64 (Int64.of_int32 v))
      | Wasm.Ast.I64ExtendI32U, Const (Wasm.Values.I32 v) ->
          Const (Wasm.Values.I64 (Int64.logand (Int64.of_int32 v) 0xffffffffL))
      | Wasm.Ast.I32WrapI64, Const (Wasm.Values.I64 v) ->
          Const (Wasm.Values.I32 (Int64.to_int32 v))
      | Wasm.Ast.F64ConvertI32S, Const (Wasm.Values.I32 v) ->
          Const (Wasm.Values.F64 (Int32.to_float v))
      | Wasm.Ast.F64ConvertI64S, Const (Wasm.Values.I64 v) ->
          Const (Wasm.Values.F64 (Int64.to_float v))
      | _ -> Cvt (op, a))
  | Load { mem; ext; res; addr; off } -> (
      let addr = fold_exp addr in
      (* fold constant address components into the static offset *)
      match addr with
      | Bin (Ibin Wasm.Ast.Add, _, base, Const c) ->
          let v =
            match c with
            | Wasm.Values.I32 v -> Int64.of_int32 v
            | Wasm.Values.I64 v -> v
            | _ -> 0L
          in
          if v >= 0L && v < 0x10000000L then
            Load { mem; ext; res; addr = base; off = Int64.add off v }
          else Load { mem; ext; res; addr; off }
      | _ -> Load { mem; ext; res; addr; off })
  | Bin (op, ty, a, b) -> (
      let a = fold_exp a and b = fold_exp b in
      match (op, const_bits a, const_bits b) with
      | Ibin iop, Some va, Some vb -> (
          match fold_ibin iop ty va vb with
          | Some v -> Const v
          | None -> Bin (op, ty, a, b))
      | Ibin Wasm.Ast.Add, _, _ when is_zero b -> a
      | Ibin Wasm.Ast.Add, _, _ when is_zero a -> b
      | Ibin Wasm.Ast.Sub, _, _ when is_zero b -> a
      | Ibin Wasm.Ast.Mul, _, _ when is_one b -> a
      | Ibin Wasm.Ast.Mul, _, _ when is_one a -> b
      | Ibin Wasm.Ast.Mul, _, _ when is_zero a || is_zero b ->
          Const
            (match ty with
            | I32 -> Wasm.Values.I32 0l
            | _ -> Wasm.Values.I64 0L)
      | Irel rel, Some va, Some vb ->
          let c =
            let open Wasm.Ast in
            match (ty, rel) with
            | I32, _ ->
                let a32 = Int64.to_int32 va and b32 = Int64.to_int32 vb in
                (match rel with
                | Eq -> Int32.equal a32 b32
                | Ne -> not (Int32.equal a32 b32)
                | LtS -> Int32.compare a32 b32 < 0
                | GtS -> Int32.compare a32 b32 > 0
                | LeS -> Int32.compare a32 b32 <= 0
                | GeS -> Int32.compare a32 b32 >= 0
                | LtU -> Int32.unsigned_compare a32 b32 < 0
                | GtU -> Int32.unsigned_compare a32 b32 > 0
                | LeU -> Int32.unsigned_compare a32 b32 <= 0
                | GeU -> Int32.unsigned_compare a32 b32 >= 0)
            | _, _ -> (
                match rel with
                | Eq -> Int64.equal va vb
                | Ne -> not (Int64.equal va vb)
                | LtS -> Int64.compare va vb < 0
                | GtS -> Int64.compare va vb > 0
                | LeS -> Int64.compare va vb <= 0
                | GeS -> Int64.compare va vb >= 0
                | LtU -> Int64.unsigned_compare va vb < 0
                | GtU -> Int64.unsigned_compare va vb > 0
                | LeU -> Int64.unsigned_compare va vb <= 0
                | GeU -> Int64.unsigned_compare va vb >= 0)
          in
          Const (Wasm.Values.I32 (if c then 1l else 0l))
      | _ -> Bin (op, ty, a, b))

and fold_exp_not (e : exp) : exp =
  (* negate a relational expression *)
  let open Wasm.Ast in
  match e with
  | Bin (Irel rel, ty, a, b) ->
      let neg =
        match rel with
        | Eq -> Ne | Ne -> Eq | LtS -> GeS | GeS -> LtS | GtS -> LeS
        | LeS -> GtS | LtU -> GeU | GeU -> LtU | GtU -> LeU | LeU -> GtU
      in
      Bin (Irel neg, ty, a, b)
  | e -> Eqz (I32, e)

(** Fold constants throughout a function, simplifying branches on
    constant conditions. *)
let fold_func (f : func) =
  let rec fold_stmt (s : stmt) : stmt list =
    match s with
    | Set (t, ty, e) -> [ Set (t, ty, fold_exp e) ]
    | Store { mem; addr; off; value } -> (
        let addr = fold_exp addr and value = fold_exp value in
        match addr with
        | Bin (Ibin Wasm.Ast.Add, _, base, Const c) ->
            let v =
              match c with
              | Wasm.Values.I32 v -> Int64.of_int32 v
              | Wasm.Values.I64 v -> v
              | _ -> 0L
            in
            if v >= 0L && v < 0x10000000L then
              [ Store { mem; addr = base; off = Int64.add off v; value } ]
            else [ Store { mem; addr; off; value } ]
        | _ -> [ Store { mem; addr; off; value } ])
    | If (c, a, b) -> (
        let c = fold_exp c in
        let a = List.concat_map fold_stmt a in
        let b = List.concat_map fold_stmt b in
        match const_bits c with
        | Some v -> if Int64.equal v 0L then b else a
        | None -> [ If (c, a, b) ])
    | ForLoop { cond; step; body; post_test } ->
        let cond = Option.map fold_exp cond in
        (match cond with
        | Some c when is_zero c && not post_test -> []
        | _ ->
            [ ForLoop
                { cond;
                  step = List.concat_map fold_stmt step;
                  body = List.concat_map fold_stmt body;
                  post_test } ])
    | Return e -> [ Return (Option.map fold_exp e) ]
    | Call c -> [ Call { c with args = List.map fold_exp c.args } ]
    | SegmentNew s ->
        [ SegmentNew { s with ptr = fold_exp s.ptr; len = fold_exp s.len } ]
    | SegmentSetTag s ->
        [ SegmentSetTag
            { ptr = fold_exp s.ptr; tagged = fold_exp s.tagged;
              len = fold_exp s.len } ]
    | SegmentFree s ->
        [ SegmentFree { tagged = fold_exp s.tagged; len = fold_exp s.len } ]
    | PointerSign s -> [ PointerSign { s with ptr = fold_exp s.ptr } ]
    | PointerAuth s -> [ PointerAuth { s with ptr = fold_exp s.ptr } ]
    | MemFill s ->
        [ MemFill
            { dst = fold_exp s.dst; byte = fold_exp s.byte;
              len = fold_exp s.len } ]
    | MemCopy s ->
        [ MemCopy
            { dst = fold_exp s.dst; src = fold_exp s.src;
              len = fold_exp s.len } ]
    | Switch { scrut; cases; default } -> (
        let scrut = fold_exp scrut in
        let cases =
          List.map (fun (v, b) -> (v, List.concat_map fold_stmt b)) cases
        in
        let default = List.concat_map fold_stmt default in
        match const_bits scrut with
        | Some v -> (
            (* constant scrutinee: keep only the taken branch *)
            match List.assoc_opt v cases with
            | Some body -> body
            | None -> default)
        | None -> [ Switch { scrut; cases; default } ])
    | (Break | Continue | Trap | Nop_stmt) as s -> [ s ]
  in
  f.fn_body <- List.concat_map fold_stmt f.fn_body

(** Remove assignments to temps that are never read. Safe because IR
    expressions are pure. *)
let dead_temp_elim (f : func) =
  let used = Hashtbl.create 64 in
  let note_exp () e =
    match e with Temp (t, _) -> Hashtbl.replace used t () | _ -> ()
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.reset used;
    ignore (fold_exps note_exp () f.fn_body);
    f.fn_body <-
      map_stmts
        (fun s ->
          match s with
          | Set (t, _, _)
            when (not (Hashtbl.mem used t))
                 && not (List.exists (fun (p, _) -> p = t) f.fn_params) ->
              changed := true;
              []
          | s -> [ s ])
        f.fn_body
  done

(* Slot ids appearing anywhere in an expression. *)
let slot_ids_of_exp e =
  Ir.fold_exp
    (fun acc e -> match e with SlotAddr id -> id :: acc | _ -> acc)
    [] e

(** Dead-store elimination for write-only slots: a slot that is never
    loaded from and never escapes is removed along with its stores —
    what LLVM's DSE does to a never-read alloca (and relies on the same
    no-UB assumption for dynamically indexed stores). *)
let dead_store_elim (f : func) =
  (* classify slot uses: any appearance outside a store-address makes
     the slot live *)
  let live = Hashtbl.create 16 in
  let mark_exp e =
    List.iter (fun id -> Hashtbl.replace live id ()) (slot_ids_of_exp e)
  in
  let rec scan (s : stmt) =
    match s with
    | Store { addr; value; _ } ->
        (* the address itself keeps nothing alive; the stored value and
           any index sub-expressions do *)
        mark_exp value;
        (match addr with
        | SlotAddr _ -> ()
        | Bin (_, _, SlotAddr _, idx) | Bin (_, _, idx, SlotAddr _) ->
            mark_exp idx
        | e -> mark_exp e)
    | Set (_, _, e) -> mark_exp e
    | If (c, a, b) ->
        mark_exp c;
        List.iter scan a;
        List.iter scan b
    | ForLoop { cond; step; body; _ } ->
        Option.iter mark_exp cond;
        List.iter scan step;
        List.iter scan body
    | Return e -> Option.iter mark_exp e
    | Call { args; callee; _ } ->
        (match callee with
        | Indirect { fptr; _ } -> mark_exp fptr
        | Direct _ -> ());
        List.iter mark_exp args
    | SegmentNew { ptr; len; _ } -> mark_exp ptr; mark_exp len
    | SegmentSetTag { ptr; tagged; len } ->
        mark_exp ptr; mark_exp tagged; mark_exp len
    | SegmentFree { tagged; len } -> mark_exp tagged; mark_exp len
    | PointerSign { ptr; _ } | PointerAuth { ptr; _ } -> mark_exp ptr
    | MemFill { dst; byte; len } -> mark_exp dst; mark_exp byte; mark_exp len
    | MemCopy { dst; src; len } -> mark_exp dst; mark_exp src; mark_exp len
    | Switch { scrut; cases; default } ->
        mark_exp scrut;
        List.iter (fun (_, b) -> List.iter scan b) cases;
        List.iter scan default
    | Break | Continue | Trap | Nop_stmt -> ()
  in
  List.iter scan f.fn_body;
  let dead id = not (Hashtbl.mem live id) in
  f.fn_body <-
    map_stmts
      (fun s ->
        match s with
        | Store { addr; _ } -> (
            match slot_ids_of_exp addr with
            | [ id ] when dead id -> []
            | _ -> [ s ])
        | s -> [ s ])
      f.fn_body

(** Remove stack slots whose address is never materialised. *)
let dead_slot_elim (f : func) =
  dead_store_elim f;
  let used = Hashtbl.create 16 in
  let note () e =
    match e with SlotAddr id -> Hashtbl.replace used id () | _ -> ()
  in
  ignore (fold_exps note () f.fn_body);
  f.fn_slots <- List.filter (fun s -> Hashtbl.mem used s.slot_id) f.fn_slots

(** The standard pipeline: fold → dead-temp → dead-slot, iterated
    once more for the slots folding exposes. *)
let run_func (f : func) =
  fold_func f;
  dead_temp_elim f;
  dead_slot_elim f;
  fold_func f;
  dead_temp_elim f

let run (p : program) = List.iter run_func p.pr_funcs
