lib/libc/wasi.ml: Arch Buffer Char Int32 Int64 Printf Wasm
