lib/libc/source.ml: Cage
