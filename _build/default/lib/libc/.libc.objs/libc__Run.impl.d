lib/libc/run.ml: Cage Int32 Minic Source Wasi Wasm
