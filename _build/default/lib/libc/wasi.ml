(** Host-side system interface — the runtime half of the libc.

    Provides the [env.*] imports MiniC programs declare via
    {!Source.host_decls}: console output (captured in a buffer so tests
    can assert on it), a deterministic monotonic clock and a
    deterministic PRNG. *)

exception Proc_exit of int

type t = {
  out : Buffer.t;
  mutable clock : int64;
  mutable rand_state : int64;
}

let create () = { out = Buffer.create 256; clock = 0L; rand_state = 0x9e3779b9L }

let output t = Buffer.contents t.out
let clear t = Buffer.clear t.out

(* Read a NUL-terminated string out of the instance memory; guest
   pointers may carry MTE tags in the upper bits. *)
let read_cstr (inst : Wasm.Instance.t) (p : int64) =
  let mem = Wasm.Instance.memory inst in
  let addr = Arch.Ptr.address p in
  let buf = Buffer.create 32 in
  let rec go a =
    let c = Wasm.Memory.load_byte mem a in
    if c <> 0 then begin
      Buffer.add_char buf (Char.chr c);
      go (Int64.add a 1L)
    end
  in
  (try go addr with Wasm.Memory.Out_of_bounds _ -> ());
  Buffer.contents buf

let ptr_arg (inst : Wasm.Instance.t) (v : Wasm.Values.t) =
  ignore inst;
  match v with
  | Wasm.Values.I64 p -> p
  | Wasm.Values.I32 p -> Int64.logand (Int64.of_int32 p) 0xffffffffL
  | _ -> raise (Wasm.Instance.Trap "host: expected pointer argument")

(** The import list to pass to [Exec.instantiate]. *)
let imports t : (string * string * Wasm.Instance.host_func) list =
  [
    ( "env", "print_i64",
      fun _ args ->
        (match args with
        | [ Wasm.Values.I64 v ] ->
            Buffer.add_string t.out (Int64.to_string v);
            Buffer.add_char t.out '\n'
        | _ -> raise (Wasm.Instance.Trap "print_i64: bad arguments"));
        [] );
    ( "env", "print_f64",
      fun _ args ->
        (match args with
        | [ Wasm.Values.F64 v ] ->
            Buffer.add_string t.out (Printf.sprintf "%.6f\n" v)
        | _ -> raise (Wasm.Instance.Trap "print_f64: bad arguments"));
        [] );
    ( "env", "print_str",
      fun inst args ->
        (match args with
        | [ v ] ->
            Buffer.add_string t.out (read_cstr inst (ptr_arg inst v));
            Buffer.add_char t.out '\n'
        | _ -> raise (Wasm.Instance.Trap "print_str: bad arguments"));
        [] );
    ( "env", "print_char",
      fun _ args ->
        (match args with
        | [ Wasm.Values.I32 c ] ->
            Buffer.add_char t.out (Char.chr (Int32.to_int c land 0xff))
        | _ -> raise (Wasm.Instance.Trap "print_char: bad arguments"));
        [] );
    ( "env", "proc_exit",
      fun _ args ->
        match args with
        | [ Wasm.Values.I32 code ] -> raise (Proc_exit (Int32.to_int code))
        | _ -> raise (Wasm.Instance.Trap "proc_exit: bad arguments") );
    ( "env", "clock_ns",
      fun _ _ ->
        t.clock <- Int64.add t.clock 1000L;
        [ Wasm.Values.I64 t.clock ] );
    ( "env", "host_rand",
      fun _ _ ->
        (* xorshift64* : deterministic across runs *)
        let x = t.rand_state in
        let x = Int64.logxor x (Int64.shift_left x 13) in
        let x = Int64.logxor x (Int64.shift_right_logical x 7) in
        let x = Int64.logxor x (Int64.shift_left x 17) in
        t.rand_state <- x;
        [ Wasm.Values.I64 x ] );
  ]
