(** The MiniC libc — the analogue of the paper's modified wasi-libc
    (§6.2).

    Two allocator builds exist: {!malloc_hardened} creates a memory
    segment per allocation (Fig. 8a: a 16-byte untagged metadata header
    leads every chunk, so adjacent allocations can never share a tag
    with their neighbour across the header), frees with [segment.free]
    (catching use-after-free and double-free), and returns tagged
    pointers. {!malloc_plain} is the same allocator without segments,
    used by the baseline configurations.

    Everything here is MiniC source compiled by our own toolchain into
    the guest — the allocator runs {e inside} the sandbox, as wasi-libc
    does. *)

(* Shared declarations: the backend patches __heap_base/__heap_end. *)
let heap_globals = {|
long __heap_base = 0;
long __heap_end = 0;
long __brk = 0;
long __free_list = 0;
|}

(* memcpy & friends in terms of the bulk-memory builtins. *)
let string_funcs = {|
void *memset(void *dst, int c, unsigned long n) {
  __builtin_memset((long)dst, c, (long)n);
  return dst;
}

void *memcpy(void *dst, void *src, unsigned long n) {
  __builtin_memcpy((long)dst, (long)src, (long)n);
  return dst;
}

int memcmp(char *a, char *b, unsigned long n) {
  unsigned long i = 0;
  while (i < n) {
    if (a[i] != b[i]) { return (int)a[i] - (int)b[i]; }
    i = i + 1;
  }
  return 0;
}

unsigned long strlen(char *s) {
  unsigned long n = 0;
  while (s[n] != 0) { n = n + 1; }
  return n;
}

/* The classic unsafe strcpy: no bounds, exactly what Table 2's
   out-of-bounds CVEs exploit. */
char *strcpy(char *dst, char *src) {
  unsigned long i = 0;
  while (src[i] != 0) {
    dst[i] = src[i];
    i = i + 1;
  }
  dst[i] = 0;
  return dst;
}

char *strncpy(char *dst, char *src, unsigned long n) {
  unsigned long i = 0;
  while (i < n && src[i] != 0) {
    dst[i] = src[i];
    i = i + 1;
  }
  while (i < n) { dst[i] = 0; i = i + 1; }
  return dst;
}

int strcmp(char *a, char *b) {
  unsigned long i = 0;
  while (a[i] != 0 && a[i] == b[i]) { i = i + 1; }
  return (int)a[i] - (int)b[i];
}
|}

(* Chunk layout (both variants):
     [-16] long size        (payload bytes, multiple of 16)
     [ -8] long next        (free-list link when free)
     [  0] payload
   The 16-byte header is never tagged: it is the allocator-metadata
   guard of Fig. 8a. *)
let malloc_core = {|
long __chunk_init() {
  if (__brk == 0) { __brk = __heap_base; }
  return __brk;
}

long __chunk_carve(long need) {
  /* first-fit over the free list */
  long prev = 0;
  long cur = __free_list;
  while (cur != 0) {
    long *hdr = (long *)(cur - 16);
    long sz = hdr[0];
    if (sz >= need) {
      long nxt = hdr[1];
      if (prev == 0) { __free_list = nxt; }
      else {
        long *ph = (long *)(prev - 16);
        ph[1] = nxt;
      }
      /* split when the remainder can hold a header + 16 bytes */
      if (sz - need >= 32) {
        long rest = cur + need + 16;
        long *rh = (long *)(rest - 16);
        rh[0] = sz - need - 16;
        rh[1] = __free_list;
        __free_list = rest;
        hdr[0] = need;
      }
      return cur;
    }
    prev = cur;
    cur = hdr[1];
  }
  /* extend the wilderness */
  long top = __chunk_init();
  long payload = top + 16;
  if (payload + need > __heap_end) { return 0; }
  __brk = payload + need;
  long *hdr = (long *)top;
  hdr[0] = need;
  hdr[1] = 0;
  return payload;
}
|}

let malloc_hardened = malloc_core ^ {|
void *malloc(unsigned long n) {
  if (n == 0) { n = 1; }
  long need = ((long)n + 15) & ~15;
  long payload = __chunk_carve(need);
  if (payload == 0) { return (void *)0; }
  /* create the segment: draws a random tag, tags the payload, zeroes
     it, and returns the tagged pointer (paper, heap safety) */
  return (void *)__builtin_segment_new(payload, need);
}

void free(void *p) {
  if (p == 0) { return; }
  long tagged = (long)p;
  long addr = tagged & 0xffffffffffff;
  long *hdr = (long *)(addr - 16);
  long sz = hdr[0];
  /* retags the segment; traps on double-free or a forged pointer */
  __builtin_segment_free(tagged, sz);
  hdr[1] = __free_list;
  __free_list = addr;
}

void *realloc(void *p, unsigned long n) {
  if (p == 0) { return malloc(n); }
  long addr = (long)p & 0xffffffffffff;
  long *hdr = (long *)(addr - 16);
  long old = hdr[0];
  void *q = malloc(n);
  if (q == 0) { return (void *)0; }
  long copy = old;
  if ((long)n < copy) { copy = (long)n; }
  __builtin_memcpy((long)q, (long)p, copy);
  free(p);
  return q;
}

void *calloc(unsigned long count, unsigned long size) {
  /* segment.new already zeroes the allocation */
  return malloc(count * size);
}
|}

let malloc_plain = malloc_core ^ {|
void *malloc(unsigned long n) {
  if (n == 0) { n = 1; }
  long need = ((long)n + 15) & ~15;
  long payload = __chunk_carve(need);
  if (payload == 0) { return (void *)0; }
  return (void *)payload;
}

void free(void *p) {
  if (p == 0) { return; }
  long addr = (long)p;
  long *hdr = (long *)(addr - 16);
  hdr[1] = __free_list;
  __free_list = addr;
}

void *realloc(void *p, unsigned long n) {
  if (p == 0) { return malloc(n); }
  long addr = (long)p;
  long *hdr = (long *)(addr - 16);
  long old = hdr[0];
  void *q = malloc(n);
  if (q == 0) { return (void *)0; }
  long copy = old;
  if ((long)n < copy) { copy = (long)n; }
  __builtin_memcpy((long)q, (long)p, copy);
  free(p);
  return q;
}

void *calloc(unsigned long count, unsigned long size) {
  void *p = malloc(count * size);
  if (p != 0) { __builtin_memset((long)p, 0, (long)(count * size)); }
  return p;
}
|}

(* Host I/O declarations (resolved by Libc.Wasi). *)
let host_decls = {|
extern void print_i64(long v);
extern void print_f64(double v);
extern void print_str(char *s);
extern void print_char(int c);
extern void proc_exit(int code);
extern long clock_ns();
extern long host_rand();
|}

(** The libc prelude for a given configuration. [hardened] selects the
    segment-aware allocator (Cage configurations); the plain allocator
    serves the baselines. *)
let prelude ~hardened =
  heap_globals ^ host_decls ^ string_funcs
  ^ (if hardened then malloc_hardened else malloc_plain)

(** Prelude matching a Table 3 runtime configuration. *)
let prelude_of_config (cfg : Cage.Config.t) =
  prelude ~hardened:(cfg.internal_safety && cfg.ptr64)
