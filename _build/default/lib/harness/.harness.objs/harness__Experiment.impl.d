lib/harness/experiment.ml: Arch Cage Format Int64 Libc List Minic Option Polybench Printf Random Report Stackbench String Wasm Workloads
