(** Module validation.

    The standard WebAssembly validation algorithm (operand-type stack
    with unknowns plus a control-frame stack), extended with the Cage
    typing rules of paper Fig. 10:

    {v
    segment.new o     : [i64 i64] -> [i64]      (requires memory, wasm64)
    segment.set_tag o : [i64 i64 i64] -> []
    segment.free o    : [i64 i64] -> []
    i64.pointer_sign  : [i64] -> [i64]
    i64.pointer_auth  : [i64] -> [i64]
    v}

    Cage instructions are rejected unless the [cage] feature is enabled,
    and additionally require the module's memory to use 64-bit indices
    (the extension builds on memory64, paper §4.2). *)

exception Invalid of string
(** Raised internally; {!validate} catches it and returns [Error]. *)

val validate : ?cage:bool -> Ast.module_ -> (unit, string) result
(** Validate a module: memory/table limits, global initialisers,
    import/export/element/start indices, and every function body under
    its declared type. [cage] (default [true]) enables the extension
    instructions. *)
