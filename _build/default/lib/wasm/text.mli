(** WAT-style text format: printer and parser.

    The dialect is the flat (non-folded) instruction syntax, extended
    with the Cage instructions under their paper names ([segment.new],
    [segment.set_tag], [segment.free], [i64.pointer_sign],
    [i64.pointer_auth]). [parse (to_string m)] equals [m] (function
    debug names included), so [.wat] files are a first-class
    interchange format for the toolchain ([cagec --emit-wat],
    [cage_run file.wat]). *)

exception Parse_error of string

val instr : indent:int -> Format.formatter -> Ast.instr -> unit
(** Print one instruction (recursively for blocks). *)

val module_ : Format.formatter -> Ast.module_ -> unit
(** Print a whole module. *)

val to_string : Ast.module_ -> string

val parse : string -> Ast.module_
(** Parse a module in the dialect {!module_} prints (supports [;;]
    comments and [\xx] string escapes).
    @raise Parse_error on malformed input. The result is {e not}
    validated. *)
