(** Abstract syntax of (extended) WebAssembly.

    The instruction set covers the full wasm MVP numeric/control/memory
    core (minus SIMD and reference types), the memory64 extension, and
    the five Cage instructions of paper Fig. 7:

    - [segment.new o], [segment.set_tag o], [segment.free o]
    - [i64.pointer_sign], [i64.pointer_auth] *)

type width = W32 | W64

type iunop = Clz | Ctz | Popcnt
type ibinop =
  | Add | Sub | Mul | DivS | DivU | RemS | RemU
  | And | Or | Xor | Shl | ShrS | ShrU | Rotl | Rotr

type irelop = Eq | Ne | LtS | LtU | GtS | GtU | LeS | LeU | GeS | GeU

type funop = Neg | Abs | Ceil | Floor | Trunc | Nearest | Sqrt
type fbinop = FAdd | FSub | FMul | FDiv | FMin | FMax | Copysign
type frelop = FEq | FNe | FLt | FGt | FLe | FGe

(** Conversions, named [<dst>.<op>_<src>] as in the spec. *)
type cvtop =
  | I32WrapI64
  | I64ExtendI32S
  | I64ExtendI32U
  | I32TruncF32S | I32TruncF32U | I32TruncF64S | I32TruncF64U
  | I64TruncF32S | I64TruncF32U | I64TruncF64S | I64TruncF64U
  | F32ConvertI32S | F32ConvertI32U | F32ConvertI64S | F32ConvertI64U
  | F64ConvertI32S | F64ConvertI32U | F64ConvertI64S | F64ConvertI64U
  | F32DemoteF64
  | F64PromoteF32
  | I32ReinterpretF32 | I64ReinterpretF64
  | F32ReinterpretI32 | F64ReinterpretI64

(** Storage size for loads/stores narrower than the value type. *)
type pack_size = Pack8 | Pack16 | Pack32
type extension = SX | ZX

type memarg = { offset : int64; align : int }

(** Block types: Cage programs only need the MVP shorthand forms. *)
type block_type = ValBlock of Types.val_type option

type instr =
  | Unreachable
  | Nop
  | Block of block_type * instr list
  | Loop of block_type * instr list
  | If of block_type * instr list * instr list
  | Br of int
  | BrIf of int
  | BrTable of int list * int
  | Return
  | Call of int
  | CallIndirect of int  (** type index; table 0 *)
  | Drop
  | Select
  | LocalGet of int
  | LocalSet of int
  | LocalTee of int
  | GlobalGet of int
  | GlobalSet of int
  | I32Const of int32
  | I64Const of int64
  | F32Const of float
  | F64Const of float
  | IUnop of width * iunop
  | IBinop of width * ibinop
  | ITestop of width  (** eqz *)
  | IRelop of width * irelop
  | FUnop of width * funop
  | FBinop of width * fbinop
  | FRelop of width * frelop
  | Cvtop of cvtop
  | Load of Types.num_type * (pack_size * extension) option * memarg
  | Store of Types.num_type * pack_size option * memarg
  | MemorySize
  | MemoryGrow
  | MemoryFill  (** bulk-memory: dst value len -> () *)
  | MemoryCopy  (** bulk-memory: dst src len -> () *)
  (* --- Cage extension (paper Fig. 7) --- *)
  | SegmentNew of int64  (** static offset [o]: ptr len -> tagged ptr *)
  | SegmentSetTag of int64  (** ptr tagged-ptr len -> () *)
  | SegmentFree of int64  (** tagged-ptr len -> () *)
  | PointerSign  (** i64 -> i64 *)
  | PointerAuth  (** i64 -> i64, traps on bad signature *)

(** A function definition: its type index, extra locals, and body. *)
type func = {
  ftype : int;
  locals : Types.val_type list;
  body : instr list;
  fname : string option;  (** for diagnostics *)
}

type export_desc = Func_export of int | Mem_export of int
type export = { ex_name : string; ex_desc : export_desc }

(** An import of a host function. *)
type import = { im_module : string; im_name : string; im_type : int }

type global = { g_type : Types.global_type; g_init : Values.t }

(** Active element segment: function indices placed in the table at
    instantiation. *)
type elem = { e_offset : int64; e_funcs : int list }

(** Active data segment. *)
type data = { d_offset : int64; d_bytes : string }

type module_ = {
  types : Types.func_type list;
  imports : import list;  (** imported functions come first in index space *)
  funcs : func list;
  table : Types.table_type option;
  memory : Types.mem_type option;
  globals : global list;
  exports : export list;
  elems : elem list;
  datas : data list;
  start : int option;
}

let empty_module = {
  types = [];
  imports = [];
  funcs = [];
  table = None;
  memory = None;
  globals = [];
  exports = [];
  elems = [];
  datas = [];
  start = None;
}

(** Number of imported functions, i.e. the index of the first
    module-defined function. *)
let num_imports m = List.length m.imports

let func_type_of (m : module_) i = List.nth m.types i

(** The type of function index [i] (imports first, then local funcs). *)
let type_of_func (m : module_) i =
  let ni = num_imports m in
  if i < ni then func_type_of m (List.nth m.imports i).im_type
  else func_type_of m (List.nth m.funcs (i - ni)).ftype

(** Whether an instruction is a Cage extension instruction (used by the
    validator to reject them when the feature is disabled). *)
let is_cage_instr = function
  | SegmentNew _ | SegmentSetTag _ | SegmentFree _ | PointerSign
  | PointerAuth ->
      true
  | _ -> false
