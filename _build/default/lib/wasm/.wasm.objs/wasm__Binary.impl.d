lib/wasm/binary.ml: Ast Buffer Char Format Int32 Int64 List Option String Types Values
