lib/wasm/exec.ml: Arch Array Ast Float Format Instance Int32 Int64 List Memory Option Printf Random String Types Values
