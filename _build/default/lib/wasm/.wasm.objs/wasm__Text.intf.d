lib/wasm/text.mli: Ast Format
