lib/wasm/ast.ml: List Types Values
