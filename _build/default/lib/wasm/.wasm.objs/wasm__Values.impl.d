lib/wasm/values.ml: Format Int32 Int64 Types
