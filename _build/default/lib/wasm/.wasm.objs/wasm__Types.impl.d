lib/wasm/types.ml: Format
