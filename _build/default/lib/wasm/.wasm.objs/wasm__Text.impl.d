lib/wasm/text.ml: Array Ast Buffer Char Format Int64 List Option Printf String Types Values
