lib/wasm/meter.ml: Format
