lib/wasm/validate.ml: Array Ast Format Int64 List Option Types Values
