lib/wasm/memory.ml: Bytes Char Int32 Int64 String Types
