lib/wasm/instance.ml: Arch Ast List Memory Meter Random String Types Values
