lib/wasm/exec.mli: Ast Instance Values
