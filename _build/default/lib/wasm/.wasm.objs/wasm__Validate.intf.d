lib/wasm/validate.mli: Ast
