(** WebAssembly binary format: encoder and decoder.

    Follows the wasm core binary format (LEB128 integers, sections in
    index order) plus:

    - the memory64 limits flag (bit 2) for 64-bit memories;
    - the Cage extension instructions, encoded under the reserved
      [0xfb] prefix with sub-opcodes 1-5 (mirroring how the artifact's
      wasm-tools fork reserves an unused prefix):

    {v
    0xfb 0x01 o  segment.new       0xfb 0x04    i64.pointer_sign
    0xfb 0x02 o  segment.set_tag   0xfb 0x05    i64.pointer_auth
    0xfb 0x03 o  segment.free
    v} *)

exception Decode_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Encoder primitives                                                  *)
(* ------------------------------------------------------------------ *)

module E = struct
  let byte b v = Buffer.add_char b (Char.chr (v land 0xff))

  let rec u64 b (v : int64) =
    let low = Int64.to_int (Int64.logand v 0x7fL) in
    let rest = Int64.shift_right_logical v 7 in
    if Int64.equal rest 0L then byte b low
    else begin
      byte b (low lor 0x80);
      u64 b rest
    end

  let u32 b v = u64 b (Int64.logand (Int64.of_int v) 0xffffffffL)

  let rec s64 b (v : int64) =
    let low = Int64.to_int (Int64.logand v 0x7fL) in
    let rest = Int64.shift_right v 7 in
    let done_ =
      (Int64.equal rest 0L && low land 0x40 = 0)
      || (Int64.equal rest (-1L) && low land 0x40 <> 0)
    in
    if done_ then byte b low
    else begin
      byte b (low lor 0x80);
      s64 b rest
    end

  let s32 b (v : int32) = s64 b (Int64.of_int32 v)

  let f32 b v =
    let bits = Int32.bits_of_float v in
    for i = 0 to 3 do
      byte b (Int32.to_int (Int32.shift_right_logical bits (8 * i)) land 0xff)
    done

  let f64 b v =
    let bits = Int64.bits_of_float v in
    for i = 0 to 7 do
      byte b (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff)
    done

  let name b s =
    u32 b (String.length s);
    Buffer.add_string b s

  let vec b f xs =
    u32 b (List.length xs);
    List.iter (f b) xs

  (* a section: id byte + size-prefixed payload *)
  let section b id payload =
    if Buffer.length payload > 0 then begin
      byte b id;
      u32 b (Buffer.length payload);
      Buffer.add_buffer b payload
    end
end

let val_type_byte : Types.val_type -> int = function
  | Types.I32 -> 0x7f
  | Types.I64 -> 0x7e
  | Types.F32 -> 0x7d
  | Types.F64 -> 0x7c

let encode_val_type b t = E.byte b (val_type_byte t)

let encode_limits b (l : Types.limits) ~mem64 =
  let flags =
    (match l.max with Some _ -> 1 | None -> 0)
    lor if mem64 then 4 else 0
  in
  E.byte b flags;
  E.u64 b l.min;
  Option.iter (E.u64 b) l.max

let encode_block_type b : Ast.block_type -> unit = function
  | Ast.ValBlock None -> E.byte b 0x40
  | Ast.ValBlock (Some t) -> encode_val_type b t

let ibinop_base32 : Ast.ibinop -> int = function
  | Ast.Add -> 0x6a | Sub -> 0x6b | Mul -> 0x6c | DivS -> 0x6d
  | DivU -> 0x6e | RemS -> 0x6f | RemU -> 0x70 | And -> 0x71 | Or -> 0x72
  | Xor -> 0x73 | Shl -> 0x74 | ShrS -> 0x75 | ShrU -> 0x76 | Rotl -> 0x77
  | Rotr -> 0x78

let irelop_base32 : Ast.irelop -> int = function
  | Ast.Eq -> 0x46 | Ne -> 0x47 | LtS -> 0x48 | LtU -> 0x49 | GtS -> 0x4a
  | GtU -> 0x4b | LeS -> 0x4c | LeU -> 0x4d | GeS -> 0x4e | GeU -> 0x4f

let funop_base32 : Ast.funop -> int = function
  | Ast.Abs -> 0x8b | Neg -> 0x8c | Ceil -> 0x8d | Floor -> 0x8e
  | Trunc -> 0x8f | Nearest -> 0x90 | Sqrt -> 0x91

let fbinop_base32 : Ast.fbinop -> int = function
  | Ast.FAdd -> 0x92 | FSub -> 0x93 | FMul -> 0x94 | FDiv -> 0x95
  | FMin -> 0x96 | FMax -> 0x97 | Copysign -> 0x98

let frelop_base32 : Ast.frelop -> int = function
  | Ast.FEq -> 0x5b | FNe -> 0x5c | FLt -> 0x5d | FGt -> 0x5e | FLe -> 0x5f
  | FGe -> 0x60

let cvtop_byte : Ast.cvtop -> int = function
  | Ast.I32WrapI64 -> 0xa7
  | I32TruncF32S -> 0xa8 | I32TruncF32U -> 0xa9
  | I32TruncF64S -> 0xaa | I32TruncF64U -> 0xab
  | I64ExtendI32S -> 0xac | I64ExtendI32U -> 0xad
  | I64TruncF32S -> 0xae | I64TruncF32U -> 0xaf
  | I64TruncF64S -> 0xb0 | I64TruncF64U -> 0xb1
  | F32ConvertI32S -> 0xb2 | F32ConvertI32U -> 0xb3
  | F32ConvertI64S -> 0xb4 | F32ConvertI64U -> 0xb5
  | F32DemoteF64 -> 0xb6
  | F64ConvertI32S -> 0xb7 | F64ConvertI32U -> 0xb8
  | F64ConvertI64S -> 0xb9 | F64ConvertI64U -> 0xba
  | F64PromoteF32 -> 0xbb
  | I32ReinterpretF32 -> 0xbc | I64ReinterpretF64 -> 0xbd
  | F32ReinterpretI32 -> 0xbe | F64ReinterpretI64 -> 0xbf

let encode_memarg b (ma : Ast.memarg) =
  E.u32 b ma.align;
  E.u64 b ma.offset

let rec encode_instr b (ins : Ast.instr) =
  match ins with
  | Ast.Unreachable -> E.byte b 0x00
  | Nop -> E.byte b 0x01
  | Block (bt, body) ->
      E.byte b 0x02;
      encode_block_type b bt;
      List.iter (encode_instr b) body;
      E.byte b 0x0b
  | Loop (bt, body) ->
      E.byte b 0x03;
      encode_block_type b bt;
      List.iter (encode_instr b) body;
      E.byte b 0x0b
  | If (bt, then_, else_) ->
      E.byte b 0x04;
      encode_block_type b bt;
      List.iter (encode_instr b) then_;
      if else_ <> [] then begin
        E.byte b 0x05;
        List.iter (encode_instr b) else_
      end;
      E.byte b 0x0b
  | Br n -> E.byte b 0x0c; E.u32 b n
  | BrIf n -> E.byte b 0x0d; E.u32 b n
  | BrTable (targets, default) ->
      E.byte b 0x0e;
      E.vec b (fun b n -> E.u32 b n) targets;
      E.u32 b default
  | Return -> E.byte b 0x0f
  | Call i -> E.byte b 0x10; E.u32 b i
  | CallIndirect ti ->
      E.byte b 0x11;
      E.u32 b ti;
      E.byte b 0x00
  | Drop -> E.byte b 0x1a
  | Select -> E.byte b 0x1b
  | LocalGet i -> E.byte b 0x20; E.u32 b i
  | LocalSet i -> E.byte b 0x21; E.u32 b i
  | LocalTee i -> E.byte b 0x22; E.u32 b i
  | GlobalGet i -> E.byte b 0x23; E.u32 b i
  | GlobalSet i -> E.byte b 0x24; E.u32 b i
  | Load (ty, pack, ma) ->
      let op =
        match (ty, pack) with
        | Types.I32, None -> 0x28
        | Types.I64, None -> 0x29
        | Types.F32, None -> 0x2a
        | Types.F64, None -> 0x2b
        | Types.I32, Some (Ast.Pack8, Ast.SX) -> 0x2c
        | Types.I32, Some (Ast.Pack8, Ast.ZX) -> 0x2d
        | Types.I32, Some (Ast.Pack16, Ast.SX) -> 0x2e
        | Types.I32, Some (Ast.Pack16, Ast.ZX) -> 0x2f
        | Types.I64, Some (Ast.Pack8, Ast.SX) -> 0x30
        | Types.I64, Some (Ast.Pack8, Ast.ZX) -> 0x31
        | Types.I64, Some (Ast.Pack16, Ast.SX) -> 0x32
        | Types.I64, Some (Ast.Pack16, Ast.ZX) -> 0x33
        | Types.I64, Some (Ast.Pack32, Ast.SX) -> 0x34
        | Types.I64, Some (Ast.Pack32, Ast.ZX) -> 0x35
        | _ -> fail "unencodable load"
      in
      E.byte b op;
      encode_memarg b ma
  | Store (ty, pack, ma) ->
      let op =
        match (ty, pack) with
        | Types.I32, None -> 0x36
        | Types.I64, None -> 0x37
        | Types.F32, None -> 0x38
        | Types.F64, None -> 0x39
        | Types.I32, Some Ast.Pack8 -> 0x3a
        | Types.I32, Some Ast.Pack16 -> 0x3b
        | Types.I64, Some Ast.Pack8 -> 0x3c
        | Types.I64, Some Ast.Pack16 -> 0x3d
        | Types.I64, Some Ast.Pack32 -> 0x3e
        | _ -> fail "unencodable store"
      in
      E.byte b op;
      encode_memarg b ma
  | MemorySize -> E.byte b 0x3f; E.byte b 0x00
  | MemoryGrow -> E.byte b 0x40; E.byte b 0x00
  | MemoryCopy -> E.byte b 0xfc; E.u32 b 0x0a; E.byte b 0x00; E.byte b 0x00
  | MemoryFill -> E.byte b 0xfc; E.u32 b 0x0b; E.byte b 0x00
  | I32Const v -> E.byte b 0x41; E.s32 b v
  | I64Const v -> E.byte b 0x42; E.s64 b v
  | F32Const v -> E.byte b 0x43; E.f32 b v
  | F64Const v -> E.byte b 0x44; E.f64 b v
  | ITestop Ast.W32 -> E.byte b 0x45
  | ITestop Ast.W64 -> E.byte b 0x50
  | IRelop (Ast.W32, op) -> E.byte b (irelop_base32 op)
  | IRelop (Ast.W64, op) -> E.byte b (irelop_base32 op + 0x0b)
  | IUnop (Ast.W32, op) ->
      E.byte b
        (match op with Ast.Clz -> 0x67 | Ctz -> 0x68 | Popcnt -> 0x69)
  | IUnop (Ast.W64, op) ->
      E.byte b
        (match op with Ast.Clz -> 0x79 | Ctz -> 0x7a | Popcnt -> 0x7b)
  | IBinop (Ast.W32, op) -> E.byte b (ibinop_base32 op)
  | IBinop (Ast.W64, op) -> E.byte b (ibinop_base32 op + 0x12)
  | FUnop (Ast.W32, op) -> E.byte b (funop_base32 op)
  | FUnop (Ast.W64, op) -> E.byte b (funop_base32 op + 0x0e)
  | FBinop (Ast.W32, op) -> E.byte b (fbinop_base32 op)
  | FBinop (Ast.W64, op) -> E.byte b (fbinop_base32 op + 0x0e)
  | FRelop (Ast.W32, op) -> E.byte b (frelop_base32 op)
  | FRelop (Ast.W64, op) -> E.byte b (frelop_base32 op + 0x06)
  | Cvtop op -> E.byte b (cvtop_byte op)
  (* Cage extension: 0xfb prefix *)
  | SegmentNew o -> E.byte b 0xfb; E.u32 b 0x01; E.u64 b o
  | SegmentSetTag o -> E.byte b 0xfb; E.u32 b 0x02; E.u64 b o
  | SegmentFree o -> E.byte b 0xfb; E.u32 b 0x03; E.u64 b o
  | PointerSign -> E.byte b 0xfb; E.u32 b 0x04
  | PointerAuth -> E.byte b 0xfb; E.u32 b 0x05

let encode_func_type b (ft : Types.func_type) =
  E.byte b 0x60;
  E.vec b encode_val_type ft.params;
  E.vec b encode_val_type ft.results

(* group consecutive equal local types into (count, type) runs *)
let local_runs locals =
  List.fold_left
    (fun acc t ->
      match acc with
      | (n, t') :: rest when t' = t -> (n + 1, t') :: rest
      | _ -> (1, t) :: acc)
    [] locals
  |> List.rev

(** Encode a module to wasm binary bytes. *)
let encode (m : Ast.module_) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b "\x00asm";
  Buffer.add_string b "\x01\x00\x00\x00";
  let mem64 =
    match m.memory with
    | Some mt -> mt.mem_idx = Types.Idx64
    | None -> false
  in
  (* type section *)
  let tb = Buffer.create 256 in
  E.vec tb encode_func_type m.types;
  E.section b 1 tb;
  (* import section *)
  let ib = Buffer.create 256 in
  if m.imports <> [] then begin
    E.vec ib
      (fun b (im : Ast.import) ->
        E.name b im.im_module;
        E.name b im.im_name;
        E.byte b 0x00;
        E.u32 b im.im_type)
      m.imports;
    E.section b 2 ib
  end;
  (* function section *)
  let fb = Buffer.create 256 in
  if m.funcs <> [] then begin
    E.vec fb (fun b (f : Ast.func) -> E.u32 b f.ftype) m.funcs;
    E.section b 3 fb
  end;
  (* table section *)
  (match m.table with
  | None -> ()
  | Some tt ->
      let tb = Buffer.create 16 in
      E.u32 tb 1;
      E.byte tb 0x70;
      encode_limits tb tt.tbl_limits ~mem64:false;
      E.section b 4 tb);
  (* memory section *)
  (match m.memory with
  | None -> ()
  | Some mt ->
      let mb = Buffer.create 16 in
      E.u32 mb 1;
      encode_limits mb mt.mem_limits ~mem64;
      E.section b 5 mb);
  (* global section *)
  if m.globals <> [] then begin
    let gb = Buffer.create 64 in
    E.vec gb
      (fun b (g : Ast.global) ->
        encode_val_type b g.g_type.Types.g_type;
        E.byte b (if g.g_type.Types.mut then 0x01 else 0x00);
        (match g.g_init with
        | Values.I32 v -> encode_instr b (Ast.I32Const v)
        | Values.I64 v -> encode_instr b (Ast.I64Const v)
        | Values.F32 v -> encode_instr b (Ast.F32Const v)
        | Values.F64 v -> encode_instr b (Ast.F64Const v));
        E.byte b 0x0b)
      m.globals;
    E.section b 6 gb
  end;
  (* export section *)
  if m.exports <> [] then begin
    let eb = Buffer.create 256 in
    E.vec eb
      (fun b (ex : Ast.export) ->
        E.name b ex.ex_name;
        match ex.ex_desc with
        | Ast.Func_export i ->
            E.byte b 0x00;
            E.u32 b i
        | Ast.Mem_export i ->
            E.byte b 0x02;
            E.u32 b i)
      m.exports;
    E.section b 7 eb
  end;
  (* start section *)
  (match m.start with
  | None -> ()
  | Some i ->
      let sb = Buffer.create 8 in
      E.u32 sb i;
      E.section b 8 sb);
  (* element section *)
  if m.elems <> [] then begin
    let eb = Buffer.create 256 in
    E.vec eb
      (fun b (e : Ast.elem) ->
        E.u32 b 0;
        encode_instr b (Ast.I32Const (Int64.to_int32 e.e_offset));
        E.byte b 0x0b;
        E.vec b (fun b i -> E.u32 b i) e.e_funcs)
      m.elems;
    E.section b 9 eb
  end;
  (* code section *)
  if m.funcs <> [] then begin
    let cb = Buffer.create 4096 in
    E.vec cb
      (fun b (f : Ast.func) ->
        let body = Buffer.create 256 in
        E.vec body
          (fun b (n, t) ->
            E.u32 b n;
            encode_val_type b t)
          (local_runs f.locals);
        List.iter (encode_instr body) f.body;
        E.byte body 0x0b;
        E.u32 b (Buffer.length body);
        Buffer.add_buffer b body)
      m.funcs;
    E.section b 10 cb
  end;
  (* data section *)
  if m.datas <> [] then begin
    let db = Buffer.create 4096 in
    E.vec db
      (fun b (d : Ast.data) ->
        E.u32 b 0;
        (if mem64 then encode_instr b (Ast.I64Const d.d_offset)
         else encode_instr b (Ast.I32Const (Int64.to_int32 d.d_offset)));
        E.byte b 0x0b;
        E.u32 b (String.length d.d_bytes);
        Buffer.add_string b d.d_bytes)
      m.datas;
    E.section b 11 db
  end;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Decoder                                                             *)
(* ------------------------------------------------------------------ *)

module D = struct
  type t = { src : string; mutable pos : int }

  let make src = { src; pos = 0 }
  let eof d = d.pos >= String.length d.src

  let byte d =
    if eof d then fail "unexpected end of input";
    let c = Char.code d.src.[d.pos] in
    d.pos <- d.pos + 1;
    c

  let peek d =
    if eof d then fail "unexpected end of input";
    Char.code d.src.[d.pos]

  let u64 d =
    let rec go shift acc =
      let b = byte d in
      let acc = Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7f)) shift) in
      if b land 0x80 <> 0 then go (shift + 7) acc else acc
    in
    go 0 0L

  let u32 d = Int64.to_int (u64 d)

  let s64 d =
    let rec go shift acc =
      let b = byte d in
      let acc = Int64.logor acc (Int64.shift_left (Int64.of_int (b land 0x7f)) shift) in
      if b land 0x80 <> 0 then go (shift + 7) acc
      else if shift + 7 < 64 && b land 0x40 <> 0 then
        (* sign-extend *)
        Int64.logor acc (Int64.shift_left (-1L) (shift + 7))
      else acc
    in
    go 0 0L

  let s32 d = Int64.to_int32 (s64 d)

  let f32 d =
    let bits = ref 0l in
    for i = 0 to 3 do
      bits := Int32.logor !bits (Int32.shift_left (Int32.of_int (byte d)) (8 * i))
    done;
    Int32.float_of_bits !bits

  let f64 d =
    let bits = ref 0L in
    for i = 0 to 7 do
      bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (byte d)) (8 * i))
    done;
    Int64.float_of_bits !bits

  let name d =
    let n = u32 d in
    if d.pos + n > String.length d.src then fail "name exceeds input";
    let s = String.sub d.src d.pos n in
    d.pos <- d.pos + n;
    s

  let vec d f =
    let n = u32 d in
    List.init n (fun _ -> f d)
end

let decode_val_type d : Types.val_type =
  match D.byte d with
  | 0x7f -> Types.I32
  | 0x7e -> Types.I64
  | 0x7d -> Types.F32
  | 0x7c -> Types.F64
  | b -> fail "unknown value type 0x%02x" b

let decode_limits d : Types.limits * bool =
  let flags = D.byte d in
  let mem64 = flags land 4 <> 0 in
  let min = D.u64 d in
  let max = if flags land 1 <> 0 then Some (D.u64 d) else None in
  ({ Types.min; max }, mem64)

let decode_block_type d : Ast.block_type =
  match D.peek d with
  | 0x40 ->
      ignore (D.byte d);
      Ast.ValBlock None
  | _ -> Ast.ValBlock (Some (decode_val_type d))

let decode_memarg d : Ast.memarg =
  let align = D.u32 d in
  let offset = D.u64 d in
  { Ast.align; offset }

(* Reverse opcode tables for the grouped numeric ops. *)
let irelop_of_code base code : Ast.irelop =
  match code - base with
  | 0 -> Ast.Eq | 1 -> Ne | 2 -> LtS | 3 -> LtU | 4 -> GtS | 5 -> GtU
  | 6 -> LeS | 7 -> LeU | 8 -> GeS | 9 -> GeU
  | _ -> fail "bad relop"

let ibinop_of_code base code : Ast.ibinop =
  match code - base with
  | 0 -> Ast.Add | 1 -> Sub | 2 -> Mul | 3 -> DivS | 4 -> DivU | 5 -> RemS
  | 6 -> RemU | 7 -> And | 8 -> Or | 9 -> Xor | 10 -> Shl | 11 -> ShrS
  | 12 -> ShrU | 13 -> Rotl | 14 -> Rotr
  | _ -> fail "bad ibinop"

let funop_of_code base code : Ast.funop =
  match code - base with
  | 0 -> Ast.Abs | 1 -> Neg | 2 -> Ceil | 3 -> Floor | 4 -> Trunc
  | 5 -> Nearest | 6 -> Sqrt
  | _ -> fail "bad funop"

let fbinop_of_code base code : Ast.fbinop =
  match code - base with
  | 0 -> Ast.FAdd | 1 -> FSub | 2 -> FMul | 3 -> FDiv | 4 -> FMin
  | 5 -> FMax | 6 -> Copysign
  | _ -> fail "bad fbinop"

let frelop_of_code base code : Ast.frelop =
  match code - base with
  | 0 -> Ast.FEq | 1 -> FNe | 2 -> FLt | 3 -> FGt | 4 -> FLe | 5 -> FGe
  | _ -> fail "bad frelop"

let cvtop_of_code code : Ast.cvtop =
  match code with
  | 0xa7 -> Ast.I32WrapI64
  | 0xa8 -> I32TruncF32S | 0xa9 -> I32TruncF32U
  | 0xaa -> I32TruncF64S | 0xab -> I32TruncF64U
  | 0xac -> I64ExtendI32S | 0xad -> I64ExtendI32U
  | 0xae -> I64TruncF32S | 0xaf -> I64TruncF32U
  | 0xb0 -> I64TruncF64S | 0xb1 -> I64TruncF64U
  | 0xb2 -> F32ConvertI32S | 0xb3 -> F32ConvertI32U
  | 0xb4 -> F32ConvertI64S | 0xb5 -> F32ConvertI64U
  | 0xb6 -> F32DemoteF64
  | 0xb7 -> F64ConvertI32S | 0xb8 -> F64ConvertI32U
  | 0xb9 -> F64ConvertI64S | 0xba -> F64ConvertI64U
  | 0xbb -> F64PromoteF32
  | 0xbc -> I32ReinterpretF32 | 0xbd -> I64ReinterpretF64
  | 0xbe -> F32ReinterpretI32 | 0xbf -> F64ReinterpretI64
  | c -> fail "unknown conversion opcode 0x%02x" c

(* Decode instructions until one of the [stops] bytes; the stop byte is
   consumed and returned. *)
let rec decode_instrs d ~stops =
  let rec go acc =
    let op = D.peek d in
    if List.mem op stops then begin
      ignore (D.byte d);
      (List.rev acc, op)
    end
    else go (decode_instr d :: acc)
  in
  go []

and decode_instr d : Ast.instr =
  let op = D.byte d in
  match op with
  | 0x00 -> Ast.Unreachable
  | 0x01 -> Ast.Nop
  | 0x02 ->
      let bt = decode_block_type d in
      let body, _ = decode_instrs d ~stops:[ 0x0b ] in
      Ast.Block (bt, body)
  | 0x03 ->
      let bt = decode_block_type d in
      let body, _ = decode_instrs d ~stops:[ 0x0b ] in
      Ast.Loop (bt, body)
  | 0x04 ->
      let bt = decode_block_type d in
      let then_, stop = decode_instrs d ~stops:[ 0x0b; 0x05 ] in
      let else_ =
        if stop = 0x05 then fst (decode_instrs d ~stops:[ 0x0b ]) else []
      in
      Ast.If (bt, then_, else_)
  | 0x0c -> Ast.Br (D.u32 d)
  | 0x0d -> Ast.BrIf (D.u32 d)
  | 0x0e ->
      let targets = D.vec d D.u32 in
      let default = D.u32 d in
      Ast.BrTable (targets, default)
  | 0x0f -> Ast.Return
  | 0x10 -> Ast.Call (D.u32 d)
  | 0x11 ->
      let ti = D.u32 d in
      let tbl = D.byte d in
      if tbl <> 0 then fail "call_indirect: non-zero table";
      Ast.CallIndirect ti
  | 0x1a -> Ast.Drop
  | 0x1b -> Ast.Select
  | 0x20 -> Ast.LocalGet (D.u32 d)
  | 0x21 -> Ast.LocalSet (D.u32 d)
  | 0x22 -> Ast.LocalTee (D.u32 d)
  | 0x23 -> Ast.GlobalGet (D.u32 d)
  | 0x24 -> Ast.GlobalSet (D.u32 d)
  | 0x28 -> Ast.Load (Types.I32, None, decode_memarg d)
  | 0x29 -> Ast.Load (Types.I64, None, decode_memarg d)
  | 0x2a -> Ast.Load (Types.F32, None, decode_memarg d)
  | 0x2b -> Ast.Load (Types.F64, None, decode_memarg d)
  | 0x2c -> Ast.Load (Types.I32, Some (Ast.Pack8, Ast.SX), decode_memarg d)
  | 0x2d -> Ast.Load (Types.I32, Some (Ast.Pack8, Ast.ZX), decode_memarg d)
  | 0x2e -> Ast.Load (Types.I32, Some (Ast.Pack16, Ast.SX), decode_memarg d)
  | 0x2f -> Ast.Load (Types.I32, Some (Ast.Pack16, Ast.ZX), decode_memarg d)
  | 0x30 -> Ast.Load (Types.I64, Some (Ast.Pack8, Ast.SX), decode_memarg d)
  | 0x31 -> Ast.Load (Types.I64, Some (Ast.Pack8, Ast.ZX), decode_memarg d)
  | 0x32 -> Ast.Load (Types.I64, Some (Ast.Pack16, Ast.SX), decode_memarg d)
  | 0x33 -> Ast.Load (Types.I64, Some (Ast.Pack16, Ast.ZX), decode_memarg d)
  | 0x34 -> Ast.Load (Types.I64, Some (Ast.Pack32, Ast.SX), decode_memarg d)
  | 0x35 -> Ast.Load (Types.I64, Some (Ast.Pack32, Ast.ZX), decode_memarg d)
  | 0x36 -> Ast.Store (Types.I32, None, decode_memarg d)
  | 0x37 -> Ast.Store (Types.I64, None, decode_memarg d)
  | 0x38 -> Ast.Store (Types.F32, None, decode_memarg d)
  | 0x39 -> Ast.Store (Types.F64, None, decode_memarg d)
  | 0x3a -> Ast.Store (Types.I32, Some Ast.Pack8, decode_memarg d)
  | 0x3b -> Ast.Store (Types.I32, Some Ast.Pack16, decode_memarg d)
  | 0x3c -> Ast.Store (Types.I64, Some Ast.Pack8, decode_memarg d)
  | 0x3d -> Ast.Store (Types.I64, Some Ast.Pack16, decode_memarg d)
  | 0x3e -> Ast.Store (Types.I64, Some Ast.Pack32, decode_memarg d)
  | 0x3f ->
      ignore (D.byte d);
      Ast.MemorySize
  | 0x40 ->
      ignore (D.byte d);
      Ast.MemoryGrow
  | 0x41 -> Ast.I32Const (D.s32 d)
  | 0x42 -> Ast.I64Const (D.s64 d)
  | 0x43 -> Ast.F32Const (D.f32 d)
  | 0x44 -> Ast.F64Const (D.f64 d)
  | 0x45 -> Ast.ITestop Ast.W32
  | 0x50 -> Ast.ITestop Ast.W64
  | c when c >= 0x46 && c <= 0x4f -> Ast.IRelop (Ast.W32, irelop_of_code 0x46 c)
  | c when c >= 0x51 && c <= 0x5a -> Ast.IRelop (Ast.W64, irelop_of_code 0x51 c)
  | c when c >= 0x5b && c <= 0x60 -> Ast.FRelop (Ast.W32, frelop_of_code 0x5b c)
  | c when c >= 0x61 && c <= 0x66 -> Ast.FRelop (Ast.W64, frelop_of_code 0x61 c)
  | 0x67 -> Ast.IUnop (Ast.W32, Ast.Clz)
  | 0x68 -> Ast.IUnop (Ast.W32, Ast.Ctz)
  | 0x69 -> Ast.IUnop (Ast.W32, Ast.Popcnt)
  | c when c >= 0x6a && c <= 0x78 -> Ast.IBinop (Ast.W32, ibinop_of_code 0x6a c)
  | 0x79 -> Ast.IUnop (Ast.W64, Ast.Clz)
  | 0x7a -> Ast.IUnop (Ast.W64, Ast.Ctz)
  | 0x7b -> Ast.IUnop (Ast.W64, Ast.Popcnt)
  | c when c >= 0x7c && c <= 0x8a -> Ast.IBinop (Ast.W64, ibinop_of_code 0x7c c)
  | c when c >= 0x8b && c <= 0x91 -> Ast.FUnop (Ast.W32, funop_of_code 0x8b c)
  | c when c >= 0x92 && c <= 0x98 -> Ast.FBinop (Ast.W32, fbinop_of_code 0x92 c)
  | c when c >= 0x99 && c <= 0x9f -> Ast.FUnop (Ast.W64, funop_of_code 0x99 c)
  | c when c >= 0xa0 && c <= 0xa6 -> Ast.FBinop (Ast.W64, fbinop_of_code 0xa0 c)
  | c when c >= 0xa7 && c <= 0xbf -> Ast.Cvtop (cvtop_of_code c)
  | 0xfc -> (
      match D.u32 d with
      | 0x0a ->
          ignore (D.byte d);
          ignore (D.byte d);
          Ast.MemoryCopy
      | 0x0b ->
          ignore (D.byte d);
          Ast.MemoryFill
      | sub -> fail "unknown 0xfc sub-opcode %d" sub)
  | 0xfb -> (
      (* the Cage extension prefix *)
      match D.u32 d with
      | 0x01 -> Ast.SegmentNew (D.u64 d)
      | 0x02 -> Ast.SegmentSetTag (D.u64 d)
      | 0x03 -> Ast.SegmentFree (D.u64 d)
      | 0x04 -> Ast.PointerSign
      | 0x05 -> Ast.PointerAuth
      | sub -> fail "unknown cage sub-opcode %d" sub)
  | c -> fail "unknown opcode 0x%02x" c

let decode_func_type d : Types.func_type =
  (match D.byte d with
  | 0x60 -> ()
  | b -> fail "expected functype (0x60), got 0x%02x" b);
  let params = D.vec d decode_val_type in
  let results = D.vec d decode_val_type in
  { Types.params; results }

let decode_const_expr d =
  let instrs, _ = decode_instrs d ~stops:[ 0x0b ] in
  match instrs with
  | [ Ast.I32Const v ] -> Values.I32 v
  | [ Ast.I64Const v ] -> Values.I64 v
  | [ Ast.F32Const v ] -> Values.F32 v
  | [ Ast.F64Const v ] -> Values.F64 v
  | _ -> fail "unsupported constant expression"

(** Decode a wasm binary into a module. *)
let decode (bytes : string) : Ast.module_ =
  let d = D.make bytes in
  if String.length bytes < 8 then fail "input too short";
  if String.sub bytes 0 4 <> "\x00asm" then fail "bad magic";
  if String.sub bytes 4 4 <> "\x01\x00\x00\x00" then fail "bad version";
  d.D.pos <- 8;
  let m = ref Ast.empty_module in
  let func_types = ref [] in
  let bodies = ref [] in
  while not (D.eof d) do
    let id = D.byte d in
    let size = D.u32 d in
    let section_end = d.D.pos + size in
    (match id with
    | 0 ->
        (* custom section: skip *)
        d.D.pos <- section_end
    | 1 -> m := { !m with types = D.vec d decode_func_type }
    | 2 ->
        m :=
          { !m with
            imports =
              D.vec d (fun d ->
                  let im_module = D.name d in
                  let im_name = D.name d in
                  (match D.byte d with
                  | 0x00 -> ()
                  | k -> fail "unsupported import kind %d" k);
                  { Ast.im_module; im_name; im_type = D.u32 d }) }
    | 3 -> func_types := D.vec d D.u32
    | 4 ->
        let tables =
          D.vec d (fun d ->
              (match D.byte d with
              | 0x70 -> ()
              | b -> fail "expected funcref table, got 0x%02x" b);
              let lim, _ = decode_limits d in
              { Types.tbl_limits = lim })
        in
        m := { !m with table = List.nth_opt tables 0 }
    | 5 ->
        let mems =
          D.vec d (fun d ->
              let lim, mem64 = decode_limits d in
              { Types.mem_idx = (if mem64 then Types.Idx64 else Types.Idx32);
                mem_limits = lim })
        in
        m := { !m with memory = List.nth_opt mems 0 }
    | 6 ->
        m :=
          { !m with
            globals =
              D.vec d (fun d ->
                  let g_type = decode_val_type d in
                  let mut = D.byte d = 0x01 in
                  let g_init = decode_const_expr d in
                  { Ast.g_type = { Types.mut; g_type }; g_init }) }
    | 7 ->
        m :=
          { !m with
            exports =
              D.vec d (fun d ->
                  let ex_name = D.name d in
                  let kind = D.byte d in
                  let idx = D.u32 d in
                  let ex_desc =
                    match kind with
                    | 0x00 -> Ast.Func_export idx
                    | 0x02 -> Ast.Mem_export idx
                    | k -> fail "unsupported export kind %d" k
                  in
                  { Ast.ex_name; ex_desc }) }
    | 8 -> m := { !m with start = Some (D.u32 d) }
    | 9 ->
        m :=
          { !m with
            elems =
              D.vec d (fun d ->
                  (match D.u32 d with
                  | 0 -> ()
                  | f -> fail "unsupported element flags %d" f);
                  let offset =
                    match decode_const_expr d with
                    | Values.I32 v -> Int64.of_int32 v
                    | Values.I64 v -> v
                    | _ -> fail "bad element offset"
                  in
                  { Ast.e_offset = offset; e_funcs = D.vec d D.u32 }) }
    | 10 ->
        bodies :=
          D.vec d (fun d ->
              let _size = D.u32 d in
              let locals =
                List.concat
                  (D.vec d (fun d ->
                       let n = D.u32 d in
                       let t = decode_val_type d in
                       List.init n (fun _ -> t)))
              in
              let body, _ = decode_instrs d ~stops:[ 0x0b ] in
              (locals, body))
    | 11 ->
        m :=
          { !m with
            datas =
              D.vec d (fun d ->
                  (match D.u32 d with
                  | 0 -> ()
                  | f -> fail "unsupported data flags %d" f);
                  let offset =
                    match decode_const_expr d with
                    | Values.I32 v ->
                        Int64.logand (Int64.of_int32 v) 0xffffffffL
                    | Values.I64 v -> v
                    | _ -> fail "bad data offset"
                  in
                  let n = D.u32 d in
                  if d.D.pos + n > String.length bytes then
                    fail "data segment exceeds input";
                  let s = String.sub bytes d.D.pos n in
                  d.D.pos <- d.D.pos + n;
                  { Ast.d_offset = offset; d_bytes = s }) }
    | id -> fail "unknown section id %d" id);
    if d.D.pos <> section_end then
      fail "section %d: decoded %d bytes, declared %d" id
        (d.D.pos - (section_end - size))
        size
  done;
  let funcs =
    List.map2
      (fun ftype (locals, body) ->
        { Ast.ftype; locals; body; fname = None })
      !func_types !bodies
  in
  { !m with funcs }

(** Encode then write to a file. *)
let write_file path m =
  let oc = open_out_bin path in
  output_string oc (encode m);
  close_out oc

(** Read and decode a file. *)
let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  decode s
