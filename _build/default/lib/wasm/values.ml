(** Runtime values and the numeric helpers the interpreter needs.

    [F32] values are stored as OCaml floats but rounded through a 32-bit
    representation after every operation, so f32 arithmetic is faithful
    to single precision. *)

type t = I32 of int32 | I64 of int64 | F32 of float | F64 of float

let type_of : t -> Types.val_type = function
  | I32 _ -> Types.I32
  | I64 _ -> Types.I64
  | F32 _ -> Types.F32
  | F64 _ -> Types.F64

(** The zero value of a type — wasm locals default to it. *)
let default : Types.val_type -> t = function
  | Types.I32 -> I32 0l
  | Types.I64 -> I64 0L
  | Types.F32 -> F32 0.0
  | Types.F64 -> F64 0.0

let equal a b =
  match (a, b) with
  | I32 x, I32 y -> Int32.equal x y
  | I64 x, I64 y -> Int64.equal x y
  | F32 x, F32 y | F64 x, F64 y ->
      (* bit equality so NaN = NaN for testing purposes *)
      Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | _ -> false

let pp ppf = function
  | I32 v -> Format.fprintf ppf "i32:%ld" v
  | I64 v -> Format.fprintf ppf "i64:%Ld" v
  | F32 v -> Format.fprintf ppf "f32:%h" v
  | F64 v -> Format.fprintf ppf "f64:%h" v

(** Round a float through single precision. *)
let to_f32 v = Int32.float_of_bits (Int32.bits_of_float v)

(** {1 Integer helpers} *)

(* OCaml's [Int32]/[Int64] division traps on [min_int / -1]; wasm defines
   signed overflow in division as a trap too, so callers check first. *)

let i32_shift_amount n = Int32.to_int (Int32.logand n 31l)
let i64_shift_amount n = Int64.to_int (Int64.logand n 63L)

let rotl32 x n =
  let n = i32_shift_amount n in
  if n = 0 then x
  else
    Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))

let rotr32 x n =
  let n = i32_shift_amount n in
  if n = 0 then x
  else
    Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))

let rotl64 x n =
  let n = i64_shift_amount n in
  if n = 0 then x
  else
    Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (64 - n))

let rotr64 x n =
  let n = i64_shift_amount n in
  if n = 0 then x
  else
    Int64.logor (Int64.shift_right_logical x n) (Int64.shift_left x (64 - n))

let clz32 x =
  if Int32.equal x 0l then 32
  else
    let rec go n mask =
      if Int32.logand x mask <> 0l then n
      else go (n + 1) (Int32.shift_right_logical mask 1)
    in
    go 0 Int32.min_int

let ctz32 x =
  if Int32.equal x 0l then 32
  else
    let rec go n mask =
      if Int32.logand x mask <> 0l then n
      else go (n + 1) (Int32.shift_left mask 1)
    in
    go 0 1l

let popcnt32 x =
  let rec go x acc =
    if Int32.equal x 0l then acc
    else
      go
        (Int32.shift_right_logical x 1)
        (acc + Int32.to_int (Int32.logand x 1l))
  in
  go x 0

let clz64 x =
  if Int64.equal x 0L then 64
  else
    let rec go n mask =
      if Int64.logand x mask <> 0L then n
      else go (n + 1) (Int64.shift_right_logical mask 1)
    in
    go 0 Int64.min_int

let ctz64 x =
  if Int64.equal x 0L then 64
  else
    let rec go n mask =
      if Int64.logand x mask <> 0L then n
      else go (n + 1) (Int64.shift_left mask 1)
    in
    go 0 1L

let popcnt64 x =
  let rec go x acc =
    if Int64.equal x 0L then acc
    else
      go
        (Int64.shift_right_logical x 1)
        (acc + Int64.to_int (Int64.logand x 1L))
  in
  go x 0

(** Unsigned comparison for int32. *)
let u32_lt a b = Int32.unsigned_compare a b < 0

let u32_gt a b = Int32.unsigned_compare a b > 0
let u32_le a b = Int32.unsigned_compare a b <= 0
let u32_ge a b = Int32.unsigned_compare a b >= 0
let u64_lt a b = Int64.unsigned_compare a b < 0
let u64_gt a b = Int64.unsigned_compare a b > 0
let u64_le a b = Int64.unsigned_compare a b <= 0
let u64_ge a b = Int64.unsigned_compare a b >= 0
