(** WebAssembly types (spec §2.3), extended with the memory64 index-type
    distinction the Cage extension builds on. *)

(** Number types. Cage does not use reference types, and vector types are
    out of scope. *)
type num_type = I32 | I64 | F32 | F64

type val_type = num_type

let string_of_num_type = function
  | I32 -> "i32"
  | I64 -> "i64"
  | F32 -> "f32"
  | F64 -> "f64"

let pp_num_type ppf t = Format.pp_print_string ppf (string_of_num_type t)
let pp_val_type = pp_num_type

(** Function types: parameter and result lists. *)
type func_type = { params : val_type list; results : val_type list }

let pp_func_type ppf { params; results } =
  let pp_list = Format.(pp_print_list ~pp_sep:pp_print_space pp_val_type) in
  Format.fprintf ppf "[%a] -> [%a]" pp_list params pp_list results

let func_type_equal a b = a.params = b.params && a.results = b.results

(** Memory index type: wasm32 uses 32-bit indices (and can be sandboxed
    with guard pages); wasm64/memory64 uses 64-bit indices and normally
    needs explicit bounds checks — the situation Cage's MTE sandboxing
    improves. *)
type idx_type = Idx32 | Idx64

let string_of_idx_type = function Idx32 -> "i32" | Idx64 -> "i64"

(** The value type used to address a memory of the given index type. *)
let addr_type = function Idx32 -> I32 | Idx64 -> I64

(** Limits are expressed in units that depend on context (pages for
    memories, entries for tables). *)
type limits = { min : int64; max : int64 option }

let limits_valid { min; max } ~range =
  min >= 0L && min <= range
  && match max with None -> true | Some m -> m >= min && m <= range

(** Memory types. [mem_idx] selects wasm32 vs memory64 addressing. *)
type mem_type = { mem_idx : idx_type; mem_limits : limits }

let page_size = 65536L
(** The wasm page size: 64 KiB. *)

(** Table types: function references only (Cage's threat model keeps the
    wasm function-table design). *)
type table_type = { tbl_limits : limits }

(** Global types. *)
type global_type = { mut : bool; g_type : val_type }

(** External (import/export) types. *)
type extern_type =
  | Extern_func of func_type
  | Extern_table of table_type
  | Extern_mem of mem_type
  | Extern_global of global_type
