(** WAT-style text format: printer (this file, top half) and parser
    (bottom half).

    The dialect is the flat (non-folded) instruction syntax, extended
    with the Cage instructions under their paper names ([segment.new],
    [i64.pointer_sign], ...). The printer's output parses back to an
    equal module, so [.wat] files are a first-class interchange format
    for the toolchain ([cagec --emit-wat], [cage_run file.wat]). *)

open Format

let val_type ppf t = pp_print_string ppf (Types.string_of_num_type t)

let block_type ppf = function
  | Ast.ValBlock None -> ()
  | Ast.ValBlock (Some t) -> fprintf ppf " (result %a)" val_type t

let memarg ppf (ma : Ast.memarg) =
  if ma.offset <> 0L then fprintf ppf " offset=%Lu" ma.offset;
  if ma.align <> 0 then fprintf ppf " align=%d" (1 lsl ma.align)

let iunop = function Ast.Clz -> "clz" | Ctz -> "ctz" | Popcnt -> "popcnt"

let ibinop = function
  | Ast.Add -> "add" | Sub -> "sub" | Mul -> "mul" | DivS -> "div_s"
  | DivU -> "div_u" | RemS -> "rem_s" | RemU -> "rem_u" | And -> "and"
  | Or -> "or" | Xor -> "xor" | Shl -> "shl" | ShrS -> "shr_s"
  | ShrU -> "shr_u" | Rotl -> "rotl" | Rotr -> "rotr"

let irelop = function
  | Ast.Eq -> "eq" | Ne -> "ne" | LtS -> "lt_s" | LtU -> "lt_u"
  | GtS -> "gt_s" | GtU -> "gt_u" | LeS -> "le_s" | LeU -> "le_u"
  | GeS -> "ge_s" | GeU -> "ge_u"

let funop = function
  | Ast.Neg -> "neg" | Abs -> "abs" | Ceil -> "ceil" | Floor -> "floor"
  | Trunc -> "trunc" | Nearest -> "nearest" | Sqrt -> "sqrt"

let fbinop = function
  | Ast.FAdd -> "add" | FSub -> "sub" | FMul -> "mul" | FDiv -> "div"
  | FMin -> "min" | FMax -> "max" | Copysign -> "copysign"

let frelop = function
  | Ast.FEq -> "eq" | FNe -> "ne" | FLt -> "lt" | FGt -> "gt" | FLe -> "le"
  | FGe -> "ge"

let width = function Ast.W32 -> "i32" | Ast.W64 -> "i64"
let fwidth = function Ast.W32 -> "f32" | Ast.W64 -> "f64"

let cvtop = function
  | Ast.I32WrapI64 -> "i32.wrap_i64"
  | I64ExtendI32S -> "i64.extend_i32_s"
  | I64ExtendI32U -> "i64.extend_i32_u"
  | I32TruncF32S -> "i32.trunc_f32_s" | I32TruncF32U -> "i32.trunc_f32_u"
  | I32TruncF64S -> "i32.trunc_f64_s" | I32TruncF64U -> "i32.trunc_f64_u"
  | I64TruncF32S -> "i64.trunc_f32_s" | I64TruncF32U -> "i64.trunc_f32_u"
  | I64TruncF64S -> "i64.trunc_f64_s" | I64TruncF64U -> "i64.trunc_f64_u"
  | F32ConvertI32S -> "f32.convert_i32_s"
  | F32ConvertI32U -> "f32.convert_i32_u"
  | F32ConvertI64S -> "f32.convert_i64_s"
  | F32ConvertI64U -> "f32.convert_i64_u"
  | F64ConvertI32S -> "f64.convert_i32_s"
  | F64ConvertI32U -> "f64.convert_i32_u"
  | F64ConvertI64S -> "f64.convert_i64_s"
  | F64ConvertI64U -> "f64.convert_i64_u"
  | F32DemoteF64 -> "f32.demote_f64"
  | F64PromoteF32 -> "f64.promote_f32"
  | I32ReinterpretF32 -> "i32.reinterpret_f32"
  | I64ReinterpretF64 -> "i64.reinterpret_f64"
  | F32ReinterpretI32 -> "f32.reinterpret_i32"
  | F64ReinterpretI64 -> "f64.reinterpret_i64"

let pack_suffix ty pack =
  ignore ty;
  match pack with
  | None -> ""
  | Some (Ast.Pack8, Ast.SX) -> "8_s"
  | Some (Ast.Pack8, Ast.ZX) -> "8_u"
  | Some (Ast.Pack16, Ast.SX) -> "16_s"
  | Some (Ast.Pack16, Ast.ZX) -> "16_u"
  | Some (Ast.Pack32, Ast.SX) -> "32_s"
  | Some (Ast.Pack32, Ast.ZX) -> "32_u"

let store_suffix = function
  | None -> ""
  | Some Ast.Pack8 -> "8"
  | Some Ast.Pack16 -> "16"
  | Some Ast.Pack32 -> "32"

let rec instr ~indent ppf (ins : Ast.instr) =
  let pad = String.make indent ' ' in
  let line fmt = fprintf ppf ("%s" ^^ fmt ^^ "@.") pad in
  match ins with
  | Ast.Unreachable -> line "unreachable"
  | Nop -> line "nop"
  | Block (bt, body) ->
      fprintf ppf "%sblock%a@." pad block_type bt;
      List.iter (instr ~indent:(indent + 2) ppf) body;
      line "end"
  | Loop (bt, body) ->
      fprintf ppf "%sloop%a@." pad block_type bt;
      List.iter (instr ~indent:(indent + 2) ppf) body;
      line "end"
  | If (bt, then_, else_) ->
      fprintf ppf "%sif%a@." pad block_type bt;
      List.iter (instr ~indent:(indent + 2) ppf) then_;
      if else_ <> [] then begin
        line "else";
        List.iter (instr ~indent:(indent + 2) ppf) else_
      end;
      line "end"
  | Br n -> line "br %d" n
  | BrIf n -> line "br_if %d" n
  | BrTable (ts, d) ->
      line "br_table %s %d"
        (String.concat " " (List.map string_of_int ts))
        d
  | Return -> line "return"
  | Call i -> line "call %d" i
  | CallIndirect ti -> line "call_indirect (type %d)" ti
  | Drop -> line "drop"
  | Select -> line "select"
  | LocalGet i -> line "local.get %d" i
  | LocalSet i -> line "local.set %d" i
  | LocalTee i -> line "local.tee %d" i
  | GlobalGet i -> line "global.get %d" i
  | GlobalSet i -> line "global.set %d" i
  | I32Const v -> line "i32.const %ld" v
  | I64Const v -> line "i64.const %Ld" v
  | F32Const v -> line "f32.const %h" v
  | F64Const v -> line "f64.const %h" v
  | IUnop (w, op) -> line "%s.%s" (width w) (iunop op)
  | IBinop (w, op) -> line "%s.%s" (width w) (ibinop op)
  | ITestop w -> line "%s.eqz" (width w)
  | IRelop (w, op) -> line "%s.%s" (width w) (irelop op)
  | FUnop (w, op) -> line "%s.%s" (fwidth w) (funop op)
  | FBinop (w, op) -> line "%s.%s" (fwidth w) (fbinop op)
  | FRelop (w, op) -> line "%s.%s" (fwidth w) (frelop op)
  | Cvtop op -> line "%s" (cvtop op)
  | Load (ty, pack, ma) ->
      fprintf ppf "%s%s.load%s%a@." pad
        (Types.string_of_num_type ty)
        (pack_suffix ty pack) memarg ma
  | Store (ty, pack, ma) ->
      fprintf ppf "%s%s.store%s%a@." pad
        (Types.string_of_num_type ty)
        (store_suffix pack) memarg ma
  | MemorySize -> line "memory.size"
  | MemoryGrow -> line "memory.grow"
  | MemoryFill -> line "memory.fill"
  | MemoryCopy -> line "memory.copy"
  | SegmentNew o -> line "segment.new offset=%Lu" o
  | SegmentSetTag o -> line "segment.set_tag offset=%Lu" o
  | SegmentFree o -> line "segment.free offset=%Lu" o
  | PointerSign -> line "i64.pointer_sign"
  | PointerAuth -> line "i64.pointer_auth"

(** Render a whole module. *)
let module_ ppf (m : Ast.module_) =
  fprintf ppf "(module@.";
  List.iter
    (fun (ft : Types.func_type) ->
      fprintf ppf "  (type (func";
      if ft.params <> [] then begin
        fprintf ppf " (param";
        List.iter (fun t -> fprintf ppf " %a" val_type t) ft.params;
        fprintf ppf ")"
      end;
      if ft.results <> [] then begin
        fprintf ppf " (result";
        List.iter (fun t -> fprintf ppf " %a" val_type t) ft.results;
        fprintf ppf ")"
      end;
      fprintf ppf "))@.")
    m.types;
  List.iter
    (fun (im : Ast.import) ->
      fprintf ppf "  (import \"%s\" \"%s\" (func (type %d)))@." im.im_module
        im.im_name im.im_type)
    m.imports;
  Option.iter
    (fun (mt : Types.mem_type) ->
      fprintf ppf "  (memory %s %Ld%s)@."
        (match mt.mem_idx with Types.Idx64 -> "i64" | Types.Idx32 -> "i32")
        mt.mem_limits.min
        (match mt.mem_limits.max with
        | Some mx -> Printf.sprintf " %Ld" mx
        | None -> ""))
    m.memory;
  Option.iter
    (fun (tt : Types.table_type) ->
      fprintf ppf "  (table %Ld funcref)@." tt.tbl_limits.min)
    m.table;
  List.iter
    (fun (g : Ast.global) ->
      let ty = Types.string_of_num_type g.g_type.Types.g_type in
      let const =
        match g.g_init with
        | Values.I32 v -> Printf.sprintf "i32.const %ld" v
        | Values.I64 v -> Printf.sprintf "i64.const %Ld" v
        | Values.F32 v -> Printf.sprintf "f32.const %h" v
        | Values.F64 v -> Printf.sprintf "f64.const %h" v
      in
      if g.g_type.Types.mut then
        fprintf ppf "  (global (mut %s) (%s))@." ty const
      else fprintf ppf "  (global %s (%s))@." ty const)
    m.globals;
  let _n_imports = List.length m.imports in
  List.iteri
    (fun i (f : Ast.func) ->
      ignore i;
      fprintf ppf "  (func%s (type %d)"
        (match f.fname with Some n -> " $" ^ n | None -> "")
        f.ftype;
      if f.locals <> [] then begin
        fprintf ppf " (local";
        List.iter (fun t -> fprintf ppf " %a" val_type t) f.locals;
        fprintf ppf ")"
      end;
      fprintf ppf "@.";
      List.iter (instr ~indent:4 ppf) f.body;
      fprintf ppf "  )@.")
    m.funcs;
  List.iter
    (fun (e : Ast.elem) ->
      fprintf ppf "  (elem (offset %Ld) func %s)@." e.e_offset
        (String.concat " " (List.map string_of_int e.e_funcs)))
    m.elems;
  List.iter
    (fun (d : Ast.data) ->
      let escaped = Buffer.create (String.length d.d_bytes * 2) in
      String.iter
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | ' ' | '.' | ',' | '-'
          | '_' | ':' | ';' | '!' | '?' | '+' | '*' | '/' | '=' ->
              Buffer.add_char escaped c
          | c -> Buffer.add_string escaped (Printf.sprintf "\\%02x" (Char.code c)))
        d.d_bytes;
      fprintf ppf "  (data (offset %Ld) \"%s\")@." d.d_offset
        (Buffer.contents escaped))
    m.datas;
  List.iter
    (fun (ex : Ast.export) ->
      match ex.ex_desc with
      | Ast.Func_export i ->
          fprintf ppf "  (export \"%s\" (func %d))@." ex.ex_name i
      | Ast.Mem_export i ->
          fprintf ppf "  (export \"%s\" (memory %d))@." ex.ex_name i)
    m.exports;
  Option.iter (fun i -> fprintf ppf "  (start %d)@." i) m.start;
  fprintf ppf ")@."

let to_string m = Format.asprintf "%a" module_ m

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let perr fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

type tok = LP | RP | Atom of string | Str of string

let tokenize src : tok list =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let is_atom_char c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '$' | '-' | '+'
    | '=' | '/' | ':' ->
        true
    | _ -> false
  in
  while !i < n do
    (match src.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | ';' when !i + 1 < n && src.[!i + 1] = ';' ->
        while !i < n && src.[!i] <> '\n' do incr i done
    | '(' ->
        toks := LP :: !toks;
        incr i
    | ')' ->
        toks := RP :: !toks;
        incr i
    | '"' ->
        incr i;
        let buf = Buffer.create 16 in
        let fin = ref false in
        while not !fin do
          if !i >= n then perr "unterminated string";
          (match src.[!i] with
          | '"' ->
              fin := true;
              incr i
          | '\\' ->
              if !i + 2 >= n then perr "bad escape";
              let hex = String.sub src (!i + 1) 2 in
              Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ hex)));
              i := !i + 3
          | c ->
              Buffer.add_char buf c;
              incr i)
        done;
        toks := Str (Buffer.contents buf) :: !toks
    | c when is_atom_char c ->
        let start = !i in
        while !i < n && is_atom_char src.[!i] do incr i done;
        toks := Atom (String.sub src start (!i - start)) :: !toks
    | c -> perr "unexpected character %C" c)
  done;
  List.rev !toks

type pstate = { toks : tok array; mutable pos : int }

let peek_tok p = if p.pos < Array.length p.toks then Some p.toks.(p.pos) else None
let next_tok p =
  match peek_tok p with
  | Some t ->
      p.pos <- p.pos + 1;
      t
  | None -> perr "unexpected end of input"

let expect_lp p = match next_tok p with LP -> () | _ -> perr "expected ("
let expect_rp p = match next_tok p with RP -> () | _ -> perr "expected )"

let expect_atom p =
  match next_tok p with Atom a -> a | _ -> perr "expected atom"

let expect_kw p kw =
  let a = expect_atom p in
  if a <> kw then perr "expected %s, found %s" kw a

let expect_int p =
  let a = expect_atom p in
  try int_of_string a with _ -> perr "expected integer, found %s" a

let expect_i64 p =
  let a = expect_atom p in
  try Int64.of_string a with _ -> perr "expected integer, found %s" a

let val_type_of_atom = function
  | "i32" -> Types.I32
  | "i64" -> Types.I64
  | "f32" -> Types.F32
  | "f64" -> Types.F64
  | a -> perr "unknown value type %s" a

(* reverse tables built from the printer's naming *)
let rev_table names_of ops = List.map (fun op -> (names_of op, op)) ops

let ibinops =
  rev_table ibinop
    [ Ast.Add; Sub; Mul; DivS; DivU; RemS; RemU; And; Or; Xor; Shl; ShrS;
      ShrU; Rotl; Rotr ]

let irelops =
  rev_table irelop
    [ Ast.Eq; Ne; LtS; LtU; GtS; GtU; LeS; LeU; GeS; GeU ]

let iunops = rev_table iunop [ Ast.Clz; Ctz; Popcnt ]

let fbinops =
  rev_table fbinop [ Ast.FAdd; FSub; FMul; FDiv; FMin; FMax; Copysign ]

let frelops = rev_table frelop [ Ast.FEq; FNe; FLt; FGt; FLe; FGe ]

let funops =
  rev_table funop [ Ast.Neg; Abs; Ceil; Floor; Trunc; Nearest; Sqrt ]

let cvtops =
  rev_table cvtop
    [ Ast.I32WrapI64; I64ExtendI32S; I64ExtendI32U; I32TruncF32S;
      I32TruncF32U; I32TruncF64S; I32TruncF64U; I64TruncF32S; I64TruncF32U;
      I64TruncF64S; I64TruncF64U; F32ConvertI32S; F32ConvertI32U;
      F32ConvertI64S; F32ConvertI64U; F64ConvertI32S; F64ConvertI32U;
      F64ConvertI64S; F64ConvertI64U; F32DemoteF64; F64PromoteF32;
      I32ReinterpretF32; I64ReinterpretF64; F32ReinterpretI32;
      F64ReinterpretI64 ]

(* optional "(result t)" annotation *)
let parse_block_type p : Ast.block_type =
  match (peek_tok p, if p.pos + 1 < Array.length p.toks then Some p.toks.(p.pos + 1) else None) with
  | Some LP, Some (Atom "result") ->
      expect_lp p;
      expect_kw p "result";
      let t = val_type_of_atom (expect_atom p) in
      expect_rp p;
      Ast.ValBlock (Some t)
  | _ -> Ast.ValBlock None

let parse_memarg p : Ast.memarg =
  let offset = ref 0L in
  let align = ref 0 in
  let rec go () =
    match peek_tok p with
    | Some (Atom a) when String.length a > 7 && String.sub a 0 7 = "offset=" ->
        ignore (next_tok p);
        offset := Int64.of_string (String.sub a 7 (String.length a - 7));
        go ()
    | Some (Atom a) when String.length a > 6 && String.sub a 0 6 = "align=" ->
        ignore (next_tok p);
        let bytes = int_of_string (String.sub a 6 (String.length a - 6)) in
        let rec log2 n acc = if n <= 1 then acc else log2 (n / 2) (acc + 1) in
        align := log2 bytes 0;
        go ()
    | _ -> ()
  in
  go ();
  { Ast.offset = !offset; align = !align }

let parse_seg_offset p : int64 =
  match peek_tok p with
  | Some (Atom a) when String.length a > 7 && String.sub a 0 7 = "offset=" ->
      ignore (next_tok p);
      Int64.of_string (String.sub a 7 (String.length a - 7))
  | _ -> 0L

let is_int_atom a =
  a <> "" && (match Int64.of_string_opt a with Some _ -> true | None -> false)

(* Parse instructions until one of [stops]; the stop atom is consumed
   and returned. *)
let rec parse_instrs p ~stops : Ast.instr list * string =
  let rec go acc =
    match peek_tok p with
    | Some (Atom a) when List.mem a stops ->
        ignore (next_tok p);
        (List.rev acc, a)
    | Some RP when List.mem ")" stops -> (List.rev acc, ")")
    | Some _ -> go (parse_instr p :: acc)
    | None -> perr "unexpected end of instruction stream"
  in
  go []

and parse_instr p : Ast.instr =
  let a = expect_atom p in
  match a with
  | "unreachable" -> Ast.Unreachable
  | "nop" -> Ast.Nop
  | "block" ->
      let bt = parse_block_type p in
      let body, _ = parse_instrs p ~stops:[ "end" ] in
      Ast.Block (bt, body)
  | "loop" ->
      let bt = parse_block_type p in
      let body, _ = parse_instrs p ~stops:[ "end" ] in
      Ast.Loop (bt, body)
  | "if" ->
      let bt = parse_block_type p in
      let then_, stop = parse_instrs p ~stops:[ "end"; "else" ] in
      let else_ =
        if stop = "else" then fst (parse_instrs p ~stops:[ "end" ]) else []
      in
      Ast.If (bt, then_, else_)
  | "br" -> Ast.Br (expect_int p)
  | "br_if" -> Ast.BrIf (expect_int p)
  | "br_table" ->
      (* all following integer atoms; the last is the default *)
      let rec nums acc =
        match peek_tok p with
        | Some (Atom a) when is_int_atom a ->
            ignore (next_tok p);
            nums (int_of_string a :: acc)
        | _ -> List.rev acc
      in
      (match nums [] with
      | [] -> perr "br_table needs at least a default"
      | ns ->
          let rec split = function
            | [ d ] -> ([], d)
            | x :: tl ->
                let ts, d = split tl in
                (x :: ts, d)
            | [] -> assert false
          in
          let ts, d = split ns in
          Ast.BrTable (ts, d))
  | "return" -> Ast.Return
  | "call" -> Ast.Call (expect_int p)
  | "call_indirect" ->
      expect_lp p;
      expect_kw p "type";
      let ti = expect_int p in
      expect_rp p;
      Ast.CallIndirect ti
  | "drop" -> Ast.Drop
  | "select" -> Ast.Select
  | "local.get" -> Ast.LocalGet (expect_int p)
  | "local.set" -> Ast.LocalSet (expect_int p)
  | "local.tee" -> Ast.LocalTee (expect_int p)
  | "global.get" -> Ast.GlobalGet (expect_int p)
  | "global.set" -> Ast.GlobalSet (expect_int p)
  | "memory.size" -> Ast.MemorySize
  | "memory.grow" -> Ast.MemoryGrow
  | "memory.fill" -> Ast.MemoryFill
  | "memory.copy" -> Ast.MemoryCopy
  | "segment.new" -> Ast.SegmentNew (parse_seg_offset p)
  | "segment.set_tag" -> Ast.SegmentSetTag (parse_seg_offset p)
  | "segment.free" -> Ast.SegmentFree (parse_seg_offset p)
  | "i64.pointer_sign" -> Ast.PointerSign
  | "i64.pointer_auth" -> Ast.PointerAuth
  | "i32.const" -> Ast.I32Const (Int64.to_int32 (expect_i64 p))
  | "i64.const" -> Ast.I64Const (expect_i64 p)
  | "f32.const" ->
      Ast.F32Const (Values.to_f32 (float_of_string (expect_atom p)))
  | "f64.const" -> Ast.F64Const (float_of_string (expect_atom p))
  | a when List.assoc_opt a cvtops <> None ->
      Ast.Cvtop (List.assoc a cvtops)
  | a -> (
      (* "<ty>.<op>" forms *)
      match String.index_opt a '.' with
      | None -> perr "unknown instruction %s" a
      | Some dot -> (
          let tys = String.sub a 0 dot in
          let opn = String.sub a (dot + 1) (String.length a - dot - 1) in
          let mem_ty () =
            match tys with
            | "i32" -> Types.I32
            | "i64" -> Types.I64
            | "f32" -> Types.F32
            | "f64" -> Types.F64
            | t -> perr "unknown type prefix %s" t
          in
          match (tys, opn) with
          | ("i32" | "i64"), "eqz" ->
              Ast.ITestop (if tys = "i32" then Ast.W32 else Ast.W64)
          | ("i32" | "i64"), _ when List.mem_assoc opn ibinops ->
              Ast.IBinop
                ((if tys = "i32" then Ast.W32 else Ast.W64),
                 List.assoc opn ibinops)
          | ("i32" | "i64"), _ when List.mem_assoc opn irelops ->
              Ast.IRelop
                ((if tys = "i32" then Ast.W32 else Ast.W64),
                 List.assoc opn irelops)
          | ("i32" | "i64"), _ when List.mem_assoc opn iunops ->
              Ast.IUnop
                ((if tys = "i32" then Ast.W32 else Ast.W64),
                 List.assoc opn iunops)
          | ("f32" | "f64"), _ when List.mem_assoc opn fbinops ->
              Ast.FBinop
                ((if tys = "f32" then Ast.W32 else Ast.W64),
                 List.assoc opn fbinops)
          | ("f32" | "f64"), _ when List.mem_assoc opn frelops ->
              Ast.FRelop
                ((if tys = "f32" then Ast.W32 else Ast.W64),
                 List.assoc opn frelops)
          | ("f32" | "f64"), _ when List.mem_assoc opn funops ->
              Ast.FUnop
                ((if tys = "f32" then Ast.W32 else Ast.W64),
                 List.assoc opn funops)
          | _, _
            when String.length opn >= 4 && String.sub opn 0 4 = "load" -> (
              let suffix = String.sub opn 4 (String.length opn - 4) in
              let ma = parse_memarg p in
              match suffix with
              | "" -> Ast.Load (mem_ty (), None, ma)
              | "8_s" -> Ast.Load (mem_ty (), Some (Ast.Pack8, Ast.SX), ma)
              | "8_u" -> Ast.Load (mem_ty (), Some (Ast.Pack8, Ast.ZX), ma)
              | "16_s" -> Ast.Load (mem_ty (), Some (Ast.Pack16, Ast.SX), ma)
              | "16_u" -> Ast.Load (mem_ty (), Some (Ast.Pack16, Ast.ZX), ma)
              | "32_s" -> Ast.Load (mem_ty (), Some (Ast.Pack32, Ast.SX), ma)
              | "32_u" -> Ast.Load (mem_ty (), Some (Ast.Pack32, Ast.ZX), ma)
              | s -> perr "unknown load suffix %s" s)
          | _, _
            when String.length opn >= 5 && String.sub opn 0 5 = "store" -> (
              let suffix = String.sub opn 5 (String.length opn - 5) in
              let ma = parse_memarg p in
              match suffix with
              | "" -> Ast.Store (mem_ty (), None, ma)
              | "8" -> Ast.Store (mem_ty (), Some Ast.Pack8, ma)
              | "16" -> Ast.Store (mem_ty (), Some Ast.Pack16, ma)
              | "32" -> Ast.Store (mem_ty (), Some Ast.Pack32, ma)
              | s -> perr "unknown store suffix %s" s)
          | _ -> perr "unknown instruction %s" a))

(* (type (func (param ...) (result ...))) — already past "(type" *)
let parse_functype_body p : Types.func_type =
  expect_lp p;
  expect_kw p "func";
  let params = ref [] in
  let results = ref [] in
  let rec clauses () =
    match peek_tok p with
    | Some LP ->
        expect_lp p;
        let kw = expect_atom p in
        let rec tys acc =
          match peek_tok p with
          | Some (Atom a) ->
              ignore (next_tok p);
              tys (val_type_of_atom a :: acc)
          | _ -> List.rev acc
        in
        let ts = tys [] in
        expect_rp p;
        (match kw with
        | "param" -> params := !params @ ts
        | "result" -> results := !results @ ts
        | k -> perr "unexpected %s in functype" k);
        clauses ()
    | _ -> ()
  in
  clauses ();
  expect_rp p;
  { Types.params = !params; results = !results }

(** Parse a module in the dialect {!module_} prints. *)
let parse (src : string) : Ast.module_ =
  let p = { toks = Array.of_list (tokenize src); pos = 0 } in
  expect_lp p;
  expect_kw p "module";
  let m = ref Ast.empty_module in
  let rec fields () =
    match peek_tok p with
    | Some RP ->
        ignore (next_tok p)
    | Some LP ->
        expect_lp p;
        let kw = expect_atom p in
        (match kw with
        | "type" ->
            let ft = parse_functype_body p in
            m := { !m with Ast.types = !m.Ast.types @ [ ft ] };
            expect_rp p
        | "import" ->
            let im_module =
              match next_tok p with Str s -> s | _ -> perr "import module"
            in
            let im_name =
              match next_tok p with Str s -> s | _ -> perr "import name"
            in
            expect_lp p;
            expect_kw p "func";
            expect_lp p;
            expect_kw p "type";
            let im_type = expect_int p in
            expect_rp p;
            expect_rp p;
            expect_rp p;
            m := { !m with Ast.imports = !m.Ast.imports @ [ { Ast.im_module; im_name; im_type } ] }
        | "memory" ->
            let idx =
              match expect_atom p with
              | "i64" -> Types.Idx64
              | "i32" -> Types.Idx32
              | a -> perr "memory index type %s" a
            in
            let min = expect_i64 p in
            let max =
              match peek_tok p with
              | Some (Atom a) when is_int_atom a ->
                  ignore (next_tok p);
                  Some (Int64.of_string a)
              | _ -> None
            in
            expect_rp p;
            m :=
              { !m with
                Ast.memory =
                  Some { Types.mem_idx = idx;
                         mem_limits = { Types.min; max } } }
        | "table" ->
            let n = expect_i64 p in
            expect_kw p "funcref";
            expect_rp p;
            m :=
              { !m with
                Ast.table =
                  Some { Types.tbl_limits = { Types.min = n; max = Some n } } }
        | "global" ->
            let mut, gty =
              match next_tok p with
              | LP ->
                  expect_kw p "mut";
                  let t = val_type_of_atom (expect_atom p) in
                  expect_rp p;
                  (true, t)
              | Atom a -> (false, val_type_of_atom a)
              | _ -> perr "global type"
            in
            expect_lp p;
            let init =
              match parse_instr p with
              | Ast.I32Const v -> Values.I32 v
              | Ast.I64Const v -> Values.I64 v
              | Ast.F32Const v -> Values.F32 v
              | Ast.F64Const v -> Values.F64 v
              | _ -> perr "global initialiser must be a constant"
            in
            expect_rp p;
            expect_rp p;
            m :=
              { !m with
                Ast.globals =
                  !m.Ast.globals
                  @ [ { Ast.g_type = { Types.mut; g_type = gty };
                        g_init = init } ] }
        | "func" ->
            let fname =
              match peek_tok p with
              | Some (Atom a) when String.length a > 0 && a.[0] = '$' ->
                  ignore (next_tok p);
                  Some (String.sub a 1 (String.length a - 1))
              | _ -> None
            in
            expect_lp p;
            expect_kw p "type";
            let ftype = expect_int p in
            expect_rp p;
            let locals =
              match (peek_tok p, if p.pos + 1 < Array.length p.toks then Some p.toks.(p.pos + 1) else None) with
              | Some LP, Some (Atom "local") ->
                  expect_lp p;
                  expect_kw p "local";
                  let rec tys acc =
                    match peek_tok p with
                    | Some (Atom a) ->
                        ignore (next_tok p);
                        tys (val_type_of_atom a :: acc)
                    | _ -> List.rev acc
                  in
                  let ts = tys [] in
                  expect_rp p;
                  ts
              | _ -> []
            in
            let body, _ = parse_instrs p ~stops:[ ")" ] in
            expect_rp p;
            m :=
              { !m with
                Ast.funcs =
                  !m.Ast.funcs @ [ { Ast.ftype; locals; body; fname } ] }
        | "elem" ->
            expect_lp p;
            expect_kw p "offset";
            let off = expect_i64 p in
            expect_rp p;
            expect_kw p "func";
            let rec idxs acc =
              match peek_tok p with
              | Some (Atom a) when is_int_atom a ->
                  ignore (next_tok p);
                  idxs (int_of_string a :: acc)
              | _ -> List.rev acc
            in
            let fs = idxs [] in
            expect_rp p;
            m :=
              { !m with
                Ast.elems =
                  !m.Ast.elems @ [ { Ast.e_offset = off; e_funcs = fs } ] }
        | "data" ->
            expect_lp p;
            expect_kw p "offset";
            let off = expect_i64 p in
            expect_rp p;
            let bytes =
              match next_tok p with Str s -> s | _ -> perr "data bytes"
            in
            expect_rp p;
            m :=
              { !m with
                Ast.datas =
                  !m.Ast.datas @ [ { Ast.d_offset = off; d_bytes = bytes } ] }
        | "export" ->
            let name =
              match next_tok p with Str s -> s | _ -> perr "export name"
            in
            expect_lp p;
            let kind = expect_atom p in
            let idx = expect_int p in
            expect_rp p;
            expect_rp p;
            let desc =
              match kind with
              | "func" -> Ast.Func_export idx
              | "memory" -> Ast.Mem_export idx
              | k -> perr "unsupported export kind %s" k
            in
            m :=
              { !m with
                Ast.exports =
                  !m.Ast.exports @ [ { Ast.ex_name = name; ex_desc = desc } ] }
        | "start" ->
            let i = expect_int p in
            expect_rp p;
            m := { !m with Ast.start = Some i }
        | k -> perr "unknown module field %s" k);
        fields ()
    | _ -> perr "expected module field or )"
  in
  fields ();
  !m
