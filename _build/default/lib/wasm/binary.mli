(** WebAssembly binary format: encoder and decoder.

    Follows the wasm core binary format (LEB128 integers, sections in
    index order) plus:

    - the memory64 limits flag (bit 2) for 64-bit memories;
    - the Cage extension instructions, encoded under the reserved
      [0xfb] prefix with sub-opcodes 1-5:

    {v
    0xfb 0x01 o  segment.new       0xfb 0x04    i64.pointer_sign
    0xfb 0x02 o  segment.set_tag   0xfb 0x05    i64.pointer_auth
    0xfb 0x03 o  segment.free
    v}

    [decode (encode m)] equals [m] up to function debug names, which the
    binary format does not carry. Decoding performs structural checks
    (magic, version, section sizes, vector bounds) but not validation —
    run {!Validate.validate} on the result before executing it. *)

exception Decode_error of string

val encode : Ast.module_ -> string
(** Serialise a module to binary bytes. *)

val decode : string -> Ast.module_
(** Parse binary bytes. @raise Decode_error on malformed input. *)

val write_file : string -> Ast.module_ -> unit
(** Encode and write a [.wasm] file. *)

val read_file : string -> Ast.module_
(** Read and decode a [.wasm] file. @raise Decode_error, [Sys_error]. *)
