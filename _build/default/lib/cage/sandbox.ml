(** External memory safety: the sandboxing model of paper §6.4.

    Several WASM instances live inside one host process; each instance's
    linear memory is a region of the host address space. The runtime
    must ensure a guest index can never reach outside its own region.
    Three enforcement strategies are modelled:

    - {e software bounds checks}: a cmp+branch the compiler emits before
      each access. A lowering bug (CVE-2023-26489 dropped the check for
      certain constant offsets) lets a hostile index escape;
    - {e guard pages}: sound only for 32-bit indices (§2.1);
    - {e MTE sandboxing} (Fig. 12b): each instance gets a distinct
      allocation tag, stored in its heap base pointer; runtime memory is
      tagged 0. Every access is tag-checked by hardware, so even an
      access the compiler forgot to bounds-check faults. Guest indices
      are masked (Fig. 13) before address computation so tag bits cannot
      be forged.

    This module is deliberately a {e separate} miniature runtime rather
    than a change to the interpreter: it executes raw accesses the way
    compiled code would, including buggy lowerings, which the
    interpreter (being the semantic ground truth) must never produce. *)

open Arch

type strategy = Config.sandbox

type outcome =
  | Value of int64               (** access performed, data returned *)
  | Bounds_trap                  (** software check caught it *)
  | Segfault                     (** guard page caught it *)
  | Tag_fault of Mte.fault       (** MTE caught it *)

(** Did the access stay within / get stopped at the sandbox boundary?
    [Escaped] means data outside the instance's region was reached. *)
let escaped ~region_size ~index = function
  | Value _ -> Int64.unsigned_compare index region_size >= 0
  | Bounds_trap | Segfault | Tag_fault _ -> false

type instance_region = {
  tag : Tag.t;          (** instance tag, stored in the heap base *)
  base : int64;         (** offset of the region in host memory *)
  size : int64;         (** linear memory size *)
}

type t = {
  host : Bytes.t;
  tags : Tag_memory.t;
  mte : Mte.t;
  config : Config.t;
  mutable regions : instance_region list;
  mutable next_tag : int;
  tag_reuse_reach : int64 option;
      (** §6.4 future work: when [Some reach], a tag may be reused for a
          region provably unreachable by another instance's pointers
          (i.e. farther than [reach] bytes — 4 GiB for real 32-bit
          indices — with guard pages covering the gap). Lifts the
          15-sandbox limit. *)
}

(** A host with [size] bytes of memory; runtime memory is tagged 0.
    [tag_reuse_reach] enables the §6.4 extension: tags are recycled for
    regions more than [reach] bytes apart. *)
let create ?(config = Config.sandboxing) ?tag_reuse_reach ~size () =
  let tags = Tag_memory.create ~size_bytes:size in
  {
    host = Bytes.make size '\000';
    tags;
    mte = Mte.create ~mode:config.mte_mode tags;
    config;
    regions = [];
    next_tag = 1;
    tag_reuse_reach;
  }

exception Too_many_sandboxes

(* Pick a tag for a new region at [base]: either the next fresh tag (at
   most 15), or — with tag reuse — the smallest non-zero tag not held by
   any region within reach. *)
let pick_tag t ~base ~size =
  match t.tag_reuse_reach with
  | None ->
      if t.next_tag > 15 then raise Too_many_sandboxes;
      let tag = Tag.of_int_exn t.next_tag in
      t.next_tag <- t.next_tag + 1;
      tag
  | Some reach ->
      let lo = Int64.sub base reach in
      let hi = Int64.add (Int64.add base (Int64.of_int size)) reach in
      let in_reach (r : instance_region) =
        (* region [r] overlaps the window [lo, hi) *)
        r.base < hi && Int64.add r.base r.size > lo
      in
      let used =
        List.filter_map
          (fun r -> if in_reach r then Some (Tag.to_int r.tag) else None)
          t.regions
      in
      let rec first_free c =
        if c > 15 then raise Too_many_sandboxes
        else if List.mem c used then first_free (c + 1)
        else Tag.of_int_exn c
      in
      first_free 1

(** Register a new instance region of [size] bytes at the next free host
    offset. Under MTE sandboxing at most 15 instances fit concurrently
    within pointer reach (tag 0 belongs to the runtime); beyond that
    {!Too_many_sandboxes} is raised — the §6.4 limitation — unless tag
    reuse is enabled. *)
let add_instance t ~size =
  let base =
    List.fold_left
      (fun acc r -> Int64.max acc (Int64.add r.base r.size))
      0L t.regions
  in
  if Int64.add base (Int64.of_int size) > Int64.of_int (Bytes.length t.host)
  then invalid_arg "Sandbox.add_instance: host memory exhausted";
  let tag =
    match t.config.sandbox with
    | Config.Mte_sandbox ->
        let tag = pick_tag t ~base ~size in
        (match
           Tag_memory.set_region t.tags ~addr:base ~len:(Int64.of_int size) tag
         with
        | Ok () -> ()
        | Error e -> invalid_arg e);
        tag
    | _ -> Tag.zero
  in
  let region = { tag; base; size = Int64.of_int size } in
  t.regions <- t.regions @ [ region ];
  region

(** The tagged heap base pointer the runtime hands to compiled code
    (Fig. 12b): region base with the instance tag in bits 56-59. *)
let heap_base (r : instance_region) = Ptr.with_tag r.base r.tag

(** Perform a guest load of 8 bytes at [index] within instance [r],
    using the host's enforcement strategy.

    [buggy_lowering] simulates CVE-2023-26489: the compiler emitted code
    without the bounds check (software strategy) for this access. Under
    MTE sandboxing the same miscompilation is harmless: the hardware tag
    check still fires. *)
let guest_load ?(buggy_lowering = false) t (r : instance_region) ~index =
  match t.config.sandbox with
  | Config.Software_bounds ->
      if (not buggy_lowering) && Int64.unsigned_compare index r.size >= 0 then
        Bounds_trap
      else
        let addr = Int64.add r.base index in
        if addr < 0L || Int64.add addr 8L > Int64.of_int (Bytes.length t.host)
        then Segfault
        else Value (Bytes.get_int64_le t.host (Int64.to_int addr))
  | Config.Guard_pages ->
      (* 32-bit index, 4 GiB + guard region mapped: any 32-bit index
         either hits the memory or a guard page. We model host memory
         beyond the region as guarded. *)
      let index = Int64.logand index 0xffffffffL in
      if Int64.unsigned_compare index r.size >= 0 then Segfault
      else Value (Bytes.get_int64_le t.host (Int64.to_int (Int64.add r.base index)))
  | Config.Mte_sandbox -> (
      (* Fig. 13: mask the untrusted index, then add to the tagged
         base. The pointer inherits the base's tag. *)
      let mask =
        match Config.index_mask t.config with
        | Some m -> m
        | None -> Fun.id
      in
      let index = mask index in
      let ptr = Ptr.with_tag (Int64.add r.base (Ptr.address index)) r.tag in
      match Mte.check t.mte Mte.Load ~ptr ~len:8L with
      | Mte.Allowed | Mte.Deferred _ ->
          let addr = Ptr.address ptr in
          if Int64.add addr 8L > Int64.of_int (Bytes.length t.host) then
            Segfault
          else Value (Bytes.get_int64_le t.host (Int64.to_int addr))
      | Mte.Faulted f -> Tag_fault f)

(** Store [v] into an instance's own region directly (setup helper). *)
let poke t (r : instance_region) ~index v =
  if Int64.unsigned_compare index r.size >= 0 then
    invalid_arg "Sandbox.poke: out of region";
  Bytes.set_int64_le t.host (Int64.to_int (Int64.add r.base index)) v
