(** Cost-model lowering: what a Cranelift-with-Cage backend emits.

    The interpreter executes a workload once per configuration and
    records semantic events in a {!Wasm.Meter.t}; this module prices
    that event record as native AArch64 work on a given core. The same
    per-core constants reproduce the paper's raw-hardware
    microbenchmarks (Table 1, Fig. 4), so the PolyBench overheads of
    Fig. 14 are derived, not fitted — see DESIGN.md "Calibration". *)

val expansion :
  Config.t -> Wasm.Meter.t -> (Arch.Insn.kind * float) list
(** The native instruction mix a backend emits for the metered events
    under the given configuration, as (kind, count) pairs: the base
    expansion of each wasm operation, plus segment tagging sequences
    when internal safety is on and [pacda]/[autda] when pointer
    authentication is on. Sandbox checks are priced separately (see
    {!cycles}) because out-of-order cores speculate through them. *)

val native_instructions : Config.t -> Wasm.Meter.t -> float
(** Total native instructions after expansion. *)

val cycles : Arch.Cpu_model.t -> Config.t -> Wasm.Meter.t -> float
(** Price a metered run on [cpu] under [cfg], in cycles:
    throughput-limited issue + exposed divide latency + indirect-call
    dispatch + the per-access sandbox/tag-check costs. *)

val seconds : Arch.Cpu_model.t -> Config.t -> Wasm.Meter.t -> float
(** {!cycles} at the core's clock. *)

val startup_seconds :
  Arch.Cpu_model.t -> Config.t -> mem_bytes:float -> float
(** Instantiation cost for a module with [mem_bytes] of linear memory
    (paper §7.2): fixed runtime work plus delivering zeroed — or, under
    MTE sandboxing, zeroed-and-tagged via the [stzg] family — memory. *)
