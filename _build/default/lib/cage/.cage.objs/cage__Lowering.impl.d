lib/cage/lowering.ml: Arch Config Cpu_model Float Insn List Timing Wasm
