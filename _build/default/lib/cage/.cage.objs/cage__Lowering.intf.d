lib/cage/lowering.mli: Arch Config Wasm
