lib/cage/config.mli: Arch Format Wasm
