lib/cage/sandbox.ml: Arch Bytes Config Fun Int64 List Mte Ptr Tag Tag_memory
