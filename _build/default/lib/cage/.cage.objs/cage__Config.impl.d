lib/cage/config.ml: Arch Format List Wasm
