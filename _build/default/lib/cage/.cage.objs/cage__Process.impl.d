lib/cage/process.ml: Arch Config Int64 List Random Sandbox Wasm
