lib/cage/process.mli: Config Wasm
