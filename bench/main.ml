(* The benchmark harness: regenerates every table and figure of the
   paper and prints paper-vs-measured rows.

     dune exec bench/main.exe             -- all experiments
     dune exec bench/main.exe fig14       -- one experiment
     dune exec bench/main.exe bechamel    -- wall-clock library benches

   Experiment ids: table1 fig4 fig14 fig14-detail fig15 fig16 table2 mem
   startup collision ablation escape bechamel *)

let ppf_ref = ref Format.std_formatter

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let paper_table1 =
  (* insn -> (tp, lat option) per core, paper order X3/A715/A510 *)
  [
    ("irg", [ (1.34, Some 1.99); (1.00, Some 2.00); (0.50, Some 3.00) ]);
    ("addg", [ (2.01, Some 1.99); (3.81, Some 1.00); (2.22, Some 2.00) ]);
    ("subg", [ (2.01, Some 1.99); (3.81, Some 1.00); (2.22, Some 2.00) ]);
    ("subp", [ (3.49, Some 0.99); (3.81, Some 1.00); (2.50, Some 2.00) ]);
    ("subps", [ (2.88, Some 0.99); (3.80, Some 1.00); (2.50, Some 2.00) ]);
    ("stg", [ (1.00, None); (1.81, None); (1.00, None) ]);
    ("st2g", [ (1.00, None); (1.84, None); (0.46, None) ]);
    ("stzg", [ (1.00, None); (1.84, None); (0.98, None) ]);
    ("st2zg", [ (0.34, None); (1.79, None); (0.45, None) ]);
    ("stgp", [ (1.00, None); (1.69, None); (0.98, None) ]);
    ("ldg", [ (2.92, None); (1.91, None); (0.93, None) ]);
    ("pacdza", [ (1.01, Some 4.97); (1.51, Some 5.00); (0.20, Some 4.99) ]);
    ("pacda", [ (1.01, Some 4.97); (1.42, Some 5.00); (0.20, Some 5.00) ]);
    ("autdza", [ (1.01, Some 4.97); (1.51, Some 5.00); (0.20, Some 7.99) ]);
    ("autda", [ (1.01, Some 4.97); (1.43, Some 5.00); (0.20, Some 7.99) ]);
    ("xpacd", [ (1.01, Some 1.99); (1.56, Some 2.00); (0.20, Some 4.99) ]);
  ]

let run_table1 () =
  Harness.Report.title (!ppf_ref)
    "Table 1: MTE/PAC instruction throughput (insn/cycle) and latency (cycles)";
  let rows = Workloads.Microbench.table1 () in
  let fmt_lat = function Some l -> Printf.sprintf "%.2f" l | None -> "-" in
  let table_rows =
    List.map
      (fun (r : Workloads.Microbench.insn_row) ->
        let paper = List.assoc_opt r.ir_insn paper_table1 in
        r.ir_insn
        :: List.concat
             (List.mapi
                (fun i (_, tp, lat) ->
                  let ptp, plat =
                    match paper with
                    | Some l ->
                        let a, b = List.nth l i in
                        (Printf.sprintf "%.2f" a, fmt_lat b)
                    | None -> ("-", "-")
                  in
                  [
                    Printf.sprintf "%.2f/%s" tp ptp;
                    Printf.sprintf "%s/%s" (fmt_lat lat) plat;
                  ])
                r.ir_results))
      rows
  in
  Harness.Report.table (!ppf_ref)
    ~header:
      [ "insn"; "X3 tp"; "X3 lat"; "A715 tp"; "A715 lat"; "A510 tp";
        "A510 lat" ]
    table_rows;
  Format.fprintf (!ppf_ref) "  (each cell: measured/paper)@."

(* ------------------------------------------------------------------ *)
(* Fig. 4                                                              *)
(* ------------------------------------------------------------------ *)

let run_fig4 () =
  Harness.Report.title (!ppf_ref)
    "Fig. 4: memset of 128 MiB under MTE modes (overhead vs disabled)";
  let paper = [ (19.1, 2.6); (14.4, 3.3); (29.9, 11.3) ] in
  let rows = Workloads.Microbench.fig4 () in
  Harness.Report.table (!ppf_ref)
    ~header:
      [ "core"; "disabled"; "sync"; "async"; "sync ovh (m/p)";
        "async ovh (m/p)" ]
    (List.mapi
       (fun i (r : Workloads.Microbench.memset_row) ->
         let psync, pasync = List.nth paper i in
         let ovh a = 100.0 *. ((a /. r.ms_off) -. 1.0) in
         [
           r.ms_core;
           Harness.Report.seconds r.ms_off;
           Harness.Report.seconds r.ms_sync;
           Harness.Report.seconds r.ms_async;
           Printf.sprintf "%.1f%%/%.1f%%" (ovh r.ms_sync) psync;
           Printf.sprintf "%.1f%%/%.1f%%" (ovh r.ms_async) pasync;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* Fig. 14                                                             *)
(* ------------------------------------------------------------------ *)

let run_fig14 () =
  Harness.Report.title (!ppf_ref)
    "Fig. 14: PolyBench/C runtime overhead vs baseline wasm64 (mean +- std over %d kernels)"
    (List.length Workloads.Polybench.all);
  let cells, _detail = Harness.Experiment.fig14 () in
  Harness.Report.table (!ppf_ref)
    ~header:[ "configuration"; "core"; "measured"; "paper" ]
    (List.map
       (fun (c : Harness.Experiment.fig14_cell) ->
         [
           c.fc_config;
           c.fc_core;
           Printf.sprintf "%+.1f%% +- %.1f%%" c.fc_mean c.fc_std;
           (match c.fc_paper with
           | Some p -> Printf.sprintf "%+.1f%%" p
           | None -> "~0% (within error)");
         ])
       cells);
  Format.fprintf (!ppf_ref)
    "  (negative = faster than wasm64; the wasm32 row restates the paper's \
     6-8%% OoO / 52%% in-order cost of 64-bit wasm)@."

let run_fig14_detail () =
  Harness.Report.title (!ppf_ref) "Fig. 14 (per-kernel detail, Cortex-X3)";
  let _, detail = Harness.Experiment.fig14 () in
  let kernels =
    List.sort_uniq compare (List.map (fun (kn, _, _, _) -> kn) detail)
  in
  let cfgs =
    [ "baseline wasm32"; "Cage-mem-safety"; "Cage-sandboxing"; "CAGE" ]
  in
  Harness.Report.table (!ppf_ref)
    ~header:("kernel" :: cfgs)
    (List.map
       (fun kernel ->
         kernel
         :: List.map
              (fun cfg ->
                match
                  List.find_opt
                    (fun (kn, c, core, _) ->
                      kn = kernel && c = cfg && core = "Cortex-X3")
                    detail
                with
                | Some (_, _, _, ov) -> Printf.sprintf "%+.1f%%" ov
                | None -> "-")
              cfgs)
       kernels)

(* ------------------------------------------------------------------ *)
(* Fig. 15                                                             *)
(* ------------------------------------------------------------------ *)

let run_fig15 () =
  Harness.Report.title (!ppf_ref)
    "Fig. 15: static vs dynamic vs authenticated dynamic calls (modified 2mm)";
  let rows = Workloads.Microbench.fig15 () in
  Harness.Report.table (!ppf_ref)
    ~header:[ "core"; "static"; "dynamic"; "dyn+auth"; "dyn ovh"; "auth ovh" ]
    (List.map
       (fun (r : Workloads.Microbench.fig15_row) ->
         [
           r.f15_core;
           Harness.Report.seconds r.f15_static;
           Harness.Report.seconds r.f15_dynamic;
           Harness.Report.seconds r.f15_dynamic_auth;
           Harness.Report.pct
             (100.0 *. ((r.f15_dynamic /. r.f15_static) -. 1.0));
           Harness.Report.pct
             (100.0 *. ((r.f15_dynamic_auth /. r.f15_dynamic) -. 1.0));
         ])
       rows);
  Format.fprintf (!ppf_ref)
    "  (paper: dynamic costs 15-22%% over static; authentication adds \
     virtually nothing)@."

(* ------------------------------------------------------------------ *)
(* Fig. 16                                                             *)
(* ------------------------------------------------------------------ *)

let run_fig16 () =
  Harness.Report.title (!ppf_ref)
    "Fig. 16 / Table 4: initialising + tagging 128 MiB (relative to plain memset)";
  let rows = Workloads.Microbench.fig16 () in
  let variants = List.map fst (List.hd rows).Workloads.Microbench.f16_times in
  Harness.Report.table (!ppf_ref)
    ~header:
      ("variant"
      :: List.map (fun r -> r.Workloads.Microbench.f16_core) rows)
    (List.map
       (fun v ->
         v
         :: List.map
              (fun (r : Workloads.Microbench.fig16_row) ->
                let t = List.assoc v r.f16_times in
                let memset = List.assoc "memset" r.f16_times in
                Printf.sprintf "%s (%.2fx)" (Harness.Report.seconds t)
                  (t /. memset))
              rows)
       variants);
  Format.fprintf (!ppf_ref)
    "  (paper: stzg/st2zg/stgp slightly beat memset - they skip the tag \
     check; stg-only passes touch 1/32 of the data)@."

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

let run_table2 () =
  Harness.Report.title (!ppf_ref)
    "Table 2: CVE re-creations under baseline wasm64 vs Cage-mem-safety";
  let verdicts = Workloads.Cve_suite.evaluate_all () in
  Harness.Report.table (!ppf_ref)
    ~header:[ "CVE"; "cause"; "baseline wasm64"; "Cage" ]
    (List.map
       (fun (v : Workloads.Cve_suite.verdict) ->
         [
           v.v_entry.cve;
           v.v_entry.cause;
           v.v_baseline;
           (if v.v_caught then "trapped (caught)" else "MISSED");
         ])
       verdicts);
  let caught =
    List.length
      (List.filter (fun v -> v.Workloads.Cve_suite.v_caught) verdicts)
  in
  Format.fprintf (!ppf_ref) "  caught %d/%d (paper: all exploitable in plain WASM)@."
    caught (List.length verdicts)

(* ------------------------------------------------------------------ *)
(* §7.3 memory overhead                                                *)
(* ------------------------------------------------------------------ *)

let run_mem () =
  Harness.Report.title (!ppf_ref) "Sec 7.3: memory overhead (rss analogue)";
  let rows = Harness.Experiment.memory_overhead () in
  let ovh64 =
    List.map
      (fun (r : Harness.Experiment.mem_row) ->
        100.0
        *. ((Int64.to_float r.mr_rss64 /. Int64.to_float r.mr_rss32) -. 1.0))
      rows
  in
  let ovh_cage =
    List.map
      (fun (r : Harness.Experiment.mem_row) ->
        100.0
        *. ((Int64.to_float r.mr_cage /. Int64.to_float r.mr_rss32) -. 1.0))
      rows
  in
  let m64, _ = Harness.Report.mean_std ovh64 in
  let mc, _ = Harness.Report.mean_std ovh_cage in
  Harness.Report.compare_line (!ppf_ref) ~label:"wasm64 over wasm32" ~paper:"+0.6%"
    ~measured:(Harness.Report.pct m64) ~unit_:"";
  Harness.Report.compare_line (!ppf_ref) ~label:"CAGE total (incl. 3.125% tags)"
    ~paper:"< +5.3%" ~measured:(Harness.Report.pct mc) ~unit_:"";
  Harness.Report.table (!ppf_ref)
    ~header:[ "kernel"; "rss32"; "rss64"; "cage (rss64 + tags)" ]
    (List.map
       (fun (r : Harness.Experiment.mem_row) ->
         [
           r.mr_kernel;
           Printf.sprintf "%Ld B" r.mr_rss32;
           Printf.sprintf "%Ld B" r.mr_rss64;
           Printf.sprintf "%Ld B" r.mr_cage;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* §7.2 startup                                                        *)
(* ------------------------------------------------------------------ *)

let run_startup () =
  Harness.Report.title (!ppf_ref)
    "Sec 7.2: startup of an instance with 128 MiB memory";
  Harness.Report.table (!ppf_ref)
    ~header:[ "core"; "baseline"; "CAGE (tagging)"; "delta" ]
    (List.map
       (fun (r : Workloads.Microbench.startup_row) ->
         [
           r.su_core;
           Harness.Report.seconds r.su_baseline;
           Harness.Report.seconds r.su_cage;
           Harness.Report.pct (100.0 *. ((r.su_cage /. r.su_baseline) -. 1.0));
         ])
       (Workloads.Microbench.startup ()));
  Format.fprintf (!ppf_ref)
    "  (paper: the tagging cost is hidden by the runtime's startup work)@."

(* ------------------------------------------------------------------ *)
(* §7.4 collisions, ablations, sandbox experiments                     *)
(* ------------------------------------------------------------------ *)

let run_collision () =
  Harness.Report.title (!ppf_ref) "Sec 7.4: allocation-tag collision probability";
  List.iter
    (fun (r : Harness.Experiment.collision_row) ->
      Harness.Report.compare_line (!ppf_ref) ~label:r.cr_label
        ~paper:(Printf.sprintf "%.3f" r.cr_theory)
        ~measured:(Printf.sprintf "%.3f" r.cr_measured)
        ~unit_:"")
    (Harness.Experiment.tag_collisions ())

let run_ablation () =
  Harness.Report.title (!ppf_ref)
    "Ablation: Algorithm 1 selectivity (instrumented stack slots)";
  let rows = Harness.Experiment.sanitizer_ablation () in
  Harness.Report.table (!ppf_ref)
    ~header:
      [ "program"; "Algorithm 1"; "instrument-all"; "before optimiser";
        "all/selective runtime" ]
    (List.map
       (fun (r : Harness.Experiment.sanitizer_ablation) ->
         [
           r.sa_kernel;
           string_of_int r.sa_selective;
           string_of_int r.sa_all;
           string_of_int r.sa_unoptimised;
           Printf.sprintf "%.2fx" r.sa_runtime_cost;
         ])
       rows);
  let total f = List.fold_left (fun a r -> a + f r) 0 rows in
  Format.fprintf (!ppf_ref)
    "  totals: selective %d, all %d, pre-optimiser %d@."
    (total (fun r -> r.Harness.Experiment.sa_selective))
    (total (fun r -> r.Harness.Experiment.sa_all))
    (total (fun r -> r.Harness.Experiment.sa_unoptimised));
  let guard_rate = Harness.Experiment.guard_slot_ablation () in
  Format.fprintf (!ppf_ref)
    "  guard slots (Fig. 8b): inter-frame underflow caught in %.0f%% of seeds@."
    (100.0 *. guard_rate)

let run_escape () =
  Harness.Report.title (!ppf_ref)
    "Sandboxing: CVE-2023-26489-style buggy lowering, and Sec 6.4 capacity";
  List.iter
    (fun (r : Harness.Experiment.escape_result) ->
      Format.fprintf (!ppf_ref) "  %-42s -> %s%s@." r.er_strategy r.er_outcome
        (if r.er_escaped then "  ** SANDBOX ESCAPE **" else ""))
    (Harness.Experiment.sandbox_escape ());
  Format.fprintf (!ppf_ref)
    "  max concurrent MTE sandboxes per process: %d (paper: 15)@."
    (Harness.Experiment.sandbox_capacity ())

let run_modes () =
  Harness.Report.title (!ppf_ref)
    "Ablation: MTE checking modes on a heap overflow (Sec 2.3 / Fig. 2)";
  List.iter
    (fun (r : Harness.Experiment.mode_row) ->
      Format.fprintf (!ppf_ref) "  %-10s %-70s cost vs sync: %+.1f%%@."
        (Arch.Mte.mode_to_string r.md_mode)
        r.md_outcome r.md_polybench_cost)
    (Harness.Experiment.mte_modes ());
  Format.fprintf (!ppf_ref)
    "  (sync/asymmetric trap before the write lands; async detects at the      next context switch; the paper uses sync, Sec 6.3)@."

(* ------------------------------------------------------------------ *)
(* Checked bulk fast path (BENCH_memfast.json)                         *)
(* ------------------------------------------------------------------ *)

(* Compares the unified checked-access layer's bulk shape (one span tag
   check + one memset/memmove) against the per-byte shape the runtime
   used to have (one tag check and one store per byte). Results land in
   BENCH_memfast.json so the fast path is tracked across revisions. *)
let run_memfast () =
  Harness.Report.title (!ppf_ref)
    "Checked memset/memcpy fast path vs per-byte scalar loop";
  let mem =
    Wasm.Memory.create
      { Wasm.Types.mem_idx = Wasm.Types.Idx64;
        mem_limits = { Wasm.Types.min = 4L; max = Some 4L } }
  in
  let bytes = 65536 in
  let len = Int64.of_int bytes in
  let tm =
    Arch.Tag_memory.create
      ~size_bytes:(Int64.to_int (Wasm.Memory.size_bytes mem))
  in
  let tag = Arch.Tag.of_int 5 in
  (match Arch.Tag_memory.set_region tm ~addr:0L ~len tag with
  | Ok () -> ()
  | Error e -> failwith e);
  let iters = 400 in
  let time f =
    f ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int iters
  in
  (* per-byte shape: one tag check and one store per byte *)
  let scalar_memset () =
    for i = 0 to bytes - 1 do
      let addr = Int64.of_int i in
      if not (Arch.Tag_memory.matches tm ~addr ~len:1L tag) then
        failwith "tag mismatch";
      Wasm.Memory.store_byte mem addr 0xab
    done
  in
  (* checked-layer shape: one span tag check, then one memset *)
  let checked_memset () =
    if not (Arch.Tag_memory.matches tm ~addr:0L ~len tag) then
      failwith "tag mismatch";
    Wasm.Memory.fill mem ~addr:0L ~len 0xab
  in
  let half = Int64.of_int (bytes / 2) in
  let scalar_memcpy () =
    for i = 0 to (bytes / 2) - 1 do
      let src = Int64.of_int i and dst = Int64.of_int ((bytes / 2) + i) in
      if not (Arch.Tag_memory.matches tm ~addr:src ~len:1L tag) then
        failwith "tag mismatch";
      if not (Arch.Tag_memory.matches tm ~addr:dst ~len:1L tag) then
        failwith "tag mismatch";
      Wasm.Memory.store_byte mem dst (Wasm.Memory.load_byte mem src)
    done
  in
  let checked_memcpy () =
    if not (Arch.Tag_memory.matches tm ~addr:0L ~len:half tag) then
      failwith "tag mismatch";
    if not (Arch.Tag_memory.matches tm ~addr:half ~len:half tag) then
      failwith "tag mismatch";
    Wasm.Memory.copy mem ~dst:half ~src:0L ~len:half
  in
  let t_scalar_set = time scalar_memset in
  let t_checked_set = time checked_memset in
  let t_scalar_cpy = time scalar_memcpy in
  let t_checked_cpy = time checked_memcpy in
  let speedup_set = t_scalar_set /. t_checked_set in
  let speedup_cpy = t_scalar_cpy /. t_checked_cpy in
  Harness.Report.table (!ppf_ref)
    ~header:[ "primitive"; "per-byte loop"; "checked bulk"; "speedup" ]
    [
      [ "memset 64 KiB"; Harness.Report.seconds t_scalar_set;
        Harness.Report.seconds t_checked_set;
        Printf.sprintf "%.1fx" speedup_set ];
      [ "memcpy 32 KiB"; Harness.Report.seconds t_scalar_cpy;
        Harness.Report.seconds t_checked_cpy;
        Printf.sprintf "%.1fx" speedup_cpy ];
    ];
  let oc = open_out "BENCH_memfast.json" in
  Printf.fprintf oc
    "{\n\
    \  \"memset_bytes\": %d,\n\
    \  \"scalar_memset_s\": %.9f,\n\
    \  \"checked_memset_s\": %.9f,\n\
    \  \"memset_speedup\": %.2f,\n\
    \  \"scalar_memcpy_s\": %.9f,\n\
    \  \"checked_memcpy_s\": %.9f,\n\
    \  \"memcpy_speedup\": %.2f\n\
     }\n"
    bytes t_scalar_set t_checked_set speedup_set t_scalar_cpy t_checked_cpy
    speedup_cpy;
  close_out oc;
  Format.fprintf (!ppf_ref)
    "  wrote BENCH_memfast.json (target: checked memset >= 3x the per-byte \
     loop)@."

(* ------------------------------------------------------------------ *)
(* Observability overhead (BENCH_obsoverhead.json)                     *)
(* ------------------------------------------------------------------ *)

(* The obs layer's contract is "zero-cost when disabled": with no sink
   installed the interpreter pays one load-and-compare per interpreted
   op (obs_tick) and one per checked span (span_check). The pre-obs
   interpreter no longer exists in this binary, so the disabled
   overhead is computed honestly from parts: microbench the
   load-and-compare itself, count how many the workload executes (from
   the meter), and divide by the measured uninstrumented runtime.
   Tracing-on cost is measured directly as full-sink vs no-sink. *)
let run_obsoverhead () =
  Harness.Report.title (!ppf_ref)
    "Observability overhead: disabled hook cost and full-sink tracing cost";
  let kernel =
    match Workloads.Polybench.find "atax" with
    | Some kn -> kn
    | None -> assert false
  in
  let iters = 5 in
  let time f =
    ignore (f ());
    let best = ref infinity in
    for _ = 1 to iters do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let meter = Wasm.Meter.create () in
  let run_with cfg () =
    Wasm.Meter.reset meter;
    ignore (Libc.Run.run ~cfg ~meter kernel.Workloads.Polybench.k_source)
  in
  (* The disabled-overhead model prices one obs_tick per interpreted op
     and one span_check per access, so the gated measurement pins the
     reference interpreter. The threaded engine batches those checks
     per superinstruction and runs several times faster; its no-sink
     runtime is reported informationally below. *)
  let run_workload =
    run_with (Cage.Config.with_engine Wasm.Instance.Interp Cage.Config.full)
  in
  Obs.Hook.uninstall ();
  let t_off = time run_workload in
  let t_off_threaded = time (run_with Cage.Config.full) in
  let ops = Wasm.Meter.total meter in
  let mem = Wasm.Meter.mem_accesses meter in
  let t_full =
    time (fun () ->
        Obs.Hook.with_sink
          (Obs.Hook.make ~trace:(Obs.Trace.create ())
             ~metrics:(Obs.Metrics.cage ())
             ~profiler:(Obs.Profiler.create ()) ())
          run_workload)
  in
  (* The disabled fast path, exactly as the interpreter spells it: one
     load of the hook ref and a branch. Best-of-N like the workload
     timings above — the ratio below divides this by a best-of-N
     runtime, so a single load-inflated sample here would bias the
     gate upward. Eight checks per loop iteration so the loop
     counter's own decrement-and-branch is amortized out of the
     per-check figure instead of dominating it — at the interpreter's
     call sites the guard sits inside an already-running dispatch
     loop, so pricing the bare guard is the honest model. *)
  let check_ns =
    let n = 1_000_000 in
    let once () =
      let acc = ref 0 in
      let step () =
        match !Obs.Hook.hook with None -> () | Some _ -> incr acc
      in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to n do
        step (); step (); step (); step ();
        step (); step (); step (); step ()
      done;
      let dt = Unix.gettimeofday () -. t0 in
      ignore (Sys.opaque_identity !acc);
      dt *. 1e9 /. float_of_int (8 * n)
    in
    let best = ref (once ()) in
    for _ = 2 to 20 do
      best := Float.min !best (once ())
    done;
    !best
  in
  (* obs_tick once per interpreted op, span_check once per scalar
     memory access: the checks this workload actually executes. *)
  let checks = ops + mem in
  let disabled_pct =
    float_of_int checks *. check_ns /. (t_off *. 1e9) *. 100.0
  in
  let full_pct = 100.0 *. ((t_full /. t_off) -. 1.0) in
  (* Request-span overhead on the serving path: the same chaos-on
     replay with the span recorder + SLO collector installed vs bare.
     Tenants are compiled once, outside the timed region — the ratio
     isolates the instrumentation, not the compiler. *)
  let serve_seed = 7 in
  let serve_tenants = Harness.Serve_bench.tenants ~seed:serve_seed () in
  let serve_config =
    {
      Serve.Server.default_config with
      Serve.Server.requests = 2_000;
      seed = serve_seed;
    }
  in
  let serve_run ?collect () =
    ignore
      (Serve.Server.run
         ~chaos:(Harness.Serve_bench.chaos_policy ~seed:serve_seed)
         ?collect serve_config serve_tenants)
  in
  Obs.Span.uninstall ();
  let t_serve_off = time (fun () -> serve_run ()) in
  let t_serve_on =
    time (fun () ->
        Obs.Span.with_recorder (Obs.Span.create ()) (fun () ->
            serve_run ~collect:(Serve.Slo.collector ()) ()))
  in
  let serve_spans_pct = 100.0 *. ((t_serve_on /. t_serve_off) -. 1.0) in
  Harness.Report.table (!ppf_ref)
    ~header:[ "configuration"; "runtime"; "overhead" ]
    [
      [ "no sink (measured, interp)"; Harness.Report.seconds t_off;
        "baseline" ];
      [ "no sink (measured, threaded)";
        Harness.Report.seconds t_off_threaded;
        Printf.sprintf "%.1fx faster" (t_off /. t_off_threaded) ];
      [ "no sink vs pre-obs (computed)"; Harness.Report.seconds t_off;
        Printf.sprintf "%.3f%%" disabled_pct ];
      [ "trace+metrics+profiler"; Harness.Report.seconds t_full;
        Harness.Report.pct full_pct ];
      [ "serving, spans off"; Harness.Report.seconds t_serve_off;
        "baseline" ];
      [ "serving, spans+slo on"; Harness.Report.seconds t_serve_on;
        Harness.Report.pct serve_spans_pct ];
    ];
  Format.fprintf (!ppf_ref)
    "  hook check: %.2f ns; %d checks over %d ops (target: disabled <= 2%%)@."
    check_ns checks ops;
  let oc = open_out "BENCH_obsoverhead.json" in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": \"atax\",\n\
    \  \"ops\": %d,\n\
    \  \"mem_accesses\": %d,\n\
    \  \"t_off_s\": %.9f,\n\
    \  \"t_off_threaded_s\": %.9f,\n\
    \  \"t_full_s\": %.9f,\n\
    \  \"check_ns\": %.4f,\n\
    \  \"checks_per_run\": %d,\n\
    \  \"disabled_overhead_pct\": %.4f,\n\
    \  \"full_sink_overhead_pct\": %.2f,\n\
    \  \"serve_spans_off_s\": %.9f,\n\
    \  \"serve_spans_on_s\": %.9f,\n\
    \  \"serve_spans_overhead_pct\": %.2f\n\
     }\n"
    ops mem t_off t_off_threaded t_full check_ns checks disabled_pct
    full_pct t_serve_off t_serve_on serve_spans_pct;
  close_out oc;
  Format.fprintf (!ppf_ref) "  wrote BENCH_obsoverhead.json@."

(* ------------------------------------------------------------------ *)
(* Static check elision (BENCH_elide.json)                             *)
(* ------------------------------------------------------------------ *)

(* The tag-safety analyzer proves many PolyBench accesses in-bounds on
   definitely-live segments; those skip the MTE granule check at
   runtime. Measure the elided fraction and the modeled speedup per
   kernel, with a built-in differential (checksums must not change). *)
let run_elide () =
  Harness.Report.title (!ppf_ref)
    "Static check elision: PolyBench under Cage-mem-safety (Cortex-X3 model)";
  let core = Arch.Cpu_model.cortex_x3 in
  let cfg = Cage.Config.mem_safety in
  let rows =
    List.map
      (fun (k : Workloads.Polybench.kernel) ->
        let m0 = Wasm.Meter.create () and m1 = Wasm.Meter.create () in
        let v0 =
          Libc.Run.ret_i32 (Libc.Run.run ~cfg ~meter:m0 k.k_source)
        in
        let v1 =
          Libc.Run.ret_i32
            (Libc.Run.run ~cfg:(Cage.Config.with_elision cfg) ~meter:m1
               k.k_source)
        in
        if v0 <> v1 then
          failwith
            (Printf.sprintf "%s: elision changed the checksum (%ld vs %ld)"
               k.k_name v0 v1);
        let accesses = Wasm.Meter.mem_accesses m1 in
        let frac =
          if accesses = 0 then 0.0
          else
            float_of_int m1.Wasm.Meter.elided_checks /. float_of_int accesses
        in
        let base = Cage.Lowering.seconds core cfg m0 in
        let elided = Cage.Lowering.seconds core cfg m1 in
        let speedup = 100.0 *. (1.0 -. (elided /. base)) in
        (k.k_name, frac, speedup))
      Workloads.Polybench.all
  in
  Harness.Report.table (!ppf_ref)
    ~header:[ "kernel"; "checks elided"; "modeled speedup" ]
    (List.map
       (fun (name, frac, speedup) ->
         [
           name;
           Printf.sprintf "%.1f%%" (100.0 *. frac);
           Printf.sprintf "%.2f%%" speedup;
         ])
       rows);
  let mean f = List.fold_left (fun a r -> a +. f r) 0.0 rows
               /. float_of_int (List.length rows) in
  let mean_frac = mean (fun (_, f, _) -> f) in
  let mean_speedup = mean (fun (_, _, s) -> s) in
  Format.fprintf (!ppf_ref)
    "  mean: %.1f%% of checked accesses elided, %.2f%% modeled speedup \
     (target: nonzero, checksums unchanged)@."
    (100.0 *. mean_frac) mean_speedup;
  let oc = open_out "BENCH_elide.json" in
  Printf.fprintf oc "{\n  \"config\": %S,\n  \"core\": %S,\n  \"kernels\": [\n"
    cfg.Cage.Config.name core.Arch.Cpu_model.name;
  List.iteri
    (fun i (name, frac, speedup) ->
      Printf.fprintf oc
        "    { \"name\": %S, \"elided_frac\": %.4f, \"speedup_pct\": %.3f }%s\n"
        name frac speedup
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc
    "  ],\n  \"mean_elided_frac\": %.4f,\n  \"mean_speedup_pct\": %.3f\n}\n"
    mean_frac mean_speedup;
  close_out oc;
  Format.fprintf (!ppf_ref) "  wrote BENCH_elide.json@."

(* ------------------------------------------------------------------ *)
(* Interprocedural analysis (BENCH_analysis.json)                      *)
(* ------------------------------------------------------------------ *)

(* The summary-based analyzer's three consumers, priced on PolyBench:
   tag-check elision (the PR 5 baseline), full-check elision (span
   checks dropped where the access is span-provable), and arena
   lowering (segment.new/segment.free tag-plane writes dropped for
   proven non-escaping segments). Every kernel runs three times —
   unelided, tag-only, full — and all three checksums must agree, so
   the experiment doubles as a soundness differential. *)
let run_analysis () =
  Harness.Report.title (!ppf_ref)
    "Interprocedural elision: PolyBench under Cage-mem-safety (Cortex-X3 \
     model)";
  let core = Arch.Cpu_model.cortex_x3 in
  let cfg = Cage.Config.mem_safety in
  let tag_cfg = Cage.Config.with_elision cfg in
  let full_cfg = Cage.Config.with_arena (Cage.Config.with_bounds_elision cfg) in
  let rows =
    List.map
      (fun (k : Workloads.Polybench.kernel) ->
        let m0 = Wasm.Meter.create ()
        and m1 = Wasm.Meter.create ()
        and m2 = Wasm.Meter.create () in
        let v0 = Libc.Run.ret_i32 (Libc.Run.run ~cfg ~meter:m0 k.k_source) in
        let v1 =
          Libc.Run.ret_i32 (Libc.Run.run ~cfg:tag_cfg ~meter:m1 k.k_source)
        in
        let v2 =
          Libc.Run.ret_i32 (Libc.Run.run ~cfg:full_cfg ~meter:m2 k.k_source)
        in
        if v0 <> v1 || v0 <> v2 then
          failwith
            (Printf.sprintf
               "%s: elision changed the checksum (%ld / %ld / %ld)" k.k_name
               v0 v1 v2);
        let accesses = float_of_int (Wasm.Meter.mem_accesses m2) in
        let frac n = if accesses = 0.0 then 0.0 else float_of_int n /. accesses in
        let tag_frac = frac m2.Wasm.Meter.elided_checks in
        let bounds_frac = frac m2.Wasm.Meter.elided_bounds in
        let tw_elided =
          m2.Wasm.Meter.arena_new_granules + m2.Wasm.Meter.arena_free_granules
        in
        let tw_total =
          m0.Wasm.Meter.seg_new_granules + m0.Wasm.Meter.seg_free_granules
        in
        let tw_frac =
          if tw_total = 0 then 0.0
          else float_of_int tw_elided /. float_of_int tw_total
        in
        let base = Cage.Lowering.seconds core cfg m0 in
        let t_tag = Cage.Lowering.seconds core cfg m1 in
        let t_full = Cage.Lowering.seconds core cfg m2 in
        let sp_tag = 100.0 *. (1.0 -. (t_tag /. base)) in
        let sp_full = 100.0 *. (1.0 -. (t_full /. base)) in
        (k.k_name, tag_frac, bounds_frac, tw_frac, tw_elided, sp_tag, sp_full))
      Workloads.Polybench.all
  in
  Harness.Report.table (!ppf_ref)
    ~header:
      [ "kernel"; "tag elided"; "bounds elided"; "tag writes elided";
        "speedup (tag)"; "speedup (full)" ]
    (List.map
       (fun (name, tf, bf, twf, _, st, sf) ->
         [
           name;
           Printf.sprintf "%.1f%%" (100.0 *. tf);
           Printf.sprintf "%.1f%%" (100.0 *. bf);
           Printf.sprintf "%.1f%%" (100.0 *. twf);
           Printf.sprintf "%.2f%%" st;
           Printf.sprintf "%.2f%%" sf;
         ])
       rows);
  let mean f =
    List.fold_left (fun a r -> a +. f r) 0.0 rows
    /. float_of_int (List.length rows)
  in
  let mean_tag = mean (fun (_, tf, _, _, _, _, _) -> tf) in
  let mean_bounds = mean (fun (_, _, bf, _, _, _, _) -> bf) in
  let mean_tw = mean (fun (_, _, _, twf, _, _, _) -> twf) in
  let tw_elided_total =
    List.fold_left (fun a (_, _, _, _, tw, _, _) -> a + tw) 0 rows
  in
  let mean_sp_tag = mean (fun (_, _, _, _, _, st, _) -> st) in
  let mean_sp_full = mean (fun (_, _, _, _, _, _, sf) -> sf) in
  Format.fprintf (!ppf_ref)
    "  mean: %.1f%% tag checks, %.1f%% span checks, %.1f%% tag-plane writes \
     elided;@.  modeled speedup %.2f%% (tag-only) -> %.2f%% (full) — target: \
     tag-write elision > 0, full > tag-only@."
    (100.0 *. mean_tag) (100.0 *. mean_bounds) (100.0 *. mean_tw) mean_sp_tag
    mean_sp_full;
  if tw_elided_total = 0 then
    failwith "analysis: no tag-plane writes elided on any PolyBench kernel";
  if mean_sp_full <= mean_sp_tag then
    failwith
      (Printf.sprintf
         "analysis: full elision (%.3f%%) does not beat tag-only (%.3f%%)"
         mean_sp_full mean_sp_tag);
  let oc = open_out "BENCH_analysis.json" in
  Printf.fprintf oc "{\n  \"config\": %S,\n  \"core\": %S,\n  \"kernels\": [\n"
    cfg.Cage.Config.name core.Arch.Cpu_model.name;
  List.iteri
    (fun i (name, tf, bf, twf, tw, st, sf) ->
      Printf.fprintf oc
        "    { \"name\": %S, \"tag_elided_frac\": %.4f, \
         \"bounds_elided_frac\": %.4f, \"tag_writes_elided_frac\": %.4f, \
         \"tag_writes_elided\": %d, \"speedup_tag_pct\": %.3f, \
         \"speedup_full_pct\": %.3f }%s\n"
        name tf bf twf tw st sf
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc
    "  ],\n\
    \  \"mean_tag_elided_frac\": %.4f,\n\
    \  \"mean_bounds_elided_frac\": %.4f,\n\
    \  \"mean_tag_writes_elided_frac\": %.4f,\n\
    \  \"tag_writes_elided_total\": %d,\n\
    \  \"mean_speedup_tag_pct\": %.3f,\n\
    \  \"mean_speedup_full_pct\": %.3f\n\
     }\n"
    mean_tag mean_bounds mean_tw tw_elided_total mean_sp_tag mean_sp_full;
  close_out oc;
  Format.fprintf (!ppf_ref) "  wrote BENCH_analysis.json@."

(* ------------------------------------------------------------------ *)
(* Execution engines (BENCH_exec.json)                                 *)
(* ------------------------------------------------------------------ *)

(* Wall-clock comparison of the reference interpreter against the
   direct-threaded engine on every PolyBench kernel. One compile per
   kernel; every timed run gets a fresh instance (instantiation —
   including threaded-code lowering — happens outside the timer, as a
   serving pool would amortize it). Before timing, a metered
   verification pass runs each kernel once per engine and asserts the
   checksum and every meter counter agree, so the modeled cycle counts
   (Cage.Lowering prices the meter, not the clock) are engine-invariant
   by construction. *)
let run_exec () =
  Harness.Report.title (!ppf_ref)
    "Execution engines: reference interpreter vs direct-threaded code";
  let cfg = Cage.Config.baseline_wasm32 in
  let core = Arch.Cpu_model.cortex_x3 in
  let reps_interp = 3 and reps_threaded = 5 in
  Obs.Hook.uninstall ();
  let rows =
    List.map
      (fun (kernel : Workloads.Polybench.kernel) ->
        let compiled =
          let opts = Minic.Driver.options_of_config cfg in
          let prelude = Libc.Source.prelude_of_config cfg in
          (Minic.Driver.compile ~opts ~prelude kernel.k_source).co_module
        in
        let fresh ?meter engine =
          let wasi = Libc.Wasi.create () in
          let icfg =
            Cage.Config.instance_config ?meter
              (Cage.Config.with_engine engine cfg)
          in
          Wasm.Exec.instantiate ~config:icfg
            ~imports:(Libc.Wasi.imports wasi) compiled
        in
        (* verification pass: outcomes and meters must be identical *)
        let run_metered engine =
          let meter = Wasm.Meter.create () in
          let vs = Wasm.Exec.invoke (fresh ~meter engine) "main" [] in
          (vs, meter)
        in
        let v_i, m_i = run_metered Wasm.Instance.Interp in
        let v_t, m_t = run_metered Wasm.Instance.Threaded in
        if v_i <> v_t then
          failwith
            (Printf.sprintf "%s: engines disagree on the result"
               kernel.k_name);
        if m_i <> m_t then
          failwith
            (Printf.sprintf "%s: engines disagree on the meter (%d vs %d ops)"
               kernel.k_name (Wasm.Meter.total m_i) (Wasm.Meter.total m_t));
        let time engine reps =
          let best = ref infinity in
          for _ = 1 to reps do
            let inst = fresh engine in
            let t0 = Unix.gettimeofday () in
            ignore (Wasm.Exec.invoke inst "main" []);
            best := Float.min !best (Unix.gettimeofday () -. t0)
          done;
          !best
        in
        let t_i = time Wasm.Instance.Interp reps_interp in
        let t_t = time Wasm.Instance.Threaded reps_threaded in
        let modeled = Cage.Lowering.seconds core cfg m_t in
        (kernel.k_name, t_i, t_t, t_i /. t_t, modeled))
      Workloads.Polybench.all
  in
  Harness.Report.table (!ppf_ref)
    ~header:[ "kernel"; "interp"; "threaded"; "speedup"; "modeled" ]
    (List.map
       (fun (name, t_i, t_t, s, modeled) ->
         [
           name; Harness.Report.seconds t_i; Harness.Report.seconds t_t;
           Printf.sprintf "%.2fx" s; Harness.Report.seconds modeled;
         ])
       rows);
  let geomean =
    exp
      (List.fold_left (fun a (_, _, _, s, _) -> a +. log s) 0.0 rows
      /. float_of_int (List.length rows))
  in
  Format.fprintf (!ppf_ref)
    "  geomean speedup %.2fx over %d kernels (target: >= 5x; modeled \
     cycles engine-invariant, meters bit-identical)@."
    geomean (List.length rows);
  let oc = open_out "BENCH_exec.json" in
  Printf.fprintf oc "{\n  \"config\": %S,\n  \"core\": %S,\n  \"kernels\": [\n"
    cfg.Cage.Config.name core.Arch.Cpu_model.name;
  List.iteri
    (fun i (name, t_i, t_t, s, modeled) ->
      Printf.fprintf oc
        "    { \"name\": %S, \"interp_s\": %.9f, \"threaded_s\": %.9f, \
         \"speedup\": %.3f, \"modeled_s\": %.9f }%s\n"
        name t_i t_t s modeled
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n  \"geomean_speedup\": %.3f\n}\n" geomean;
  close_out oc;
  Format.fprintf (!ppf_ref)
    "  wrote BENCH_exec.json (threaded vs seed interpreter)@."

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock benches (one per table/figure)                  *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let stream = Arch.Insn.independent Arch.Insn.Irg 512 in
  let atax =
    match Workloads.Polybench.find "atax" with
    | Some kn -> kn
    | None -> assert false
  in
  let compiled =
    let cfg = Cage.Config.full in
    let opts = Minic.Driver.options_of_config cfg in
    let prelude = Libc.Source.prelude_of_config cfg in
    (Minic.Driver.compile ~opts ~prelude atax.k_source).co_module
  in
  let meter = Wasm.Meter.create () in
  let _warm = Libc.Run.run ~cfg:Cage.Config.full ~meter atax.k_source in
  let tm = Arch.Tag_memory.create ~size_bytes:65536 in
  let key = Arch.Pac.key_of_int64s 1L 2L in
  [
    (* Table 1: the pipeline simulator recovering the insn figures *)
    Test.make ~name:"table1/pipeline-sim"
      (Staged.stage (fun () ->
           ignore (Arch.Timing.run Arch.Cpu_model.cortex_x3 stream)));
    (* Fig. 4: the memset timing model *)
    Test.make ~name:"fig4/memset-model"
      (Staged.stage (fun () ->
           ignore
             (Arch.Timing.memset_seconds Arch.Cpu_model.cortex_a510
                ~mode:Arch.Mte.Sync
                ~bytes:(128.0 *. 1024.0 *. 1024.0))));
    (* Fig. 14: interpret a PolyBench kernel under full CAGE *)
    Test.make ~name:"fig14/interpret-atax-cage"
      (Staged.stage (fun () ->
           let wasi = Libc.Wasi.create () in
           let inst =
             Wasm.Exec.instantiate
               ~config:(Cage.Config.instance_config Cage.Config.full)
               ~imports:(Libc.Wasi.imports wasi) compiled
           in
           ignore (Wasm.Exec.invoke inst "main" [])));
    (* Fig. 14 pricing: the lowering cost model *)
    Test.make ~name:"fig14/lowering-price"
      (Staged.stage (fun () ->
           ignore
             (Cage.Lowering.seconds Arch.Cpu_model.cortex_a715 Cage.Config.full
                meter)));
    (* Fig. 15: PAC sign+auth round *)
    Test.make ~name:"fig15/pac-sign-auth"
      (Staged.stage (fun () ->
           let p =
             Arch.Pac.sign Arch.Pac.default_config key ~modifier:0L 0x4000L
           in
           ignore (Arch.Pac.auth Arch.Pac.default_config key ~modifier:0L p)));
    (* Fig. 16: the tagged-init variant model *)
    Test.make ~name:"fig16/variant-model"
      (Staged.stage (fun () ->
           List.iter
             (fun v ->
               ignore
                 (Workloads.Microbench.variant_seconds Arch.Cpu_model.cortex_x3
                    v
                    ~bytes:(128.0 *. 1024.0 *. 1024.0)))
             Workloads.Microbench.table4_variants));
    (* Table 2 / Sec 7.4: the MTE check fast path *)
    Test.make ~name:"table2/mte-check"
      (Staged.stage
         (let mte = Arch.Mte.create tm in
          let ptr = Arch.Ptr.with_tag 64L Arch.Tag.zero in
          fun () -> ignore (Arch.Mte.check mte Arch.Mte.Load ~ptr ~len:8L)));
    (* Sec 7.3: tag-memory region updates *)
    Test.make ~name:"mem/set-region"
      (Staged.stage (fun () ->
           ignore
             (Arch.Tag_memory.set_region tm ~addr:0L ~len:4096L
                (Arch.Tag.of_int 3))));
    (* Sec 7.2: instantiating a module *)
    Test.make ~name:"startup/instantiate"
      (Staged.stage (fun () ->
           let wasi = Libc.Wasi.create () in
           ignore
             (Wasm.Exec.instantiate
                ~config:(Cage.Config.instance_config Cage.Config.full)
                ~imports:(Libc.Wasi.imports wasi) compiled)));
    (* Sec 7.4: tag drawing *)
    Test.make ~name:"collision/irg"
      (Staged.stage
         (let rng = Random.State.make [| 7 |] in
          let ex = Cage.Config.exclusion Cage.Config.full in
          fun () ->
            ignore (Arch.Tag.irg ex ~rng:(fun nn -> Random.State.int rng nn))));
  ]

let run_bechamel () =
  let open Bechamel in
  Harness.Report.title (!ppf_ref)
    "Bechamel wall-clock benchmarks of the library primitives";
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 100) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysis = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Format.fprintf (!ppf_ref) "  %-32s %12.1f ns/run@." name est
          | _ -> Format.fprintf (!ppf_ref) "  %-32s (no estimate)@." name)
        analysis)
    (bechamel_tests ())

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", run_table1);
    ("fig4", run_fig4);
    ("fig14", run_fig14);
    ("fig14-detail", run_fig14_detail);
    ("fig15", run_fig15);
    ("fig16", run_fig16);
    ("table2", run_table2);
    ("mem", run_mem);
    ("startup", run_startup);
    ("collision", run_collision);
    ("ablation", run_ablation);
    ("modes", run_modes);
    ("escape", run_escape);
    ("memfast", run_memfast);
    ("obsoverhead", run_obsoverhead);
    ("elide", run_elide);
    ("analysis", run_analysis);
    ("exec", run_exec);
    ("bechamel", run_bechamel);
  ]

let default_order =
  [
    "table1"; "fig4"; "fig14"; "fig15"; "fig16"; "table2"; "mem"; "startup";
    "collision"; "ablation"; "modes"; "escape"; "memfast"; "obsoverhead";
    "elide"; "analysis"; "exec"; "bechamel";
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* --out DIR: also write each experiment's report to DIR/<name>.txt,
     mirroring the artifact's results/ directory *)
  let out_dir, args =
    match args with
    | "--out" :: dir :: rest ->
        (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        (Some dir, rest)
    | args -> (None, args)
  in
  let to_run = match args with [] -> default_order | names -> names in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> (
          match out_dir with
          | None -> f ()
          | Some dir ->
              let path = Filename.concat dir (name ^ ".txt") in
              let oc = open_out path in
              let file_ppf = Format.formatter_of_out_channel oc in
              ppf_ref := file_ppf;
              f ();
              Format.pp_print_flush file_ppf ();
              close_out oc;
              ppf_ref := Format.std_formatter;
              Format.printf "wrote %s@." path)
      | None ->
          Format.fprintf (!ppf_ref) "unknown experiment %S; available: %s@." name
            (String.concat ", " (List.map fst experiments)))
    to_run;
  Format.pp_print_flush (!ppf_ref) ()
