(** Request-scoped span recording for the serving runtime.

    {!Trace} answers "what did this {e instance} do, cycle by cycle";
    this module answers "where did this {e request}'s latency go". A
    request's life crosses every serving layer — admission, the tenant
    queue, snapshot restore, scheduler quanta interleaved over
    simulated cores, retries after contained faults — and each layer
    contributes spans to one shared recorder. Timestamps are supplied
    by the driver on the {e discrete-event simulation clock} (the same
    clock latencies are reported on), not the tracer's per-op cycle
    clock: the driver publishes "now" once per event-loop step
    ({!set_now}) so leaf layers (pool, snapshot, breaker) can emit
    instants without threading time through every call.

    The export is Chrome [trace_event] JSON with one track (thread
    lane) per simulated core and one per tenant, plus {e flow arrows}
    — Chrome's [s]/[t]/[f] phases — carrying each request id through
    queue wait, restore, every execution slice on whatever cores it
    landed on, and across retry boundaries, so a retried request reads
    as a single stitched causal chain.

    Same global-sink discipline as {!Hook} and [Arch.Fault_inject]:
    with no recorder installed every emission point is one
    load-and-compare and allocates nothing ([None] fast path); call
    sites guard with {!enabled} before building names or args. *)

type arg = S of string | I of int

(** Conventional track ids shared by the serving layers: simulated
    cores occupy [1..cores] ([Scheduler.core_tid]), tenants sit at
    [100 + index] ({!tenant_tid}), and pool / snapshot / breaker
    machinery shares one runtime track ({!runtime_tid}). Tid 0 is
    reserved for process-scoped instants. *)
let runtime_tid = 90

let tenant_tid j = 100 + j

type kind =
  | Complete of int    (** Chrome ["X"]: a slice with a duration *)
  | Instant            (** Chrome ["i"], thread-scoped *)
  | Async_begin of int (** Chrome ["b"]: request envelope opens, id *)
  | Async_end of int   (** Chrome ["e"]: request envelope closes, id *)
  | Flow_start of int  (** Chrome ["s"]: causal chain head, id *)
  | Flow_step of int   (** Chrome ["t"]: chain passes through here, id *)
  | Flow_end of int    (** Chrome ["f"]: chain terminates here, id *)

type record = {
  r_name : string;
  r_tid : int;      (** track: core / tenant / pool lane *)
  r_ts : int;       (** DES cycles *)
  r_kind : kind;
  r_args : (string * arg) list;
}

type t = {
  capacity : int;
  mutable recs : record list;   (* newest first *)
  mutable size : int;
  mutable dropped : int;        (* emissions refused once full *)
  mutable tracks : (int * string) list;  (* tid -> display name *)
  mutable now : int;            (* driver-published DES time *)
  mutable next_id : int;        (* request/flow id allocator *)
}

let create ?(capacity = 262_144) () =
  if capacity <= 0 then invalid_arg "Span.create: capacity must be positive";
  { capacity; recs = []; size = 0; dropped = 0; tracks = []; now = 0;
    next_id = 0 }

let size t = t.size
let dropped t = t.dropped

(* The global recorder — one load-and-compare on the disabled path. *)
let recorder : t option ref = ref None

let install t = recorder := Some t
let uninstall () = recorder := None
let active () = !recorder
let enabled () = !recorder != None

let with_recorder t f =
  install t;
  Fun.protect ~finally:uninstall f

(** Publish the DES clock. The event-loop driver calls this once per
    popped event; leaf emitters default their timestamps to it. *)
let set_now ts = match !recorder with None -> () | Some t -> t.now <- ts

(** The last published DES time (0 with no recorder). *)
let now () = match !recorder with None -> 0 | Some t -> t.now

(** A fresh request/flow id, unique within the recorder's lifetime. *)
let fresh_id () =
  match !recorder with
  | None -> 0
  | Some t ->
      let id = t.next_id in
      t.next_id <- id + 1;
      id

(** Name a track: emitted as Chrome [thread_name] metadata so core and
    tenant lanes render with human labels. Idempotent per [tid]. *)
let set_track ~tid name =
  match !recorder with
  | None -> ()
  | Some t ->
      if not (List.mem_assoc tid t.tracks) then
        t.tracks <- (tid, name) :: t.tracks

let emit_record t r =
  (* Drop-newest when full: the head of a trace (arrivals, first
     retries) is what a capacity overrun should preserve — the
     opposite choice from the flight-recorder ring in {!Trace}. *)
  if t.size >= t.capacity then t.dropped <- t.dropped + 1
  else begin
    t.recs <- r :: t.recs;
    t.size <- t.size + 1
  end

let emit ?(args = []) ~tid ~ts name kind =
  match !recorder with
  | None -> ()
  | Some t ->
      emit_record t { r_name = name; r_tid = tid; r_ts = ts; r_kind = kind;
                      r_args = args }

(** A completed slice [start, stop) on track [tid]. *)
let complete ?args ~tid ~start ~stop name =
  emit ?args ~tid ~ts:start name (Complete (max 0 (stop - start)))

(** A thread-scoped instant, defaulting to the published DES time. *)
let instant ?args ?ts ~tid name =
  match !recorder with
  | None -> ()
  | Some t ->
      let ts = match ts with Some ts -> ts | None -> t.now in
      emit_record t { r_name = name; r_tid = tid; r_ts = ts; r_kind = Instant;
                      r_args = (match args with Some a -> a | None -> []) }

let async_begin ?args ~id ~tid ~ts name = emit ?args ~tid ~ts name (Async_begin id)
let async_end ?args ~id ~tid ~ts name = emit ?args ~tid ~ts name (Async_end id)

(** Flow arrows: [flow_start] opens a causal chain at the slice
    enclosing (tid, ts); each [flow_step] routes it through another
    slice; [flow_end] terminates it. One chain per request id. *)
let flow_start ~id ~tid ~ts name = emit ~tid ~ts name (Flow_start id)
let flow_step ~id ~tid ~ts name = emit ~tid ~ts name (Flow_step id)
let flow_end ~id ~tid ~ts name = emit ~tid ~ts name (Flow_end id)

(** Recorded spans, oldest first. *)
let records t = List.rev t.recs

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON                                             *)
(* ------------------------------------------------------------------ *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let args_json b args =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      json_escape b k;
      Buffer.add_string b "\":";
      match v with
      | I n -> Buffer.add_string b (string_of_int n)
      | S s ->
          Buffer.add_char b '"';
          json_escape b s;
          Buffer.add_char b '"')
    args;
  Buffer.add_char b '}'

let record_json b r =
  let ph, extra =
    match r.r_kind with
    | Complete d -> ("X", Printf.sprintf ",\"dur\":%d" d)
    | Instant -> ("i", ",\"s\":\"t\"")
    | Async_begin id -> ("b", Printf.sprintf ",\"id\":%d" id)
    | Async_end id -> ("e", Printf.sprintf ",\"id\":%d" id)
    | Flow_start id -> ("s", Printf.sprintf ",\"id\":%d" id)
    | Flow_step id -> ("t", Printf.sprintf ",\"id\":%d" id)
    | Flow_end id ->
        (* bp=e binds the arrow to the enclosing slice's end *)
        ("f", Printf.sprintf ",\"bp\":\"e\",\"id\":%d" id)
  in
  Buffer.add_string b "{\"name\":\"";
  json_escape b r.r_name;
  Buffer.add_string b
    (Printf.sprintf
       "\",\"cat\":\"serve\",\"ph\":\"%s\",\"ts\":%d,\"pid\":1,\"tid\":%d%s"
       ph r.r_ts r.r_tid extra);
  if r.r_args <> [] then begin
    Buffer.add_string b ",\"args\":";
    args_json b r.r_args
  end;
  Buffer.add_char b '}'

(** Render as Chrome [trace_event] JSON (open in [chrome://tracing] or
    [ui.perfetto.dev]). Timestamps are DES cycles in the microsecond
    field; tracks are named via [thread_name] metadata. *)
let to_chrome_json t =
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\"traceEvents\":[\n";
  Buffer.add_string b
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"cage-serve\"}}";
  List.iter
    (fun (tid, name) ->
      Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\""
           tid);
      json_escape b name;
      Buffer.add_string b "\"}}";
      Buffer.add_string b
        (Printf.sprintf
           ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"sort_index\":%d}}"
           tid tid))
    (List.sort compare (List.rev t.tracks));
  List.iter
    (fun r ->
      Buffer.add_string b ",\n";
      record_json b r)
    (records t);
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ns\",";
  Buffer.add_string b
    (Printf.sprintf
       "\"otherData\":{\"clock\":\"des-cycles\",\"recorded\":%d,\"dropped\":%d}}\n"
       t.size t.dropped);
  Buffer.contents b
