(** Fixed-capacity ring-buffer event tracer.

    Recording is O(1) and never grows: when the ring is full the oldest
    record is overwritten, so what survives is always the {e newest}
    window — the flight-recorder property the supervisor's black box
    relies on.

    Every record carries a timestamp on a {e simulated cycle clock}:
    the interpreter advances the clock one cycle per executed wasm
    operation ({!advance}) and each recorded event adds its own cost on
    top (per-event-kind, {!Event.cost} by default — callers keying the
    clock to a different machine model pass [~cost]). The clock is
    monotone by construction, which is what makes the Chrome
    [trace_event] export well-formed. *)

type record = {
  seq : int;     (** global record index, 0-based, never wraps *)
  cycle : int;   (** simulated cycle timestamp *)
  tid : int;     (** owning instance id (Chrome thread id) *)
  ev : Event.t;
}

type t = {
  capacity : int;
  buf : record array;
  cost : Event.t -> int;
  mutable size : int;     (* live records, <= capacity *)
  mutable next : int;     (* ring index of the next write *)
  mutable seq : int;      (* total records ever written *)
  mutable clock : int;    (* simulated cycles *)
}

let dummy = { seq = -1; cycle = 0; tid = 0; ev = Event.Spawn { instance = -1 } }

let create ?(capacity = 65536) ?(cost = Event.cost) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; buf = Array.make capacity dummy; cost; size = 0; next = 0;
    seq = 0; clock = 0 }

let clock t = t.clock
let recorded t = t.seq
let dropped t = t.seq - t.size

(** Advance the cycle clock (the interpreter's one-cycle-per-op tick). *)
let advance t n = t.clock <- t.clock + n

let record t ~tid ev =
  t.clock <- t.clock + t.cost ev;
  t.buf.(t.next) <- { seq = t.seq; cycle = t.clock; tid; ev };
  t.seq <- t.seq + 1;
  t.next <- (t.next + 1) mod t.capacity;
  if t.size < t.capacity then t.size <- t.size + 1

(** Surviving records, oldest first. *)
let records t =
  let start = (t.next - t.size + t.capacity) mod t.capacity in
  List.init t.size (fun i -> t.buf.((start + i) mod t.capacity))

(** The newest [k] (or fewer) records, oldest first. *)
let recent t k =
  let n = min k t.size in
  let start = (t.next - n + t.capacity) mod t.capacity in
  List.init n (fun i -> t.buf.((start + i) mod t.capacity))

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON                                             *)
(* ------------------------------------------------------------------ *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* The per-event args object: everything the typed payload knows. *)
let args_json b (ev : Event.t) =
  let field first k v =
    if not first then Buffer.add_char b ',';
    Buffer.add_string b (Printf.sprintf "\"%s\":%s" k v)
  in
  let str s =
    let sb = Buffer.create (String.length s + 2) in
    Buffer.add_char sb '"';
    json_escape sb s;
    Buffer.add_char sb '"';
    Buffer.contents sb
  in
  Buffer.add_char b '{';
  (match ev with
  | Seg_new { addr; len; granules; tag }
  | Seg_set_tag { addr; len; granules; tag }
  | Seg_free { addr; len; granules; tag } ->
      field true "addr" (str (Printf.sprintf "0x%Lx" addr));
      field false "len" (Int64.to_string len);
      field false "granules" (string_of_int granules);
      field false "tag" (string_of_int tag)
  | Tag_fault { addr; len; ptr_tag; mem_tag; access; deferred } ->
      field true "addr" (str (Printf.sprintf "0x%Lx" addr));
      field false "len" (Int64.to_string len);
      field false "ptr_tag" (string_of_int ptr_tag);
      field false "mem_tag"
        (match mem_tag with Some t -> string_of_int t | None -> "null");
      field false "access" (str (Event.access_to_string access));
      field false "deferred" (if deferred then "true" else "false")
  | Tag_near_miss { addr; len; tag; neighbour_tag } ->
      field true "addr" (str (Printf.sprintf "0x%Lx" addr));
      field false "len" (Int64.to_string len);
      field false "tag" (string_of_int tag);
      field false "neighbour_tag" (string_of_int neighbour_tag)
  | Tfsr_drain { addr } ->
      field true "addr" (str (Printf.sprintf "0x%Lx" addr))
  | Pac_sign { ptr } -> field true "ptr" (str (Printf.sprintf "0x%Lx" ptr))
  | Pac_auth { ptr; ok } ->
      field true "ptr" (str (Printf.sprintf "0x%Lx" ptr));
      field false "ok" (if ok then "true" else "false")
  | Mem_grow { delta_pages; new_pages } ->
      field true "delta_pages" (Int64.to_string delta_pages);
      field false "new_pages" (Int64.to_string new_pages)
  | Host_call { name } -> field true "name" (str name)
  | Func_enter { idx; name } | Func_leave { idx; name } ->
      field true "idx" (string_of_int idx);
      field false "name" (str name)
  | Crash { cls; msg } ->
      field true "class" (str cls);
      field false "message" (str msg)
  | Spawn { instance } -> field true "instance" (string_of_int instance)
  | Snapshot_restore { instance; bytes } ->
      field true "instance" (string_of_int instance);
      field false "bytes" (string_of_int bytes)
  | Quarantine_evicted { instance } ->
      field true "instance" (string_of_int instance)
  | Request_retry { tenant; attempt } ->
      field true "tenant" (str tenant);
      field false "attempt" (string_of_int attempt)
  | Request_shed { tenant; reason } ->
      field true "tenant" (str tenant);
      field false "reason" (str reason)
  | Breaker_trip { tenant } -> field true "tenant" (str tenant)
  | Check_elided | Bounds_elided | Spec_unsafe_elision -> ()
  | Tag_writes_elided { granules } ->
      field true "granules" (string_of_int granules)
  | Stack_sanitize { total; instrumented; escaping; unsafe_gep; guards } ->
      field true "total" (string_of_int total);
      field false "instrumented" (string_of_int instrumented);
      field false "escaping" (string_of_int escaping);
      field false "unsafe_gep" (string_of_int unsafe_gep);
      field false "guards" (string_of_int guards)
  | Code_fuse { instrs; fused; accesses; elided } ->
      field true "instrs" (string_of_int instrs);
      field false "fused" (string_of_int fused);
      field false "accesses" (string_of_int accesses);
      field false "elided" (string_of_int elided));
  Buffer.add_char b '}'

(* Function enter/leave become duration-begin/end phases so Chrome draws
   call flames; everything else is an instant. An enter with no
   matching leave (a trap unwound the stack) renders as an unfinished
   slice — exactly right for a crash trace. *)
let event_json b r =
  let name =
    match r.ev with
    | Event.Func_enter { name; _ } | Event.Func_leave { name; _ } -> name
    | ev -> Event.name ev
  in
  let ph =
    match r.ev with
    | Event.Func_enter _ -> "B"
    | Event.Func_leave _ -> "E"
    | _ -> "i"
  in
  Buffer.add_string b "{\"name\":\"";
  json_escape b name;
  Buffer.add_string b
    (Printf.sprintf
       "\",\"cat\":\"cage\",\"ph\":\"%s\",\"ts\":%d,\"pid\":1,\"tid\":%d" ph
       r.cycle r.tid);
  (match r.ev with
  | Event.Func_leave _ -> ()
  | _ ->
      if ph = "i" then Buffer.add_string b ",\"s\":\"t\"";
      Buffer.add_string b ",\"args\":";
      args_json b r.ev);
  Buffer.add_char b '}'

(** Render the surviving window as Chrome [trace_event] JSON (open in
    [chrome://tracing] or [ui.perfetto.dev]). Timestamps are simulated
    cycles reported in the microsecond field. *)
let to_chrome_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[\n";
  Buffer.add_string b
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"cage\"}}";
  (* The ring drops oldest-first when it wraps; surface that loss as a
     single process-global warning instant at the earliest surviving
     timestamp, so a truncated trace announces its own truncation. *)
  (if dropped t > 0 then
     let first_cycle =
       match records t with r :: _ -> r.cycle | [] -> t.clock
     in
     Buffer.add_string b
       (Printf.sprintf
          ",\n{\"name\":\"trace-dropped\",\"cat\":\"cage\",\"ph\":\"i\",\"ts\":%d,\
           \"pid\":1,\"tid\":0,\"s\":\"p\",\"args\":{\"dropped\":%d}}"
          first_cycle (dropped t)));
  List.iter
    (fun r ->
      Buffer.add_string b ",\n";
      event_json b r)
    (records t);
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ns\",";
  Buffer.add_string b
    (Printf.sprintf
       "\"otherData\":{\"clock\":\"simulated-cycles\",\"recorded\":%d,\"dropped\":%d}}\n"
       (recorded t) (dropped t));
  Buffer.contents b
