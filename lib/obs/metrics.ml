(** The metrics registry: counters, gauges and log-scale histograms,
    rendered in Prometheus text exposition format and as JSON.

    Registration hands back a direct handle; the hot path then bumps a
    mutable field — no name lookup, no allocation. Rendering iterates
    metrics in registration order, so output is deterministic and can
    be golden-diffed in CI. *)

type counter = { c_name : string; c_help : string; mutable c_value : int }
type gauge = { g_name : string; g_help : string; mutable g_value : float }

type histogram = {
  h_name : string;
  h_help : string;
  h_bounds : float array;  (** inclusive upper bounds, ascending *)
  h_counts : int array;    (** per-bucket, plus one overflow slot *)
  mutable h_sum : float;
  mutable h_count : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { mutable metrics : metric list (* reverse registration order *) }

let create () = { metrics = [] }
let metrics t = List.rev t.metrics

let counter t ?(help = "") name =
  let c = { c_name = name; c_help = help; c_value = 0 } in
  t.metrics <- Counter c :: t.metrics;
  c

let gauge t ?(help = "") name =
  let g = { g_name = name; g_help = help; g_value = 0.0 } in
  t.metrics <- Gauge g :: t.metrics;
  g

(** Power-of-two bucket bounds from [lo] to [hi] inclusive — the
    log-scale shape that keeps segment sizes and span lengths readable
    across six orders of magnitude. *)
let log2_bounds ?(lo = 1.0) ?(hi = 1048576.0) () =
  let rec go acc b = if b > hi then List.rev acc else go (b :: acc) (b *. 2.0) in
  Array.of_list (go [] lo)

let histogram t ?(help = "") ?bounds name =
  let h_bounds = match bounds with Some b -> b | None -> log2_bounds () in
  let h =
    { h_name = name; h_help = help; h_bounds;
      h_counts = Array.make (Array.length h_bounds + 1) 0; h_sum = 0.0;
      h_count = 0 }
  in
  t.metrics <- Histogram h :: t.metrics;
  h

let inc ?(by = 1) c = c.c_value <- c.c_value + by
let set g v = g.g_value <- v

let observe h v =
  let n = Array.length h.h_bounds in
  let rec slot i = if i >= n || v <= h.h_bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(* Prometheus numbers: integral values print as integers so golden
   files stay stable; anything else gets %g. *)
let num v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let render_prometheus ppf t =
  List.iter
    (fun m ->
      match m with
      | Counter c ->
          if c.c_help <> "" then
            Format.fprintf ppf "# HELP %s %s@." c.c_name c.c_help;
          Format.fprintf ppf "# TYPE %s counter@." c.c_name;
          Format.fprintf ppf "%s %d@." c.c_name c.c_value
      | Gauge g ->
          if g.g_help <> "" then
            Format.fprintf ppf "# HELP %s %s@." g.g_name g.g_help;
          Format.fprintf ppf "# TYPE %s gauge@." g.g_name;
          Format.fprintf ppf "%s %s@." g.g_name (num g.g_value)
      | Histogram h ->
          if h.h_help <> "" then
            Format.fprintf ppf "# HELP %s %s@." h.h_name h.h_help;
          Format.fprintf ppf "# TYPE %s histogram@." h.h_name;
          let cum = ref 0 in
          Array.iteri
            (fun i bound ->
              cum := !cum + h.h_counts.(i);
              Format.fprintf ppf "%s_bucket{le=\"%s\"} %d@." h.h_name
                (num bound) !cum)
            h.h_bounds;
          Format.fprintf ppf "%s_bucket{le=\"+Inf\"} %d@." h.h_name h.h_count;
          Format.fprintf ppf "%s_sum %s@." h.h_name (num h.h_sum);
          Format.fprintf ppf "%s_count %d@." h.h_name h.h_count)
    (metrics t)

let prometheus_string t = Format.asprintf "%a" render_prometheus t

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_string b ",\n";
      match m with
      | Counter c ->
          Buffer.add_string b (Printf.sprintf "  \"%s\": %d" c.c_name c.c_value)
      | Gauge g ->
          Buffer.add_string b
            (Printf.sprintf "  \"%s\": %s" g.g_name (num g.g_value))
      | Histogram h ->
          Buffer.add_string b
            (Printf.sprintf "  \"%s\": {\"buckets\": [" h.h_name);
          Array.iteri
            (fun i bound ->
              if i > 0 then Buffer.add_string b ", ";
              Buffer.add_string b
                (Printf.sprintf "[%s, %d]" (num bound) h.h_counts.(i)))
            h.h_bounds;
          Buffer.add_string b
            (Printf.sprintf "], \"overflow\": %d, \"sum\": %s, \"count\": %d}"
               h.h_counts.(Array.length h.h_bounds)
               (num h.h_sum) h.h_count))
    (metrics t);
  Buffer.add_string b "\n}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* The standard Cage metric set                                        *)
(* ------------------------------------------------------------------ *)

(** Pre-registered handles for everything the runtime's event stream
    reports, so the sink dispatch is field bumps only. *)
type cage = {
  registry : t;
  tag_faults : counter;
  tag_faults_deferred : counter;
  near_misses : counter;
  tfsr_drains : counter;
  pac_sign : counter;
  pac_auth_ok : counter;
  pac_auth_fail : counter;
  seg_new : counter;
  seg_set_tag : counter;
  seg_free : counter;
  granules_tagged : counter;
  mem_grow : counter;
  host_calls : counter;
  func_calls : counter;
  crashes : counter;
  spawns : counter;
  seg_size : histogram;
  span_len : histogram;
  fuel_per_call : histogram;
  checks_elided : counter;
  stack_slots : counter;
  stack_instrumented : counter;
  stack_escaping : counter;
  stack_unsafe_gep : counter;
  stack_guards : counter;
  fused_instrs : counter;
  fused_superinstr : counter;
  fused_accesses : counter;
  fused_elided : counter;
  pool_restores : counter;
  quarantine_evicted : counter;
  requests_retried : counter;
  requests_shed : counter;
  breaker_trips : counter;
  queue_depth : histogram;
  trace_dropped : counter;
  bounds_elided : counter;
  tag_writes_elided : counter;
  spec_unsafe_elisions : counter;
}

(* Sequential [let]s, not record-field expressions: OCaml evaluates
   record fields in unspecified order, and rendering follows
   registration order — which the golden file pins. *)
let cage () =
  let r = create () in
  let tag_faults =
    counter r ~help:"Synchronous MTE tag-check faults"
      "cage_tag_check_faults_total"
  in
  let tag_faults_deferred =
    counter r ~help:"Deferred (TFSR-latched) MTE tag-check faults"
      "cage_tag_check_faults_deferred_total"
  in
  let near_misses =
    counter r
      ~help:"Allowed accesses ending within one granule of a different tag"
      "cage_tag_check_near_misses_total"
  in
  let tfsr_drains =
    counter r ~help:"Sticky TFSR drains at synchronization points"
      "cage_tfsr_drains_total"
  in
  let pac_sign =
    counter r ~help:"Pointer signings (pacda)" "cage_pac_sign_total"
  in
  let pac_auth_ok =
    counter r ~help:"Successful pointer authentications (autda)"
      "cage_pac_auth_ok_total"
  in
  let pac_auth_fail =
    counter r ~help:"Failed pointer authentications" "cage_pac_auth_fail_total"
  in
  let seg_new =
    counter r ~help:"segment.new executions" "cage_segment_new_total"
  in
  let seg_set_tag =
    counter r ~help:"segment.set_tag executions" "cage_segment_set_tag_total"
  in
  let seg_free =
    counter r ~help:"segment.free executions" "cage_segment_free_total"
  in
  let granules_tagged =
    counter r ~help:"16-byte granules (re)tagged by segment instructions"
      "cage_granules_tagged_total"
  in
  let mem_grow =
    counter r ~help:"memory.grow executions" "cage_memory_grow_total"
  in
  let host_calls = counter r ~help:"Host (WASI) calls" "cage_host_calls_total" in
  let func_calls =
    counter r ~help:"Wasm function invocations" "cage_func_calls_total"
  in
  let crashes =
    counter r ~help:"Guest crashes contained by the supervisor"
      "cage_crashes_total"
  in
  let spawns =
    counter r ~help:"Instances spawned into supervised processes"
      "cage_instance_spawns_total"
  in
  let seg_size =
    histogram r ~help:"Segment sizes at segment.new (bytes, log2 buckets)"
      "cage_segment_size_bytes"
  in
  let span_len =
    histogram r
      ~help:"Tag-checked span lengths per access (bytes, log2 buckets)"
      "cage_tag_check_span_bytes"
  in
  let fuel_per_call =
    histogram r
      ~help:"Watchdog fuel consumed per supervised invocation (log2 buckets)"
      "cage_fuel_per_call"
  in
  let checks_elided =
    counter r ~help:"MTE granule checks skipped (statically proven safe)"
      "cage_checks_elided_total"
  in
  let stack_slots =
    counter r ~help:"Stack slots seen by the sanitizer"
      "cage_stack_slots_total"
  in
  let stack_instrumented =
    counter r ~help:"Stack slots instrumented with tagged segments"
      "cage_stack_slots_instrumented_total"
  in
  let stack_escaping =
    counter r ~help:"Stack slots whose address escapes"
      "cage_stack_slots_escaping_total"
  in
  let stack_unsafe_gep =
    counter r ~help:"Stack slots accessed through unsafe GEPs"
      "cage_stack_slots_unsafe_gep_total"
  in
  let stack_guards =
    counter r ~help:"Guard slots inserted between stack frames"
      "cage_stack_guard_slots_total"
  in
  let fused_instrs =
    counter r ~help:"Instructions lowered to threaded code"
      "cage_fused_instrs_total"
  in
  let fused_superinstr =
    counter r ~help:"Instructions absorbed into fused superinstructions"
      "cage_fused_superinstr_total"
  in
  let fused_accesses =
    counter r ~help:"Memory accesses lowered to threaded code"
      "cage_fused_accesses_total"
  in
  let fused_elided =
    counter r
      ~help:"Lowered accesses whose granule check was elided at compile time"
      "cage_fused_elided_total"
  in
  let pool_restores =
    counter r ~help:"Pool slots restored from their frozen snapshot"
      "cage_pool_restores_total"
  in
  let quarantine_evicted =
    counter r ~help:"Post-mortems evicted by the supervisor quarantine cap"
      "cage_quarantine_evicted_total"
  in
  let requests_retried =
    counter r ~help:"Requests re-admitted after a contained fault"
      "cage_requests_retried_total"
  in
  let requests_shed =
    counter r ~help:"Arrivals refused by admission control"
      "cage_requests_shed_total"
  in
  let breaker_trips =
    counter r ~help:"Per-tenant circuit-breaker trips"
      "cage_breaker_trips_total"
  in
  let queue_depth =
    histogram r
      ~help:"Per-tenant queue depth sampled at each arrival (log2 buckets)"
      ~bounds:(log2_bounds ~lo:1.0 ~hi:1024.0 ())
      "cage_serve_queue_depth"
  in
  let trace_dropped =
    counter r ~help:"Trace-ring records overwritten before export"
      "cage_trace_dropped_total"
  in
  let bounds_elided =
    counter r
      ~help:"Sandbox span checks skipped (full-check elision, statically proven)"
      "cage_bounds_elided_total"
  in
  let tag_writes_elided =
    counter r
      ~help:"Tag-plane granule writes skipped by arena-lowered segments"
      "cage_tag_writes_elided_total"
  in
  let spec_unsafe_elisions =
    counter r
      ~help:"Elisions architecturally sound but unsafe under speculation"
      "cage_spec_unsafe_elisions_total"
  in
  {
    registry = r;
    tag_faults;
    tag_faults_deferred;
    near_misses;
    tfsr_drains;
    pac_sign;
    pac_auth_ok;
    pac_auth_fail;
    seg_new;
    seg_set_tag;
    seg_free;
    granules_tagged;
    mem_grow;
    host_calls;
    func_calls;
    crashes;
    spawns;
    seg_size;
    span_len;
    fuel_per_call;
    checks_elided;
    stack_slots;
    stack_instrumented;
    stack_escaping;
    stack_unsafe_gep;
    stack_guards;
    fused_instrs;
    fused_superinstr;
    fused_accesses;
    fused_elided;
    pool_restores;
    quarantine_evicted;
    requests_retried;
    requests_shed;
    breaker_trips;
    queue_depth;
    trace_dropped;
    bounds_elided;
    tag_writes_elided;
    spec_unsafe_elisions;
  }

let observe_event m (ev : Event.t) =
  match ev with
  | Seg_new { len; granules; _ } ->
      inc m.seg_new;
      inc ~by:granules m.granules_tagged;
      observe m.seg_size (Int64.to_float len)
  | Seg_set_tag { granules; _ } ->
      inc m.seg_set_tag;
      inc ~by:granules m.granules_tagged
  | Seg_free { granules; _ } ->
      inc m.seg_free;
      inc ~by:granules m.granules_tagged
  | Tag_fault { deferred = false; _ } -> inc m.tag_faults
  | Tag_fault { deferred = true; _ } -> inc m.tag_faults_deferred
  | Tag_near_miss _ -> inc m.near_misses
  | Tfsr_drain _ -> inc m.tfsr_drains
  | Pac_sign _ -> inc m.pac_sign
  | Pac_auth { ok = true; _ } -> inc m.pac_auth_ok
  | Pac_auth { ok = false; _ } -> inc m.pac_auth_fail
  | Mem_grow _ -> inc m.mem_grow
  | Host_call _ -> inc m.host_calls
  | Func_enter _ -> inc m.func_calls
  | Func_leave _ -> ()
  | Crash _ -> inc m.crashes
  | Spawn _ -> inc m.spawns
  | Snapshot_restore _ -> inc m.pool_restores
  | Quarantine_evicted _ -> inc m.quarantine_evicted
  | Request_retry _ -> inc m.requests_retried
  | Request_shed _ -> inc m.requests_shed
  | Breaker_trip _ -> inc m.breaker_trips
  | Check_elided -> inc m.checks_elided
  | Bounds_elided -> inc m.bounds_elided
  | Tag_writes_elided { granules } -> inc ~by:granules m.tag_writes_elided
  | Spec_unsafe_elision -> inc m.spec_unsafe_elisions
  | Stack_sanitize { total; instrumented; escaping; unsafe_gep; guards } ->
      inc ~by:total m.stack_slots;
      inc ~by:instrumented m.stack_instrumented;
      inc ~by:escaping m.stack_escaping;
      inc ~by:unsafe_gep m.stack_unsafe_gep;
      inc ~by:guards m.stack_guards
  | Code_fuse { instrs; fused; accesses; elided } ->
      inc ~by:instrs m.fused_instrs;
      inc ~by:fused m.fused_superinstr;
      inc ~by:accesses m.fused_accesses;
      inc ~by:elided m.fused_elided
