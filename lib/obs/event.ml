(** The observability event taxonomy.

    One typed constructor per thing the runtime can tell an observer
    about: segment lifecycle (with granule counts, so tag-traffic cost
    is attributable per site), MTE tag-check faults and near-misses,
    PAC sign/auth, deferred TFSR drains, memory growth, host calls,
    function enter/leave, and the supervisor's crash/spawn records.

    This module (and the whole [obs] library) deliberately depends on
    nothing: tags are [int]s, addresses are [int64]s, functions are
    (index, name) pairs. That is what lets [Arch.Mte], [Wasm.Exec] and
    [Cage.Supervisor] all emit into the same sink without a dependency
    cycle. *)

type access = Load | Store

type t =
  | Seg_new of { addr : int64; len : int64; granules : int; tag : int }
  | Seg_set_tag of { addr : int64; len : int64; granules : int; tag : int }
  | Seg_free of { addr : int64; len : int64; granules : int; tag : int }
  | Tag_fault of {
      addr : int64;
      len : int64;
      ptr_tag : int;
      mem_tag : int option;
      access : access;
      deferred : bool;  (** latched in TFSR rather than trapping *)
    }
  | Tag_near_miss of {
      addr : int64;
      len : int64;
      tag : int;
      neighbour_tag : int;
          (** the differently-tagged granule just past the span *)
    }
  | Tfsr_drain of { addr : int64 }
  | Pac_sign of { ptr : int64 }
  | Pac_auth of { ptr : int64; ok : bool }
  | Mem_grow of { delta_pages : int64; new_pages : int64 }
  | Host_call of { name : string }
  | Func_enter of { idx : int; name : string }
  | Func_leave of { idx : int; name : string }
  | Crash of { cls : string; msg : string }
  | Spawn of { instance : int }
  | Snapshot_restore of { instance : int; bytes : int }
      (** a pool slot rewound to its frozen post-[_start] image
          (memory + tags + globals + table + PRNG), [bytes] of payload *)
  | Quarantine_evicted of { instance : int }
      (** a retained post-mortem dropped by the supervisor's
          oldest-first quarantine cap *)
  | Request_retry of { tenant : string; attempt : int }
      (** a contained-fault request re-admitted with backoff *)
  | Request_shed of { tenant : string; reason : string }
      (** an arrival refused by admission control ([reason] is
          ["queue"], ["breaker"] or ["attempts"]) *)
  | Breaker_trip of { tenant : string }
      (** a per-tenant circuit breaker opened after consecutive
          crashes *)
  | Check_elided
      (** a load/store whose MTE granule check was skipped because the
          static analyzer proved it in-bounds on a live segment *)
  | Bounds_elided
      (** a load/store whose sandbox span check was also skipped: the
          analyzer proved the span inside a successfully created
          segment, which by construction lies inside linear memory *)
  | Tag_writes_elided of { granules : int }
      (** a [segment.new]/[segment.free] lowered to arena form by the
          escape analysis: [granules] tag-plane writes skipped *)
  | Spec_unsafe_elision
      (** an elision that is architecturally sound but does not survive
          the Swivel-style speculation model (its proof leans on a
          refinable branch); reported by the lint, kept checked under
          [--no-spec-elide] *)
  | Stack_sanitize of {
      total : int;
      instrumented : int;
      escaping : int;
      unsafe_gep : int;
      guards : int;
    }  (** per-module stack-sanitizer decision totals (Algorithm 1) *)
  | Code_fuse of {
      instrs : int;
      fused : int;
      accesses : int;
      elided : int;
    }
      (** per-module threaded-code lowering totals: source instructions
          lowered, instructions absorbed into fused superinstructions,
          memory accesses lowered, and accesses whose granule check was
          elided at compile time *)

let access_to_string = function Load -> "load" | Store -> "store"

(** Short stable name (Chrome trace-event [name], metric labels). *)
let name = function
  | Seg_new _ -> "segment.new"
  | Seg_set_tag _ -> "segment.set_tag"
  | Seg_free _ -> "segment.free"
  | Tag_fault { deferred = false; _ } -> "tag-check-fault"
  | Tag_fault { deferred = true; _ } -> "tag-check-fault-deferred"
  | Tag_near_miss _ -> "tag-check-near-miss"
  | Tfsr_drain _ -> "tfsr-drain"
  | Pac_sign _ -> "pac.sign"
  | Pac_auth { ok = true; _ } -> "pac.auth"
  | Pac_auth { ok = false; _ } -> "pac.auth-fail"
  | Mem_grow _ -> "memory.grow"
  | Host_call _ -> "host-call"
  | Func_enter _ -> "func"
  | Func_leave _ -> "func"
  | Crash _ -> "crash"
  | Spawn _ -> "spawn"
  | Snapshot_restore _ -> "snapshot.restore"
  | Quarantine_evicted _ -> "quarantine-evicted"
  | Request_retry _ -> "request-retry"
  | Request_shed _ -> "request-shed"
  | Breaker_trip _ -> "breaker-trip"
  | Check_elided -> "check-elided"
  | Bounds_elided -> "bounds-elided"
  | Tag_writes_elided _ -> "tag-writes-elided"
  | Spec_unsafe_elision -> "spec-unsafe-elision"
  | Stack_sanitize _ -> "stack-sanitize"
  | Code_fuse _ -> "code-fuse"

(** Default simulated-cycle cost of the event itself, on top of the
    one-cycle-per-interpreted-op clock: rough Cortex-X3 prices from the
    Table 1 instrument set ([stg]-style granule tagging at ~2 granules
    per cycle, ~5-cycle [pacda]/[autda], fault delivery as an exception
    envelope). Callers can substitute their own table
    ({!Trace.create}). *)
let cost = function
  | Seg_new { granules; _ } | Seg_set_tag { granules; _ }
  | Seg_free { granules; _ } ->
      2 + (granules / 2)
  | Tag_fault { deferred = false; _ } -> 40
  | Tag_fault { deferred = true; _ } -> 1
  | Tag_near_miss _ -> 0
  | Tfsr_drain _ -> 10
  | Pac_sign _ | Pac_auth _ -> 5
  | Mem_grow _ -> 100
  | Host_call _ -> 20
  | Func_enter _ | Func_leave _ -> 2
  | Crash _ | Spawn _ -> 0
  | Snapshot_restore { bytes; _ } ->
      (* stream the frozen image back at a modeled 64 B/cycle *)
      50 + (bytes / 64)
  | Quarantine_evicted _ -> 0
  | Request_retry _ | Request_shed _ | Breaker_trip _ -> 0
  | Check_elided -> 0  (* the whole point: the check costs nothing *)
  | Bounds_elided -> 0
  | Tag_writes_elided _ -> 0  (* savings, not cost *)
  | Spec_unsafe_elision -> 0
  | Stack_sanitize _ -> 0
  | Code_fuse _ -> 0

(** Human-readable one-liner (black-box recorder, debugging). *)
let pp ppf ev =
  let f fmt = Format.fprintf ppf fmt in
  match ev with
  | Seg_new { addr; len; granules; tag } ->
      f "segment.new addr=0x%Lx len=%Ld granules=%d tag=%d" addr len granules
        tag
  | Seg_set_tag { addr; len; granules; tag } ->
      f "segment.set_tag addr=0x%Lx len=%Ld granules=%d tag=%d" addr len
        granules tag
  | Seg_free { addr; len; granules; tag } ->
      f "segment.free addr=0x%Lx len=%Ld granules=%d tag=%d" addr len granules
        tag
  | Tag_fault { addr; len; ptr_tag; mem_tag; access; deferred } ->
      f "tag-check-fault%s %s of %Ld B at 0x%Lx ptr-tag=%d mem-tag=%s"
        (if deferred then " (deferred)" else "")
        (access_to_string access) len addr ptr_tag
        (match mem_tag with Some t -> string_of_int t | None -> "?")
  | Tag_near_miss { addr; len; tag; neighbour_tag } ->
      f "tag-check-near-miss at 0x%Lx len=%Ld tag=%d neighbour-tag=%d" addr
        len tag neighbour_tag
  | Tfsr_drain { addr } -> f "tfsr-drain addr=0x%Lx" addr
  | Pac_sign { ptr } -> f "pac.sign ptr=0x%Lx" ptr
  | Pac_auth { ptr; ok } ->
      f "pac.auth ptr=0x%Lx %s" ptr (if ok then "ok" else "FAILED")
  | Mem_grow { delta_pages; new_pages } ->
      f "memory.grow +%Ld pages -> %Ld" delta_pages new_pages
  | Host_call { name } -> f "host-call %s" name
  | Func_enter { idx; name } -> f "enter %s (f%d)" name idx
  | Func_leave { idx; name } -> f "leave %s (f%d)" name idx
  | Crash { cls; msg } -> f "crash [%s] %s" cls msg
  | Spawn { instance } -> f "spawn instance %d" instance
  | Snapshot_restore { instance; bytes } ->
      f "snapshot.restore instance %d (%d B)" instance bytes
  | Quarantine_evicted { instance } ->
      f "quarantine-evicted instance %d" instance
  | Request_retry { tenant; attempt } ->
      f "request-retry tenant=%s attempt=%d" tenant attempt
  | Request_shed { tenant; reason } ->
      f "request-shed tenant=%s reason=%s" tenant reason
  | Breaker_trip { tenant } -> f "breaker-trip tenant=%s" tenant
  | Check_elided -> f "check-elided"
  | Bounds_elided -> f "bounds-elided"
  | Tag_writes_elided { granules } ->
      f "tag-writes-elided granules=%d" granules
  | Spec_unsafe_elision -> f "spec-unsafe-elision"
  | Stack_sanitize { total; instrumented; escaping; unsafe_gep; guards } ->
      f "stack-sanitize slots=%d instrumented=%d escaping=%d unsafe-gep=%d \
         guards=%d"
        total instrumented escaping unsafe_gep guards
  | Code_fuse { instrs; fused; accesses; elided } ->
      f "code-fuse instrs=%d fused=%d accesses=%d elided=%d" instrs fused
        accesses elided

let to_string ev = Format.asprintf "%a" pp ev
