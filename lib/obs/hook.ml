(** The global observability sink — the one place every layer reports
    to, and the one load-and-compare the uninstrumented hot path pays
    (the same [None]-fast-path pattern as [Arch.Fault_inject]).

    Call sites guard with {!enabled} before constructing an event, so
    with no sink installed nothing allocates:

    {[ if Obs.Hook.enabled () then
         Obs.Hook.event (Obs.Event.Seg_new { ... }) ]}

    A sink bundles up to three consumers — tracer, metrics, profiler —
    any subset of which may be active. The [tid] context names the
    instance currently executing (set at invocation boundaries), so
    trace records land on the right Chrome thread lane. *)

type t = {
  trace : Trace.t option;
  metrics : Metrics.cage option;
  profiler : Profiler.t option;
  mutable tid : int;
}

let make ?trace ?metrics ?profiler () = { trace; metrics; profiler; tid = 0 }

(* Exposed ref so hot paths can pattern-match it directly. *)
let hook : t option ref = ref None

let install s = hook := Some s
let uninstall () = hook := None
let active () = !hook
let enabled () = !hook != None

let with_sink s f =
  install s;
  Fun.protect ~finally:uninstall f

let set_instance id =
  match !hook with None -> () | Some s -> s.tid <- id

(** Report one event: recorded by the tracer, counted by the metrics
    set. Guard call sites with {!enabled} — this allocates the event. *)
let event ev =
  match !hook with
  | None -> ()
  | Some s ->
      (match s.trace with
      | Some tr -> (
          Trace.record tr ~tid:s.tid ev;
          (* Keep the drop counter in lock-step with the ring so a
             wrapped trace is visible in metrics, not just in the
             export's otherData. *)
          match s.metrics with
          | Some m ->
              let d = Trace.dropped tr in
              if d > m.Metrics.trace_dropped.Metrics.c_value then
                m.Metrics.trace_dropped.Metrics.c_value <- d
          | None -> ())
      | None -> ());
      (match s.metrics with
      | Some m -> Metrics.observe_event m ev
      | None -> ())

(** Observe one tag-checked span of [len] bytes (the span-length
    histogram). Takes an [int] so the disabled path allocates nothing. *)
let span_check len =
  match !hook with
  | Some { metrics = Some m; _ } ->
      Metrics.observe m.Metrics.span_len (float_of_int len)
  | _ -> ()

(** Observe one tenant queue depth sample (taken at each arrival). *)
let queue_depth n =
  match !hook with
  | Some { metrics = Some m; _ } ->
      Metrics.observe m.Metrics.queue_depth (float_of_int n)
  | _ -> ()

(** Observe the fuel one supervised invocation consumed. *)
let fuel_used n =
  match !hook with
  | Some { metrics = Some m; _ } ->
      Metrics.observe m.Metrics.fuel_per_call (float_of_int n)
  | _ -> ()

(** The newest [k] trace records, rendered one per line (the
    supervisor's black-box flight recording). Empty without a tracer. *)
let recent_events k =
  match !hook with
  | Some { trace = Some tr; _ } ->
      List.map
        (fun r ->
          Printf.sprintf "[cycle %d] %s" r.Trace.cycle
            (Event.to_string r.Trace.ev))
        (Trace.recent tr k)
  | _ -> []
