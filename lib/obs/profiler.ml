(** Wasm-level sampling profiler.

    The interpreter ticks the profiler once per metered event; every
    [interval] ticks the profiler snapshots the live call stack (the
    instance's [call_stack] — an immutable int list, so the snapshot is
    a pointer copy) and attributes to it {e every metered event since
    the previous snapshot}, taken as the meter-total delta. Weights
    therefore sum exactly to the final meter total once {!flush} runs —
    the folded-stack output is a complete, loss-free partition of the
    run, not an approximate sample count. *)

type t = {
  interval : int;
  mutable countdown : int;
  mutable ticks : int;          (* total ticks seen *)
  mutable samples : int;        (* snapshots taken *)
  mutable last_total : int;     (* meter total at the last snapshot *)
  tbl : (int list, int ref) Hashtbl.t;  (* stack (innermost first) -> weight *)
}

let create ?(interval = 101) () =
  if interval <= 0 then invalid_arg "Profiler.create: interval must be positive";
  { interval; countdown = 0; ticks = 0; samples = 0; last_total = 0;
    tbl = Hashtbl.create 64 }

let interval t = t.interval
let ticks t = t.ticks
let samples t = t.samples

(** One tick of the event clock; [true] when a snapshot is due. The
    caller then gathers the stack and meter total and calls {!sample} —
    split so the (hot) non-sampling path touches nothing else. *)
let due t =
  t.ticks <- t.ticks + 1;
  if t.countdown = 0 then begin
    t.countdown <- t.interval - 1;
    true
  end
  else begin
    t.countdown <- t.countdown - 1;
    false
  end

let add t stack w =
  if w > 0 then
    match Hashtbl.find_opt t.tbl stack with
    | Some r -> r := !r + w
    | None -> Hashtbl.add t.tbl stack (ref w)

(** Record a snapshot: attribute the events since the last snapshot to
    [stack] (function indices, innermost first). *)
let sample t ~stack ~total =
  t.samples <- t.samples + 1;
  add t stack (total - t.last_total);
  t.last_total <- max t.last_total total

(** Attribute the tail of the run (events after the last periodic
    snapshot). Call once, when the run ends; [stack] is usually [[]]
    (execution has returned to the host). *)
let flush t ~stack ~total = sample t ~stack ~total

let total_weight t = Hashtbl.fold (fun _ w acc -> acc + !w) t.tbl 0

let stack_name name = function
  | [] -> "(host)"
  | stack -> String.concat ";" (List.rev_map name stack)

(** Folded-stack lines [("root;...;leaf", weight)], sorted by stack
    name — feed to any flamegraph tool. *)
let folded t ~name =
  Hashtbl.fold (fun stack w acc -> (stack_name name stack, !w) :: acc) t.tbl []
  |> List.sort compare

(** Per-function attribution [(name, self, total)], heaviest self
    first. [self] counts weight sampled with the function on top;
    [total] counts weight with it anywhere on the stack. Both columns
    each sum to {!total_weight} only for [self] — [total] overlaps by
    construction. *)
type attribution = { fn : string; self : int; total : int }

let attribution t ~name =
  let self = Hashtbl.create 16 and tot = Hashtbl.create 16 in
  let bump tbl k w =
    match Hashtbl.find_opt tbl k with
    | Some r -> r := !r + w
    | None -> Hashtbl.add tbl k (ref w)
  in
  Hashtbl.iter
    (fun stack w ->
      let label = match stack with [] -> "(host)" | i :: _ -> name i in
      bump self label !w;
      let seen = Hashtbl.create 8 in
      List.iter
        (fun i ->
          let n = name i in
          if not (Hashtbl.mem seen n) then begin
            Hashtbl.add seen n ();
            bump tot n !w
          end)
        (match stack with [] -> [] | s -> s);
      if stack = [] then bump tot "(host)" !w)
    t.tbl;
  let rows =
    Hashtbl.fold
      (fun fn s acc ->
        let total =
          match Hashtbl.find_opt tot fn with Some r -> !r | None -> !s
        in
        { fn; self = !s; total } :: acc)
      self []
  in
  (* functions that only ever appear as callers still deserve a row *)
  let rows =
    Hashtbl.fold
      (fun fn r acc ->
        if List.exists (fun row -> row.fn = fn) acc then acc
        else { fn; self = 0; total = !r } :: acc)
      tot rows
  in
  List.sort
    (fun a b ->
      match compare b.self a.self with 0 -> compare a.fn b.fn | c -> c)
    rows
