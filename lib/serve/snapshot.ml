(** Whole-instance freeze/restore.

    A serving pool instantiates a tenant module once, runs its
    [_start]-style initialisation, and freezes the result: linear
    memory, the MTE tag map, globals, the indirect-call table, and the
    instance's tag-draw PRNG. Every request then begins from this
    image — restore is a [Bytes.blit] per plane, so a crashed or
    merely-dirty instance is returned to a known-good state without
    re-running instantiation or the guest's init code.

    Restoring the PRNG matters for determinism: a restored instance
    must draw the same [irg] tag sequence the frozen one would have,
    so request N's behaviour does not depend on how many requests ran
    before it on the same slot. *)

type t = {
  sn_instance : int;                       (** id frozen from *)
  sn_mem : Wasm.Memory.snapshot option;
  sn_tags : Arch.Tag_memory.snapshot option;
  sn_globals : Wasm.Values.t array;
  sn_table : int option array;
  sn_rng : Random.State.t;
  sn_bytes : int;                          (** payload size: restore cost *)
}

let capture (inst : Wasm.Instance.t) =
  let sn_mem = Option.map Wasm.Memory.snapshot inst.Wasm.Instance.mem in
  let sn_tags =
    Option.map
      (fun m -> Arch.Tag_memory.snapshot (Arch.Mte.tag_memory m))
      inst.Wasm.Instance.mte
  in
  let bytes =
    (match sn_mem with Some s -> Wasm.Memory.snapshot_bytes s | None -> 0)
    + (match sn_tags with
      | Some s -> Arch.Tag_memory.snapshot_bytes s
      | None -> 0)
    + (Array.length inst.Wasm.Instance.globals * 8)
    + (Array.length inst.Wasm.Instance.table * 8)
  in
  {
    sn_instance = inst.Wasm.Instance.id;
    sn_mem;
    sn_tags;
    sn_globals = Array.copy inst.Wasm.Instance.globals;
    sn_table = Array.copy inst.Wasm.Instance.table;
    sn_rng = Random.State.copy inst.Wasm.Instance.rng;
    sn_bytes = bytes;
  }

let bytes t = t.sn_bytes

(** Rewind [inst] to the frozen image. Also clears the transient crash
    state a previous request may have left behind (latched fault, call
    stack, pending TFSR report), so a restored slot is indistinguishable
    from a freshly initialised one. *)
let restore t (inst : Wasm.Instance.t) =
  (match (inst.Wasm.Instance.mem, t.sn_mem) with
  | Some m, Some s -> Wasm.Memory.restore m s
  | _ -> ());
  (match (inst.Wasm.Instance.mte, t.sn_tags) with
  | Some m, Some s ->
      Arch.Tag_memory.restore (Arch.Mte.tag_memory m) s;
      ignore (Arch.Mte.take_pending m)
  | _ -> ());
  Array.blit t.sn_globals 0 inst.Wasm.Instance.globals 0
    (min (Array.length t.sn_globals)
       (Array.length inst.Wasm.Instance.globals));
  Array.blit t.sn_table 0 inst.Wasm.Instance.table 0
    (min (Array.length t.sn_table) (Array.length inst.Wasm.Instance.table));
  inst.Wasm.Instance.rng <- Random.State.copy t.sn_rng;
  inst.Wasm.Instance.last_fault <- None;
  inst.Wasm.Instance.call_stack <- [];
  inst.Wasm.Instance.fuel <- -1;
  if Obs.Hook.enabled () then
    Obs.Hook.event
      (Obs.Event.Snapshot_restore
         { instance = inst.Wasm.Instance.id; bytes = t.sn_bytes });
  if Obs.Span.enabled () then
    Obs.Span.instant ~tid:Obs.Span.runtime_tid
      ~args:
        [ ("instance", Obs.Span.I inst.Wasm.Instance.id);
          ("bytes", Obs.Span.I t.sn_bytes) ]
      "snapshot.restore"

(** Modeled restore cost in simulated cycles — the same cost the
    tracer charges a [Snapshot_restore] event, so scheduler demand and
    trace timelines agree. *)
let restore_cycles t = 50 + (t.sn_bytes / 64)

(** Does the live instance state match the frozen image byte-for-byte?
    (Fidelity tests; not used on the serving fast path.) *)
let matches t (inst : Wasm.Instance.t) =
  let mem_ok =
    match (inst.Wasm.Instance.mem, t.sn_mem) with
    | Some m, Some s ->
        String.equal (Wasm.Memory.to_string m) (Wasm.Memory.snapshot_to_string s)
    | None, None -> true
    | _ -> false
  in
  let tags_ok =
    match (inst.Wasm.Instance.mte, t.sn_tags) with
    | Some m, Some s ->
        String.equal
          (Arch.Tag_memory.to_string (Arch.Mte.tag_memory m))
          (Arch.Tag_memory.snapshot_to_string s)
    | None, None -> true
    | _ -> false
  in
  let globals_ok =
    Array.length t.sn_globals = Array.length inst.Wasm.Instance.globals
    && Array.for_all2 Wasm.Values.equal t.sn_globals
         inst.Wasm.Instance.globals
  in
  let table_ok = t.sn_table = inst.Wasm.Instance.table in
  mem_ok && tags_ok && globals_ok && table_ok
