(** Per-tenant instance pools with snapshot/restore.

    Each tenant gets a fixed number of {e slots}. A slot is a full
    containment stack of its own — [Cage.Process] (own PAC key and
    modifier), [Cage.Supervisor] (crash → post-mortem + quarantine),
    one instance — because the combined Cage configuration caps MTE
    sandboxes at one per process (§6.4), and because blast-radius
    isolation is the point: a slot crashing must not even share a
    process with its siblings.

    A slot is instantiated and initialised {e once}, then frozen
    ({!Snapshot.capture}). Serving a request dirties the slot; the next
    acquisition restores the frozen image first, so every request
    observes identical initial state — including whatever damage a
    chaos injection left in memory on the previous request. A crashed
    slot goes [Quarantined] and is only brought back by {!heal}, which
    spends restart-storm tokens ({!Policy.bucket}) so a crash-looping
    tenant degrades to fewer live slots instead of thrashing.

    Slots carry explicit globally-unique chaos lanes ([lane_base + i]):
    per-slot fault streams are split off the engine seed by lane, so a
    run replays identically however the scheduler interleaves slots. *)

type tenant = {
  tn_name : string;
  tn_module : Wasm.Ast.module_;
  tn_config : Cage.Config.t;
  tn_entry : string;                  (** export invoked per request *)
  tn_args : Wasm.Values.t list;
  tn_expected : Wasm.Values.t list option;
      (** chaos-free reference result; [None] when the tenant has no
          stable answer (e.g. deliberately-crashing attack tenants) *)
  tn_init : string option;            (** export run once before freeze *)
  tn_imports :
    unit ->
    (string * string * Wasm.Instance.host_func) list * (unit -> unit);
      (** per-slot host imports plus a reset thunk clearing any host
          state between requests (output buffers, host clocks, ...) *)
  tn_weight : int;                    (** share of arrival traffic *)
}

(** A tenant with no imports and no init step. *)
let tenant ?(weight = 1) ?expected ?init ~config ~entry ~args name m =
  {
    tn_name = name;
    tn_module = m;
    tn_config = config;
    tn_entry = entry;
    tn_args = args;
    tn_expected = expected;
    tn_init = init;
    tn_imports = (fun () -> ([], fun () -> ()));
    tn_weight = weight;
  }

type slot_state = Idle | Busy | Quarantined

type slot = {
  sl_index : int;
  sl_lane : int;
  sl_sup : Cage.Supervisor.t;
  sl_inst : Wasm.Instance.t;
  sl_meter : Wasm.Meter.t;
  sl_snapshot : Snapshot.t;
  sl_reset : unit -> unit;
  mutable sl_state : slot_state;
  mutable sl_dirty : bool;   (* a request ran since the last restore *)
  mutable sl_crashes : int;
}

type t = {
  pl_tenant : tenant;
  pl_slots : slot array;
  pl_heal : Policy.bucket;
  mutable pl_restores : int;
  mutable pl_heals : int;
  mutable pl_heals_deferred : int;
      (* heal attempts the token bucket refused (restart-storm guard) *)
  mutable pl_served_cycles : int;
      (* sum of metered guest demand over every [serve] call — the
         ground truth the tail-attribution exec phase must add up to *)
}

(** Build a pool of [size] slots. Call {e before} installing a chaos
    engine: slot initialisation and the frozen image must be
    fault-free, otherwise every restore would replay the damage. *)
let create ?(fuel = 2_000_000) ?max_quarantined ~lane_base ~size ~seed
    ~(policy : Policy.t) tenant =
  if size < 1 then invalid_arg "Pool.create: size must be >= 1";
  let slot i =
    let process =
      Cage.Process.create ~config:tenant.tn_config ~seed:(seed + i) ()
    in
    let sup = Cage.Supervisor.create ~fuel ?max_quarantined process in
    let meter = Wasm.Meter.create () in
    let imports, reset = tenant.tn_imports () in
    let inst =
      Cage.Supervisor.spawn ~meter ~imports ~lane:(lane_base + i) sup
        tenant.tn_module
    in
    (match tenant.tn_init with
    | Some entry -> (
        match Cage.Supervisor.run sup inst entry [] with
        | Cage.Supervisor.Finished _ -> ()
        | Cage.Supervisor.Crashed pm ->
            invalid_arg
              (Printf.sprintf "Pool.create: tenant %s init crashed: %s"
                 tenant.tn_name pm.Cage.Supervisor.pm_message))
    | None -> ());
    reset ();
    {
      sl_index = i;
      sl_lane = lane_base + i;
      sl_sup = sup;
      sl_inst = inst;
      sl_meter = meter;
      sl_snapshot = Snapshot.capture inst;
      sl_reset = reset;
      sl_state = Idle;
      sl_dirty = false;
      sl_crashes = 0;
    }
  in
  {
    pl_tenant = tenant;
    pl_slots = Array.init size slot;
    pl_heal =
      Policy.bucket_create ~capacity:policy.Policy.heal_capacity
        ~refill_every:policy.Policy.heal_refill;
    pl_restores = 0;
    pl_heals = 0;
    pl_heals_deferred = 0;
    pl_served_cycles = 0;
  }

let size t = Array.length t.pl_slots
let restores t = t.pl_restores
let heals t = t.pl_heals
let heals_deferred t = t.pl_heals_deferred

(** Total metered guest cycles across every request served so far. *)
let served_cycles t = t.pl_served_cycles

let count state t =
  Array.fold_left
    (fun n s -> if s.sl_state = state then n + 1 else n)
    0 t.pl_slots

let idle_count = count Idle
let quarantined_count = count Quarantined

let restore_slot t s =
  Snapshot.restore s.sl_snapshot s.sl_inst;
  s.sl_reset ();
  s.sl_dirty <- false;
  t.pl_restores <- t.pl_restores + 1

(** Take an idle slot for a request, restoring the frozen image first
    if a previous request dirtied it. *)
let acquire t =
  let rec find i =
    if i >= Array.length t.pl_slots then None
    else if t.pl_slots.(i).sl_state = Idle then Some t.pl_slots.(i)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some s ->
      if s.sl_dirty then restore_slot t s;
      s.sl_state <- Busy;
      if Obs.Span.enabled () then
        Obs.Span.instant ~tid:Obs.Span.runtime_tid
          ~args:
            [ ("tenant", Obs.Span.S t.pl_tenant.tn_name);
              ("slot", Obs.Span.I s.sl_index);
              ("lane", Obs.Span.I s.sl_lane) ]
          "pool.acquire";
      Some s

(** Return an acquired slot unused (the request expired while queued
    and never ran): straight back to idle, cleanliness unchanged. *)
let cancel s = s.sl_state <- Idle

(** The request finished (well or badly contained, either way the slot
    survives): back to idle, dirty until the next restore. *)
let settle_ok s =
  s.sl_dirty <- true;
  s.sl_state <- Idle;
  if Obs.Span.enabled () then
    Obs.Span.instant ~tid:Obs.Span.runtime_tid
      ~args:[ ("slot", Obs.Span.I s.sl_index) ]
      "pool.settle"

(** The request crashed the slot: quarantine it until {!heal}. *)
let settle_crashed s =
  s.sl_dirty <- true;
  s.sl_crashes <- s.sl_crashes + 1;
  s.sl_state <- Quarantined;
  if Obs.Span.enabled () then
    Obs.Span.instant ~tid:Obs.Span.runtime_tid
      ~args:
        [ ("slot", Obs.Span.I s.sl_index); ("lane", Obs.Span.I s.sl_lane) ]
      "pool.quarantine"

(** Self-healing sweep: restore quarantined slots back to idle, one
    restart-storm token each. Returns how many slots came back. *)
let heal t ~now =
  let healed = ref 0 in
  Array.iter
    (fun s ->
      if s.sl_state = Quarantined then
        if Policy.bucket_take t.pl_heal ~now then begin
          restore_slot t s;
          Cage.Supervisor.release s.sl_sup s.sl_inst;
          s.sl_state <- Idle;
          t.pl_heals <- t.pl_heals + 1;
          incr healed;
          if Obs.Span.enabled () then
            Obs.Span.instant ~tid:Obs.Span.runtime_tid
              ~args:
                [ ("tenant", Obs.Span.S t.pl_tenant.tn_name);
                  ("slot", Obs.Span.I s.sl_index) ]
              "pool.heal"
        end
        else t.pl_heals_deferred <- t.pl_heals_deferred + 1)
    t.pl_slots;
  !healed

(** Run one request on an acquired slot. Returns the supervisor
    outcome plus the measured service demand in simulated cycles
    (executed wasm ops + the restore the acquisition paid, if any). *)
let serve t (s : slot) =
  let before = Wasm.Meter.total s.sl_meter in
  let outcome =
    Cage.Supervisor.run s.sl_sup s.sl_inst t.pl_tenant.tn_entry
      t.pl_tenant.tn_args
  in
  let demand = Wasm.Meter.total s.sl_meter - before in
  t.pl_served_cycles <- t.pl_served_cycles + demand;
  (outcome, demand)
