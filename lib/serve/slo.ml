(** Per-tenant SLO monitoring and tail-latency attribution.

    Three consumers of the serving runtime's per-request stream, all
    fed by {!Server.run} when a collector is passed in:

    - {e SLO monitors}: one sliding sample window per tenant, scored
      against an availability objective (fraction of requests that
      terminate ok) and a latency objective (fraction of ok requests
      under a threshold), with {e multi-window burn rates} — how fast
      each window is spending its error budget, where burn 1.0 means
      "exactly on target" and anything sustained above it means the
      objective is lost before the window closes;
    - {e tail attribution}: every terminated request carries an exact
      per-phase decomposition of its latency
      (queue / restore / exec / retry / drain, see {!req_rec}) — the
      slowest-percentile slice of those records, summed per phase,
      says {e where} the tail went, not just how long it was. The
      exec phases are metered guest cycles, so their sum reconciles
      exactly against {!Pool.served_cycles};
    - {e fault→request correlation}: chaos injections are tagged with
      the request id they landed in ([Arch.Fault_inject.set_request]),
      so a chaos run ends with "injection at site X hit request R of
      tenant T, contained after 1 retry, cost 12k cycles" instead of
      an aggregate counter.

    Everything here is measurement on the simulated clock; nothing
    feeds back into scheduling. *)

(* ------------------------------------------------------------------ *)
(* Exact percentiles                                                   *)
(* ------------------------------------------------------------------ *)

(** Nearest-rank percentile on a sorted (ascending) sample: the
    smallest value such that at least [p] percent of the sample is at
    or below it. Exact by construction — no histogram buckets — which
    is what pins it in tests against known distributions. *)
let percentile_exact sorted p =
  match Array.length sorted with
  | 0 -> 0
  | n ->
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      sorted.(max 0 (min (n - 1) (rank - 1)))

(* ------------------------------------------------------------------ *)
(* Objectives and monitors                                             *)
(* ------------------------------------------------------------------ *)

type objective = {
  ob_availability : float;
      (** target fraction of requests terminating ok (shed counts
          against it: refusing a request is not serving it) *)
  ob_latency : int;           (** latency threshold, simulated cycles *)
  ob_latency_quantile : float;
      (** target fraction of ok requests under the threshold *)
}

let default_objective =
  { ob_availability = 0.99; ob_latency = 250_000; ob_latency_quantile = 0.95 }

type sample = {
  sm_time : int;     (** termination time, DES cycles *)
  sm_ok : bool;
  sm_latency : int;  (** end-to-end latency; [-1] for failed/shed *)
}

type monitor = {
  mn_tenant : string;
  mutable mn_samples : sample list;  (* newest first *)
  mutable mn_total : int;
  mutable mn_ok : int;
}

(** Samples inside the window [(now - window, now]]:
    [(total, ok, fast)] where [fast] counts ok samples at or under the
    latency threshold. *)
let window_stats m ~now ~window ~threshold =
  let lo = now - window in
  let rec go total ok fast = function
    | [] -> (total, ok, fast)
    | s :: _ when s.sm_time <= lo -> (total, ok, fast)
    | s :: rest ->
        go (total + 1)
          (ok + if s.sm_ok then 1 else 0)
          (fast + if s.sm_ok && s.sm_latency <= threshold then 1 else 0)
          rest
  in
  go 0 0 0 m.mn_samples

(** Burn rates over one window: [(availability_burn, latency_burn)].
    Burn = observed error rate / error budget; 1.0 is "spending the
    budget exactly as fast as the objective allows". Windows with no
    samples burn 0. *)
let burn_rates m obj ~now ~window =
  let total, ok, fast =
    window_stats m ~now ~window ~threshold:obj.ob_latency
  in
  let avail_burn =
    if total = 0 then 0.0
    else
      let err = 1.0 -. (float_of_int ok /. float_of_int total) in
      let budget = 1.0 -. obj.ob_availability in
      if budget <= 0.0 then (if err > 0.0 then infinity else 0.0)
      else err /. budget
  in
  let lat_burn =
    if ok = 0 then 0.0
    else
      let slow = 1.0 -. (float_of_int fast /. float_of_int ok) in
      let budget = 1.0 -. obj.ob_latency_quantile in
      if budget <= 0.0 then (if slow > 0.0 then infinity else 0.0)
      else slow /. budget
  in
  (avail_burn, lat_burn)

(* ------------------------------------------------------------------ *)
(* Per-request records and fault hits                                  *)
(* ------------------------------------------------------------------ *)

(** One terminated request's latency decomposition. For an ok request
    the identity [rr_latency = rr_queue + rr_restore + rr_exec +
    rr_retry + rr_drain] holds exactly: every cycle between first
    arrival and termination is attributed to exactly one phase.
    [rr_exec] and [rr_exec_waste] are {e metered} guest cycles — the
    accepted attempt's demand and the demand of attempts whose result
    was discarded — so summed over all records they equal
    {!Pool.served_cycles} for requests that ran. *)
type req_rec = {
  rr_id : int;
  rr_tenant : string;
  rr_ok : bool;
  rr_latency : int;      (** end-to-end; [-1] for failed/shed *)
  rr_attempts : int;
  rr_injections : int;
  rr_queue : int;        (** waiting for a slot, all attempts *)
  rr_restore : int;      (** snapshot restore, accepted attempt *)
  rr_exec : int;         (** metered guest demand, accepted attempt *)
  rr_exec_waste : int;   (** metered demand of discarded attempts *)
  rr_retry : int;        (** backoff waits + discarded attempts' residence *)
  rr_drain : int;        (** dispatch overhead + preemption gaps, accepted *)
}

(** One chaos injection's request-level consequence. *)
type hit = {
  ht_request : int;
  ht_tenant : string;
  ht_lane : int;
  ht_sites : string list;   (** injection sites, chronological *)
  ht_attempts : int;        (** attempts the request used in total *)
  ht_contained : bool;      (** the request still terminated ok *)
  ht_cost : int;            (** retry-phase cycles the faults induced *)
}

type collector = {
  co_objective : objective;
  mutable co_monitors : (string * monitor) list;  (* registration order *)
  mutable co_recs : req_rec list;                 (* newest first *)
  mutable co_hits : hit list;                     (* newest first *)
  mutable co_exec_ok : int;
  mutable co_exec_waste : int;
}

let collector ?(objective = default_objective) () =
  { co_objective = objective; co_monitors = []; co_recs = []; co_hits = [];
    co_exec_ok = 0; co_exec_waste = 0 }

let monitor co tenant =
  match List.assoc_opt tenant co.co_monitors with
  | Some m -> m
  | None ->
      let m = { mn_tenant = tenant; mn_samples = []; mn_total = 0; mn_ok = 0 } in
      co.co_monitors <- co.co_monitors @ [ (tenant, m) ];
      m

(** Feed one terminated request into its tenant's monitor. *)
let sample co ~tenant ~now ~ok ~latency =
  let m = monitor co tenant in
  m.mn_samples <- { sm_time = now; sm_ok = ok; sm_latency = latency }
                  :: m.mn_samples;
  m.mn_total <- m.mn_total + 1;
  if ok then m.mn_ok <- m.mn_ok + 1

(** Record one terminated request's phase decomposition. *)
let record co r =
  co.co_recs <- r :: co.co_recs;
  co.co_exec_ok <- co.co_exec_ok + r.rr_exec;
  co.co_exec_waste <- co.co_exec_waste + r.rr_exec_waste

let hit co h = co.co_hits <- h :: co.co_hits

let records co = List.rev co.co_recs
let hits co = List.rev co.co_hits
let monitors co = List.map snd co.co_monitors

(** Total metered guest cycles the collector attributed, accepted +
    discarded — must equal the pools' {!Pool.served_cycles} sum. *)
let exec_cycles co = co.co_exec_ok + co.co_exec_waste

(* ------------------------------------------------------------------ *)
(* Tail attribution                                                    *)
(* ------------------------------------------------------------------ *)

type tail_row = {
  tl_tenant : string;      (** tenant, or ["(all)"] for the total row *)
  tl_count : int;
  tl_queue : int;
  tl_restore : int;
  tl_exec : int;
  tl_retry : int;
  tl_drain : int;
  tl_total : int;
}

type tail = {
  tt_pct : float;
  tt_threshold : int;      (** exact latency percentile cut, cycles *)
  tt_rows : tail_row list; (** per-tenant rows then the [(all)] total *)
}

let tail_row tenant rs =
  let sum f = List.fold_left (fun n r -> n + f r) 0 rs in
  {
    tl_tenant = tenant;
    tl_count = List.length rs;
    tl_queue = sum (fun r -> r.rr_queue);
    tl_restore = sum (fun r -> r.rr_restore);
    tl_exec = sum (fun r -> r.rr_exec);
    tl_retry = sum (fun r -> r.rr_retry);
    tl_drain = sum (fun r -> r.rr_drain);
    tl_total = sum (fun r -> r.rr_latency);
  }

(** Decompose the slowest [(100 - pct)]% of ok requests: which phases
    their cycles sit in, per tenant and overall. *)
let tail co ~pct =
  let ok = List.filter (fun r -> r.rr_ok) (records co) in
  let lat = Array.of_list (List.map (fun r -> r.rr_latency) ok) in
  Array.sort compare lat;
  let threshold = percentile_exact lat pct in
  let slow = List.filter (fun r -> r.rr_latency >= threshold) ok in
  let tenants =
    List.filter_map
      (fun (name, _) ->
        match List.filter (fun r -> String.equal r.rr_tenant name) slow with
        | [] -> None
        | rs -> Some (tail_row name rs))
      co.co_monitors
  in
  { tt_pct = pct; tt_threshold = threshold;
    tt_rows = tenants @ [ tail_row "(all)" slow ] }

(* ------------------------------------------------------------------ *)
(* Rendering (the cage_top-style end-of-run report)                    *)
(* ------------------------------------------------------------------ *)

let pct x = 100.0 *. x

(** Per-tenant burn rates over each window: the SLO report body. *)
let render_slo ppf co ~now ~windows =
  let obj = co.co_objective in
  Format.fprintf ppf
    "SLO: availability >= %.2f%%, p%.0f latency <= %d cycles@."
    (pct obj.ob_availability)
    (pct obj.ob_latency_quantile)
    obj.ob_latency;
  List.iter
    (fun (_, m) ->
      let avail =
        if m.mn_total = 0 then 100.0
        else pct (float_of_int m.mn_ok /. float_of_int m.mn_total)
      in
      Format.fprintf ppf "  %-10s %7d served  availability %6.2f%%@."
        m.mn_tenant m.mn_total avail;
      List.iter
        (fun (label, w) ->
          let ab, lb = burn_rates m obj ~now ~window:w in
          Format.fprintf ppf
            "    window %-6s (%9d cy)  avail burn %6.2fx  latency burn %6.2fx@."
            label w ab lb)
        windows)
    co.co_monitors

let render_tail ppf co ~pct:p =
  let t = tail co ~pct:p in
  Format.fprintf ppf
    "tail attribution: ok requests at/above p%.0f (>= %d cycles)@." p
    t.tt_threshold;
  Format.fprintf ppf "  %-10s %6s %10s %10s %10s %10s %10s %12s@." "tenant"
    "n" "queue" "restore" "exec" "retry" "drain" "total";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-10s %6d %10d %10d %10d %10d %10d %12d@."
        r.tl_tenant r.tl_count r.tl_queue r.tl_restore r.tl_exec r.tl_retry
        r.tl_drain r.tl_total)
    t.tt_rows

let render_hits ppf co =
  match hits co with
  | [] -> Format.fprintf ppf "fault correlation: no injections hit a request@."
  | hs ->
      Format.fprintf ppf "fault correlation: %d injected request%s@."
        (List.length hs)
        (if List.length hs = 1 then "" else "s");
      List.iter
        (fun h ->
          Format.fprintf ppf
            "  injection at %s hit request %d of tenant %s (lane %d): %s, \
             cost %d cycles@."
            (String.concat "+" h.ht_sites)
            h.ht_request h.ht_tenant h.ht_lane
            (if h.ht_contained then
               Printf.sprintf "contained after %d %s" (h.ht_attempts - 1)
                 (if h.ht_attempts = 2 then "retry" else "retries")
             else Printf.sprintf "failed after %d attempts" h.ht_attempts)
            h.ht_cost)
        hs
