(** Robustness policy: what the serving runtime does when things go
    wrong, separated from the machinery that does it.

    Three mechanisms, all deliberately boring:

    - {e admission control}: per-tenant queue bounds shed load at the
      door instead of letting one tenant's backlog starve the pool;
    - {e bounded retry with backoff}: a request that died to a
      {e contained} fault (chaos injection, watchdog, transient host
      error) is retried a bounded number of times with exponential
      backoff plus jitter — a request that died to a {e definite guest
      bug} (unreachable, genuine trap, stack exhaustion) is never
      retried, because replaying a deterministic bug burns capacity to
      reproduce the same crash;
    - {e circuit breaker}: a tenant whose requests keep crashing is
      tripped open and its traffic shed during a cooldown, then probed
      half-open — one success re-closes, one failure re-opens. *)

type retry = {
  max_attempts : int;     (** total tries per request, first included *)
  backoff_base : int;     (** first retry delay, simulated cycles *)
  backoff_factor : int;   (** exponential multiplier per attempt *)
  backoff_cap : int;      (** delay ceiling, cycles *)
  jitter : int;           (** uniform extra delay in [0, jitter) *)
}

type breaker_cfg = {
  trip_after : int;       (** consecutive crashes that open the breaker *)
  cooldown : int;         (** cycles open before the half-open probe *)
}

type t = {
  queue_bound : int;      (** per-tenant waiting requests before shed *)
  deadline : int;         (** per-request wall budget, cycles *)
  retry : retry;
  breaker : breaker_cfg;
  heal_capacity : int;    (** restart-storm token bucket size *)
  heal_refill : int;      (** cycles per restored heal token *)
  heal_interval : int;    (** cycles between self-healing sweeps *)
}

let default =
  {
    queue_bound = 64;
    deadline = 2_000_000;
    retry =
      {
        max_attempts = 3;
        backoff_base = 2_000;
        backoff_factor = 4;
        backoff_cap = 200_000;
        jitter = 1_000;
      };
    breaker = { trip_after = 8; cooldown = 500_000 };
    heal_capacity = 4;
    heal_refill = 50_000;
    heal_interval = 20_000;
  }

(* ------------------------------------------------------------------ *)
(* Retry classification                                                *)
(* ------------------------------------------------------------------ *)

(** Only contained faults are worth a second try: chaos-injected tag /
    PAC / bounds damage, a blown watchdog, or a host hiccup might not
    recur on a pristine snapshot. [Unreachable], [Guest_trap] and
    [Stack] are the guest's own deterministic bugs — the retry would
    crash identically. [Quarantine] is a serving-layer bookkeeping
    error, not a fault. *)
let retryable (cls : Cage.Supervisor.fault_class) =
  match cls with
  | Cage.Supervisor.Tag_fault | Cage.Supervisor.Deferred_tag_fault
  | Cage.Supervisor.Pac_auth | Cage.Supervisor.Bounds
  | Cage.Supervisor.Fuel | Cage.Supervisor.Host_error ->
      true
  | Cage.Supervisor.Stack | Cage.Supervisor.Unreachable
  | Cage.Supervisor.Guest_trap | Cage.Supervisor.Quarantine ->
      false

(** Backoff before retry [attempt] (1-based: the delay preceding the
    second try is [attempt = 1]). Exponential, capped, jittered from
    the caller's dedicated retry PRNG so backoff randomness never
    perturbs chaos or arrival streams. *)
let backoff r rng ~attempt =
  let rec exp_delay a d =
    if a <= 1 || d >= r.backoff_cap then d
    else exp_delay (a - 1) (d * r.backoff_factor)
  in
  let d = min r.backoff_cap (exp_delay attempt r.backoff_base) in
  d + if r.jitter > 0 then Random.State.int rng r.jitter else 0

(* ------------------------------------------------------------------ *)
(* Circuit breaker                                                     *)
(* ------------------------------------------------------------------ *)

type breaker_state =
  | Closed
  | Open of int   (** shedding until this cycle, then half-open probe *)
  | Half_open     (** one probe in flight decides close vs re-open *)

type breaker = {
  cfg : breaker_cfg;
  label : string;              (* tenant name, for span instants *)
  mutable state : breaker_state;
  mutable consecutive : int;   (* crash run length while closed *)
  mutable trips : int;
}

let breaker_create ?(label = "") cfg =
  { cfg; label; state = Closed; consecutive = 0; trips = 0 }

let breaker_trips b = b.trips

(* Breaker transitions land on the shared runtime span track — they
   are tenant-scoped control-plane events, not per-request ones. *)
let breaker_span b name =
  if Obs.Span.enabled () then
    Obs.Span.instant ~tid:Obs.Span.runtime_tid
      ~args:[ ("tenant", Obs.Span.S b.label) ]
      name

let breaker_state b ~now =
  (match b.state with
  | Open until when now >= until ->
      b.state <- Half_open;
      breaker_span b "breaker.half-open"
  | _ -> ());
  b.state

(** May a request for this tenant enter the system at [now]?
    Half-open admits (the probe); open sheds. *)
let breaker_admits b ~now =
  match breaker_state b ~now with Closed | Half_open -> true | Open _ -> false

let breaker_success b =
  if b.state <> Closed then breaker_span b "breaker.close";
  b.consecutive <- 0;
  b.state <- Closed

(** Record a crash; returns [true] when this crash trips the breaker
    open (callers emit the trip event / metric exactly once). *)
let breaker_crash b ~now =
  match b.state with
  | Half_open ->
      (* the probe failed: straight back to open, counted as a trip *)
      b.trips <- b.trips + 1;
      b.consecutive <- 0;
      b.state <- Open (now + b.cfg.cooldown);
      breaker_span b "breaker.trip";
      true
  | Open _ -> false
  | Closed ->
      b.consecutive <- b.consecutive + 1;
      if b.consecutive >= b.cfg.trip_after then begin
        b.trips <- b.trips + 1;
        b.consecutive <- 0;
        b.state <- Open (now + b.cfg.cooldown);
        breaker_span b "breaker.trip";
        true
      end
      else false

(* ------------------------------------------------------------------ *)
(* Restart-storm rate limiting                                         *)
(* ------------------------------------------------------------------ *)

(** Token bucket on the simulated clock: self-healing spends one token
    per slot restart, so a tenant crashing every request cannot turn
    the pool into a restart treadmill — heals beyond the budget wait
    for refill, and the slot stays quarantined (capacity degrades
    gracefully instead of thrashing). *)
type bucket = {
  capacity : int;
  refill_every : int;        (* cycles per restored token *)
  mutable tokens : int;
  mutable last_refill : int; (* cycle of the last refill accounting *)
}

let bucket_create ~capacity ~refill_every =
  { capacity; refill_every; tokens = capacity; last_refill = 0 }

let bucket_take b ~now =
  if b.refill_every > 0 && now > b.last_refill then begin
    let gained = (now - b.last_refill) / b.refill_every in
    if gained > 0 then begin
      b.tokens <- min b.capacity (b.tokens + gained);
      b.last_refill <- b.last_refill + (gained * b.refill_every)
    end
  end;
  if b.tokens > 0 then (b.tokens <- b.tokens - 1; true) else false
