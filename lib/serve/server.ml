(** The multi-tenant serving runtime.

    Wires the pieces together: per-tenant {!Pool}s (snapshot-restored
    containment slots), the fuel-sliced {!Scheduler} (quantum
    round-robin over simulated cores), and the {!Policy} layer
    (admission control, bounded retry with backoff, circuit breaker,
    rate-limited self-healing) — all driven by one deterministic
    discrete-event loop on the simulated cycle clock.

    {b Execution model.} The interpreter is run-to-completion, so a
    request's guest code actually executes at dispatch time; the
    measured demand (executed ops + modeled restore cost + a flat
    dispatch overhead) is then replayed through the scheduler as
    quantum slices, which is where queueing delay, multiplexing and
    completion times come from. Per-slot chaos lanes make the fault
    streams independent of this ordering, so chaos-on runs replay
    identically however requests interleave.

    {b Escape semantics.} A request that [Finished] with a result
    different from the tenant's chaos-free reference is an ESCAPE —
    corrupted bytes reached the client — terminal, never retried. A
    request that finished {e correctly} while injections hit its lane
    is counted [sanitized]: whatever latent damage the injection left
    dies with the per-request restore and never crosses a request
    boundary. Crashes are contained by the supervisor and eligible for
    retry only when the fault class is a contained/transient one
    ({!Policy.retryable}); definite guest bugs fail fast.

    {b Accounting invariant.} Every logical request terminates exactly
    once: [ok + failed + shed = requests], per tenant and in total.
    [escaped] is a subset of [failed]; [sanitized] a subset of [ok];
    retries/timeouts/crashes count events, not requests.

    {b Observability.} Purely additive measurement on the same event
    loop: with an {!Obs.Span} recorder installed, every request is
    emitted as a stitched causal chain (admission instant, queue wait,
    restore, execution slices on core tracks, retries linked by flow
    arrows); with a {!Slo.collector} passed in, every terminated
    request feeds per-tenant SLO monitors and carries an exact phase
    decomposition of its latency ([queue + restore + exec + retry +
    drain = latency], with exec phases reconciling against the pool
    meters). Neither adds modeled cycles, consumes randomness, or
    perturbs event order: reports are bit-identical with or without
    them. *)

type config = {
  cores : int;          (** simulated cores multiplexing requests *)
  quantum : int;        (** fuel slice per dispatch, cycles *)
  requests : int;       (** logical requests across all tenants *)
  slots : int;          (** pool slots per tenant *)
  pool_fuel : int;      (** per-invocation watchdog budget *)
  arrival_gap : int;    (** mean inter-arrival gap, cycles *)
  seed : int;
  policy : Policy.t;
}

let default_config =
  {
    cores = 4;
    quantum = 20_000;
    requests = 10_000;
    slots = 4;
    pool_fuel = 2_000_000;
    arrival_gap = 8_000;
    seed = 42;
    policy = Policy.default;
  }

(* Flat per-dispatch overhead: context switch + scheduling, cycles. *)
let dispatch_overhead = 200

type tenant_stats = {
  ts_name : string;
  mutable ts_requests : int;      (* logical arrivals *)
  mutable ts_ok : int;
  mutable ts_sanitized : int;     (* ok despite injections on the lane *)
  mutable ts_escaped : int;       (* finished wrong: subset of failed *)
  mutable ts_failed : int;
  mutable ts_shed_queue : int;
  mutable ts_shed_breaker : int;
  mutable ts_crashes : int;       (* crash events (attempts) *)
  mutable ts_retries : int;
  mutable ts_timeouts : int;      (* deadline-miss events *)
  mutable ts_breaker_trips : int;
  mutable ts_latencies : int list;  (* end-to-end, successful only *)
}

type tenant_report = {
  tr_name : string;
  tr_requests : int;
  tr_ok : int;
  tr_sanitized : int;
  tr_escaped : int;
  tr_failed : int;
  tr_shed : int;
  tr_crashes : int;
  tr_retries : int;
  tr_timeouts : int;
  tr_breaker_trips : int;
  tr_p50 : int;
  tr_p99 : int;
  tr_p50_exact : int;   (** nearest-rank on the full latency sample *)
  tr_p99_exact : int;
}

type report = {
  rp_requests : int;
  rp_ok : int;
  rp_sanitized : int;
  rp_escaped : int;
  rp_failed : int;
  rp_shed : int;
  rp_crashes : int;
  rp_retries : int;
  rp_timeouts : int;
  rp_breaker_trips : int;
  rp_restores : int;
  rp_heals : int;
  rp_heals_deferred : int;
  rp_injections : int;
  rp_makespan : int;             (** simulated cycles start→last event *)
  rp_p50 : int;
  rp_p99 : int;
  rp_p50_exact : int;
  rp_p99_exact : int;
  rp_max_ready : int;            (** run-queue high-water mark *)
  rp_served_cycles : int;        (** metered guest cycles, all pools *)
  rp_tenants : tenant_report list;
}

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0
  | n ->
      let i = min (n - 1) (p * n / 100) in
      sorted.(i)

let tenant_report (s : tenant_stats) =
  let lat = Array.of_list s.ts_latencies in
  Array.sort compare lat;
  {
    tr_name = s.ts_name;
    tr_requests = s.ts_requests;
    tr_ok = s.ts_ok;
    tr_sanitized = s.ts_sanitized;
    tr_escaped = s.ts_escaped;
    tr_failed = s.ts_failed;
    tr_shed = s.ts_shed_queue + s.ts_shed_breaker;
    tr_crashes = s.ts_crashes;
    tr_retries = s.ts_retries;
    tr_timeouts = s.ts_timeouts;
    tr_breaker_trips = s.ts_breaker_trips;
    tr_p50 = percentile lat 50;
    tr_p99 = percentile lat 99;
    tr_p50_exact = Slo.percentile_exact lat 50.0;
    tr_p99_exact = Slo.percentile_exact lat 99.0;
  }

(* ------------------------------------------------------------------ *)
(* The event loop                                                      *)
(* ------------------------------------------------------------------ *)

type req = {
  rq_id : int;                       (* arrival ordinal, stable across retries *)
  rq_tenant : int;
  rq_first_arrival : int;
  mutable rq_attempt : int;          (* 1-based *)
  mutable rq_attempt_arrival : int;
  (* Phase accounting on the DES clock. For an ok request,
     queue + restore + exec + retry + drain = end-to-end latency
     exactly: every cycle between first arrival and termination lands
     in one phase. *)
  mutable rq_queue : int;        (* slot waits, all attempts *)
  mutable rq_restore : int;      (* modeled restore, accepted attempt *)
  mutable rq_exec : int;         (* metered demand, accepted attempt *)
  mutable rq_exec_waste : int;   (* metered demand, discarded attempts *)
  mutable rq_retry : int;        (* backoff waits + discarded residence *)
  mutable rq_drain : int;        (* dispatch overhead + preemption gaps *)
  mutable rq_injections : int;   (* chaos injections across attempts *)
  mutable rq_flow : bool;        (* span flow chain opened *)
}

type running = {
  rn_req : req;
  rn_tenant : int;
  rn_slot : Pool.slot;
  rn_outcome : Cage.Supervisor.outcome;
  rn_injections : int;   (* chaos injections on the slot's lane *)
  rn_start : int;        (* service start (dispatch) time *)
  rn_demand : int;       (* metered guest demand of this attempt *)
  rn_restore : int;      (* modeled restore cycles of this attempt *)
}

type ev =
  | Arrival of req
  | Slice of running Scheduler.slice
  | Heal

type tstate = {
  pool : Pool.t;
  waiting : req Queue.t;
  breaker : Policy.breaker;
  stats : tenant_stats;
}

let values_equal a b =
  List.length a = List.length b && List.for_all2 Wasm.Values.equal a b

(** Serve [config.requests] simulated requests across [tenants],
    optionally under a live chaos engine ([chaos]) and optionally
    feeding per-request records into an SLO [collect]or. Pools are
    built — and their pristine images frozen — {e before} the engine
    installs, so restores always return to fault-free state. The
    arrival schedule depends only on [config.seed], never on the chaos
    policy: chaos-off and chaos-on runs see identical offered load. *)
let run ?chaos ?collect config tenants =
  if tenants = [] then invalid_arg "Server.run: no tenants";
  let policy = config.policy in
  let ts =
    Array.of_list tenants
    |> Array.mapi (fun i tn ->
           {
             (* lanes [1000*(i+1), 1000*(i+1)+slots): globally unique
                per slot, disjoint from lane 0 defaults *)
             pool =
               Pool.create ~fuel:config.pool_fuel
                 ~lane_base:(1000 * (i + 1))
                 ~size:config.slots
                 ~seed:((config.seed * 31) + i)
                 ~policy tn;
             waiting = Queue.create ();
             breaker =
               Policy.breaker_create ~label:tn.Pool.tn_name
                 policy.Policy.breaker;
             stats =
               {
                 ts_name = tn.Pool.tn_name;
                 ts_requests = 0;
                 ts_ok = 0;
                 ts_sanitized = 0;
                 ts_escaped = 0;
                 ts_failed = 0;
                 ts_shed_queue = 0;
                 ts_shed_breaker = 0;
                 ts_crashes = 0;
                 ts_retries = 0;
                 ts_timeouts = 0;
                 ts_breaker_trips = 0;
                 ts_latencies = [];
               };
           })
  in
  (* Name the span tracks up front so core and tenant lanes render
     labelled even if the run records nothing else. *)
  if Obs.Span.enabled () then begin
    Obs.Span.set_track ~tid:Obs.Span.runtime_tid "runtime";
    for c = 0 to config.cores - 1 do
      Obs.Span.set_track ~tid:(Scheduler.core_tid c)
        (Printf.sprintf "core %d" c)
    done;
    Array.iteri
      (fun j st ->
        Obs.Span.set_track ~tid:(Obs.Span.tenant_tid j)
          (Printf.sprintf "tenant %s" st.stats.ts_name))
      ts
  end;
  let events = Scheduler.Heap.create () in
  let cpu = Scheduler.create ~cores:config.cores ~quantum:config.quantum in
  (* Arrival and retry randomness ride dedicated streams: neither can
     perturb (or be perturbed by) the chaos engine's per-lane draws. *)
  let arrival_rng = Random.State.make [| config.seed; 17 |] in
  let retry_rng = Random.State.make [| config.seed; 23 |] in
  let total_weight =
    Array.fold_left (fun n st -> n + st.pool.Pool.pl_tenant.Pool.tn_weight) 0 ts
  in
  let pick_tenant () =
    let r = ref (Random.State.int arrival_rng total_weight) in
    let j = ref 0 in
    while !r >= ts.(!j).pool.Pool.pl_tenant.Pool.tn_weight do
      r := !r - ts.(!j).pool.Pool.pl_tenant.Pool.tn_weight;
      incr j
    done;
    !j
  in
  let t = ref 0 in
  for i = 1 to config.requests do
    t := !t + 1 + Random.State.int arrival_rng (2 * config.arrival_gap);
    let j = pick_tenant () in
    Scheduler.Heap.push events ~time:!t
      (Arrival
         {
           rq_id = i - 1;
           rq_tenant = j;
           rq_first_arrival = !t;
           rq_attempt = 1;
           rq_attempt_arrival = !t;
           rq_queue = 0;
           rq_restore = 0;
           rq_exec = 0;
           rq_exec_waste = 0;
           rq_retry = 0;
           rq_drain = 0;
           rq_injections = 0;
           rq_flow = false;
         })
  done;
  Scheduler.Heap.push events ~time:policy.Policy.heal_interval Heal;
  let pending = ref config.requests in
  let makespan = ref 0 in
  let total_injections = ref 0 in
  let lane_injections lane =
    match Arch.Fault_inject.active () with
    | Some e -> Arch.Fault_inject.lane_count e lane
    | None -> 0
  in
  let tenant_tid j = Obs.Span.tenant_tid j in
  (* Continue (or open) a request's flow chain at the slice that starts
     at [ts] on [tid] — the stitching across queue waits, cores and
     retries. *)
  let flow_touch r ~tid ~ts name =
    if Obs.Span.enabled () then begin
      if r.rq_flow then Obs.Span.flow_step ~id:r.rq_id ~tid ~ts name
      else begin
        r.rq_flow <- true;
        Obs.Span.flow_start ~id:r.rq_id ~tid ~ts name
      end
    end
  in
  (* Feed one terminated request into the collector: SLO sample, phase
     record, and — when chaos hit it — the fault→request correlation
     entry. *)
  let observe (st : tstate) r ~now ~ok ~latency =
    match collect with
    | None -> ()
    | Some co ->
        Slo.sample co ~tenant:st.stats.ts_name ~now ~ok ~latency;
        Slo.record co
          {
            Slo.rr_id = r.rq_id;
            rr_tenant = st.stats.ts_name;
            rr_ok = ok;
            rr_latency = latency;
            rr_attempts = r.rq_attempt;
            rr_injections = r.rq_injections;
            rr_queue = r.rq_queue;
            rr_restore = r.rq_restore;
            rr_exec = r.rq_exec;
            rr_exec_waste = r.rq_exec_waste;
            rr_retry = r.rq_retry;
            rr_drain = r.rq_drain;
          };
        if r.rq_injections > 0 then
          match Arch.Fault_inject.active () with
          | None -> ()
          | Some e ->
              let injs = Arch.Fault_inject.request_injections e r.rq_id in
              let lane =
                match injs with
                | i :: _ -> i.Arch.Fault_inject.inj_lane
                | [] -> -1
              in
              Slo.hit co
                {
                  Slo.ht_request = r.rq_id;
                  ht_tenant = st.stats.ts_name;
                  ht_lane = lane;
                  ht_sites =
                    List.map
                      (fun i ->
                        Arch.Fault_inject.site_to_string
                          i.Arch.Fault_inject.inj_site)
                      injs;
                  ht_attempts = r.rq_attempt;
                  ht_contained = ok;
                  ht_cost = r.rq_retry;
                }
  in
  (* Close a request's span envelope: terminal instant, flow end, async
     end — the request disappears from its tenant track here. *)
  let span_terminal r ~now name =
    if Obs.Span.enabled () then begin
      let tid = tenant_tid r.rq_tenant in
      Obs.Span.instant ~tid ~ts:now
        ~args:[ ("req", Obs.Span.I r.rq_id) ]
        name;
      if r.rq_flow then Obs.Span.flow_end ~id:r.rq_id ~tid ~ts:now name;
      Obs.Span.async_end ~id:r.rq_id ~tid ~ts:now "request"
    end
  in
  let terminal () = decr pending in
  let finish_fail (st : tstate) r ~now =
    st.stats.ts_failed <- st.stats.ts_failed + 1;
    span_terminal r ~now "fail";
    observe st r ~now ~ok:false ~latency:(-1);
    terminal ()
  in
  let retry_or_fail (st : tstate) r ~retryable ~now =
    if retryable && r.rq_attempt < policy.Policy.retry.Policy.max_attempts
    then begin
      let attempt = r.rq_attempt in
      r.rq_attempt <- r.rq_attempt + 1;
      st.stats.ts_retries <- st.stats.ts_retries + 1;
      if Obs.Hook.enabled () then
        Obs.Hook.event
          (Obs.Event.Request_retry
             { tenant = st.stats.ts_name; attempt = r.rq_attempt });
      let delay = Policy.backoff policy.Policy.retry retry_rng ~attempt in
      (* The backoff wait is retry-phase latency by definition. *)
      r.rq_retry <- r.rq_retry + delay;
      if Obs.Span.enabled () then begin
        let tid = tenant_tid r.rq_tenant in
        Obs.Span.instant ~tid ~ts:now
          ~args:
            [ ("req", Obs.Span.I r.rq_id);
              ("attempt", Obs.Span.I r.rq_attempt) ]
          "retry";
        Obs.Span.complete
          ~args:[ ("req", Obs.Span.I r.rq_id) ]
          ~tid ~start:now ~stop:(now + delay) "backoff"
      end;
      Scheduler.Heap.push events ~time:(now + delay) (Arrival r)
    end
    else finish_fail st r ~now
  in
  let shed (st : tstate) r ~now reason =
    (match reason with
    | `Queue -> st.stats.ts_shed_queue <- st.stats.ts_shed_queue + 1
    | `Breaker -> st.stats.ts_shed_breaker <- st.stats.ts_shed_breaker + 1);
    if Obs.Hook.enabled () then
      Obs.Hook.event
        (Obs.Event.Request_shed
           {
             tenant = st.stats.ts_name;
             reason = (match reason with `Queue -> "queue" | `Breaker -> "breaker");
           });
    span_terminal r ~now
      (match reason with `Queue -> "shed-queue" | `Breaker -> "shed-breaker");
    observe st r ~now ~ok:false ~latency:(-1);
    terminal ()
  in
  let dispatch_all now =
    let continue = ref true in
    while !continue do
      match Scheduler.dispatch cpu ~now with
      | Some s -> Scheduler.Heap.push events ~time:s.Scheduler.s_end (Slice s)
      | None -> continue := false
    done
  in
  (* Pull waiting requests onto idle slots. The guest executes here
     (run-to-completion); the measured demand is replayed as slices. *)
  let rec try_start j ~now =
    let st = ts.(j) in
    if not (Queue.is_empty st.waiting) then
      match Pool.acquire st.pool with
      | None -> ()
      | Some slot ->
          let r = Queue.pop st.waiting in
          (* The slot wait is queue-phase latency whether the request
             goes on to run or dies of old age right here. *)
          let waited = now - r.rq_attempt_arrival in
          r.rq_queue <- r.rq_queue + waited;
          if Obs.Span.enabled () then begin
            let tid = tenant_tid j in
            Obs.Span.complete
              ~args:
                [ ("req", Obs.Span.I r.rq_id);
                  ("attempt", Obs.Span.I r.rq_attempt) ]
              ~tid ~start:r.rq_attempt_arrival ~stop:now "queue";
            flow_touch r ~tid ~ts:r.rq_attempt_arrival "queue"
          end;
          if waited > policy.Policy.deadline then begin
            (* expired while queued: the slot goes back untouched *)
            Pool.cancel slot;
            st.stats.ts_timeouts <- st.stats.ts_timeouts + 1;
            if Obs.Span.enabled () then
              Obs.Span.instant ~tid:(tenant_tid j) ~ts:now
                ~args:[ ("req", Obs.Span.I r.rq_id) ]
                "timeout-queued";
            retry_or_fail st r ~retryable:true ~now;
            try_start j ~now
          end
          else begin
            let before = lane_injections slot.Pool.sl_lane in
            Arch.Fault_inject.set_request r.rq_id;
            let outcome, exec_demand = Pool.serve st.pool slot in
            Arch.Fault_inject.set_request (-1);
            let inj = lane_injections slot.Pool.sl_lane - before in
            total_injections := !total_injections + inj;
            r.rq_injections <- r.rq_injections + inj;
            let restore = Snapshot.restore_cycles slot.Pool.sl_snapshot in
            let demand = exec_demand + restore + dispatch_overhead in
            let span =
              if Obs.Span.enabled () then begin
                let tid = tenant_tid j in
                Obs.Span.complete
                  ~args:[ ("req", Obs.Span.I r.rq_id) ]
                  ~tid ~start:now ~stop:(now + restore) "restore";
                Some (st.stats.ts_name, r.rq_id)
              end
              else None
            in
            Scheduler.submit ?span cpu
              {
                rn_req = r;
                rn_tenant = j;
                rn_slot = slot;
                rn_outcome = outcome;
                rn_injections = inj;
                rn_start = now;
                rn_demand = exec_demand;
                rn_restore = restore;
              }
              ~demand;
            dispatch_all now;
            try_start j ~now
          end
  in
  let complete (rn : running) ~now =
    let st = ts.(rn.rn_tenant) in
    let r = rn.rn_req in
    let residence = now - rn.rn_start in
    (* An attempt whose result is discarded (late, wrong, crashed)
       charges its whole residence to the retry phase and its metered
       demand to waste; only the accepted attempt splits residence
       into restore + exec + drain. *)
    let discard_attempt () =
      r.rq_retry <- r.rq_retry + residence;
      r.rq_exec_waste <- r.rq_exec_waste + rn.rn_demand
    in
    (match rn.rn_outcome with
    | Cage.Supervisor.Finished vs ->
        Pool.settle_ok rn.rn_slot;
        if now - r.rq_attempt_arrival > policy.Policy.deadline then begin
          st.stats.ts_timeouts <- st.stats.ts_timeouts + 1;
          discard_attempt ();
          if Obs.Span.enabled () then
            Obs.Span.instant ~tid:(tenant_tid rn.rn_tenant) ~ts:now
              ~args:[ ("req", Obs.Span.I r.rq_id) ]
              "timeout";
          retry_or_fail st r ~retryable:true ~now
        end
        else begin
          let correct =
            match st.pool.Pool.pl_tenant.Pool.tn_expected with
            | Some e -> values_equal vs e
            | None -> true
          in
          if correct then begin
            if rn.rn_injections > 0 then
              st.stats.ts_sanitized <- st.stats.ts_sanitized + 1;
            st.stats.ts_ok <- st.stats.ts_ok + 1;
            let latency = now - r.rq_first_arrival in
            st.stats.ts_latencies <- latency :: st.stats.ts_latencies;
            r.rq_restore <- rn.rn_restore;
            r.rq_exec <- rn.rn_demand;
            r.rq_drain <- residence - rn.rn_demand - rn.rn_restore;
            Policy.breaker_success st.breaker;
            span_terminal r ~now "done";
            observe st r ~now ~ok:true ~latency;
            terminal ()
          end
          else begin
            (* corrupted result reached the client: the one outcome
               the whole stack exists to prevent — terminal, never
               retried, gated to zero by CI *)
            st.stats.ts_escaped <- st.stats.ts_escaped + 1;
            discard_attempt ();
            finish_fail st r ~now
          end
        end
    | Cage.Supervisor.Crashed pm ->
        Pool.settle_crashed rn.rn_slot;
        st.stats.ts_crashes <- st.stats.ts_crashes + 1;
        discard_attempt ();
        if Obs.Span.enabled () then
          Obs.Span.instant ~tid:(tenant_tid rn.rn_tenant) ~ts:now
            ~args:
              [ ("req", Obs.Span.I r.rq_id);
                ("class",
                 Obs.Span.S
                   (Cage.Supervisor.fault_class_to_string
                      pm.Cage.Supervisor.pm_class)) ]
            "crash";
        if Policy.breaker_crash st.breaker ~now then begin
          st.stats.ts_breaker_trips <- st.stats.ts_breaker_trips + 1;
          if Obs.Hook.enabled () then
            Obs.Hook.event
              (Obs.Event.Breaker_trip { tenant = st.stats.ts_name })
        end;
        retry_or_fail st r
          ~retryable:(Policy.retryable pm.Cage.Supervisor.pm_class)
          ~now);
    try_start rn.rn_tenant ~now
  in
  let loop () =
    let continue = ref true in
    while !continue do
      match Scheduler.Heap.pop events with
      | None -> continue := false
      | Some (now, ev) -> (
          makespan := max !makespan now;
          Obs.Span.set_now now;
          match ev with
          | Arrival r ->
              let st = ts.(r.rq_tenant) in
              if r.rq_attempt = 1 then begin
                st.stats.ts_requests <- st.stats.ts_requests + 1;
                if Obs.Span.enabled () then begin
                  let tid = tenant_tid r.rq_tenant in
                  Obs.Span.async_begin ~id:r.rq_id ~tid ~ts:now
                    ~args:[ ("tenant", Obs.Span.S st.stats.ts_name) ]
                    "request";
                  Obs.Span.instant ~tid ~ts:now
                    ~args:[ ("req", Obs.Span.I r.rq_id) ]
                    "admit"
                end
              end;
              r.rq_attempt_arrival <- now;
              if not (Policy.breaker_admits st.breaker ~now) then
                shed st r ~now `Breaker
              else if Queue.length st.waiting >= policy.Policy.queue_bound
              then shed st r ~now `Queue
              else begin
                Queue.push r st.waiting;
                if Obs.Hook.enabled () then
                  Obs.Hook.queue_depth (Queue.length st.waiting);
                try_start r.rq_tenant ~now
              end
          | Slice s -> (
              match Scheduler.slice_done cpu s with
              | Some rn -> complete rn ~now
              | None -> dispatch_all now)
          | Heal ->
              if !pending > 0 then begin
                Array.iteri
                  (fun j st ->
                    if Pool.heal st.pool ~now > 0 then try_start j ~now)
                  ts;
                Scheduler.Heap.push events
                  ~time:(now + policy.Policy.heal_interval)
                  Heal
              end)
    done
  in
  (match chaos with
  | Some pol -> Arch.Fault_inject.with_engine (Arch.Fault_inject.create pol) loop
  | None -> loop ());
  let reports = Array.to_list (Array.map (fun st -> tenant_report st.stats) ts) in
  let sum f = List.fold_left (fun n tr -> n + f tr) 0 reports in
  let all_lat =
    Array.of_list
      (Array.fold_left (fun acc st -> st.stats.ts_latencies @ acc) [] ts)
  in
  Array.sort compare all_lat;
  {
    rp_requests = sum (fun tr -> tr.tr_requests);
    rp_ok = sum (fun tr -> tr.tr_ok);
    rp_sanitized = sum (fun tr -> tr.tr_sanitized);
    rp_escaped = sum (fun tr -> tr.tr_escaped);
    rp_failed = sum (fun tr -> tr.tr_failed);
    rp_shed = sum (fun tr -> tr.tr_shed);
    rp_crashes = sum (fun tr -> tr.tr_crashes);
    rp_retries = sum (fun tr -> tr.tr_retries);
    rp_timeouts = sum (fun tr -> tr.tr_timeouts);
    rp_breaker_trips = sum (fun tr -> tr.tr_breaker_trips);
    rp_restores = Array.fold_left (fun n st -> n + Pool.restores st.pool) 0 ts;
    rp_heals = Array.fold_left (fun n st -> n + Pool.heals st.pool) 0 ts;
    rp_heals_deferred =
      Array.fold_left (fun n st -> n + Pool.heals_deferred st.pool) 0 ts;
    rp_injections = !total_injections;
    rp_makespan = !makespan;
    rp_p50 = percentile all_lat 50;
    rp_p99 = percentile all_lat 99;
    rp_p50_exact = Slo.percentile_exact all_lat 50.0;
    rp_p99_exact = Slo.percentile_exact all_lat 99.0;
    rp_max_ready = Scheduler.max_ready cpu;
    rp_served_cycles =
      Array.fold_left (fun n st -> n + Pool.served_cycles st.pool) 0 ts;
    rp_tenants = reports;
  }

(** Find a tenant's report by name. *)
let tenant_of report name =
  List.find_opt (fun tr -> String.equal tr.tr_name name) report.rp_tenants
