(** Discrete-event, fuel-sliced cooperative scheduling.

    The interpreter is run-to-completion, so the server measures each
    request's true service demand (executed ops + restore cost) at
    dispatch and then {e replays} that demand here as quantum-sized
    fuel slices multiplexed round-robin over a fixed number of
    simulated cores. Queueing delay, slice interleaving and completion
    times all fall out of the discrete-event simulation, deterministic
    by construction: the event heap breaks time ties by insertion
    sequence, never by anything scheduling-dependent.

    Two pieces: {!Heap}, a plain binary min-heap of timestamped
    events, and the core multiplexer below it. *)

module Heap = struct
  type 'a t = {
    mutable arr : (int * int * 'a) option array;  (* time, seq, payload *)
    mutable size : int;
    mutable seq : int;
  }

  let create () = { arr = Array.make 1024 None; size = 0; seq = 0 }
  let size t = t.size
  let is_empty t = t.size = 0

  let get t i =
    match t.arr.(i) with Some e -> e | None -> assert false

  (* (time, seq) lexicographic: ties in time resolve by insertion
     order, which is what makes the whole simulation replayable. *)
  let before (t1, s1, _) (t2, s2, _) = t1 < t2 || (t1 = t2 && s1 < s2)

  let push t ~time v =
    if t.size = Array.length t.arr then begin
      let bigger = Array.make (2 * t.size) None in
      Array.blit t.arr 0 bigger 0 t.size;
      t.arr <- bigger
    end;
    let e = (time, t.seq, v) in
    t.seq <- t.seq + 1;
    let i = ref t.size in
    t.size <- t.size + 1;
    t.arr.(!i) <- Some e;
    (* sift up *)
    while !i > 0 && before e (get t ((!i - 1) / 2)) do
      let p = (!i - 1) / 2 in
      t.arr.(!i) <- t.arr.(p);
      t.arr.(p) <- Some e;
      i := p
    done

  let pop t =
    if t.size = 0 then None
    else begin
      let (time, _, v) = get t 0 in
      t.size <- t.size - 1;
      let last = get t t.size in
      t.arr.(t.size) <- None;
      if t.size > 0 then begin
        t.arr.(0) <- Some last;
        (* sift down *)
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < t.size && before (get t l) (get t !smallest) then
            smallest := l;
          if r < t.size && before (get t r) (get t !smallest) then
            smallest := r;
          if !smallest <> !i then begin
            let tmp = t.arr.(!i) in
            t.arr.(!i) <- t.arr.(!smallest);
            t.arr.(!smallest) <- tmp;
            i := !smallest
          end
          else continue := false
        done
      end;
      Some (time, v)
    end
end

(* ------------------------------------------------------------------ *)
(* Fuel-sliced core multiplexer                                        *)
(* ------------------------------------------------------------------ *)

type 'a job = {
  jb_payload : 'a;
  jb_demand : int;             (** total service demand, cycles *)
  jb_span : (string * int) option;
      (** request-span context: label + flow id — each finished slice
          is emitted on its core's track and threaded onto the
          request's flow chain (see {!Obs.Span}) *)
  mutable jb_remaining : int;  (** demand not yet executed *)
  mutable jb_slices : int;     (** slices taken so far *)
}

type 'a slice = {
  s_job : 'a job;
  s_core : int;   (** simulated core the slice ran on *)
  s_start : int;  (** simulated start time of this slice *)
  s_end : int;    (** simulated completion time of this slice *)
}

type 'a t = {
  cores : int;
  quantum : int;               (** max cycles per slice *)
  ready : 'a job Queue.t;      (** round-robin run queue *)
  core_busy : bool array;      (** per-core mid-slice flags *)
  mutable busy : int;          (** cores currently mid-slice *)
  mutable max_ready : int;     (** high-water mark, for stats *)
}

(* Chrome track id for a simulated core (tid 0 is reserved for
   process-scoped instants). *)
let core_tid c = c + 1

let create ~cores ~quantum =
  if cores < 1 then invalid_arg "Scheduler.create: cores must be >= 1";
  if quantum < 1 then invalid_arg "Scheduler.create: quantum must be >= 1";
  { cores; quantum; ready = Queue.create ();
    core_busy = Array.make cores false; busy = 0; max_ready = 0 }

let max_ready t = t.max_ready
let in_flight t = t.busy + Queue.length t.ready

(** Enqueue a request whose measured demand is [demand] cycles.
    [span] carries the request's trace context, if any. *)
let submit ?span t payload ~demand =
  Queue.push
    { jb_payload = payload; jb_demand = max 1 demand; jb_span = span;
      jb_remaining = max 1 demand; jb_slices = 0 }
    t.ready;
  let d = Queue.length t.ready in
  if d > t.max_ready then t.max_ready <- d

(** If a core is idle and a job is ready, start the next slice: the
    job runs for [min quantum remaining] cycles on the lowest-numbered
    free core (deterministic core assignment). Callers schedule the
    returned slice's [s_end] on the event heap and call {!slice_done}
    when it fires. [None] when every core is busy or nothing is
    ready. *)
let dispatch t ~now =
  if t.busy >= t.cores || Queue.is_empty t.ready then None
  else begin
    let core = ref 0 in
    while t.core_busy.(!core) do incr core done;
    let job = Queue.pop t.ready in
    let run = min t.quantum job.jb_remaining in
    job.jb_remaining <- job.jb_remaining - run;
    job.jb_slices <- job.jb_slices + 1;
    t.core_busy.(!core) <- true;
    t.busy <- t.busy + 1;
    Some { s_job = job; s_core = !core; s_start = now; s_end = now + run }
  end

(** A slice's end event fired: the core frees up; a finished job's
    payload is returned, an unfinished job goes to the back of the
    round-robin queue. With a span recorder installed, the slice is
    emitted as a Complete span on its core's track and stitched onto
    the owning request's flow chain — this is what reassembles one
    request's quanta, scattered over cores, into a single causal
    trace. *)
let slice_done t s =
  t.core_busy.(s.s_core) <- false;
  t.busy <- t.busy - 1;
  (match s.s_job.jb_span with
  | Some (label, id) when Obs.Span.enabled () ->
      let tid = core_tid s.s_core in
      Obs.Span.complete
        ~args:[ ("req", Obs.Span.I id); ("slice", Obs.Span.I s.s_job.jb_slices) ]
        ~tid ~start:s.s_start ~stop:s.s_end label;
      Obs.Span.flow_step ~id ~tid ~ts:s.s_start label
  | _ -> ());
  if s.s_job.jb_remaining = 0 then Some s.s_job.jb_payload
  else begin
    Queue.push s.s_job t.ready;
    None
  end
