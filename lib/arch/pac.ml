type key = { k0 : int64; k1 : int64 }

let key_of_int64s k0 k1 = { k0; k1 }
let random_key ~rng = { k0 = rng (); k1 = rng () }
let key_equal a b = Int64.equal a.k0 b.k0 && Int64.equal a.k1 b.k1

(* A SipHash-flavoured ARX round: not QARMA, but a keyed mixing function
   with full 64-bit diffusion, which is all the security argument needs. *)
let rotl x n = Int64.logor (Int64.shift_left x n) (Int64.shift_right_logical x (64 - n))

let mix v =
  let v = Int64.mul v 0xff51afd7ed558ccdL in
  let v = Int64.logxor v (Int64.shift_right_logical v 33) in
  let v = Int64.mul v 0xc4ceb9fe1a85ec53L in
  Int64.logxor v (Int64.shift_right_logical v 29)

let mac key ~modifier value =
  let v0 = Int64.logxor key.k0 0x736f6d6570736575L in
  let v1 = Int64.logxor key.k1 0x646f72616e646f6dL in
  let h = Int64.logxor (mix (Int64.logxor v0 value)) (rotl v1 13) in
  let h = mix (Int64.logxor h modifier) in
  mix (Int64.add h (rotl v0 32))

type config = { layout : Ptr.pac_layout; fpac : bool }

let default_config = { layout = { Ptr.mte_enabled = true }; fpac = true }

let canonical cfg p = Ptr.clear_pac_field cfg.layout p

let signature cfg key ~modifier p =
  let bits = Ptr.pac_bits cfg.layout in
  let m = mac key ~modifier (canonical cfg p) in
  Int64.to_int (Int64.logand m (Int64.of_int ((1 lsl bits) - 1)))

let sign cfg key ~modifier p =
  let p = canonical cfg p in
  if Obs.Hook.enabled () then Obs.Hook.event (Obs.Event.Pac_sign { ptr = p });
  Ptr.with_pac_field cfg.layout p (signature cfg key ~modifier p)

type auth_result = Valid of Ptr.t | Invalid_trap | Invalid_poisoned of Ptr.t

(* Poison marker: flip the second-highest signature bit of the canonical
   pointer, mirroring the architected error-code placement. *)
let poison_bit cfg = Ptr.pac_bits cfg.layout - 2

let poison cfg p =
  Ptr.with_pac_field cfg.layout (canonical cfg p) (1 lsl poison_bit cfg)

let is_poisoned cfg p = Ptr.pac_field cfg.layout p = 1 lsl poison_bit cfg

let auth cfg key ~modifier p =
  (* Chaos hooks: corrupt the incoming signature just before the
     authenticate — a forged (bit-flipped) or stripped signature must
     be rejected exactly like any attacker-made pointer. *)
  let p =
    if Fault_inject.draw Fault_inject.Pac_forge then begin
      let bits = Ptr.pac_bits cfg.layout in
      let bit = Fault_inject.rand_int bits in
      Fault_inject.note "signature bit %d flipped before autda" bit;
      Ptr.with_pac_field cfg.layout p
        (Ptr.pac_field cfg.layout p lxor (1 lsl bit))
    end
    else p
  in
  let p =
    if Fault_inject.draw Fault_inject.Pac_strip then begin
      Fault_inject.note "signature stripped (xpacd) before autda";
      canonical cfg p
    end
    else p
  in
  let expect = signature cfg key ~modifier (canonical cfg p) in
  let ok = Ptr.pac_field cfg.layout p = expect in
  if Obs.Hook.enabled () then
    Obs.Hook.event (Obs.Event.Pac_auth { ptr = canonical cfg p; ok });
  if ok then Valid (canonical cfg p)
  else if cfg.fpac then Invalid_trap
  else Invalid_poisoned (poison cfg p)

let strip cfg p = canonical cfg p
