(** The MTE checking engine.

    Models the architected tag-check behaviour of loads and stores under
    the four MTE modes (paper §2.3): disabled, synchronous, asynchronous
    and asymmetric. Synchronous checks fault before the access takes
    effect; asynchronous checks merely accumulate into a TFSR-like fault
    flag that the kernel inspects at the next context switch, so the
    faulting access {e does} take effect. *)

type mode =
  | Disabled      (** No tag checks. *)
  | Sync          (** Both reads and writes trap immediately. *)
  | Async         (** Mismatches set a cumulative flag, access proceeds. *)
  | Asymmetric    (** Reads async, writes sync. *)

val mode_to_string : mode -> string
val pp_mode : Format.formatter -> mode -> unit

type access = Load | Store

type fault = {
  fault_addr : int64;      (** Faulting (untagged) address. *)
  fault_len : int64;
  ptr_tag : Tag.t;         (** Logical tag carried by the pointer. *)
  mem_tag : Tag.t option;  (** Allocation tag found (None if region spans
                               differing tags or is out of range). *)
  fault_access : access;
}

val pp_fault : Format.formatter -> fault -> unit

type t
(** An MTE checker bound to one tag space, holding the mode and the
    pending-asynchronous-fault state. *)

val create : ?mode:mode -> Tag_memory.t -> t
(** Checker over the given tag space; [mode] defaults to [Sync]. *)

val mode : t -> mode
val set_mode : t -> mode -> unit
val tag_memory : t -> Tag_memory.t
val set_tag_memory : t -> Tag_memory.t -> unit
(** Rebind after a [Tag_memory.grow]. *)

type verdict =
  | Allowed                  (** Access proceeds; no fault recorded. *)
  | Faulted of fault         (** Synchronous fault: access suppressed. *)
  | Deferred of fault        (** Asynchronous fault recorded: access
                                 proceeds, flag set. *)

val check : t -> access -> ptr:Ptr.t -> len:int64 -> verdict
(** Check one access made through [ptr] (whose bits 56-59 carry the
    logical tag) covering [len] bytes at [Ptr.address ptr]. Out-of-range
    accesses are mismatches (the granule has no matching tag). *)

val pending_fault : t -> fault option
(** The recorded asynchronous fault, if any (TFSR set). *)

val take_pending : t -> fault option
(** Drain the sticky TFSR: return the first deferred fault (if any) and
    clear it. Runtimes call this at synchronization points — function
    returns, host-call boundaries, context switches — which is where
    Async/Asymmetric deferred faults are architecturally reported. *)

val context_switch : t -> fault option
(** What the kernel does on context switch: returns and clears the
    pending asynchronous fault (alias of {!take_pending}). *)

val checks_performed : t -> int
(** Number of tag checks performed so far (for cost accounting). *)
