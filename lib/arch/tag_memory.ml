let granule_bytes = 16

type t = {
  mutable tags : Bytes.t;  (* one byte per granule; low nibble is the tag *)
  mutable size : int;
}

let granules_for size = (size + granule_bytes - 1) / granule_bytes

let create ~size_bytes =
  if size_bytes < 0 then invalid_arg "Tag_memory.create: negative size";
  { tags = Bytes.make (granules_for size_bytes) '\000'; size = size_bytes }

let size_bytes t = t.size
let tag_storage_bytes t = (granules_for t.size + 1) / 2
let is_aligned addr = Int64.rem addr 16L = 0L

let in_bounds t ~addr ~len =
  addr >= 0L && len >= 0L
  && Int64.add addr len >= addr (* no overflow *)
  && Int64.add addr len <= Int64.of_int t.size

let granule_of_addr addr = Int64.to_int (Int64.div addr 16L)

let get t addr =
  if not (in_bounds t ~addr ~len:1L) then
    invalid_arg "Tag_memory.get: address out of bounds";
  Tag.of_int (Char.code (Bytes.get t.tags (granule_of_addr addr)))

let granule_range ~addr ~len =
  (* Granules overlapping [addr, addr+len), with len=0 meaning the single
     granule at addr. *)
  let first = granule_of_addr addr in
  let last =
    if len <= 0L then first
    else granule_of_addr (Int64.sub (Int64.add addr len) 1L)
  in
  (first, last)

let region_tag t ~addr ~len =
  if not (in_bounds t ~addr ~len:(Int64.max len 1L)) then
    invalid_arg "Tag_memory.region_tag: region out of bounds";
  let first, last = granule_range ~addr ~len in
  let tag0 = Char.code (Bytes.get t.tags first) in
  let rec all_same g =
    if g > last then Some (Tag.of_int tag0)
    else if Char.code (Bytes.get t.tags g) <> tag0 then None
    else all_same (g + 1)
  in
  all_same first

(* The validity conditions of [set_region], without the write — the
   arena-lowered [segment.new] keeps the exact trap behaviour while
   skipping the tag-plane traffic, so the two must never drift. *)
let validate_region t ~addr ~len =
  if not (is_aligned addr) then Error "segment address not 16-byte aligned"
  else if len < 0L then Error "negative segment length"
  else if Int64.rem len 16L <> 0L then
    Error "segment length not a multiple of 16"
  else if not (in_bounds t ~addr ~len) then
    Error "segment out of linear memory bounds"
  else Ok ()

let set_region t ~addr ~len tag =
  match validate_region t ~addr ~len with
  | Error _ as e -> e
  | Ok () ->
      let first = granule_of_addr addr in
      let count = Int64.to_int (Int64.div len 16L) in
      Bytes.fill t.tags first count (Char.chr (Tag.to_int tag));
      Ok ()

let matches t ~addr ~len tag =
  let len = Int64.max len 1L in
  if not (in_bounds t ~addr ~len) then false
  else begin
    let first = granule_of_addr addr in
    let last = granule_of_addr (Int64.sub (Int64.add addr len) 1L) in
    let want = Tag.to_int tag in
    (* Fast path: a scalar access (<= 16 bytes, the overwhelmingly
       common case) touches one granule — one byte compare, no loop.
       [in_bounds] above guarantees the granule indices are valid, so
       unsafe_get cannot read out of range. *)
    if first = last then Char.code (Bytes.unsafe_get t.tags first) = want
    else begin
      let ok = ref true in
      let g = ref first in
      while !ok && !g <= last do
        if Char.code (Bytes.unsafe_get t.tags !g) <> want then ok := false
        else incr g
      done;
      !ok
    end
  end

let first_mismatch t ~addr ~len tag =
  if len <= 0L || not (in_bounds t ~addr ~len) then None
  else begin
    let first, last = granule_range ~addr ~len in
    let want = Tag.to_int tag in
    let rec go g =
      if g > last then None
      else if Char.code (Bytes.get t.tags g) <> want then
        Some (Int64.mul (Int64.of_int g) 16L)
      else go (g + 1)
    in
    go first
  end

(** Extend the tag PA space in place. When the granule count is
    unchanged (e.g. [memory.grow 0], or a sub-granule size bump) the
    existing buffer is reused — no allocation, no copy. *)
let grow t ~new_size_bytes =
  if new_size_bytes < t.size then
    invalid_arg "Tag_memory.grow: cannot shrink";
  let old_granules = Bytes.length t.tags in
  let new_granules = granules_for new_size_bytes in
  if new_granules > old_granules then begin
    let tags = Bytes.make new_granules '\000' in
    Bytes.blit t.tags 0 tags 0 old_granules;
    t.tags <- tags
  end;
  t.size <- new_size_bytes;
  t

let iteri t ~f =
  Bytes.iteri (fun i c -> f i (Tag.of_int (Char.code c))) t.tags

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type snapshot = { snap_tags : Bytes.t; snap_size : int }

let snapshot t = { snap_tags = Bytes.copy t.tags; snap_size = t.size }

(* Restore in place — the [t] bound into an [Mte.t] keeps its identity
   (growth also mutates in place, so the binding never goes stale). *)
let restore t s =
  if Bytes.length t.tags = Bytes.length s.snap_tags then
    Bytes.blit s.snap_tags 0 t.tags 0 (Bytes.length s.snap_tags)
  else t.tags <- Bytes.copy s.snap_tags;
  t.size <- s.snap_size

let snapshot_bytes s = (Bytes.length s.snap_tags + 1) / 2
let snapshot_to_string s = Bytes.to_string s.snap_tags

let to_string t = Bytes.to_string t.tags
