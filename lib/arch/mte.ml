type mode = Disabled | Sync | Async | Asymmetric

let mode_to_string = function
  | Disabled -> "disabled"
  | Sync -> "sync"
  | Async -> "async"
  | Asymmetric -> "asymm"

let pp_mode ppf m = Format.pp_print_string ppf (mode_to_string m)

type access = Load | Store

type fault = {
  fault_addr : int64;
  fault_len : int64;
  ptr_tag : Tag.t;
  mem_tag : Tag.t option;
  fault_access : access;
}

let pp_fault ppf f =
  Format.fprintf ppf "tag fault: %s of %Ld byte(s) at 0x%Lx with %a, memory %a"
    (match f.fault_access with Load -> "load" | Store -> "store")
    f.fault_len f.fault_addr Tag.pp f.ptr_tag
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.pp_print_string ppf "<mixed/unmapped>")
       Tag.pp)
    f.mem_tag

type t = {
  mutable mode : mode;
  mutable tags : Tag_memory.t;
  mutable pending : fault option;
  mutable checks : int;
}

let create ?(mode = Sync) tags = { mode; tags; pending = None; checks = 0 }
let mode t = t.mode
let set_mode t m = t.mode <- m
let tag_memory t = t.tags
let set_tag_memory t tags = t.tags <- tags

type verdict = Allowed | Faulted of fault | Deferred of fault

let check t access ~ptr ~len =
  match t.mode with
  | Disabled -> Allowed
  | _ ->
      t.checks <- t.checks + 1;
      let addr = Ptr.address ptr in
      let ptag = Ptr.tag ptr in
      if Tag_memory.matches t.tags ~addr ~len ptag then Allowed
      else begin
        let mem_tag =
          let len = Int64.max len 1L in
          if Tag_memory.in_bounds t.tags ~addr ~len then
            Tag_memory.region_tag t.tags ~addr ~len
          else None
        in
        let fault =
          { fault_addr = addr; fault_len = len; ptr_tag = ptag; mem_tag;
            fault_access = access }
        in
        let synchronous =
          match (t.mode, access) with
          | Sync, _ -> true
          | Asymmetric, Store -> true
          | Asymmetric, Load -> false
          | Async, _ -> false
          | Disabled, _ -> assert false
        in
        if synchronous then Faulted fault
        else begin
          (* TFSR is sticky: keep the first fault. *)
          if t.pending = None then t.pending <- Some fault;
          Deferred fault
        end
      end

let pending_fault t = t.pending

(** Drain the sticky TFSR: return the first deferred fault (if any) and
    clear it. Runtimes call this at synchronization points — function
    returns, host-call boundaries, context switches — which is where
    Async/Asymmetric deferred faults are architecturally reported. *)
let take_pending t =
  let f = t.pending in
  t.pending <- None;
  f

let context_switch = take_pending

let checks_performed t = t.checks
