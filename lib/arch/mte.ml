type mode = Disabled | Sync | Async | Asymmetric

let mode_to_string = function
  | Disabled -> "disabled"
  | Sync -> "sync"
  | Async -> "async"
  | Asymmetric -> "asymm"

let pp_mode ppf m = Format.pp_print_string ppf (mode_to_string m)

type access = Load | Store

type fault = {
  fault_addr : int64;
  fault_len : int64;
  ptr_tag : Tag.t;
  mem_tag : Tag.t option;
  fault_access : access;
}

let pp_fault ppf f =
  Format.fprintf ppf "tag fault: %s of %Ld byte(s) at 0x%Lx with %a, memory %a"
    (match f.fault_access with Load -> "load" | Store -> "store")
    f.fault_len f.fault_addr Tag.pp f.ptr_tag
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.pp_print_string ppf "<mixed/unmapped>")
       Tag.pp)
    f.mem_tag

type t = {
  mutable mode : mode;
  mutable tags : Tag_memory.t;
  mutable pending : fault option;
  mutable checks : int;
}

let create ?(mode = Sync) tags = { mode; tags; pending = None; checks = 0 }
let mode t = t.mode
let set_mode t m = t.mode <- m
let tag_memory t = t.tags
let set_tag_memory t tags = t.tags <- tags

type verdict = Allowed | Faulted of fault | Deferred of fault

(* Chaos hook: flip the allocation tag of the first granule under an
   access to a guaranteed-different value, modelling tag-storage
   corruption. Runs before the match so the very access that visited
   the granule observes the flip. *)
let chaos_tag_flip t addr =
  if Fault_inject.draw Fault_inject.Tag_flip then begin
    let gaddr = Int64.mul (Int64.div addr 16L) 16L in
    if Tag_memory.in_bounds t.tags ~addr:gaddr ~len:16L then begin
      let cur = Tag.to_int (Tag_memory.get t.tags gaddr) in
      let bad = Tag.of_int ((cur + 1 + Fault_inject.rand_int 15) mod 16) in
      (match Tag_memory.set_region t.tags ~addr:gaddr ~len:16L bad with
      | Ok () ->
          Fault_inject.note "granule 0x%Lx tag %d -> %d" gaddr cur
            (Tag.to_int bad)
      | Error _ -> ())
    end
  end

(* Observability: an allowed access whose span ends within one granule
   of a differently-tagged granule is a near-miss — the overflow that
   *would* have faulted one iteration later. Only computed with a sink
   installed; the disabled path pays nothing. *)
let note_near_miss t ~addr ~len ptag =
  let last = Int64.add addr (Int64.sub (Int64.max len 1L) 1L) in
  let next = Int64.mul (Int64.add (Int64.div last 16L) 1L) 16L in
  if Tag_memory.in_bounds t.tags ~addr:next ~len:1L then begin
    let nt = Tag_memory.get t.tags next in
    if Tag.to_int nt <> Tag.to_int ptag then
      Obs.Hook.event
        (Obs.Event.Tag_near_miss
           { addr; len; tag = Tag.to_int ptag;
             neighbour_tag = Tag.to_int nt })
  end

let check t access ~ptr ~len =
  match t.mode with
  | Disabled -> Allowed
  | _ ->
      t.checks <- t.checks + 1;
      let addr = Ptr.address ptr in
      let ptag = Ptr.tag ptr in
      chaos_tag_flip t addr;
      if Tag_memory.matches t.tags ~addr ~len ptag then begin
        if Obs.Hook.enabled () then note_near_miss t ~addr ~len ptag;
        Allowed
      end
      else begin
        let mem_tag =
          let len = Int64.max len 1L in
          if Tag_memory.in_bounds t.tags ~addr ~len then
            Tag_memory.region_tag t.tags ~addr ~len
          else None
        in
        let fault =
          { fault_addr = addr; fault_len = len; ptr_tag = ptag; mem_tag;
            fault_access = access }
        in
        let synchronous =
          match (t.mode, access) with
          | Sync, _ -> true
          | Asymmetric, Store -> true
          | Asymmetric, Load -> false
          | Async, _ -> false
          | Disabled, _ -> assert false
        in
        if Obs.Hook.enabled () then
          Obs.Hook.event
            (Obs.Event.Tag_fault
               { addr; len; ptr_tag = Tag.to_int ptag;
                 mem_tag = Option.map Tag.to_int mem_tag;
                 access =
                   (match access with
                   | Load -> Obs.Event.Load
                   | Store -> Obs.Event.Store);
                 deferred = not synchronous });
        if synchronous then Faulted fault
        else begin
          (* TFSR is sticky: keep the first fault. The chaos engine can
             drop the latch here — the lost-interrupt model, where the
             asynchronous report never reaches the kernel. *)
          if t.pending = None then begin
            if Fault_inject.draw Fault_inject.Tfsr_drop then
              Fault_inject.note "TFSR latch for 0x%Lx dropped" addr
            else t.pending <- Some fault
          end;
          Deferred fault
        end
      end

let pending_fault t = t.pending

(** Drain the sticky TFSR: return the first deferred fault (if any) and
    clear it. Runtimes call this at synchronization points — function
    returns, host-call boundaries, context switches — which is where
    Async/Asymmetric deferred faults are architecturally reported. *)
let take_pending t =
  let f = t.pending in
  t.pending <- None;
  (match f with
  | Some f when Obs.Hook.enabled () ->
      Obs.Hook.event (Obs.Event.Tfsr_drain { addr = f.fault_addr })
  | _ -> ());
  f

let context_switch = take_pending

let checks_performed t = t.checks
