(** The tag physical-address space.

    MTE stores one 4-bit allocation tag per 16-byte granule of physical
    memory, in a dedicated address space invisible to the OS (and hence
    excluded from rss accounting — see paper §7.3). This module models
    that space for a contiguous region of simulated memory. *)

type t

val granule_bytes : int
(** 16: the MTE tagging granularity. *)

val create : size_bytes:int -> t
(** A tag space covering [size_bytes] of memory (rounded up to a whole
    number of granules), with every granule initially tagged
    {!Tag.zero}. *)

val size_bytes : t -> int
(** The covered memory size in bytes. *)

val tag_storage_bytes : t -> int
(** Bytes of tag storage backing this space: 4 bits per 16 bytes, i.e.
    [size_bytes / 32] — the 3.125 % overhead of §7.3. *)

val is_aligned : int64 -> bool
(** Whether an address is 16-byte aligned, as required of all segment
    operations (paper §5.2). *)

val in_bounds : t -> addr:int64 -> len:int64 -> bool
(** Whether [\[addr, addr+len)] lies inside the covered region. *)

val get : t -> int64 -> Tag.t
(** Tag of the granule containing the given address.
    @raise Invalid_argument if out of bounds. *)

val region_tag : t -> addr:int64 -> len:int64 -> Tag.t option
(** [region_tag t ~addr ~len] is [Some tag] if every byte of the region
    has allocation tag [tag] (the paper's [s_tag(i, addr, len)] partial
    function), [None] if tags differ. [len = 0] checks the granule at
    [addr]. @raise Invalid_argument if out of bounds. *)

val validate_region : t -> addr:int64 -> len:int64 -> (unit, string) result
(** The validity conditions of {!set_region} without the write — same
    error strings. The arena-lowered [segment.new] uses this to keep
    trap behaviour identical while skipping the tag-plane traffic. *)

val set_region : t -> addr:int64 -> len:int64 -> Tag.t -> (unit, string) result
(** Retag the region ([s with tag(i, addr, len) = t]). Fails if [addr]
    is not 16-byte aligned, [len] is negative or not a multiple of 16,
    or the region is out of bounds. *)

val matches : t -> addr:int64 -> len:int64 -> Tag.t -> bool
(** Whether every granule overlapping [\[addr, addr+len)] carries the
    given tag — the access-check predicate. Out-of-bounds regions never
    match. [len <= 0] is treated as a 1-byte access. *)

val first_mismatch : t -> addr:int64 -> len:int64 -> Tag.t -> int64 option
(** Byte address (granule start) of the first granule overlapping
    [\[addr, addr+len)] whose tag differs from [tag]; [None] when every
    granule matches, [len <= 0], or the span leaves the covered region.
    This is how a faulting bulk transfer learns where its stp/ldp
    stream stopped. *)

val grow : t -> new_size_bytes:int -> t
(** Enlarge the tag space in place, preserving existing tags and
    zero-tagging the fresh granules (used on [memory.grow]); returns the
    same [t] for convenience. A grow that does not add granules reuses
    the existing tag storage untouched. *)

val iteri : t -> f:(int -> Tag.t -> unit) -> unit
(** Iterate over granules in address order; the [int] is the granule
    index. *)

(** {1 Snapshots}

    A frozen copy of the whole tag space, for instance pools that
    freeze tags alongside linear memory and restore per request. *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
(** Restore in place: the [t] bound into an MTE checker keeps its
    identity, so the checker's binding never goes stale. *)

val snapshot_bytes : snapshot -> int
(** Modeled tag-storage payload of the image (4 bits per granule). *)

val snapshot_to_string : snapshot -> string
(** One byte per granule (low nibble is the tag) — fidelity tests. *)

val to_string : t -> string
(** The live tag bytes (fidelity tests compare against a snapshot). *)
