(** Seeded, deterministic fault injection (chaos engine).

    A policy names the fault sites to arm, per-site probabilities and an
    injection budget; an installed engine is consulted by the hardware
    models at the exact points where a real bit-flip, glitch or lost
    interrupt would land. One seeded PRNG drives everything, so a
    (seed, policy) pair replays the identical fault sequence.

    With no engine installed every hook reduces to a single
    load-and-compare ([None] fast path): the uninstrumented hot path is
    untouched. *)

type site =
  | Tag_flip        (** flip the allocation tag of an accessed granule
                        ({!Mte.check}) *)
  | Ptr_tag         (** corrupt the logical tag of a live pointer
                        (checked-access address resolution) *)
  | Ptr_sig         (** set stray signature bits on a live pointer,
                        making it non-canonical *)
  | Pac_forge       (** flip a signature bit just before [autda]
                        ({!Pac.auth}) *)
  | Pac_strip       (** strip the signature ([xpacd]) before [autda] *)
  | Tfsr_drop       (** drop a pending TFSR latch — the lost-interrupt
                        model of asynchronous MTE reporting *)
  | Heap_scribble   (** scribble the free-list link of a freed chunk in
                        the hardened libc heap *)

val all_sites : site list
val site_to_string : site -> string

type policy = {
  seed : int;
  probability : float;        (** default chance a visited site fires *)
  site_probability : (site * float) list;  (** per-site overrides *)
  sites : site list;          (** sites armed at all *)
  max_injections : int;       (** total injection budget *)
  site_max : (site * int) list;
      (** per-site caps within the total budget — e.g. one tag flip but
          unlimited dropped TFSR latches for the lost-interrupt model *)
}

val policy :
  ?probability:float ->
  ?site_probability:(site * float) list ->
  ?max_injections:int ->
  ?site_max:(site * int) list ->
  seed:int ->
  site list ->
  policy
(** [probability] defaults to 1.0 (fire on first visit),
    [max_injections] to 1, [site_max] to no per-site cap. *)

type injection = {
  inj_site : site;
  inj_index : int;               (** 0-based order of injection *)
  mutable inj_detail : string;   (** filled in by the injecting hook *)
}

type t
(** A live engine: policy + PRNG + injection log. *)

val create : policy -> t
val count : t -> int
val injections : t -> injection list
(** Injections performed so far, in chronological order. *)

val pp_injection : Format.formatter -> injection -> unit

(** {1 Installation} *)

val install : t -> unit
val uninstall : unit -> unit
val active : unit -> t option
val with_engine : t -> (unit -> 'a) -> 'a
(** Install around [f], uninstalling even on exception. *)

(** {1 Hook API — called from the hardware models} *)

val draw : site -> bool
(** Roll the dice at a fault site. [true] means the caller must inject
    the fault now (the injection is already recorded; use {!note} to
    attach detail). Always [false] with no engine installed, a filtered
    site, or an exhausted budget. *)

val note : ('a, Format.formatter, unit, unit) format4 -> 'a
(** Attach a detail string to the most recent injection. *)

val rand_int : int -> int
(** Deterministic corruption parameter from the engine PRNG (0 when no
    engine is installed). *)

(** {1 Heap-scribble plumbing}

    A [Heap_scribble] draw at segment-free time records the address of
    the chunk's free-list link; the runtime applies the corrupting
    write at the next synchronization point, after the allocator has
    published the link. This models an asynchronous corruptor (racing
    thread, errant DMA) — which is also why the write bypasses tag
    checks. *)

val set_scribble : int64 -> unit
val take_scribble : unit -> int64 option
val junk64 : unit -> int64
(** Non-canonical junk (bits 48-55 set): a later dereference of the
    corrupted link faults at the MMU canonicality check. *)
