(** Seeded, deterministic fault injection (chaos engine).

    A policy names the fault sites to arm, per-site probabilities and an
    injection budget; an installed engine is consulted by the hardware
    models at the exact points where a real bit-flip, glitch or lost
    interrupt would land.

    Randomness is split into per-{e lane} streams: a lane is one victim
    instance's stable identity (its spawn ordinal within its process —
    the supervisor switches lanes at every invocation boundary with
    {!set_lane}). Each lane's PRNG is derived from (engine seed, lane)
    and budgets are accounted per lane, so instance [i]'s fault
    sequence is a function of the policy and [i] alone: any
    interleaving of draws across instances — any pool scheduling order
    — replays the identical per-instance fault sequences.

    With no engine installed every hook reduces to a single
    load-and-compare ([None] fast path): the uninstrumented hot path is
    untouched. *)

type site =
  | Tag_flip        (** flip the allocation tag of an accessed granule
                        ({!Mte.check}) *)
  | Ptr_tag         (** corrupt the logical tag of a live pointer
                        (checked-access address resolution) *)
  | Ptr_sig         (** set stray signature bits on a live pointer,
                        making it non-canonical *)
  | Pac_forge       (** flip a signature bit just before [autda]
                        ({!Pac.auth}) *)
  | Pac_strip       (** strip the signature ([xpacd]) before [autda] *)
  | Tfsr_drop       (** drop a pending TFSR latch — the lost-interrupt
                        model of asynchronous MTE reporting *)
  | Heap_scribble   (** scribble the free-list link of a freed chunk in
                        the hardened libc heap *)

val all_sites : site list
val site_to_string : site -> string

type policy = {
  seed : int;
  probability : float;        (** default chance a visited site fires *)
  site_probability : (site * float) list;  (** per-site overrides *)
  sites : site list;          (** sites armed at all *)
  max_injections : int;       (** per-lane injection budget *)
  site_max : (site * int) list;
      (** per-site caps within the per-lane budget — e.g. one tag flip
          but unlimited dropped TFSR latches for the lost-interrupt
          model *)
}

val policy :
  ?probability:float ->
  ?site_probability:(site * float) list ->
  ?max_injections:int ->
  ?site_max:(site * int) list ->
  seed:int ->
  site list ->
  policy
(** [probability] defaults to 1.0 (fire on first visit),
    [max_injections] to 1 per lane, [site_max] to no per-site cap. *)

type injection = {
  inj_site : site;
  inj_index : int;               (** 0-based order of injection *)
  inj_lane : int;                (** lane (instance) the fault landed in *)
  inj_request : int;             (** serving request id, -1 outside serving *)
  mutable inj_detail : string;   (** filled in by the injecting hook *)
}

type t
(** A live engine: policy + per-lane PRNGs + injection log. *)

val create : policy -> t
val count : t -> int
(** Total injections performed so far, across all lanes. *)

val injections : t -> injection list
(** Injections performed so far, in chronological order. *)

val lane_count : t -> int -> int
(** Injections charged to one lane. *)

val lane_injections : t -> int -> injection list
(** One lane's injections, in chronological order. *)

val request_injections : t -> int -> injection list
(** Injections tagged with one serving request id, in chronological
    order (see {!set_request}). *)

val pp_injection : Format.formatter -> injection -> unit

(** {1 Installation} *)

val install : t -> unit
val uninstall : unit -> unit
val active : unit -> t option
val with_engine : t -> (unit -> 'a) -> 'a
(** Install around [f], uninstalling even on exception. *)

val set_lane : int -> unit
(** Switch the engine onto a lane: subsequent draws are charged to (and
    randomized by) that lane's stream. Called by the supervisor at
    invocation boundaries with the instance's stable spawn ordinal;
    no-op when no engine is installed. Lane 0 is the ambient default. *)

val current_lane : unit -> int
(** The lane draws currently land in (0 when no engine is installed). *)

val set_request : int -> unit
(** Tag subsequent injections with a serving request id ([-1] clears).
    The serving runtime brackets each request execution with this so a
    chaos run can report which request every injection landed in;
    no-op when no engine is installed. *)

val current_request : unit -> int
(** The request id injections are currently tagged with ([-1] when none
    or no engine). *)

(** {1 Hook API — called from the hardware models} *)

val draw : site -> bool
(** Roll the dice at a fault site. [true] means the caller must inject
    the fault now (the injection is already recorded; use {!note} to
    attach detail). Always [false] with no engine installed, a filtered
    site, or an exhausted per-lane budget. *)

val note : ('a, Format.formatter, unit, unit) format4 -> 'a
(** Attach a detail string to the most recent injection. *)

val rand_int : int -> int
(** Deterministic corruption parameter from the current lane's PRNG
    (0 when no engine is installed). *)

(** {1 Heap-scribble plumbing}

    A [Heap_scribble] draw at segment-free time records the address of
    the chunk's free-list link; the runtime applies the corrupting
    write at the next synchronization point, after the allocator has
    published the link. This models an asynchronous corruptor (racing
    thread, errant DMA) — which is also why the write bypasses tag
    checks. *)

val set_scribble : int64 -> unit
val take_scribble : unit -> int64 option
val junk64 : unit -> int64
(** Non-canonical junk (bits 48-55 set): a later dereference of the
    corrupted link faults at the MMU canonicality check. *)
