(** Seeded, deterministic fault injection (chaos engine).

    Cage's value proposition is what happens when memory is corrupted;
    this module is the corruptor. A policy names the fault {e sites} to
    arm, a per-site probability, and a budget of injections; an engine
    drawn from the policy is installed globally and the hardware models
    ([Mte.check], [Pac.auth], the checked-access layer, the segment
    instructions) consult it at the exact points where a real bit-flip,
    glitch or lost interrupt would land.

    Randomness is split into per-{e lane} streams: a lane is one
    victim instance's stable identity (its spawn ordinal — the
    supervisor sets the lane at every invocation boundary), and each
    lane's PRNG is derived from (engine seed, lane). Injection budgets
    and per-site caps are accounted per lane too. The consequence is
    the property pool-concurrent serving depends on: instance [i]'s
    fault sequence is a function of the policy and [i] alone, so any
    interleaving of draws across instances replays the identical
    per-instance fault sequences.

    When no engine is installed every hook is a single load-and-compare
    on the [None] fast path: the uninstrumented hot path is untouched. *)

type site =
  | Tag_flip        (** flip the allocation tag of an accessed granule *)
  | Ptr_tag         (** corrupt the logical tag of a live pointer *)
  | Ptr_sig         (** set stray signature bits on a live pointer *)
  | Pac_forge       (** flip a signature bit just before [autda] *)
  | Pac_strip       (** strip the signature ([xpacd]) before [autda] *)
  | Tfsr_drop       (** drop a pending TFSR latch (lost interrupt) *)
  | Heap_scribble   (** scribble free-list metadata in the libc heap *)

let all_sites =
  [ Tag_flip; Ptr_tag; Ptr_sig; Pac_forge; Pac_strip; Tfsr_drop;
    Heap_scribble ]

let site_to_string = function
  | Tag_flip -> "tag-flip"
  | Ptr_tag -> "ptr-tag"
  | Ptr_sig -> "ptr-sig"
  | Pac_forge -> "pac-forge"
  | Pac_strip -> "pac-strip"
  | Tfsr_drop -> "tfsr-drop"
  | Heap_scribble -> "heap-scribble"

type policy = {
  seed : int;
  probability : float;        (** default chance a visited site fires *)
  site_probability : (site * float) list;  (** per-site overrides *)
  sites : site list;          (** sites armed at all *)
  max_injections : int;       (** per-lane injection budget *)
  site_max : (site * int) list;
      (** per-site caps within the per-lane budget — e.g. one tag flip
          but unlimited dropped TFSR latches for the lost-interrupt
          model *)
}

let policy ?(probability = 1.0) ?(site_probability = [])
    ?(max_injections = 1) ?(site_max = []) ~seed sites =
  { seed; probability; site_probability; sites; max_injections; site_max }

type injection = {
  inj_site : site;
  inj_index : int;               (** 0-based order of injection *)
  inj_lane : int;                (** lane (instance) the fault landed in *)
  inj_request : int;             (** serving request id, -1 outside serving *)
  mutable inj_detail : string;   (** filled in by the injecting hook *)
}

(* One lane = one victim identity. The PRNG is derived from
   (policy seed, lane), and budgets are tracked here, so a lane's
   behaviour is independent of every other lane's draw history. *)
type lane_state = {
  ln_lane : int;
  ln_rng : Random.State.t;
  mutable ln_count : int;
  mutable ln_site_counts : (site * int) list;
}

type t = {
  pol : policy;
  mutable lanes : lane_state list;     (* keyed by ln_lane *)
  mutable cur : lane_state;            (* the lane draws land in *)
  mutable cur_request : int;           (* serving request id, -1 ambient *)
  mutable injected : injection list;   (* newest first, all lanes *)
  mutable scribble_at : int64 option;
      (* a Heap_scribble records the doomed address here; the runtime
         applies the write at the next synchronization point, once the
         allocator has finished publishing the free-list link *)
}

let lane_state pol lane =
  {
    ln_lane = lane;
    ln_rng = Random.State.make [| pol.seed; lane |];
    ln_count = 0;
    ln_site_counts = [];
  }

let create pol =
  let l0 = lane_state pol 0 in
  { pol; lanes = [ l0 ]; cur = l0; cur_request = -1; injected = [];
    scribble_at = None }

let count t = List.length t.injected
let injections t = List.rev t.injected

let lane_injections t lane =
  List.rev (List.filter (fun i -> i.inj_lane = lane) t.injected)

let request_injections t req =
  List.rev (List.filter (fun i -> i.inj_request = req) t.injected)

let lane_count t lane =
  match List.find_opt (fun l -> l.ln_lane = lane) t.lanes with
  | Some l -> l.ln_count
  | None -> 0

let pp_injection ppf i =
  Format.fprintf ppf "%s%s" (site_to_string i.inj_site)
    (if i.inj_detail = "" then "" else " (" ^ i.inj_detail ^ ")")

(* ------------------------------------------------------------------ *)
(* The global hook — the [None] fast path is what the hot paths see.   *)
(* ------------------------------------------------------------------ *)

let hook : t option ref = ref None

let install t = hook := Some t
let uninstall () = hook := None
let active () = !hook

let with_engine t f =
  install t;
  Fun.protect ~finally:uninstall f

(** Switch the engine onto a lane: all subsequent draws are charged to
    (and randomized by) that lane's stream. The supervisor calls this
    at every invocation boundary with the instance's stable spawn
    ordinal; no-op when no engine is installed. *)
let set_lane lane =
  match !hook with
  | None -> ()
  | Some t -> (
      match List.find_opt (fun l -> l.ln_lane = lane) t.lanes with
      | Some l -> t.cur <- l
      | None ->
          let l = lane_state t.pol lane in
          t.lanes <- l :: t.lanes;
          t.cur <- l)

let current_lane () =
  match !hook with None -> 0 | Some t -> t.cur.ln_lane

(** Tag subsequent injections with the serving request id they land in
    (fault→request correlation). The server brackets each [Pool.serve]
    call with [set_request id] / [set_request (-1)]; no-op with no
    engine installed. *)
let set_request req =
  match !hook with None -> () | Some t -> t.cur_request <- req

let current_request () =
  match !hook with None -> -1 | Some t -> t.cur_request

let site_probability t site =
  match List.assq_opt site t.pol.site_probability with
  | Some p -> p
  | None -> t.pol.probability

(** Roll the dice at a fault site. [true] means the caller must inject
    the fault now (the injection is already recorded; use {!note} to
    attach a human-readable detail). Always [false] with no engine
    installed, a filtered site, or an exhausted (per-lane) budget. *)
let draw site =
  match !hook with
  | None -> false
  | Some t ->
      if not (List.memq site t.pol.sites) then false
      else
        let ln = t.cur in
        if ln.ln_count >= t.pol.max_injections then false
        else if
          match List.assq_opt site t.pol.site_max with
          | None -> false
          | Some cap -> (
              match List.assq_opt site ln.ln_site_counts with
              | Some n -> n >= cap
              | None -> false)
        then false
        else
          let p = site_probability t site in
          let fire = p >= 1.0 || Random.State.float ln.ln_rng 1.0 < p in
          if fire then begin
            ln.ln_count <- ln.ln_count + 1;
            ln.ln_site_counts <-
              (site,
               1
               + (match List.assq_opt site ln.ln_site_counts with
                 | Some n -> n
                 | None -> 0))
              :: List.remove_assq site ln.ln_site_counts;
            t.injected <-
              { inj_site = site; inj_index = count t; inj_lane = ln.ln_lane;
                inj_request = t.cur_request; inj_detail = "" }
              :: t.injected
          end;
          fire

(** Attach a detail string to the most recent injection. *)
let note fmt =
  Format.kasprintf
    (fun s ->
      match !hook with
      | Some { injected = i :: _; _ } -> i.inj_detail <- s
      | _ -> ())
    fmt

(** Deterministic corruption parameter from the current lane's PRNG
    (0 when no engine is installed — only meaningful after a successful
    {!draw}). *)
let rand_int n =
  match !hook with None -> 0 | Some t -> Random.State.int t.cur.ln_rng n

(* ------------------------------------------------------------------ *)
(* Heap-scribble plumbing                                              *)
(* ------------------------------------------------------------------ *)

let set_scribble addr =
  match !hook with None -> () | Some t -> t.scribble_at <- Some addr

let take_scribble () =
  match !hook with
  | None -> None
  | Some t ->
      let a = t.scribble_at in
      if a <> None then t.scribble_at <- None;
      a

(** The junk written over scribbled metadata: a non-canonical pointer
    pattern (bits 48-55 set), so a later dereference of the corrupted
    free-list link is caught by the MMU canonicality check rather than
    wandering silently. *)
let junk64 () =
  Int64.logor 0x00de_0000_0000_0000L (Int64.of_int (rand_int 0xffff))
