(** Module instances and the store.

    Fig. 11 of the paper augments the wasm store with a per-granule tag
    map ([taginst]) and a per-instance secret key ([k_s]); both live
    here. The MTE engine holds the tag map together with the checking
    mode; the PAC key signs function pointers such that signatures from
    one instance never validate in another. *)

exception Trap of string

(** Which execution engine drives an instance. [Threaded] (the default)
    lowers every validated function into flat threaded code at
    instantiation ({!Compile}) and falls back to the tree-walking
    interpreter per function when lowering declines; [Interp] forces
    the interpreter everywhere. Both are observationally identical —
    same results, traps, meter totals, obs events and chaos draws. *)
type engine = Interp | Threaded

(** A host function receives the calling instance (so WASI-style
    imports can access its memory) and the arguments; it returns the
    results or raises {!Trap}. *)
type host_func = t -> Values.t list -> Values.t list

and func_inst =
  | Wasm_func of {
      inst_id : int;
      func : Ast.func;
      ty : Types.func_type;
      code : Code.func;
          (** body prepared at instantiation: label arities and
              br_table targets resolved, O(1) at branch time *)
      mutable xcode : t Xcode.func option;
          (** the same body lowered to threaded code ([None] when the
              engine is [Interp] or the function is not lowerable);
              filled in at instantiation, after the instance exists *)
    }
  | Host_func of { fn : host_func; ty : Types.func_type; name : string }

and t = {
  id : int;
  module_ : Ast.module_;
  funcs : func_inst array;
  table : int option array;  (** function indices, [| |] if no table *)
  mem : Memory.t option;
  mte : Arch.Mte.t option;   (** tag store + checking mode; [None] only
                                 when the module has no memory *)
  globals : Values.t array;
  pac_key : Arch.Pac.key;    (** the per-instance k_s *)
  pac_modifier : int64;      (** per-instance modifier when several
                                 instances share a process (§6.3) *)
  pac_config : Arch.Pac.config;
  exclude : Arch.Tag.Exclude.t;  (** tags irg-style allocation avoids *)
  enforce_tags : bool;       (** internal memory safety on/off *)
  mutable rng : Random.State.t;
      (** tag-draw PRNG; mutable so a snapshot restore can rewind it —
          a restored instance must draw the same [irg] tag sequence the
          frozen one would have *)
  meter : Meter.t option;
  mutable fuel : int;
      (** watchdog budget: branches/calls left before a ["fuel:"] trap;
          [-1] disables the watchdog *)
  mutable call_stack : int list;
      (** function indices of the live wasm frames, innermost first.
          Frames are popped on normal return only, so after a trap the
          frozen stack is the crash backtrace a supervisor snapshots. *)
  mutable last_fault : Arch.Mte.fault option;
      (** structured record of the most recent tag fault raised as a
          trap — the faulting address / tags / access kind a post-mortem
          reports without re-parsing the trap message *)
  engine : engine;  (** which execution engine drives this instance *)
}

(** Runtime configuration for instantiation, reflecting the Table 3
    variants. *)
type config = {
  enforce_tags : bool;
      (** check allocation tags on every access (Eqs. 1-4) *)
  mte_mode : Arch.Mte.mode;
  exclude : Arch.Tag.Exclude.t;
      (** Cage reserves tag 0 for guard slots/untagged segments by
          default; sandbox-combined configs exclude more (§6.4) *)
  pac_config : Arch.Pac.config;
  pac_modifier : int64;
  pac_key : Arch.Pac.key option;
      (** [Some k] shares a process-wide key (instances are then isolated
          by distinct modifiers, §6.3); [None] generates a fresh key. *)
  seed : int;
  meter : Meter.t option;
  fuel : int;  (** initial watchdog budget; [-1] = unlimited *)
  elide : Bytes.t array;
      (** per-local-function elision bitsets from the static analyzer
          (index = function index minus imports, see {!Code.elidable});
          [[||]] (the default) disables elision entirely *)
  belide : Bytes.t array;
      (** bounds-elision bitsets (full-check elision); same indexing *)
  arena : Bytes.t array;
      (** arena bitsets over [segment.new]/[segment.free] instructions
          (escape analysis: tag-plane writes skipped); same indexing *)
  engine : engine;
}

let default_config = {
  enforce_tags = true;
  mte_mode = Arch.Mte.Sync;
  exclude = Arch.Tag.Exclude.of_list [ Arch.Tag.zero ];
  pac_config = Arch.Pac.default_config;
  pac_modifier = 0L;
  pac_key = None;
  seed = 0;
  meter = None;
  fuel = -1;
  elide = [||];
  belide = [||];
  arena = [||];
  engine = Threaded;
}

let func_type = function
  | Wasm_func { ty; _ } -> ty
  | Host_func { ty; _ } -> ty

let memory t =
  match t.mem with
  | Some m -> m
  | None -> raise (Trap "no memory in instance")

let mte t =
  match t.mte with
  | Some m -> m
  | None -> raise (Trap "no memory in instance")

let find_export t name =
  List.find_map
    (fun (ex : Ast.export) ->
      if String.equal ex.ex_name name then Some ex.ex_desc else None)
    t.module_.exports

let exported_func t name =
  match find_export t name with
  | Some (Ast.Func_export i) -> Some i
  | _ -> None

(** Tags currently in the instance's tag store (diagnostics/tests). *)
let tag_of_addr t addr = Arch.Tag_memory.get (Arch.Mte.tag_memory (mte t)) addr

(** Printable name of function index [i] — its source name when the
    front end recorded one, [f<i>] otherwise (backtraces). *)
let func_name t i =
  if i < 0 || i >= Array.length t.funcs then Printf.sprintf "f%d" i
  else
    match t.funcs.(i) with
    | Host_func { name; _ } -> name
    | Wasm_func { func; _ } -> (
        match func.Ast.fname with
        | Some n -> n
        | None -> Printf.sprintf "f%d" i)
