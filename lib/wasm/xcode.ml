(** The threaded-code form: what a validated function body is lowered
    to at instantiation.

    A function becomes a flat array of pre-bound closures ("ops"); each
    op mutates the machine state and returns the index of the next op
    to dispatch, so control flow is a computed continue instead of an
    exception unwind, and every operand/immediate/branch target/elision
    decision is baked into the closure's environment at compile time
    (direct threading). An op index equal to the array length is the
    function's exit.

    The module is parameterised over the instance type ['inst] so that
    {!Instance} can store compiled code inside [Wasm_func] without a
    dependency cycle ({!Compile} instantiates ['inst = Instance.t]).

    {2 Value slots}

    The operand stack and locals live in one shared [float array]; a
    slot holds the raw 64-bit pattern of the value it carries
    (reinterpreted, never converted):

    - [F64] — the float itself;
    - [F32] — the float, already rounded through single precision
      (exactly how the interpreter stores [Values.F32]);
    - [I64] — [Int64.float_of_bits];
    - [I32] — sign-extended to 64 bits, then [Int64.float_of_bits].

    The encoding is lossless (bit moves only — OCaml float arrays do
    not canonicalise NaN payloads), typeless on write, and has the
    property that the all-zeroes slot is the default value of every
    type, so zeroing locals is one [Array.fill]. Unboxed float reads
    and writes keep the hot loop allocation-free. *)

type 'inst state = {
  inst : 'inst;
  mutable stk : float array;  (** shared locals + operand slots for the
                                  whole call chain; grown on demand *)
  mutable base : int;    (** current frame: first local slot *)
  mutable opbase : int;  (** current frame: first operand slot *)
  mutable sp : int;      (** next free operand slot *)
  mutable depth : int;   (** call depth of the current frame (top = 0) *)
}

(** One threaded op: advances the state, returns the next op index. *)
type 'inst op = 'inst state -> int

(** Per-function superinstruction/elision statistics, gathered at
    compile time (the [cagec --Wfusion] report). *)
type stats = {
  st_name : string;
  st_instrs : int;      (** basic (non-control) source instructions *)
  st_fused : int;       (** of which folded into superinstructions *)
  st_idioms : (string * int) list;  (** idiom name -> times matched *)
  st_accesses : int;    (** scalar loads/stores compiled *)
  st_elided : int;      (** of which compiled check-free (baked elision) *)
  st_supported : bool;  (** false: function fell back to the interpreter *)
}

type 'inst func = {
  ops : 'inst op array;
  nparams : int;
  nlocals : int;       (** extra locals beyond the parameters *)
  result_arity : int;
  result_tys : Types.val_type array;  (** declared result types, for
                                          boxing at the entry boundary *)
  frame_slots : int;   (** params + locals + max operand height: what a
                           frame needs below [stk]'s end before running *)
  stats : stats;
}

(* ------------------------------------------------------------------ *)
(* Slot encoding                                                       *)
(* ------------------------------------------------------------------ *)

let[@inline] slot_of_i64 (v : int64) = Int64.float_of_bits v
let[@inline] i64_of_slot (s : float) = Int64.bits_of_float s
let[@inline] slot_of_i32 (v : int32) = Int64.float_of_bits (Int64.of_int32 v)
let[@inline] i32_of_slot (s : float) = Int64.to_int32 (Int64.bits_of_float s)

let slot_of_value : Values.t -> float = function
  | Values.I32 v -> slot_of_i32 v
  | Values.I64 v -> slot_of_i64 v
  | Values.F32 v | Values.F64 v -> v

let value_of_slot (ty : Types.val_type) (s : float) : Values.t =
  match ty with
  | Types.I32 -> Values.I32 (i32_of_slot s)
  | Types.I64 -> Values.I64 (i64_of_slot s)
  | Types.F32 -> Values.F32 s
  | Types.F64 -> Values.F64 s

(* ------------------------------------------------------------------ *)
(* Stack storage                                                       *)
(* ------------------------------------------------------------------ *)

let initial_slots = 256

(** Make sure [st.stk] has at least [need] slots, preserving contents.
    Called at frame entry only — ops inside a frame stay within the
    frame's [frame_slots] bound established here. *)
let ensure (st : 'inst state) need =
  if need > Array.length st.stk then begin
    let cap = ref (2 * Array.length st.stk) in
    while !cap < need do
      cap := !cap * 2
    done;
    let stk = Array.make !cap 0.0 in
    Array.blit st.stk 0 stk 0 (Array.length st.stk);
    st.stk <- stk
  end

(** The per-function fused/elided summary [cagec --Wfusion] prints. *)
let pp_stats ppf (s : stats) =
  let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b in
  if not s.st_supported then
    Format.fprintf ppf "@[<v2>%s: interpreter fallback (not threaded)@]"
      s.st_name
  else begin
    Format.fprintf ppf
      "@[<v2>%s: %d instrs, %d fused (%.1f%%), %d accesses, %d check-free \
       (%.1f%%)"
      s.st_name s.st_instrs s.st_fused
      (pct s.st_fused s.st_instrs)
      s.st_accesses s.st_elided
      (pct s.st_elided s.st_accesses);
    List.iter
      (fun (idiom, n) -> Format.fprintf ppf "@ %-24s %d" idiom n)
      (List.sort compare s.st_idioms);
    Format.fprintf ppf "@]"
  end
