(** Execution-event metering.

    The interpreter reports {e semantic events} (one per executed wasm
    operation, plus allocation-granule counts for the Cage segment
    instructions). The Cage lowering layer later prices these events as
    the native instruction mix a Cranelift-with-Cage backend would emit
    under a given runtime configuration — keeping semantics and cost
    model cleanly separated. *)

type t = {
  mutable const : int;       (** numeric constants *)
  mutable local_access : int;(** local.get/set/tee *)
  mutable global_access : int;
  mutable ialu : int;        (** integer add/sub/logic/shift/compare *)
  mutable imul : int;
  mutable idiv : int;
  mutable falu : int;        (** fp add/sub/neg/abs/compares *)
  mutable fmul : int;
  mutable fdiv : int;
  mutable cvt : int;
  mutable select : int;
  mutable branch : int;      (** br/br_if/br_table/if/loop back-edges *)
  mutable call : int;
  mutable call_indirect : int;
  mutable return_ : int;
  mutable loads : int;
  mutable load_bytes : int;
  mutable stores : int;
  mutable store_bytes : int;
  mutable mem_grow : int;
  mutable bulk_fill : int;   (** memory.fill ops (setup; traffic is in
                                 loads/stores as 16-byte chunks) *)
  mutable bulk_copy : int;   (** memory.copy ops *)
  mutable seg_new : int;
  mutable seg_new_granules : int;  (** granules tagged by segment.new *)
  mutable seg_set_tag : int;
  mutable seg_set_tag_granules : int;
  mutable seg_free : int;
  mutable seg_free_granules : int;
  mutable ptr_sign : int;
  mutable ptr_auth : int;
  mutable elided_checks : int;
      (** loads/stores whose MTE granule check was skipped because the
          static analyzer proved them safe. Counted {e in addition to}
          [loads]/[stores] (the access itself still happens), so it is
          deliberately not part of {!total} or {!pp}. *)
  mutable elided_bounds : int;
      (** loads/stores whose span (bounds) check was also skipped —
          full-check elision. Like [elided_checks], counted in addition
          to [loads]/[stores] and excluded from {!total}. *)
  mutable arena_new_granules : int;
      (** granules a [segment.new] did {e not} tag because the segment
          was lowered to the arena (escape analysis); the granules are
          counted here instead of [seg_new_granules] *)
  mutable arena_free_granules : int;
      (** granules a [segment.free] did not retag (arena lowering) *)
}

let create () = {
  const = 0; local_access = 0; global_access = 0;
  ialu = 0; imul = 0; idiv = 0; falu = 0; fmul = 0; fdiv = 0; cvt = 0;
  select = 0; branch = 0; call = 0; call_indirect = 0; return_ = 0;
  loads = 0; load_bytes = 0; stores = 0; store_bytes = 0; mem_grow = 0;
  bulk_fill = 0; bulk_copy = 0;
  seg_new = 0; seg_new_granules = 0; seg_set_tag = 0;
  seg_set_tag_granules = 0; seg_free = 0; seg_free_granules = 0;
  ptr_sign = 0; ptr_auth = 0; elided_checks = 0; elided_bounds = 0;
  arena_new_granules = 0; arena_free_granules = 0;
}

let reset t =
  t.const <- 0; t.local_access <- 0; t.global_access <- 0;
  t.ialu <- 0; t.imul <- 0; t.idiv <- 0; t.falu <- 0; t.fmul <- 0;
  t.fdiv <- 0; t.cvt <- 0; t.select <- 0; t.branch <- 0; t.call <- 0;
  t.call_indirect <- 0; t.return_ <- 0; t.loads <- 0; t.load_bytes <- 0;
  t.stores <- 0; t.store_bytes <- 0; t.mem_grow <- 0;
  t.bulk_fill <- 0; t.bulk_copy <- 0; t.seg_new <- 0;
  t.seg_new_granules <- 0; t.seg_set_tag <- 0; t.seg_set_tag_granules <- 0;
  t.seg_free <- 0; t.seg_free_granules <- 0; t.ptr_sign <- 0;
  t.ptr_auth <- 0; t.elided_checks <- 0; t.elided_bounds <- 0;
  t.arena_new_granules <- 0; t.arena_free_granules <- 0

(** Total executed wasm operations (rough instruction count). *)
let total t =
  t.const + t.local_access + t.global_access + t.ialu + t.imul + t.idiv
  + t.falu + t.fmul + t.fdiv + t.cvt + t.select + t.branch + t.call
  + t.call_indirect + t.return_ + t.loads + t.stores + t.mem_grow
  + t.bulk_fill + t.bulk_copy
  + t.seg_new + t.seg_set_tag + t.seg_free + t.ptr_sign + t.ptr_auth

(** Memory accesses (the unit software bounds checks are paid per). *)
let mem_accesses t = t.loads + t.stores

let pp ppf t =
  Format.fprintf ppf
    "@[<v>ops: %d@ loads: %d (%d B)@ stores: %d (%d B)@ calls: %d (+%d \
     indirect)@ bulk: fill %d / copy %d@ segments: new %d (%d gr) / set_tag \
     %d (%d gr) / free %d (%d gr)@ pac: sign %d / auth %d"
    (total t) t.loads t.load_bytes t.stores t.store_bytes t.call
    t.call_indirect t.bulk_fill t.bulk_copy t.seg_new t.seg_new_granules
    t.seg_set_tag t.seg_set_tag_granules t.seg_free t.seg_free_granules
    t.ptr_sign t.ptr_auth;
  if t.elided_checks > 0 then
    Format.fprintf ppf "@ elided tag checks: %d" t.elided_checks;
  if t.elided_bounds > 0 then
    Format.fprintf ppf "@ elided bounds checks: %d" t.elided_bounds;
  if t.arena_new_granules > 0 || t.arena_free_granules > 0 then
    Format.fprintf ppf "@ arena granules: new %d / free %d"
      t.arena_new_granules t.arena_free_granules;
  Format.fprintf ppf "@]"
