(** The threaded-code compiler: lowers a prepared function body
    ({!Code.func}) into the flat op array of {!Xcode}.

    The contract is {e bit-identical observable behaviour} with the
    tree-walking interpreter ({!Exec}): same results, same trap messages
    (same prefix taxonomy), same meter totals, same obs event streams
    and tick counts, same chaos-engine draw sequence, same deferred
    fault synchronization points. Everything the two engines share
    semantically lives in {!Rt}, {!Checked} and {!Numerics}; this module
    only decides {e when} those are called and bakes every decision that
    the interpreter re-derives per execution — operand slots, branch
    targets, elision bits, numeric specialisations — into closure
    environments at instantiation time.

    {2 When lowering declines}

    The interpreter executes unvalidated modules with lenient dynamic
    semantics (typed-value traps like ["expected i32"], operand-stack
    underflow traps, leftover values on branches). Compiling those
    faithfully would re-introduce the dynamic checks the threaded engine
    exists to remove, so the compiler runs a small static validator as
    it walks the body; any function that needs a dynamic answer —
    a type mismatch, a stack-height mismatch between branch paths, an
    out-of-range index — raises {!Unsupported} and falls back to the
    interpreter {e for that function only}. Validated wasm always
    compiles; the fallback exists for the adversarial inputs the fuzz
    and chaos suites feed the engine.

    {2 Branches are plain jumps}

    The interpreter's branch semantics keep any extra operand-stack
    values a branch jumps over (it pops the label's arity, unwinds by
    exception, and re-pushes — the stack below is untouched). The
    compiler therefore requires every path into a join point to carry
    the {e same} static operand stack; when that holds, a branch moves
    no values at all and compiles to a bare [fun _ -> target]. Function
    exit is the one join with value movement: leftovers below the
    result values are discarded at the frame boundary (unobservable), so
    [return]/exit ops blit the top [arity] slots down to the operand
    base and jump to the exit index. *)

open Xcode

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

(* ------------------------------------------------------------------ *)
(* Runtime helpers shared by the emitted closures                      *)
(* ------------------------------------------------------------------ *)

let[@inline] gm (inst : Instance.t) =
  match inst.mem with Some m -> m | None -> assert false

(* i32 values travel as sign-extended native ints inside hot ops: the
   slot already holds the sign-extended 64-bit pattern, so decode is a
   truncation and encode a widening — no Int32 boxing on the ALU path. *)
let[@inline] int_of_slot s = Int64.to_int (Int64.bits_of_float s)
let[@inline] slot_of_int v = Int64.float_of_bits (Int64.of_int v)

(* Sign-extend from bit 31 on a 63-bit native int. *)
let[@inline] norm32 v = (v lsl 31) asr 31
let mask32 = 0xffffffff
let slot_true = Int64.float_of_bits 1L
let slot_false = 0.0
let[@inline] slot_of_bool b = if b then slot_true else slot_false

(* Inline guards for the per-op observability tick: the uninstrumented
   hot path pays one load-and-compare; the out-of-line call happens
   only with a sink installed. Identical behaviour — [Rt.obs_tick]
   with no hook is a no-op. *)
let[@inline] tick inst = if !Obs.Hook.hook != None then Rt.obs_tick inst
let[@inline] tick_n inst n = if !Obs.Hook.hook != None then Rt.obs_tick_n inst n

(* Where an access op finds its operands and leaves its result: an
   operand-stack slot (relative to [opbase]) or a local (relative to
   [base]), decided at compile time. Reading through an inline match
   on a closure-constant keeps the slot value unboxed — passing it
   through a closure parameter would box the float at every access. *)
type slotref = Sop of int | Sloc of int

let[@inline] read_slot (st : Instance.t Xcode.state) (r : slotref) =
  match r with
  | Sop h -> Array.unsafe_get st.stk (st.opbase + h)
  | Sloc i -> Array.unsafe_get st.stk (st.base + i)

let[@inline] write_slot (st : Instance.t Xcode.state) (r : slotref) v =
  match r with
  | Sop h -> Array.unsafe_set st.stk (st.opbase + h) v
  | Sloc i -> Array.unsafe_set st.stk (st.base + i) v

(* Width/type specialisation of scalar accesses, matched inside the op
   on a compile-time constant: branch-predicted and fully unboxed.
   [Lk_pack (n, signed)] loads [n] bytes and extends; a packed i32
   load's slot pattern coincides with the i64 one (both are the
   sign-extended-or-zero-extended value), and (i32, Pack32) reduces to
   the plain i32 load, so no separate 32-bit normalisation arm is
   needed. *)
type lkind = Lk_i32 | Lk_i64 | Lk_f32 | Lk_f64 | Lk_pack of int * bool
type skind = Sk_i32 | Sk_i64 | Sk_f32 | Sk_f64 | Sk_pack of int

let[@inline] do_load (k : lkind) mem a : float =
  match k with
  | Lk_i32 -> slot_of_int (Memory.get_32s mem a)
  | Lk_i64 | Lk_f64 -> Int64.float_of_bits (Memory.get_64 mem a)
  | Lk_f32 -> Memory.get_f32' mem a
  | Lk_pack (1, true) -> slot_of_int ((Memory.get_u8 mem a lsl 55) asr 55)
  | Lk_pack (1, false) -> slot_of_int (Memory.get_u8 mem a)
  | Lk_pack (2, true) -> slot_of_int ((Memory.get_u16 mem a lsl 47) asr 47)
  | Lk_pack (2, false) -> slot_of_int (Memory.get_u16 mem a)
  | Lk_pack (4, true) -> slot_of_int (Memory.get_32s mem a)
  | Lk_pack (4, false) -> slot_of_int (Memory.get_32s mem a land mask32)
  | Lk_pack _ -> assert false

let[@inline] do_store (k : skind) mem a (s : float) : unit =
  match k with
  | Sk_i32 -> Memory.set_32 mem a (int_of_slot s)
  | Sk_i64 | Sk_f64 -> Memory.set_64 mem a (Int64.bits_of_float s)
  | Sk_f32 -> Memory.set_f32' mem a s
  | Sk_pack 1 -> Memory.set_u8 mem a (int_of_slot s)
  | Sk_pack 2 -> Memory.set_u16 mem a (int_of_slot s)
  | Sk_pack 4 -> Memory.set_32 mem a (int_of_slot s)
  | Sk_pack _ -> assert false

(* Native-int i64 address resolution, packed as [addr lor (tag lsl 50)]
   in one int so the hot path allocates nothing (a 48-bit address plus
   a compile-time-bounded offset stays below bit 50). Chaos draws, the
   non-canonical trap and the address/tag split replicate
   [Checked.resolve_addr_i64] exactly; with a chaos engine installed
   the boxed arms run instead (identical draw consumption — [draw] is
   effect-free when no engine is installed). *)
let tag_addr_mask = (1 lsl 50) - 1

let resolve64_chaos (s : float) (off : int) : int =
  let p = Int64.bits_of_float s in
  let addr, tag =
    if Arch.Fault_inject.draw Arch.Fault_inject.Ptr_sig then
      Checked.resolve_corrupt_native (Checked.corrupt_sig p) off
    else if Arch.Fault_inject.draw Arch.Fault_inject.Ptr_tag then
      Checked.resolve_corrupt_native (Checked.corrupt_tag p) off
    else begin
      let b = Int64.to_int p in
      if b land 0x00ff_0000_0000_0000 <> 0 then
        Rt.trap "bounds: non-canonical address 0x%Lx" p;
      ((b land 0xffff_ffff_ffff) + off, Arch.Ptr.tag p)
    end
  in
  addr lor (Arch.Tag.to_int tag lsl 50)

let[@inline] resolve64p (s : float) (off : int) : int =
  match Arch.Fault_inject.active () with
  | None ->
      let b = int_of_slot s in
      if b land 0x00ff_0000_0000_0000 <> 0 then
        Rt.trap "bounds: non-canonical address 0x%Lx" (Int64.bits_of_float s);
      ((b land 0xffff_ffff_ffff) + off) lor (((b lsr 56) land 0xf) lsl 50)
  | Some _ -> resolve64_chaos s off

(* The interpreter bridge, installed by [Exec] at link time: invoke
   function [fi] through the tree-walker with the given callee depth.
   [Exec.invoke_idx] performs its own depth check and fuel burn, so the
   threaded caller must not pre-pay them on this arm. *)
let interp_call :
    (Instance.t -> int -> int -> Values.t list -> Values.t list) ref =
  ref (fun _ _ _ _ ->
      raise (Instance.Trap "threaded engine: interpreter bridge not installed"))

(* The call protocol. Caller arguments occupy the top of the caller's
   operand area, at absolute slots [argp .. argp + nargs - 1]; the
   callee's frame starts exactly there (arguments become parameters in
   place, zero copies), and on return the results are blitted down to
   [argp], which is where the caller's next op statically expects them.
   The caller's base/opbase/depth live on the OCaml stack across the
   nested dispatch loop. *)
let call_function (st : Instance.t Xcode.state) fi argp
    (param_tys : Types.val_type array) (_result_tys : Types.val_type array) =
  let inst = st.inst in
  match inst.funcs.(fi) with
  | Instance.Wasm_func { xcode = Some xf; _ } ->
      let d = st.depth + 1 in
      if d > Rt.max_call_depth then
        Rt.trap "stack: call stack exhausted (depth %d)" d;
      Rt.burn_fuel inst;
      inst.call_stack <- fi :: inst.call_stack;
      if Obs.Hook.enabled () then begin
        Obs.Hook.set_instance inst.id;
        Obs.Hook.event
          (Obs.Event.Func_enter { idx = fi; name = Instance.func_name inst fi })
      end;
      let save_base = st.base
      and save_opbase = st.opbase
      and save_depth = st.depth in
      Xcode.ensure st (argp + xf.frame_slots);
      if xf.nlocals > 0 then Array.fill st.stk (argp + xf.nparams) xf.nlocals 0.0;
      st.base <- argp;
      st.opbase <- argp + xf.nparams + xf.nlocals;
      st.depth <- d;
      let ops = xf.ops in
      let n = Array.length ops in
      let rec go pc = if pc < n then go ((Array.unsafe_get ops pc) st) in
      go 0;
      (* Function return is a synchronization point (§4.2): deferred
         Async/Asymmetric faults are reported here, before the frame is
         popped — a trap leaves the frozen call stack as the crash
         backtrace, exactly like the interpreter. *)
      Rt.drain_deferred inst;
      if Obs.Hook.enabled () then
        Obs.Hook.event
          (Obs.Event.Func_leave { idx = fi; name = Instance.func_name inst fi });
      (match inst.call_stack with
      | _ :: tl -> inst.call_stack <- tl
      | [] -> ());
      if xf.result_arity > 0 then
        Array.blit st.stk st.opbase st.stk argp xf.result_arity;
      st.base <- save_base;
      st.opbase <- save_opbase;
      st.depth <- save_depth
  | Instance.Wasm_func { xcode = None; _ } ->
      (* Per-function interpreter fallback: box the arguments, let the
         tree-walker run the callee (it does its own depth/fuel/obs/sync
         bookkeeping), and reinterpret the results as slots. *)
      let nargs = Array.length param_tys in
      let args =
        List.init nargs (fun j ->
            Xcode.value_of_slot param_tys.(j) st.stk.(argp + j))
      in
      let results = !interp_call inst (st.depth + 1) fi args in
      List.iteri (fun j v -> st.stk.(argp + j) <- Xcode.slot_of_value v) results
  | Instance.Host_func { fn; ty = _; name } ->
      let d = st.depth + 1 in
      if d > Rt.max_call_depth then
        Rt.trap "stack: call stack exhausted (depth %d)" d;
      Rt.burn_fuel inst;
      if Obs.Hook.enabled () then begin
        Obs.Hook.set_instance inst.id;
        Obs.Hook.event (Obs.Event.Host_call { name })
      end;
      (* A host call is a synchronization point: report any deferred
         fault latched before control leaves wasm. *)
      Rt.drain_deferred inst;
      let nargs = Array.length param_tys in
      let args =
        List.init nargs (fun j ->
            Xcode.value_of_slot param_tys.(j) st.stk.(argp + j))
      in
      let results =
        try fn inst args
        with Invalid_argument msg -> Rt.trap "host %s: %s" name msg
      in
      List.iteri (fun j v -> st.stk.(argp + j) <- Xcode.slot_of_value v) results

(** Run a compiled body from the interpreter side (entry calls and the
    interp-to-threaded bridge). The caller — [Exec.invoke_idx] — has
    already done the depth check, fuel burn, call-stack push and
    [Func_enter] event, and will drain deferred faults and pop the
    frame afterwards; this only executes the body. [depth] is the
    callee frame's depth. *)
let run_body (inst : Instance.t) ~depth (xf : Instance.t Xcode.func)
    (args : Values.t list) : Values.t list =
  let st =
    {
      inst;
      stk = Array.make (max Xcode.initial_slots xf.frame_slots) 0.0;
      base = 0;
      opbase = xf.nparams + xf.nlocals;
      sp = xf.nparams + xf.nlocals;
      depth;
    }
  in
  List.iteri (fun j v -> st.stk.(j) <- Xcode.slot_of_value v) args;
  let ops = xf.ops in
  let n = Array.length ops in
  let rec go pc = if pc < n then go ((Array.unsafe_get ops pc) st) in
  go 0;
  List.init xf.result_arity (fun j ->
      Xcode.value_of_slot xf.result_tys.(j) st.stk.(st.opbase + j))

(* ------------------------------------------------------------------ *)
(* Compile-time numeric specialisation                                 *)
(* ------------------------------------------------------------------ *)

let i32_binop_fn (op : Ast.ibinop) : int -> int -> int =
  match op with
  | Add -> fun x y -> norm32 (x + y)
  | Sub -> fun x y -> norm32 (x - y)
  | Mul -> fun x y -> norm32 (x * y)
  | DivS ->
      fun x y ->
        if y = 0 then Rt.trap "integer divide by zero"
        else if x = -0x80000000 && y = -1 then Rt.trap "integer overflow"
        else x / y
  | DivU ->
      fun x y ->
        if y = 0 then Rt.trap "integer divide by zero"
        else norm32 ((x land mask32) / (y land mask32))
  | RemS ->
      fun x y ->
        if y = 0 then Rt.trap "integer divide by zero"
        else if x = -0x80000000 && y = -1 then 0
        else x mod y
  | RemU ->
      fun x y ->
        if y = 0 then Rt.trap "integer divide by zero"
        else norm32 ((x land mask32) mod (y land mask32))
  | And -> fun x y -> x land y
  | Or -> fun x y -> x lor y
  | Xor -> fun x y -> x lxor y
  | Shl -> fun x y -> norm32 (x lsl (y land 31))
  | ShrS -> fun x y -> x asr (y land 31)
  | ShrU -> fun x y -> norm32 ((x land mask32) lsr (y land 31))
  | Rotl ->
      fun x y -> Int32.to_int (Values.rotl32 (Int32.of_int x) (Int32.of_int y))
  | Rotr ->
      fun x y -> Int32.to_int (Values.rotr32 (Int32.of_int x) (Int32.of_int y))

(* Whether a fused group may absorb this ibinop (no trapping paths, so
   the group has a single observable failure order). *)
let i32_binop_fusable : Ast.ibinop -> bool = function
  | Add | Sub | Mul | And | Or | Xor | Shl | ShrS | ShrU -> true
  | DivS | DivU | RemS | RemU | Rotl | Rotr -> false

let i32_relop_fn (op : Ast.irelop) : int -> int -> bool =
  match op with
  | Eq -> fun x y -> x = y
  | Ne -> fun x y -> x <> y
  | LtS -> fun x y -> x < y
  | LtU -> fun x y -> x land mask32 < y land mask32
  | GtS -> fun x y -> x > y
  | GtU -> fun x y -> x land mask32 > y land mask32
  | LeS -> fun x y -> x <= y
  | LeU -> fun x y -> x land mask32 <= y land mask32
  | GeS -> fun x y -> x >= y
  | GeU -> fun x y -> x land mask32 >= y land mask32

let ibinop_bump (op : Ast.ibinop) : Meter.t -> unit =
  match op with
  | Mul -> fun m -> m.imul <- m.imul + 1
  | DivS | DivU | RemS | RemU -> fun m -> m.idiv <- m.idiv + 1
  | _ -> fun m -> m.ialu <- m.ialu + 1

let fbinop_bump (op : Ast.fbinop) : Meter.t -> unit =
  match op with
  | FMul -> fun m -> m.fmul <- m.fmul + 1
  | FDiv -> fun m -> m.fdiv <- m.fdiv + 1
  | _ -> fun m -> m.falu <- m.falu + 1

(* Conversion ops as (source type, result type, slot transform). *)
let cvt_sig (op : Ast.cvtop) :
    Types.val_type * Types.val_type * (float -> float) =
  let open Types in
  match op with
  | I32WrapI64 ->
      (I64, I32, fun s -> Xcode.slot_of_i32 (Int64.to_int32 (Xcode.i64_of_slot s)))
  | I64ExtendI32S ->
      (* an i32 slot already holds the sign-extended 64-bit pattern *)
      (I32, I64, fun s -> s)
  | I64ExtendI32U ->
      ( I32,
        I64,
        fun s ->
          Xcode.slot_of_i64 (Int64.logand (Int64.bits_of_float s) 0xffffffffL) )
  | I32TruncF32S ->
      (F32, I32, fun s -> Xcode.slot_of_i32 (Numerics.trunc_to_i32 ~signed:true s))
  | I32TruncF32U ->
      (F32, I32, fun s -> Xcode.slot_of_i32 (Numerics.trunc_to_i32 ~signed:false s))
  | I32TruncF64S ->
      (F64, I32, fun s -> Xcode.slot_of_i32 (Numerics.trunc_to_i32 ~signed:true s))
  | I32TruncF64U ->
      (F64, I32, fun s -> Xcode.slot_of_i32 (Numerics.trunc_to_i32 ~signed:false s))
  | I64TruncF32S ->
      (F32, I64, fun s -> Xcode.slot_of_i64 (Numerics.trunc_to_i64 ~signed:true s))
  | I64TruncF32U ->
      (F32, I64, fun s -> Xcode.slot_of_i64 (Numerics.trunc_to_i64 ~signed:false s))
  | I64TruncF64S ->
      (F64, I64, fun s -> Xcode.slot_of_i64 (Numerics.trunc_to_i64 ~signed:true s))
  | I64TruncF64U ->
      (F64, I64, fun s -> Xcode.slot_of_i64 (Numerics.trunc_to_i64 ~signed:false s))
  | F32ConvertI32S ->
      (I32, F32, fun s -> Values.to_f32 (float_of_int (int_of_slot s)))
  | F32ConvertI32U ->
      (I32, F32, fun s -> Values.to_f32 (Numerics.u32_to_float (Xcode.i32_of_slot s)))
  | F32ConvertI64S ->
      (I64, F32, fun s -> Values.to_f32 (Int64.to_float (Xcode.i64_of_slot s)))
  | F32ConvertI64U ->
      (I64, F32, fun s -> Values.to_f32 (Numerics.u64_to_float (Xcode.i64_of_slot s)))
  | F64ConvertI32S -> (I32, F64, fun s -> float_of_int (int_of_slot s))
  | F64ConvertI32U ->
      (I32, F64, fun s -> Numerics.u32_to_float (Xcode.i32_of_slot s))
  | F64ConvertI64S -> (I64, F64, fun s -> Int64.to_float (Xcode.i64_of_slot s))
  | F64ConvertI64U ->
      (I64, F64, fun s -> Numerics.u64_to_float (Xcode.i64_of_slot s))
  | F32DemoteF64 -> (F64, F32, Values.to_f32)
  | F64PromoteF32 -> (F32, F64, fun s -> s)
  | I32ReinterpretF32 ->
      (F32, I32, fun s -> Xcode.slot_of_i32 (Int32.bits_of_float s))
  | I64ReinterpretF64 -> (F64, I64, fun s -> s)
  | F32ReinterpretI32 ->
      (I32, F32, fun s -> Int32.float_of_bits (Xcode.i32_of_slot s))
  | F64ReinterpretI64 -> (I64, F64, fun s -> s)

(* Scalar load specialisation: (access width, width/extension kind).
   A packed i32 load's slot pattern coincides with the i64 one for
   sub-32-bit widths, and (i32, Pack32) is exactly the plain i32 load,
   so [lkind] needs no result-type dimension. *)
let load_kind (ty : Types.num_type)
    (pack : (Ast.pack_size * Ast.extension) option) : int * lkind =
  match (ty, pack) with
  | Types.I32, None -> (4, Lk_i32)
  | Types.I64, None -> (8, Lk_i64)
  | Types.F32, None -> (4, Lk_f32)
  | Types.F64, None -> (8, Lk_f64)
  | Types.I32, Some (Ast.Pack32, _) -> (4, Lk_i32)
  | (Types.I32 | Types.I64), Some (p, ext) ->
      let n = match p with Ast.Pack8 -> 1 | Pack16 -> 2 | Pack32 -> 4 in
      (n, Lk_pack (n, ext = Ast.SX))
  | (Types.F32 | Types.F64), Some _ -> unsupported "packed load of float"

(* Scalar store specialisation. Packed stores write the slot's low
   bytes directly: the slot pattern of an i32 equals [Int64.of_int32]
   of the value, which is exactly what the interpreter hands
   [Memory.store_n]. *)
let store_kind (ty : Types.num_type) (pack : Ast.pack_size option) :
    int * skind =
  match (ty, pack) with
  | Types.I32, None -> (4, Sk_i32)
  | Types.I64, None -> (8, Sk_i64)
  | Types.F32, None -> (4, Sk_f32)
  | Types.F64, None -> (8, Sk_f64)
  | (Types.I32 | Types.I64), Some p ->
      let n = match p with Ast.Pack8 -> 1 | Pack16 -> 2 | Pack32 -> 4 in
      (n, Sk_pack n)
  | (Types.F32 | Types.F64), Some _ -> unsupported "packed float store"

(* Static memarg offsets on the native path must keep the effective
   address within the packed 50-bit address field; wasm encodes them
   as u32 (u64 under memory64), so anything above 2^31 — always out of
   bounds of the 1 GiB cap anyway — falls back to the interpreter. *)
let native_off (off : int64) : int =
  if off < 0L || off > 0x7fff_ffffL then
    unsupported "memarg offset out of native range";
  Int64.to_int off

(* ------------------------------------------------------------------ *)
(* The compiler                                                        *)
(* ------------------------------------------------------------------ *)

type frame = {
  l_target : int ref;  (** op index branches to this label jump to *)
  l_kind : [ `Block | `Loop | `Func ];
  l_arity : int;
  l_entry : Types.val_type list;
      (** [`Loop]: the static stack a back-edge must reproduce;
          [`Func]: the function's result types, topmost first *)
  mutable l_merge : Types.val_type list option;
      (** [`Block]: the static stack every path into the join agreed
          on; [None] until the first inbound path *)
}

let compile ~(m : Ast.module_) ~(name : string) ~(ty : Types.func_type)
    ~(func : Ast.func) ~(code : Code.func) ~(mtr : Meter.t) :
    Instance.t Xcode.func option * Xcode.stats =
  let nparams = List.length ty.params in
  let local_tys = Array.of_list (ty.params @ func.locals) in
  let nlocals = Array.length local_tys - nparams in
  let result_arity = code.result_arity in
  let rev_results = List.rev ty.results in
  let global_tys =
    Array.of_list
      (List.map (fun (g : Ast.global) -> Values.type_of g.g_init) m.globals)
  in
  let n_funcs = Ast.num_imports m + List.length m.funcs in
  let mem_idx =
    match m.memory with
    | Some mt -> Some mt.Types.mem_idx
    | None -> None
  in
  (* --- static state --- *)
  let ts : Types.val_type list ref = ref [] in
  let h = ref 0 in
  let max_h = ref 0 in
  let push t =
    ts := t :: !ts;
    incr h;
    if !h > !max_h then max_h := !h
  in
  let pop () =
    match !ts with
    | [] -> unsupported "operand stack underflow"
    | t :: r ->
        ts := r;
        decr h;
        t
  in
  let pop_ty t =
    let t' = pop () in
    if t' <> t then
      unsupported "expected %s, got %s"
        (Types.string_of_num_type t)
        (Types.string_of_num_type t')
  in
  let pop_addr () =
    match pop () with
    | (Types.I32 | Types.I64) as t -> t
    | t -> unsupported "bad address operand %s" (Types.string_of_num_type t)
  in
  (* --- op builder --- *)
  let rev_ops : Instance.t Xcode.op list ref = ref [] in
  let count = ref 0 in
  let emit f =
    let idx = !count in
    count := idx + 1;
    rev_ops := f idx :: !rev_ops
  in
  let emit1 mk = emit (fun idx -> mk (idx + 1)) in
  (* --- statistics --- *)
  let n_instrs = ref 0 in
  let n_fused = ref 0 in
  let n_acc = ref 0 in
  let n_elided = ref 0 in
  let idioms : (string * int ref) list ref = ref [] in
  let bump_idiom name =
    match List.assoc_opt name !idioms with
    | Some r -> incr r
    | None -> idioms := (name, ref 1) :: !idioms
  in
  let elide_of id =
    let e = Code.elidable code.elide id in
    incr n_acc;
    if e then incr n_elided;
    e
  in
  let belide_of id = Code.elidable code.belide id in
  let arena_of id = Code.elidable code.arena id in
  (* [Rt.meter_br] against the baked meter: fuel first, then the
     branch counter, exactly the interpreter's order. *)
  let meter_br inst =
    Rt.burn_fuel inst;
    mtr.Meter.branch <- mtr.Meter.branch + 1
  in
  (* ---------------------------------------------------------------- *)
  (* Access emission (shared by singleton and fused forms)             *)
  (* ---------------------------------------------------------------- *)
  (* Emit-time selection of the full access path for a load: native
     address resolution by the operand's static type (which fixes the
     chaos draw sequence), elided vs checked verdict baked from the
     analysis bitset, and the width-specialised memory primitive,
     matched on a closure constant. The single native bounds check
     [addr + len <= length_bytes] is equivalent to the interpreter's
     ([addr >= 0] holds by construction: a zero-extended i32 or 48-bit
     address field plus a compile-time-bounded offset), and the trap
     text is [Checked]'s verbatim. The tag check exists only on the
     checked arms, guarded on [enforce_tags] so untagged configs never
     box the address. *)
  let load_body ~(addr_ty : Types.val_type) ~elide ~ebounds ~len ~(lk : lkind)
      ~(off : int) ~(src : slotref) ~(dst : slotref) :
      Instance.t Xcode.state -> unit =
    (* The fully-elided arms drop the span compare too; the raw memory
       primitive is still total (it raises), so an analyzer bug degrades
       to the interpreter's own bounds trap rather than a crash. *)
    match (addr_ty, elide, ebounds) with
    | Types.I32, true, true ->
        fun st ->
          let inst = st.inst in
          let mem = gm inst in
          let addr = (int_of_slot (read_slot st src) land mask32) + off in
          mtr.Meter.elided_checks <- mtr.Meter.elided_checks + 1;
          if !Obs.Hook.hook != None then Obs.Hook.event Obs.Event.Check_elided;
          mtr.Meter.elided_bounds <- mtr.Meter.elided_bounds + 1;
          if !Obs.Hook.hook != None then Obs.Hook.event Obs.Event.Bounds_elided;
          mtr.Meter.loads <- mtr.Meter.loads + 1;
          mtr.Meter.load_bytes <- mtr.Meter.load_bytes + len;
          write_slot st dst
            (try do_load lk mem addr
             with Memory.Out_of_bounds _ | Invalid_argument _ ->
               Rt.trap "bounds: out of bounds memory access")
    | Types.I32, false, true ->
        fun st ->
          let inst = st.inst in
          let mem = gm inst in
          let addr = (int_of_slot (read_slot st src) land mask32) + off in
          mtr.Meter.elided_bounds <- mtr.Meter.elided_bounds + 1;
          if !Obs.Hook.hook != None then Obs.Hook.event Obs.Event.Bounds_elided;
          if inst.enforce_tags then
            Checked.check_tags_native inst Arch.Mte.Load ~addr
              ~tag:Arch.Tag.zero ~len;
          mtr.Meter.loads <- mtr.Meter.loads + 1;
          mtr.Meter.load_bytes <- mtr.Meter.load_bytes + len;
          write_slot st dst
            (try do_load lk mem addr
             with Memory.Out_of_bounds _ | Invalid_argument _ ->
               Rt.trap "bounds: out of bounds memory access")
    | _, true, true ->
        fun st ->
          let inst = st.inst in
          let mem = gm inst in
          let addr = resolve64p (read_slot st src) off land tag_addr_mask in
          mtr.Meter.elided_checks <- mtr.Meter.elided_checks + 1;
          if !Obs.Hook.hook != None then Obs.Hook.event Obs.Event.Check_elided;
          mtr.Meter.elided_bounds <- mtr.Meter.elided_bounds + 1;
          if !Obs.Hook.hook != None then Obs.Hook.event Obs.Event.Bounds_elided;
          mtr.Meter.loads <- mtr.Meter.loads + 1;
          mtr.Meter.load_bytes <- mtr.Meter.load_bytes + len;
          write_slot st dst
            (try do_load lk mem addr
             with Memory.Out_of_bounds _ | Invalid_argument _ ->
               Rt.trap "bounds: out of bounds memory access")
    | _, false, true ->
        fun st ->
          let inst = st.inst in
          let mem = gm inst in
          let pa = resolve64p (read_slot st src) off in
          let addr = pa land tag_addr_mask in
          mtr.Meter.elided_bounds <- mtr.Meter.elided_bounds + 1;
          if !Obs.Hook.hook != None then Obs.Hook.event Obs.Event.Bounds_elided;
          if inst.enforce_tags then
            Checked.check_tags_native inst Arch.Mte.Load ~addr
              ~tag:(Arch.Tag.of_int (pa lsr 50))
              ~len;
          mtr.Meter.loads <- mtr.Meter.loads + 1;
          mtr.Meter.load_bytes <- mtr.Meter.load_bytes + len;
          write_slot st dst
            (try do_load lk mem addr
             with Memory.Out_of_bounds _ | Invalid_argument _ ->
               Rt.trap "bounds: out of bounds memory access")
    | Types.I32, true, false ->
        fun st ->
          let inst = st.inst in
          let mem = gm inst in
          let addr = (int_of_slot (read_slot st src) land mask32) + off in
          if addr + len > Memory.length_bytes mem then
            Rt.trap "bounds: out of bounds memory access";
          mtr.Meter.elided_checks <- mtr.Meter.elided_checks + 1;
          if !Obs.Hook.hook != None then Obs.Hook.event Obs.Event.Check_elided;
          mtr.Meter.loads <- mtr.Meter.loads + 1;
          mtr.Meter.load_bytes <- mtr.Meter.load_bytes + len;
          write_slot st dst (do_load lk mem addr)
    | Types.I32, false, false ->
        fun st ->
          let inst = st.inst in
          let mem = gm inst in
          let addr = (int_of_slot (read_slot st src) land mask32) + off in
          if addr + len > Memory.length_bytes mem then
            Rt.trap "bounds: out of bounds memory access";
          if !Obs.Hook.hook != None then Obs.Hook.span_check len;
          if inst.enforce_tags then
            Checked.check_tags_native inst Arch.Mte.Load ~addr
              ~tag:Arch.Tag.zero ~len;
          mtr.Meter.loads <- mtr.Meter.loads + 1;
          mtr.Meter.load_bytes <- mtr.Meter.load_bytes + len;
          write_slot st dst (do_load lk mem addr)
    | _, true, false ->
        fun st ->
          let inst = st.inst in
          let mem = gm inst in
          let addr = resolve64p (read_slot st src) off land tag_addr_mask in
          if addr + len > Memory.length_bytes mem then
            Rt.trap "bounds: out of bounds memory access";
          mtr.Meter.elided_checks <- mtr.Meter.elided_checks + 1;
          if !Obs.Hook.hook != None then Obs.Hook.event Obs.Event.Check_elided;
          mtr.Meter.loads <- mtr.Meter.loads + 1;
          mtr.Meter.load_bytes <- mtr.Meter.load_bytes + len;
          write_slot st dst (do_load lk mem addr)
    | _, false, false ->
        fun st ->
          let inst = st.inst in
          let mem = gm inst in
          let pa = resolve64p (read_slot st src) off in
          let addr = pa land tag_addr_mask in
          if addr + len > Memory.length_bytes mem then
            Rt.trap "bounds: out of bounds memory access";
          if !Obs.Hook.hook != None then Obs.Hook.span_check len;
          if inst.enforce_tags then
            Checked.check_tags_native inst Arch.Mte.Load ~addr
              ~tag:(Arch.Tag.of_int (pa lsr 50))
              ~len;
          mtr.Meter.loads <- mtr.Meter.loads + 1;
          mtr.Meter.load_bytes <- mtr.Meter.load_bytes + len;
          write_slot st dst (do_load lk mem addr)
  in
  let store_body ~(addr_ty : Types.val_type) ~elide ~ebounds ~len ~(sk : skind)
      ~(off : int) ~(src : slotref) ~(vsrc : slotref) :
      Instance.t Xcode.state -> unit =
    match (addr_ty, elide, ebounds) with
    | Types.I32, true, true ->
        fun st ->
          let inst = st.inst in
          let mem = gm inst in
          let addr = (int_of_slot (read_slot st src) land mask32) + off in
          mtr.Meter.elided_checks <- mtr.Meter.elided_checks + 1;
          if !Obs.Hook.hook != None then Obs.Hook.event Obs.Event.Check_elided;
          mtr.Meter.elided_bounds <- mtr.Meter.elided_bounds + 1;
          if !Obs.Hook.hook != None then Obs.Hook.event Obs.Event.Bounds_elided;
          mtr.Meter.stores <- mtr.Meter.stores + 1;
          mtr.Meter.store_bytes <- mtr.Meter.store_bytes + len;
          (try do_store sk mem addr (read_slot st vsrc)
           with Memory.Out_of_bounds _ | Invalid_argument _ ->
             Rt.trap "bounds: out of bounds memory access")
    | Types.I32, false, true ->
        fun st ->
          let inst = st.inst in
          let mem = gm inst in
          let addr = (int_of_slot (read_slot st src) land mask32) + off in
          mtr.Meter.elided_bounds <- mtr.Meter.elided_bounds + 1;
          if !Obs.Hook.hook != None then Obs.Hook.event Obs.Event.Bounds_elided;
          if inst.enforce_tags then
            Checked.check_tags_native inst Arch.Mte.Store ~addr
              ~tag:Arch.Tag.zero ~len;
          mtr.Meter.stores <- mtr.Meter.stores + 1;
          mtr.Meter.store_bytes <- mtr.Meter.store_bytes + len;
          (try do_store sk mem addr (read_slot st vsrc)
           with Memory.Out_of_bounds _ | Invalid_argument _ ->
             Rt.trap "bounds: out of bounds memory access")
    | _, true, true ->
        fun st ->
          let inst = st.inst in
          let mem = gm inst in
          let addr = resolve64p (read_slot st src) off land tag_addr_mask in
          mtr.Meter.elided_checks <- mtr.Meter.elided_checks + 1;
          if !Obs.Hook.hook != None then Obs.Hook.event Obs.Event.Check_elided;
          mtr.Meter.elided_bounds <- mtr.Meter.elided_bounds + 1;
          if !Obs.Hook.hook != None then Obs.Hook.event Obs.Event.Bounds_elided;
          mtr.Meter.stores <- mtr.Meter.stores + 1;
          mtr.Meter.store_bytes <- mtr.Meter.store_bytes + len;
          (try do_store sk mem addr (read_slot st vsrc)
           with Memory.Out_of_bounds _ | Invalid_argument _ ->
             Rt.trap "bounds: out of bounds memory access")
    | _, false, true ->
        fun st ->
          let inst = st.inst in
          let mem = gm inst in
          let pa = resolve64p (read_slot st src) off in
          let addr = pa land tag_addr_mask in
          mtr.Meter.elided_bounds <- mtr.Meter.elided_bounds + 1;
          if !Obs.Hook.hook != None then Obs.Hook.event Obs.Event.Bounds_elided;
          if inst.enforce_tags then
            Checked.check_tags_native inst Arch.Mte.Store ~addr
              ~tag:(Arch.Tag.of_int (pa lsr 50))
              ~len;
          mtr.Meter.stores <- mtr.Meter.stores + 1;
          mtr.Meter.store_bytes <- mtr.Meter.store_bytes + len;
          (try do_store sk mem addr (read_slot st vsrc)
           with Memory.Out_of_bounds _ | Invalid_argument _ ->
             Rt.trap "bounds: out of bounds memory access")
    | Types.I32, true, false ->
        fun st ->
          let inst = st.inst in
          let mem = gm inst in
          let addr = (int_of_slot (read_slot st src) land mask32) + off in
          if addr + len > Memory.length_bytes mem then
            Rt.trap "bounds: out of bounds memory access";
          mtr.Meter.elided_checks <- mtr.Meter.elided_checks + 1;
          if !Obs.Hook.hook != None then Obs.Hook.event Obs.Event.Check_elided;
          mtr.Meter.stores <- mtr.Meter.stores + 1;
          mtr.Meter.store_bytes <- mtr.Meter.store_bytes + len;
          do_store sk mem addr (read_slot st vsrc)
    | Types.I32, false, false ->
        fun st ->
          let inst = st.inst in
          let mem = gm inst in
          let addr = (int_of_slot (read_slot st src) land mask32) + off in
          if addr + len > Memory.length_bytes mem then
            Rt.trap "bounds: out of bounds memory access";
          if !Obs.Hook.hook != None then Obs.Hook.span_check len;
          if inst.enforce_tags then
            Checked.check_tags_native inst Arch.Mte.Store ~addr
              ~tag:Arch.Tag.zero ~len;
          mtr.Meter.stores <- mtr.Meter.stores + 1;
          mtr.Meter.store_bytes <- mtr.Meter.store_bytes + len;
          do_store sk mem addr (read_slot st vsrc)
    | _, true, false ->
        fun st ->
          let inst = st.inst in
          let mem = gm inst in
          let addr = resolve64p (read_slot st src) off land tag_addr_mask in
          if addr + len > Memory.length_bytes mem then
            Rt.trap "bounds: out of bounds memory access";
          mtr.Meter.elided_checks <- mtr.Meter.elided_checks + 1;
          if !Obs.Hook.hook != None then Obs.Hook.event Obs.Event.Check_elided;
          mtr.Meter.stores <- mtr.Meter.stores + 1;
          mtr.Meter.store_bytes <- mtr.Meter.store_bytes + len;
          do_store sk mem addr (read_slot st vsrc)
    | _, false, false ->
        fun st ->
          let inst = st.inst in
          let mem = gm inst in
          let pa = resolve64p (read_slot st src) off in
          let addr = pa land tag_addr_mask in
          if addr + len > Memory.length_bytes mem then
            Rt.trap "bounds: out of bounds memory access";
          if !Obs.Hook.hook != None then Obs.Hook.span_check len;
          if inst.enforce_tags then
            Checked.check_tags_native inst Arch.Mte.Store ~addr
              ~tag:(Arch.Tag.of_int (pa lsr 50))
              ~len;
          mtr.Meter.stores <- mtr.Meter.stores + 1;
          mtr.Meter.store_bytes <- mtr.Meter.store_bytes + len;
          do_store sk mem addr (read_slot st vsrc)
  in
  (* ---------------------------------------------------------------- *)
  (* Branch actions                                                    *)
  (* ---------------------------------------------------------------- *)
  (* Validate a branch to [l] from the current static stack and return
     the runtime "take the branch" continuation. Loop back-edges pay
     the loop label's catch-clause [meter_br] on top of the branch's
     own (the interpreter's [Loop] handler re-meters on every
     iteration); function-label branches blit the top [arity] slots to
     the operand base, discarding leftovers at the frame boundary. *)
  let branch_action labels (l : Code.label) : Instance.t Xcode.state -> int =
    match l with
    | Code.Bad_label n -> fun _ -> Rt.trap "branch depth %d out of range" n
    | Code.L { depth; _ } -> (
        let fr =
          match List.nth_opt labels depth with
          | Some fr -> fr
          | None -> assert false (* Code.resolve bounds label depths *)
        in
        let tgt = fr.l_target in
        match fr.l_kind with
        | `Loop ->
            if !ts <> fr.l_entry then
              unsupported "loop back-edge stack mismatch";
            fun st ->
              meter_br st.inst;
              !tgt
        | `Block ->
            if !h < fr.l_arity then unsupported "operand stack underflow";
            (match fr.l_merge with
            | None -> fr.l_merge <- Some !ts
            | Some s -> if s <> !ts then unsupported "branch join stack mismatch");
            fun _ -> !tgt
        | `Func ->
            let arity = fr.l_arity in
            if !h < arity then unsupported "operand stack underflow";
            let rec firstn n = function
              | _ when n = 0 -> []
              | [] -> []
              | x :: r -> x :: firstn (n - 1) r
            in
            if firstn arity !ts <> fr.l_entry then
              unsupported "result type mismatch at function exit";
            let k = !h - arity in
            if k = 0 || arity = 0 then fun _ -> !tgt
            else if arity = 1 then fun st ->
              let stk = st.stk in
              Array.unsafe_set stk st.opbase
                (Array.unsafe_get stk (st.opbase + k));
              !tgt
            else fun st ->
              Array.blit st.stk (st.opbase + k) st.stk st.opbase arity;
              !tgt)
  in
  (* The blit-at-exit for [return] and end-of-body fall-through. *)
  let exit_move () =
    if !h < result_arity then unsupported "operand stack underflow";
    let rec firstn n = function
      | _ when n = 0 -> []
      | [] -> []
      | x :: r -> x :: firstn (n - 1) r
    in
    if firstn result_arity !ts <> rev_results then
      unsupported "result type mismatch at function exit";
    let k = !h - result_arity in
    let arity = result_arity in
    if k = 0 || arity = 0 then fun (_ : Instance.t Xcode.state) -> ()
    else if arity = 1 then fun st ->
      let stk = st.stk in
      Array.unsafe_set stk st.opbase (Array.unsafe_get stk (st.opbase + k))
    else fun st -> Array.blit st.stk (st.opbase + k) st.stk st.opbase arity
  in
  (* ---------------------------------------------------------------- *)
  (* Singleton instruction compilation                                 *)
  (* ---------------------------------------------------------------- *)
  let compile_basic (ins : Ast.instr) (id : int) : [ `Live | `Dead ] =
    match ins with
    | Ast.Block _ | Ast.Loop _ | Ast.If _ | Ast.Br _ | Ast.BrIf _
    | Ast.BrTable _ | Ast.Return ->
        assert false (* control flow is resolved by Code.prepare *)
    | Ast.Unreachable ->
        emit1 (fun _next st ->
            tick st.inst;
            Rt.trap "unreachable executed");
        `Dead
    | Ast.Nop ->
        emit1 (fun next st ->
            tick st.inst;
            next);
        `Live
    | Ast.Drop ->
        ignore (pop ());
        emit1 (fun next st ->
            tick st.inst;
            next);
        `Live
    | Ast.Select ->
        pop_ty Types.I32;
        let t2 = pop () in
        let t1 = pop () in
        if t1 <> t2 then unsupported "select arm type mismatch";
        push t1;
        let hres = !h - 1 in
        emit1 (fun next st ->
            tick st.inst;
            mtr.select <- mtr.select + 1;
            let stk = st.stk in
            let p = st.opbase + hres in
            if Int64.bits_of_float (Array.unsafe_get stk (p + 2)) = 0L then
              Array.unsafe_set stk p (Array.unsafe_get stk (p + 1));
            next);
        `Live
    | Ast.LocalGet i ->
        if i >= Array.length local_tys then unsupported "local index out of range";
        push local_tys.(i);
        let hres = !h - 1 in
        emit1 (fun next st ->
            tick st.inst;
            mtr.local_access <- mtr.local_access + 1;
            let stk = st.stk in
            Array.unsafe_set stk (st.opbase + hres)
              (Array.unsafe_get stk (st.base + i));
            next);
        `Live
    | Ast.LocalSet i ->
        if i >= Array.length local_tys then unsupported "local index out of range";
        pop_ty local_tys.(i);
        let hsrc = !h in
        emit1 (fun next st ->
            tick st.inst;
            mtr.local_access <- mtr.local_access + 1;
            let stk = st.stk in
            Array.unsafe_set stk (st.base + i)
              (Array.unsafe_get stk (st.opbase + hsrc));
            next);
        `Live
    | Ast.LocalTee i ->
        if i >= Array.length local_tys then unsupported "local index out of range";
        pop_ty local_tys.(i);
        push local_tys.(i);
        let hsrc = !h - 1 in
        emit1 (fun next st ->
            tick st.inst;
            mtr.local_access <- mtr.local_access + 1;
            let stk = st.stk in
            Array.unsafe_set stk (st.base + i)
              (Array.unsafe_get stk (st.opbase + hsrc));
            next);
        `Live
    | Ast.GlobalGet i ->
        if i >= Array.length global_tys then
          unsupported "global index out of range";
        push global_tys.(i);
        let hres = !h - 1 in
        emit1 (fun next st ->
            tick st.inst;
            mtr.global_access <- mtr.global_access + 1;
            Array.unsafe_set st.stk (st.opbase + hres)
              (Xcode.slot_of_value (Array.unsafe_get st.inst.globals i));
            next);
        `Live
    | Ast.GlobalSet i ->
        if i >= Array.length global_tys then
          unsupported "global index out of range";
        let gty = global_tys.(i) in
        pop_ty gty;
        let hsrc = !h in
        emit1 (fun next st ->
            tick st.inst;
            mtr.global_access <- mtr.global_access + 1;
            Array.unsafe_set st.inst.globals i
              (Xcode.value_of_slot gty
                 (Array.unsafe_get st.stk (st.opbase + hsrc)));
            next);
        `Live
    | Ast.I32Const v ->
        push Types.I32;
        let hres = !h - 1 in
        let sc = Xcode.slot_of_i32 v in
        emit1 (fun next st ->
            tick st.inst;
            mtr.const <- mtr.const + 1;
            Array.unsafe_set st.stk (st.opbase + hres) sc;
            next);
        `Live
    | Ast.I64Const v ->
        push Types.I64;
        let hres = !h - 1 in
        let sc = Xcode.slot_of_i64 v in
        emit1 (fun next st ->
            tick st.inst;
            mtr.const <- mtr.const + 1;
            Array.unsafe_set st.stk (st.opbase + hres) sc;
            next);
        `Live
    | Ast.F32Const v ->
        push Types.F32;
        let hres = !h - 1 in
        let sc = Values.to_f32 v in
        emit1 (fun next st ->
            tick st.inst;
            mtr.const <- mtr.const + 1;
            Array.unsafe_set st.stk (st.opbase + hres) sc;
            next);
        `Live
    | Ast.F64Const v ->
        push Types.F64;
        let hres = !h - 1 in
        emit1 (fun next st ->
            tick st.inst;
            mtr.const <- mtr.const + 1;
            Array.unsafe_set st.stk (st.opbase + hres) v;
            next);
        `Live
    | Ast.IUnop (w, op) -> (
        match w with
        | Ast.W32 ->
            pop_ty Types.I32;
            push Types.I32;
            let hres = !h - 1 in
            emit1 (fun next st ->
                tick st.inst;
                mtr.ialu <- mtr.ialu + 1;
                let stk = st.stk in
                let p = st.opbase + hres in
                Array.unsafe_set stk p
                  (Xcode.slot_of_i32
                     (Numerics.eval_iunop32 op
                        (Xcode.i32_of_slot (Array.unsafe_get stk p))));
                next);
            `Live
        | Ast.W64 ->
            pop_ty Types.I64;
            push Types.I64;
            let hres = !h - 1 in
            emit1 (fun next st ->
                tick st.inst;
                mtr.ialu <- mtr.ialu + 1;
                let stk = st.stk in
                let p = st.opbase + hres in
                Array.unsafe_set stk p
                  (Xcode.slot_of_i64
                     (Numerics.eval_iunop64 op
                        (Xcode.i64_of_slot (Array.unsafe_get stk p))));
                next);
            `Live)
    | Ast.IBinop (w, op) -> (
        let bump = ibinop_bump op in
        match w with
        | Ast.W32 -> (
            pop_ty Types.I32;
            pop_ty Types.I32;
            push Types.I32;
            let hres = !h - 1 in
            (* the non-trapping operators are written out so the whole
               slot-decode / compute / re-encode chain is one straight
               line of unboxed int ops; the trapping ones keep the
               specialised-closure call *)
            match op with
            | Ast.Add ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.ialu <- mtr.ialu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    let x = int_of_slot (Array.unsafe_get stk p) in
                    let y = int_of_slot (Array.unsafe_get stk (p + 1)) in
                    Array.unsafe_set stk p (slot_of_int (norm32 (x + y)));
                    next);
                `Live
            | Ast.Sub ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.ialu <- mtr.ialu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    let x = int_of_slot (Array.unsafe_get stk p) in
                    let y = int_of_slot (Array.unsafe_get stk (p + 1)) in
                    Array.unsafe_set stk p (slot_of_int (norm32 (x - y)));
                    next);
                `Live
            | Ast.Mul ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.imul <- mtr.imul + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    let x = int_of_slot (Array.unsafe_get stk p) in
                    let y = int_of_slot (Array.unsafe_get stk (p + 1)) in
                    Array.unsafe_set stk p (slot_of_int (norm32 (x * y)));
                    next);
                `Live
            | Ast.And ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.ialu <- mtr.ialu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    let x = int_of_slot (Array.unsafe_get stk p) in
                    let y = int_of_slot (Array.unsafe_get stk (p + 1)) in
                    Array.unsafe_set stk p (slot_of_int (x land y));
                    next);
                `Live
            | Ast.Or ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.ialu <- mtr.ialu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    let x = int_of_slot (Array.unsafe_get stk p) in
                    let y = int_of_slot (Array.unsafe_get stk (p + 1)) in
                    Array.unsafe_set stk p (slot_of_int (x lor y));
                    next);
                `Live
            | Ast.Xor ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.ialu <- mtr.ialu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    let x = int_of_slot (Array.unsafe_get stk p) in
                    let y = int_of_slot (Array.unsafe_get stk (p + 1)) in
                    Array.unsafe_set stk p (slot_of_int (x lxor y));
                    next);
                `Live
            | Ast.Shl ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.ialu <- mtr.ialu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    let x = int_of_slot (Array.unsafe_get stk p) in
                    let y = int_of_slot (Array.unsafe_get stk (p + 1)) in
                    Array.unsafe_set stk p
                      (slot_of_int (norm32 (x lsl (y land 31))));
                    next);
                `Live
            | Ast.ShrS ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.ialu <- mtr.ialu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    let x = int_of_slot (Array.unsafe_get stk p) in
                    let y = int_of_slot (Array.unsafe_get stk (p + 1)) in
                    Array.unsafe_set stk p (slot_of_int (x asr (y land 31)));
                    next);
                `Live
            | Ast.ShrU ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.ialu <- mtr.ialu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    let x = int_of_slot (Array.unsafe_get stk p) in
                    let y = int_of_slot (Array.unsafe_get stk (p + 1)) in
                    Array.unsafe_set stk p
                      (slot_of_int (norm32 ((x land mask32) lsr (y land 31))));
                    next);
                `Live
            | _ ->
                let fn = i32_binop_fn op in
                emit1 (fun next st ->
                    tick st.inst;
                    bump mtr;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    let x = int_of_slot (Array.unsafe_get stk p) in
                    let y = int_of_slot (Array.unsafe_get stk (p + 1)) in
                    Array.unsafe_set stk p (slot_of_int (fn x y));
                    next);
                `Live)
        | Ast.W64 -> (
            pop_ty Types.I64;
            pop_ty Types.I64;
            push Types.I64;
            let hres = !h - 1 in
            (* Int64 primitives are unboxed externals, so an in-body
               bits_of_float → op → float_of_bits chain never boxes *)
            match op with
            | Ast.Add ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.ialu <- mtr.ialu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    Array.unsafe_set stk p
                      (Int64.float_of_bits
                         (Int64.add
                            (Int64.bits_of_float (Array.unsafe_get stk p))
                            (Int64.bits_of_float
                               (Array.unsafe_get stk (p + 1)))));
                    next);
                `Live
            | Ast.Sub ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.ialu <- mtr.ialu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    Array.unsafe_set stk p
                      (Int64.float_of_bits
                         (Int64.sub
                            (Int64.bits_of_float (Array.unsafe_get stk p))
                            (Int64.bits_of_float
                               (Array.unsafe_get stk (p + 1)))));
                    next);
                `Live
            | Ast.Mul ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.imul <- mtr.imul + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    Array.unsafe_set stk p
                      (Int64.float_of_bits
                         (Int64.mul
                            (Int64.bits_of_float (Array.unsafe_get stk p))
                            (Int64.bits_of_float
                               (Array.unsafe_get stk (p + 1)))));
                    next);
                `Live
            | Ast.And ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.ialu <- mtr.ialu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    Array.unsafe_set stk p
                      (Int64.float_of_bits
                         (Int64.logand
                            (Int64.bits_of_float (Array.unsafe_get stk p))
                            (Int64.bits_of_float
                               (Array.unsafe_get stk (p + 1)))));
                    next);
                `Live
            | Ast.Or ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.ialu <- mtr.ialu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    Array.unsafe_set stk p
                      (Int64.float_of_bits
                         (Int64.logor
                            (Int64.bits_of_float (Array.unsafe_get stk p))
                            (Int64.bits_of_float
                               (Array.unsafe_get stk (p + 1)))));
                    next);
                `Live
            | Ast.Xor ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.ialu <- mtr.ialu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    Array.unsafe_set stk p
                      (Int64.float_of_bits
                         (Int64.logxor
                            (Int64.bits_of_float (Array.unsafe_get stk p))
                            (Int64.bits_of_float
                               (Array.unsafe_get stk (p + 1)))));
                    next);
                `Live
            | _ ->
                emit1 (fun next st ->
                    tick st.inst;
                    bump mtr;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    let x = Xcode.i64_of_slot (Array.unsafe_get stk p) in
                    let y = Xcode.i64_of_slot (Array.unsafe_get stk (p + 1)) in
                    Array.unsafe_set stk p
                      (Xcode.slot_of_i64 (Numerics.eval_ibinop64 op x y));
                    next);
                `Live))
    | Ast.ITestop w ->
        (match w with
        | Ast.W32 -> pop_ty Types.I32
        | Ast.W64 -> pop_ty Types.I64);
        push Types.I32;
        let hres = !h - 1 in
        emit1 (fun next st ->
            tick st.inst;
            mtr.ialu <- mtr.ialu + 1;
            let stk = st.stk in
            let p = st.opbase + hres in
            Array.unsafe_set stk p
              (slot_of_bool (Int64.bits_of_float (Array.unsafe_get stk p) = 0L));
            next);
        `Live
    | Ast.IRelop (w, op) -> (
        match w with
        | Ast.W32 -> (
            pop_ty Types.I32;
            pop_ty Types.I32;
            push Types.I32;
            let hres = !h - 1 in
            match op with
            | Ast.Eq ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.ialu <- mtr.ialu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    let x = int_of_slot (Array.unsafe_get stk p) in
                    let y = int_of_slot (Array.unsafe_get stk (p + 1)) in
                    Array.unsafe_set stk p (slot_of_bool (x = y));
                    next);
                `Live
            | Ast.Ne ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.ialu <- mtr.ialu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    let x = int_of_slot (Array.unsafe_get stk p) in
                    let y = int_of_slot (Array.unsafe_get stk (p + 1)) in
                    Array.unsafe_set stk p (slot_of_bool (x <> y));
                    next);
                `Live
            | Ast.LtS ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.ialu <- mtr.ialu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    let x = int_of_slot (Array.unsafe_get stk p) in
                    let y = int_of_slot (Array.unsafe_get stk (p + 1)) in
                    Array.unsafe_set stk p (slot_of_bool (x < y));
                    next);
                `Live
            | Ast.GtS ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.ialu <- mtr.ialu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    let x = int_of_slot (Array.unsafe_get stk p) in
                    let y = int_of_slot (Array.unsafe_get stk (p + 1)) in
                    Array.unsafe_set stk p (slot_of_bool (x > y));
                    next);
                `Live
            | Ast.LeS ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.ialu <- mtr.ialu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    let x = int_of_slot (Array.unsafe_get stk p) in
                    let y = int_of_slot (Array.unsafe_get stk (p + 1)) in
                    Array.unsafe_set stk p (slot_of_bool (x <= y));
                    next);
                `Live
            | Ast.GeS ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.ialu <- mtr.ialu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    let x = int_of_slot (Array.unsafe_get stk p) in
                    let y = int_of_slot (Array.unsafe_get stk (p + 1)) in
                    Array.unsafe_set stk p (slot_of_bool (x >= y));
                    next);
                `Live
            | Ast.LtU | Ast.GtU | Ast.LeU | Ast.GeU ->
                let fn = i32_relop_fn op in
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.ialu <- mtr.ialu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    let x = int_of_slot (Array.unsafe_get stk p) in
                    let y = int_of_slot (Array.unsafe_get stk (p + 1)) in
                    Array.unsafe_set stk p (slot_of_bool (fn x y));
                    next);
                `Live)
        | Ast.W64 ->
            pop_ty Types.I64;
            pop_ty Types.I64;
            push Types.I32;
            let hres = !h - 1 in
            emit1 (fun next st ->
                tick st.inst;
                mtr.ialu <- mtr.ialu + 1;
                let stk = st.stk in
                let p = st.opbase + hres in
                let x = Xcode.i64_of_slot (Array.unsafe_get stk p) in
                let y = Xcode.i64_of_slot (Array.unsafe_get stk (p + 1)) in
                Array.unsafe_set stk p
                  (slot_of_bool (Numerics.eval_irelop64 op x y));
                next);
            `Live)
    | Ast.FUnop (w, op) -> (
        match w with
        | Ast.W32 ->
            pop_ty Types.F32;
            push Types.F32;
            let hres = !h - 1 in
            emit1 (fun next st ->
                tick st.inst;
                mtr.falu <- mtr.falu + 1;
                let stk = st.stk in
                let p = st.opbase + hres in
                Array.unsafe_set stk p
                  (Values.to_f32 (Numerics.eval_funop op (Array.unsafe_get stk p)));
                next);
            `Live
        | Ast.W64 -> (
            pop_ty Types.F64;
            push Types.F64;
            let hres = !h - 1 in
            match op with
            | Ast.Neg ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.falu <- mtr.falu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    Array.unsafe_set stk p (-.Array.unsafe_get stk p);
                    next);
                `Live
            | Ast.Abs ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.falu <- mtr.falu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    Array.unsafe_set stk p (abs_float (Array.unsafe_get stk p));
                    next);
                `Live
            | Ast.Sqrt ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.falu <- mtr.falu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    Array.unsafe_set stk p (sqrt (Array.unsafe_get stk p));
                    next);
                `Live
            | _ ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.falu <- mtr.falu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    Array.unsafe_set stk p
                      (Numerics.eval_funop op (Array.unsafe_get stk p));
                    next);
                `Live))
    | Ast.FBinop (w, op) -> (
        (* The four arithmetic operators are written out per-operator so
           the whole read-op-write chain stays unboxed inside one closure
           body; min/max/copysign keep the generic (boxing) call. *)
        match w with
        | Ast.W32 -> (
            pop_ty Types.F32;
            pop_ty Types.F32;
            push Types.F32;
            let hres = !h - 1 in
            match op with
            | Ast.FAdd ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.falu <- mtr.falu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    Array.unsafe_set stk p
                      (Int32.float_of_bits
                         (Int32.bits_of_float
                            (Array.unsafe_get stk p
                            +. Array.unsafe_get stk (p + 1))));
                    next);
                `Live
            | Ast.FSub ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.falu <- mtr.falu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    Array.unsafe_set stk p
                      (Int32.float_of_bits
                         (Int32.bits_of_float
                            (Array.unsafe_get stk p
                            -. Array.unsafe_get stk (p + 1))));
                    next);
                `Live
            | Ast.FMul ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.fmul <- mtr.fmul + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    Array.unsafe_set stk p
                      (Int32.float_of_bits
                         (Int32.bits_of_float
                            (Array.unsafe_get stk p
                            *. Array.unsafe_get stk (p + 1))));
                    next);
                `Live
            | Ast.FDiv ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.fdiv <- mtr.fdiv + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    Array.unsafe_set stk p
                      (Int32.float_of_bits
                         (Int32.bits_of_float
                            (Array.unsafe_get stk p
                            /. Array.unsafe_get stk (p + 1))));
                    next);
                `Live
            | _ ->
                let bump = fbinop_bump op in
                emit1 (fun next st ->
                    tick st.inst;
                    bump mtr;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    let x = Array.unsafe_get stk p in
                    let y = Array.unsafe_get stk (p + 1) in
                    Array.unsafe_set stk p
                      (Values.to_f32 (Numerics.eval_fbinop op x y));
                    next);
                `Live)
        | Ast.W64 -> (
            pop_ty Types.F64;
            pop_ty Types.F64;
            push Types.F64;
            let hres = !h - 1 in
            match op with
            | Ast.FAdd ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.falu <- mtr.falu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    Array.unsafe_set stk p
                      (Array.unsafe_get stk p +. Array.unsafe_get stk (p + 1));
                    next);
                `Live
            | Ast.FSub ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.falu <- mtr.falu + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    Array.unsafe_set stk p
                      (Array.unsafe_get stk p -. Array.unsafe_get stk (p + 1));
                    next);
                `Live
            | Ast.FMul ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.fmul <- mtr.fmul + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    Array.unsafe_set stk p
                      (Array.unsafe_get stk p *. Array.unsafe_get stk (p + 1));
                    next);
                `Live
            | Ast.FDiv ->
                emit1 (fun next st ->
                    tick st.inst;
                    mtr.fdiv <- mtr.fdiv + 1;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    Array.unsafe_set stk p
                      (Array.unsafe_get stk p /. Array.unsafe_get stk (p + 1));
                    next);
                `Live
            | _ ->
                let bump = fbinop_bump op in
                emit1 (fun next st ->
                    tick st.inst;
                    bump mtr;
                    let stk = st.stk in
                    let p = st.opbase + hres in
                    let x = Array.unsafe_get stk p in
                    let y = Array.unsafe_get stk (p + 1) in
                    Array.unsafe_set stk p (Numerics.eval_fbinop op x y);
                    next);
                `Live))
    | Ast.FRelop (w, op) ->
        (match w with
        | Ast.W32 ->
            pop_ty Types.F32;
            pop_ty Types.F32
        | Ast.W64 ->
            pop_ty Types.F64;
            pop_ty Types.F64);
        push Types.I32;
        let hres = !h - 1 in
        (* written out per-operator: a typed float compare never boxes,
           and NaN falls out of the IEEE compare exactly as
           [Numerics.eval_frelop]'s *)
        (match op with
        | Ast.FEq ->
            emit1 (fun next st ->
                tick st.inst;
                mtr.falu <- mtr.falu + 1;
                let stk = st.stk in
                let p = st.opbase + hres in
                Array.unsafe_set stk p
                  (slot_of_bool
                     (Array.unsafe_get stk p = Array.unsafe_get stk (p + 1)));
                next)
        | Ast.FNe ->
            emit1 (fun next st ->
                tick st.inst;
                mtr.falu <- mtr.falu + 1;
                let stk = st.stk in
                let p = st.opbase + hres in
                Array.unsafe_set stk p
                  (slot_of_bool
                     (Array.unsafe_get stk p <> Array.unsafe_get stk (p + 1)));
                next)
        | Ast.FLt ->
            emit1 (fun next st ->
                tick st.inst;
                mtr.falu <- mtr.falu + 1;
                let stk = st.stk in
                let p = st.opbase + hres in
                Array.unsafe_set stk p
                  (slot_of_bool
                     (Array.unsafe_get stk p < Array.unsafe_get stk (p + 1)));
                next)
        | Ast.FGt ->
            emit1 (fun next st ->
                tick st.inst;
                mtr.falu <- mtr.falu + 1;
                let stk = st.stk in
                let p = st.opbase + hres in
                Array.unsafe_set stk p
                  (slot_of_bool
                     (Array.unsafe_get stk p > Array.unsafe_get stk (p + 1)));
                next)
        | Ast.FLe ->
            emit1 (fun next st ->
                tick st.inst;
                mtr.falu <- mtr.falu + 1;
                let stk = st.stk in
                let p = st.opbase + hres in
                Array.unsafe_set stk p
                  (slot_of_bool
                     (Array.unsafe_get stk p <= Array.unsafe_get stk (p + 1)));
                next)
        | Ast.FGe ->
            emit1 (fun next st ->
                tick st.inst;
                mtr.falu <- mtr.falu + 1;
                let stk = st.stk in
                let p = st.opbase + hres in
                Array.unsafe_set stk p
                  (slot_of_bool
                     (Array.unsafe_get stk p >= Array.unsafe_get stk (p + 1)));
                next));
        `Live
    | Ast.Cvtop op ->
        let src, dst, fn = cvt_sig op in
        pop_ty src;
        push dst;
        let hres = !h - 1 in
        emit1 (fun next st ->
            tick st.inst;
            mtr.cvt <- mtr.cvt + 1;
            let stk = st.stk in
            let p = st.opbase + hres in
            Array.unsafe_set stk p (fn (Array.unsafe_get stk p));
            next);
        `Live
    | Ast.Load (lty, pack, ma) ->
        if mem_idx = None then unsupported "load without memory";
        let addr_ty = pop_addr () in
        let res_ty : Types.val_type = lty in
        push res_ty;
        let hres = !h - 1 in
        let len, lk = load_kind lty pack in
        let off = native_off ma.Ast.offset in
        let elide = elide_of id in
        let ebounds = belide_of id in
        let body =
          load_body ~addr_ty ~elide ~ebounds ~len ~lk ~off ~src:(Sop hres)
            ~dst:(Sop hres)
        in
        emit1 (fun next st ->
            tick st.inst;
            body st;
            next);
        `Live
    | Ast.Store (sty, pack, ma) ->
        if mem_idx = None then unsupported "store without memory";
        pop_ty sty;
        let addr_ty = pop_addr () in
        let ha = !h in
        let len, sk = store_kind sty pack in
        let off = native_off ma.Ast.offset in
        let elide = elide_of id in
        let ebounds = belide_of id in
        let body =
          store_body ~addr_ty ~elide ~ebounds ~len ~sk ~off ~src:(Sop ha)
            ~vsrc:(Sop (ha + 1))
        in
        emit1 (fun next st ->
            tick st.inst;
            body st;
            next);
        `Live
    | Ast.MemorySize -> (
        match mem_idx with
        | None -> unsupported "memory.size without memory"
        | Some idx ->
            push (Types.addr_type idx);
            let hres = !h - 1 in
            let mk =
              match idx with
              | Types.Idx32 ->
                  fun pages -> Xcode.slot_of_i32 (Int64.to_int32 pages)
              | Types.Idx64 -> fun pages -> Xcode.slot_of_i64 pages
            in
            emit1 (fun next st ->
                tick st.inst;
                Array.unsafe_set st.stk (st.opbase + hres)
                  (mk (Memory.size_pages (gm st.inst)));
                next);
            `Live)
    | Ast.MemoryGrow -> (
        match mem_idx with
        | None -> unsupported "memory.grow without memory"
        | Some idx ->
            pop_ty (Types.addr_type idx);
            push (Types.addr_type idx);
            let hres = !h - 1 in
            let dec, mk =
              match idx with
              | Types.Idx32 ->
                  ( (fun s ->
                      Int64.logand
                        (Int64.of_int32 (Xcode.i32_of_slot s))
                        0xffffffffL),
                    fun old -> Xcode.slot_of_i32 (Int64.to_int32 old) )
              | Types.Idx64 -> ((fun s -> Xcode.i64_of_slot s), Xcode.slot_of_i64)
            in
            emit1 (fun next st ->
                tick st.inst;
                let stk = st.stk in
                let p = st.opbase + hres in
                let old = Rt.memory_grow st.inst (dec (Array.unsafe_get stk p)) in
                Array.unsafe_set stk p (mk old);
                next);
            `Live)
    | Ast.MemoryFill -> (
        match mem_idx with
        | None -> unsupported "memory.fill without memory"
        | Some idx ->
            pop_ty (Types.addr_type idx);
            pop_ty Types.I32;
            let dst_ty = pop_addr () in
            let hdst = !h in
            let dec_len =
              match idx with
              | Types.Idx32 ->
                  fun s ->
                    Int64.logand (Int64.of_int32 (Xcode.i32_of_slot s)) 0xffffffffL
              | Types.Idx64 -> fun s -> Xcode.i64_of_slot s
            in
            let resolve_dst =
              match dst_ty with
              | Types.I32 ->
                  fun s ->
                    (Checked.resolve_addr_i32 (Xcode.i32_of_slot s) 0L, Arch.Tag.zero)
              | _ -> fun s -> Checked.resolve_addr_i64 (Xcode.i64_of_slot s) 0L
            in
            emit1 (fun next st ->
                tick st.inst;
                let inst = st.inst in
                let stk = st.stk in
                let p = st.opbase + hdst in
                let len = dec_len (Array.unsafe_get stk (p + 2)) in
                let v = int_of_slot (Array.unsafe_get stk (p + 1)) in
                let dst, dtag = resolve_dst (Array.unsafe_get stk p) in
                mtr.bulk_fill <- mtr.bulk_fill + 1;
                Checked.fill inst (gm inst) ~addr:dst ~tag:dtag ~len v;
                next);
            `Live)
    | Ast.MemoryCopy -> (
        match mem_idx with
        | None -> unsupported "memory.copy without memory"
        | Some idx ->
            pop_ty (Types.addr_type idx);
            let src_ty = pop_addr () in
            let dst_ty = pop_addr () in
            let hdst = !h in
            let dec_len =
              match idx with
              | Types.Idx32 ->
                  fun s ->
                    Int64.logand (Int64.of_int32 (Xcode.i32_of_slot s)) 0xffffffffL
              | Types.Idx64 -> fun s -> Xcode.i64_of_slot s
            in
            let resolve ty =
              match (ty : Types.val_type) with
              | Types.I32 ->
                  fun s ->
                    (Checked.resolve_addr_i32 (Xcode.i32_of_slot s) 0L, Arch.Tag.zero)
              | _ -> fun s -> Checked.resolve_addr_i64 (Xcode.i64_of_slot s) 0L
            in
            let resolve_src = resolve src_ty in
            let resolve_dst = resolve dst_ty in
            emit1 (fun next st ->
                tick st.inst;
                let inst = st.inst in
                let stk = st.stk in
                let p = st.opbase + hdst in
                let len = dec_len (Array.unsafe_get stk (p + 2)) in
                (* the interpreter resolves source before destination:
                   chaos draws must land in that order *)
                let src, stag = resolve_src (Array.unsafe_get stk (p + 1)) in
                let dst, dtag = resolve_dst (Array.unsafe_get stk p) in
                mtr.bulk_copy <- mtr.bulk_copy + 1;
                Checked.copy inst (gm inst) ~dst ~dtag ~src ~stag ~len;
                next);
            `Live)
    | Ast.SegmentNew o ->
        pop_ty Types.I64;
        pop_ty Types.I64;
        push Types.I64;
        let hres = !h - 1 in
        let arena = arena_of id in
        emit1 (fun next st ->
            tick st.inst;
            let stk = st.stk in
            let p = st.opbase + hres in
            let l = Xcode.i64_of_slot (Array.unsafe_get stk (p + 1)) in
            let k = Xcode.i64_of_slot (Array.unsafe_get stk p) in
            Array.unsafe_set stk p
              (Xcode.slot_of_i64 (Rt.segment_new ~arena st.inst ~k ~l o));
            next);
        `Live
    | Ast.SegmentSetTag o ->
        pop_ty Types.I64;
        pop_ty Types.I64;
        pop_ty Types.I64;
        let hk = !h in
        emit1 (fun next st ->
            tick st.inst;
            let stk = st.stk in
            let p = st.opbase + hk in
            let l = Xcode.i64_of_slot (Array.unsafe_get stk (p + 2)) in
            let t = Xcode.i64_of_slot (Array.unsafe_get stk (p + 1)) in
            let k = Xcode.i64_of_slot (Array.unsafe_get stk p) in
            Rt.segment_set_tag st.inst ~k ~t ~l o;
            next);
        `Live
    | Ast.SegmentFree o ->
        pop_ty Types.I64;
        pop_ty Types.I64;
        let hk = !h in
        let arena = arena_of id in
        emit1 (fun next st ->
            tick st.inst;
            let stk = st.stk in
            let p = st.opbase + hk in
            let l = Xcode.i64_of_slot (Array.unsafe_get stk (p + 1)) in
            let k = Xcode.i64_of_slot (Array.unsafe_get stk p) in
            Rt.segment_free ~arena st.inst ~k ~l o;
            next);
        `Live
    | Ast.PointerSign ->
        pop_ty Types.I64;
        push Types.I64;
        let hres = !h - 1 in
        emit1 (fun next st ->
            tick st.inst;
            let stk = st.stk in
            let p = st.opbase + hres in
            Array.unsafe_set stk p
              (Xcode.slot_of_i64
                 (Rt.pointer_sign st.inst
                    (Xcode.i64_of_slot (Array.unsafe_get stk p))));
            next);
        `Live
    | Ast.PointerAuth ->
        pop_ty Types.I64;
        push Types.I64;
        let hres = !h - 1 in
        emit1 (fun next st ->
            tick st.inst;
            let stk = st.stk in
            let p = st.opbase + hres in
            Array.unsafe_set stk p
              (Xcode.slot_of_i64
                 (Rt.pointer_auth st.inst
                    (Xcode.i64_of_slot (Array.unsafe_get stk p))));
            next);
        `Live
    | Ast.Call fi ->
        if fi >= n_funcs then unsupported "call index out of range";
        let cty = Ast.type_of_func m fi in
        List.iter pop_ty (List.rev cty.params);
        let hbase = !h in
        List.iter push cty.results;
        let param_tys = Array.of_list cty.params in
        let result_tys = Array.of_list cty.results in
        emit1 (fun next st ->
            tick st.inst;
            mtr.call <- mtr.call + 1;
            call_function st fi (st.opbase + hbase) param_tys result_tys;
            next);
        `Live
    | Ast.CallIndirect ti ->
        if ti >= List.length m.types then unsupported "type index out of range";
        let ety = List.nth m.types ti in
        pop_ty Types.I32;
        List.iter pop_ty (List.rev ety.params);
        let hbase = !h in
        List.iter push ety.results;
        let nargs = List.length ety.params in
        let param_tys = Array.of_list ety.params in
        let result_tys = Array.of_list ety.results in
        emit1 (fun next st ->
            tick st.inst;
            let inst = st.inst in
            mtr.call_indirect <- mtr.call_indirect + 1;
            let stk = st.stk in
            let idx = int_of_slot (Array.unsafe_get stk (st.opbase + hbase + nargs)) in
            if idx < 0 || idx >= Array.length inst.table then
              Rt.trap "undefined element %d in table" idx;
            (match inst.table.(idx) with
            | None -> Rt.trap "uninitialized table element %d" idx
            | Some fi ->
                let actual = Instance.func_type inst.funcs.(fi) in
                if not (Types.func_type_equal ety actual) then
                  Rt.trap "indirect call type mismatch";
                call_function st fi (st.opbase + hbase) param_tys result_tys);
            next);
        `Live
  in
  (* ---------------------------------------------------------------- *)
  (* Superinstruction fusion                                           *)
  (* ---------------------------------------------------------------- *)
  (* Try to absorb a run of consecutive instructions starting at
     [body.(i)] into one op. Returns the number of source instructions
     consumed (0 = no match). Constituent side effects — ticks, meter
     bumps, elision decisions — are batched but numerically identical
     to the singleton sequence; static stack updates reuse the same
     push/pop helpers so typing and frame-height accounting are exactly
     what the singletons would have produced. *)
  let local_ok i = i < Array.length local_tys in
  let try_fuse labels (body : Code.instr array) i : int =
    let n = Array.length body in
    let at k = if i + k < n then Some body.(i + k) else None in
    match (at 0, at 1, at 2, at 3, at 4) with
    (* local.get a; local.get b; i32 relop; i32.eqz; br_if — the
       inverted loop guard every structured while-loop compiles to *)
    | ( Some (Code.Basic (Ast.LocalGet a, _)),
        Some (Code.Basic (Ast.LocalGet bl, _)),
        Some (Code.Basic (Ast.IRelop (Ast.W32, op), _)),
        Some (Code.Basic (Ast.ITestop Ast.W32, _)),
        Some (Code.BrIf l) )
      when local_ok a && local_ok bl
           && local_tys.(a) = Types.I32
           && local_tys.(bl) = Types.I32 ->
        push Types.I32;
        push Types.I32;
        pop_ty Types.I32;
        pop_ty Types.I32;
        push Types.I32;
        pop_ty Types.I32;
        push Types.I32;
        pop_ty Types.I32;
        let act = branch_action labels l in
        let fn = i32_relop_fn op in
        emit1 (fun next st ->
            let inst = st.inst in
            tick_n inst 5;
            mtr.local_access <- mtr.local_access + 2;
            mtr.ialu <- mtr.ialu + 2;
            let stk = st.stk in
            let b = st.base in
            let x = int_of_slot (Array.unsafe_get stk (b + a)) in
            let y = int_of_slot (Array.unsafe_get stk (b + bl)) in
            meter_br inst;
            if not (fn x y) then act st else next);
        n_instrs := !n_instrs + 5;
        n_fused := !n_fused + 5;
        bump_idiom "i32.lg.lg.relop.eqz.brif";
        5
    (* local.get a; local.get b; i32 relop; br_if  — the loop-guard idiom *)
    | ( Some (Code.Basic (Ast.LocalGet a, _)),
        Some (Code.Basic (Ast.LocalGet bl, _)),
        Some (Code.Basic (Ast.IRelop (Ast.W32, op), _)),
        Some (Code.BrIf l),
        _ )
      when local_ok a && local_ok bl
           && local_tys.(a) = Types.I32
           && local_tys.(bl) = Types.I32 ->
        push Types.I32;
        push Types.I32;
        pop_ty Types.I32;
        pop_ty Types.I32;
        push Types.I32;
        pop_ty Types.I32;
        let act = branch_action labels l in
        let fn = i32_relop_fn op in
        emit1 (fun next st ->
            let inst = st.inst in
            tick_n inst 4;
            mtr.local_access <- mtr.local_access + 2;
                mtr.ialu <- mtr.ialu + 1;
            let stk = st.stk in
            let b = st.base in
            let x = int_of_slot (Array.unsafe_get stk (b + a)) in
            let y = int_of_slot (Array.unsafe_get stk (b + bl)) in
            meter_br inst;
            if fn x y then act st else next);
        n_instrs := !n_instrs + 4;
        n_fused := !n_fused + 4;
        bump_idiom "i32.lg.lg.relop.brif";
        4
    (* local.get base; local.get a; local.get b; i32 binop — the head
       of an address chain: the base pointer rides below the combined
       index. *)
    | ( Some (Code.Basic (Ast.LocalGet v0, _)),
        Some (Code.Basic (Ast.LocalGet a, _)),
        Some (Code.Basic (Ast.LocalGet bl, _)),
        Some (Code.Basic (Ast.IBinop (Ast.W32, op), _)),
        _ )
      when local_ok v0 && local_ok a && local_ok bl
           && local_tys.(a) = Types.I32
           && local_tys.(bl) = Types.I32
           && i32_binop_fusable op ->
        let h0 = !h in
        push local_tys.(v0);
        push Types.I32;
        push Types.I32;
        pop_ty Types.I32;
        pop_ty Types.I32;
        push Types.I32;
        let fn = i32_binop_fn op in
        let bump = ibinop_bump op in
        emit1 (fun next st ->
            let inst = st.inst in
            tick_n inst 4;
            mtr.local_access <- mtr.local_access + 3;
            bump mtr;
            let stk = st.stk in
            let b = st.base in
            let p = st.opbase + h0 in
            Array.unsafe_set stk p (Array.unsafe_get stk (b + v0));
            let x = int_of_slot (Array.unsafe_get stk (b + a)) in
            let y = int_of_slot (Array.unsafe_get stk (b + bl)) in
            Array.unsafe_set stk (p + 1) (slot_of_int (fn x y));
            next);
        n_instrs := !n_instrs + 4;
        n_fused := !n_fused + 4;
        bump_idiom "i32.lg.lg.lg.op";
        4
    (* local.get a; local.get b; i32 binop *)
    | ( Some (Code.Basic (Ast.LocalGet a, _)),
        Some (Code.Basic (Ast.LocalGet bl, _)),
        Some (Code.Basic (Ast.IBinop (Ast.W32, op), _)),
        _,
        _ )
      when local_ok a && local_ok bl
           && local_tys.(a) = Types.I32
           && local_tys.(bl) = Types.I32
           && i32_binop_fusable op ->
        push Types.I32;
        push Types.I32;
        pop_ty Types.I32;
        pop_ty Types.I32;
        push Types.I32;
        let hres = !h - 1 in
        let fn = i32_binop_fn op in
        let bump = ibinop_bump op in
        emit1 (fun next st ->
            let inst = st.inst in
            tick_n inst 3;
            mtr.local_access <- mtr.local_access + 2;
                bump mtr;
            let stk = st.stk in
            let b = st.base in
            let x = int_of_slot (Array.unsafe_get stk (b + a)) in
            let y = int_of_slot (Array.unsafe_get stk (b + bl)) in
            Array.unsafe_set stk (st.opbase + hres) (slot_of_int (fn x y));
            next);
        n_instrs := !n_instrs + 3;
        n_fused := !n_fused + 3;
        bump_idiom "i32.lg.lg.op";
        3
    (* local.get a; local.get b; f64 binop *)
    | ( Some (Code.Basic (Ast.LocalGet a, _)),
        Some (Code.Basic (Ast.LocalGet bl, _)),
        Some (Code.Basic (Ast.FBinop (Ast.W64, op), _)),
        _,
        _ )
      when local_ok a && local_ok bl
           && local_tys.(a) = Types.F64
           && local_tys.(bl) = Types.F64 ->
        push Types.F64;
        push Types.F64;
        pop_ty Types.F64;
        pop_ty Types.F64;
        push Types.F64;
        let hres = !h - 1 in
        (match op with
        | Ast.FAdd ->
            emit1 (fun next st ->
                let inst = st.inst in
                tick_n inst 3;
                mtr.local_access <- mtr.local_access + 2;
                mtr.falu <- mtr.falu + 1;
                let stk = st.stk in
                let b = st.base in
                Array.unsafe_set stk (st.opbase + hres)
                  (Array.unsafe_get stk (b + a) +. Array.unsafe_get stk (b + bl));
                next)
        | Ast.FSub ->
            emit1 (fun next st ->
                let inst = st.inst in
                tick_n inst 3;
                mtr.local_access <- mtr.local_access + 2;
                mtr.falu <- mtr.falu + 1;
                let stk = st.stk in
                let b = st.base in
                Array.unsafe_set stk (st.opbase + hres)
                  (Array.unsafe_get stk (b + a) -. Array.unsafe_get stk (b + bl));
                next)
        | Ast.FMul ->
            emit1 (fun next st ->
                let inst = st.inst in
                tick_n inst 3;
                mtr.local_access <- mtr.local_access + 2;
                mtr.fmul <- mtr.fmul + 1;
                let stk = st.stk in
                let b = st.base in
                Array.unsafe_set stk (st.opbase + hres)
                  (Array.unsafe_get stk (b + a) *. Array.unsafe_get stk (b + bl));
                next)
        | Ast.FDiv ->
            emit1 (fun next st ->
                let inst = st.inst in
                tick_n inst 3;
                mtr.local_access <- mtr.local_access + 2;
                mtr.fdiv <- mtr.fdiv + 1;
                let stk = st.stk in
                let b = st.base in
                Array.unsafe_set stk (st.opbase + hres)
                  (Array.unsafe_get stk (b + a) /. Array.unsafe_get stk (b + bl));
                next)
        | _ ->
            let bump = fbinop_bump op in
            emit1 (fun next st ->
                let inst = st.inst in
                tick_n inst 3;
                mtr.local_access <- mtr.local_access + 2;
                bump mtr;
                let stk = st.stk in
                let b = st.base in
                let x = Array.unsafe_get stk (b + a) in
                let y = Array.unsafe_get stk (b + bl) in
                Array.unsafe_set stk (st.opbase + hres)
                  (Numerics.eval_fbinop op x y);
                next));
        n_instrs := !n_instrs + 3;
        n_fused := !n_fused + 3;
        bump_idiom "f64.lg.lg.op";
        3
    (* local.get addr; local.get v; store *)
    | ( Some (Code.Basic (Ast.LocalGet a, _)),
        Some (Code.Basic (Ast.LocalGet bl, _)),
        Some (Code.Basic (Ast.Store (sty, pack, ma), sid)),
        _,
        _ )
      when local_ok a && local_ok bl && mem_idx <> None
           && (local_tys.(a) = Types.I32 || local_tys.(a) = Types.I64)
           && local_tys.(bl) = sty
           && (match store_kind sty pack with
              | _ -> true
              | exception Unsupported _ -> false) ->
        push local_tys.(a);
        push local_tys.(bl);
        pop_ty local_tys.(bl);
        pop_ty local_tys.(a);
        let len, sk = store_kind sty pack in
        let off = native_off ma.Ast.offset in
        let elide = elide_of sid in
        let ebounds = belide_of sid in
        let body =
          store_body ~addr_ty:local_tys.(a) ~elide ~ebounds ~len ~sk ~off ~src:(Sloc a)
            ~vsrc:(Sloc bl)
        in
        emit1 (fun next st ->
            let inst = st.inst in
            tick_n inst 3;
            mtr.local_access <- mtr.local_access + 2;
            body st;
            next);
        n_instrs := !n_instrs + 3;
        n_fused := !n_fused + 3;
        bump_idiom "lg.lg.store";
        3
    (* local.get; i32.const; i32 binop; local.set — the loop-counter
       increment quad; the add is written out inline *)
    | ( Some (Code.Basic (Ast.LocalGet a, _)),
        Some (Code.Basic (Ast.I32Const c, _)),
        Some (Code.Basic (Ast.IBinop (Ast.W32, op), _)),
        Some (Code.Basic (Ast.LocalSet d, _)),
        _ )
      when local_ok a && local_ok d
           && local_tys.(a) = Types.I32
           && local_tys.(d) = Types.I32
           && i32_binop_fusable op ->
        push Types.I32;
        push Types.I32;
        pop_ty Types.I32;
        pop_ty Types.I32;
        push Types.I32;
        pop_ty Types.I32;
        let y = norm32 (Int32.to_int c) in
        (match op with
        | Ast.Add ->
            emit1 (fun next st ->
                let inst = st.inst in
                tick_n inst 4;
                mtr.local_access <- mtr.local_access + 2;
                mtr.const <- mtr.const + 1;
                mtr.ialu <- mtr.ialu + 1;
                let stk = st.stk in
                let b = st.base in
                let x = int_of_slot (Array.unsafe_get stk (b + a)) in
                Array.unsafe_set stk (b + d) (slot_of_int (norm32 (x + y)));
                next)
        | _ ->
            let fn = i32_binop_fn op in
            let bump = ibinop_bump op in
            emit1 (fun next st ->
                let inst = st.inst in
                tick_n inst 4;
                mtr.local_access <- mtr.local_access + 2;
                mtr.const <- mtr.const + 1;
                bump mtr;
                let stk = st.stk in
                let b = st.base in
                let x = int_of_slot (Array.unsafe_get stk (b + a)) in
                Array.unsafe_set stk (b + d) (slot_of_int (fn x y));
                next));
        n_instrs := !n_instrs + 4;
        n_fused := !n_fused + 4;
        bump_idiom "i32.lg.const.op.ls";
        4
    (* local.get; i32.const; i32 binop *)
    | ( Some (Code.Basic (Ast.LocalGet a, _)),
        Some (Code.Basic (Ast.I32Const c, _)),
        Some (Code.Basic (Ast.IBinop (Ast.W32, op), _)),
        _,
        _ )
      when local_ok a && local_tys.(a) = Types.I32 && i32_binop_fusable op ->
        push Types.I32;
        push Types.I32;
        pop_ty Types.I32;
        pop_ty Types.I32;
        push Types.I32;
        let hres = !h - 1 in
        let y = norm32 (Int32.to_int c) in
        let fn = i32_binop_fn op in
        let bump = ibinop_bump op in
        emit1 (fun next st ->
            let inst = st.inst in
            tick_n inst 3;
            mtr.local_access <- mtr.local_access + 1;
                mtr.const <- mtr.const + 1;
                bump mtr;
            let stk = st.stk in
            let x = int_of_slot (Array.unsafe_get stk (st.base + a)) in
            Array.unsafe_set stk (st.opbase + hres) (slot_of_int (fn x y));
            next);
        n_instrs := !n_instrs + 3;
        n_fused := !n_fused + 3;
        bump_idiom "i32.lg.const.op";
        3
    (* local.get addr; load *)
    | ( Some (Code.Basic (Ast.LocalGet a, _)),
        Some (Code.Basic (Ast.Load (lty, pack, ma), lid)),
        _,
        _,
        _ )
      when local_ok a && mem_idx <> None
           && (local_tys.(a) = Types.I32 || local_tys.(a) = Types.I64)
           && (match load_kind lty pack with
              | _ -> true
              | exception Unsupported _ -> false) ->
        push local_tys.(a);
        pop_ty local_tys.(a);
        push lty;
        let hres = !h - 1 in
        let len, lk = load_kind lty pack in
        let off = native_off ma.Ast.offset in
        let elide = elide_of lid in
        let ebounds = belide_of lid in
        let body =
          load_body ~addr_ty:local_tys.(a) ~elide ~ebounds ~len ~lk ~off ~src:(Sloc a)
            ~dst:(Sop hres)
        in
        emit1 (fun next st ->
            let inst = st.inst in
            tick_n inst 2;
            mtr.local_access <- mtr.local_access + 1;
            body st;
            next);
        n_instrs := !n_instrs + 2;
        n_fused := !n_fused + 2;
        bump_idiom "lg.load";
        2
    (* local.get; local.set — a register-to-register move *)
    | ( Some (Code.Basic (Ast.LocalGet a, _)),
        Some (Code.Basic (Ast.LocalSet d, _)),
        _,
        _,
        _ )
      when local_ok a && local_ok d && local_tys.(a) = local_tys.(d) ->
        push local_tys.(a);
        pop_ty local_tys.(d);
        emit1 (fun next st ->
            tick_n st.inst 2;
            mtr.local_access <- mtr.local_access + 2;
            let stk = st.stk in
            let b = st.base in
            Array.unsafe_set stk (b + d) (Array.unsafe_get stk (b + a));
            next);
        n_instrs := !n_instrs + 2;
        n_fused := !n_fused + 2;
        bump_idiom "lg.ls";
        2
    (* stack-top ⊕ local.get; i32 binop — the address-chain step *)
    | ( Some (Code.Basic (Ast.LocalGet bl, _)),
        Some (Code.Basic (Ast.IBinop (Ast.W32, op), _)),
        _,
        _,
        _ )
      when local_ok bl
           && local_tys.(bl) = Types.I32
           && i32_binop_fusable op
           && (match !ts with Types.I32 :: _ -> true | _ -> false) ->
        push Types.I32;
        pop_ty Types.I32;
        pop_ty Types.I32;
        push Types.I32;
        let hres = !h - 1 in
        (match op with
        | Ast.Add ->
            emit1 (fun next st ->
                let inst = st.inst in
                tick_n inst 2;
                mtr.local_access <- mtr.local_access + 1;
                mtr.ialu <- mtr.ialu + 1;
                let stk = st.stk in
                let p = st.opbase + hres in
                let x = int_of_slot (Array.unsafe_get stk p) in
                let y = int_of_slot (Array.unsafe_get stk (st.base + bl)) in
                Array.unsafe_set stk p (slot_of_int (norm32 (x + y)));
                next)
        | Ast.Mul ->
            emit1 (fun next st ->
                let inst = st.inst in
                tick_n inst 2;
                mtr.local_access <- mtr.local_access + 1;
                mtr.imul <- mtr.imul + 1;
                let stk = st.stk in
                let p = st.opbase + hres in
                let x = int_of_slot (Array.unsafe_get stk p) in
                let y = int_of_slot (Array.unsafe_get stk (st.base + bl)) in
                Array.unsafe_set stk p (slot_of_int (norm32 (x * y)));
                next)
        | _ ->
            let fn = i32_binop_fn op in
            let bump = ibinop_bump op in
            emit1 (fun next st ->
                let inst = st.inst in
                tick_n inst 2;
                mtr.local_access <- mtr.local_access + 1;
                bump mtr;
                let stk = st.stk in
                let p = st.opbase + hres in
                let x = int_of_slot (Array.unsafe_get stk p) in
                let y = int_of_slot (Array.unsafe_get stk (st.base + bl)) in
                Array.unsafe_set stk p (slot_of_int (fn x y));
                next));
        n_instrs := !n_instrs + 2;
        n_fused := !n_fused + 2;
        bump_idiom "i32.lg.op";
        2
    (* stack-top ⊕ local.get; f64 binop *)
    | ( Some (Code.Basic (Ast.LocalGet bl, _)),
        Some (Code.Basic (Ast.FBinop (Ast.W64, op), _)),
        _,
        _,
        _ )
      when local_ok bl
           && local_tys.(bl) = Types.F64
           && (match !ts with Types.F64 :: _ -> true | _ -> false) ->
        push Types.F64;
        pop_ty Types.F64;
        pop_ty Types.F64;
        push Types.F64;
        let hres = !h - 1 in
        (match op with
        | Ast.FAdd ->
            emit1 (fun next st ->
                let inst = st.inst in
                tick_n inst 2;
                mtr.local_access <- mtr.local_access + 1;
                mtr.falu <- mtr.falu + 1;
                let stk = st.stk in
                let p = st.opbase + hres in
                Array.unsafe_set stk p
                  (Array.unsafe_get stk p
                  +. Array.unsafe_get stk (st.base + bl));
                next)
        | Ast.FSub ->
            emit1 (fun next st ->
                let inst = st.inst in
                tick_n inst 2;
                mtr.local_access <- mtr.local_access + 1;
                mtr.falu <- mtr.falu + 1;
                let stk = st.stk in
                let p = st.opbase + hres in
                Array.unsafe_set stk p
                  (Array.unsafe_get stk p
                  -. Array.unsafe_get stk (st.base + bl));
                next)
        | Ast.FMul ->
            emit1 (fun next st ->
                let inst = st.inst in
                tick_n inst 2;
                mtr.local_access <- mtr.local_access + 1;
                mtr.fmul <- mtr.fmul + 1;
                let stk = st.stk in
                let p = st.opbase + hres in
                Array.unsafe_set stk p
                  (Array.unsafe_get stk p
                  *. Array.unsafe_get stk (st.base + bl));
                next)
        | Ast.FDiv ->
            emit1 (fun next st ->
                let inst = st.inst in
                tick_n inst 2;
                mtr.local_access <- mtr.local_access + 1;
                mtr.fdiv <- mtr.fdiv + 1;
                let stk = st.stk in
                let p = st.opbase + hres in
                Array.unsafe_set stk p
                  (Array.unsafe_get stk p
                  /. Array.unsafe_get stk (st.base + bl));
                next)
        | _ ->
            let bump = fbinop_bump op in
            emit1 (fun next st ->
                let inst = st.inst in
                tick_n inst 2;
                mtr.local_access <- mtr.local_access + 1;
                bump mtr;
                let stk = st.stk in
                let p = st.opbase + hres in
                let x = Array.unsafe_get stk p in
                let y = Array.unsafe_get stk (st.base + bl) in
                Array.unsafe_set stk p (Numerics.eval_fbinop op x y);
                next));
        n_instrs := !n_instrs + 2;
        n_fused := !n_fused + 2;
        bump_idiom "f64.lg.op";
        2
    (* f64 binop; local.set — compute and park the result in a
       register in one step *)
    | ( Some (Code.Basic (Ast.FBinop (Ast.W64, fop), _)),
        Some (Code.Basic (Ast.LocalSet v, _)),
        _,
        _,
        _ )
      when local_ok v
           && local_tys.(v) = Types.F64
           && (match !ts with
              | Types.F64 :: Types.F64 :: _ -> true
              | _ -> false) ->
        pop_ty Types.F64;
        pop_ty Types.F64;
        push Types.F64;
        pop_ty Types.F64;
        let hx = !h in
        (match fop with
        | Ast.FAdd ->
            emit1 (fun next st ->
                let inst = st.inst in
                tick_n inst 2;
                mtr.falu <- mtr.falu + 1;
                mtr.local_access <- mtr.local_access + 1;
                let stk = st.stk in
                let p = st.opbase + hx in
                Array.unsafe_set stk (st.base + v)
                  (Array.unsafe_get stk p +. Array.unsafe_get stk (p + 1));
                next)
        | Ast.FSub ->
            emit1 (fun next st ->
                let inst = st.inst in
                tick_n inst 2;
                mtr.falu <- mtr.falu + 1;
                mtr.local_access <- mtr.local_access + 1;
                let stk = st.stk in
                let p = st.opbase + hx in
                Array.unsafe_set stk (st.base + v)
                  (Array.unsafe_get stk p -. Array.unsafe_get stk (p + 1));
                next)
        | Ast.FMul ->
            emit1 (fun next st ->
                let inst = st.inst in
                tick_n inst 2;
                mtr.fmul <- mtr.fmul + 1;
                mtr.local_access <- mtr.local_access + 1;
                let stk = st.stk in
                let p = st.opbase + hx in
                Array.unsafe_set stk (st.base + v)
                  (Array.unsafe_get stk p *. Array.unsafe_get stk (p + 1));
                next)
        | Ast.FDiv ->
            emit1 (fun next st ->
                let inst = st.inst in
                tick_n inst 2;
                mtr.fdiv <- mtr.fdiv + 1;
                mtr.local_access <- mtr.local_access + 1;
                let stk = st.stk in
                let p = st.opbase + hx in
                Array.unsafe_set stk (st.base + v)
                  (Array.unsafe_get stk p /. Array.unsafe_get stk (p + 1));
                next)
        | _ ->
            let bump = fbinop_bump fop in
            emit1 (fun next st ->
                let inst = st.inst in
                tick_n inst 2;
                bump mtr;
                mtr.local_access <- mtr.local_access + 1;
                let stk = st.stk in
                let p = st.opbase + hx in
                Array.unsafe_set stk (st.base + v)
                  (Numerics.eval_fbinop fop (Array.unsafe_get stk p)
                     (Array.unsafe_get stk (p + 1)));
                next));
        n_instrs := !n_instrs + 2;
        n_fused := !n_fused + 2;
        bump_idiom "f64.op.ls";
        2
    (* local.get value; store — store straight from a register *)
    | ( Some (Code.Basic (Ast.LocalGet v, _)),
        Some (Code.Basic (Ast.Store (sty, pack, ma), sid)),
        _,
        _,
        _ )
      when local_ok v && mem_idx <> None
           && local_tys.(v) = sty
           && (match !ts with
              | (Types.I32 | Types.I64) :: _ -> true
              | _ -> false)
           && (match store_kind sty pack with
              | _ -> true
              | exception Unsupported _ -> false) ->
        push local_tys.(v);
        pop_ty sty;
        let addr_ty = pop_addr () in
        let ha = !h in
        let len, sk = store_kind sty pack in
        let off = native_off ma.Ast.offset in
        let elide = elide_of sid in
        let ebounds = belide_of sid in
        let body =
          store_body ~addr_ty ~elide ~ebounds ~len ~sk ~off ~src:(Sop ha)
            ~vsrc:(Sloc v)
        in
        emit1 (fun next st ->
            let inst = st.inst in
            tick_n inst 2;
            mtr.local_access <- mtr.local_access + 1;
            body st;
            next);
        n_instrs := !n_instrs + 2;
        n_fused := !n_fused + 2;
        bump_idiom "lg.store";
        2
    (* i32.add; f64.load; f64 binop — finish the address chain, pull
       the element and fold it into the running product/sum. *)
    | ( Some (Code.Basic (Ast.IBinop (Ast.W32, Ast.Add), _)),
        Some (Code.Basic (Ast.Load (Types.F64, None, ma), lid)),
        Some (Code.Basic (Ast.FBinop (Ast.W64, fop), _)),
        _,
        _ )
      when mem_idx <> None
           && (match fop with
              | Ast.FAdd | Ast.FSub | Ast.FMul | Ast.FDiv -> true
              | _ -> false)
           && (match !ts with
              | Types.I32 :: Types.I32 :: Types.F64 :: _ -> true
              | _ -> false) ->
        pop_ty Types.I32;
        pop_ty Types.I32;
        push Types.I32;
        pop_ty Types.I32;
        push Types.F64;
        pop_ty Types.F64;
        pop_ty Types.F64;
        push Types.F64;
        let hres = !h - 1 in
        let hadd = hres + 1 in
        let off = native_off ma.Ast.offset in
        let elide = elide_of lid in
        let ebounds = belide_of lid in
        let body =
          load_body ~addr_ty:Types.I32 ~elide ~ebounds ~len:8 ~lk:Lk_f64 ~off
            ~src:(Sop hadd) ~dst:(Sop hadd)
        in
        (match fop with
        | Ast.FAdd ->
            emit1 (fun next st ->
                let inst = st.inst in
                tick_n inst 3;
                mtr.ialu <- mtr.ialu + 1;
                let stk = st.stk in
                let p = st.opbase + hadd in
                let x = int_of_slot (Array.unsafe_get stk p) in
                let y = int_of_slot (Array.unsafe_get stk (p + 1)) in
                Array.unsafe_set stk p (slot_of_int (norm32 (x + y)));
                body st;
                mtr.falu <- mtr.falu + 1;
                let q = st.opbase + hres in
                Array.unsafe_set stk q
                  (Array.unsafe_get stk q +. Array.unsafe_get stk (q + 1));
                next)
        | Ast.FSub ->
            emit1 (fun next st ->
                let inst = st.inst in
                tick_n inst 3;
                mtr.ialu <- mtr.ialu + 1;
                let stk = st.stk in
                let p = st.opbase + hadd in
                let x = int_of_slot (Array.unsafe_get stk p) in
                let y = int_of_slot (Array.unsafe_get stk (p + 1)) in
                Array.unsafe_set stk p (slot_of_int (norm32 (x + y)));
                body st;
                mtr.falu <- mtr.falu + 1;
                let q = st.opbase + hres in
                Array.unsafe_set stk q
                  (Array.unsafe_get stk q -. Array.unsafe_get stk (q + 1));
                next)
        | Ast.FMul ->
            emit1 (fun next st ->
                let inst = st.inst in
                tick_n inst 3;
                mtr.ialu <- mtr.ialu + 1;
                let stk = st.stk in
                let p = st.opbase + hadd in
                let x = int_of_slot (Array.unsafe_get stk p) in
                let y = int_of_slot (Array.unsafe_get stk (p + 1)) in
                Array.unsafe_set stk p (slot_of_int (norm32 (x + y)));
                body st;
                mtr.fmul <- mtr.fmul + 1;
                let q = st.opbase + hres in
                Array.unsafe_set stk q
                  (Array.unsafe_get stk q *. Array.unsafe_get stk (q + 1));
                next)
        | _ ->
            emit1 (fun next st ->
                let inst = st.inst in
                tick_n inst 3;
                mtr.ialu <- mtr.ialu + 1;
                let stk = st.stk in
                let p = st.opbase + hadd in
                let x = int_of_slot (Array.unsafe_get stk p) in
                let y = int_of_slot (Array.unsafe_get stk (p + 1)) in
                Array.unsafe_set stk p (slot_of_int (norm32 (x + y)));
                body st;
                mtr.fdiv <- mtr.fdiv + 1;
                let q = st.opbase + hres in
                Array.unsafe_set stk q
                  (Array.unsafe_get stk q /. Array.unsafe_get stk (q + 1));
                next));
        n_instrs := !n_instrs + 3;
        n_fused := !n_fused + 3;
        bump_idiom "i32.add.load.f64.op";
        3
    (* i32.add; local.get v; store — finish the address chain and
       store straight from a register. *)
    | ( Some (Code.Basic (Ast.IBinop (Ast.W32, Ast.Add), _)),
        Some (Code.Basic (Ast.LocalGet v, _)),
        Some (Code.Basic (Ast.Store (sty, pack, ma), sid)),
        _,
        _ )
      when local_ok v && mem_idx <> None
           && local_tys.(v) = sty
           && (match !ts with
              | Types.I32 :: Types.I32 :: _ -> true
              | _ -> false)
           && (match store_kind sty pack with
              | _ -> true
              | exception Unsupported _ -> false) ->
        pop_ty Types.I32;
        pop_ty Types.I32;
        push Types.I32;
        push local_tys.(v);
        pop_ty sty;
        let addr_ty = pop_addr () in
        let ha = !h in
        let len, sk = store_kind sty pack in
        let off = native_off ma.Ast.offset in
        let elide = elide_of sid in
        let ebounds = belide_of sid in
        let body =
          store_body ~addr_ty ~elide ~ebounds ~len ~sk ~off ~src:(Sop ha)
            ~vsrc:(Sloc v)
        in
        emit1 (fun next st ->
            let inst = st.inst in
            tick_n inst 3;
            mtr.ialu <- mtr.ialu + 1;
            let stk = st.stk in
            let p = st.opbase + ha in
            let x = int_of_slot (Array.unsafe_get stk p) in
            let y = int_of_slot (Array.unsafe_get stk (p + 1)) in
            Array.unsafe_set stk p (slot_of_int (norm32 (x + y)));
            mtr.local_access <- mtr.local_access + 1;
            body st;
            next);
        n_instrs := !n_instrs + 3;
        n_fused := !n_fused + 3;
        bump_idiom "i32.add.lg.store";
        3
    (* i32.add; load — fold the last address-chain step into the access *)
    | ( Some (Code.Basic (Ast.IBinop (Ast.W32, Ast.Add), _)),
        Some (Code.Basic (Ast.Load (lty, pack, ma), lid)),
        _,
        _,
        _ )
      when mem_idx <> None
           && (match !ts with
              | Types.I32 :: Types.I32 :: _ -> true
              | _ -> false)
           && (match load_kind lty pack with
              | _ -> true
              | exception Unsupported _ -> false) ->
        pop_ty Types.I32;
        pop_ty Types.I32;
        push Types.I32;
        pop_ty Types.I32;
        push lty;
        let hres = !h - 1 in
        let len, lk = load_kind lty pack in
        let off = native_off ma.Ast.offset in
        let elide = elide_of lid in
        let ebounds = belide_of lid in
        let body =
          load_body ~addr_ty:Types.I32 ~elide ~ebounds ~len ~lk ~off ~src:(Sop hres)
            ~dst:(Sop hres)
        in
        emit1 (fun next st ->
            let inst = st.inst in
            tick_n inst 2;
            mtr.ialu <- mtr.ialu + 1;
            let stk = st.stk in
            let p = st.opbase + hres in
            let x = int_of_slot (Array.unsafe_get stk p) in
            let y = int_of_slot (Array.unsafe_get stk (p + 1)) in
            Array.unsafe_set stk p (slot_of_int (norm32 (x + y)));
            body st;
            next);
        n_instrs := !n_instrs + 2;
        n_fused := !n_fused + 2;
        bump_idiom "i32.add.load";
        2
    (* load; local.set *)
    | ( Some (Code.Basic (Ast.Load (lty, pack, ma), lid)),
        Some (Code.Basic (Ast.LocalSet j, _)),
        _,
        _,
        _ )
      when local_ok j && mem_idx <> None
           && local_tys.(j) = lty
           && (match load_kind lty pack with
              | _ -> true
              | exception Unsupported _ -> false)
           && (match !ts with
              | (Types.I32 | Types.I64) :: _ -> true
              | _ -> false) ->
        let addr_ty = pop_addr () in
        push lty;
        pop_ty local_tys.(j);
        let ha = !h in
        let len, lk = load_kind lty pack in
        let off = native_off ma.Ast.offset in
        let elide = elide_of lid in
        let ebounds = belide_of lid in
        let body =
          load_body ~addr_ty ~elide ~ebounds ~len ~lk ~off ~src:(Sop ha)
            ~dst:(Sloc j)
        in
        emit1 (fun next st ->
            let inst = st.inst in
            tick_n inst 2;
            body st;
            mtr.local_access <- mtr.local_access + 1;
            next);
        n_instrs := !n_instrs + 2;
        n_fused := !n_fused + 2;
        bump_idiom "load.ls";
        2
    (* i32.const; i32 binop — constant-folded RHS on the stack top *)
    | ( Some (Code.Basic (Ast.I32Const c, _)),
        Some (Code.Basic (Ast.IBinop (Ast.W32, op), _)),
        _,
        _,
        _ )
      when i32_binop_fusable op
           && (match !ts with Types.I32 :: _ -> true | _ -> false) ->
        push Types.I32;
        pop_ty Types.I32;
        pop_ty Types.I32;
        push Types.I32;
        let hres = !h - 1 in
        let y = norm32 (Int32.to_int c) in
        let fn = i32_binop_fn op in
        let bump = ibinop_bump op in
        emit1 (fun next st ->
            let inst = st.inst in
            tick_n inst 2;
            mtr.const <- mtr.const + 1;
                bump mtr;
            let stk = st.stk in
            let p = st.opbase + hres in
            let x = int_of_slot (Array.unsafe_get stk p) in
            Array.unsafe_set stk p (slot_of_int (fn x y));
            next);
        n_instrs := !n_instrs + 2;
        n_fused := !n_fused + 2;
        bump_idiom "i32.const.op";
        2
    (* i32 relop; br_if — the compare-branch idiom *)
    | ( Some (Code.Basic (Ast.IRelop (Ast.W32, op), _)),
        Some (Code.BrIf l),
        _,
        _,
        _ )
      when match !ts with
           | Types.I32 :: Types.I32 :: _ -> true
           | _ -> false ->
        pop_ty Types.I32;
        pop_ty Types.I32;
        push Types.I32;
        pop_ty Types.I32;
        let hx = !h in
        let act = branch_action labels l in
        let fn = i32_relop_fn op in
        emit1 (fun next st ->
            let inst = st.inst in
            tick_n inst 2;
            mtr.ialu <- mtr.ialu + 1;
            let stk = st.stk in
            let p = st.opbase + hx in
            let x = int_of_slot (Array.unsafe_get stk p) in
            let y = int_of_slot (Array.unsafe_get stk (p + 1)) in
            meter_br inst;
            if fn x y then act st else next);
        n_instrs := !n_instrs + 2;
        n_fused := !n_fused + 2;
        bump_idiom "i32.relop.brif";
        2
    (* i32.eqz; br_if — branch on zero *)
    | ( Some (Code.Basic (Ast.ITestop Ast.W32, _)),
        Some (Code.BrIf l),
        _,
        _,
        _ )
      when match !ts with
           | Types.I32 :: _ -> true
           | _ -> false ->
        pop_ty Types.I32;
        push Types.I32;
        pop_ty Types.I32;
        let hx = !h in
        let act = branch_action labels l in
        emit1 (fun next st ->
            let inst = st.inst in
            tick_n inst 2;
            mtr.ialu <- mtr.ialu + 1;
            let stk = st.stk in
            let z =
              Int64.bits_of_float (Array.unsafe_get stk (st.opbase + hx)) = 0L
            in
            meter_br inst;
            if z then act st else next);
        n_instrs := !n_instrs + 2;
        n_fused := !n_fused + 2;
        bump_idiom "i32.eqz.brif";
        2
    | _ -> 0
  in
  (* ---------------------------------------------------------------- *)
  (* Control-flow compilation                                          *)
  (* ---------------------------------------------------------------- *)
  let rec compile_seq labels (body : Code.instr array) : bool =
    let n = Array.length body in
    let live = ref true in
    let i = ref 0 in
    while !i < n do
      if not !live then incr i (* dead code: ids pre-assigned, skip *)
      else begin
        let consumed = try_fuse labels body !i in
        if consumed > 0 then i := !i + consumed
        else begin
          (match compile_instr labels body.(!i) with
          | `Live -> ()
          | `Dead -> live := false);
          incr i
        end
      end
    done;
    !live
  and compile_instr labels (ins : Code.instr) : [ `Live | `Dead ] =
    match ins with
    | Code.Basic (b, id) ->
        incr n_instrs;
        compile_basic b id
    | Code.Block (arity, inner) -> (
        incr n_instrs;
        let fr =
          {
            l_target = ref (-1);
            l_kind = `Block;
            l_arity = arity;
            l_entry = !ts;
            l_merge = None;
          }
        in
        (* the Block node itself ticks once when entered *)
        emit1 (fun next st ->
            tick st.inst;
            next);
        let ft = compile_seq (fr :: labels) inner in
        if ft then begin
          match fr.l_merge with
          | None -> fr.l_merge <- Some !ts
          | Some s -> if s <> !ts then unsupported "block end stack mismatch"
        end;
        fr.l_target := !count;
        match fr.l_merge with
        | Some s ->
            ts := s;
            h := List.length s;
            `Live
        | None -> `Dead)
    | Code.Loop inner ->
        incr n_instrs;
        emit1 (fun next st ->
            tick st.inst;
            next);
        (* back-edges land after the entry tick: the interpreter ticks a
           Loop node once, not per iteration *)
        let fr =
          {
            l_target = ref !count;
            l_kind = `Loop;
            l_arity = 0;
            l_entry = !ts;
            l_merge = None;
          }
        in
        let ft = compile_seq (fr :: labels) inner in
        if ft then `Live else `Dead
    | Code.If (arity, then_, else_) -> (
        incr n_instrs;
        pop_ty Types.I32;
        let entry_ts = !ts in
        let entry_h = !h in
        let hcond = !h in
        let fr =
          {
            l_target = ref (-1);
            l_kind = `Block;
            l_arity = arity;
            l_entry = entry_ts;
            l_merge = None;
          }
        in
        let else_ref = ref (-1) in
        emit1 (fun next st ->
            tick st.inst;
            meter_br st.inst;
            if
              Int64.bits_of_float (Array.unsafe_get st.stk (st.opbase + hcond))
              <> 0L
            then next
            else !else_ref);
        let ft_then = compile_seq (fr :: labels) then_ in
        if ft_then then begin
          (match fr.l_merge with
          | None -> fr.l_merge <- Some !ts
          | Some s -> if s <> !ts then unsupported "if join stack mismatch");
          (* jump over the else arm (no tick: synthetic control) *)
          if Array.length else_ > 0 then
            emit1 (fun _next _st -> !(fr.l_target))
        end;
        else_ref := !count;
        ts := entry_ts;
        h := entry_h;
        let ft_else = compile_seq (fr :: labels) else_ in
        if ft_else then begin
          match fr.l_merge with
          | None -> fr.l_merge <- Some !ts
          | Some s -> if s <> !ts then unsupported "if join stack mismatch"
        end;
        fr.l_target := !count;
        match fr.l_merge with
        | Some s ->
            ts := s;
            h := List.length s;
            `Live
        | None -> `Dead)
    | Code.Br l ->
        incr n_instrs;
        let act = branch_action labels l in
        emit1 (fun _next st ->
            tick st.inst;
            meter_br st.inst;
            act st);
        `Dead
    | Code.BrIf l ->
        incr n_instrs;
        pop_ty Types.I32;
        let hcond = !h in
        let act = branch_action labels l in
        emit1 (fun next st ->
            tick st.inst;
            meter_br st.inst;
            if
              Int64.bits_of_float (Array.unsafe_get st.stk (st.opbase + hcond))
              <> 0L
            then act st
            else next);
        `Live
    | Code.BrTable (targets, default) ->
        incr n_instrs;
        pop_ty Types.I32;
        let hidx = !h in
        let acts = Array.map (branch_action labels) targets in
        let default_act = branch_action labels default in
        let nt = Array.length acts in
        emit1 (fun _next st ->
            tick st.inst;
            meter_br st.inst;
            let idx =
              int_of_slot (Array.unsafe_get st.stk (st.opbase + hidx))
            in
            let act =
              if idx >= 0 && idx < nt then Array.unsafe_get acts idx
              else default_act
            in
            act st);
        `Dead
    | Code.Return _arity ->
        incr n_instrs;
        let move = exit_move () in
        let exit_ref = (List.nth labels (List.length labels - 1)).l_target in
        emit1 (fun _next st ->
            tick st.inst;
            mtr.return_ <- mtr.return_ + 1;
            move st;
            !exit_ref);
        `Dead
  in
  (* ---------------------------------------------------------------- *)
  (* Drive it                                                          *)
  (* ---------------------------------------------------------------- *)
  let exit_ref = ref (-1) in
  let func_frame =
    {
      l_target = exit_ref;
      l_kind = `Func;
      l_arity = result_arity;
      l_entry = rev_results;
      l_merge = None;
    }
  in
  try
    let ft = compile_seq [ func_frame ] code.body in
    if ft then begin
      let move = exit_move () in
      if !h > result_arity && result_arity > 0 then
        emit1 (fun next st ->
            move st;
            next)
    end;
    exit_ref := !count;
    let ops = Array.of_list (List.rev !rev_ops) in
    let stats =
      {
        st_name = name;
        st_instrs = !n_instrs;
        st_fused = !n_fused;
        st_idioms = List.map (fun (k, r) -> (k, !r)) !idioms;
        st_accesses = !n_acc;
        st_elided = !n_elided;
        st_supported = true;
      }
    in
    ( Some
        {
          ops;
          nparams;
          nlocals;
          result_arity;
          result_tys = Array.of_list ty.results;
          frame_slots = nparams + nlocals + !max_h;
          stats;
        },
      stats )
  with Unsupported _ ->
    let stats =
      {
        st_name = name;
        st_instrs = 0;
        st_fused = 0;
        st_idioms = [];
        st_accesses = 0;
        st_elided = 0;
        st_supported = false;
      }
    in
    (None, stats)

(** Compile every local function of an instantiated module, filling the
    [xcode] slots of its [Wasm_func]s in place. Called by
    [Exec.instantiate] once, right after the function table exists and
    before element/data segments and the start function run. *)
let compile_instance (inst : Instance.t) =
  (* Bake a meter into every op unconditionally: when the instance has
     none, a private dummy absorbs the counts — an unconditional field
     increment is cheaper than a per-op option match, and the dummy is
     never observable (nothing else holds it). *)
  let mtr = match inst.meter with Some m -> m | None -> Meter.create () in
  Array.iteri
    (fun i fi ->
      match fi with
      | Instance.Host_func _ -> ()
      | Instance.Wasm_func ({ func; ty; code; _ } as w) ->
          let xf, _stats =
            compile ~m:inst.module_
              ~name:(Instance.func_name inst i)
              ~ty ~func ~code ~mtr
          in
          w.xcode <- xf)
    inst.funcs

(** Compile all functions of a module without instantiating it — the
    [cagec --Wfusion] entry point. Returns per-function stats in
    function-index order (local functions only). [elide] is the static
    analyzer's bitset array, as passed to instantiation. *)
let module_stats ?(elide = [||]) ?(belide = [||]) ?(arena = [||])
    (m : Ast.module_) : Xcode.stats list =
  List.mapi
    (fun j (f : Ast.func) ->
      let ty = List.nth m.types f.ftype in
      let row a = if j < Array.length a then a.(j) else Bytes.empty in
      let code =
        Code.prepare ~elide:(row elide) ~belide:(row belide)
          ~arena:(row arena)
          ~result_arity:(List.length ty.results)
          f.body
      in
      let name =
        match f.fname with
        | Some n -> n
        | None -> Printf.sprintf "f%d" (Ast.num_imports m + j)
      in
      snd (compile ~m ~name ~ty ~func:f ~code ~mtr:(Meter.create ())))
    m.funcs
