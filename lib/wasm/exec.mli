(** The execution driver: instantiation and invocation over both
    engines — the tree-walking interpreter (the reference semantics and
    the per-function fallback) and the threaded-code engine
    ({!Compile}), selected per instance by {!Instance.config.engine}.

    Loads and stores check allocation tags when the instance was
    instantiated with [enforce_tags] (Eqs. 1-4); the five Cage
    instructions implement Eqs. 5-13 ([segment.new] draws a random
    excluded-set-respecting tag and zeroes the region; [segment.free]
    verifies ownership — catching double-frees — then retags;
    [i64.pointer_auth] traps on a bad signature). Execution events are
    recorded in the instance's {!Wasm.Meter.t} so the Cage lowering
    layer can price runs under different hardware configurations
    without re-executing.

    Traps surface as {!Instance.Trap}. *)

val max_call_depth : int
(** Call-stack limit; exceeding it traps with "call stack exhausted".
    (Alias of {!Rt.max_call_depth}, which both engines enforce.) *)

val instantiate :
  ?config:Instance.config ->
  ?imports:(string * string * Instance.host_func) list ->
  Ast.module_ ->
  Instance.t
(** Instantiate a {e validated} module: resolve imports by
    (module, name), create and zero the memory and its tag space, apply
    data and element segments, and run the start function.
    @raise Instance.Trap on unresolved imports, segment range errors, or
    a trapping start function. *)

val invoke : Instance.t -> string -> Values.t list -> Values.t list
(** Call an exported function by name.
    @raise Instance.Trap on traps or a missing export. *)

val invoke_function : Instance.t -> int -> Values.t list -> Values.t list
(** Call a function by index in the instance's function index space. *)
