(** The unified checked memory-access layer.

    Every memory access the interpreter performs — scalar loads and
    stores (Eqs. 1-4 of the paper) {e and} the bulk-memory operations
    [memory.fill]/[memory.copy] — funnels through this module: one
    place that does the bounds check, the MTE allocation-tag check, and
    the event metering, in that order. Bulk operations used to strip
    the pointer tag and skip tag checking entirely, silently bypassing
    the paper's safety claim; here they are checked per granule span
    with exactly the scalar rules (Sync traps before the transfer,
    Async/Asymmetric record the sticky deferred fault that the
    interpreter drains at synchronization points). *)

open Instance

let trap fmt = Format.kasprintf (fun s -> raise (Trap s)) fmt

(* Bits 48-55 of a 64-bit address are checked by the MMU even with TBI
   enabled (the tag lives in 56-59, ignored bits are 56-63); a pointer
   carrying PAC-signature bits there is non-canonical and faults. This
   is what makes "signed pointers cannot access memory" true. *)
let noncanonical_mask = 0x00ff_0000_0000_0000L

(** Resolve an address operand to (effective address, logical tag).
    The tag is NOT stripped: it is what the access is checked with. *)
let resolve_addr (idx : Values.t) (offset : int64) =
  match idx with
  | Values.I32 i ->
      (Int64.add (Int64.logand (Int64.of_int32 i) 0xffffffffL) offset,
       Arch.Tag.zero)
  | Values.I64 p ->
      if Int64.logand p noncanonical_mask <> 0L then
        trap "non-canonical address 0x%Lx" p;
      (Int64.add (Arch.Ptr.address p) offset, Arch.Ptr.tag p)
  | v -> trap "bad address operand %a" Values.pp v

(* The single tag-check entry point. [Deferred] faults are already
   latched in the engine's sticky TFSR by [Mte.check]; the interpreter
   drains them at synchronization points (see [Exec]). The "deferred"
   prefix below is the marker those drain sites use. *)
let check_tags (inst : Instance.t) access ~addr ~tag ~len =
  if inst.enforce_tags then
    match inst.mte with
    | None -> ()
    | Some mte -> (
        let ptr = Arch.Ptr.with_tag addr tag in
        match Arch.Mte.check mte access ~ptr ~len with
        | Arch.Mte.Allowed | Arch.Mte.Deferred _ -> ()
        | Arch.Mte.Faulted f -> trap "%a" Arch.Mte.pp_fault f)

(** Bounds + tag check + metering for a scalar load of [len] bytes. *)
let load (inst : Instance.t) mem ~addr ~tag ~len =
  if not (Memory.in_bounds mem ~addr ~len) then
    trap "out of bounds memory access";
  check_tags inst Arch.Mte.Load ~addr ~tag ~len:(Int64.of_int len);
  match inst.meter with
  | Some m ->
      m.Meter.loads <- m.Meter.loads + 1;
      m.Meter.load_bytes <- m.Meter.load_bytes + len
  | None -> ()

(** Bounds + tag check + metering for a scalar store of [len] bytes. *)
let store (inst : Instance.t) mem ~addr ~tag ~len =
  if not (Memory.in_bounds mem ~addr ~len) then
    trap "out of bounds memory access";
  check_tags inst Arch.Mte.Store ~addr ~tag ~len:(Int64.of_int len);
  match inst.meter with
  | Some m ->
      m.Meter.stores <- m.Meter.stores + 1;
      m.Meter.store_bytes <- m.Meter.store_bytes + len
  | None -> ()

(* A bulk transfer is priced as 16-byte-chunk traffic (the stp/ldp
   stream a memmove compiles to); a zero-length op still costs its
   setup, hence [max 1]. *)
let bulk_chunks len = max 1 (Int64.to_int (Int64.div len 16L))

let meter_bulk_load (inst : Instance.t) ~len =
  match inst.meter with
  | Some m ->
      m.Meter.loads <- m.Meter.loads + bulk_chunks len;
      m.Meter.load_bytes <- m.Meter.load_bytes + Int64.to_int len
  | None -> ()

let meter_bulk_store (inst : Instance.t) ~len =
  match inst.meter with
  | Some m ->
      m.Meter.stores <- m.Meter.stores + bulk_chunks len;
      m.Meter.store_bytes <- m.Meter.store_bytes + Int64.to_int len
  | None -> ()

(* Bounds + tag check for one side of a bulk operation. A zero-length
   transfer touches no memory: the spec requires only that the address
   itself be in bounds (the boundary address is legal), and no granule
   is tag-checked. *)
let bulk_check (inst : Instance.t) mem access ~what ~addr ~tag ~len =
  if not (Memory.in_bounds64 mem ~addr ~len) then
    trap "out of bounds %s" what;
  if len > 0L then check_tags inst access ~addr ~tag ~len

(** Checked destination span of [memory.fill] (and the write half of
    [memory.copy]): tag-checked as a Store over the whole granule
    span. *)
let bulk_store (inst : Instance.t) mem ~what ~addr ~tag ~len =
  bulk_check inst mem Arch.Mte.Store ~what ~addr ~tag ~len;
  meter_bulk_store inst ~len

(** Checked source span of [memory.copy]: tag-checked as a Load. *)
let bulk_load (inst : Instance.t) mem ~what ~addr ~tag ~len =
  bulk_check inst mem Arch.Mte.Load ~what ~addr ~tag ~len;
  meter_bulk_load inst ~len
