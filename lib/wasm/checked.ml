(** The unified checked memory-access layer.

    Every memory access the interpreter performs — scalar loads and
    stores (Eqs. 1-4 of the paper) {e and} the bulk-memory operations
    [memory.fill]/[memory.copy] — funnels through this module: one
    place that does the bounds check, the MTE allocation-tag check, and
    the event metering, in that order.

    Trap messages carry a stable, parseable prefix taxonomy so
    supervisors classify failures by structure instead of substring
    fishing:

    - ["bounds:"]    sandbox violations — out-of-bounds spans and
                     non-canonical addresses (the MMU check)
    - ["tag fault:"] synchronous MTE mismatches (from
                     {!Arch.Mte.pp_fault})
    - ["deferred:"]  asynchronous MTE mismatches reported at a
                     synchronization point (raised in [Exec])

    Bulk operations have partial-write semantics pinned down per MTE
    mode: the engine checks the source span then the destination span
    (within each 16-byte beat of the ldp/stp stream the load precedes
    the store); a {e synchronous} fault stops the transfer at the
    earliest mismatching granule, so exactly the bytes before it land;
    a {e deferred} fault latches in the sticky TFSR and every byte
    lands. *)

open Instance

let trap fmt = Format.kasprintf (fun s -> raise (Trap s)) fmt

(* Bits 48-55 of a 64-bit address are checked by the MMU even with TBI
   enabled (the tag lives in 56-59, ignored bits are 56-63); a pointer
   carrying PAC-signature bits there is non-canonical and faults. This
   is what makes "signed pointers cannot access memory" true. *)
let noncanonical_mask = 0x00ff_0000_0000_0000L

(** Resolve a 32-bit address operand: zero-extend and add the static
    offset. i32 indices are untagged sandbox-relative offsets, so the
    logical tag is always {!Arch.Tag.zero}. *)
let resolve_addr_i32 (i : int32) (offset : int64) =
  Int64.add (Int64.logand (Int64.of_int32 i) 0xffffffffL) offset

(* The chaos corruptions, split per draw so the threaded engine's
   native-int fast path can consume the draws itself and only fall into
   these (boxed) arms on a hit. [corrupt_sig] runs after a [Ptr_sig]
   hit — it still owes the [Ptr_tag] draw; [corrupt_tag] after a
   [Ptr_sig] miss and [Ptr_tag] hit. *)
let rec corrupt_sig (p : int64) =
  let bit = 49 + Arch.Fault_inject.rand_int 6 in
  Arch.Fault_inject.note "pointer 0x%Lx: stray signature bit %d" p bit;
  let p = Int64.logor p (Int64.shift_left 1L bit) in
  if Arch.Fault_inject.draw Arch.Fault_inject.Ptr_tag then corrupt_tag p else p

and corrupt_tag (p : int64) =
  let t = Arch.Tag.to_int (Arch.Ptr.tag p) in
  let bad = (t + 1 + Arch.Fault_inject.rand_int 15) mod 16 in
  Arch.Fault_inject.note "pointer 0x%Lx: tag %d -> %d" p t bad;
  Arch.Ptr.with_tag p (Arch.Tag.of_int bad)

(** Resolve a 64-bit (tagged-pointer) address operand to (effective
    address, logical tag). The tag is NOT stripped: it is what the
    access is checked with. This is also where the chaos engine
    corrupts live pointers — a flipped tag nibble ([Ptr_tag]) or stray
    signature bits ([Ptr_sig]) land here, between the producer of the
    pointer and the access. *)
let resolve_addr_i64 (p : int64) (offset : int64) =
  let p =
    if Arch.Fault_inject.draw Arch.Fault_inject.Ptr_sig then corrupt_sig p
    else if Arch.Fault_inject.draw Arch.Fault_inject.Ptr_tag then corrupt_tag p
    else p
  in
  if Int64.logand p noncanonical_mask <> 0L then
    trap "bounds: non-canonical address 0x%Lx" p;
  (Int64.add (Arch.Ptr.address p) offset, Arch.Ptr.tag p)

(* Finish resolving an already-corrupted pointer on the native-int
   path: same non-canonical check and address/tag split, result as a
   native int. *)
let resolve_corrupt_native (p : int64) (offset : int) : int * Arch.Tag.t =
  if Int64.logand p noncanonical_mask <> 0L then
    trap "bounds: non-canonical address 0x%Lx" p;
  (Int64.to_int (Arch.Ptr.address p) + offset, Arch.Ptr.tag p)

(** Resolve a boxed address operand (the interpreter's entry point;
    the threaded engine calls the statically-typed variants above). *)
let resolve_addr (idx : Values.t) (offset : int64) =
  match idx with
  | Values.I32 i -> (resolve_addr_i32 i offset, Arch.Tag.zero)
  | Values.I64 p -> resolve_addr_i64 p offset
  | v -> trap "bad address operand %a" Values.pp v

(* The tag-check verdict for one span. [Deferred] faults are latched in
   the engine's sticky TFSR by [Mte.check]; the interpreter drains them
   at synchronization points (see [Exec]). *)
let tag_verdict (inst : Instance.t) access ~addr ~tag ~len =
  if not inst.enforce_tags then Arch.Mte.Allowed
  else
    match inst.mte with
    | None -> Arch.Mte.Allowed
    | Some mte ->
        Arch.Mte.check mte access ~ptr:(Arch.Ptr.with_tag addr tag) ~len

(* Raise a synchronous tag fault, keeping the structured record on the
   instance so a supervisor's post-mortem reports address/tags/access
   without re-parsing the message. *)
let raise_tag_fault (inst : Instance.t) f =
  inst.last_fault <- Some f;
  trap "%a" Arch.Mte.pp_fault f

(* The single tag-check entry point for scalar accesses. *)
let check_tags (inst : Instance.t) access ~addr ~tag ~len =
  match tag_verdict inst access ~addr ~tag ~len with
  | Arch.Mte.Allowed | Arch.Mte.Deferred _ -> ()
  | Arch.Mte.Faulted f -> raise_tag_fault inst f

(* [check_tags] with native-int address/length, for the threaded
   engine, which guards on [inst.enforce_tags] itself so the
   untagged-config fast path never boxes the address. *)
let check_tags_native (inst : Instance.t) access ~(addr : int) ~tag ~(len : int)
    =
  match inst.mte with
  | None -> ()
  | Some mte -> (
      match
        Arch.Mte.check mte access
          ~ptr:(Arch.Ptr.with_tag (Int64.of_int addr) tag)
          ~len:(Int64.of_int len)
      with
      | Arch.Mte.Allowed | Arch.Mte.Deferred _ -> ()
      | Arch.Mte.Faulted f -> raise_tag_fault inst f)

(* An elided access: the static analyzer proved the span in-bounds on a
   definitely-live segment, so the MTE granule check (and its span-check
   observability event) is skipped. The bounds check stays — elision
   removes the {e tag} check only, never the sandbox. *)
let note_elided (inst : Instance.t) =
  (match inst.meter with
  | Some m -> m.Meter.elided_checks <- m.Meter.elided_checks + 1
  | None -> ());
  if Obs.Hook.enabled () then Obs.Hook.event Obs.Event.Check_elided

(* A bounds-elided access: the analyzer proved the span inside a
   successfully created segment, and a created segment lies inside
   linear memory, so the sandbox span check is also redundant. *)
let note_ebounds (inst : Instance.t) =
  (match inst.meter with
  | Some m -> m.Meter.elided_bounds <- m.Meter.elided_bounds + 1
  | None -> ());
  if Obs.Hook.enabled () then Obs.Hook.event Obs.Event.Bounds_elided

let meter_load (inst : Instance.t) ~len =
  match inst.meter with
  | Some m ->
      m.Meter.loads <- m.Meter.loads + 1;
      m.Meter.load_bytes <- m.Meter.load_bytes + len
  | None -> ()

let meter_store (inst : Instance.t) ~len =
  match inst.meter with
  | Some m ->
      m.Meter.stores <- m.Meter.stores + 1;
      m.Meter.store_bytes <- m.Meter.store_bytes + len
  | None -> ()

(** Bounds + tag check + metering for a scalar load of [len] bytes. *)
let load_checked (inst : Instance.t) mem ~addr ~tag ~len =
  if not (Memory.in_bounds mem ~addr ~len) then
    trap "bounds: out of bounds memory access";
  Obs.Hook.span_check len;
  check_tags inst Arch.Mte.Load ~addr ~tag ~len:(Int64.of_int len);
  meter_load inst ~len

(** The elided-load fast path: the static analyzer proved the access
    safe, so only the bounds check and the metering remain — no tag
    lookup, no span event. The threaded engine bakes the choice between
    this and {!load_checked} into the compiled op, so the per-access
    elision branch disappears entirely. *)
let load_elided (inst : Instance.t) mem ~addr ~len =
  if not (Memory.in_bounds mem ~addr ~len) then
    trap "bounds: out of bounds memory access";
  note_elided inst;
  meter_load inst ~len

let store_checked (inst : Instance.t) mem ~addr ~tag ~len =
  if not (Memory.in_bounds mem ~addr ~len) then
    trap "bounds: out of bounds memory access";
  Obs.Hook.span_check len;
  check_tags inst Arch.Mte.Store ~addr ~tag ~len:(Int64.of_int len);
  meter_store inst ~len

let store_elided (inst : Instance.t) mem ~addr ~len =
  if not (Memory.in_bounds mem ~addr ~len) then
    trap "bounds: out of bounds memory access";
  note_elided inst;
  meter_store inst ~len

(** Bounds + tag check + metering for a scalar load of [len] bytes.
    [~elide:true] skips the tag check (statically proven safe);
    [~ebounds:true] also skips the span check (full-check elision:
    the access is proven inside a created segment, which is itself
    inside linear memory). *)
let load ?(elide = false) ?(ebounds = false) (inst : Instance.t) mem ~addr
    ~tag ~len =
  match (elide, ebounds) with
  | true, true ->
      note_elided inst;
      note_ebounds inst;
      meter_load inst ~len
  | true, false -> load_elided inst mem ~addr ~len
  | false, true ->
      (* bounds proven but the tag is not: the granule check stays,
         and its tag-plane read is safe precisely because the span is
         proven in-memory *)
      note_ebounds inst;
      check_tags inst Arch.Mte.Load ~addr ~tag ~len:(Int64.of_int len);
      meter_load inst ~len
  | false, false -> load_checked inst mem ~addr ~tag ~len

(** Bounds + tag check + metering for a scalar store of [len] bytes.
    [~elide]/[~ebounds] as in {!load}. *)
let store ?(elide = false) ?(ebounds = false) (inst : Instance.t) mem ~addr
    ~tag ~len =
  match (elide, ebounds) with
  | true, true ->
      note_elided inst;
      note_ebounds inst;
      meter_store inst ~len
  | true, false -> store_elided inst mem ~addr ~len
  | false, true ->
      note_ebounds inst;
      check_tags inst Arch.Mte.Store ~addr ~tag ~len:(Int64.of_int len);
      meter_store inst ~len
  | false, false -> store_checked inst mem ~addr ~tag ~len

(* ------------------------------------------------------------------ *)
(* Bulk operations                                                     *)
(* ------------------------------------------------------------------ *)

(* A bulk transfer is priced as 16-byte-chunk traffic (the stp/ldp
   stream a memmove compiles to); a zero-length op still costs its
   setup, hence [max 1]. Metering happens for the bytes that actually
   transferred — a synchronous mid-span fault prices only the prefix. *)
let bulk_chunks len = max 1 (Int64.to_int (Int64.div len 16L))

let meter_bulk_load (inst : Instance.t) ~len =
  match inst.meter with
  | Some m ->
      m.Meter.loads <- m.Meter.loads + bulk_chunks len;
      m.Meter.load_bytes <- m.Meter.load_bytes + Int64.to_int len
  | None -> ()

let meter_bulk_store (inst : Instance.t) ~len =
  match inst.meter with
  | Some m ->
      m.Meter.stores <- m.Meter.stores + bulk_chunks len;
      m.Meter.store_bytes <- m.Meter.store_bytes + Int64.to_int len
  | None -> ()

(* Offset (relative to [addr]) at which a synchronously-faulting bulk
   span stops transferring: the start of the first mismatching granule,
   clamped to the span. *)
let mismatch_offset (inst : Instance.t) ~addr ~tag ~len =
  match inst.mte with
  | None -> len
  | Some mte -> (
      match
        Arch.Tag_memory.first_mismatch (Arch.Mte.tag_memory mte) ~addr ~len
          tag
      with
      | Some gaddr -> Int64.max 0L (Int64.sub gaddr addr)
      | None -> len)

(** [memory.fill]: bounds, tag check over the destination span as a
    Store, then the write. A zero-length fill touches no memory — only
    the address itself must be in bounds. Partial-write semantics on a
    synchronous fault: the bytes before the faulting granule land. *)
let fill (inst : Instance.t) mem ~addr ~tag ~len v =
  if not (Memory.in_bounds64 mem ~addr ~len) then
    trap "bounds: out of bounds memory fill";
  if len = 0L then meter_bulk_store inst ~len
  else begin
    Obs.Hook.span_check (Int64.to_int len);
    match tag_verdict inst Arch.Mte.Store ~addr ~tag ~len with
    | Arch.Mte.Allowed | Arch.Mte.Deferred _ ->
        (* Async/Asymmetric-deferred: every byte lands; the latched
           fault is reported at the next synchronization point. *)
        meter_bulk_store inst ~len;
        Memory.fill mem ~addr ~len v
    | Arch.Mte.Faulted f ->
        let prefix = mismatch_offset inst ~addr ~tag ~len in
        if prefix > 0L then Memory.fill mem ~addr ~len:prefix v;
        meter_bulk_store inst ~len:prefix;
        raise_tag_fault inst f
  end

(** [memory.copy]: bounds on both spans, then tag checks — source as a
    Load first, destination as a Store (within each 16-byte beat of the
    ldp/stp stream the load precedes the store, so deferred faults
    latch in that order and a tie between two synchronous faults
    reports the load). A synchronous fault on either side stops the
    transfer at the earliest mismatching granule offset; deferred
    faults latch and every byte lands. *)
let copy (inst : Instance.t) mem ~dst ~dtag ~src ~stag ~len =
  if not (Memory.in_bounds64 mem ~addr:dst ~len) then
    trap "bounds: out of bounds memory copy";
  if not (Memory.in_bounds64 mem ~addr:src ~len) then
    trap "bounds: out of bounds memory copy";
  if len = 0L then begin
    meter_bulk_load inst ~len;
    meter_bulk_store inst ~len
  end
  else begin
    Obs.Hook.span_check (Int64.to_int len);
    Obs.Hook.span_check (Int64.to_int len);
    let sv = tag_verdict inst Arch.Mte.Load ~addr:src ~tag:stag ~len in
    let dv = tag_verdict inst Arch.Mte.Store ~addr:dst ~tag:dtag ~len in
    let stop addr tag = function
      | Arch.Mte.Faulted _ -> mismatch_offset inst ~addr ~tag ~len
      | Arch.Mte.Allowed | Arch.Mte.Deferred _ -> len
    in
    let soff = stop src stag sv in
    let doff = stop dst dtag dv in
    let prefix = Int64.min soff doff in
    if prefix > 0L then Memory.copy mem ~dst ~src ~len:prefix;
    meter_bulk_load inst ~len:prefix;
    meter_bulk_store inst ~len:prefix;
    if prefix < len then
      match (if soff <= doff then sv else dv) with
      | Arch.Mte.Faulted f -> raise_tag_fault inst f
      | _ -> assert false
  end
