(** Module validation.

    Implements the standard WebAssembly validation algorithm (operand
    stack of possibly-unknown types plus a control-frame stack), extended
    with the Cage typing rules of paper Fig. 10:

    {v
    segment.new o     : [i64 i64] -> [i64]      (requires memory, wasm64)
    segment.set_tag o : [i64 i64 i64] -> []
    segment.free o    : [i64 i64] -> []
    i64.pointer_sign  : [i64] -> [i64]
    i64.pointer_auth  : [i64] -> [i64]
    v}

    Cage instructions are rejected unless the [cage] feature is enabled,
    and additionally require the module's memory to use 64-bit indices
    (the extension builds on memory64, §4.2). *)

exception Invalid of string

let error fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

type op = Known of Types.val_type | Unknown

type frame = {
  label_types : Types.val_type list;  (** types br to this label expects *)
  end_types : Types.val_type list;
  height : int;
  mutable unreachable : bool;
}

type ctx = {
  m : Ast.module_;
  cage : bool;
  locals : Types.val_type array;
  ret : Types.val_type list;
  mutable ops : op list;
  mutable ctrls : frame list;
}

let push ctx t = ctx.ops <- Known t :: ctx.ops
let push_unknown ctx = ctx.ops <- Unknown :: ctx.ops

let pop_any ctx =
  match ctx.ctrls with
  | [] -> error "control stack empty"
  | frame :: _ ->
      if List.length ctx.ops = frame.height then
        if frame.unreachable then Unknown
        else error "operand stack underflow"
      else begin
        match ctx.ops with
        | [] -> error "operand stack underflow"
        | o :: rest ->
            ctx.ops <- rest;
            o
      end

let pop ctx t =
  match pop_any ctx with
  | Unknown -> ()
  | Known t' ->
      if t' <> t then
        error "type mismatch: expected %s, got %s"
          (Types.string_of_num_type t)
          (Types.string_of_num_type t')

let pop_list ctx ts = List.iter (pop ctx) (List.rev ts)
let push_list ctx ts = List.iter (push ctx) ts

let push_frame ctx ~label_types ~end_types =
  ctx.ctrls <-
    { label_types; end_types; height = List.length ctx.ops;
      unreachable = false }
    :: ctx.ctrls

let pop_frame ctx =
  match ctx.ctrls with
  | [] -> error "control stack empty"
  | frame :: rest ->
      pop_list ctx frame.end_types;
      if List.length ctx.ops <> frame.height then
        error "values left on stack at end of block";
      ctx.ctrls <- rest;
      frame

let set_unreachable ctx =
  match ctx.ctrls with
  | [] -> error "control stack empty"
  | frame :: _ ->
      (* drop operands down to the frame height *)
      let rec drop ops n = if n <= 0 then ops else
          match ops with [] -> [] | _ :: tl -> drop tl (n - 1)
      in
      ctx.ops <- drop ctx.ops (List.length ctx.ops - frame.height);
      frame.unreachable <- true

let label_types ctx n =
  match List.nth_opt ctx.ctrls n with
  | Some f -> f.label_types
  | None -> error "branch depth %d out of range" n

let block_types : Ast.block_type -> Types.val_type list * Types.val_type list
    = function
  | Ast.ValBlock None -> ([], [])
  | Ast.ValBlock (Some t) -> ([], [ t ])

let memory ctx =
  match ctx.m.memory with
  | Some mt -> mt
  | None -> error "instruction requires a memory"

let addr_ty ctx = Types.addr_type (memory ctx).mem_idx

let require_cage ctx name =
  if not ctx.cage then error "%s requires the cage feature" name;
  if (memory ctx).mem_idx <> Types.Idx64 then
    error "%s requires a 64-bit (memory64) memory" name

(* Extra static checks for the three segment instructions: the static
   offset must respect 16-byte MTE granule alignment (a misaligned
   segment base can never be tagged), and the memory must actually have
   tag space — a zero-min-page memory has no granules to tag, so every
   segment op on it would be a guaranteed runtime trap. Rejecting both
   at validation time instead keeps "validated implies taggable". *)
let require_segment ctx name o =
  require_cage ctx name;
  if o < 0L then error "%s: negative offset" name;
  if Int64.rem o 16L <> 0L then
    error "%s: offset %Ld is not 16-byte granule aligned" name o;
  if (memory ctx).mem_limits.Types.min = 0L then
    error "%s: memory has no tag space (zero minimum pages)" name

let check_align (ma : Ast.memarg) ~natural =
  if ma.align < 0 || (1 lsl ma.align) > natural then
    error "alignment 2^%d larger than natural %d" ma.align natural;
  if ma.offset < 0L then error "negative memarg offset"

let num_size : Types.num_type -> int = function
  | Types.I32 | Types.F32 -> 4
  | Types.I64 | Types.F64 -> 8

let pack_bytes : Ast.pack_size -> int = function
  | Ast.Pack8 -> 1
  | Ast.Pack16 -> 2
  | Ast.Pack32 -> 4

let width_ty : Ast.width -> Types.val_type = function
  | Ast.W32 -> Types.I32
  | Ast.W64 -> Types.I64

let fwidth_ty : Ast.width -> Types.val_type = function
  | Ast.W32 -> Types.F32
  | Ast.W64 -> Types.F64

let cvt_sig : Ast.cvtop -> Types.val_type * Types.val_type = function
  | I32WrapI64 -> (Types.I64, Types.I32)
  | I64ExtendI32S | I64ExtendI32U -> (Types.I32, Types.I64)
  | I32TruncF32S | I32TruncF32U -> (Types.F32, Types.I32)
  | I32TruncF64S | I32TruncF64U -> (Types.F64, Types.I32)
  | I64TruncF32S | I64TruncF32U -> (Types.F32, Types.I64)
  | I64TruncF64S | I64TruncF64U -> (Types.F64, Types.I64)
  | F32ConvertI32S | F32ConvertI32U -> (Types.I32, Types.F32)
  | F32ConvertI64S | F32ConvertI64U -> (Types.I64, Types.F32)
  | F64ConvertI32S | F64ConvertI32U -> (Types.I32, Types.F64)
  | F64ConvertI64S | F64ConvertI64U -> (Types.I64, Types.F64)
  | F32DemoteF64 -> (Types.F64, Types.F32)
  | F64PromoteF32 -> (Types.F32, Types.F64)
  | I32ReinterpretF32 -> (Types.F32, Types.I32)
  | I64ReinterpretF64 -> (Types.F64, Types.I64)
  | F32ReinterpretI32 -> (Types.I32, Types.F32)
  | F64ReinterpretI64 -> (Types.I64, Types.F64)

let func_type ctx i =
  match List.nth_opt ctx.m.types i with
  | Some ft -> ft
  | None -> error "type index %d out of range" i

let type_of_func ctx i =
  let ni = Ast.num_imports ctx.m in
  if i < ni then func_type ctx (List.nth ctx.m.imports i).im_type
  else
    match List.nth_opt ctx.m.funcs (i - ni) with
    | Some f -> func_type ctx f.ftype
    | None -> error "function index %d out of range" i

let local_ty ctx i =
  if i < 0 || i >= Array.length ctx.locals then
    error "local index %d out of range" i
  else ctx.locals.(i)

let global_ty ctx i =
  match List.nth_opt ctx.m.globals i with
  | Some g -> g.g_type
  | None -> error "global index %d out of range" i

let rec instr ctx (ins : Ast.instr) =
  match ins with
  | Unreachable -> set_unreachable ctx
  | Nop -> ()
  | Block (bt, body) ->
      let ins_t, outs = block_types bt in
      pop_list ctx ins_t;
      push_frame ctx ~label_types:outs ~end_types:outs;
      push_list ctx ins_t;
      seq ctx body;
      let f = pop_frame ctx in
      push_list ctx f.end_types
  | Loop (bt, body) ->
      let ins_t, outs = block_types bt in
      pop_list ctx ins_t;
      (* br to a loop jumps to its start: label types are the inputs *)
      push_frame ctx ~label_types:ins_t ~end_types:outs;
      push_list ctx ins_t;
      seq ctx body;
      let f = pop_frame ctx in
      push_list ctx f.end_types
  | If (bt, then_, else_) ->
      pop ctx Types.I32;
      let ins_t, outs = block_types bt in
      pop_list ctx ins_t;
      push_frame ctx ~label_types:outs ~end_types:outs;
      push_list ctx ins_t;
      seq ctx then_;
      let f = pop_frame ctx in
      push_frame ctx ~label_types:outs ~end_types:outs;
      push_list ctx ins_t;
      seq ctx else_;
      ignore (pop_frame ctx);
      push_list ctx f.end_types
  | Br n ->
      pop_list ctx (label_types ctx n);
      set_unreachable ctx
  | BrIf n ->
      pop ctx Types.I32;
      let ts = label_types ctx n in
      pop_list ctx ts;
      push_list ctx ts
  | BrTable (ns, default) ->
      pop ctx Types.I32;
      let ts = label_types ctx default in
      List.iter
        (fun n ->
          if label_types ctx n <> ts then
            error "br_table label type mismatch")
        ns;
      pop_list ctx ts;
      set_unreachable ctx
  | Return ->
      pop_list ctx ctx.ret;
      set_unreachable ctx
  | Call i ->
      let ft = type_of_func ctx i in
      pop_list ctx ft.params;
      push_list ctx ft.results
  | CallIndirect ti ->
      if ctx.m.table = None then error "call_indirect requires a table";
      let ft = func_type ctx ti in
      pop ctx Types.I32;
      pop_list ctx ft.params;
      push_list ctx ft.results
  | Drop -> ignore (pop_any ctx)
  | Select -> (
      pop ctx Types.I32;
      let a = pop_any ctx in
      let b = pop_any ctx in
      match (a, b) with
      | Known x, Known y when x <> y -> error "select type mismatch"
      | Known x, _ | _, Known x -> push ctx x
      | Unknown, Unknown -> push_unknown ctx)
  | LocalGet i -> push ctx (local_ty ctx i)
  | LocalSet i -> pop ctx (local_ty ctx i)
  | LocalTee i ->
      pop ctx (local_ty ctx i);
      push ctx (local_ty ctx i)
  | GlobalGet i -> push ctx (global_ty ctx i).g_type
  | GlobalSet i ->
      let gt = global_ty ctx i in
      if not gt.mut then error "global %d is immutable" i;
      pop ctx gt.g_type
  | I32Const _ -> push ctx Types.I32
  | I64Const _ -> push ctx Types.I64
  | F32Const _ -> push ctx Types.F32
  | F64Const _ -> push ctx Types.F64
  | IUnop (w, _) | ITestop w ->
      pop ctx (width_ty w);
      push ctx (match ins with ITestop _ -> Types.I32 | _ -> width_ty w)
  | IBinop (w, _) ->
      pop ctx (width_ty w);
      pop ctx (width_ty w);
      push ctx (width_ty w)
  | IRelop (w, _) ->
      pop ctx (width_ty w);
      pop ctx (width_ty w);
      push ctx Types.I32
  | FUnop (w, _) ->
      pop ctx (fwidth_ty w);
      push ctx (fwidth_ty w)
  | FBinop (w, _) ->
      pop ctx (fwidth_ty w);
      pop ctx (fwidth_ty w);
      push ctx (fwidth_ty w)
  | FRelop (w, _) ->
      pop ctx (fwidth_ty w);
      pop ctx (fwidth_ty w);
      push ctx Types.I32
  | Cvtop op ->
      let src, dst = cvt_sig op in
      pop ctx src;
      push ctx dst
  | Load (ty, pack, ma) ->
      let natural =
        match pack with
        | None -> num_size ty
        | Some (p, _) -> pack_bytes p
      in
      check_align ma ~natural;
      (match pack with
      | Some _ when ty <> Types.I32 && ty <> Types.I64 ->
          error "packed load of float type"
      | _ -> ());
      pop ctx (addr_ty ctx);
      push ctx ty
  | Store (ty, pack, ma) ->
      let natural =
        match pack with None -> num_size ty | Some p -> pack_bytes p
      in
      check_align ma ~natural;
      (match pack with
      | Some _ when ty <> Types.I32 && ty <> Types.I64 ->
          error "packed store of float type"
      | _ -> ());
      pop ctx ty;
      pop ctx (addr_ty ctx)
  | MemorySize -> push ctx (addr_ty ctx)
  | MemoryGrow ->
      pop ctx (addr_ty ctx);
      push ctx (addr_ty ctx)
  | MemoryFill ->
      let a = addr_ty ctx in
      pop ctx a; pop ctx Types.I32; pop ctx a
  | MemoryCopy ->
      let a = addr_ty ctx in
      pop ctx a; pop ctx a; pop ctx a
  | SegmentNew o ->
      require_segment ctx "segment.new" o;
      pop ctx Types.I64;
      pop ctx Types.I64;
      push ctx Types.I64
  | SegmentSetTag o ->
      require_segment ctx "segment.set_tag" o;
      pop ctx Types.I64;
      pop ctx Types.I64;
      pop ctx Types.I64
  | SegmentFree o ->
      require_segment ctx "segment.free" o;
      pop ctx Types.I64;
      pop ctx Types.I64
  | PointerSign ->
      require_cage ctx "i64.pointer_sign";
      pop ctx Types.I64;
      push ctx Types.I64
  | PointerAuth ->
      require_cage ctx "i64.pointer_auth";
      pop ctx Types.I64;
      push ctx Types.I64

and seq ctx = List.iter (instr ctx)

let validate_func (m : Ast.module_) ~cage (f : Ast.func) =
  let ft =
    match List.nth_opt m.types f.ftype with
    | Some ft -> ft
    | None -> error "function type index %d out of range" f.ftype
  in
  let ctx =
    {
      m;
      cage;
      locals = Array.of_list (ft.params @ f.locals);
      ret = ft.results;
      ops = [];
      ctrls = [];
    }
  in
  push_frame ctx ~label_types:ft.results ~end_types:ft.results;
  (try seq ctx f.body
   with Invalid msg ->
     error "in function %s: %s"
       (Option.value f.fname ~default:"<anon>")
       msg);
  ignore (pop_frame ctx)

let validate_module (m : Ast.module_) ~cage =
  (* memory limits *)
  Option.iter
    (fun (mt : Types.mem_type) ->
      let range =
        match mt.mem_idx with
        | Types.Idx32 -> 65536L
        | Types.Idx64 -> Int64.shift_left 1L 48
      in
      if not (Types.limits_valid mt.mem_limits ~range) then
        error "invalid memory limits")
    m.memory;
  (* globals *)
  List.iter
    (fun (g : Ast.global) ->
      if Values.type_of g.g_init <> g.g_type.Types.g_type then
        error "global initialiser type mismatch")
    m.globals;
  (* imports reference valid types *)
  List.iter
    (fun (im : Ast.import) ->
      if List.nth_opt m.types im.im_type = None then
        error "import %s.%s: type index out of range" im.im_module im.im_name)
    m.imports;
  (* element segments *)
  let nfuncs = Ast.num_imports m + List.length m.funcs in
  List.iter
    (fun (e : Ast.elem) ->
      if m.table = None then error "element segment without a table";
      List.iter
        (fun fi ->
          if fi < 0 || fi >= nfuncs then
            error "element segment: function index %d out of range" fi)
        e.e_funcs)
    m.elems;
  (* data segments *)
  List.iter
    (fun (d : Ast.data) ->
      if m.memory = None then error "data segment without a memory";
      if d.d_offset < 0L then error "data segment: negative offset")
    m.datas;
  (* start function *)
  Option.iter
    (fun i ->
      let ctx =
        { m; cage; locals = [||]; ret = []; ops = []; ctrls = [] }
      in
      let ft = type_of_func ctx i in
      if ft.params <> [] || ft.results <> [] then
        error "start function must have type [] -> []")
    m.start;
  (* exports *)
  List.iter
    (fun (ex : Ast.export) ->
      match ex.ex_desc with
      | Ast.Func_export i ->
          if i < 0 || i >= nfuncs then
            error "export %s: function index out of range" ex.ex_name
      | Ast.Mem_export i ->
          if i <> 0 || m.memory = None then
            error "export %s: memory index out of range" ex.ex_name)
    m.exports;
  List.iter (validate_func m ~cage) m.funcs

(** Validate a module. [cage] enables the Cage extension instructions
    (default true, as this toolchain exists to exercise them). *)
let validate ?(cage = true) m =
  match validate_module m ~cage with
  | () -> Ok ()
  | exception Invalid msg -> Error msg
