(** The execution driver: instantiation, invocation, and the
    tree-walking interpreter.

    Since the threaded-code engine landed, this module is a thin layer:
    numeric semantics live in {!Numerics}, the engine-shared runtime
    services (obs ticks, fuel, deferred-fault draining, Cage segment
    instruction bodies) in {!Rt}, checked memory access in {!Checked},
    and the hot path of a [Threaded]-engine instance in {!Compile}. The
    tree walker below remains the reference semantics — it executes any
    module, validated or not — and the per-function fallback for bodies
    the threaded compiler declines.

    Loads and stores check allocation tags when the instance was
    instantiated with [enforce_tags] (Eqs. 1-4); the five Cage
    instructions implement Eqs. 5-13. Execution events are reported to
    the instance's {!Meter} so the Cage lowering layer can price runs
    under different hardware configurations without re-executing. *)

open Instance

exception Branch of int * Values.t list
exception Ret of Values.t list

let trap fmt = Rt.trap fmt
let max_call_depth = Rt.max_call_depth

(* ------------------------------------------------------------------ *)
(* Stack helpers                                                       *)
(* ------------------------------------------------------------------ *)

let pop stack =
  match !stack with
  | [] -> trap "operand stack underflow (unvalidated module?)"
  | v :: rest ->
      stack := rest;
      v

let push stack v = stack := v :: !stack

let pop_i32 stack =
  match pop stack with
  | Values.I32 v -> v
  | v -> trap "expected i32, got %a" Values.pp v

let pop_i64 stack =
  match pop stack with
  | Values.I64 v -> v
  | v -> trap "expected i64, got %a" Values.pp v

let popn stack n =
  let rec go acc n = if n = 0 then acc else go (pop stack :: acc) (n - 1) in
  go [] n

(* ------------------------------------------------------------------ *)
(* Memory access with tag checking                                     *)
(* ------------------------------------------------------------------ *)

(* Every access — scalar and bulk — goes through the unified [Checked]
   layer: bounds check first (an out-of-bounds access is a sandbox
   violation and reported as such regardless of tag state), then the
   MTE tag check, then metering. *)

let do_load ?elide ?ebounds (inst : Instance.t) stack (ty : Types.num_type)
    pack (ma : Ast.memarg) =
  let mem = memory inst in
  let addr, tag = Checked.resolve_addr (pop stack) ma.offset in
  let size =
    match pack with
    | None -> ( match ty with I32 | F32 -> 4 | I64 | F64 -> 8)
    | Some (p, _) -> ( match p with Ast.Pack8 -> 1 | Pack16 -> 2 | Pack32 -> 4)
  in
  Checked.load ?elide ?ebounds inst mem ~addr ~tag ~len:size;
  let v =
    try
      match (ty, pack) with
      | I32, None -> Values.I32 (Memory.load_i32 mem addr)
      | I64, None -> Values.I64 (Memory.load_i64 mem addr)
      | F32, None -> Values.F32 (Memory.load_f32 mem addr)
      | F64, None -> Values.F64 (Memory.load_f64 mem addr)
      | (I32 | I64), Some (p, ext) ->
          let n =
            match p with Ast.Pack8 -> 1 | Pack16 -> 2 | Pack32 -> 4
          in
          let raw = Memory.load_n mem addr n in
          let bits = n * 8 in
          let v =
            match ext with
            | Ast.ZX -> raw
            | Ast.SX ->
                Int64.shift_right (Int64.shift_left raw (64 - bits)) (64 - bits)
          in
          if ty = I32 then Values.I32 (Int64.to_int32 v) else Values.I64 v
      | _ -> trap "packed load of float"
    with Memory.Out_of_bounds _ -> trap "bounds: out of bounds memory access"
  in
  push stack v

let do_store ?elide ?ebounds (inst : Instance.t) stack (ty : Types.num_type)
    pack (ma : Ast.memarg) =
  let mem = memory inst in
  let v = pop stack in
  let addr, tag = Checked.resolve_addr (pop stack) ma.offset in
  let size =
    match pack with
    | None -> ( match ty with I32 | F32 -> 4 | I64 | F64 -> 8)
    | Some p -> ( match p with Ast.Pack8 -> 1 | Pack16 -> 2 | Pack32 -> 4)
  in
  Checked.store ?elide ?ebounds inst mem ~addr ~tag ~len:size;
  try
    match (ty, pack, v) with
    | I32, None, Values.I32 x -> Memory.store_i32 mem addr x
    | I64, None, Values.I64 x -> Memory.store_i64 mem addr x
    | F32, None, Values.F32 x -> Memory.store_f32 mem addr x
    | F64, None, Values.F64 x -> Memory.store_f64 mem addr x
    | I32, Some p, Values.I32 x ->
        let n = match p with Ast.Pack8 -> 1 | Pack16 -> 2 | Pack32 -> 4 in
        Memory.store_n mem addr n (Int64.of_int32 x)
    | I64, Some p, Values.I64 x ->
        let n = match p with Ast.Pack8 -> 1 | Pack16 -> 2 | Pack32 -> 4 in
        Memory.store_n mem addr n x
    | _ -> trap "store operand type mismatch"
  with Memory.Out_of_bounds _ -> trap "bounds: out of bounds memory access"

(* ------------------------------------------------------------------ *)
(* Main evaluator                                                      *)
(* ------------------------------------------------------------------ *)

(* Take a prepared branch: the target depth and the label's arity were
   resolved at instantiation (O(1) here); a label index that had no
   enclosing block is a hard trap, never a silent arity-0 branch. *)
let take_branch stack : Code.label -> 'a = function
  | Code.L { depth; arity } -> raise (Branch (depth, popn stack arity))
  | Code.Bad_label n -> trap "branch depth %d out of range" n

(* [fn] is the current prepared function, threaded down so the
   Load/Store and segment dispatches can test its elision bitsets
   ([Code.func.elide]/[belide]/[arena]) by instruction id in O(1); all
   three are [Bytes.empty] when no analysis ran. *)
let rec eval (inst : Instance.t) ~depth ~(fn : Code.func) locals stack
    (code : Code.instr array) =
  Array.iter (eval_instr inst ~depth ~fn locals stack) code

and eval_instr (inst : Instance.t) ~depth ~fn locals stack
    (ins : Code.instr) =
  Rt.obs_tick inst;
  match ins with
  | Code.Basic (i, id) -> eval_basic inst ~depth ~fn locals stack i id
  | Code.Block (_, body) -> (
      try eval inst ~depth ~fn locals stack body with
      | Branch (0, vs) -> List.iter (push stack) vs
      | Branch (n, vs) -> raise (Branch (n - 1, vs)))
  | Code.Loop body ->
      let rec iter () =
        match eval inst ~depth ~fn locals stack body with
        | () -> ()
        | exception Branch (0, _) ->
            Rt.meter_br inst;
            iter ()
        | exception Branch (n, vs) -> raise (Branch (n - 1, vs))
      in
      iter ()
  | Code.If (_, then_, else_) -> (
      Rt.meter_br inst;
      let c = pop_i32 stack in
      let body = if not (Int32.equal c 0l) then then_ else else_ in
      try eval inst ~depth ~fn locals stack body with
      | Branch (0, vs) -> List.iter (push stack) vs
      | Branch (n, vs) -> raise (Branch (n - 1, vs)))
  | Code.Br l ->
      Rt.meter_br inst;
      take_branch stack l
  | Code.BrIf l ->
      Rt.meter_br inst;
      let c = pop_i32 stack in
      if not (Int32.equal c 0l) then take_branch stack l
  | Code.BrTable (targets, default) ->
      Rt.meter_br inst;
      let i = Int32.to_int (pop_i32 stack) in
      let l =
        if i >= 0 && i < Array.length targets then Array.unsafe_get targets i
        else default
      in
      take_branch stack l
  | Code.Return arity ->
      (match inst.meter with
      | Some m -> m.return_ <- m.return_ + 1
      | None -> ());
      raise (Ret (popn stack arity))

and eval_basic (inst : Instance.t) ~depth ~fn locals stack
    (ins : Ast.instr) (id : int) =
  let meter f = match inst.meter with Some m -> f m | None -> () in
  match ins with
  | Unreachable -> trap "unreachable executed"
  | Nop -> ()
  | Block _ | Loop _ | If _ | Br _ | BrIf _ | BrTable _ | Return ->
      (* control flow is compiled away by [Code.prepare] *)
      assert false
  | Call i ->
      meter (fun m -> m.call <- m.call + 1);
      invoke_idx inst ~depth:(depth + 1) stack i
  | CallIndirect ti ->
      meter (fun m -> m.call_indirect <- m.call_indirect + 1);
      let idx = Int32.to_int (pop_i32 stack) in
      if idx < 0 || idx >= Array.length inst.table then
        trap "undefined element %d in table" idx;
      (match inst.table.(idx) with
      | None -> trap "uninitialized table element %d" idx
      | Some fi ->
          let expected = List.nth inst.module_.types ti in
          let actual = func_type inst.funcs.(fi) in
          if not (Types.func_type_equal expected actual) then
            trap "indirect call type mismatch";
          invoke_idx inst ~depth:(depth + 1) stack fi)
  | Drop -> ignore (pop stack)
  | Select ->
      meter (fun m -> m.select <- m.select + 1);
      let c = pop_i32 stack in
      let v2 = pop stack in
      let v1 = pop stack in
      push stack (if not (Int32.equal c 0l) then v1 else v2)
  | LocalGet i ->
      meter (fun m -> m.local_access <- m.local_access + 1);
      push stack locals.(i)
  | LocalSet i ->
      meter (fun m -> m.local_access <- m.local_access + 1);
      locals.(i) <- pop stack
  | LocalTee i ->
      meter (fun m -> m.local_access <- m.local_access + 1);
      let v = pop stack in
      locals.(i) <- v;
      push stack v
  | GlobalGet i ->
      meter (fun m -> m.global_access <- m.global_access + 1);
      push stack inst.globals.(i)
  | GlobalSet i ->
      meter (fun m -> m.global_access <- m.global_access + 1);
      inst.globals.(i) <- pop stack
  | I32Const v ->
      meter (fun m -> m.const <- m.const + 1);
      push stack (Values.I32 v)
  | I64Const v ->
      meter (fun m -> m.const <- m.const + 1);
      push stack (Values.I64 v)
  | F32Const v ->
      meter (fun m -> m.const <- m.const + 1);
      push stack (Values.F32 (Values.to_f32 v))
  | F64Const v ->
      meter (fun m -> m.const <- m.const + 1);
      push stack (Values.F64 v)
  | IUnop (w, op) ->
      meter (fun m -> m.ialu <- m.ialu + 1);
      (match w with
      | W32 -> push stack (Values.I32 (Numerics.eval_iunop32 op (pop_i32 stack)))
      | W64 -> push stack (Values.I64 (Numerics.eval_iunop64 op (pop_i64 stack))))
  | IBinop (w, op) ->
      meter (fun m ->
          match op with
          | Mul -> m.imul <- m.imul + 1
          | DivS | DivU | RemS | RemU -> m.idiv <- m.idiv + 1
          | _ -> m.ialu <- m.ialu + 1);
      (match w with
      | W32 ->
          let y = pop_i32 stack in
          let x = pop_i32 stack in
          push stack (Values.I32 (Numerics.eval_ibinop32 op x y))
      | W64 ->
          let y = pop_i64 stack in
          let x = pop_i64 stack in
          push stack (Values.I64 (Numerics.eval_ibinop64 op x y)))
  | ITestop w ->
      meter (fun m -> m.ialu <- m.ialu + 1);
      let z =
        match w with
        | W32 -> Int32.equal (pop_i32 stack) 0l
        | W64 -> Int64.equal (pop_i64 stack) 0L
      in
      push stack (Values.I32 (if z then 1l else 0l))
  | IRelop (w, op) ->
      meter (fun m -> m.ialu <- m.ialu + 1);
      let b =
        match w with
        | W32 ->
            let y = pop_i32 stack in
            let x = pop_i32 stack in
            Numerics.eval_irelop32 op x y
        | W64 ->
            let y = pop_i64 stack in
            let x = pop_i64 stack in
            Numerics.eval_irelop64 op x y
      in
      push stack (Values.I32 (if b then 1l else 0l))
  | FUnop (w, op) ->
      meter (fun m -> m.falu <- m.falu + 1);
      let v = pop stack in
      (match (w, v) with
      | W32, Values.F32 x ->
          push stack (Values.F32 (Values.to_f32 (Numerics.eval_funop op x)))
      | W64, Values.F64 x -> push stack (Values.F64 (Numerics.eval_funop op x))
      | _ -> trap "funop operand mismatch")
  | FBinop (w, op) ->
      meter (fun m ->
          match op with
          | FMul -> m.fmul <- m.fmul + 1
          | FDiv -> m.fdiv <- m.fdiv + 1
          | _ -> m.falu <- m.falu + 1);
      let v2 = pop stack in
      let v1 = pop stack in
      (match (w, v1, v2) with
      | W32, Values.F32 x, Values.F32 y ->
          push stack (Values.F32 (Values.to_f32 (Numerics.eval_fbinop op x y)))
      | W64, Values.F64 x, Values.F64 y ->
          push stack (Values.F64 (Numerics.eval_fbinop op x y))
      | _ -> trap "fbinop operand mismatch")
  | FRelop (w, op) ->
      meter (fun m -> m.falu <- m.falu + 1);
      let v2 = pop stack in
      let v1 = pop stack in
      let b =
        match (w, v1, v2) with
        | W32, Values.F32 x, Values.F32 y -> Numerics.eval_frelop op x y
        | W64, Values.F64 x, Values.F64 y -> Numerics.eval_frelop op x y
        | _ -> trap "frelop operand mismatch"
      in
      push stack (Values.I32 (if b then 1l else 0l))
  | Cvtop op ->
      meter (fun m -> m.cvt <- m.cvt + 1);
      push stack (Numerics.eval_cvtop op (pop stack))
  | Load (ty, pack, ma) ->
      do_load
        ~elide:(Code.elidable fn.Code.elide id)
        ~ebounds:(Code.elidable fn.Code.belide id)
        inst stack ty pack ma
  | Store (ty, pack, ma) ->
      do_store
        ~elide:(Code.elidable fn.Code.elide id)
        ~ebounds:(Code.elidable fn.Code.belide id)
        inst stack ty pack ma
  | MemorySize ->
      let mem = memory inst in
      let pages = Memory.size_pages mem in
      push stack
        (match Memory.idx_type mem with
        | Types.Idx32 -> Values.I32 (Int64.to_int32 pages)
        | Types.Idx64 -> Values.I64 pages)
  | MemoryGrow ->
      let mem = memory inst in
      let delta =
        match Memory.idx_type mem with
        | Types.Idx32 -> Int64.logand (Int64.of_int32 (pop_i32 stack)) 0xffffffffL
        | Types.Idx64 -> pop_i64 stack
      in
      let old = Rt.memory_grow inst delta in
      push stack
        (match Memory.idx_type mem with
        | Types.Idx32 -> Values.I32 (Int64.to_int32 old)
        | Types.Idx64 -> Values.I64 old)
  | MemoryFill ->
      let mem = memory inst in
      (* Lengths are plain integers, never pointers: no tag stripping,
         and a negative/huge i64 length simply fails the bounds check. *)
      let len =
        match Memory.idx_type mem with
        | Types.Idx32 -> Int64.logand (Int64.of_int32 (pop_i32 stack)) 0xffffffffL
        | Types.Idx64 -> pop_i64 stack
      in
      let v = Int32.to_int (pop_i32 stack) in
      let dst, dtag = Checked.resolve_addr (pop stack) 0L in
      meter (fun m -> m.bulk_fill <- m.bulk_fill + 1);
      Checked.fill inst mem ~addr:dst ~tag:dtag ~len v
  | MemoryCopy ->
      let mem = memory inst in
      let len =
        match Memory.idx_type mem with
        | Types.Idx32 -> Int64.logand (Int64.of_int32 (pop_i32 stack)) 0xffffffffL
        | Types.Idx64 -> pop_i64 stack
      in
      let src, stag = Checked.resolve_addr (pop stack) 0L in
      let dst, dtag = Checked.resolve_addr (pop stack) 0L in
      meter (fun m -> m.bulk_copy <- m.bulk_copy + 1);
      Checked.copy inst mem ~dst ~dtag ~src ~stag ~len
  | SegmentNew o ->
      let l = pop_i64 stack in
      let k = pop_i64 stack in
      push stack
        (Values.I64
           (Rt.segment_new ~arena:(Code.elidable fn.Code.arena id) inst ~k ~l o))
  | SegmentSetTag o ->
      let l = pop_i64 stack in
      let t = pop_i64 stack in
      let k = pop_i64 stack in
      Rt.segment_set_tag inst ~k ~t ~l o
  | SegmentFree o ->
      let l = pop_i64 stack in
      let k = pop_i64 stack in
      Rt.segment_free ~arena:(Code.elidable fn.Code.arena id) inst ~k ~l o
  | PointerSign ->
      let k = pop_i64 stack in
      push stack (Values.I64 (Rt.pointer_sign inst k))
  | PointerAuth ->
      let k = pop_i64 stack in
      push stack (Values.I64 (Rt.pointer_auth inst k))

(* Invoke function index [i] with arguments taken from [stack]. *)
and invoke_idx (inst : Instance.t) ~depth stack i =
  if depth > Rt.max_call_depth then
    trap "stack: call stack exhausted (depth %d)" depth;
  Rt.burn_fuel inst;
  match inst.funcs.(i) with
  | Host_func { fn; ty; name } ->
      if Obs.Hook.enabled () then begin
        Obs.Hook.set_instance inst.id;
        Obs.Hook.event (Obs.Event.Host_call { name })
      end;
      (* A host call is a synchronization point: report any deferred
         fault latched before control leaves wasm. *)
      Rt.drain_deferred inst;
      let args = popn stack (List.length ty.params) in
      let results =
        try fn inst args
        with Invalid_argument msg -> trap "host %s: %s" name msg
      in
      List.iter (push stack) results
  | Wasm_func { func; ty; code; xcode; _ } ->
      let args = popn stack (List.length ty.params) in
      inst.call_stack <- i :: inst.call_stack;
      if Obs.Hook.enabled () then begin
        Obs.Hook.set_instance inst.id;
        Obs.Hook.event
          (Obs.Event.Func_enter { idx = i; name = Instance.func_name inst i })
      end;
      let results =
        (* the threaded body assumes arguments of the declared types;
           an unvalidated caller can push anything, so mis-typed
           argument lists take the interpreter path, which reproduces
           the lenient dynamic ("expected i32"-style) semantics *)
        match xcode with
        | Some xf
          when List.for_all2
                 (fun v t -> Values.type_of v = t)
                 args ty.params ->
            Compile.run_body inst ~depth xf args
        | _ ->
            let locals =
              Array.of_list (args @ List.map Values.default func.locals)
            in
            let fstack = ref [] in
            (try
               eval inst ~depth ~fn:code locals fstack code.Code.body
             with
            | Ret vs -> List.iter (push fstack) vs
            | Branch (_, vs) -> List.iter (push fstack) vs);
            (* take the results off the callee stack *)
            popn fstack code.Code.result_arity
      in
      (* Function return is a synchronization point (§4.2): deferred
         Async/Asymmetric faults are reported here, sticky-first. *)
      Rt.drain_deferred inst;
      (* pop the frame on normal completion only: after a trap the
         frozen stack is the crash backtrace (see Instance.call_stack) —
         and the matching [Func_leave] is likewise skipped, so the
         Chrome trace shows an unfinished slice for the crashed call. *)
      if Obs.Hook.enabled () then
        Obs.Hook.event
          (Obs.Event.Func_leave { idx = i; name = Instance.func_name inst i });
      (match inst.call_stack with
      | _ :: tl -> inst.call_stack <- tl
      | [] -> ());
      List.iter (push stack) results

(* The interpreter side of the engine bridge: a threaded frame calling
   a function the compiler declined routes through here. [invoke_idx]
   performs the depth check and fuel burn itself, which is why
   [Compile.call_function] does not pre-pay them on this arm. *)
let () =
  Compile.interp_call :=
    fun inst depth fi args ->
      let stack = ref [] in
      List.iter (push stack) args;
      invoke_idx inst ~depth stack fi;
      List.rev !stack

(* ------------------------------------------------------------------ *)
(* Instantiation                                                       *)
(* ------------------------------------------------------------------ *)

let instance_counter = ref 0

(** Instantiate a validated module. [imports] supplies host functions by
    (module, name); missing imports raise {!Instance.Trap}. Data and
    element segments are applied and the start function runs before the
    instance is returned, as the spec requires. Under the [Threaded]
    engine (the default) every local function is lowered to threaded
    code here, once, before the start function runs — so element/data
    segments, the start function, snapshots taken of this instance, and
    every later invocation all execute compiled bodies. *)
let instantiate ?(config = Instance.default_config)
    ?(imports : (string * string * Instance.host_func) list = [])
    (m : Ast.module_) : Instance.t =
  incr instance_counter;
  let id = !instance_counter in
  let rng = Random.State.make [| config.seed; id |] in
  let resolve (im : Ast.import) =
    match
      List.find_opt
        (fun (mo, n, _) ->
          String.equal mo im.im_module && String.equal n im.im_name)
        imports
    with
    | Some (_, _, fn) ->
        Host_func
          { fn; ty = List.nth m.types im.im_type;
            name = im.im_module ^ "." ^ im.im_name }
    | None ->
        raise
          (Trap
             (Printf.sprintf "unresolved import %s.%s" im.im_module im.im_name))
  in
  let mem = Option.map Memory.create m.memory in
  let mte =
    Option.map
      (fun mem ->
        Arch.Mte.create ~mode:config.mte_mode
          (Arch.Tag_memory.create
             ~size_bytes:(Int64.to_int (Memory.size_bytes mem))))
      mem
  in
  let table =
    match m.table with
    | None -> [||]
    | Some tt -> Array.make (Int64.to_int tt.tbl_limits.min) None
  in
  let inst =
    {
      id;
      module_ = m;
      funcs = [||];
      table;
      mem;
      mte;
      globals = Array.of_list (List.map (fun (g : Ast.global) -> g.g_init) m.globals);
      pac_key =
        (match config.pac_key with
        | Some k -> k
        | None ->
            Arch.Pac.random_key
              ~rng:(fun () -> Random.State.int64 rng Int64.max_int));
      pac_modifier = config.pac_modifier;
      pac_config = config.pac_config;
      exclude = config.exclude;
      enforce_tags = config.enforce_tags;
      rng;
      meter = config.meter;
      fuel = config.fuel;
      call_stack = [];
      last_fault = None;
      engine = config.engine;
    }
  in
  let n_imports = List.length m.imports in
  let funcs =
    Array.init
      (n_imports + List.length m.funcs)
      (fun i ->
        if i < n_imports then resolve (List.nth m.imports i)
        else
          let f = List.nth m.funcs (i - n_imports) in
          let ty = List.nth m.types f.ftype in
          let j = i - n_imports in
          let row a = if j < Array.length a then a.(j) else Bytes.empty in
          let code =
            Code.prepare ~elide:(row config.elide) ~belide:(row config.belide)
              ~arena:(row config.arena)
              ~result_arity:(List.length ty.results)
              f.body
          in
          Wasm_func { inst_id = id; func = f; ty; code; xcode = None })
  in
  let inst = { inst with funcs } in
  if config.engine = Threaded then Compile.compile_instance inst;
  (* element segments *)
  List.iter
    (fun (e : Ast.elem) ->
      List.iteri
        (fun j fi ->
          let pos = Int64.to_int e.e_offset + j in
          if pos < 0 || pos >= Array.length inst.table then
            raise (Trap "element segment out of table bounds");
          inst.table.(pos) <- Some fi)
        e.e_funcs)
    m.elems;
  (* data segments *)
  List.iter
    (fun (d : Ast.data) ->
      match inst.mem with
      | None -> raise (Trap "data segment without memory")
      | Some mem -> (
          try Memory.write_string mem ~addr:d.d_offset d.d_bytes
          with Memory.Out_of_bounds _ ->
            raise (Trap "data segment out of memory bounds")))
    m.datas;
  (* start function *)
  Option.iter
    (fun i ->
      let stack = ref [] in
      invoke_idx inst ~depth:0 stack i)
    m.start;
  inst

(** Call an exported function by name. *)
let invoke inst name args =
  match Instance.exported_func inst name with
  | None -> raise (Trap (Printf.sprintf "no exported function %S" name))
  | Some i ->
      let stack = ref [] in
      List.iter (push stack) args;
      invoke_idx inst ~depth:0 stack i;
      List.rev !stack

(** Call a function by index (used by the libc shims). *)
let invoke_function inst i args =
  let stack = ref [] in
  List.iter (push stack) args;
  invoke_idx inst ~depth:0 stack i;
  List.rev !stack
