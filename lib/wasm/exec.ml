(** The interpreter: wasm small-step semantics extended with the Cage
    rules of paper Fig. 11.

    Loads and stores check allocation tags when the instance was
    instantiated with [enforce_tags] (Eqs. 1-4); the five Cage
    instructions implement Eqs. 5-13. Execution events are reported to
    the instance's {!Meter} so the Cage lowering layer can price runs
    under different hardware configurations without re-executing. *)

open Instance

exception Branch of int * Values.t list
exception Ret of Values.t list

let trap fmt = Format.kasprintf (fun s -> raise (Trap s)) fmt
let max_call_depth = 2000

(* ------------------------------------------------------------------ *)
(* Numeric operations                                                  *)
(* ------------------------------------------------------------------ *)

let eval_iunop32 (op : Ast.iunop) x =
  match op with
  | Clz -> Int32.of_int (Values.clz32 x)
  | Ctz -> Int32.of_int (Values.ctz32 x)
  | Popcnt -> Int32.of_int (Values.popcnt32 x)

let eval_iunop64 (op : Ast.iunop) x =
  match op with
  | Clz -> Int64.of_int (Values.clz64 x)
  | Ctz -> Int64.of_int (Values.ctz64 x)
  | Popcnt -> Int64.of_int (Values.popcnt64 x)

let eval_ibinop32 (op : Ast.ibinop) x y =
  match op with
  | Add -> Int32.add x y
  | Sub -> Int32.sub x y
  | Mul -> Int32.mul x y
  | DivS ->
      if Int32.equal y 0l then trap "integer divide by zero"
      else if Int32.equal x Int32.min_int && Int32.equal y (-1l) then
        trap "integer overflow"
      else Int32.div x y
  | DivU ->
      if Int32.equal y 0l then trap "integer divide by zero"
      else Int32.unsigned_div x y
  | RemS ->
      if Int32.equal y 0l then trap "integer divide by zero"
      else if Int32.equal x Int32.min_int && Int32.equal y (-1l) then 0l
      else Int32.rem x y
  | RemU ->
      if Int32.equal y 0l then trap "integer divide by zero"
      else Int32.unsigned_rem x y
  | And -> Int32.logand x y
  | Or -> Int32.logor x y
  | Xor -> Int32.logxor x y
  | Shl -> Int32.shift_left x (Values.i32_shift_amount y)
  | ShrS -> Int32.shift_right x (Values.i32_shift_amount y)
  | ShrU -> Int32.shift_right_logical x (Values.i32_shift_amount y)
  | Rotl -> Values.rotl32 x y
  | Rotr -> Values.rotr32 x y

let eval_ibinop64 (op : Ast.ibinop) x y =
  match op with
  | Add -> Int64.add x y
  | Sub -> Int64.sub x y
  | Mul -> Int64.mul x y
  | DivS ->
      if Int64.equal y 0L then trap "integer divide by zero"
      else if Int64.equal x Int64.min_int && Int64.equal y (-1L) then
        trap "integer overflow"
      else Int64.div x y
  | DivU ->
      if Int64.equal y 0L then trap "integer divide by zero"
      else Int64.unsigned_div x y
  | RemS ->
      if Int64.equal y 0L then trap "integer divide by zero"
      else if Int64.equal x Int64.min_int && Int64.equal y (-1L) then 0L
      else Int64.rem x y
  | RemU ->
      if Int64.equal y 0L then trap "integer divide by zero"
      else Int64.unsigned_rem x y
  | And -> Int64.logand x y
  | Or -> Int64.logor x y
  | Xor -> Int64.logxor x y
  | Shl -> Int64.shift_left x (Values.i64_shift_amount y)
  | ShrS -> Int64.shift_right x (Values.i64_shift_amount y)
  | ShrU -> Int64.shift_right_logical x (Values.i64_shift_amount y)
  | Rotl -> Values.rotl64 x y
  | Rotr -> Values.rotr64 x y

let eval_irelop32 (op : Ast.irelop) x y =
  match op with
  | Eq -> Int32.equal x y
  | Ne -> not (Int32.equal x y)
  | LtS -> Int32.compare x y < 0
  | LtU -> Values.u32_lt x y
  | GtS -> Int32.compare x y > 0
  | GtU -> Values.u32_gt x y
  | LeS -> Int32.compare x y <= 0
  | LeU -> Values.u32_le x y
  | GeS -> Int32.compare x y >= 0
  | GeU -> Values.u32_ge x y

let eval_irelop64 (op : Ast.irelop) x y =
  match op with
  | Eq -> Int64.equal x y
  | Ne -> not (Int64.equal x y)
  | LtS -> Int64.compare x y < 0
  | LtU -> Values.u64_lt x y
  | GtS -> Int64.compare x y > 0
  | GtU -> Values.u64_gt x y
  | LeS -> Int64.compare x y <= 0
  | LeU -> Values.u64_le x y
  | GeS -> Int64.compare x y >= 0
  | GeU -> Values.u64_ge x y

let eval_funop (op : Ast.funop) x =
  match op with
  | Neg -> -.x
  | Abs -> Float.abs x
  | Ceil -> Float.ceil x
  | Floor -> Float.floor x
  | Trunc -> Float.trunc x
  | Nearest -> Float.round x (* close enough to round-to-even for our use *)
  | Sqrt -> Float.sqrt x

let eval_fbinop (op : Ast.fbinop) x y =
  match op with
  | FAdd -> x +. y
  | FSub -> x -. y
  | FMul -> x *. y
  | FDiv -> x /. y
  | FMin -> if Float.is_nan x || Float.is_nan y then Float.nan else Float.min x y
  | FMax -> if Float.is_nan x || Float.is_nan y then Float.nan else Float.max x y
  | Copysign -> Float.copy_sign x y

let eval_frelop (op : Ast.frelop) x y =
  match op with
  | FEq -> x = y
  | FNe -> x <> y
  | FLt -> x < y
  | FGt -> x > y
  | FLe -> x <= y
  | FGe -> x >= y

let trunc_to_i32 ~signed x =
  if Float.is_nan x then trap "invalid conversion to integer";
  let t = Float.trunc x in
  if signed then
    if t >= 2147483648.0 || t < -2147483648.0 then trap "integer overflow"
    else Int32.of_float t
  else if t >= 4294967296.0 || t <= -1.0 then trap "integer overflow"
  else Int64.to_int32 (Int64.of_float t)

let trunc_to_i64 ~signed x =
  if Float.is_nan x then trap "invalid conversion to integer";
  let t = Float.trunc x in
  if signed then
    if t >= 9.22337203685477581e18 || t < -9.22337203685477581e18 then
      trap "integer overflow"
    else Int64.of_float t
  else if t >= 1.8446744073709552e19 || t <= -1.0 then trap "integer overflow"
  else if t >= 9.22337203685477581e18 then
    (* wrap into the unsigned top half *)
    Int64.add Int64.min_int (Int64.of_float (t -. 9.22337203685477581e18))
  else Int64.of_float t

let u32_to_float x = Int64.to_float (Int64.logand (Int64.of_int32 x) 0xffffffffL)

let u64_to_float x =
  if Int64.compare x 0L >= 0 then Int64.to_float x
  else Int64.to_float (Int64.shift_right_logical x 1) *. 2.0

let eval_cvtop (op : Ast.cvtop) (v : Values.t) : Values.t =
  match (op, v) with
  | I32WrapI64, I64 x -> I32 (Int64.to_int32 x)
  | I64ExtendI32S, I32 x -> I64 (Int64.of_int32 x)
  | I64ExtendI32U, I32 x -> I64 (Int64.logand (Int64.of_int32 x) 0xffffffffL)
  | I32TruncF32S, F32 x | I32TruncF64S, F64 x -> I32 (trunc_to_i32 ~signed:true x)
  | I32TruncF32U, F32 x | I32TruncF64U, F64 x -> I32 (trunc_to_i32 ~signed:false x)
  | I64TruncF32S, F32 x | I64TruncF64S, F64 x -> I64 (trunc_to_i64 ~signed:true x)
  | I64TruncF32U, F32 x | I64TruncF64U, F64 x -> I64 (trunc_to_i64 ~signed:false x)
  | F32ConvertI32S, I32 x -> F32 (Values.to_f32 (Int32.to_float x))
  | F32ConvertI32U, I32 x -> F32 (Values.to_f32 (u32_to_float x))
  | F32ConvertI64S, I64 x -> F32 (Values.to_f32 (Int64.to_float x))
  | F32ConvertI64U, I64 x -> F32 (Values.to_f32 (u64_to_float x))
  | F64ConvertI32S, I32 x -> F64 (Int32.to_float x)
  | F64ConvertI32U, I32 x -> F64 (u32_to_float x)
  | F64ConvertI64S, I64 x -> F64 (Int64.to_float x)
  | F64ConvertI64U, I64 x -> F64 (u64_to_float x)
  | F32DemoteF64, F64 x -> F32 (Values.to_f32 x)
  | F64PromoteF32, F32 x -> F64 x
  | I32ReinterpretF32, F32 x -> I32 (Int32.bits_of_float x)
  | I64ReinterpretF64, F64 x -> I64 (Int64.bits_of_float x)
  | F32ReinterpretI32, I32 x -> F32 (Int32.float_of_bits x)
  | F64ReinterpretI64, I64 x -> F64 (Int64.float_of_bits x)
  | _ -> trap "conversion operand type mismatch"

(* ------------------------------------------------------------------ *)
(* Stack helpers                                                       *)
(* ------------------------------------------------------------------ *)

let pop stack =
  match !stack with
  | [] -> trap "operand stack underflow (unvalidated module?)"
  | v :: rest ->
      stack := rest;
      v

let push stack v = stack := v :: !stack

let pop_i32 stack =
  match pop stack with
  | Values.I32 v -> v
  | v -> trap "expected i32, got %a" Values.pp v

let pop_i64 stack =
  match pop stack with
  | Values.I64 v -> v
  | v -> trap "expected i64, got %a" Values.pp v

let popn stack n =
  let rec go acc n = if n = 0 then acc else go (pop stack :: acc) (n - 1) in
  go [] n

(* ------------------------------------------------------------------ *)
(* Memory access with tag checking                                     *)
(* ------------------------------------------------------------------ *)

(* Every access — scalar and bulk — goes through the unified [Checked]
   layer: bounds check first (an out-of-bounds access is a sandbox
   violation and reported as such regardless of tag state), then the
   MTE tag check, then metering. *)

(* A Heap_scribble injection recorded at segment-free time is applied
   here, at the next synchronization point: by then the allocator has
   published the chunk's free-list link, and the junk write lands on
   live metadata. It models an asynchronous corruptor (racing thread,
   errant DMA), which is also why it writes through [Memory] directly,
   bypassing tag checks. *)
let apply_pending_scribble (inst : Instance.t) =
  match Arch.Fault_inject.take_scribble () with
  | None -> ()
  | Some addr -> (
      match inst.mem with
      | None -> ()
      | Some mem -> (
          let junk = Arch.Fault_inject.junk64 () in
          Arch.Fault_inject.note "free-list link at 0x%Lx overwritten with 0x%Lx"
            addr junk;
          try Memory.store_i64 mem addr junk
          with Memory.Out_of_bounds _ -> ()))

(* A deferred (Async/Asymmetric) fault is latched in the MTE engine's
   sticky TFSR when the faulting access executes; it is *reported* here,
   at synchronization points — function returns and host-call
   boundaries — as the paper's §4.2 fault model requires. The
   "deferred:" prefix lets callers distinguish late reports from
   synchronous traps. *)
let drain_deferred (inst : Instance.t) =
  apply_pending_scribble inst;
  match inst.mte with
  | None -> ()
  | Some mte -> (
      match Arch.Mte.take_pending mte with
      | None -> ()
      | Some f ->
          inst.last_fault <- Some f;
          trap "deferred: %a" Arch.Mte.pp_fault f)

let do_load ?elide (inst : Instance.t) stack (ty : Types.num_type) pack
    (ma : Ast.memarg) =
  let mem = memory inst in
  let addr, tag = Checked.resolve_addr (pop stack) ma.offset in
  let size =
    match pack with
    | None -> ( match ty with I32 | F32 -> 4 | I64 | F64 -> 8)
    | Some (p, _) -> ( match p with Ast.Pack8 -> 1 | Pack16 -> 2 | Pack32 -> 4)
  in
  Checked.load ?elide inst mem ~addr ~tag ~len:size;
  let v =
    try
      match (ty, pack) with
      | I32, None -> Values.I32 (Memory.load_i32 mem addr)
      | I64, None -> Values.I64 (Memory.load_i64 mem addr)
      | F32, None -> Values.F32 (Memory.load_f32 mem addr)
      | F64, None -> Values.F64 (Memory.load_f64 mem addr)
      | (I32 | I64), Some (p, ext) ->
          let n =
            match p with Ast.Pack8 -> 1 | Pack16 -> 2 | Pack32 -> 4
          in
          let raw = Memory.load_n mem addr n in
          let bits = n * 8 in
          let v =
            match ext with
            | Ast.ZX -> raw
            | Ast.SX ->
                Int64.shift_right (Int64.shift_left raw (64 - bits)) (64 - bits)
          in
          if ty = I32 then Values.I32 (Int64.to_int32 v) else Values.I64 v
      | _ -> trap "packed load of float"
    with Memory.Out_of_bounds _ -> trap "bounds: out of bounds memory access"
  in
  push stack v

let do_store ?elide (inst : Instance.t) stack (ty : Types.num_type) pack
    (ma : Ast.memarg) =
  let mem = memory inst in
  let v = pop stack in
  let addr, tag = Checked.resolve_addr (pop stack) ma.offset in
  let size =
    match pack with
    | None -> ( match ty with I32 | F32 -> 4 | I64 | F64 -> 8)
    | Some p -> ( match p with Ast.Pack8 -> 1 | Pack16 -> 2 | Pack32 -> 4)
  in
  Checked.store ?elide inst mem ~addr ~tag ~len:size;
  try
    match (ty, pack, v) with
    | I32, None, Values.I32 x -> Memory.store_i32 mem addr x
    | I64, None, Values.I64 x -> Memory.store_i64 mem addr x
    | F32, None, Values.F32 x -> Memory.store_f32 mem addr x
    | F64, None, Values.F64 x -> Memory.store_f64 mem addr x
    | I32, Some p, Values.I32 x ->
        let n = match p with Ast.Pack8 -> 1 | Pack16 -> 2 | Pack32 -> 4 in
        Memory.store_n mem addr n (Int64.of_int32 x)
    | I64, Some p, Values.I64 x ->
        let n = match p with Ast.Pack8 -> 1 | Pack16 -> 2 | Pack32 -> 4 in
        Memory.store_n mem addr n x
    | _ -> trap "store operand type mismatch"
  with Memory.Out_of_bounds _ -> trap "bounds: out of bounds memory access"

(* ------------------------------------------------------------------ *)
(* Cage segment instructions (Eqs. 5-13)                               *)
(* ------------------------------------------------------------------ *)

let seg_granules len = Int64.to_int (Int64.div len 16L)

let rng_int (inst : Instance.t) n = Random.State.int inst.rng n

let exec_segment_new (inst : Instance.t) stack o =
  let l = pop_i64 stack in
  let k = pop_i64 stack in
  let mte = mte inst in
  let tm = Arch.Mte.tag_memory mte in
  let addr = Int64.add (Arch.Ptr.address k) o in
  let tag = Arch.Tag.irg inst.exclude ~rng:(rng_int inst) in
  (match Arch.Tag_memory.set_region tm ~addr ~len:l tag with
  | Ok () -> ()
  | Error e -> trap "bounds: segment.new: %s" e);
  (* Eq. 5: the new segment is zeroed. *)
  (try Memory.fill (memory inst) ~addr ~len:l 0
   with Memory.Out_of_bounds _ -> trap "bounds: segment.new: out of bounds");
  (match inst.meter with
  | Some m ->
      m.seg_new <- m.seg_new + 1;
      m.seg_new_granules <- m.seg_new_granules + seg_granules l
  | None -> ());
  if Obs.Hook.enabled () then
    Obs.Hook.event
      (Obs.Event.Seg_new
         { addr; len = l; granules = seg_granules l; tag = Arch.Tag.to_int tag });
  push stack (Values.I64 (Arch.Ptr.with_tag (Int64.add k o) tag))

let exec_segment_set_tag (inst : Instance.t) stack o =
  let l = pop_i64 stack in
  let t = pop_i64 stack in
  let k = pop_i64 stack in
  let mte = mte inst in
  let tm = Arch.Mte.tag_memory mte in
  let addr = Int64.add (Arch.Ptr.address k) o in
  (match Arch.Tag_memory.set_region tm ~addr ~len:l (Arch.Ptr.tag t) with
  | Ok () -> ()
  | Error e -> trap "bounds: segment.set_tag: %s" e);
  if Obs.Hook.enabled () then
    Obs.Hook.event
      (Obs.Event.Seg_set_tag
         { addr; len = l; granules = seg_granules l;
           tag = Arch.Tag.to_int (Arch.Ptr.tag t) });
  match inst.meter with
  | Some m ->
      m.seg_set_tag <- m.seg_set_tag + 1;
      m.seg_set_tag_granules <- m.seg_set_tag_granules + seg_granules l
  | None -> ()

let exec_segment_free (inst : Instance.t) stack o =
  let l = pop_i64 stack in
  let k = pop_i64 stack in
  let mte = mte inst in
  let tm = Arch.Mte.tag_memory mte in
  let addr = Int64.add (Arch.Ptr.address k) o in
  let ptag = Arch.Ptr.tag k in
  (* Eq. 9/10: the pointer must still own the whole segment — this is
     what catches double-frees and frees through corrupted pointers. *)
  if not (Arch.Tag_memory.matches tm ~addr ~len:(Int64.max l 1L) ptag) then
    trap "tag fault: segment.free: tag mismatch (double free or invalid free)";
  let free_tag = Arch.Tag.next_allowed inst.exclude ptag in
  (match Arch.Tag_memory.set_region tm ~addr ~len:l free_tag with
  | Ok () -> ()
  | Error e -> trap "bounds: segment.free: %s" e);
  (* Chaos hook: schedule a scribble of this chunk's free-list link
     (payload-relative slot [-8], see Libc.Source); the junk write is
     applied at the next synchronization point, once the allocator has
     published the link. *)
  if Arch.Fault_inject.draw Arch.Fault_inject.Heap_scribble then
    Arch.Fault_inject.set_scribble (Int64.sub addr 8L);
  if Obs.Hook.enabled () then
    Obs.Hook.event
      (Obs.Event.Seg_free
         { addr; len = l; granules = seg_granules l;
           tag = Arch.Tag.to_int free_tag });
  match inst.meter with
  | Some m ->
      m.seg_free <- m.seg_free + 1;
      m.seg_free_granules <- m.seg_free_granules + seg_granules l
  | None -> ()

let exec_pointer_sign (inst : Instance.t) stack =
  let k = pop_i64 stack in
  (match inst.meter with
  | Some m -> m.ptr_sign <- m.ptr_sign + 1
  | None -> ());
  push stack
    (Values.I64
       (Arch.Pac.sign inst.pac_config inst.pac_key ~modifier:inst.pac_modifier
          k))

let exec_pointer_auth (inst : Instance.t) stack =
  let k = pop_i64 stack in
  (match inst.meter with
  | Some m -> m.ptr_auth <- m.ptr_auth + 1
  | None -> ());
  match
    Arch.Pac.auth inst.pac_config inst.pac_key ~modifier:inst.pac_modifier k
  with
  | Arch.Pac.Valid k' -> push stack (Values.I64 k')
  | Arch.Pac.Invalid_trap | Arch.Pac.Invalid_poisoned _ ->
      (* Eq. 13: the extension semantics trap on failed authentication. *)
      trap "pac auth: invalid signature (i64.pointer_auth)"

(* ------------------------------------------------------------------ *)
(* Main evaluator                                                      *)
(* ------------------------------------------------------------------ *)

(* The observability tick: one simulated cycle on the tracer's clock
   and one event on the profiler's sampling countdown per interpreted
   instruction. With no sink installed this is a single load-and-
   compare — the same fast-path contract as [Arch.Fault_inject]. The
   meter total is computed only at sampling points, so snapshot weights
   partition the meter exactly (see [Obs.Profiler]). *)
let obs_tick (inst : Instance.t) =
  match !Obs.Hook.hook with
  | None -> ()
  | Some s ->
      (match s.Obs.Hook.trace with
      | Some tr -> Obs.Trace.advance tr 1
      | None -> ());
      (match s.Obs.Hook.profiler with
      | Some p ->
          if Obs.Profiler.due p then
            let total =
              match inst.meter with
              | Some m -> Meter.total m
              | None -> Obs.Profiler.ticks p
            in
            Obs.Profiler.sample p ~stack:inst.call_stack ~total
      | None -> ())

(* The fuel watchdog: every branch and call burns one unit, so a
   runaway guest (infinite loop or unbounded recursion) terminates with
   a classifiable "fuel:" trap instead of hanging its supervisor. The
   [-1] sentinel keeps the unmetered path to one compare. *)
let burn_fuel (inst : Instance.t) =
  if inst.fuel >= 0 then begin
    if inst.fuel = 0 then trap "fuel: execution budget exhausted";
    inst.fuel <- inst.fuel - 1
  end

let meter_br (inst : Instance.t) =
  burn_fuel inst;
  match inst.meter with Some m -> m.branch <- m.branch + 1 | None -> ()

(* Take a prepared branch: the target depth and the label's arity were
   resolved at instantiation (O(1) here); a label index that had no
   enclosing block is a hard trap, never a silent arity-0 branch. *)
let take_branch stack : Code.label -> 'a = function
  | Code.L { depth; arity } -> raise (Branch (depth, popn stack arity))
  | Code.Bad_label n -> trap "branch depth %d out of range" n

(* [elide] is the current function's elision bitset (Code.func.elide),
   threaded down so the Load/Store dispatch can test its instruction id
   in O(1); [Bytes.empty] when no analysis ran. *)
let rec eval (inst : Instance.t) ~depth ~elide locals stack
    (code : Code.instr array) =
  Array.iter (eval_instr inst ~depth ~elide locals stack) code

and eval_instr (inst : Instance.t) ~depth ~elide locals stack
    (ins : Code.instr) =
  obs_tick inst;
  match ins with
  | Code.Basic (i, id) -> eval_basic inst ~depth ~elide locals stack i id
  | Code.Block (_, body) -> (
      try eval inst ~depth ~elide locals stack body with
      | Branch (0, vs) -> List.iter (push stack) vs
      | Branch (n, vs) -> raise (Branch (n - 1, vs)))
  | Code.Loop body ->
      let rec iter () =
        match eval inst ~depth ~elide locals stack body with
        | () -> ()
        | exception Branch (0, _) ->
            meter_br inst;
            iter ()
        | exception Branch (n, vs) -> raise (Branch (n - 1, vs))
      in
      iter ()
  | Code.If (_, then_, else_) -> (
      meter_br inst;
      let c = pop_i32 stack in
      let body = if not (Int32.equal c 0l) then then_ else else_ in
      try eval inst ~depth ~elide locals stack body with
      | Branch (0, vs) -> List.iter (push stack) vs
      | Branch (n, vs) -> raise (Branch (n - 1, vs)))
  | Code.Br l ->
      meter_br inst;
      take_branch stack l
  | Code.BrIf l ->
      meter_br inst;
      let c = pop_i32 stack in
      if not (Int32.equal c 0l) then take_branch stack l
  | Code.BrTable (targets, default) ->
      meter_br inst;
      let i = Int32.to_int (pop_i32 stack) in
      let l =
        if i >= 0 && i < Array.length targets then Array.unsafe_get targets i
        else default
      in
      take_branch stack l
  | Code.Return arity ->
      (match inst.meter with
      | Some m -> m.return_ <- m.return_ + 1
      | None -> ());
      raise (Ret (popn stack arity))

and eval_basic (inst : Instance.t) ~depth ~elide locals stack
    (ins : Ast.instr) (id : int) =
  let meter f = match inst.meter with Some m -> f m | None -> () in
  match ins with
  | Unreachable -> trap "unreachable executed"
  | Nop -> ()
  | Block _ | Loop _ | If _ | Br _ | BrIf _ | BrTable _ | Return ->
      (* control flow is compiled away by [Code.prepare] *)
      assert false
  | Call i ->
      meter (fun m -> m.call <- m.call + 1);
      invoke_idx inst ~depth:(depth + 1) stack i
  | CallIndirect ti ->
      meter (fun m -> m.call_indirect <- m.call_indirect + 1);
      let idx = Int32.to_int (pop_i32 stack) in
      if idx < 0 || idx >= Array.length inst.table then
        trap "undefined element %d in table" idx;
      (match inst.table.(idx) with
      | None -> trap "uninitialized table element %d" idx
      | Some fi ->
          let expected = List.nth inst.module_.types ti in
          let actual = func_type inst.funcs.(fi) in
          if not (Types.func_type_equal expected actual) then
            trap "indirect call type mismatch";
          invoke_idx inst ~depth:(depth + 1) stack fi)
  | Drop -> ignore (pop stack)
  | Select ->
      meter (fun m -> m.select <- m.select + 1);
      let c = pop_i32 stack in
      let v2 = pop stack in
      let v1 = pop stack in
      push stack (if not (Int32.equal c 0l) then v1 else v2)
  | LocalGet i ->
      meter (fun m -> m.local_access <- m.local_access + 1);
      push stack locals.(i)
  | LocalSet i ->
      meter (fun m -> m.local_access <- m.local_access + 1);
      locals.(i) <- pop stack
  | LocalTee i ->
      meter (fun m -> m.local_access <- m.local_access + 1);
      let v = pop stack in
      locals.(i) <- v;
      push stack v
  | GlobalGet i ->
      meter (fun m -> m.global_access <- m.global_access + 1);
      push stack inst.globals.(i)
  | GlobalSet i ->
      meter (fun m -> m.global_access <- m.global_access + 1);
      inst.globals.(i) <- pop stack
  | I32Const v ->
      meter (fun m -> m.const <- m.const + 1);
      push stack (Values.I32 v)
  | I64Const v ->
      meter (fun m -> m.const <- m.const + 1);
      push stack (Values.I64 v)
  | F32Const v ->
      meter (fun m -> m.const <- m.const + 1);
      push stack (Values.F32 (Values.to_f32 v))
  | F64Const v ->
      meter (fun m -> m.const <- m.const + 1);
      push stack (Values.F64 v)
  | IUnop (w, op) ->
      meter (fun m -> m.ialu <- m.ialu + 1);
      (match w with
      | W32 -> push stack (Values.I32 (eval_iunop32 op (pop_i32 stack)))
      | W64 -> push stack (Values.I64 (eval_iunop64 op (pop_i64 stack))))
  | IBinop (w, op) ->
      meter (fun m ->
          match op with
          | Mul -> m.imul <- m.imul + 1
          | DivS | DivU | RemS | RemU -> m.idiv <- m.idiv + 1
          | _ -> m.ialu <- m.ialu + 1);
      (match w with
      | W32 ->
          let y = pop_i32 stack in
          let x = pop_i32 stack in
          push stack (Values.I32 (eval_ibinop32 op x y))
      | W64 ->
          let y = pop_i64 stack in
          let x = pop_i64 stack in
          push stack (Values.I64 (eval_ibinop64 op x y)))
  | ITestop w ->
      meter (fun m -> m.ialu <- m.ialu + 1);
      let z =
        match w with
        | W32 -> Int32.equal (pop_i32 stack) 0l
        | W64 -> Int64.equal (pop_i64 stack) 0L
      in
      push stack (Values.I32 (if z then 1l else 0l))
  | IRelop (w, op) ->
      meter (fun m -> m.ialu <- m.ialu + 1);
      let b =
        match w with
        | W32 ->
            let y = pop_i32 stack in
            let x = pop_i32 stack in
            eval_irelop32 op x y
        | W64 ->
            let y = pop_i64 stack in
            let x = pop_i64 stack in
            eval_irelop64 op x y
      in
      push stack (Values.I32 (if b then 1l else 0l))
  | FUnop (w, op) ->
      meter (fun m -> m.falu <- m.falu + 1);
      let v = pop stack in
      (match (w, v) with
      | W32, Values.F32 x -> push stack (Values.F32 (Values.to_f32 (eval_funop op x)))
      | W64, Values.F64 x -> push stack (Values.F64 (eval_funop op x))
      | _ -> trap "funop operand mismatch")
  | FBinop (w, op) ->
      meter (fun m ->
          match op with
          | FMul -> m.fmul <- m.fmul + 1
          | FDiv -> m.fdiv <- m.fdiv + 1
          | _ -> m.falu <- m.falu + 1);
      let v2 = pop stack in
      let v1 = pop stack in
      (match (w, v1, v2) with
      | W32, Values.F32 x, Values.F32 y ->
          push stack (Values.F32 (Values.to_f32 (eval_fbinop op x y)))
      | W64, Values.F64 x, Values.F64 y ->
          push stack (Values.F64 (eval_fbinop op x y))
      | _ -> trap "fbinop operand mismatch")
  | FRelop (w, op) ->
      meter (fun m -> m.falu <- m.falu + 1);
      let v2 = pop stack in
      let v1 = pop stack in
      let b =
        match (w, v1, v2) with
        | W32, Values.F32 x, Values.F32 y -> eval_frelop op x y
        | W64, Values.F64 x, Values.F64 y -> eval_frelop op x y
        | _ -> trap "frelop operand mismatch"
      in
      push stack (Values.I32 (if b then 1l else 0l))
  | Cvtop op ->
      meter (fun m -> m.cvt <- m.cvt + 1);
      push stack (eval_cvtop op (pop stack))
  | Load (ty, pack, ma) ->
      do_load ~elide:(Code.elidable elide id) inst stack ty pack ma
  | Store (ty, pack, ma) ->
      do_store ~elide:(Code.elidable elide id) inst stack ty pack ma
  | MemorySize ->
      let mem = memory inst in
      let pages = Memory.size_pages mem in
      push stack
        (match Memory.idx_type mem with
        | Types.Idx32 -> Values.I32 (Int64.to_int32 pages)
        | Types.Idx64 -> Values.I64 pages)
  | MemoryGrow ->
      meter (fun m -> m.mem_grow <- m.mem_grow + 1);
      let mem = memory inst in
      let delta =
        match Memory.idx_type mem with
        | Types.Idx32 -> Int64.logand (Int64.of_int32 (pop_i32 stack)) 0xffffffffL
        | Types.Idx64 -> pop_i64 stack
      in
      let old = Memory.grow mem delta in
      if old >= 0L && delta > 0L then
        Option.iter
          (fun mte ->
            let tm = Arch.Mte.tag_memory mte in
            Arch.Mte.set_tag_memory mte
              (Arch.Tag_memory.grow tm
                 ~new_size_bytes:(Int64.to_int (Memory.size_bytes mem))))
          inst.mte;
      if old >= 0L && Obs.Hook.enabled () then
        Obs.Hook.event
          (Obs.Event.Mem_grow
             { delta_pages = delta; new_pages = Memory.size_pages mem });
      push stack
        (match Memory.idx_type mem with
        | Types.Idx32 -> Values.I32 (Int64.to_int32 old)
        | Types.Idx64 -> Values.I64 old)
  | MemoryFill ->
      let mem = memory inst in
      (* Lengths are plain integers, never pointers: no tag stripping,
         and a negative/huge i64 length simply fails the bounds check. *)
      let len =
        match Memory.idx_type mem with
        | Types.Idx32 -> Int64.logand (Int64.of_int32 (pop_i32 stack)) 0xffffffffL
        | Types.Idx64 -> pop_i64 stack
      in
      let v = Int32.to_int (pop_i32 stack) in
      let dst, dtag = Checked.resolve_addr (pop stack) 0L in
      meter (fun m -> m.bulk_fill <- m.bulk_fill + 1);
      Checked.fill inst mem ~addr:dst ~tag:dtag ~len v
  | MemoryCopy ->
      let mem = memory inst in
      let len =
        match Memory.idx_type mem with
        | Types.Idx32 -> Int64.logand (Int64.of_int32 (pop_i32 stack)) 0xffffffffL
        | Types.Idx64 -> pop_i64 stack
      in
      let src, stag = Checked.resolve_addr (pop stack) 0L in
      let dst, dtag = Checked.resolve_addr (pop stack) 0L in
      meter (fun m -> m.bulk_copy <- m.bulk_copy + 1);
      Checked.copy inst mem ~dst ~dtag ~src ~stag ~len
  | SegmentNew o -> exec_segment_new inst stack o
  | SegmentSetTag o -> exec_segment_set_tag inst stack o
  | SegmentFree o -> exec_segment_free inst stack o
  | PointerSign -> exec_pointer_sign inst stack
  | PointerAuth -> exec_pointer_auth inst stack

(* Invoke function index [i] with arguments taken from [stack]. *)
and invoke_idx (inst : Instance.t) ~depth stack i =
  if depth > max_call_depth then
    trap "stack: call stack exhausted (depth %d)" depth;
  burn_fuel inst;
  match inst.funcs.(i) with
  | Host_func { fn; ty; name } ->
      if Obs.Hook.enabled () then begin
        Obs.Hook.set_instance inst.id;
        Obs.Hook.event (Obs.Event.Host_call { name })
      end;
      (* A host call is a synchronization point: report any deferred
         fault latched before control leaves wasm. *)
      drain_deferred inst;
      let args = popn stack (List.length ty.params) in
      let results =
        try fn inst args
        with Invalid_argument msg -> trap "host %s: %s" name msg
      in
      List.iter (push stack) results
  | Wasm_func { func; ty; code; _ } ->
      let args = popn stack (List.length ty.params) in
      let locals =
        Array.of_list (args @ List.map Values.default func.locals)
      in
      inst.call_stack <- i :: inst.call_stack;
      if Obs.Hook.enabled () then begin
        Obs.Hook.set_instance inst.id;
        Obs.Hook.event
          (Obs.Event.Func_enter { idx = i; name = Instance.func_name inst i })
      end;
      let fstack = ref [] in
      (try eval inst ~depth ~elide:code.Code.elide locals fstack code.Code.body
       with
      | Ret vs -> List.iter (push fstack) vs
      | Branch (_, vs) -> List.iter (push fstack) vs);
      (* take the results off the callee stack *)
      let results = popn fstack code.Code.result_arity in
      (* Function return is a synchronization point (§4.2): deferred
         Async/Asymmetric faults are reported here, sticky-first. *)
      drain_deferred inst;
      (* pop the frame on normal completion only: after a trap the
         frozen stack is the crash backtrace (see Instance.call_stack) —
         and the matching [Func_leave] is likewise skipped, so the
         Chrome trace shows an unfinished slice for the crashed call. *)
      if Obs.Hook.enabled () then
        Obs.Hook.event
          (Obs.Event.Func_leave { idx = i; name = Instance.func_name inst i });
      (match inst.call_stack with
      | _ :: tl -> inst.call_stack <- tl
      | [] -> ());
      List.iter (push stack) results

(* ------------------------------------------------------------------ *)
(* Instantiation                                                       *)
(* ------------------------------------------------------------------ *)

let instance_counter = ref 0

(** Instantiate a validated module. [imports] supplies host functions by
    (module, name); missing imports raise {!Instance.Trap}. Data and
    element segments are applied and the start function runs before the
    instance is returned, as the spec requires. *)
let instantiate ?(config = Instance.default_config)
    ?(imports : (string * string * Instance.host_func) list = [])
    (m : Ast.module_) : Instance.t =
  incr instance_counter;
  let id = !instance_counter in
  let rng = Random.State.make [| config.seed; id |] in
  let resolve (im : Ast.import) =
    match
      List.find_opt
        (fun (mo, n, _) ->
          String.equal mo im.im_module && String.equal n im.im_name)
        imports
    with
    | Some (_, _, fn) ->
        Host_func
          { fn; ty = List.nth m.types im.im_type;
            name = im.im_module ^ "." ^ im.im_name }
    | None ->
        raise
          (Trap
             (Printf.sprintf "unresolved import %s.%s" im.im_module im.im_name))
  in
  let mem = Option.map Memory.create m.memory in
  let mte =
    Option.map
      (fun mem ->
        Arch.Mte.create ~mode:config.mte_mode
          (Arch.Tag_memory.create
             ~size_bytes:(Int64.to_int (Memory.size_bytes mem))))
      mem
  in
  let table =
    match m.table with
    | None -> [||]
    | Some tt -> Array.make (Int64.to_int tt.tbl_limits.min) None
  in
  let inst =
    {
      id;
      module_ = m;
      funcs = [||];
      table;
      mem;
      mte;
      globals = Array.of_list (List.map (fun (g : Ast.global) -> g.g_init) m.globals);
      pac_key =
        (match config.pac_key with
        | Some k -> k
        | None ->
            Arch.Pac.random_key
              ~rng:(fun () -> Random.State.int64 rng Int64.max_int));
      pac_modifier = config.pac_modifier;
      pac_config = config.pac_config;
      exclude = config.exclude;
      enforce_tags = config.enforce_tags;
      rng;
      meter = config.meter;
      fuel = config.fuel;
      call_stack = [];
      last_fault = None;
    }
  in
  let n_imports = List.length m.imports in
  let funcs =
    Array.init
      (n_imports + List.length m.funcs)
      (fun i ->
        if i < n_imports then resolve (List.nth m.imports i)
        else
          let f = List.nth m.funcs (i - n_imports) in
          let ty = List.nth m.types f.ftype in
          let elide =
            let j = i - n_imports in
            if j < Array.length config.elide then config.elide.(j)
            else Bytes.empty
          in
          let code =
            Code.prepare ~elide ~result_arity:(List.length ty.results) f.body
          in
          Wasm_func { inst_id = id; func = f; ty; code })
  in
  let inst = { inst with funcs } in
  (* element segments *)
  List.iter
    (fun (e : Ast.elem) ->
      List.iteri
        (fun j fi ->
          let pos = Int64.to_int e.e_offset + j in
          if pos < 0 || pos >= Array.length inst.table then
            raise (Trap "element segment out of table bounds");
          inst.table.(pos) <- Some fi)
        e.e_funcs)
    m.elems;
  (* data segments *)
  List.iter
    (fun (d : Ast.data) ->
      match inst.mem with
      | None -> raise (Trap "data segment without memory")
      | Some mem -> (
          try Memory.write_string mem ~addr:d.d_offset d.d_bytes
          with Memory.Out_of_bounds _ ->
            raise (Trap "data segment out of memory bounds")))
    m.datas;
  (* start function *)
  Option.iter
    (fun i ->
      let stack = ref [] in
      invoke_idx inst ~depth:0 stack i)
    m.start;
  inst

(** Call an exported function by name. *)
let invoke inst name args =
  match Instance.exported_func inst name with
  | None -> raise (Trap (Printf.sprintf "no exported function %S" name))
  | Some i ->
      let stack = ref [] in
      List.iter (push stack) args;
      invoke_idx inst ~depth:0 stack i;
      List.rev !stack

(** Call a function by index (used by the libc shims). *)
let invoke_function inst i args =
  let stack = ref [] in
  List.iter (push stack) args;
  invoke_idx inst ~depth:0 stack i;
  List.rev !stack
