(** Numeric operator semantics, shared by the tree-walking interpreter
    ({!Exec}) and the threaded-code engine ({!Compile}).

    Both engines must produce bit-identical results and raise the same
    traps ({!Instance.Trap} with the spec's messages), so the operator
    bodies live here exactly once. *)

let trap fmt = Format.kasprintf (fun s -> raise (Instance.Trap s)) fmt

let eval_iunop32 (op : Ast.iunop) x =
  match op with
  | Clz -> Int32.of_int (Values.clz32 x)
  | Ctz -> Int32.of_int (Values.ctz32 x)
  | Popcnt -> Int32.of_int (Values.popcnt32 x)

let eval_iunop64 (op : Ast.iunop) x =
  match op with
  | Clz -> Int64.of_int (Values.clz64 x)
  | Ctz -> Int64.of_int (Values.ctz64 x)
  | Popcnt -> Int64.of_int (Values.popcnt64 x)

let eval_ibinop32 (op : Ast.ibinop) x y =
  match op with
  | Add -> Int32.add x y
  | Sub -> Int32.sub x y
  | Mul -> Int32.mul x y
  | DivS ->
      if Int32.equal y 0l then trap "integer divide by zero"
      else if Int32.equal x Int32.min_int && Int32.equal y (-1l) then
        trap "integer overflow"
      else Int32.div x y
  | DivU ->
      if Int32.equal y 0l then trap "integer divide by zero"
      else Int32.unsigned_div x y
  | RemS ->
      if Int32.equal y 0l then trap "integer divide by zero"
      else if Int32.equal x Int32.min_int && Int32.equal y (-1l) then 0l
      else Int32.rem x y
  | RemU ->
      if Int32.equal y 0l then trap "integer divide by zero"
      else Int32.unsigned_rem x y
  | And -> Int32.logand x y
  | Or -> Int32.logor x y
  | Xor -> Int32.logxor x y
  | Shl -> Int32.shift_left x (Values.i32_shift_amount y)
  | ShrS -> Int32.shift_right x (Values.i32_shift_amount y)
  | ShrU -> Int32.shift_right_logical x (Values.i32_shift_amount y)
  | Rotl -> Values.rotl32 x y
  | Rotr -> Values.rotr32 x y

let eval_ibinop64 (op : Ast.ibinop) x y =
  match op with
  | Add -> Int64.add x y
  | Sub -> Int64.sub x y
  | Mul -> Int64.mul x y
  | DivS ->
      if Int64.equal y 0L then trap "integer divide by zero"
      else if Int64.equal x Int64.min_int && Int64.equal y (-1L) then
        trap "integer overflow"
      else Int64.div x y
  | DivU ->
      if Int64.equal y 0L then trap "integer divide by zero"
      else Int64.unsigned_div x y
  | RemS ->
      if Int64.equal y 0L then trap "integer divide by zero"
      else if Int64.equal x Int64.min_int && Int64.equal y (-1L) then 0L
      else Int64.rem x y
  | RemU ->
      if Int64.equal y 0L then trap "integer divide by zero"
      else Int64.unsigned_rem x y
  | And -> Int64.logand x y
  | Or -> Int64.logor x y
  | Xor -> Int64.logxor x y
  | Shl -> Int64.shift_left x (Values.i64_shift_amount y)
  | ShrS -> Int64.shift_right x (Values.i64_shift_amount y)
  | ShrU -> Int64.shift_right_logical x (Values.i64_shift_amount y)
  | Rotl -> Values.rotl64 x y
  | Rotr -> Values.rotr64 x y

let eval_irelop32 (op : Ast.irelop) x y =
  match op with
  | Eq -> Int32.equal x y
  | Ne -> not (Int32.equal x y)
  | LtS -> Int32.compare x y < 0
  | LtU -> Values.u32_lt x y
  | GtS -> Int32.compare x y > 0
  | GtU -> Values.u32_gt x y
  | LeS -> Int32.compare x y <= 0
  | LeU -> Values.u32_le x y
  | GeS -> Int32.compare x y >= 0
  | GeU -> Values.u32_ge x y

let eval_irelop64 (op : Ast.irelop) x y =
  match op with
  | Eq -> Int64.equal x y
  | Ne -> not (Int64.equal x y)
  | LtS -> Int64.compare x y < 0
  | LtU -> Values.u64_lt x y
  | GtS -> Int64.compare x y > 0
  | GtU -> Values.u64_gt x y
  | LeS -> Int64.compare x y <= 0
  | LeU -> Values.u64_le x y
  | GeS -> Int64.compare x y >= 0
  | GeU -> Values.u64_ge x y

let eval_funop (op : Ast.funop) x =
  match op with
  | Neg -> -.x
  | Abs -> Float.abs x
  | Ceil -> Float.ceil x
  | Floor -> Float.floor x
  | Trunc -> Float.trunc x
  | Nearest -> Float.round x (* close enough to round-to-even for our use *)
  | Sqrt -> Float.sqrt x

let eval_fbinop (op : Ast.fbinop) x y =
  match op with
  | FAdd -> x +. y
  | FSub -> x -. y
  | FMul -> x *. y
  | FDiv -> x /. y
  | FMin -> if Float.is_nan x || Float.is_nan y then Float.nan else Float.min x y
  | FMax -> if Float.is_nan x || Float.is_nan y then Float.nan else Float.max x y
  | Copysign -> Float.copy_sign x y

let eval_frelop (op : Ast.frelop) x y =
  match op with
  | FEq -> x = y
  | FNe -> x <> y
  | FLt -> x < y
  | FGt -> x > y
  | FLe -> x <= y
  | FGe -> x >= y

let trunc_to_i32 ~signed x =
  if Float.is_nan x then trap "invalid conversion to integer";
  let t = Float.trunc x in
  if signed then
    if t >= 2147483648.0 || t < -2147483648.0 then trap "integer overflow"
    else Int32.of_float t
  else if t >= 4294967296.0 || t <= -1.0 then trap "integer overflow"
  else Int64.to_int32 (Int64.of_float t)

let trunc_to_i64 ~signed x =
  if Float.is_nan x then trap "invalid conversion to integer";
  let t = Float.trunc x in
  if signed then
    if t >= 9.22337203685477581e18 || t < -9.22337203685477581e18 then
      trap "integer overflow"
    else Int64.of_float t
  else if t >= 1.8446744073709552e19 || t <= -1.0 then trap "integer overflow"
  else if t >= 9.22337203685477581e18 then
    (* wrap into the unsigned top half *)
    Int64.add Int64.min_int (Int64.of_float (t -. 9.22337203685477581e18))
  else Int64.of_float t

let u32_to_float x = Int64.to_float (Int64.logand (Int64.of_int32 x) 0xffffffffL)

let u64_to_float x =
  if Int64.compare x 0L >= 0 then Int64.to_float x
  else Int64.to_float (Int64.shift_right_logical x 1) *. 2.0

let eval_cvtop (op : Ast.cvtop) (v : Values.t) : Values.t =
  match (op, v) with
  | I32WrapI64, I64 x -> I32 (Int64.to_int32 x)
  | I64ExtendI32S, I32 x -> I64 (Int64.of_int32 x)
  | I64ExtendI32U, I32 x -> I64 (Int64.logand (Int64.of_int32 x) 0xffffffffL)
  | I32TruncF32S, F32 x | I32TruncF64S, F64 x -> I32 (trunc_to_i32 ~signed:true x)
  | I32TruncF32U, F32 x | I32TruncF64U, F64 x -> I32 (trunc_to_i32 ~signed:false x)
  | I64TruncF32S, F32 x | I64TruncF64S, F64 x -> I64 (trunc_to_i64 ~signed:true x)
  | I64TruncF32U, F32 x | I64TruncF64U, F64 x -> I64 (trunc_to_i64 ~signed:false x)
  | F32ConvertI32S, I32 x -> F32 (Values.to_f32 (Int32.to_float x))
  | F32ConvertI32U, I32 x -> F32 (Values.to_f32 (u32_to_float x))
  | F32ConvertI64S, I64 x -> F32 (Values.to_f32 (Int64.to_float x))
  | F32ConvertI64U, I64 x -> F32 (Values.to_f32 (u64_to_float x))
  | F64ConvertI32S, I32 x -> F64 (Int32.to_float x)
  | F64ConvertI32U, I32 x -> F64 (u32_to_float x)
  | F64ConvertI64S, I64 x -> F64 (Int64.to_float x)
  | F64ConvertI64U, I64 x -> F64 (u64_to_float x)
  | F32DemoteF64, F64 x -> F32 (Values.to_f32 x)
  | F64PromoteF32, F32 x -> F64 x
  | I32ReinterpretF32, F32 x -> I32 (Int32.bits_of_float x)
  | I64ReinterpretF64, F64 x -> I64 (Int64.bits_of_float x)
  | F32ReinterpretI32, I32 x -> F32 (Int32.float_of_bits x)
  | F64ReinterpretI64, I64 x -> F64 (Int64.float_of_bits x)
  | _ -> trap "conversion operand type mismatch"
