(** Prepared (pre-compiled) function bodies.

    The interpreter used to carry a [int list] of label arities at run
    time and look branch targets up with [List.nth] on every
    [br]/[br_if]/[br_table]/[return] — O(depth) per branch, executed on
    the hottest control-flow path, with a silent [with _ -> 0] fallback
    that let malformed label indices corrupt the operand stack.

    This module resolves all of that once, at instantiation: every
    branch carries its target depth {e and} the label's arity; br_table
    target lists become arrays (O(1) selection); a label index with no
    matching enclosing block compiles to {!Bad_label}, which traps hard
    at execution instead of guessing arity 0. Non-control instructions
    are embedded unchanged as {!Basic}, so the numeric/memory dispatch
    in the interpreter is untouched. *)

type label =
  | L of { depth : int; arity : int }
  | Bad_label of int
      (** the label index had no enclosing block: executing it is a
          hard trap, never a silent arity-0 branch *)

type instr =
  | Basic of Ast.instr  (** no intra-function control flow *)
  | Block of int * instr array  (** label arity, body *)
  | Loop of instr array  (** loop labels have arity 0 (MVP shorthand) *)
  | If of int * instr array * instr array
  | Br of label
  | BrIf of label
  | BrTable of label array * label
  | Return of int  (** function result arity *)

type func = { body : instr array; result_arity : int }

let block_arity : Ast.block_type -> int = function
  | Ast.ValBlock None -> 0
  | Ast.ValBlock (Some _) -> 1

(* [arities] is the static label stack, innermost first; its base entry
   is the function's result arity (the function-body label). *)
let resolve arities n =
  match List.nth_opt arities n with
  | Some arity -> L { depth = n; arity }
  | None -> Bad_label n

let rec prepare_block arities (instrs : Ast.instr list) : instr array =
  Array.of_list (List.map (prepare_instr arities) instrs)

and prepare_instr arities : Ast.instr -> instr = function
  | Ast.Block (bt, body) ->
      let a = block_arity bt in
      Block (a, prepare_block (a :: arities) body)
  | Ast.Loop (_, body) -> Loop (prepare_block (0 :: arities) body)
  | Ast.If (bt, then_, else_) ->
      let a = block_arity bt in
      let arities = a :: arities in
      If (a, prepare_block arities then_, prepare_block arities else_)
  | Ast.Br n -> Br (resolve arities n)
  | Ast.BrIf n -> BrIf (resolve arities n)
  | Ast.BrTable (targets, default) ->
      BrTable
        (Array.of_list (List.map (resolve arities) targets),
         resolve arities default)
  | Ast.Return -> Return (List.nth arities (List.length arities - 1))
  | i -> Basic i

(** Prepare a function body whose type has [result_arity] results. *)
let prepare ~result_arity (body : Ast.instr list) : func =
  { body = prepare_block [ result_arity ] body; result_arity }
