(** Prepared (pre-compiled) function bodies.

    The interpreter used to carry a [int list] of label arities at run
    time and look branch targets up with [List.nth] on every
    [br]/[br_if]/[br_table]/[return] — O(depth) per branch, executed on
    the hottest control-flow path, with a silent [with _ -> 0] fallback
    that let malformed label indices corrupt the operand stack.

    This module resolves all of that once, at instantiation: every
    branch carries its target depth {e and} the label's arity; br_table
    target lists become arrays (O(1) selection); a label index with no
    matching enclosing block compiles to {!Bad_label}, which traps hard
    at execution instead of guessing arity 0. Non-control instructions
    are embedded unchanged as {!Basic}, so the numeric/memory dispatch
    in the interpreter is untouched. *)

type label =
  | L of { depth : int; arity : int }
  | Bad_label of int
      (** the label index had no enclosing block: executing it is a
          hard trap, never a silent arity-0 branch *)

type instr =
  | Basic of Ast.instr * int
      (** no intra-function control flow; the [int] is the instruction's
          preorder id within its function (list order, block/loop bodies
          recursed, [if] then-branch before else-branch — the exact
          numbering {!Analysis} replicates over the AST, so a static
          elision proof for id [n] applies to this instruction) *)
  | Block of int * instr array  (** label arity, body *)
  | Loop of instr array  (** loop labels have arity 0 (MVP shorthand) *)
  | If of int * instr array * instr array
  | Br of label
  | BrIf of label
  | BrTable of label array * label
  | Return of int  (** function result arity *)

type func = {
  body : instr array;
  result_arity : int;
  elide : Bytes.t;
      (** bitset over basic-instruction ids (byte [id/8], bit [id mod 8]):
          a set bit means a whole-module analysis proved this load/store
          in-bounds on a definitely-live segment, so the MTE granule
          check may be skipped. [Bytes.empty] = no elision. *)
  belide : Bytes.t;
      (** same shape, for the span (bounds) check: a set bit means the
          access was proven inside a successfully created segment, so
          the linear-memory bounds check may also be skipped. The tag
          set is always a subset of this one. *)
  arena : Bytes.t;
      (** same shape, over [segment.new]/[segment.free] ids: a set bit
          means the segment never escapes and every access through it
          is elided, so the instruction skips its tag-plane writes
          (and, for free, the matches-check) entirely. *)
}

let block_arity : Ast.block_type -> int = function
  | Ast.ValBlock None -> 0
  | Ast.ValBlock (Some _) -> 1

(* [arities] is the static label stack, innermost first; its base entry
   is the function's result arity (the function-body label). *)
let resolve arities n =
  match List.nth_opt arities n with
  | Some arity -> L { depth = n; arity }
  | None -> Bad_label n

(* Explicit left-to-right recursion: the id counter in [next] makes the
   traversal order part of the numbering contract. *)
let rec prepare_block next arities (instrs : Ast.instr list) : instr array =
  let rec go acc = function
    | [] -> Array.of_list (List.rev acc)
    | i :: rest ->
        let p = prepare_instr next arities i in
        go (p :: acc) rest
  in
  go [] instrs

and prepare_instr next arities : Ast.instr -> instr = function
  | Ast.Block (bt, body) ->
      let a = block_arity bt in
      Block (a, prepare_block next (a :: arities) body)
  | Ast.Loop (_, body) -> Loop (prepare_block next (0 :: arities) body)
  | Ast.If (bt, then_, else_) ->
      let a = block_arity bt in
      let arities = a :: arities in
      let then_ = prepare_block next arities then_ in
      If (a, then_, prepare_block next arities else_)
  | Ast.Br n -> Br (resolve arities n)
  | Ast.BrIf n -> BrIf (resolve arities n)
  | Ast.BrTable (targets, default) ->
      BrTable
        (Array.of_list (List.map (resolve arities) targets),
         resolve arities default)
  | Ast.Return -> Return (List.nth arities (List.length arities - 1))
  | i ->
      let id = !next in
      incr next;
      Basic (i, id)

(** True when basic-instruction id [id] is marked elidable in [elide]. *)
let elidable elide id =
  let byte = id lsr 3 in
  byte < Bytes.length elide
  && Char.code (Bytes.unsafe_get elide byte) land (1 lsl (id land 7)) <> 0

(** Prepare a function body whose type has [result_arity] results.
    [elide]/[belide]/[arena], when given, are the per-function bitsets
    produced by the static analyzer (see {!elidable}). *)
let prepare ?(elide = Bytes.empty) ?(belide = Bytes.empty)
    ?(arena = Bytes.empty) ~result_arity (body : Ast.instr list) : func =
  let next = ref 0 in
  {
    body = prepare_block next [ result_arity ] body;
    result_arity;
    elide;
    belide;
    arena;
  }
