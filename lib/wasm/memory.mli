(** Linear memory instances.

    A flat byte array addressed by 32- or 64-bit indices, growable in
    64 KiB pages. Every access is bounds-checked here — this is the
    semantic ground truth; {e how} a production runtime enforces bounds
    (software checks, guard pages, MTE sandboxing) is a cost-model
    concern handled by [Cage.Lowering]. *)

type t

exception Out_of_bounds of int64 * int
(** Raised by accessors on an out-of-range access: (address, length). *)

val page_size : int64
(** 64 KiB. *)

val implementation_max_pages : int64
(** Hard cap (1 GiB) so tests cannot accidentally allocate huge
    buffers. *)

val create : Types.mem_type -> t
(** Fresh zeroed memory at the type's minimum size.
    @raise Invalid_argument if the initial size exceeds the
    implementation cap. *)

val idx_type : t -> Types.idx_type
val size_pages : t -> int64
val size_bytes : t -> int64

val in_bounds : t -> addr:int64 -> len:int -> bool
(** Whether [\[addr, addr+len)] lies within the current memory size
    (overflow-safe). *)

val in_bounds64 : t -> addr:int64 -> len:int64 -> bool
(** {!in_bounds} for bulk operations whose length operand is a raw
    64-bit value (negative or huge lengths are simply out of bounds). *)

val grow : t -> int64 -> int64
(** [grow t delta] adds [delta] pages; returns the previous size in
    pages, or [-1] if the grow would exceed the declared maximum or the
    implementation cap (the spec's failure value). *)

(** {1 Sized accessors}

    All little-endian; all raise {!Out_of_bounds} when out of range. *)

val load_byte : t -> int64 -> int
val store_byte : t -> int64 -> int -> unit

val load_n : t -> int64 -> int -> int64
(** [load_n t addr n] reads [n] bytes ([1..8]) as an unsigned
    little-endian value. *)

val store_n : t -> int64 -> int -> int64 -> unit
(** [store_n t addr n v] writes the low [n] bytes of [v]. *)

val load_i32 : t -> int64 -> int32
val store_i32 : t -> int64 -> int32 -> unit
val load_i64 : t -> int64 -> int64
val store_i64 : t -> int64 -> int64 -> unit
val load_f32 : t -> int64 -> float
val store_f32 : t -> int64 -> float -> unit
val load_f64 : t -> int64 -> float
val store_f64 : t -> int64 -> float -> unit

(** {1 Native-int accessors}

    The threaded engine's fast path: every valid effective address fits
    OCaml's native int (the 1 GiB cap), so bounds checks against
    {!length_bytes} and the accesses themselves run entirely unboxed.
    The caller must have established [0 <= addr] and
    [addr + width <= length_bytes]; the underlying [Bytes] primitives
    keep their own never-firing range test as a backstop. *)

val length_bytes : t -> int
(** Current memory size in bytes, as a native int. *)

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val get_u16 : t -> int -> int
val set_u16 : t -> int -> int -> unit

val get_32s : t -> int -> int
(** 32-bit read, sign-extended into a native int. *)

val set_32 : t -> int -> int -> unit
(** 32-bit write of a native int's low 32 bits. *)

val get_64 : t -> int -> int64
val set_64 : t -> int -> int64 -> unit
val get_f32' : t -> int -> float
val set_f32' : t -> int -> float -> unit
val get_f64' : t -> int -> float
val set_f64' : t -> int -> float -> unit

val fill : t -> addr:int64 -> len:int64 -> int -> unit
(** [memory.fill]: set [len] bytes to the given byte value. *)

val copy : t -> dst:int64 -> src:int64 -> len:int64 -> unit
(** [memory.copy]: overlapping-safe. *)

(** {1 Snapshots}

    A frozen copy of the whole memory state, for instance pools that
    instantiate once and restore per request. *)

type snapshot

val snapshot : t -> snapshot
(** Freeze the current contents and size. *)

val restore : t -> snapshot -> unit
(** Restore contents and size from a frozen image. When the size is
    unchanged this is one in-place blit — no allocation. Handles both
    grown and shrunk memories by replacing the backing store. *)

val snapshot_bytes : snapshot -> int
(** Payload size in bytes (restore-cost accounting). *)

val snapshot_to_string : snapshot -> string
(** The frozen contents (fidelity tests). *)

val to_string : t -> string
(** The live contents (fidelity tests compare against a snapshot). *)

val read_string : t -> addr:int64 -> len:int -> string
(** Raw bytes (for WASI-style host functions). *)

val write_string : t -> addr:int64 -> string -> unit
(** Raw bytes (data segments, host functions). *)
