(** Linear memory instances.

    A flat byte array addressed by 32- or 64-bit indices, growable in
    64 KiB pages. Every access is bounds-checked here — this is the
    semantic ground truth; {e how} a runtime enforces it (software
    checks, guard pages, MTE sandboxing) is a cost-model concern handled
    by [Cage.Lowering]. *)

type t = {
  mutable data : Bytes.t;
  mutable pages : int64;
  max_pages : int64 option;
  idx : Types.idx_type;
}

exception Out_of_bounds of int64 * int

let page_size = Types.page_size

(* Hard cap so tests cannot accidentally allocate huge buffers: 1 GiB. *)
let implementation_max_pages = 16384L

let create (mt : Types.mem_type) =
  let pages = mt.mem_limits.min in
  if pages < 0L || pages > implementation_max_pages then
    invalid_arg "Memory.create: unsupported initial size";
  {
    data = Bytes.make (Int64.to_int (Int64.mul pages page_size)) '\000';
    pages;
    max_pages = mt.mem_limits.max;
    idx = mt.mem_idx;
  }

let idx_type t = t.idx
let size_pages t = t.pages
let size_bytes t = Int64.mul t.pages page_size

let in_bounds t ~addr ~len =
  addr >= 0L && len >= 0
  && Int64.add addr (Int64.of_int len) <= size_bytes t
  && Int64.add addr (Int64.of_int len) >= addr

(** [in_bounds] for bulk operations whose length does not fit an int. *)
let in_bounds64 t ~addr ~len =
  addr >= 0L && len >= 0L
  && Int64.add addr len >= addr
  && Int64.add addr len <= size_bytes t

let check t ~addr ~len =
  if not (in_bounds t ~addr ~len) then raise (Out_of_bounds (addr, len))

(** Grow by [delta] pages; returns the previous size in pages, or [-1]
    (as the spec requires) if the grow fails. [memory.grow 0] is the
    portable "query the size" idiom, so it must not reallocate. *)
let grow t delta =
  let new_pages = Int64.add t.pages delta in
  let fits =
    delta >= 0L
    && new_pages <= implementation_max_pages
    && match t.max_pages with None -> true | Some m -> new_pages <= m
  in
  if not fits then -1L
  else if delta = 0L then t.pages
  else begin
    let old = t.pages in
    let ndata = Bytes.make (Int64.to_int (Int64.mul new_pages page_size)) '\000' in
    Bytes.blit t.data 0 ndata 0 (Bytes.length t.data);
    t.data <- ndata;
    t.pages <- new_pages;
    old
  end

let load_byte t addr =
  check t ~addr ~len:1;
  Char.code (Bytes.unsafe_get t.data (Int64.to_int addr))

let store_byte t addr v =
  check t ~addr ~len:1;
  Bytes.unsafe_set t.data (Int64.to_int addr) (Char.unsafe_chr (v land 0xff))

(* Little-endian multi-byte accessors. Each width maps to a single
   [Bytes] primitive (one machine load/store plus a byte-swap on
   big-endian hosts) rather than a per-byte loop — this is the
   interpreter's hottest path. [check] has already established bounds,
   so the stdlib's own range test never fires. *)

let load_n t addr n =
  check t ~addr ~len:n;
  let base = Int64.to_int addr in
  match n with
  | 1 -> Int64.of_int (Bytes.get_uint8 t.data base)
  | 2 -> Int64.of_int (Bytes.get_uint16_le t.data base)
  | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le t.data base)) 0xffffffffL
  | 8 -> Bytes.get_int64_le t.data base
  | _ -> invalid_arg "Memory.load_n: width must be 1, 2, 4 or 8"

let store_n t addr n v =
  check t ~addr ~len:n;
  let base = Int64.to_int addr in
  match n with
  | 1 -> Bytes.set_uint8 t.data base (Int64.to_int (Int64.logand v 0xffL))
  | 2 -> Bytes.set_uint16_le t.data base (Int64.to_int (Int64.logand v 0xffffL))
  | 4 -> Bytes.set_int32_le t.data base (Int64.to_int32 v)
  | 8 -> Bytes.set_int64_le t.data base v
  | _ -> invalid_arg "Memory.store_n: width must be 1, 2, 4 or 8"

let load_i32 t addr =
  check t ~addr ~len:4;
  Bytes.get_int32_le t.data (Int64.to_int addr)

let store_i32 t addr v =
  check t ~addr ~len:4;
  Bytes.set_int32_le t.data (Int64.to_int addr) v

let load_i64 t addr =
  check t ~addr ~len:8;
  Bytes.get_int64_le t.data (Int64.to_int addr)

let store_i64 t addr v =
  check t ~addr ~len:8;
  Bytes.set_int64_le t.data (Int64.to_int addr) v

let load_f32 t addr = Int32.float_of_bits (load_i32 t addr)
let store_f32 t addr v = store_i32 t addr (Int32.bits_of_float v)
let load_f64 t addr = Int64.float_of_bits (load_i64 t addr)
let store_f64 t addr v = store_i64 t addr (Int64.bits_of_float v)

(* ------------------------------------------------------------------ *)
(* Native-int accessors (the threaded engine's fast path)              *)
(* ------------------------------------------------------------------ *)

(* Every valid effective address fits OCaml's native int — the 1 GiB
   implementation cap bounds memory well below 2^62 — so the threaded
   engine resolves addresses, checks bounds against [length_bytes] and
   reads/writes through these without ever boxing an [int64]. The
   caller has already established [0 <= addr] and [addr + len <=
   length_bytes]; the [Bytes] primitives keep their own (never-firing)
   range test, so even a broken caller cannot escape the buffer. *)

let[@inline] length_bytes t = Bytes.length t.data
let[@inline] get_u8 t a = Bytes.get_uint8 t.data a
let[@inline] set_u8 t a v = Bytes.set_uint8 t.data a (v land 0xff)
let[@inline] get_u16 t a = Bytes.get_uint16_le t.data a
let[@inline] set_u16 t a v = Bytes.set_uint16_le t.data a (v land 0xffff)

let[@inline] get_32s t a = Int32.to_int (Bytes.get_int32_le t.data a)
(** 32-bit read, sign-extended into a native int. *)

let[@inline] set_32 t a v = Bytes.set_int32_le t.data a (Int32.of_int v)
(** 32-bit write of a native int's low 32 bits. *)

let[@inline] get_64 t a = Bytes.get_int64_le t.data a
let[@inline] set_64 t a v = Bytes.set_int64_le t.data a v
let[@inline] get_f32' t a = Int32.float_of_bits (Bytes.get_int32_le t.data a)
let[@inline] set_f32' t a v = Bytes.set_int32_le t.data a (Int32.bits_of_float v)
let[@inline] get_f64' t a = Int64.float_of_bits (Bytes.get_int64_le t.data a)
let[@inline] set_f64' t a v = Bytes.set_int64_le t.data a (Int64.bits_of_float v)

let fill t ~addr ~len v =
  if not (in_bounds64 t ~addr ~len) then raise (Out_of_bounds (addr, 0));
  Bytes.fill t.data (Int64.to_int addr) (Int64.to_int len)
    (Char.chr (v land 0xff))

let copy t ~dst ~src ~len =
  if not (in_bounds64 t ~addr:dst ~len && in_bounds64 t ~addr:src ~len) then
    raise (Out_of_bounds (dst, 0));
  Bytes.blit t.data (Int64.to_int src) t.data (Int64.to_int dst)
    (Int64.to_int len)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

(* A frozen copy of the full memory state. [restore] blits back in
   place when the sizes still match (the overwhelmingly common case for
   a serving pool: request handlers rarely grow memory), so restoring
   is one big memcpy, no allocation. *)

type snapshot = { snap_data : Bytes.t; snap_pages : int64 }

let snapshot t = { snap_data = Bytes.copy t.data; snap_pages = t.pages }

let restore t s =
  if Bytes.length t.data = Bytes.length s.snap_data then
    Bytes.blit s.snap_data 0 t.data 0 (Bytes.length s.snap_data)
  else t.data <- Bytes.copy s.snap_data;
  t.pages <- s.snap_pages

let snapshot_bytes s = Bytes.length s.snap_data
let snapshot_to_string s = Bytes.to_string s.snap_data

(** The current contents as a string (tests compare restored state
    against a frozen image byte for byte). *)
let to_string t = Bytes.to_string t.data

(** Read [len] raw bytes (for WASI-style host functions). *)
let read_string t ~addr ~len =
  check t ~addr ~len;
  Bytes.sub_string t.data (Int64.to_int addr) len

(** Write raw bytes (for data segments and host functions). *)
let write_string t ~addr s =
  check t ~addr ~len:(String.length s);
  Bytes.blit_string s 0 t.data (Int64.to_int addr) (String.length s)
