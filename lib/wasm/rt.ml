(** Shared runtime services for the two execution engines.

    Everything here used to live inside {!Exec}; it is the part of the
    interpreter's behaviour that is {e not} about walking an AST —
    observability ticks, the fuel watchdog, deferred-fault draining, and
    the Cage segment/PAC instruction bodies on raw operands. The
    tree-walking interpreter and the threaded-code engine ({!Compile})
    both call these, which is what keeps meter totals, obs event
    streams, fault-injection draw sequences and trap messages
    bit-identical between them. *)

open Instance

let trap fmt = Format.kasprintf (fun s -> raise (Trap s)) fmt
let max_call_depth = 2000

(* The observability tick: one simulated cycle on the tracer's clock
   and one event on the profiler's sampling countdown per interpreted
   instruction. With no sink installed this is a single load-and-
   compare — the same fast-path contract as [Arch.Fault_inject]. The
   meter total is computed only at sampling points, so snapshot weights
   partition the meter exactly (see [Obs.Profiler]). *)
let obs_tick (inst : Instance.t) =
  match !Obs.Hook.hook with
  | None -> ()
  | Some s ->
      (match s.Obs.Hook.trace with
      | Some tr -> Obs.Trace.advance tr 1
      | None -> ());
      (match s.Obs.Hook.profiler with
      | Some p ->
          if Obs.Profiler.due p then
            let total =
              match inst.meter with
              | Some m -> Meter.total m
              | None -> Obs.Profiler.ticks p
            in
            Obs.Profiler.sample p ~stack:inst.call_stack ~total
      | None -> ())

(** [n] ticks at once — what a superinstruction that fused [n] source
    instructions reports, so trace clocks and profiler sampling
    countdowns advance exactly as if the instructions had been
    dispatched one by one. *)
let obs_tick_n (inst : Instance.t) n =
  if !Obs.Hook.hook != None then
    for _ = 1 to n do
      obs_tick inst
    done

(* The fuel watchdog: every branch and call burns one unit, so a
   runaway guest (infinite loop or unbounded recursion) terminates with
   a classifiable "fuel:" trap instead of hanging its supervisor. The
   [-1] sentinel keeps the unmetered path to one compare. *)
let[@inline] burn_fuel (inst : Instance.t) =
  if inst.fuel >= 0 then begin
    if inst.fuel = 0 then trap "fuel: execution budget exhausted";
    inst.fuel <- inst.fuel - 1
  end

let meter_br (inst : Instance.t) =
  burn_fuel inst;
  match inst.meter with Some m -> m.branch <- m.branch + 1 | None -> ()

(* A Heap_scribble injection recorded at segment-free time is applied
   here, at the next synchronization point: by then the allocator has
   published the chunk's free-list link, and the junk write lands on
   live metadata. It models an asynchronous corruptor (racing thread,
   errant DMA), which is also why it writes through [Memory] directly,
   bypassing tag checks. *)
let apply_pending_scribble (inst : Instance.t) =
  match Arch.Fault_inject.take_scribble () with
  | None -> ()
  | Some addr -> (
      match inst.mem with
      | None -> ()
      | Some mem -> (
          let junk = Arch.Fault_inject.junk64 () in
          Arch.Fault_inject.note "free-list link at 0x%Lx overwritten with 0x%Lx"
            addr junk;
          try Memory.store_i64 mem addr junk
          with Memory.Out_of_bounds _ -> ()))

(* A deferred (Async/Asymmetric) fault is latched in the MTE engine's
   sticky TFSR when the faulting access executes; it is *reported* here,
   at synchronization points — function returns and host-call
   boundaries — as the paper's §4.2 fault model requires. The
   "deferred:" prefix lets callers distinguish late reports from
   synchronous traps. *)
let drain_deferred (inst : Instance.t) =
  apply_pending_scribble inst;
  match inst.mte with
  | None -> ()
  | Some mte -> (
      match Arch.Mte.take_pending mte with
      | None -> ()
      | Some f ->
          inst.last_fault <- Some f;
          trap "deferred: %a" Arch.Mte.pp_fault f)

(* ------------------------------------------------------------------ *)
(* Cage segment instructions (Eqs. 5-13) on raw operands               *)
(* ------------------------------------------------------------------ *)

let seg_granules len = Int64.to_int (Int64.div len 16L)

let rng_int (inst : Instance.t) n = Random.State.int inst.rng n

(** [segment.new o]: operands [k] (base pointer) and [l] (length);
    returns the freshly tagged pointer. [~arena:true] (escape-analysis
    lowering) keeps the validation, the zero-fill and the random tag
    draw — so pointer bit patterns, trap messages and the PRNG stream
    are identical to the checked form — but skips the tag-plane writes:
    the analysis proved no checked access or real free will ever read
    them. *)
let segment_new ?(arena = false) (inst : Instance.t) ~k ~l o =
  let mte = mte inst in
  let tm = Arch.Mte.tag_memory mte in
  let addr = Int64.add (Arch.Ptr.address k) o in
  let tag = Arch.Tag.irg inst.exclude ~rng:(rng_int inst) in
  (match
     if arena then Arch.Tag_memory.validate_region tm ~addr ~len:l
     else Arch.Tag_memory.set_region tm ~addr ~len:l tag
   with
  | Ok () -> ()
  | Error e -> trap "bounds: segment.new: %s" e);
  (* Eq. 5: the new segment is zeroed. *)
  (try Memory.fill (memory inst) ~addr ~len:l 0
   with Memory.Out_of_bounds _ -> trap "bounds: segment.new: out of bounds");
  (match inst.meter with
  | Some m ->
      m.seg_new <- m.seg_new + 1;
      if arena then
        m.arena_new_granules <- m.arena_new_granules + seg_granules l
      else m.seg_new_granules <- m.seg_new_granules + seg_granules l
  | None -> ());
  if Obs.Hook.enabled () then
    Obs.Hook.event
      (if arena then
         Obs.Event.Tag_writes_elided { granules = seg_granules l }
       else
         Obs.Event.Seg_new
           { addr; len = l; granules = seg_granules l;
             tag = Arch.Tag.to_int tag });
  Arch.Ptr.with_tag (Int64.add k o) tag

(** [segment.set_tag o]: operands [k] (base), [t] (tag donor), [l]. *)
let segment_set_tag (inst : Instance.t) ~k ~t ~l o =
  let mte = mte inst in
  let tm = Arch.Mte.tag_memory mte in
  let addr = Int64.add (Arch.Ptr.address k) o in
  (match Arch.Tag_memory.set_region tm ~addr ~len:l (Arch.Ptr.tag t) with
  | Ok () -> ()
  | Error e -> trap "bounds: segment.set_tag: %s" e);
  if Obs.Hook.enabled () then
    Obs.Hook.event
      (Obs.Event.Seg_set_tag
         { addr; len = l; granules = seg_granules l;
           tag = Arch.Tag.to_int (Arch.Ptr.tag t) });
  match inst.meter with
  | Some m ->
      m.seg_set_tag <- m.seg_set_tag + 1;
      m.seg_set_tag_granules <- m.seg_set_tag_granules + seg_granules l
  | None -> ()

(** [segment.free o]: operands [k] (tagged pointer), [l].
    [~arena:true]: the matching [segment.new] never wrote its tags, so
    the ownership matches-check (which would spuriously fault against
    the untouched tag plane) and the retag are both skipped — the
    analysis proved every free of this segment is exactly-once on a
    live pointer. The chaos scribble draw stays, so fault-injection
    sequences are unchanged. *)
let segment_free ?(arena = false) (inst : Instance.t) ~k ~l o =
  let mte = mte inst in
  let tm = Arch.Mte.tag_memory mte in
  let addr = Int64.add (Arch.Ptr.address k) o in
  let ptag = Arch.Ptr.tag k in
  (* Eq. 9/10: the pointer must still own the whole segment — this is
     what catches double-frees and frees through corrupted pointers. *)
  let free_tag = Arch.Tag.next_allowed inst.exclude ptag in
  (if arena then begin
     (* keep the malformed-operand traps bit-identical to the checked
        form: an out-of-bounds span fails the matches-check there, and
        a misaligned/ragged one fails its retag validation *)
     if not (Arch.Tag_memory.in_bounds tm ~addr ~len:(Int64.max l 1L)) then
       trap
         "tag fault: segment.free: tag mismatch (double free or invalid free)";
     match Arch.Tag_memory.validate_region tm ~addr ~len:l with
     | Ok () -> ()
     | Error e -> trap "bounds: segment.free: %s" e
   end
   else begin
     if not (Arch.Tag_memory.matches tm ~addr ~len:(Int64.max l 1L) ptag) then
       trap
         "tag fault: segment.free: tag mismatch (double free or invalid free)";
     match Arch.Tag_memory.set_region tm ~addr ~len:l free_tag with
     | Ok () -> ()
     | Error e -> trap "bounds: segment.free: %s" e
   end);
  (* Chaos hook: schedule a scribble of this chunk's free-list link
     (payload-relative slot [-8], see Libc.Source); the junk write is
     applied at the next synchronization point, once the allocator has
     published the link. *)
  if Arch.Fault_inject.draw Arch.Fault_inject.Heap_scribble then
    Arch.Fault_inject.set_scribble (Int64.sub addr 8L);
  if Obs.Hook.enabled () then
    Obs.Hook.event
      (if arena then
         Obs.Event.Tag_writes_elided { granules = seg_granules l }
       else
         Obs.Event.Seg_free
           { addr; len = l; granules = seg_granules l;
             tag = Arch.Tag.to_int free_tag });
  match inst.meter with
  | Some m ->
      m.seg_free <- m.seg_free + 1;
      if arena then
        m.arena_free_granules <- m.arena_free_granules + seg_granules l
      else m.seg_free_granules <- m.seg_free_granules + seg_granules l
  | None -> ()

let pointer_sign (inst : Instance.t) k =
  (match inst.meter with
  | Some m -> m.ptr_sign <- m.ptr_sign + 1
  | None -> ());
  Arch.Pac.sign inst.pac_config inst.pac_key ~modifier:inst.pac_modifier k

let pointer_auth (inst : Instance.t) k =
  (match inst.meter with
  | Some m -> m.ptr_auth <- m.ptr_auth + 1
  | None -> ());
  match
    Arch.Pac.auth inst.pac_config inst.pac_key ~modifier:inst.pac_modifier k
  with
  | Arch.Pac.Valid k' -> k'
  | Arch.Pac.Invalid_trap | Arch.Pac.Invalid_poisoned _ ->
      (* Eq. 13: the extension semantics trap on failed authentication. *)
      trap "pac auth: invalid signature (i64.pointer_auth)"

(** [memory.grow] on a raw page delta; returns the previous size in
    pages ([-1] on failure), having grown the tag plane alongside. *)
let memory_grow (inst : Instance.t) delta =
  (match inst.meter with
  | Some m -> m.mem_grow <- m.mem_grow + 1
  | None -> ());
  let mem = memory inst in
  let old = Memory.grow mem delta in
  if old >= 0L && delta > 0L then
    Option.iter
      (fun mte ->
        let tm = Arch.Mte.tag_memory mte in
        Arch.Mte.set_tag_memory mte
          (Arch.Tag_memory.grow tm
             ~new_size_bytes:(Int64.to_int (Memory.size_bytes mem))))
      inst.mte;
  if old >= 0L && Obs.Hook.enabled () then
    Obs.Hook.event
      (Obs.Event.Mem_grow
         { delta_pages = delta; new_pages = Memory.size_pages mem });
  old
