(** Experiment runners — one per table/figure of the paper.

    Each runner executes the real workloads through the toolchain
    (compile under the Table 3 configuration, interpret, meter) and
    prices the metered runs on the three Tensor G3 core models. Paper
    values are carried alongside so every report prints
    paper-vs-measured. *)

open Workloads

let cores = Arch.Cpu_model.tensor_g3
let core_names = List.map (fun c -> c.Arch.Cpu_model.name) cores

(* ------------------------------------------------------------------ *)
(* Fig. 14: PolyBench runtime overheads                                *)
(* ------------------------------------------------------------------ *)

type poly_run = {
  pr_kernel : string;
  pr_config : Cage.Config.t;
  pr_meter : Wasm.Meter.t;
}

(** Execute every kernel under every Table 3 configuration, collecting
    the metered event counts. Checksums are compared across
    configurations as a built-in differential test. *)
let run_polybench ?(kernels = Polybench.all) () : poly_run list =
  List.concat_map
    (fun (kernel : Polybench.kernel) ->
      let runs =
        List.map
          (fun cfg ->
            let meter = Wasm.Meter.create () in
            let r = Libc.Run.run ~cfg ~meter kernel.k_source in
            (cfg, meter, Libc.Run.ret_i32 r))
          Cage.Config.table3
      in
      (match runs with
      | (_, _, first) :: rest ->
          List.iter
            (fun (cfg, _, v) ->
              if v <> first then
                failwith
                  (Printf.sprintf "%s: %s disagrees with baseline (%ld vs %ld)"
                     kernel.k_name cfg.Cage.Config.name v first))
            rest
      | [] -> ());
      List.map
        (fun (cfg, meter, _) ->
          { pr_kernel = kernel.k_name; pr_config = cfg; pr_meter = meter })
        runs)
    kernels

type fig14_cell = {
  fc_config : string;
  fc_core : string;
  fc_mean : float;  (** mean overhead vs wasm64, percent *)
  fc_std : float;
  fc_paper : float option;  (** the paper's reported mean, percent *)
}

(* §7.2's headline numbers, per core in tensor_g3 order. *)
let paper_fig14 = function
  | "Cage-mem-safety" -> Some [ 3.6; 5.6; 1.5 ]
  | "Cage-sandboxing" -> Some [ -3.7; -5.1; -33.9 ]
  | "CAGE" -> Some [ -2.1; -4.5; -29.2 ]
  | "baseline wasm32" -> Some [ -7.0; -7.0; -34.0 ]
      (* §3: wasm64 costs 6-8 % (OoO) / 52 % (in-order) over wasm32,
         i.e. wasm32 ≈ -7 % / -34 % normalised to wasm64 *)
  | _ -> None

(** The Fig. 14 matrix: per configuration and core, mean ± std runtime
    overhead of the PolyBench suite normalised to baseline wasm64. *)
let fig14 ?kernels () : fig14_cell list * (string * string * string * float) list =
  let runs = run_polybench ?kernels () in
  let kernels_names =
    List.sort_uniq String.compare (List.map (fun r -> r.pr_kernel) runs)
  in
  (* per-kernel per-core per-config seconds *)
  let time kernel cfg core =
    let r =
      List.find
        (fun r ->
          String.equal r.pr_kernel kernel
          && String.equal r.pr_config.Cage.Config.name cfg)
        runs
    in
    Cage.Lowering.seconds core r.pr_config r.pr_meter
  in
  let detail = ref [] in
  let cells =
    List.concat_map
      (fun (cfg : Cage.Config.t) ->
        if String.equal cfg.name "baseline wasm64" then []
        else
          List.mapi
            (fun core_i core ->
              let overheads =
                List.map
                  (fun kernel ->
                    let base = time kernel "baseline wasm64" core in
                    let t = time kernel cfg.name core in
                    let ov = 100.0 *. ((t /. base) -. 1.0) in
                    detail :=
                      (kernel, cfg.name, core.Arch.Cpu_model.name, ov)
                      :: !detail;
                    ov)
                  kernels_names
              in
              let mean, std = Report.mean_std overheads in
              {
                fc_config = cfg.name;
                fc_core = core.Arch.Cpu_model.name;
                fc_mean = mean;
                fc_std = std;
                fc_paper =
                  Option.map
                    (fun l -> List.nth l core_i)
                    (paper_fig14 cfg.name);
              })
            cores)
      Cage.Config.table3
  in
  (cells, List.rev !detail)

(* ------------------------------------------------------------------ *)
(* §7.3 memory overhead                                                *)
(* ------------------------------------------------------------------ *)

type mem_row = {
  mr_kernel : string;
  mr_rss32 : int64;   (** bytes: data + stack + heap actually used *)
  mr_rss64 : int64;
  mr_cage : int64;    (** wasm64 rss + 1/32 tag storage *)
}

(* Read the allocator's break pointer out of the instance to get the
   heap bytes actually used (the rss analogue). *)
let measure_rss cfg (kernel : Polybench.kernel) =
  let r = Libc.Run.run ~cfg kernel.k_source in
  let ir = r.Libc.Run.compiled.co_ir in
  let brk_addr =
    match
      List.find_opt
        (fun g -> String.equal g.Minic.Ir.gv_name "__brk")
        ir.Minic.Ir.pr_globals
    with
    | Some g -> g.Minic.Ir.gv_addr
    | None -> failwith "no __brk global"
  in
  let mem = Wasm.Instance.memory r.Libc.Run.instance in
  let brk = Wasm.Memory.load_i64 mem brk_addr in
  let heap_base =
    let g =
      List.find
        (fun g -> String.equal g.Minic.Ir.gv_name "__heap_base")
        ir.Minic.Ir.pr_globals
    in
    Wasm.Memory.load_i64 mem g.Minic.Ir.gv_addr
  in
  let heap_used = if brk = 0L then 0L else Int64.sub brk heap_base in
  (* static data + shadow stack + live heap *)
  Int64.add ir.Minic.Ir.pr_data_end (Int64.add 65536L heap_used)

(* A pointer-dense workload: PolyBench kernels store no pointers in
   memory, so their footprint is width-independent; real programs (and
   the paper's 0.6 % mean) grow a little when pointers double. *)
let ptr_tree_workload : Polybench.kernel =
  {
    Polybench.k_name = "ptr-tree";
    k_flops = "pointer-chasing";
    k_source =
      {|
        struct Node {
          struct Node *left;
          struct Node *right;
          struct Node *parent;
          int depth;
        };
        struct Node *build(struct Node *parent, int depth) {
          struct Node *nd = (struct Node *)malloc(sizeof(struct Node));
          nd->parent = parent;
          nd->depth = depth;
          if (depth > 0) {
            nd->left = build(nd, depth - 1);
            nd->right = build(nd, depth - 1);
          } else {
            nd->left = (struct Node *)0;
            nd->right = (struct Node *)0;
          }
          return nd;
        }
        int count(struct Node *nd) {
          if (nd == (struct Node *)0) { return 0; }
          return 1 + count(nd->left) + count(nd->right);
        }
        int main() {
          struct Node *root = build((struct Node *)0, 9);
          return count(root);
        }
      |};
  }

let memory_overhead ?(kernels = Polybench.all) () : mem_row list =
  List.map
    (fun (kernel : Polybench.kernel) ->
      let rss32 = measure_rss Cage.Config.baseline_wasm32 kernel in
      let rss64 = measure_rss Cage.Config.baseline_wasm64 kernel in
      let cage = Int64.add rss64 (Int64.div rss64 32L) in
      { mr_kernel = kernel.k_name; mr_rss32 = rss32; mr_rss64 = rss64;
        mr_cage = cage })
    (kernels @ [ ptr_tree_workload ])

(* ------------------------------------------------------------------ *)
(* §7.4 tag-collision probability                                      *)
(* ------------------------------------------------------------------ *)

type collision_row = {
  cr_label : string;
  cr_theory : float;
  cr_measured : float;
}

(** Monte-Carlo estimate of the probability that two independently
    tagged allocations draw the same tag, under the standalone (15-tag)
    and sandbox-combined (7-tag) exclusion sets. *)
let tag_collisions ?(trials = 200_000) () : collision_row list =
  let rng = Random.State.make [| 2025 |] in
  let estimate exclude =
    let hits = ref 0 in
    for _ = 1 to trials do
      let a = Arch.Tag.irg exclude ~rng:(fun n -> Random.State.int rng n) in
      let b = Arch.Tag.irg exclude ~rng:(fun n -> Random.State.int rng n) in
      if Arch.Tag.equal a b then incr hits
    done;
    float_of_int !hits /. float_of_int trials
  in
  [
    {
      cr_label = "internal only (15 tags)";
      cr_theory = 1.0 /. 15.0;
      cr_measured = estimate (Cage.Config.exclusion Cage.Config.mem_safety);
    };
    {
      cr_label = "internal + sandboxing (7 tags)";
      cr_theory = 1.0 /. 7.0;
      cr_measured = estimate (Cage.Config.exclusion Cage.Config.full);
    };
  ]

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md §4)                                            *)
(* ------------------------------------------------------------------ *)

type sanitizer_ablation = {
  sa_kernel : string;
  sa_selective : int;   (** slots instrumented by Algorithm 1 *)
  sa_all : int;         (** slots instrumented without the filter *)
  sa_unoptimised : int; (** slots instrumented when the sanitizer runs
                            before the optimiser (§6.1 ordering) *)
  sa_runtime_cost : float;
      (** X3 runtime of instrument-all relative to Algorithm 1 (1.0 =
          same; the price of skipping the analysis) *)
}

let sanitizer_ablation ?(programs = Stackbench.programs) () =
  List.map
    (fun (p : Stackbench.program) ->
      let opts = Minic.Driver.options_of_config Cage.Config.mem_safety in
      let prelude = Libc.Source.prelude_of_config Cage.Config.mem_safety in
      let stats o =
        (Minic.Driver.compile ~opts:o ~prelude p.s_source).co_sanitizer
          .Minic.Stack_sanitizer.instrumented
      in
      let runtime instrument_all =
        let meter = Wasm.Meter.create () in
        let opts = { opts with Minic.Driver.instrument_all } in
        let compiled = Minic.Driver.compile ~opts ~prelude p.s_source in
        let wasi = Libc.Wasi.create () in
        let config =
          Cage.Config.instance_config ~meter Cage.Config.mem_safety
        in
        let inst =
          Wasm.Exec.instantiate ~config ~imports:(Libc.Wasi.imports wasi)
            compiled.co_module
        in
        ignore (Wasm.Exec.invoke inst "main" []);
        Cage.Lowering.seconds Arch.Cpu_model.cortex_x3 Cage.Config.mem_safety
          meter
      in
      {
        sa_kernel = p.s_name;
        sa_selective = stats opts;
        sa_all = stats { opts with Minic.Driver.instrument_all = true };
        sa_unoptimised = stats { opts with Minic.Driver.optimize = false };
        sa_runtime_cost = runtime true /. runtime false;
      })
    programs

(** Guard-slot ablation: adjacent stack frames with and without the
    untagged guard slot (Fig. 8b). Returns (with_guard_catches,
    without_guard_catch_rate over seeds). *)
let guard_slot_ablation ?(seeds = 64) () =
  (* a frame whose first slot is instrumented, called twice so frames
     n and n+1 are adjacent; the callee overflows backwards into the
     caller's last slot *)
  let source = {|
      long poke(long *out, int idx) {
        long buf[2];
        buf[0] = 7; buf[1] = 8;
        out[0] = buf[idx];   /* idx = -1 underflows into the
                                preceding frame region */
        return buf[0];
      }
      int main() {
        long spill[2];
        spill[0] = 0; spill[1] = 0;
        poke(spill, -1);
        return (int)spill[0];
      }
    |}
  in
  let caught = ref 0 in
  for seed = 0 to seeds - 1 do
    match Libc.Run.run ~cfg:Cage.Config.mem_safety ~seed source with
    | (_ : Libc.Run.result) -> ()
    | exception Wasm.Instance.Trap _ -> incr caught
  done;
  float_of_int !caught /. float_of_int seeds

(* ------------------------------------------------------------------ *)
(* Sandbox capacity & escape experiments                               *)
(* ------------------------------------------------------------------ *)

type escape_result = {
  er_strategy : string;
  er_escaped : bool;
  er_outcome : string;
}

(** CVE-2023-26489 style: the compiler "forgot" the bounds check; an
    OOB index targets a neighbour instance's secret. *)
let sandbox_escape () : escape_result list =
  List.map
    (fun (cfg, label) ->
      let host = Cage.Sandbox.create ~config:cfg ~size:(1 lsl 20) () in
      let victim = Cage.Sandbox.add_instance host ~size:65536 in
      let attacker = Cage.Sandbox.add_instance host ~size:65536 in
      Cage.Sandbox.poke host victim ~index:128L 0xdeadbeefL;
      (* attacker reads index (victim.base - attacker.base) + 128 *)
      let index =
        Int64.add
          (Int64.sub victim.Cage.Sandbox.base attacker.Cage.Sandbox.base)
          128L
      in
      let outcome =
        Cage.Sandbox.guest_load ~buggy_lowering:true host attacker ~index
      in
      let escaped =
        match outcome with
        | Cage.Sandbox.Value v -> Int64.equal v 0xdeadbeefL
        | _ -> false
      in
      {
        er_strategy = label;
        er_escaped = escaped;
        er_outcome =
          (match outcome with
          | Cage.Sandbox.Value v -> Printf.sprintf "read 0x%Lx" v
          | Cage.Sandbox.Bounds_trap -> "bounds check trapped"
          | Cage.Sandbox.Segfault -> "guard page fault"
          | Cage.Sandbox.Tag_fault _ -> "MTE tag fault");
      })
    [
      (Cage.Config.baseline_wasm64, "software bounds (buggy lowering)");
      (Cage.Config.sandboxing, "MTE sandboxing (same buggy lowering)");
    ]

(* ------------------------------------------------------------------ *)
(* MTE mode ablation (§2.3 / Fig. 2 / DESIGN ablation 4)               *)
(* ------------------------------------------------------------------ *)

type mode_row = {
  md_mode : Arch.Mte.mode;
  md_outcome : string;
  md_detected : bool;        (** violation detected at all *)
  md_before_damage : bool;   (** detected before the bad write landed *)
  md_polybench_cost : float; (** gemm overhead vs Sync on the X3, percent *)
}

(** Run a heap overflow under each MTE checking mode. Synchronous mode
    traps before the write; asynchronous mode lets the write land and
    reports at the next context switch (the TFSR poll); asymmetric
    checks writes synchronously. The cost column re-prices a PolyBench
    kernel under each mode. *)
let mte_modes () : mode_row list =
  let source = {|
      int main() {
        char *buf = (char *)malloc(16);
        buf[17] = 65;            /* out-of-bounds write */
        return (int)buf[2];      /* victim continues running */
      }
    |}
  in
  let gemm =
    match Polybench.find "gemm" with Some k -> k | None -> assert false
  in
  let price mode =
    let meter = Wasm.Meter.create () in
    let cfg = { Cage.Config.mem_safety with Cage.Config.mte_mode = mode } in
    ignore (Libc.Run.run ~cfg ~meter gemm.k_source);
    (* async tag fetches stay off the critical path: approximate by the
       Fig. 4 penalty ratio applied to the tag-check component *)
    let cpu = Arch.Cpu_model.cortex_x3 in
    let base = Cage.Lowering.seconds cpu Cage.Config.mem_safety meter in
    match mode with
    | Arch.Mte.Sync | Arch.Mte.Asymmetric -> base
    | Arch.Mte.Async ->
        let accesses = float_of_int (Wasm.Meter.mem_accesses meter) in
        let saved =
          accesses
          *. cpu.Arch.Cpu_model.mte_check_cost
          *. (1.0
             -. (cpu.Arch.Cpu_model.mte_async_store_penalty
                /. cpu.Arch.Cpu_model.mte_sync_store_penalty))
        in
        base -. (saved /. (cpu.Arch.Cpu_model.freq_ghz *. 1e9))
    | Arch.Mte.Disabled -> base
  in
  let sync_cost = price Arch.Mte.Sync in
  List.map
    (fun mode ->
      let cfg = { Cage.Config.mem_safety with Cage.Config.mte_mode = mode } in
      let outcome, detected, before =
        match Libc.Run.run ~cfg source with
        | r -> (
            (* the run completed: poll the TFSR at "context switch" *)
            let mte = Wasm.Instance.mte r.Libc.Run.instance in
            match Arch.Mte.context_switch mte with
            | Some f ->
                (Format.asprintf "completed; TFSR set (%a)" Arch.Mte.pp_fault f,
                 true, false)
            | None -> ("completed; violation unnoticed", false, false))
        | exception Wasm.Instance.Trap msg ->
            (* The interpreter drains the sticky TFSR at synchronization
               points (function returns / host calls) and reports deferred
               Async/Asymmetric faults as traps prefixed "deferred": those
               are detections *after* the damaging access took effect. *)
            if String.starts_with ~prefix:"deferred" msg then
              ("deferred trap at sync point: " ^ msg, true, false)
            else ("trapped immediately: " ^ msg, true, true)
      in
      {
        md_mode = mode;
        md_outcome = outcome;
        md_detected = detected;
        md_before_damage = before;
        md_polybench_cost = 100.0 *. ((price mode /. sync_cost) -. 1.0);
      })
    [ Arch.Mte.Sync; Arch.Mte.Asymmetric; Arch.Mte.Async; Arch.Mte.Disabled ]

(** §6.4: at most 15 sandboxes per process under MTE. *)
let sandbox_capacity () =
  let host = Cage.Sandbox.create ~config:Cage.Config.sandboxing
      ~size:(1 lsl 21) () in
  let rec spawn n =
    match Cage.Sandbox.add_instance host ~size:4096 with
    | (_ : Cage.Sandbox.instance_region) -> spawn (n + 1)
    | exception Cage.Sandbox.Too_many_sandboxes -> n
  in
  spawn 0
