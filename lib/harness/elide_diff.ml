(** Elision soundness gate: a differential fuzz run proving that static
    check elision never changes program outcomes.

    For each seed, a random Fuzzgen program runs twice under the same
    configuration — once normally, once with {!Cage.Config.with_elision}
    — and both results must match each other {e and} the reference
    interpreter. The elided run must also agree on the load/store event
    counts (elision skips the granule check, never the access), and
    across the whole sweep at least one check must actually have been
    elided, otherwise the gate is testing nothing. *)

type report = {
  ed_config : Cage.Config.t;
  ed_seeds : int;
  ed_failures : string list;   (** one line per divergence, oldest first *)
  ed_elided : int;             (** total granule checks skipped *)
  ed_elidable_static : int;    (** accesses the analyzer proved, summed *)
}

type outcome = Value of int32 | Trap of string

let outcome_to_string = function
  | Value v -> Printf.sprintf "%ld" v
  | Trap m -> Printf.sprintf "trap(%s)" m

let run_once ~cfg ~seed source =
  let meter = Wasm.Meter.create () in
  let outcome =
    try Value (Libc.Run.ret_i32 (Libc.Run.run ~cfg ~meter ~seed source))
    with Wasm.Instance.Trap msg -> Trap msg
  in
  (outcome, meter)

let run ?(cfg = Cage.Config.mem_safety) ?(count = 200) ?(seed0 = 0) () =
  let failures = ref [] in
  let elided = ref 0 in
  let static = ref 0 in
  let fail seed fmt =
    Printf.ksprintf
      (fun m -> failures := Printf.sprintf "seed %d: %s" seed m :: !failures)
      fmt
  in
  for i = 0 to count - 1 do
    let seed = seed0 + i in
    let prog = Workloads.Fuzzgen.generate ~seed in
    let source = Workloads.Fuzzgen.render prog in
    let expected = Workloads.Fuzzgen.reference prog in
    let plain, m0 = run_once ~cfg ~seed source in
    let elide_cfg = Cage.Config.with_elision cfg in
    let elid, m1 = run_once ~cfg:elide_cfg ~seed source in
    (match plain with
    | Value v when v <> expected ->
        fail seed "baseline diverged from reference: %ld <> %ld" v expected
    | Trap m -> fail seed "baseline trapped: %s" m
    | Value _ -> ());
    if plain <> elid then
      fail seed "elision changed the outcome: %s <> %s"
        (outcome_to_string plain) (outcome_to_string elid);
    if
      m0.Wasm.Meter.loads <> m1.Wasm.Meter.loads
      || m0.Wasm.Meter.stores <> m1.Wasm.Meter.stores
    then
      fail seed "elision changed the access counts: %d/%d <> %d/%d"
        m0.Wasm.Meter.loads m0.Wasm.Meter.stores m1.Wasm.Meter.loads
        m1.Wasm.Meter.stores;
    elided := !elided + m1.Wasm.Meter.elided_checks
  done;
  (* The static side of the ledger, for the report only: re-analyze one
     representative module so the summary can show proven/considered. *)
  (let prog = Workloads.Fuzzgen.generate ~seed:seed0 in
   let opts = Minic.Driver.options_of_config cfg in
   let prelude = Libc.Source.prelude_of_config cfg in
   let compiled =
     Minic.Driver.compile ~opts ~prelude (Workloads.Fuzzgen.render prog)
   in
   let plan = Analysis.Elide.plan compiled.Minic.Driver.co_module in
   static := plan.Analysis.Elide.proven);
  if !elided = 0 then
    failures :=
      "no check was elided across the whole sweep; the gate is vacuous"
      :: !failures;
  {
    ed_config = cfg;
    ed_seeds = count;
    ed_failures = List.rev !failures;
    ed_elided = !elided;
    ed_elidable_static = !static;
  }

let ok r = r.ed_failures = []

let pp ppf r =
  Format.fprintf ppf
    "@[<v>elide-diff: %d seeds under %s: %s@ elided %d granule checks at \
     runtime (representative plan: %d accesses proven)@]"
    r.ed_seeds r.ed_config.Cage.Config.name
    (if ok r then "all outcomes identical"
     else Printf.sprintf "%d FAILURES" (List.length r.ed_failures))
    r.ed_elided r.ed_elidable_static
