(** Elision soundness gate: a differential fuzz run proving that static
    check elision never changes program outcomes.

    For each seed, a random Fuzzgen program runs twice under the same
    configuration — once normally, once with {!Cage.Config.with_elision}
    — and both results must match each other {e and} the reference
    interpreter. The elided run must also agree on the load/store event
    counts (elision skips the granule check, never the access) and, for
    completed runs, on the final linear-memory digest. Across the whole
    sweep at least one check must actually have been elided, otherwise
    the gate is testing nothing.

    [~full:true] arms the whole analysis pipeline on the elided side:
    full-check elision ({!Cage.Config.with_bounds_elision}) and
    escape-driven arena lowering ({!Cage.Config.with_arena}) — the
    differential then also proves that dropping span checks and
    tag-plane writes preserves outcomes, trap messages and memory
    images. *)

type report = {
  ed_config : Cage.Config.t;
  ed_seeds : int;
  ed_full : bool;              (** bounds + arena elision armed? *)
  ed_failures : string list;   (** one line per divergence, oldest first *)
  ed_elided : int;             (** total granule checks skipped *)
  ed_bounds_elided : int;      (** total span checks skipped *)
  ed_tag_writes : int;         (** tag-plane granule writes skipped *)
  ed_elidable_static : int;    (** accesses the analyzer proved, summed *)
  ed_arena_static : int;       (** allocation sites the analyzer lowered *)
}

type outcome = Value of int32 | Trap of string

let outcome_to_string = function
  | Value v -> Printf.sprintf "%ld" v
  | Trap m -> Printf.sprintf "trap(%s)" m

(* A trap unwinds out of [Libc.Run.run] before the instance surfaces,
   so the memory digest exists only for completed runs; trap identity
   is compared through the outcome instead. *)
let run_once ~cfg ~seed source =
  let meter = Wasm.Meter.create () in
  try
    let r = Libc.Run.run ~cfg ~meter ~seed source in
    let digest =
      Digest.to_hex
        (Digest.string
           (Wasm.Memory.to_string (Wasm.Instance.memory r.Libc.Run.instance)))
    in
    (Value (Libc.Run.ret_i32 r), meter, Some digest)
  with Wasm.Instance.Trap msg -> (Trap msg, meter, None)

let run ?(cfg = Cage.Config.mem_safety) ?(count = 200) ?(seed0 = 0)
    ?(full = false) () =
  let failures = ref [] in
  let elided = ref 0 in
  let belided = ref 0 in
  let tag_writes = ref 0 in
  let static = ref 0 in
  let arena_static = ref 0 in
  let fail seed fmt =
    Printf.ksprintf
      (fun m -> failures := Printf.sprintf "seed %d: %s" seed m :: !failures)
      fmt
  in
  let elide_of cfg =
    if full then Cage.Config.with_bounds_elision (Cage.Config.with_arena cfg)
    else Cage.Config.with_elision cfg
  in
  for i = 0 to count - 1 do
    let seed = seed0 + i in
    let prog = Workloads.Fuzzgen.generate ~seed in
    let source = Workloads.Fuzzgen.render prog in
    let expected = Workloads.Fuzzgen.reference prog in
    let plain, m0, d0 = run_once ~cfg ~seed source in
    let elid, m1, d1 = run_once ~cfg:(elide_of cfg) ~seed source in
    (match plain with
    | Value v when v <> expected ->
        fail seed "baseline diverged from reference: %ld <> %ld" v expected
    | Trap m -> fail seed "baseline trapped: %s" m
    | Value _ -> ());
    if plain <> elid then
      fail seed "elision changed the outcome: %s <> %s"
        (outcome_to_string plain) (outcome_to_string elid);
    if
      m0.Wasm.Meter.loads <> m1.Wasm.Meter.loads
      || m0.Wasm.Meter.stores <> m1.Wasm.Meter.stores
    then
      fail seed "elision changed the access counts: %d/%d <> %d/%d"
        m0.Wasm.Meter.loads m0.Wasm.Meter.stores m1.Wasm.Meter.loads
        m1.Wasm.Meter.stores;
    (match (d0, d1) with
    | Some a, Some b when a <> b ->
        fail seed "elision changed the memory image: %s <> %s" a b
    | _ -> ());
    elided := !elided + m1.Wasm.Meter.elided_checks;
    belided := !belided + m1.Wasm.Meter.elided_bounds;
    tag_writes :=
      !tag_writes + m1.Wasm.Meter.arena_new_granules
      + m1.Wasm.Meter.arena_free_granules
  done;
  (* The static side of the ledger, for the report only: re-analyze one
     representative module so the summary can show proven/considered. *)
  (let prog = Workloads.Fuzzgen.generate ~seed:seed0 in
   let opts = Minic.Driver.options_of_config cfg in
   let prelude = Libc.Source.prelude_of_config cfg in
   let compiled =
     Minic.Driver.compile ~opts ~prelude (Workloads.Fuzzgen.render prog)
   in
   let plan = Analysis.Elide.plan ~arena:full compiled.Minic.Driver.co_module in
   static := plan.Analysis.Elide.proven;
   arena_static := plan.Analysis.Elide.arena_sites);
  if !elided = 0 then
    failures :=
      "no check was elided across the whole sweep; the gate is vacuous"
      :: !failures;
  if full && !belided = 0 then
    failures :=
      "no span check was elided across the whole sweep; the full gate is \
       vacuous" :: !failures;
  {
    ed_config = cfg;
    ed_seeds = count;
    ed_full = full;
    ed_failures = List.rev !failures;
    ed_elided = !elided;
    ed_bounds_elided = !belided;
    ed_tag_writes = !tag_writes;
    ed_elidable_static = !static;
    ed_arena_static = !arena_static;
  }

let ok r = r.ed_failures = []

let pp ppf r =
  Format.fprintf ppf
    "@[<v>elide-diff%s: %d seeds under %s: %s@ elided %d granule checks, %d \
     span checks, %d tag-plane writes at runtime (representative plan: %d \
     accesses proven, %d sites arena-lowered)@]"
    (if r.ed_full then " (full)" else "")
    r.ed_seeds r.ed_config.Cage.Config.name
    (if ok r then "all outcomes identical"
     else Printf.sprintf "%d FAILURES" (List.length r.ed_failures))
    r.ed_elided r.ed_bounds_elided r.ed_tag_writes r.ed_elidable_static
    r.ed_arena_static
