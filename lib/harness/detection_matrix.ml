(** The chaos detection matrix: every fault class the chaos engine can
    inject, crossed with every MTE reporting mode and a spread of
    runtime configurations, each cell classified by what the Cage
    defenses did about the corruption.

    One cell = one victim instance running a fixed MiniC workload (heap
    traffic through malloc/free, loads and stores through tagged
    pointers, indirect calls through signed function pointers) with a
    single-site chaos policy armed, supervised by {!Cage.Supervisor},
    plus a sibling instance that must stay intact.

    Cell taxonomy:
    - [Not_triggered]: the armed site was never visited (the defense
      layer that would host the fault is not part of the config) — the
      injection budget is unspent.
    - [Detected_before]: the corrupting access itself trapped — tag
      fault, PAC authentication failure or MMU canonicality/bounds
      check — before any damaged state was consumed.
    - [Detected_after]: the fault was reported after damage landed — a
      deferred (TFSR) report at a sync point, or a trap on the first
      use of corrupted allocator metadata.
    - [Contained]: the guest crashed for a reason that is not a report
      of the injected corruption (fuel, stack, plain guest trap) — the
      supervisor still contained it.
    - [Escaped]: the injection fired and the program ran to completion
      with no report at all. Silent corruption — whether or not the
      final checksum happens to match — is exactly the failure mode the
      hardware checks exist to prevent, so a completed run with a spent
      injection budget is an escape even when the result is right
      (e.g. a dropped TFSR latch loses the only record of a real
      mismatch).

    Everything is seeded: the same seed reproduces the same matrix
    bit-for-bit, which is what lets CI diff the rendering against a
    golden file. *)

(* ------------------------------------------------------------------ *)
(* The victim workload                                                  *)
(* ------------------------------------------------------------------ *)

(* Touches every defense layer: malloc/free cycles of *different* sizes
   (a corrupted free-list link is followed, not just popped), loads and
   stores through tagged heap pointers, and indirect calls through a
   reassigned signed function pointer. Deterministic: no clock, no
   rand, no prints. *)
let victim_source =
  {|
long mix(long x) { return x * 3 + 1; }
long twist(long x) { return (x ^ 21) + 5; }
int main() {
  long acc = 7;
  long (*op)(long) = mix;
  long *buf = (long *)malloc(16 * 8);
  for (int i = 0; i < 16; i++) { buf[i] = op((long)i); }
  op = twist;
  for (int r = 0; r < 4; r++) {
    long n = 8 + (long)r * 4;
    long *tmp = (long *)malloc((unsigned long)(n * 8));
    for (int i = 0; i < 8; i++) { tmp[i] = op(buf[i + r] + (long)r); }
    for (int i = 0; i < 8; i++) { acc = acc * 31 + tmp[i]; }
    free(tmp);
  }
  for (int i = 0; i < 16; i++) { acc = acc + buf[i]; }
  free(buf);
  return (int)(((unsigned long)acc) % 1000003);
}
|}

(* ------------------------------------------------------------------ *)
(* Axes                                                                 *)
(* ------------------------------------------------------------------ *)

let sites = Arch.Fault_inject.all_sites

let configs =
  [ Cage.Config.full; Cage.Config.sandboxing; Cage.Config.baseline_wasm64 ]

let modes = Arch.Mte.[ Disabled; Sync; Async; Asymmetric ]

(* The per-row chaos policy. Single-shot for every site except
   [Tfsr_drop], which needs a corruption source — exactly ONE tag flip
   (so the flipped granule is allocator metadata the segment-free check
   never re-validates, not a whole segment that [free] would catch
   synchronously) — and then an effectively unlimited budget so
   *every* latch attempt is dropped: the lost-interrupt scenario is
   only interesting if no later retry sneaks through. *)
let policy_for site ~seed =
  match site with
  | Arch.Fault_inject.Tfsr_drop ->
      Arch.Fault_inject.policy ~seed ~max_injections:1_000_000
        ~site_max:[ (Arch.Fault_inject.Tag_flip, 1) ]
        [ Arch.Fault_inject.Tag_flip; Arch.Fault_inject.Tfsr_drop ]
  | s -> Arch.Fault_inject.policy ~seed [ s ]

(* ------------------------------------------------------------------ *)
(* Cells                                                                *)
(* ------------------------------------------------------------------ *)

type cell =
  | Not_triggered
  | Detected_before
  | Detected_after
  | Contained
  | Escaped

let cell_to_string = function
  | Not_triggered -> "-"
  | Detected_before -> "before"
  | Detected_after -> "after"
  | Contained -> "contained"
  | Escaped -> "ESCAPED"

type result = {
  r_site : Arch.Fault_inject.site;
  r_config : Cage.Config.t;
  r_mode : Arch.Mte.mode;
  r_cell : cell;
  r_class : Cage.Supervisor.fault_class option;  (** [None] = finished *)
  r_injections : int;
  r_sibling_ok : bool;
}

let classify ~site ~injections (outcome : Cage.Supervisor.outcome) =
  if injections = 0 then Not_triggered
  else
    match outcome with
    | Cage.Supervisor.Finished _ -> Escaped
    | Cage.Supervisor.Crashed pm -> (
        match pm.Cage.Supervisor.pm_class with
        | Cage.Supervisor.Tag_fault | Cage.Supervisor.Pac_auth ->
            Detected_before
        | Cage.Supervisor.Bounds ->
            (* A scribbled free-list link is caught on *use*, after the
               metadata was already destroyed; every other bounds trap
               fires on the corrupted access itself. *)
            if site = Arch.Fault_inject.Heap_scribble then Detected_after
            else Detected_before
        | Cage.Supervisor.Deferred_tag_fault -> Detected_after
        | _ -> Contained)

(* ------------------------------------------------------------------ *)
(* Running                                                              *)
(* ------------------------------------------------------------------ *)

(* Enough for thousands of victim iterations, small enough that a
   corruption-induced runaway is cut off quickly and deterministically. *)
let watchdog_fuel = 2_000_000

let compile_cache : (string * Minic.Driver.compiled) list ref = ref []

let compiled_for (cfg : Cage.Config.t) source =
  let key = cfg.Cage.Config.name ^ "\x00" ^ source in
  match List.assoc_opt key !compile_cache with
  | Some c -> c
  | None ->
      let opts =
        { (Minic.Driver.options_of_config cfg) with
          Minic.Driver.mem_pages = 80L }
      in
      let prelude = Libc.Source.prelude_of_config cfg in
      let c = Minic.Driver.compile ~opts ~prelude source in
      compile_cache := (key, c) :: !compile_cache;
      c

let spawn_guest sup m =
  Cage.Supervisor.spawn ~imports:(Libc.Wasi.imports (Libc.Wasi.create ())) sup m

(* The sibling shares the victim's process whenever the configuration's
   §6.4 sandbox capacity allows a second instance; combined mode
   isolates exactly one instance per process, so there the sibling gets
   its own process (trivially isolated, still supervised). *)
let spawn_sibling sup (cfg : Cage.Config.t) ~seed m =
  try spawn_guest sup m
  with Cage.Sandbox.Too_many_sandboxes ->
    let proc = Cage.Process.create ~config:cfg ~seed () in
    Cage.Process.spawn
      ~imports:(Libc.Wasi.imports (Libc.Wasi.create ()))
      proc m

let run_main sup inst = Cage.Supervisor.run sup inst "main" []

let i32_of = function
  | Cage.Supervisor.Finished [ Wasm.Values.I32 v ] -> Some v
  | _ -> None

(* Reference checksum of the workload under [cfg], chaos-free. *)
let reference_cache : (string * int32) list ref = ref []

let reference_for (cfg : Cage.Config.t) ~seed source =
  match List.assoc_opt cfg.Cage.Config.name !reference_cache with
  | Some v -> v
  | None ->
      let compiled = compiled_for cfg source in
      let proc = Cage.Process.create ~config:cfg ~seed () in
      let sup = Cage.Supervisor.create ~fuel:watchdog_fuel proc in
      let inst = spawn_guest sup compiled.Minic.Driver.co_module in
      let v =
        match i32_of (run_main sup inst) with
        | Some v -> v
        | None -> failwith "detection matrix: chaos-free reference run crashed"
      in
      reference_cache := (cfg.Cage.Config.name, v) :: !reference_cache;
      v

let run_cell ~seed ~index site (cfg : Cage.Config.t) mode =
  let cfg_m = { cfg with Cage.Config.mte_mode = mode } in
  let reference = reference_for cfg ~seed:(seed + 7919) victim_source in
  let compiled = compiled_for cfg_m victim_source in
  let m = compiled.Minic.Driver.co_module in
  let proc = Cage.Process.create ~config:cfg_m ~seed:(seed + index) () in
  let sup = Cage.Supervisor.create ~fuel:watchdog_fuel proc in
  let victim = spawn_guest sup m in
  let sibling = spawn_sibling sup cfg_m ~seed:(seed + index + 5000) m in
  let engine =
    Arch.Fault_inject.create (policy_for site ~seed:(seed + (31 * index)))
  in
  let outcome =
    Arch.Fault_inject.with_engine engine (fun () -> run_main sup victim)
  in
  let injections = Arch.Fault_inject.count engine in
  (* The sibling runs chaos-free, after the engine is uninstalled: a
     quarantined victim must not have poisoned it. *)
  let sibling_ok =
    (match i32_of (run_main sup sibling) with
    | Some v -> Int32.equal v reference
    | None -> false)
    && not (Cage.Supervisor.is_quarantined sup sibling)
  in
  {
    r_site = site;
    r_config = cfg;
    r_mode = mode;
    r_cell = classify ~site ~injections outcome;
    r_class =
      (match outcome with
      | Cage.Supervisor.Finished _ -> None
      | Cage.Supervisor.Crashed pm -> Some pm.Cage.Supervisor.pm_class);
    r_injections = injections;
    r_sibling_ok = sibling_ok;
  }

let default_seed = 7

(** Run the whole matrix. Deterministic in [seed]. With [~elide:true]
    every configuration gets static check elision switched on — the
    classifications (and therefore the golden rendering) must come out
    identical, because elision only ever skips checks on accesses the
    analyzer proved cannot fault. [~full:true] additionally arms bounds
    elision and arena lowering (the interprocedural consumers); the
    same byte-identity must hold. *)
let run ?(seed = default_seed) ?(elide = false) ?(full = false)
    ?(engine = Wasm.Instance.Threaded) () =
  compile_cache := [];
  reference_cache := [];
  let configs =
    if full then
      List.map
        (fun c -> Cage.Config.with_arena (Cage.Config.with_bounds_elision c))
        configs
    else if elide then List.map Cage.Config.with_elision configs
    else configs
  in
  let configs = List.map (Cage.Config.with_engine engine) configs in
  let index = ref 0 in
  List.concat_map
    (fun site ->
      List.concat_map
        (fun cfg ->
          List.map
            (fun mode ->
              incr index;
              run_cell ~seed ~index:!index site cfg mode)
            modes)
        configs)
    sites

(* ------------------------------------------------------------------ *)
(* Gate + rendering                                                     *)
(* ------------------------------------------------------------------ *)

(** Hard-constraint violations: an [Escaped] cell under the full Cage
    configuration in Sync mode, or any poisoned sibling anywhere. *)
let violations results =
  List.filter_map
    (fun r ->
      let where =
        Printf.sprintf "%s x %s x %s"
          (Arch.Fault_inject.site_to_string r.r_site)
          r.r_config.Cage.Config.name
          (Arch.Mte.mode_to_string r.r_mode)
      in
      if
        r.r_cell = Escaped
        && r.r_config.Cage.Config.name = Cage.Config.full.Cage.Config.name
        && r.r_mode = Arch.Mte.Sync
      then Some (Printf.sprintf "escape under full cage in sync mode: %s" where)
      else if not r.r_sibling_ok then
        Some (Printf.sprintf "sibling poisoned: %s" where)
      else None)
    results

let count_cells results cell =
  List.length (List.filter (fun r -> r.r_cell = cell) results)

(** Render the matrix as a table: one row per (site, config), one
    column per MTE mode. Contains nothing run-dependent beyond the
    classifications, so a fixed seed gives byte-identical output (the
    golden-file CI check relies on this). *)
let render ?(seed = default_seed) ppf results =
  Report.title ppf "Chaos detection matrix (seed %d)" seed;
  let cell_text r =
    cell_to_string r.r_cell ^ if r.r_sibling_ok then "" else "(sib!)"
  in
  let rows =
    List.concat_map
      (fun site ->
        List.map
          (fun (cfg : Cage.Config.t) ->
            Arch.Fault_inject.site_to_string site
            :: cfg.Cage.Config.name
            :: List.map
                 (fun mode ->
                   match
                     List.find_opt
                       (fun r ->
                         r.r_site = site && r.r_mode = mode
                         && r.r_config.Cage.Config.name = cfg.Cage.Config.name)
                       results
                   with
                   | Some r -> cell_text r
                   | None -> "?")
                 modes)
          configs)
      sites
  in
  Report.table ppf
    ~header:
      ("fault" :: "config" :: List.map Arch.Mte.mode_to_string modes)
    rows;
  Format.fprintf ppf "  cells: %d  triggered: %d@." (List.length results)
    (List.length (List.filter (fun r -> r.r_injections > 0) results));
  Format.fprintf ppf
    "  before: %d  after: %d  contained: %d  escaped: %d  not-triggered: %d@."
    (count_cells results Detected_before)
    (count_cells results Detected_after)
    (count_cells results Contained)
    (count_cells results Escaped)
    (count_cells results Not_triggered);
  let v = violations results in
  Format.fprintf ppf "  gate: %s@."
    (if v = [] then "PASS (no full+sync escapes, no poisoned siblings)"
     else "FAIL");
  List.iter (fun msg -> Format.fprintf ppf "    %s@." msg) v

(* ------------------------------------------------------------------ *)
(* Chaos fuzzing                                                        *)
(* ------------------------------------------------------------------ *)

type fuzz_stats = {
  fz_runs : int;
  fz_finished : int;
  fz_crashed : int;
  fz_injected : int;       (** runs where at least one fault fired *)
  fz_failures : string list;
      (** supervisor-invariant violations; empty = pass *)
}

(* The supervisor invariant the fuzzer asserts, per seeded program:
   - the victim run returns an outcome — no OCaml exception escapes
     [Supervisor.run], ever;
   - with zero injections the victim's result equals the Fuzzgen
     reference value (differential check);
   - the sibling instance finishes with the reference value afterwards
     — a quarantined victim never poisons its sibling.
   Victim *correctness* under injection is deliberately not asserted:
   e.g. a heap scribble that lands in a recycled stack slot is silent
   data corruption by design, and containment — not correctness — is
   the supervisor's contract. *)
let chaos_fuzz ?(seed = 0xC405) ?(engine = Wasm.Instance.Threaded) ~count () =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let finished = ref 0 and crashed = ref 0 and injected = ref 0 in
  for i = 0 to count - 1 do
    let pseed = seed + i in
    match
      let prog = Workloads.Fuzzgen.generate ~seed:pseed in
      let source = Workloads.Fuzzgen.render prog in
      let expected = Workloads.Fuzzgen.reference prog in
      let mode = List.nth modes (i mod List.length modes) in
      let cfg =
        Cage.Config.with_engine engine
          { Cage.Config.full with Cage.Config.mte_mode = mode }
      in
      let opts =
        { (Minic.Driver.options_of_config cfg) with
          Minic.Driver.mem_pages = 80L }
      in
      let prelude = Libc.Source.prelude_of_config cfg in
      let compiled = Minic.Driver.compile ~opts ~prelude source in
      let m = compiled.Minic.Driver.co_module in
      let proc = Cage.Process.create ~config:cfg ~seed:pseed () in
      let sup = Cage.Supervisor.create ~fuel:watchdog_fuel proc in
      let victim = spawn_guest sup m in
      let sibling = spawn_sibling sup cfg ~seed:(pseed + 5000) m in
      (* Every fifth seed runs with a zero budget: those runs exercise
         the chaos-free differential check against the Fuzzgen
         reference interpreter. *)
      let engine =
        Arch.Fault_inject.create
          (Arch.Fault_inject.policy ~seed:pseed ~probability:0.01
             ~max_injections:(if i mod 5 = 0 then 0 else 4)
             Arch.Fault_inject.all_sites)
      in
      (match
         Arch.Fault_inject.with_engine engine (fun () -> run_main sup victim)
       with
      | Cage.Supervisor.Finished _ as o ->
          incr finished;
          if Arch.Fault_inject.count engine = 0 then (
            match i32_of o with
            | Some v when Int32.equal v expected -> ()
            | _ -> fail "seed %d: chaos-free run diverged from reference" pseed)
      | Cage.Supervisor.Crashed _ -> incr crashed
      | exception e ->
          fail "seed %d: OCaml exception escaped the supervisor: %s" pseed
            (Printexc.to_string e));
      if Arch.Fault_inject.count engine > 0 then incr injected;
      match run_main sup sibling with
      | o -> (
          match i32_of o with
          | Some v when Int32.equal v expected -> ()
          | Some _ -> fail "seed %d: sibling result poisoned" pseed
          | None -> fail "seed %d: sibling crashed after victim chaos" pseed)
      | exception e ->
          fail "seed %d: OCaml exception escaped the sibling run: %s" pseed
            (Printexc.to_string e)
    with
    | () -> ()
    | exception e ->
        fail "seed %d: harness exception: %s" pseed (Printexc.to_string e)
  done;
  {
    fz_runs = count;
    fz_finished = !finished;
    fz_crashed = !crashed;
    fz_injected = !injected;
    fz_failures = List.rev !failures;
  }

let pp_fuzz_stats ppf s =
  Format.fprintf ppf
    "chaos fuzz: %d runs, %d finished, %d crashed-and-contained, %d with \
     injections, %d invariant failures"
    s.fz_runs s.fz_finished s.fz_crashed s.fz_injected
    (List.length s.fz_failures)
