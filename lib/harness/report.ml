(** Formatting helpers for the experiment reports: aligned tables and
    paper-vs-measured comparison lines. *)

let hr ppf = Format.fprintf ppf "%s@." (String.make 78 '-')

let title ppf fmt =
  Format.kfprintf
    (fun ppf ->
      Format.fprintf ppf "@.";
      hr ppf)
    ppf fmt

(** One "paper said X, we measured Y" line. *)
let compare_line ppf ~label ~paper ~measured ~unit_ =
  Format.fprintf ppf "  %-38s paper: %8s   measured: %8s %s@." label paper
    measured unit_

let pct v = Printf.sprintf "%+.1f%%" v

let seconds v =
  if v < 1e-3 then Printf.sprintf "%.1fus" (v *. 1e6)
  else if v < 1.0 then Printf.sprintf "%.2fms" (v *. 1e3)
  else Printf.sprintf "%.3fs" v

(** Render a table: header cells then rows, auto-aligned. A ragged row
    is normalized to the header's width — extra cells are dropped,
    missing cells become empty — instead of raising
    [Invalid_argument] from [List.map2]. *)
let table ppf ~header rows =
  let ncols = List.length header in
  let normalize row =
    let rec go n = function
      | _ when n = 0 -> []
      | [] -> "" :: go (n - 1) []
      | c :: rest -> c :: go (n - 1) rest
    in
    go ncols row
  in
  let rows = List.map normalize rows in
  let widths =
    List.fold_left
      (fun ws row ->
        List.map2 (fun w cell -> max w (String.length cell)) ws row)
      (List.map String.length header)
      rows
  in
  let render_row row =
    String.concat "  "
      (List.map2 (fun w cell -> Printf.sprintf "%-*s" w cell) widths row)
  in
  Format.fprintf ppf "  %s@." (render_row header);
  Format.fprintf ppf "  %s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Format.fprintf ppf "  %s@." (render_row row)) rows

(** Mean and sample standard deviation. *)
let mean_std = function
  | [] -> (0.0, 0.0)
  | xs ->
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs
        /. Float.max 1.0 (n -. 1.0)
      in
      (mean, sqrt var)
