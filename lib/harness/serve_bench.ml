(** Tenants and scenarios for the serving runtime.

    {!Serve} itself is workload-agnostic (tenants are just modules +
    entry points); this module supplies the concrete mixed-tenant cast
    the benchmark and the CI smoke run use:

    - [compute]: a small PolyBench-flavoured matmul kernel — the
      well-behaved tenant whose goodput the chaos gate protects;
    - [fuzz]: a Fuzzgen-generated program checked against the Fuzzgen
      reference interpreter — a second well-behaved tenant with
      different memory behaviour;
    - [malicious]: a CVE-suite-style heap overflow that faults on
      {e every} request — the noisy neighbour that must never take the
      others down.

    All tenants run the full Cage configuration: the malicious tenant
    is stopped by MTE, not by being special-cased. *)

(* Small on purpose: each serving request really executes the kernel,
   so per-request op counts set the wall-clock cost of a 100k-request
   replay. A few hundred multiplies still exercises heap pointers,
   loops and function calls. *)
let compute_source =
  {|
int main() {
  long *a = (long *)malloc(8 * 8 * 8);
  long *b = (long *)malloc(8 * 8 * 8);
  long *c = (long *)malloc(8 * 8 * 8);
  for (int i = 0; i < 64; i++) { a[i] = (long)i; b[i] = (long)(63 - i); c[i] = 0; }
  for (int i = 0; i < 8; i++)
    for (int k = 0; k < 8; k++)
      for (int j = 0; j < 8; j++)
        c[i * 8 + j] = c[i * 8 + j] + a[i * 8 + k] * b[k * 8 + j];
  long acc = 0;
  for (int i = 0; i < 64; i++) { acc = acc * 31 + c[i]; }
  free(a); free(b); free(c);
  return (int)(((unsigned long)acc) % 1000003);
}
|}

(* A guest-triggered heap overflow in the style of the CVE suite
   (CVE-2023-4863's shape): an attacker-length loop writes past its
   buffer on every request. Under MTE this traps at the first
   out-of-granule store — deterministically, every time. *)
let malicious_source =
  {|
int main() {
  char *table = (char *)malloc(32);
  char *secret = (char *)malloc(16);
  secret[0] = 42;
  int attacker_len = 64;
  for (int i = 0; i < attacker_len; i++) { table[i] = 7; }
  return secret[0];
}
|}

let fuzz_seed = 0xF5EED

(* Serving tenants run tiny memories: the snapshot payload is restored
   per request, so image size is the dominant per-request cost. *)
let serve_mem_pages = 4L

let compile (cfg : Cage.Config.t) source =
  let opts =
    { (Minic.Driver.options_of_config cfg) with
      Minic.Driver.mem_pages = serve_mem_pages;
      Minic.Driver.stack_bytes = 16384 }
  in
  let prelude = Libc.Source.prelude_of_config cfg in
  (Minic.Driver.compile ~opts ~prelude source).Minic.Driver.co_module

let wasi_imports () =
  let w = Libc.Wasi.create () in
  ( Libc.Wasi.imports w,
    fun () ->
      Libc.Wasi.clear w;
      w.Libc.Wasi.clock <- 0L;
      w.Libc.Wasi.rand_state <- 0x9e3779b9L )

(* Chaos-free reference result for [m]'s main under [cfg]. *)
let reference (cfg : Cage.Config.t) ~seed m =
  let proc = Cage.Process.create ~config:cfg ~seed () in
  let sup = Cage.Supervisor.create ~fuel:2_000_000 proc in
  let imports, _ = wasi_imports () in
  let inst = Cage.Supervisor.spawn ~imports sup m in
  match Cage.Supervisor.run sup inst "main" [] with
  | Cage.Supervisor.Finished vs -> vs
  | Cage.Supervisor.Crashed pm ->
      failwith
        ("serve_bench: chaos-free reference crashed: "
        ^ pm.Cage.Supervisor.pm_message)

let tenant_of_source (cfg : Cage.Config.t) ~name ~weight ~seed ?(expect = true)
    source =
  let m = compile cfg source in
  let expected = if expect then Some (reference cfg ~seed m) else None in
  {
    Serve.Pool.tn_name = name;
    tn_module = m;
    tn_config = cfg;
    tn_entry = "main";
    tn_args = [];
    tn_expected = expected;
    tn_init = None;
    tn_imports = wasi_imports;
    tn_weight = weight;
  }

(** The benchmark cast under [cfg] (default: full Cage). *)
let tenants ?(cfg = Cage.Config.full) ~seed () =
  let fuzz_prog = Workloads.Fuzzgen.generate ~seed:fuzz_seed in
  let fuzz_src = Workloads.Fuzzgen.render fuzz_prog in
  [
    tenant_of_source cfg ~name:"compute" ~weight:6 ~seed compute_source;
    tenant_of_source cfg ~name:"fuzz" ~weight:3 ~seed:(seed + 1) fuzz_src;
    (* faults every request: no reference, never counted as goodput *)
    tenant_of_source cfg ~name:"malicious" ~weight:1 ~seed:(seed + 2)
      ~expect:false malicious_source;
  ]

(** The benchmark chaos policy: every site armed, low per-draw
    probability, a small per-lane budget — continuous background chaos
    rather than one catastrophic burst. *)
let chaos_policy ~seed =
  Arch.Fault_inject.policy ~seed ~probability:0.004 ~max_injections:8
    Arch.Fault_inject.all_sites

type comparison = {
  cmp_off : Serve.Server.report;
  cmp_on : Serve.Server.report;
}

(** Per-tenant goodput ratio chaos-on / chaos-off (1.0 when the tenant
    had no chaos-off goodput to protect, e.g. the malicious tenant). *)
let goodput_ratio cmp name =
  let ok r =
    match Serve.Server.tenant_of r name with
    | Some tr -> tr.Serve.Server.tr_ok
    | None -> 0
  in
  let off = ok cmp.cmp_off and on_ = ok cmp.cmp_on in
  if off = 0 then 1.0 else float_of_int on_ /. float_of_int off

(** The headline robustness gate: no corrupted result ever reached a
    client under chaos, and every well-behaved tenant kept at least
    [floor] (default 0.8) of its chaos-off goodput. *)
let gate ?(floor = 0.8) cmp =
  let escapes = cmp.cmp_on.Serve.Server.rp_escaped in
  let bad_ratio =
    List.filter_map
      (fun (tr : Serve.Server.tenant_report) ->
        let r = goodput_ratio cmp tr.Serve.Server.tr_name in
        if r < floor then Some (tr.Serve.Server.tr_name, r) else None)
      cmp.cmp_off.Serve.Server.rp_tenants
  in
  (escapes, bad_ratio)

(** Run the mixed-tenant scenario twice — identical arrival schedule,
    chaos off then on — and return both reports. [recorder] installs a
    request-span recorder around the {e chaos-on} run (the interesting
    side: retries, breaker trips and injections all live there);
    [collect] feeds the chaos-on run's per-request stream into an SLO
    collector. Neither perturbs the simulation — reports are identical
    with or without them. *)
let compare ?(requests = 100_000) ?(seed = 42)
    ?(engine = Wasm.Instance.Threaded) ?recorder ?collect () =
  let config =
    { Serve.Server.default_config with Serve.Server.requests; seed }
  in
  let mk () =
    tenants ~cfg:(Cage.Config.with_engine engine Cage.Config.full) ~seed ()
  in
  let cmp_off = Serve.Server.run config (mk ()) in
  let run_on () =
    Serve.Server.run ~chaos:(chaos_policy ~seed) ?collect config (mk ())
  in
  let cmp_on =
    match recorder with
    | Some r -> Obs.Span.with_recorder r run_on
    | None -> run_on ()
  in
  { cmp_off; cmp_on }

(* ------------------------------------------------------------------ *)
(* The detection matrix's "served" column                               *)
(* ------------------------------------------------------------------ *)

(** How a fault site behaves when it fires through the {e whole}
    serving stack — pool, supervisor, retry — instead of a single bare
    invocation:

    - ["-"]: the site never fired (that defense layer is idle under
      the mode);
    - ["recovered"]: every request still succeeded — crashes were
      contained and retries on pristine snapshots absorbed them;
    - ["degraded"]: nothing escaped, but some requests were lost
      (shed, retry-exhausted) — graceful degradation;
    - ["ESCAPED"]: a corrupted result reached a client. *)
let served_cell ~engine ~full ~seed ~index site mode =
  let cfg =
    Cage.Config.with_engine engine
      { Cage.Config.full with Cage.Config.mte_mode = mode }
  in
  (* [~full]: serve with the whole interprocedural elision pipeline
     armed; the served classifications must not move *)
  let cfg =
    if full then Cage.Config.with_arena (Cage.Config.with_bounds_elision cfg)
    else cfg
  in
  let tenant =
    tenant_of_source cfg ~name:"victim" ~weight:1 ~seed:(seed + index)
      Detection_matrix.victim_source
  in
  let requests = 24 in
  let config =
    {
      Serve.Server.default_config with
      Serve.Server.requests;
      slots = 2;
      cores = 2;
      seed = seed + index;
    }
  in
  let pol = Detection_matrix.policy_for site ~seed:(seed + (31 * index)) in
  let report = Serve.Server.run ~chaos:pol config [ tenant ] in
  if report.Serve.Server.rp_injections = 0 then "-"
  else if report.Serve.Server.rp_escaped > 0 then "ESCAPED"
  else if report.Serve.Server.rp_ok = requests then "recovered"
  else "degraded"

(** One row per fault site, one column per MTE mode, full Cage config
    throughout. Deterministic in [seed] — golden-gated by CI. *)
let served_matrix ?(seed = Detection_matrix.default_seed)
    ?(engine = Wasm.Instance.Threaded) ?(full = false) () =
  let modes = Arch.Mte.[ Disabled; Sync; Async; Asymmetric ] in
  let index = ref 0 in
  List.map
    (fun site ->
      ( site,
        List.map
          (fun mode ->
            incr index;
            (mode, served_cell ~engine ~full ~seed ~index:!index site mode))
          modes ))
    Arch.Fault_inject.all_sites

(** The served-column gate, mirroring the matrix gate: under the full
    configuration in Sync mode a fault site that fires must come out
    [recovered] — contained {e and} absorbed — and no site may escape
    in any detecting mode. *)
let served_violations rows =
  List.concat_map
    (fun (site, cells) ->
      List.filter_map
        (fun (mode, cell) ->
          let where =
            Printf.sprintf "%s x full-cage x %s (served)"
              (Arch.Fault_inject.site_to_string site)
              (Arch.Mte.mode_to_string mode)
          in
          if cell = "ESCAPED" && mode <> Arch.Mte.Disabled then
            Some ("serving escape: " ^ where)
          else if mode = Arch.Mte.Sync && cell <> "recovered" && cell <> "-"
          then Some ("serving did not recover: " ^ where)
          else None)
        cells)
    rows

let render_served ?(seed = Detection_matrix.default_seed) ppf rows =
  Report.title ppf "Serving-path detection matrix (seed %d)" seed;
  let modes = Arch.Mte.[ Disabled; Sync; Async; Asymmetric ] in
  Report.table ppf
    ~header:("fault" :: List.map Arch.Mte.mode_to_string modes)
    (List.map
       (fun (site, cells) ->
         Arch.Fault_inject.site_to_string site
         :: List.map (fun (_, c) -> c) cells)
       rows);
  let v = served_violations rows in
  Format.fprintf ppf "  gate: %s@."
    (if v = [] then
       "PASS (all fired sites recovered under sync, no serving escapes)"
     else "FAIL");
  List.iter (fun msg -> Format.fprintf ppf "    %s@." msg) v
