(** Engine equivalence gate: a differential fuzz run proving that the
    threaded-code engine is observationally identical to the reference
    interpreter.

    For each seed, a random Fuzzgen program runs twice under the same
    configuration — once forced onto the [Interp] engine, once on
    [Threaded] — and the two runs must agree on {e everything} an
    instance exposes: the outcome (value or trap message, including the
    trap-prefix taxonomy), the final linear-memory image (compared by
    digest), every meter counter, and the load/store access counts in
    particular. The interpreter run must also match the Fuzzgen
    reference evaluator, anchoring both engines to the semantics. *)

type report = {
  gd_config : Cage.Config.t;
  gd_seeds : int;
  gd_failures : string list;  (** one line per divergence, oldest first *)
}

type outcome = Value of int32 | Trap of string

let outcome_to_string = function
  | Value v -> Printf.sprintf "%ld" v
  | Trap m -> Printf.sprintf "trap(%s)" m

let run_once ~cfg ~seed source =
  let meter = Wasm.Meter.create () in
  let result = ref None in
  let outcome =
    try
      let r = Libc.Run.run ~cfg ~meter ~seed source in
      result := Some r;
      Value (Libc.Run.ret_i32 r)
    with Wasm.Instance.Trap msg -> Trap msg
  in
  let digest =
    match !result with
    | Some r ->
        Digest.to_hex
          (Digest.string
             (Wasm.Memory.to_string
                (Wasm.Instance.memory r.Libc.Run.instance)))
    | None -> "(no instance)"
  in
  (outcome, meter, digest)

let run ?(cfg = Cage.Config.mem_safety) ?(count = 200) ?(seed0 = 0) () =
  let failures = ref [] in
  let fail seed fmt =
    Printf.ksprintf
      (fun m -> failures := Printf.sprintf "seed %d: %s" seed m :: !failures)
      fmt
  in
  for i = 0 to count - 1 do
    let seed = seed0 + i in
    let prog = Workloads.Fuzzgen.generate ~seed in
    let source = Workloads.Fuzzgen.render prog in
    let expected = Workloads.Fuzzgen.reference prog in
    let icfg = Cage.Config.with_engine Wasm.Instance.Interp cfg in
    let tcfg = Cage.Config.with_engine Wasm.Instance.Threaded cfg in
    let o_i, m_i, d_i = run_once ~cfg:icfg ~seed source in
    let o_t, m_t, d_t = run_once ~cfg:tcfg ~seed source in
    (match o_i with
    | Value v when v <> expected ->
        fail seed "interpreter diverged from reference: %ld <> %ld" v
          expected
    | Trap m -> fail seed "interpreter trapped: %s" m
    | Value _ -> ());
    if o_i <> o_t then
      fail seed "engines disagree on the outcome: interp %s <> threaded %s"
        (outcome_to_string o_i) (outcome_to_string o_t);
    if d_i <> d_t then
      fail seed "engines disagree on the final memory: %s <> %s" d_i d_t;
    if m_i.Wasm.Meter.loads <> m_t.Wasm.Meter.loads
       || m_i.Wasm.Meter.stores <> m_t.Wasm.Meter.stores
    then
      fail seed "engines disagree on access counts: %d/%d <> %d/%d"
        m_i.Wasm.Meter.loads m_i.Wasm.Meter.stores m_t.Wasm.Meter.loads
        m_t.Wasm.Meter.stores;
    (* The meter is a flat record of counters, so structural equality
       is exactly "every counter identical". *)
    if m_i <> m_t then
      fail seed
        "engines disagree on meter totals: interp %d <> threaded %d ops"
        (Wasm.Meter.total m_i) (Wasm.Meter.total m_t)
  done;
  { gd_config = cfg; gd_seeds = count; gd_failures = List.rev !failures }

let ok r = r.gd_failures = []

let pp ppf r =
  Format.fprintf ppf
    "@[<v>engine-diff: %d seeds under %s: %s@]" r.gd_seeds
    r.gd_config.Cage.Config.name
    (if ok r then "interp and threaded engines observationally identical"
     else Printf.sprintf "%d FAILURES" (List.length r.gd_failures))
