(** Crash containment: run guests so that no failure escapes.

    Every guest invocation runs under a supervisor that converts
    {e all} failures — tag faults, PAC authentication failures, bounds
    traps, watchdog exhaustion, call-stack exhaustion, [unreachable],
    host-function exceptions — into a structured {!outcome}, emits an
    MTE-SIGSEGV-style {!post_mortem}, and quarantines the faulting
    instance while sibling instances in the same {!Process} keep
    running. *)

type fault_class =
  | Tag_fault           (** synchronous MTE mismatch ("tag fault:") *)
  | Deferred_tag_fault  (** TFSR report at a sync point ("deferred:") *)
  | Pac_auth            (** failed [autda] under FEAT_FPAC ("pac auth:") *)
  | Bounds              (** sandbox violation: out-of-bounds span or
                            non-canonical address ("bounds:") *)
  | Fuel                (** watchdog budget exhausted ("fuel:") *)
  | Stack               (** call-stack exhaustion ("stack:") *)
  | Unreachable         (** the guest executed [unreachable] *)
  | Guest_trap          (** any other wasm trap *)
  | Host_error          (** an exception escaped a host function *)
  | Quarantine          (** invocation refused: instance quarantined *)

val fault_class_to_string : fault_class -> string

val classify : string -> fault_class
(** Classify a trap message by its stable prefix taxonomy
    (["tag fault:"], ["pac auth:"], ["bounds:"], ["fuel:"],
    ["stack:"], ["deferred:"]). *)

type post_mortem = {
  pm_class : fault_class;
  pm_message : string;
  pm_instance : int;             (** instance id *)
  pm_mode : Arch.Mte.mode;
  pm_fault : Arch.Mte.fault option;
      (** the synchronous fault, structured: address, pointer tag vs
          memory tag, access kind *)
  pm_pending : Arch.Mte.fault option;
      (** TFSR drained at crash time — a deferred fault latched before
          the trap must not be lost when the trap unwinds *)
  pm_backtrace : string list;    (** wasm frames, innermost first *)
  pm_ops : int;                  (** meter snapshot: total events *)
  pm_mem_accesses : int;
  pm_fuel_left : int;            (** remaining watchdog budget, -1 if off *)
  pm_injections : string list;   (** chaos injections active at crash *)
  pm_trace : string list;
      (** black-box flight recording: the last K trace events before the
          crash, oldest first — empty when no tracer was installed *)
}

val pp_post_mortem : Format.formatter -> post_mortem -> unit
(** Linux-MTE-SIGSEGV-style report: cause, faulting address, pointer
    tag vs memory tag, access kind, MTE mode, wasm backtrace, meter
    snapshot. *)

type outcome =
  | Finished of Wasm.Values.t list
  | Crashed of post_mortem

type t

val create :
  ?fuel:int -> ?black_box:int -> ?max_quarantined:int -> Process.t -> t
(** Supervisor over a process. [fuel] is the per-invocation watchdog
    budget in branches+calls (default [-1]: no watchdog). [black_box]
    is how many final trace events a post-mortem embeds when an
    [Obs] tracer is installed (default 8). [max_quarantined] (default
    256) caps the retained post-mortems: beyond it the oldest records
    are evicted (a [cage_quarantine_evicted_total] bump each) so a
    crash storm cannot grow supervisor memory without bound —
    quarantine {e membership} is never dropped, only the record. *)

val process : t -> Process.t

val spawn :
  ?meter:Wasm.Meter.t ->
  ?imports:(string * string * Wasm.Instance.host_func) list ->
  ?lane:int ->
  t ->
  Wasm.Ast.module_ ->
  Wasm.Instance.t
(** {!Process.spawn} on the supervised process. *)

val run : t -> Wasm.Instance.t -> string -> Wasm.Values.t list -> outcome
(** Invoke an exported function under the supervisor: every failure
    becomes [Crashed] with a post-mortem — no OCaml exception escapes —
    and a crash quarantines the instance (later invocations are
    refused with a [Quarantine] outcome) while siblings keep running. *)

val run_thunk : t -> Wasm.Instance.t -> (unit -> Wasm.Values.t list) -> outcome
(** Same contract for an arbitrary invocation thunk on the instance
    (drivers that wrap [Exec.invoke] themselves, e.g. the libc shims). *)

val quarantined : t -> (int * post_mortem) list
(** Retained post-mortems (id, crash record) in crash order — at most
    [max_quarantined] of them, newest kept. *)

val is_quarantined : t -> Wasm.Instance.t -> bool

val release : t -> Wasm.Instance.t -> unit
(** Lift an instance out of quarantine — the pool's self-healing path,
    called after the slot was restored from its frozen snapshot.
    Retained post-mortems stay inspectable; only the membership bit
    clears. *)
