(** Runtime configurations — the benchmark variants of paper Table 3.

    A configuration fixes the pointer width, how the sandbox (external
    memory safety) is enforced, whether the internal memory-safety
    extension is active, whether function pointers are signed, and how
    the 4 MTE tag bits are split between the two uses (paper Fig. 13):

    - internal only: all 4 bits for allocation tags, tag 0 reserved for
      guard slots/untagged segments → 15 usable tags, collision
      probability 1/15;
    - internal + MTE sandboxing: bit 56 distinguishes runtime (0) from
      guest (1) memory, bits 57-59 carry allocation tags → 7 usable
      guest tags (the all-zero internal pattern is the guest's
      "untagged"), collision probability 1/7. *)

type sandbox =
  | Guard_pages
      (** virtual-memory trick; only sound for 32-bit pointers *)
  | Software_bounds  (** explicit cmp+branch before every access *)
  | Mte_sandbox      (** paper §6.4: per-instance tag on the heap base *)

let sandbox_to_string = function
  | Guard_pages -> "guard-pages"
  | Software_bounds -> "software-bounds"
  | Mte_sandbox -> "mte"

type t = {
  name : string;
  ptr64 : bool;              (** memory64? *)
  sandbox : sandbox;
  internal_safety : bool;    (** segments + tag checks (Eqs. 1-10) *)
  ptr_auth : bool;           (** sign/authenticate function pointers *)
  mte_mode : Arch.Mte.mode;  (** how violations surface *)
  elide_checks : bool;
      (** skip MTE granule checks the static analyzer proved redundant
          (accesses in-bounds on definitely-live segments); off by
          default in every Table 3 variant *)
  elide_bounds : bool;
      (** full-check elision: also skip the sandbox span check where the
          analyzer proved the access inside a created segment (which
          itself lies inside linear memory); requires [elide_checks] *)
  arena : bool;
      (** escape-driven tag-traffic elision: lower non-escaping
          [segment.new]/[segment.free] pairs to tag-write-free arena
          form; requires [elide_checks] *)
  spec_safe_only : bool;
      (** keep every check that is provable architecturally but not
          under the Swivel-style speculation model ([--no-spec-elide]) *)
  engine : Wasm.Instance.engine;
      (** which execution engine drives instances of this variant;
          [Threaded] everywhere (see {!with_engine} to force the
          reference interpreter) *)
}

(** The six Table 3 variants, in the paper's order. *)

let baseline_wasm32 = {
  name = "baseline wasm32";
  ptr64 = false;
  sandbox = Guard_pages;
  internal_safety = false;
  ptr_auth = false;
  mte_mode = Arch.Mte.Disabled;
  elide_checks = false;
  elide_bounds = false;
  arena = false;
  spec_safe_only = false;
  engine = Wasm.Instance.Threaded;
}

let baseline_wasm64 = {
  name = "baseline wasm64";
  ptr64 = true;
  sandbox = Software_bounds;
  internal_safety = false;
  ptr_auth = false;
  mte_mode = Arch.Mte.Disabled;
  elide_checks = false;
  elide_bounds = false;
  arena = false;
  spec_safe_only = false;
  engine = Wasm.Instance.Threaded;
}

let mem_safety = {
  name = "Cage-mem-safety";
  ptr64 = true;
  sandbox = Software_bounds;
  internal_safety = true;
  ptr_auth = false;
  mte_mode = Arch.Mte.Sync;
  elide_checks = false;
  elide_bounds = false;
  arena = false;
  spec_safe_only = false;
  engine = Wasm.Instance.Threaded;
}

let ptr_auth = {
  name = "Cage-ptr-auth";
  ptr64 = true;
  sandbox = Software_bounds;
  internal_safety = false;
  ptr_auth = true;
  mte_mode = Arch.Mte.Disabled;
  elide_checks = false;
  elide_bounds = false;
  arena = false;
  spec_safe_only = false;
  engine = Wasm.Instance.Threaded;
}

let sandboxing = {
  name = "Cage-sandboxing";
  ptr64 = true;
  sandbox = Mte_sandbox;
  internal_safety = false;
  ptr_auth = false;
  mte_mode = Arch.Mte.Sync;
  elide_checks = false;
  elide_bounds = false;
  arena = false;
  spec_safe_only = false;
  engine = Wasm.Instance.Threaded;
}

let full = {
  name = "CAGE";
  ptr64 = true;
  sandbox = Mte_sandbox;
  internal_safety = true;
  ptr_auth = true;
  mte_mode = Arch.Mte.Sync;
  elide_checks = false;
  elide_bounds = false;
  arena = false;
  spec_safe_only = false;
  engine = Wasm.Instance.Threaded;
}

(** A variant with static check elision switched on (the name is left
    unchanged so reports and golden files keyed by configuration name
    stay comparable with and without elision). *)
let with_elision t = { t with elide_checks = true }

(** Full-check elision on top of tag elision: accesses whose span is
    also proven lose the sandbox bounds compare too. *)
let with_bounds_elision t = { t with elide_checks = true; elide_bounds = true }

(** Escape-driven tag-traffic elision: non-escaping segments allocate
    through the tag-write-free arena form. *)
let with_arena t = { t with elide_checks = true; arena = true }

(** Keep checks that only an architectural (non-speculative) proof
    would elide — the [--no-spec-elide] deployment mode. *)
let with_spec_safe_only t = { t with spec_safe_only = true }

(** The same variant driven by a specific execution engine (the name is
    unchanged: engine choice must never alter observable results, only
    wall-clock time). *)
let with_engine engine t = { t with engine }

(** All Table 3 rows, in order. *)
let table3 =
  [ baseline_wasm32; baseline_wasm64; mem_safety; ptr_auth; sandboxing; full ]

(** Whether internal safety and MTE sandboxing share the tag bits
    (Fig. 13b). *)
let combined t = t.internal_safety && t.sandbox = Mte_sandbox

(** Number of distinct allocation tags the guest allocator can draw
    from: 15 standalone, 7 when combined with sandboxing (§7.4). *)
let usable_tags t = if combined t then 7 else 15

(** The tag-exclusion set the runtime installs via prctl (§6.4): tag 0
    is always reserved (guard slots, untagged segments, runtime memory);
    in combined mode every tag with bit 56 clear is reserved too, plus
    the guest's own "untagged" pattern 0b0001. *)
let exclusion t =
  if combined t then
    Arch.Tag.Exclude.of_list
      (List.filter
         (fun tag ->
           let v = Arch.Tag.to_int tag in
           v land 1 = 0 (* runtime half: bit 56 clear *) || v = 1)
         Arch.Tag.all)
  else Arch.Tag.Exclude.of_list [ Arch.Tag.zero ]

(** Pointer-index mask applied before effective-address computation
    (Fig. 13): full tag field when sandbox-only, bit 56 when combined.
    [None] when MTE sandboxing is off (no mask needed). *)
let index_mask t =
  match t.sandbox with
  | Mte_sandbox ->
      Some (if combined t then Arch.Ptr.mask_combined
            else Arch.Ptr.mask_external_only)
  | _ -> None

(** Maximum number of concurrently isolated instances per process under
    MTE sandboxing: 15 guest tags (tag 0 is the runtime's); a single
    guest bit in combined mode isolates one instance (§6.4). *)
let max_sandboxes t =
  match t.sandbox with
  | Mte_sandbox -> if combined t then 1 else 15
  | _ -> max_int

(** Interpreter configuration implementing this variant. *)
let instance_config ?meter ?(seed = 0) t =
  {
    Wasm.Instance.default_config with
    enforce_tags = t.internal_safety;
    mte_mode = t.mte_mode;
    exclude = exclusion t;
    seed;
    meter;
    engine = t.engine;
  }

let pp ppf t =
  Format.fprintf ppf "%s (ptr%d, sandbox=%s%s%s)" t.name
    (if t.ptr64 then 64 else 32)
    (sandbox_to_string t.sandbox)
    (if t.internal_safety then ", mem-safety" else "")
    (if t.ptr_auth then ", ptr-auth" else "")
