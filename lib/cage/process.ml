(** Multi-instance processes (paper §6.3).

    PAC keys are shared per OS process, so when several WASM instances
    run in one process Cage cannot give each its own key. Instead it
    draws one process key and a {e random per-instance modifier}: the
    modifier enters the signature computation, so a function pointer
    signed in one instance never authenticates in another — the WebOS
    scenario of §3 where instances share a common library. *)

type t = {
  pac_key : Arch.Pac.key;
  config : Config.t;
  rng : Random.State.t;
  mutable instances : Wasm.Instance.t list;
  mutable lanes : (int * int) list;
      (* instance id -> chaos lane: the stable identity the fault
         engine splits its per-instance PRNG streams on *)
}

let create ?(config = Config.full) ?(seed = 42) () =
  let rng = Random.State.make [| seed |] in
  {
    pac_key =
      Arch.Pac.random_key ~rng:(fun () -> Random.State.int64 rng Int64.max_int);
    config;
    rng;
    instances = [];
    lanes = [];
  }

(** Instantiate a module inside the process: shared PAC key, fresh
    random modifier. Enforces the §6.4 sandbox-count limit.

    [lane] is the instance's chaos-lane identity (see
    {!Arch.Fault_inject.set_lane}); it defaults to the spawn ordinal
    within this process, which is stable across runs and independent of
    any later scheduling order. Pools spanning several processes pass
    an explicit globally-unique lane per slot. *)
let spawn ?meter ?imports ?lane t m =
  if
    t.config.sandbox = Config.Mte_sandbox
    && List.length t.instances >= Config.max_sandboxes t.config
  then raise Sandbox.Too_many_sandboxes;
  let elide =
    if t.config.elide_checks then
      (Analysis.Elide.plan m).Analysis.Elide.bitsets
    else [||]
  in
  let config =
    {
      (Config.instance_config ?meter ~seed:(Random.State.int t.rng 1_000_000)
         t.config)
      with
      pac_key = Some t.pac_key;
      pac_modifier = Random.State.int64 t.rng Int64.max_int;
      elide;
    }
  in
  let lane =
    match lane with Some l -> l | None -> List.length t.instances
  in
  let inst = Wasm.Exec.instantiate ~config ?imports m in
  t.instances <- t.instances @ [ inst ];
  t.lanes <- (inst.Wasm.Instance.id, lane) :: t.lanes;
  if Obs.Hook.enabled () then begin
    Obs.Hook.set_instance inst.Wasm.Instance.id;
    Obs.Hook.event (Obs.Event.Spawn { instance = inst.Wasm.Instance.id })
  end;
  inst

let instance_count t = List.length t.instances
let instances t = t.instances

(** The chaos lane assigned to an instance at spawn (0 if the instance
    is not from this process). *)
let lane t (inst : Wasm.Instance.t) =
  match List.assq_opt inst.Wasm.Instance.id t.lanes with
  | Some l -> l
  | None -> 0

(** Kernel-style TFSR inspection across the process (paper §4.2): at a
    context switch the kernel reads every thread's sticky tag-fault
    state. Drains each instance's pending deferred fault and returns
    them as (instance id, fault) pairs in spawn order — empty when no
    Async/Asymmetric mismatch occurred since the last poll. *)
let poll_deferred_faults t =
  List.filter_map
    (fun (inst : Wasm.Instance.t) ->
      match inst.Wasm.Instance.mte with
      | None -> None
      | Some mte ->
          Option.map
            (fun f -> (inst.Wasm.Instance.id, f))
            (Arch.Mte.take_pending mte))
    t.instances
