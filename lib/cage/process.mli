(** Multi-instance processes (paper §6.3).

    PAC keys are shared per OS process, so when several WASM instances
    run in one process Cage draws one process key and a random
    {e per-instance modifier}: the modifier enters the signature
    computation, so a function pointer signed in one instance never
    authenticates in another — the WebOS scenario of §3. *)

type t

val create : ?config:Config.t -> ?seed:int -> unit -> t
(** A process with one PAC key. [config] (default {!Config.full})
    applies to every spawned instance. *)

val spawn :
  ?meter:Wasm.Meter.t ->
  ?imports:(string * string * Wasm.Instance.host_func) list ->
  ?lane:int ->
  t ->
  Wasm.Ast.module_ ->
  Wasm.Instance.t
(** Instantiate a module inside the process: shared PAC key, fresh
    random modifier. [lane] is the instance's chaos-lane identity for
    {!Arch.Fault_inject} stream splitting; it defaults to the spawn
    ordinal within this process (stable across runs, independent of
    scheduling). Pools spanning several processes pass an explicit
    globally-unique lane per slot.
    @raise Sandbox.Too_many_sandboxes past the configuration's §6.4
    sandbox capacity. *)

val lane : t -> Wasm.Instance.t -> int
(** The chaos lane assigned at spawn (0 for foreign instances). *)

val instance_count : t -> int

val instances : t -> Wasm.Instance.t list
(** Live instances in spawn order (supervisors iterate siblings). *)

val poll_deferred_faults : t -> (int * Arch.Mte.fault) list
(** Kernel-style TFSR inspection across the process (paper §4.2): drain
    every instance's sticky deferred tag fault, returning
    (instance id, fault) pairs in spawn order. Empty when no
    Async/Asymmetric mismatch occurred since the last poll. *)
