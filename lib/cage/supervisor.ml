(** Crash containment: run guests so that no failure escapes.

    Linux's real MTE deployment is defined by its SIGSEGV report format
    and per-process TFSR handling; this module is our analogue. Every
    guest invocation runs under a supervisor that converts {e all}
    failures — tag faults, PAC authentication failures, bounds traps,
    watchdog exhaustion, call-stack exhaustion, [unreachable], host
    function exceptions — into a structured {!outcome}, emits an
    MTE-SIGSEGV-style {!post_mortem}, and quarantines the faulting
    instance while sibling instances in the same {!Process} keep
    running (the §6.3 modifier-isolation story made observable). *)

type fault_class =
  | Tag_fault           (** synchronous MTE mismatch ("tag fault:") *)
  | Deferred_tag_fault  (** TFSR report at a sync point ("deferred:") *)
  | Pac_auth            (** failed [autda] under FEAT_FPAC ("pac auth:") *)
  | Bounds              (** sandbox violation: out-of-bounds span or
                            non-canonical address ("bounds:") *)
  | Fuel                (** watchdog budget exhausted ("fuel:") *)
  | Stack               (** call-stack exhaustion ("stack:") *)
  | Unreachable         (** the guest executed [unreachable] *)
  | Guest_trap          (** any other wasm trap (div by zero, bad
                            indirect call, ...) *)
  | Host_error          (** an exception escaped a host function *)
  | Quarantine          (** invocation refused: instance quarantined *)

let fault_class_to_string = function
  | Tag_fault -> "tag fault"
  | Deferred_tag_fault -> "deferred tag fault"
  | Pac_auth -> "pac auth failure"
  | Bounds -> "bounds violation"
  | Fuel -> "out of fuel"
  | Stack -> "call stack exhausted"
  | Unreachable -> "unreachable"
  | Guest_trap -> "guest trap"
  | Host_error -> "host error"
  | Quarantine -> "quarantined"

(** Classify a trap message by its stable prefix (the taxonomy
    [Wasm.Checked]/[Wasm.Exec] emit) — structure, not substring
    fishing. *)
let classify msg =
  let has p = String.length msg >= String.length p && String.sub msg 0 (String.length p) = p in
  if has "deferred:" then Deferred_tag_fault
  else if has "tag fault:" then Tag_fault
  else if has "pac auth:" then Pac_auth
  else if has "bounds:" then Bounds
  else if has "fuel:" then Fuel
  else if has "stack:" then Stack
  else if has "unreachable" then Unreachable
  else Guest_trap

type post_mortem = {
  pm_class : fault_class;
  pm_message : string;
  pm_instance : int;             (** instance id *)
  pm_mode : Arch.Mte.mode;
  pm_fault : Arch.Mte.fault option;
      (** the synchronous fault, structured: address, pointer tag vs
          memory tag, access kind *)
  pm_pending : Arch.Mte.fault option;
      (** TFSR drained at crash time — a deferred fault latched before
          the trap must not be lost when the trap unwinds *)
  pm_backtrace : string list;    (** wasm frames, innermost first *)
  pm_ops : int;                  (** meter snapshot: total events *)
  pm_mem_accesses : int;
  pm_fuel_left : int;            (** remaining watchdog budget, -1 if off *)
  pm_injections : string list;   (** chaos injections active at crash *)
  pm_trace : string list;
      (** black-box flight recording: the last K trace events before the
          crash, oldest first — empty when no tracer was installed *)
}

let pp_post_mortem ppf pm =
  let open Format in
  fprintf ppf "@[<v>== post-mortem: instance %d (mte %a) ==@," pm.pm_instance
    Arch.Mte.pp_mode pm.pm_mode;
  fprintf ppf "cause     : %s@," (fault_class_to_string pm.pm_class);
  fprintf ppf "message   : %s@," pm.pm_message;
  (match pm.pm_fault with
  | Some f ->
      fprintf ppf "fault addr: 0x%016Lx@," f.Arch.Mte.fault_addr;
      fprintf ppf "ptr tag   : %a, memory %a, %s of %Ld byte(s)@,"
        Arch.Tag.pp f.Arch.Mte.ptr_tag
        (pp_print_option
           ~none:(fun ppf () -> pp_print_string ppf "<mixed/unmapped>")
           Arch.Tag.pp)
        f.Arch.Mte.mem_tag
        (match f.Arch.Mte.fault_access with
        | Arch.Mte.Load -> "load"
        | Arch.Mte.Store -> "store")
        f.Arch.Mte.fault_len
  | None -> ());
  (match pm.pm_pending with
  | Some f ->
      fprintf ppf "pending   : TFSR held %s at 0x%Lx (drained at crash)@,"
        (match f.Arch.Mte.fault_access with
        | Arch.Mte.Load -> "load fault"
        | Arch.Mte.Store -> "store fault")
        f.Arch.Mte.fault_addr
  | None -> ());
  (match pm.pm_backtrace with
  | [] -> ()
  | bt ->
      fprintf ppf "backtrace :";
      List.iteri (fun i f -> fprintf ppf " #%d %s" i f) bt;
      fprintf ppf "@,");
  fprintf ppf "meter     : %d ops, %d memory accesses@," pm.pm_ops
    pm.pm_mem_accesses;
  if pm.pm_fuel_left >= 0 then fprintf ppf "fuel left : %d@," pm.pm_fuel_left;
  (match pm.pm_injections with
  | [] -> ()
  | inj ->
      fprintf ppf "injected  : %s@," (String.concat "; " inj));
  (match pm.pm_trace with
  | [] -> ()
  | tr ->
      fprintf ppf "flight rec: last %d events@," (List.length tr);
      List.iter (fun l -> fprintf ppf "  %s@," l) tr);
  fprintf ppf "@]"

type outcome =
  | Finished of Wasm.Values.t list
  | Crashed of post_mortem

type t = {
  process : Process.t;
  fuel_budget : int;  (** per-invocation watchdog budget; -1 = off *)
  black_box : int;    (** trace events embedded in a post-mortem *)
  max_quarantined : int;
      (** retained post-mortems cap: a crash storm keeps only the
          newest this-many records (membership is never dropped) *)
  mutable quarantined : (int * post_mortem) list;  (* newest first *)
  mutable quarantine_ids : int list;
      (* membership, separate from the capped post-mortem store: an
         evicted record must not silently un-quarantine its instance *)
}

let create ?(fuel = -1) ?(black_box = 8) ?(max_quarantined = 256) process =
  if max_quarantined < 1 then
    invalid_arg "Supervisor.create: max_quarantined must be >= 1";
  { process; fuel_budget = fuel; black_box; max_quarantined;
    quarantined = []; quarantine_ids = [] }

let process t = t.process

let spawn ?meter ?imports ?lane t m =
  Process.spawn ?meter ?imports ?lane t.process m

let quarantined t = List.rev t.quarantined

let is_quarantined t (inst : Wasm.Instance.t) =
  List.mem inst.Wasm.Instance.id t.quarantine_ids

(** Lift an instance out of quarantine — the pool's self-healing path,
    called after the slot has been restored from its frozen snapshot.
    Retained post-mortems are kept (the crash history stays
    inspectable); only the membership bit clears. *)
let release t (inst : Wasm.Instance.t) =
  t.quarantine_ids <-
    List.filter (fun id -> id <> inst.Wasm.Instance.id) t.quarantine_ids

(* Retain a fresh post-mortem under the cap: oldest-first eviction so a
   crash storm cannot grow supervisor memory without bound. *)
let retain t id pm =
  if not (List.mem id t.quarantine_ids) then
    t.quarantine_ids <- id :: t.quarantine_ids;
  let q = (id, pm) :: t.quarantined in
  if List.length q > t.max_quarantined then begin
    let keep = List.filteri (fun i _ -> i < t.max_quarantined) q in
    let evicted = List.filteri (fun i _ -> i >= t.max_quarantined) q in
    List.iter
      (fun (eid, _) ->
        if Obs.Hook.enabled () then
          Obs.Hook.event (Obs.Event.Quarantine_evicted { instance = eid }))
      evicted;
    t.quarantined <- keep
  end
  else t.quarantined <- q

let snapshot ?(black_box = 0) (inst : Wasm.Instance.t) cls msg =
  let mode =
    match inst.Wasm.Instance.mte with
    | Some m -> Arch.Mte.mode m
    | None -> Arch.Mte.Disabled
  in
  (* Drain the sticky TFSR: a deferred fault latched before a
     synchronous trap unwound the interpreter must surface here, in the
     post-mortem, not silently survive into the next invocation. *)
  let pending =
    match inst.Wasm.Instance.mte with
    | Some m -> Arch.Mte.take_pending m
    | None -> None
  in
  let ops, mem_accesses =
    match inst.Wasm.Instance.meter with
    | Some m -> (Wasm.Meter.total m, Wasm.Meter.mem_accesses m)
    | None -> (0, 0)
  in
  let injections =
    match Arch.Fault_inject.active () with
    | None -> []
    | Some e ->
        List.map
          (Format.asprintf "%a" Arch.Fault_inject.pp_injection)
          (Arch.Fault_inject.injections e)
  in
  {
    pm_class = cls;
    pm_message = msg;
    pm_instance = inst.Wasm.Instance.id;
    pm_mode = mode;
    pm_fault = inst.Wasm.Instance.last_fault;
    pm_pending = pending;
    pm_backtrace =
      List.map (Wasm.Instance.func_name inst) inst.Wasm.Instance.call_stack;
    pm_ops = ops;
    pm_mem_accesses = mem_accesses;
    pm_fuel_left = inst.Wasm.Instance.fuel;
    pm_injections = injections;
    pm_trace = Obs.Hook.recent_events black_box;
  }

(** Run [f] — an invocation on [inst] — under the supervisor. Every
    failure becomes a [Crashed] outcome with a post-mortem; no OCaml
    exception escapes. A crash quarantines the instance: further
    invocations are refused with a [Quarantine] outcome while siblings
    in the same process keep running. *)
let run_thunk t (inst : Wasm.Instance.t) f =
  if is_quarantined t inst then
    Crashed
      (snapshot ~black_box:t.black_box inst Quarantine
         (Printf.sprintf "instance %d is quarantined" inst.Wasm.Instance.id))
  else begin
    (* Every draw the chaos engine makes during this invocation is
       charged to (and randomized by) this instance's stable lane, so
       pool-concurrent runs replay identical per-instance fault
       sequences regardless of dispatch order. *)
    Arch.Fault_inject.set_lane (Process.lane t.process inst);
    if Obs.Hook.enabled () then Obs.Hook.set_instance inst.Wasm.Instance.id;
    inst.Wasm.Instance.fuel <- t.fuel_budget;
    inst.Wasm.Instance.last_fault <- None;
    inst.Wasm.Instance.call_stack <- [];
    (* Fuel consumed by this invocation (the fuel-per-call histogram);
       only meaningful when the watchdog is on. *)
    let note_fuel () =
      if t.fuel_budget >= 0 && Obs.Hook.enabled () then
        Obs.Hook.fuel_used (t.fuel_budget - max 0 inst.Wasm.Instance.fuel)
    in
    let crash cls msg =
      note_fuel ();
      (* The crash record is the black box's final line: the flight
         recording embedded below ends with the impact itself. *)
      if Obs.Hook.enabled () then
        Obs.Hook.event
          (Obs.Event.Crash { cls = fault_class_to_string cls; msg });
      let pm = snapshot ~black_box:t.black_box inst cls msg in
      inst.Wasm.Instance.fuel <- -1;
      inst.Wasm.Instance.call_stack <- [];
      retain t inst.Wasm.Instance.id pm;
      Crashed pm
    in
    match f () with
    | vs ->
        note_fuel ();
        inst.Wasm.Instance.fuel <- -1;
        Finished vs
    | exception Wasm.Instance.Trap msg -> crash (classify msg) msg
    | exception e -> crash Host_error ("host: " ^ Printexc.to_string e)
  end

(** Invoke exported [name] on [inst] under the supervisor. *)
let run t inst name args =
  run_thunk t inst (fun () -> Wasm.Exec.invoke inst name args)
