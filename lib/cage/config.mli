(** Runtime configurations — the benchmark variants of paper Table 3.

    A configuration fixes the pointer width, how the sandbox (external
    memory safety) is enforced, whether the internal memory-safety
    extension is active, whether function pointers are signed, and how
    the 4 MTE tag bits are split between the two uses (paper Fig. 13). *)

(** How the runtime keeps a guest inside its linear memory. *)
type sandbox =
  | Guard_pages
      (** virtual-memory trick; only sound for 32-bit pointers *)
  | Software_bounds  (** explicit cmp+branch before every access *)
  | Mte_sandbox      (** paper §6.4: per-instance tag on the heap base *)

val sandbox_to_string : sandbox -> string

type t = {
  name : string;
  ptr64 : bool;              (** memory64? *)
  sandbox : sandbox;
  internal_safety : bool;    (** segments + tag checks (Eqs. 1-10) *)
  ptr_auth : bool;           (** sign/authenticate function pointers *)
  mte_mode : Arch.Mte.mode;  (** how violations surface *)
  elide_checks : bool;
      (** skip MTE granule checks the static analyzer proved redundant;
          off in every Table 3 variant (see {!with_elision}) *)
  elide_bounds : bool;
      (** full-check elision: also skip the sandbox span check where the
          span is proven inside a created segment (see
          {!with_bounds_elision}) *)
  arena : bool;
      (** escape-driven tag-traffic elision: lower non-escaping
          [segment.new]/[segment.free] to tag-write-free arena form (see
          {!with_arena}) *)
  spec_safe_only : bool;
      (** keep checks provable architecturally but not under the
          Swivel-style speculation model (see {!with_spec_safe_only}) *)
  engine : Wasm.Instance.engine;
      (** which execution engine drives instances of this variant;
          [Threaded] in every named variant (see {!with_engine}) *)
}

(** {1 The Table 3 rows} *)

(** 32-bit, guard pages, no protection. *)
val baseline_wasm32 : t

(** 64-bit, software bounds checks. *)
val baseline_wasm64 : t

(** Baseline wasm64 plus internal memory safety (segments). *)
val mem_safety : t

(** Baseline wasm64 plus pointer authentication only. *)
val ptr_auth : t

(** MTE sandboxing replaces the software bounds checks. *)
val sandboxing : t

(** Everything combined: the CAGE row. *)
val full : t

val with_elision : t -> t
(** The same variant with static check elision switched on. The name is
    kept so reports keyed by configuration stay comparable. *)

val with_bounds_elision : t -> t
(** Tag elision plus full-check elision: accesses whose span is proven
    inside a created segment lose the bounds compare too. *)

val with_arena : t -> t
(** Tag elision plus escape-driven tag-traffic elision: non-escaping
    segments allocate through the tag-write-free arena form. *)

val with_spec_safe_only : t -> t
(** Keep every check whose proof does not survive the speculation
    model — the [--no-spec-elide] deployment mode. *)

val with_engine : Wasm.Instance.engine -> t -> t
(** The same variant driven by a specific execution engine. Engine
    choice must never change observable results — outcomes, meters,
    access counts and goldens are engine-invariant — only wall-clock
    time. *)

val table3 : t list
(** All six variants, in the paper's order. *)

(** {1 Derived properties} *)

val combined : t -> bool
(** Internal safety and MTE sandboxing share the tag bits (Fig. 13b). *)

val usable_tags : t -> int
(** Distinct allocation tags the guest allocator draws from: 15
    standalone, 7 when combined with sandboxing (§7.4's collision
    probabilities 1/15 and 1/7). *)

val exclusion : t -> Arch.Tag.Exclude.t
(** The tag-exclusion set the runtime installs via prctl (§6.4): tag 0
    always (guard slots, untagged segments, runtime memory); in combined
    mode also every tag with bit 56 clear plus the guest's own untagged
    pattern. *)

val index_mask : t -> (Arch.Ptr.t -> Arch.Ptr.t) option
(** Pointer-index mask applied before effective-address computation
    (Fig. 13): full tag field when sandbox-only, bit 56 when combined,
    [None] when MTE sandboxing is off. *)

val max_sandboxes : t -> int
(** Concurrently isolated instances per process: 15 under MTE
    sandboxing, 1 in combined mode, unbounded otherwise (§6.4). *)

val instance_config :
  ?meter:Wasm.Meter.t -> ?seed:int -> t -> Wasm.Instance.config
(** Interpreter configuration implementing this variant. *)

val pp : Format.formatter -> t -> unit
