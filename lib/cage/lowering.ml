(** Cost-model lowering: what a Cranelift-with-Cage backend emits.

    The interpreter executes a workload once per configuration and
    records semantic events in a {!Wasm.Meter.t}. This module prices
    that event record as native AArch64 work on a given core:

    - every wasm operation expands to a small native instruction mix
      (based on how wasmtime's Cranelift lowers the corresponding op);
    - the sandbox strategy decides whether each memory access pays a
      software bounds check (cmp + branch, whose {e effective} cost is
      the core's calibrated [bounds_check_cost] — tiny when the core
      speculates through it, large in order) or an MTE tag check
      ([mte_check_cost]);
    - the Cage instructions expand to their MTE/PAC sequences: an
      [irg]/[addg] plus one [stg] per 16-byte granule for segment
      operations, [pacda]/[autda] for pointer signing.

    The result is cycles, converted to seconds at the core's clock. The
    same constants reproduce the raw-hardware microbenchmarks (Fig. 4,
    Table 1), so the PolyBench overheads of Fig. 14 are derived, not
    fitted. *)

open Arch

(** Native-instruction expansion of one wasm operation, as (kind,
    instructions-per-event) pairs. *)
let expansion (cfg : Config.t) (m : Wasm.Meter.t) : (Insn.kind * float) list =
  let f = float_of_int in
  let loads = f m.loads and stores = f m.stores in
  let accesses = loads +. stores in
  let base =
    [
      (* Most constants fold into immediates or addressing modes. *)
      (Insn.Alu, 0.4 *. f m.const);
      (* Locals are register-allocated; a fraction spill. *)
      (Insn.Alu, 0.25 *. f m.local_access);
      (Insn.Load, 0.5 *. f m.global_access);
      (Insn.Alu, 0.5 *. f m.global_access);
      (Insn.Alu, f m.ialu);
      (Insn.Mul, f m.imul);
      (Insn.IDiv, f m.idiv);
      (Insn.FAlu, f m.falu);
      (Insn.FMul, f m.fmul);
      (Insn.FDiv, f m.fdiv);
      (* most integer-width conversions fold into addressing modes or
         zero-cost register views on aarch64 *)
      (Insn.Alu, 0.3 *. f m.cvt);
      (Insn.Csel, f m.select);
      (Insn.Cmp, 0.5 *. f m.branch);
      (Insn.Branch, f m.branch);
      (* call: spill/reload + bl + prologue *)
      (Insn.Alu, 4.0 *. f m.call);
      (Insn.Branch, f m.call);
      (* call_indirect: table bounds check, load entry, signature
         compare, blr *)
      (Insn.Load, 2.0 *. f m.call_indirect);
      (Insn.Cmp, 2.0 *. f m.call_indirect);
      (Insn.BranchIndirect, f m.call_indirect);
      (Insn.Branch, f m.return_);
      (* one addressing-mode op per access on average *)
      (Insn.Load, loads);
      (Insn.Store, stores);
      (Insn.Alu, 0.5 *. accesses);
      (* bulk fill/copy setup: pointer resolve, length/bounds compare,
         dispatch into the memset/memmove stub — the streamed traffic
         itself is already metered as 16-byte-chunk loads/stores *)
      (Insn.Alu, 2.0 *. f m.bulk_fill);
      (Insn.Cmp, f m.bulk_fill);
      (Insn.Branch, f m.bulk_fill);
      (Insn.Alu, 3.0 *. f m.bulk_copy);
      (Insn.Cmp, 2.0 *. f m.bulk_copy);
      (Insn.Branch, f m.bulk_copy);
    ]
  in
  (* The sandbox checks themselves (cmp+branch, or the Fig. 13 mask
     folded into the address computation) are priced as per-access
     cycle costs in {!cycles}: out-of-order cores speculate through
     them, so pricing them as issued instructions would badly
     overestimate — the calibrated [bounds_check_cost]/[mte_check_cost]
     capture their effective cost instead. *)
  let sandbox_insns = [] in
  let segment_insns =
    if not cfg.internal_safety then []
    else
      let news = f m.seg_new and frees = f m.seg_free in
      [
        (* segment.new: irg to draw a tag, stg per granule (zeroing
           variants also initialise); address arithmetic *)
        (Insn.Irg, news);
        (Insn.Alu, 2.0 *. news);
        (Insn.Stzg, f m.seg_new_granules);
        (* arena-lowered segment.new still zeroes its payload, but with
           plain stores instead of the stzg tag-write pairs; the
           lowered free's per-granule retag disappears entirely *)
        (Insn.Store, f m.arena_new_granules);
        (* segment.set_tag: addg-style tag transfer + stg per granule *)
        (Insn.Addg, f m.seg_set_tag);
        (Insn.Stg, f m.seg_set_tag_granules);
        (* segment.free: ldg to verify ownership, retag granules *)
        (Insn.Ldg, frees);
        (Insn.Addg, frees);
        (Insn.Stg, f m.seg_free_granules);
      ]
  in
  let pac_insns =
    if not cfg.ptr_auth then []
    else [ (Insn.Pacda, f m.ptr_sign); (Insn.Autda, f m.ptr_auth) ]
  in
  base @ sandbox_insns @ segment_insns @ pac_insns

(** Total native instructions after expansion. *)
let native_instructions cfg m =
  List.fold_left (fun acc (_, c) -> acc +. c) 0.0 (expansion cfg m)

(** Price a metered run on [cpu] under configuration [cfg], in cycles. *)
let cycles (cpu : Cpu_model.t) (cfg : Config.t) (m : Wasm.Meter.t) : float =
  let mix = expansion cfg m in
  (* Throughput-limited baseline: each instruction kind cannot exceed
     its issue rate; the overall stream cannot exceed the core's
     exploitable ILP (base_cpi). *)
  let issue_cycles =
    List.fold_left
      (fun acc (kind, count) ->
        let tp = (cpu.perf kind).tp in
        acc +. Float.max (count /. tp) (count *. cpu.base_cpi))
      0.0 mix
  in
  (* Long-latency ops whose results are consumed promptly expose part of
     their latency even on out-of-order cores. *)
  let latency_exposure =
    let lat kind = (cpu.perf kind).lat in
    let expose = if cpu.inorder then 0.8 else 0.25 in
    (* pointer authentication's 5-cycle latency hides under the
       indirect-dispatch serialisation it always precedes (the paper's
       "not noticeable" observation), so it is not exposed here *)
    expose
    *. ((float_of_int m.idiv *. lat Insn.IDiv)
       +. (float_of_int m.fdiv *. lat Insn.FDiv))
  in
  let dispatch_cycles =
    float_of_int m.call_indirect *. cpu.indirect_call_cost
  in
  let accesses = float_of_int (Wasm.Meter.mem_accesses m) in
  (* Accesses whose MTE granule check was statically elided pay no tag
     check; the software bounds compare survives unless the span proof
     also held ([elided_bounds] — full-check elision). *)
  let tag_checked =
    Float.max 0.0 (accesses -. float_of_int m.elided_checks)
  in
  let bounds_checked =
    Float.max 0.0 (accesses -. float_of_int m.elided_bounds)
  in
  let check_cycles =
    match cfg.sandbox with
    | Config.Software_bounds -> bounds_checked *. cpu.bounds_check_cost
    | Config.Mte_sandbox -> tag_checked *. cpu.mte_check_cost
    | Config.Guard_pages -> 0.0
  in
  (* Internal safety also tag-checks every access (the hardware does it
     for free in parallel with the cache lookup; the marginal cost is
     the same cache-resident check penalty). *)
  let internal_check_cycles =
    if cfg.internal_safety && cfg.sandbox <> Config.Mte_sandbox then
      tag_checked *. cpu.mte_check_cost
    else 0.0
  in
  issue_cycles +. latency_exposure +. dispatch_cycles +. check_cycles
  +. internal_check_cycles

(** Price in seconds at the core's clock. *)
let seconds cpu cfg m = cycles cpu cfg m /. (cpu.Cpu_model.freq_ghz *. 1e9)

(** Startup cost of instantiating a module with [mem_bytes] of linear
    memory under [cfg] (paper §7.2 "startup overhead"): the runtime's
    fixed instantiation work plus zeroing — or zero-and-tagging, which
    the [stzg] family does in the same pass — of the memory. *)
let startup_seconds (cpu : Cpu_model.t) (cfg : Config.t) ~mem_bytes =
  (* Module setup plus delivering zeroed memory. The kernel must clear
     the pages either way; with MTE it clears-and-tags them in the same
     pass using the stzg family (paper: "the overhead of tagging the
     linear memory is hidden by the runtime's startup overhead"), so
     Cage pays only the extra tag-PA traffic. *)
  let runtime_fixed = 250_000.0 (* cycles *) in
  let zeroing =
    match cfg.sandbox with
    | Config.Mte_sandbox ->
        Timing.stream_seconds cpu ~mode:cfg.mte_mode
          ~unchecked_bytes:mem_bytes
          ~tag_granules:(mem_bytes /. 16.0)
          ~insn_mix:[ (Insn.Stzg, mem_bytes /. 16.0) ]
          ()
    | _ ->
        Timing.stream_seconds cpu ~mode:Arch.Mte.Disabled
          ~unchecked_bytes:mem_bytes
          ~insn_mix:[ (Insn.Store, mem_bytes /. 16.0) ]
          ()
  in
  (runtime_fixed /. (cpu.freq_ghz *. 1e9)) +. zeroing
