(** Segment escape/lifetime analysis: which [segment.new]/[segment.free]
    pairs can drop their tag-plane traffic entirely (arena lowering).

    Tag writes are the dominant residual cost of segment allocation —
    [segment.new] tags every 16-byte granule and [segment.free] retags
    them back — yet for a segment that never escapes the analyzed call
    tree and whose every access is elided anyway, nobody ever {e reads}
    those tags. Such a segment can live in an "arena": allocation keeps
    its validation, zero-fill and random-tag draw (so pointer bit
    patterns, and therefore memory digests, are unchanged) but skips
    the tag-plane writes; free skips the matches-check and the retag.

    Soundness is a closure argument over {!Absint}'s per-site facts. A
    site is an {e arena candidate} when
    - it is a heap site with a known allocating instruction,
    - it is a singleton ([s_multi] false): loop allocations where
      several concrete segments share the abstract site are out,
    - it never escapes ([s_escaped] false) and its tag bits never ride
      on a value the analysis lost track of ([s_arena_unsafe] false) —
      so no {e checked} access can ever consult its (absent) tags,
    - every recorded access through it is elided under the active
      elision plan and none was unprovable ([s_unproven_access]),
    - every [segment.free] that can free it is itself lowered.

    The last point is mutual: a free instruction is lowered only when
    every site reaching it is a candidate and nothing made it dirty
    (a maybe-freed operand, an untracked operand, a blacklisted
    context). Candidacy therefore shrinks to a fixed point: a rejected
    site un-lowers its frees, which may reject further sites sharing
    those frees. A [segment.new] is lowered when all sites born at that
    instruction are final candidates — lowering is per instruction,
    so every call-string context must agree. *)

type t = {
  arena : Bytes.t array;
      (** per local function, one bit per basic-instruction id: set on
          [segment.new]/[segment.free] instructions lowered to arena
          (tag-write-free) form; shaped like the elision bitsets *)
  sites_heap : int;  (** heap allocation sites the analysis tracked *)
  sites_arena : int;  (** of those, proven arena-eligible *)
  news : int;  (** [segment.new] instructions lowered *)
  frees : int;  (** [segment.free] instructions lowered *)
}

let no_arena =
  { arena = [||]; sites_heap = 0; sites_arena = 0; news = 0; frees = 0 }

(* Is the tag check at (local function, basic id) elided under the
   plan's bitsets? Mirrors Wasm.Code.elidable without depending on it. *)
let elided (bitsets : Bytes.t array) lidx id =
  lidx >= 0
  && lidx < Array.length bitsets
  &&
  let b = bitsets.(lidx) in
  let byte = id lsr 3 in
  byte < Bytes.length b
  && Char.code (Bytes.get b byte) land (1 lsl (id land 7)) <> 0

let compute (a : Absint.analysis) ~(bitsets : Bytes.t array) : t =
  let sites =
    List.filter (fun s -> s.Absint.s_kind = Absint.Heap) a.Absint.a_sites
  in
  let sites_heap = List.length sites in
  (* initial candidacy from the per-site facts alone *)
  let cand = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let ok =
        s.Absint.s_lidx >= 0
        && (not s.Absint.s_multi)
        && (not s.Absint.s_escaped)
        && (not (s.Absint.s_escaped_dead && s.Absint.s_reincarnated))
        && (not s.Absint.s_arena_unsafe)
        && (not s.Absint.s_unproven_access)
        && List.for_all
             (fun (lidx, id) -> elided bitsets lidx id)
             s.Absint.s_accesses
      in
      Hashtbl.replace cand s.Absint.s_id ok)
    sites;
  let is_cand s =
    match Hashtbl.find_opt cand s.Absint.s_id with
    | Some b -> b
    | None -> false
  in
  (* a free is lowered when clean and all its sites are candidates; a
     candidate needs all frees that can reach it lowered — iterate the
     (monotonically shrinking) candidacy to a fixed point *)
  let free_lowered (_, (fsites, dirty)) =
    (not dirty) && fsites <> [] && List.for_all is_cand fsites
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun s ->
        if is_cand s then begin
          let still =
            List.for_all
              (fun ((_, (fsites, _)) as fr) ->
                if List.memq s fsites then free_lowered fr else true)
              a.Absint.a_frees
          in
          if not still then begin
            Hashtbl.replace cand s.Absint.s_id false;
            changed := true
          end
        end)
      sites
  done;
  let sites_arena = List.length (List.filter is_cand sites) in
  if sites_arena = 0 then no_arena
  else begin
    let nfuncs = Array.length a.Absint.a_nbasic in
    let arena =
      Array.init nfuncs (fun i ->
          Bytes.make ((a.Absint.a_nbasic.(i) + 7) / 8) '\000')
    in
    let set lidx id =
      let b = arena.(lidx) in
      let byte = id lsr 3 in
      Bytes.set b byte
        (Char.chr (Char.code (Bytes.get b byte) lor (1 lsl (id land 7))))
    in
    (* segment.new: all sites born at the instruction must agree *)
    let by_new = Hashtbl.create 16 in
    List.iter
      (fun s ->
        let key = (s.Absint.s_lidx, s.Absint.s_instr) in
        let prev =
          match Hashtbl.find_opt by_new key with Some b -> b | None -> true
        in
        if s.Absint.s_lidx >= 0 then
          Hashtbl.replace by_new key (prev && is_cand s))
      sites;
    let news = ref 0 and frees = ref 0 in
    Hashtbl.iter
      (fun (lidx, id) ok ->
        if ok && lidx < nfuncs then begin
          set lidx id;
          incr news
        end)
      by_new;
    List.iter
      (fun (((lidx, id), _) as fr) ->
        if free_lowered fr && lidx >= 0 && lidx < nfuncs then begin
          set lidx id;
          incr frees
        end)
      a.Absint.a_frees;
    (* drop all-zero rows so the runtime's per-function fast path
       (empty bitset = nothing lowered) stays cheap *)
    let arena =
      Array.map
        (fun b ->
          if Bytes.exists (fun c -> c <> '\000') b then b else Bytes.empty)
        arena
    in
    { arena; sites_heap; sites_arena; news = !news; frees = !frees }
  end
