(** Call graph over a compiled module, as the interprocedural substrate
    for {!Summary}.

    Nodes are function indices in the module's index space (imports
    first, then local functions). Edges are the direct [call]s that
    appear syntactically in a body; [call_indirect] sites are recorded
    as a per-function flag plus the set of functions that can possibly
    be reached through the table (every function named by an element
    segment — the table is only written at instantiation, so this set
    is exact for the module alone and conservative once a host could
    mutate the table).

    {!sccs} returns Tarjan's strongly connected components in reverse
    topological order (callees before callers), which is the order the
    summary fixpoint consumes: by the time an SCC is processed, every
    summary it depends on outside the component is final, and only the
    cycle inside the component needs iteration. *)

module Ast = Wasm.Ast
module Types = Wasm.Types

type t = {
  m : Ast.module_;
  n_imports : int;
  n_funcs : int;  (** total, imports included *)
  callees : int list array;
      (** direct-call targets per function (imports have none) *)
  indirect : bool array;  (** function contains a [call_indirect] *)
  table_targets : int list;
      (** functions reachable through the table (element segments) *)
}

let rec walk_instr acc (i : Ast.instr) =
  match i with
  | Ast.Call f -> (f :: fst acc, snd acc)
  | Ast.CallIndirect _ -> (fst acc, true)
  | Ast.Block (_, b) | Ast.Loop (_, b) -> walk_body acc b
  | Ast.If (_, t, e) -> walk_body (walk_body acc t) e
  | _ -> acc

and walk_body acc body = List.fold_left walk_instr acc body

let dedup l = List.sort_uniq compare l

let build (m : Ast.module_) : t =
  let n_imports = Ast.num_imports m in
  let n_local = List.length m.funcs in
  let n_funcs = n_imports + n_local in
  let callees = Array.make n_funcs [] in
  let indirect = Array.make n_funcs false in
  List.iteri
    (fun i (f : Ast.func) ->
      let calls, ind = walk_body ([], false) f.body in
      callees.(n_imports + i) <- dedup calls;
      indirect.(n_imports + i) <- ind)
    m.funcs;
  let table_targets =
    dedup (List.concat_map (fun (e : Ast.elem) -> e.e_funcs) m.elems)
  in
  { m; n_imports; n_funcs; callees; indirect; table_targets }

(** Functions a [call_indirect] of type index [tyidx] can reach:
    table-resident functions whose type matches. *)
let indirect_targets t tyidx =
  let ty = Ast.func_type_of t.m tyidx in
  List.filter
    (fun f ->
      f >= 0 && f < t.n_funcs
      && Types.func_type_equal (Ast.type_of_func t.m f) ty)
    t.table_targets

(** Tarjan SCCs in reverse topological order: for every edge u -> v in
    different components, v's component appears before u's. *)
let sccs (t : t) : int list list =
  let n = t.n_funcs in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next = ref 0 in
  let out = ref [] in
  (* Iterative Tarjan: an explicit work stack of (node, remaining
     callees) frames, so deep recursion chains cannot blow the OCaml
     stack. *)
  let rec strongconnect v =
    index.(v) <- !next;
    lowlink.(v) <- !next;
    incr next;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if w >= 0 && w < n then
          if index.(w) < 0 then begin
            strongconnect w;
            if lowlink.(w) < lowlink.(v) then lowlink.(v) <- lowlink.(w)
          end
          else if on_stack.(w) && index.(w) < lowlink.(v) then
            lowlink.(v) <- index.(w))
      t.callees.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
      in
      out := pop [] :: !out
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  (* [out] collects components callers-first (a component is emitted
     only after everything it reaches); reversing yields callees
     first. *)
  List.rev !out

(** Whether function [f] sits on a call cycle (including self
    recursion): its SCC has more than one member, or it calls itself. *)
let recursive t f =
  List.mem f t.callees.(f)
  || List.exists (fun c -> List.length c > 1 && List.mem f c) (sccs t)
