(** Check-elision planning: turn {!Absint} verdicts into the
    per-function bitsets {!Wasm.Code.prepare} consumes.

    A tag bit is set only for verdict 1 — an access proven in-bounds on
    a definitely-live, single-allocation segment in {e every} analyzed
    context. A bounds bit needs only the in-segment half of the proof
    (a successfully created segment lies inside linear memory), so the
    tag set is a subset of the bounds set and the runtime keeps three
    access shapes: checked, tag-elided, fully elided. Unvisited
    accesses (verdict 0: dead code, or functions reachable only from
    the indirect-call table) stay checked.

    [~spec_safe] intersects the verdicts with a second analysis run
    under the Swivel-style speculation model ({!Absint.analyze}
    [~spec:true]): branch refinement is disabled there, so a proof that
    leaned on a bounds-check-style branch does not survive and the
    corresponding runtime check stays. [~arena] additionally runs
    {!Escape} over the resulting tag plan to lower non-escaping
    [segment.new]/[segment.free] pairs to tag-write-free form. *)

type plan = {
  bitsets : Bytes.t array;  (** per local function, indexed like the module *)
  bbitsets : Bytes.t array;
      (** bounds-elision bits: a superset of [bitsets] per function *)
  arena : Bytes.t array;
      (** arena bits for [segment.new]/[segment.free] ({!Escape}) *)
  proven : int;  (** accesses whose granule check will be skipped *)
  bproven : int;  (** accesses whose span check will be skipped *)
  considered : int;  (** accesses the analysis visited *)
  spec_unsafe : int;
      (** accesses provable architecturally but not under speculation *)
  arena_sites : int;  (** allocation sites lowered to the arena *)
  arena_news : int;  (** [segment.new] instructions losing tag writes *)
  arena_frees : int;  (** [segment.free] instructions losing tag writes *)
}

(* Verdict meet across two runs: unprovable (2) dominates, proven (1)
   survives only if no run refuted it. *)
let meet_rows a b = Array.map2 (fun ra rb -> Array.map2 max ra rb) a b

let bitsets_of_rows nbasic rows =
  let proven = ref 0 and considered = ref 0 in
  let bitsets =
    Array.mapi
      (fun i row ->
        let n = nbasic.(i) in
        let any = ref false in
        let b = Bytes.make ((n + 7) / 8) '\000' in
        Array.iteri
          (fun id v ->
            if v > 0 then incr considered;
            if v = 1 then begin
              incr proven;
              any := true;
              let byte = id lsr 3 in
              Bytes.set b byte
                (Char.chr (Char.code (Bytes.get b byte) lor (1 lsl (id land 7))))
            end)
          row;
        if !any then b else Bytes.empty)
      rows
  in
  (bitsets, !proven, !considered)

let count_spec_unsafe rows met =
  let n = ref 0 in
  Array.iteri
    (fun i row ->
      Array.iteri (fun id v -> if v = 1 && met.(i).(id) <> 1 then incr n) row)
    rows;
  !n

let of_analysis ?spec_analysis ?(arena = false) (a : Absint.analysis) : plan =
  let tag_rows, bounds_rows, spec_unsafe =
    match spec_analysis with
    | None -> (a.Absint.a_verdicts, a.Absint.a_bverdicts, 0)
    | Some (sp : Absint.analysis) ->
        let tr = meet_rows a.Absint.a_verdicts sp.Absint.a_verdicts in
        let br = meet_rows a.Absint.a_bverdicts sp.Absint.a_bverdicts in
        (tr, br, count_spec_unsafe a.Absint.a_verdicts tr)
  in
  let bitsets, proven, considered =
    bitsets_of_rows a.Absint.a_nbasic tag_rows
  in
  let bbitsets, bproven, _ = bitsets_of_rows a.Absint.a_nbasic bounds_rows in
  let esc = if arena then Escape.compute a ~bitsets else Escape.no_arena in
  {
    bitsets;
    bbitsets;
    arena = esc.Escape.arena;
    proven;
    bproven;
    considered;
    spec_unsafe;
    arena_sites = esc.Escape.sites_arena;
    arena_news = esc.Escape.news;
    arena_frees = esc.Escape.frees;
  }

let plan ?(spec_safe = false) ?(arena = false) (m : Wasm.Ast.module_) : plan =
  let a = Absint.analyze m in
  let spec_analysis =
    if spec_safe then Some (Absint.analyze ~spec:true m) else None
  in
  of_analysis ?spec_analysis ~arena a
