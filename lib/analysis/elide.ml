(** Check-elision planning: turn {!Absint} verdicts into the
    per-function bitsets {!Wasm.Code.prepare} consumes.

    A bit is set only for verdict 1 — an access proven in-bounds on a
    definitely-live, single-allocation segment in {e every} analyzed
    context. Unvisited accesses (verdict 0: dead code, or functions
    reachable from the indirect-call table) stay checked. *)

type plan = {
  bitsets : Bytes.t array;  (** per local function, indexed like the module *)
  proven : int;  (** accesses whose granule check will be skipped *)
  considered : int;  (** accesses the analysis visited *)
}

let of_analysis (a : Absint.analysis) : plan =
  let proven = ref 0 and considered = ref 0 in
  let bitsets =
    Array.mapi
      (fun i row ->
        let n = a.Absint.a_nbasic.(i) in
        let any = ref false in
        let b = Bytes.make ((n + 7) / 8) '\000' in
        Array.iteri
          (fun id v ->
            if v > 0 then incr considered;
            if v = 1 then begin
              incr proven;
              any := true;
              let byte = id lsr 3 in
              Bytes.set b byte
                (Char.chr (Char.code (Bytes.get b byte) lor (1 lsl (id land 7))))
            end)
          row;
        if !any then b else Bytes.empty)
      a.Absint.a_verdicts
  in
  { bitsets; proven = !proven; considered = !considered }

let plan (m : Wasm.Ast.module_) : plan = of_analysis (Absint.analyze m)
