(** Per-function interprocedural summaries.

    A summary is the contract {!Absint} consults where it cannot (or
    must not) inline a callee: recursive cycles, the call-depth cap and
    [call_indirect] sites. Before this module existed those arms
    applied a blanket havoc — every argument escaped and the liveness
    of {e every} tracked segment dropped to [MaybeFreed], killing any
    elision downstream of a recursive call. The summary records what
    the callee (and everything it can transitively reach) can actually
    do, so the common case — a recursive helper that frees nothing —
    keeps the caller's liveness lattice intact.

    Summaries are computed bottom-up over the {!Callgraph} SCCs with a
    fixed point inside each component, so mutual recursion converges:
    all facts are monotone booleans, and each SCC iterates until no
    member changes. Imported host functions get the pessimistic-escape
    summary (arguments escape, memory is touched) but are known never
    to free or retag guest segments — the WASI surface has no access to
    [segment.free] — which is exactly the assumption the inline
    analysis already made for direct host calls.

    The per-parameter [escapes] bits are deliberately coarse
    (flow-insensitive: a parameter escapes if it is read at all and the
    function, or anything it calls, has a leak channel). Precision for
    the hot paths still comes from call-string inlining; summaries only
    have to be {e sound} where inlining gives up. *)

module Ast = Wasm.Ast
module Types = Wasm.Types

type t = {
  sm_params : int;
  sm_results : int;
  sm_used : bool array;
      (** parameter is read somewhere in the body ([local.get i]) *)
  sm_escapes : bool array;
      (** parameter's provenance may be remembered beyond the call
          (stored, written to a global, returned, or handed to a
          callee that may do any of those) *)
  sm_mutates : bool;
      (** may run [segment.free] or [segment.set_tag] (transitively):
          the caller's liveness facts must be havocked *)
  sm_allocs : bool;  (** may run [segment.new] (transitively) *)
  sm_touches_mem : bool;
      (** may load/store/fill/copy linear memory (transitively): a
          pointer argument may be dereferenced with a checked access *)
  sm_host : bool;  (** an imported host function *)
}

(* --------------------------------------------------------------- *)
(* Per-function syntactic facts                                     *)
(* --------------------------------------------------------------- *)

type facts = {
  mutable f_used : bool array;
  mutable f_store : bool;  (* store/fill/copy/global.set: a leak channel *)
  mutable f_mem : bool;    (* any linear-memory access *)
  mutable f_free : bool;   (* segment.free or segment.set_tag *)
  mutable f_alloc : bool;  (* segment.new *)
  f_indirect_tys : int list ref;
}

let rec scan_instr nparams (fa : facts) (i : Ast.instr) =
  match i with
  | Ast.LocalGet i | Ast.LocalTee i ->
      if i < nparams then fa.f_used.(i) <- true
  | Ast.Store _ | Ast.GlobalSet _ -> fa.f_store <- true; fa.f_mem <- true
  | Ast.MemoryFill | Ast.MemoryCopy -> fa.f_store <- true; fa.f_mem <- true
  | Ast.Load _ -> fa.f_mem <- true
  | Ast.SegmentFree _ | Ast.SegmentSetTag _ -> fa.f_free <- true
  | Ast.SegmentNew _ -> fa.f_alloc <- true
  | Ast.CallIndirect ty ->
      fa.f_indirect_tys := ty :: !(fa.f_indirect_tys)
  | Ast.Block (_, b) | Ast.Loop (_, b) -> scan_body nparams fa b
  | Ast.If (_, t, e) -> scan_body nparams fa t; scan_body nparams fa e
  | _ -> ()

and scan_body nparams fa body = List.iter (scan_instr nparams fa) body

(* --------------------------------------------------------------- *)
(* Bottom-up SCC fixed point                                        *)
(* --------------------------------------------------------------- *)

let compute (cg : Callgraph.t) : t array =
  let n = cg.Callgraph.n_funcs in
  let ni = cg.Callgraph.n_imports in
  let ty_of f = Ast.type_of_func cg.Callgraph.m f in
  let facts =
    Array.init n (fun f ->
        let nparams = List.length (ty_of f).Types.params in
        let fa =
          {
            f_used = Array.make nparams (f < ni);
            f_store = false;
            f_mem = false;
            f_free = false;
            f_alloc = false;
            f_indirect_tys = ref [];
          }
        in
        if f >= ni then
          scan_body nparams fa (List.nth cg.Callgraph.m.Ast.funcs (f - ni)).Ast.body;
        fa)
  in
  let summaries =
    Array.init n (fun f ->
        let ty = ty_of f in
        let nparams = List.length ty.Types.params in
        let host = f < ni in
        {
          sm_params = nparams;
          sm_results = List.length ty.Types.results;
          sm_used = Array.copy facts.(f).f_used;
          (* hosts: arguments escape and memory is read, but the WASI
             surface never frees or retags guest segments *)
          sm_escapes = Array.make nparams host;
          sm_mutates = false;
          sm_allocs = false;
          sm_touches_mem = host;
          sm_host = host;
        })
  in
  (* Leakiness (does this function, or anything it reaches, have a leak
     channel?) is a per-function monotone bit; escapes.(i) is then
     used.(i) && leaky. *)
  let leaky = Array.init n (fun f -> f < ni || facts.(f).f_store
                                     || List.length (ty_of f).Types.results > 0)
  in
  let callees_of f =
    let direct = cg.Callgraph.callees.(f) in
    let indirect =
      if f < ni then []
      else
        List.concat_map (Callgraph.indirect_targets cg)
          !(facts.(f).f_indirect_tys)
    in
    direct @ indirect
  in
  let step f =
    if f < ni then false
    else begin
      let s = summaries.(f) in
      let fa = facts.(f) in
      let callees = callees_of f in
      let mutates =
        fa.f_free
        || List.exists (fun c -> summaries.(c).sm_mutates) callees
        (* an indirect call can also reach any future table write the
           module itself performs; element segments are the only writer
           here, so the type-filtered target set above is exact *)
      in
      let allocs =
        fa.f_alloc || List.exists (fun c -> summaries.(c).sm_allocs) callees
      in
      let touches =
        fa.f_mem
        || List.exists (fun c -> summaries.(c).sm_touches_mem) callees
      in
      let lk =
        leaky.(f) || List.exists (fun c -> leaky.(c)) callees
      in
      let changed =
        mutates <> s.sm_mutates || allocs <> s.sm_allocs
        || touches <> s.sm_touches_mem || lk <> leaky.(f)
      in
      leaky.(f) <- lk;
      summaries.(f) <-
        { s with sm_mutates = mutates; sm_allocs = allocs;
                 sm_touches_mem = touches };
      changed
    end
  in
  (* Reverse-topological SCC order: callees are final before callers;
     inside a component, iterate to the fixed point (all facts are
     monotone booleans, so this terminates in at most |scc| * 4
     rounds). *)
  List.iter
    (fun scc ->
      let continue_ = ref true in
      while !continue_ do
        continue_ := List.fold_left (fun ch f -> step f || ch) false scc
      done)
    (Callgraph.sccs cg);
  (* Final escape bits from the converged leakiness. *)
  Array.iteri
    (fun f s ->
      if f >= ni then
        Array.iteri
          (fun i used -> s.sm_escapes.(i) <- used && leaky.(f))
          s.sm_used)
    summaries;
  summaries

(** Join of summaries over the possible targets of a [call_indirect]
    of type [tyidx] (the conservative indirect-call summary). [None]
    when the table set is empty or targets disagree on arity — callers
    must then fall back to the blanket havoc. *)
let indirect_join (cg : Callgraph.t) (summaries : t array) tyidx : t option =
  match Callgraph.indirect_targets cg tyidx with
  | [] -> None
  | t0 :: _ as targets ->
      let s0 = summaries.(t0) in
      let nparams = s0.sm_params in
      let acc =
        {
          s0 with
          sm_used = Array.make nparams false;
          sm_escapes = Array.make nparams false;
        }
      in
      let join acc f =
        let s = summaries.(f) in
        for i = 0 to nparams - 1 do
          acc.sm_used.(i) <- acc.sm_used.(i) || s.sm_used.(i);
          acc.sm_escapes.(i) <- acc.sm_escapes.(i) || s.sm_escapes.(i)
        done;
        {
          acc with
          sm_mutates = acc.sm_mutates || s.sm_mutates;
          sm_allocs = acc.sm_allocs || s.sm_allocs;
          sm_touches_mem = acc.sm_touches_mem || s.sm_touches_mem;
          sm_host = acc.sm_host || s.sm_host;
        }
      in
      Some (List.fold_left join acc targets)

let pp ppf (s : t) =
  Format.fprintf ppf
    "params=%d results=%d escapes=[%s]%s%s%s%s" s.sm_params s.sm_results
    (String.concat ""
       (Array.to_list (Array.map (fun b -> if b then "1" else "0")
                         s.sm_escapes)))
    (if s.sm_mutates then " mutates" else "")
    (if s.sm_allocs then " allocs" else "")
    (if s.sm_touches_mem then " touches-mem" else "")
    (if s.sm_host then " host" else "")
