(** cage-lint: deterministic whole-module diagnostics from the
    {!Absint} dataflow — statically-definite use-after-free, double
    free, constant out-of-bounds accesses (including bulk
    [memory.fill]/[memory.copy] spans and [strcpy] from constant
    strings), untagged pointers flowing into checked accesses, and
    segments leaked on some path.

    [~wspectre] additionally classifies every elidable access under the
    Swivel-style speculation model: an access whose proof leans on a
    branch refinement is architecturally safe to elide but {e not} under
    branch misspeculation — those sites are listed and counted, and the
    [--no-spec-elide] runtime mode keeps their checks.

    Output is fully deterministic (sorted, deduplicated), so it can be
    golden-diffed in CI — as text ({!to_lines}) or JSON ({!to_json},
    same ordering). *)

type t = {
  diags : Absint.diag list;
  spectre : string list;  (** rendered spec-unsafe sites, sorted *)
  definite : int;
  possible : int;
  elide_proven : int;
  elide_considered : int;
  bounds_proven : int;
  arena_sites : int;
  spec_unsafe : int;
  wspectre : bool;
}

let run ?(wspectre = false) (m : Wasm.Ast.module_) : t =
  let a = Absint.analyze m in
  let p = Elide.of_analysis ~arena:true a in
  let spectre, spec_unsafe =
    if not wspectre then ([], 0)
    else begin
      let sp = Absint.analyze ~spec:true m in
      let met = Elide.meet_rows a.Absint.a_verdicts sp.Absint.a_verdicts in
      let name i =
        match (List.nth m.Wasm.Ast.funcs i).Wasm.Ast.fname with
        | Some n -> n
        | None -> Printf.sprintf "f%d" (Wasm.Ast.num_imports m + i)
      in
      let sites = ref [] in
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun id v ->
              if v = 1 && met.(i).(id) <> 1 then
                sites :=
                  Printf.sprintf
                    "spectre: %s: access %d elidable architecturally but \
                     unsafe under speculation"
                    (name i) id
                  :: !sites)
            row)
        a.Absint.a_verdicts;
      let sorted = List.sort_uniq compare !sites in
      (sorted, List.length sorted)
    end
  in
  let definite, possible =
    List.fold_left
      (fun (d, po) (x : Absint.diag) ->
        match x.d_severity with
        | Absint.Definite -> (d + 1, po)
        | Absint.Possible -> (d, po + 1))
      (0, 0) a.Absint.a_diags
  in
  {
    diags = a.Absint.a_diags;
    spectre;
    definite;
    possible;
    elide_proven = p.Elide.proven;
    elide_considered = p.Elide.considered;
    bounds_proven = p.Elide.bproven;
    arena_sites = p.Elide.arena_sites;
    spec_unsafe;
    wspectre;
  }

let clean t = t.diags = []

(** Render one line per diagnostic plus a summary line — the exact
    format [cage_lint] prints and the lint golden pins. *)
let to_lines t =
  List.map Absint.diag_to_string t.diags
  @ t.spectre
  @ [
      Printf.sprintf
        "%d definite, %d possible; %d/%d checked accesses elidable, %d \
         span-provable; %d allocation sites arena-lowerable"
        t.definite t.possible t.elide_proven t.elide_considered t.bounds_proven
        t.arena_sites;
    ]
  @ (if t.wspectre then
       [
         Printf.sprintf
           "%d elisions unsafe under speculation (kept by --no-spec-elide)"
           t.spec_unsafe;
       ]
     else [])

let pp ppf t =
  List.iter (fun l -> Format.fprintf ppf "%s@." l) (to_lines t)

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)
(* ------------------------------------------------------------------ *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let json_string_list b key items ~indent =
  Buffer.add_string b (Printf.sprintf "%s\"%s\": [" indent key);
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\n%s  \"" indent);
      json_escape b s;
      Buffer.add_char b '"')
    items;
  if items <> [] then Buffer.add_string b (Printf.sprintf "\n%s" indent);
  Buffer.add_char b ']'

(** The whole report as stable, pretty-printed JSON: diagnostics and
    spectre sites in exactly {!to_lines}' order, then a summary object
    with fixed key order — golden-diffable like the text path. *)
let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  json_string_list b "diagnostics"
    (List.map Absint.diag_to_string t.diags)
    ~indent:"  ";
  Buffer.add_string b ",\n";
  json_string_list b "spectre" t.spectre ~indent:"  ";
  Buffer.add_string b ",\n  \"summary\": {";
  let field i (k, v) =
    if i > 0 then Buffer.add_char b ',';
    Buffer.add_string b (Printf.sprintf "\n    \"%s\": %d" k v)
  in
  List.iteri field
    [
      ("definite", t.definite);
      ("possible", t.possible);
      ("elide_proven", t.elide_proven);
      ("elide_considered", t.elide_considered);
      ("bounds_proven", t.bounds_proven);
      ("arena_sites", t.arena_sites);
      ("spec_unsafe", t.spec_unsafe);
    ];
  Buffer.add_string b "\n  }\n}\n";
  Buffer.contents b
