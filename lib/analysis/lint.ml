(** cage-lint: deterministic whole-module diagnostics from the
    {!Absint} dataflow — statically-definite use-after-free, double
    free, constant out-of-bounds accesses (including bulk
    [memory.fill]/[memory.copy] spans and [strcpy] from constant
    strings), untagged pointers flowing into checked accesses, and
    segments leaked on some path.

    Output is fully deterministic (sorted, deduplicated), so it can be
    golden-diffed in CI. *)

type t = {
  diags : Absint.diag list;
  definite : int;
  possible : int;
  elide_proven : int;
  elide_considered : int;
}

let run (m : Wasm.Ast.module_) : t =
  let a = Absint.analyze m in
  let p = Elide.of_analysis a in
  let definite, possible =
    List.fold_left
      (fun (d, po) (x : Absint.diag) ->
        match x.d_severity with
        | Absint.Definite -> (d + 1, po)
        | Absint.Possible -> (d, po + 1))
      (0, 0) a.Absint.a_diags
  in
  {
    diags = a.Absint.a_diags;
    definite;
    possible;
    elide_proven = p.Elide.proven;
    elide_considered = p.Elide.considered;
  }

let clean t = t.diags = []

(** Render one line per diagnostic plus a summary line — the exact
    format [cage_lint] prints and the lint golden pins. *)
let to_lines t =
  List.map Absint.diag_to_string t.diags
  @ [
      Printf.sprintf "%d definite, %d possible; %d/%d checked accesses elidable"
        t.definite t.possible t.elide_proven t.elide_considered;
    ]

let pp ppf t =
  List.iter (fun l -> Format.fprintf ppf "%s@." l) (to_lines t)
